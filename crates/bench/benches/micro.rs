//! Criterion microbenchmarks for the native building blocks.
//!
//! These complement the table/figure harness bins with unit-level
//! costs: trampoline dispatch, code patching, the disassembler sweep,
//! and handler formatting. (They avoid enabling SUD or rewriting
//! shared libc sites, so they are safe to run repeatedly.)

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;

fn bench_raw_syscall(c: &mut Criterion) {
    c.bench_function("raw getpid syscall", |b| {
        b.iter(|| unsafe { black_box(syscalls::raw::syscall0(syscalls::nr::GETPID)) })
    });
    c.bench_function("raw ENOSYS syscall (nr 500)", |b| {
        b.iter(|| unsafe { black_box(syscalls::raw::syscall0(500)) })
    });
}

fn bench_trampoline_dispatch(c: &mut Criterion) {
    if !zpoline::Trampoline::environment_supported() {
        eprintln!("skipping trampoline benches: vm.mmap_min_addr != 0");
        return;
    }
    zpoline::Trampoline::install().expect("trampoline");
    // Passthrough dispatcher is the default.
    let call_through = |nr: u64| -> u64 {
        let ret: u64;
        unsafe {
            std::arch::asm!(
                "call rax",
                inlateout("rax") nr => ret,
                in("rdi") 0u64, in("rsi") 0u64, in("rdx") 0u64,
                in("r10") 0u64, in("r8") 0u64, in("r9") 0u64,
                out("rcx") _, out("r11") _,
            );
        }
        ret
    };
    let mut g = c.benchmark_group("trampoline");
    g.bench_function("dispatch getpid via call-rax (sled head)", |b| {
        b.iter(|| black_box(call_through(syscalls::nr::GETPID)))
    });
    g.bench_function("dispatch nr 500 via call-rax (sled tail)", |b| {
        b.iter(|| black_box(call_through(500)))
    });
    g.finish();
}

fn bench_patching(c: &mut Criterion) {
    if !zpoline::Trampoline::environment_supported() {
        return;
    }
    zpoline::Trampoline::install().expect("trampoline");
    // A dedicated page we re-patch each iteration (patch + restore).
    let page = unsafe {
        libc::mmap(
            std::ptr::null_mut(),
            4096,
            libc::PROT_READ | libc::PROT_WRITE | libc::PROT_EXEC,
            libc::MAP_PRIVATE | libc::MAP_ANONYMOUS,
            -1,
            0,
        )
    } as *mut u8;
    assert!(!page.is_null());
    c.bench_function("patch_syscall_site (incl. 2x mprotect)", |b| {
        b.iter(|| unsafe {
            page.write(0x0f);
            page.add(1).write(0x05);
            black_box(zpoline::patch_syscall_site(page as usize).unwrap());
        })
    });
}

fn bench_disasm(c: &mut Criterion) {
    // Sweep our own .text-sized synthetic buffer.
    let mut buf = vec![0u8; 64 * 1024];
    for (i, b) in buf.iter_mut().enumerate() {
        *b = [0x90, 0x55, 0x48, 0x89, 0xe5, 0xc3, 0x0f, 0x05][i % 8];
    }
    let mut g = c.benchmark_group("disasm");
    g.throughput(Throughput::Bytes(buf.len() as u64));
    g.bench_function("linear sweep 64KiB", |b| {
        b.iter(|| {
            black_box(zpoline::find_syscall_sites(0, &buf).sites.len());
        })
    });
    g.finish();
}

fn bench_handlers(c: &mut Criterion) {
    use interpose::{SyscallEvent, SyscallHandler};
    let counter = interpose::CountHandler::new();
    let policy = interpose::PolicyBuilder::allow_by_default()
        .deny(syscalls::nr::EXECVE)
        .deny_write_to_fd_at_or_above(100)
        .build();
    let mut g = c.benchmark_group("handlers");
    g.bench_function("CountHandler::handle", |b| {
        b.iter(|| {
            let mut ev = SyscallEvent::new(syscalls::SyscallArgs::nullary(
                syscalls::nr::GETPID,
            ));
            black_box(counter.handle(&mut ev));
        })
    });
    g.bench_function("PolicyHandler::handle", |b| {
        b.iter(|| {
            let mut ev = SyscallEvent::new(syscalls::SyscallArgs::new(
                syscalls::nr::WRITE,
                [1, 0, 64, 0, 0, 0],
            ));
            black_box(policy.handle(&mut ev));
        })
    });
    g.bench_function("format strace line", |b| {
        let mut buf = [0u8; 256];
        let call = syscalls::SyscallArgs::new(syscalls::nr::WRITE, [1, 0xdead, 64, 0, 0, 0]);
        b.iter(|| black_box(interpose::format_syscall_line(&call, 0x401000, &mut buf)));
    });
    g.finish();
}

fn configured() -> Criterion {
    // Short, 1-core-friendly defaults; override with criterion's own
    // CLI flags (e.g. `cargo bench -- --measurement-time 5`).
    Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2))
        .sample_size(10)
}

criterion_group! {
    name = benches;
    config = configured();
    targets = bench_raw_syscall, bench_trampoline_dispatch, bench_patching, bench_disasm, bench_handlers
}
criterion_main!(benches);

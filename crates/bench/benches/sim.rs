//! Criterion benchmarks for the simulation substrate itself: how fast
//! the simulator simulates (host-side throughput, not guest cycles).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;

use sim_interpose::{Interposed, Mechanism};

fn bench_machine_step_rate(c: &mut Criterion) {
    use sim_cpu::asm::Asm;
    use sim_cpu::machine::Machine;
    use sim_cpu::reg::Gpr;

    // A pure-ALU loop: 1000 iterations x 4 instructions.
    let code = Asm::new()
        .mov_ri(Gpr::R1, 1000)
        .label("loop")
        .add_ri(Gpr::R2, 3)
        .sub_ri(Gpr::R1, 1)
        .cmp_ri(Gpr::R1, 0)
        .jnz("loop")
        .hlt()
        .assemble()
        .unwrap();
    let mut g = c.benchmark_group("sim-cpu");
    g.throughput(Throughput::Elements(4000));
    g.bench_function("execute 4k ALU instructions", |b| {
        b.iter(|| {
            let mut m = Machine::new();
            m.load_code(0x1000, &code).unwrap();
            black_box(m.run_fuel(10_000).unwrap());
        })
    });
    g.finish();
}

fn bench_interposed_guests(c: &mut Criterion) {
    let program = sim_workloads::bench::microbench(100);
    let mut g = c.benchmark_group("sim-guest (100 syscalls)");
    for mech in [
        Mechanism::Baseline,
        Mechanism::Zpoline,
        Mechanism::Lazypoline { xstate: true },
        Mechanism::Sud,
        Mechanism::Ptrace,
    ] {
        g.bench_function(mech.name(), |b| {
            b.iter(|| {
                let mut ip = Interposed::setup(mech, &program, false).unwrap();
                black_box(ip.run().unwrap());
            })
        });
    }
    g.finish();
}

fn bench_bpf_vm(c: &mut Criterion) {
    use sim_kernel::seccomp::{BpfProgram, SeccompData};
    let prog = BpfProgram::deny_numbers(&(1..=64).collect::<Vec<u64>>());
    let data = SeccompData {
        nr: 500,
        instruction_pointer: 0x1000,
        args: [0; 6],
    };
    c.bench_function("cBPF VM: 64-rule deny-list miss", |b| {
        b.iter(|| black_box(prog.run(&data)))
    });
}

fn configured() -> Criterion {
    // Short, 1-core-friendly defaults; override with criterion's own
    // CLI flags (e.g. `cargo bench -- --measurement-time 5`).
    Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2))
        .sample_size(10)
}

criterion_group! {
    name = benches;
    config = configured();
    targets = bench_machine_step_rate, bench_interposed_guests, bench_bpf_vm
}
criterion_main!(benches);

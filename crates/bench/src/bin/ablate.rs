//! Ablations of the design choices DESIGN.md calls out.
//!
//! 1. **Extended-state granularity** (native): what each XSAVE
//!    component level costs on the fast path — the tuning space the
//!    paper's configurable option exposes (§IV-B(b)).
//! 2. **Lazy rewriting on/off** (native): the hybrid against its own
//!    slow path used alone — the paper's central claim quantified with
//!    a single switch. Plus **batch rewriting on/off** (2b): whether a
//!    single `SIGSYS` patches every verifiable site on the faulting
//!    page or only the faulting one, compared by `SLOW_PATH_HITS` vs
//!    `SITES_PATCHED` over a multi-site discovery workload.
//! 3. **seccomp filter length** (simulated): how in-kernel filter cost
//!    scales with program size (why "seccomp-bpf is fast" still
//!    degrades with real policies).
//! 4. **Signal-delivery cost sensitivity** (simulated): SUD's overhead
//!    as a function of the kernel's signal cost — why signal-based
//!    interposition cannot be fixed by tuning.

use lp_bench::report::Table;
use lp_bench::{env_u64, micro};
use sim_interpose::{Interposed, Mechanism};
use sim_kernel::seccomp::BpfProgram;

fn main() {
    native_ablations();
    sim_filter_length();
    sim_signal_cost();
}

fn native_ablations() {
    if !micro::environment_supported() {
        println!("native ablations skipped (needs SUD + vm.mmap_min_addr=0)\n");
        return;
    }
    // Reuse the Table II session: it measures xstate on/off and SUD
    // (no-rewriting) against the fast path.
    let r = micro::run_table2();
    let base = r.baseline.cycles();

    println!("Ablation 1 — extended-state preservation (native fast path):\n");
    let mut t = Table::new(["configuration", "cycles/call", "vs baseline"]);
    for m in [&r.zpoline, &r.lazypoline_nox, &r.lazypoline] {
        t.row([
            m.name.to_string(),
            format!("{:.0}", m.cycles()),
            format!("{:.2}x", m.cycles() / base),
        ]);
    }
    print!("{}", t.render());
    println!(
        "\nxstate preservation costs {:.0} cycles/call here — the paper's \
         configurable option lets interposers opt out when their workload \
         (cf. Table III) does not need it.\n",
        r.lazypoline.cycles() - r.lazypoline_nox.cycles()
    );

    println!("Ablation 1b — XSAVE component granularity (native fast path):\n");
    let mut t = Table::new(["mask", "cycles/call"]);
    for (_, m) in micro::run_xstate_sweep() {
        t.row([m.name.to_string(), format!("{:.0}", m.cycles())]);
    }
    print!("{}", t.render());
    println!();

    println!("Ablation 2 — lazy rewriting on/off (native):\n");
    let mut t = Table::new(["configuration", "cycles/call", "vs baseline"]);
    t.row([
        "hybrid (lazy rewriting on)".to_string(),
        format!("{:.0}", r.lazypoline.cycles()),
        format!("{:.2}x", r.lazypoline.cycles() / base),
    ]);
    t.row([
        "slow path only (pure SUD)".to_string(),
        format!("{:.0}", r.sud.cycles()),
        format!("{:.2}x", r.sud.cycles() / base),
    ]);
    print!("{}", t.render());
    println!(
        "\nthe rewriting fast path is worth {:.1}x on this host.\n",
        r.sud.cycles() / r.lazypoline.cycles()
    );

    println!("Ablation 2b — page-granular batch rewriting (native):\n");
    let b = micro::run_batch_ablation();
    let mut t = Table::new(["configuration", "SLOW_PATH_HITS", "SITES_PATCHED"]);
    t.row([
        "per-site rewriting (batch off)".to_string(),
        format!("{}", b.unbatched.slow_path_hits),
        format!("{}", b.unbatched.sites_patched),
    ]);
    t.row([
        "batch rewriting (default)".to_string(),
        format!("{}", b.batched.slow_path_hits),
        format!("{}", b.batched.sites_patched),
    ]);
    print!("{}", t.render());
    println!(
        "\n{} fresh sites on one page: batching collapses {} SIGSYS \
         deliveries into {} while patching the same sites.\n",
        b.sites, b.unbatched.slow_path_hits, b.batched.slow_path_hits
    );
}

fn sim_filter_length() {
    println!("Ablation 3 — seccomp filter length (simulated):\n");
    let iters = env_u64("LP_SIM_ITERS", 2000);
    let program = sim_workloads::bench::microbench(iters);

    let base = {
        let mut ip = Interposed::setup(Mechanism::Baseline, &program, false).unwrap();
        ip.run().unwrap();
        ip.cycles() as f64
    };

    let mut t = Table::new(["filter insns", "overhead"]);
    for rules in [0usize, 8, 32, 128] {
        // A deny-list that never matches the benchmark syscall.
        let numbers: Vec<u64> = (1..=rules as u64).collect();
        let prog = if rules == 0 {
            BpfProgram::allow_all()
        } else {
            BpfProgram::deny_numbers(&numbers)
        };
        let len = prog.len();
        let mut ip = Interposed::setup(Mechanism::Baseline, &program, false).unwrap();
        ip.system.kernel.install_seccomp(prog);
        ip.run().unwrap();
        t.row([format!("{len}"), format!("{:.2}x", ip.cycles() as f64 / base)]);
    }
    print!("{}", t.render());
    println!("\nreal allow-list policies run tens of instructions per syscall.\n");
}

fn sim_signal_cost() {
    println!("Ablation 4 — SUD overhead vs kernel signal-delivery cost (simulated):\n");
    let iters = env_u64("LP_SIM_ITERS", 2000);
    let program = sim_workloads::bench::microbench(iters);

    let mut t = Table::new(["signal cost (cycles)", "SUD overhead", "lazypoline overhead"]);
    for factor in [0.5, 1.0, 2.0] {
        let mut base_ip = Interposed::setup(Mechanism::Baseline, &program, false).unwrap();
        base_ip.run().unwrap();
        let base = base_ip.cycles() as f64;

        let run = |mech| {
            let mut ip = Interposed::setup(mech, &program, false).unwrap();
            let c = &mut ip.system.kernel.cost;
            c.signal_deliver = (c.signal_deliver as f64 * factor) as u64;
            c.sigreturn = (c.sigreturn as f64 * factor) as u64;
            let cost = c.signal_deliver;
            ip.run().unwrap();
            (cost, ip.cycles() as f64 / base)
        };
        let (cost, sud) = run(Mechanism::Sud);
        let (_, lp) = run(Mechanism::Lazypoline { xstate: true });
        t.row([
            format!("{cost}"),
            format!("{sud:.1}x"),
            format!("{lp:.2}x"),
        ]);
    }
    print!("{}", t.render());
    println!(
        "\nSUD scales with signal cost; lazypoline pays it only once per site, so its \
         steady state is flat — the hybrid design in one table."
    );
}

//! Regenerates the **§V-A exhaustiveness experiment**: a JIT-compiled
//! program containing a runtime-generated `getpid` is run under SUD,
//! zpoline, and lazypoline; the interposers' traces are compared.
//!
//! "lazypoline and SUD print the exact same syscalls, in the same
//! order, including our introduced getpid syscall […] zpoline's trace
//! does not include the relevant getpid, since the syscall instruction
//! from which it was invoked did not exist yet at load time."
//!
//! The simulated part reproduces the three-way comparison exactly; the
//! native part re-validates lazypoline's half on the real kernel
//! (runtime-emitted x86-64 code, real SIGSYS, real rewriting).

use sim_interpose::{Interposed, Mechanism};
use sim_kernel::sysno;

fn sim_trace(mechanism: Mechanism) -> Vec<String> {
    let program = sim_workloads::jit::build();
    let mut ip = Interposed::setup(mechanism, &program, true).expect("setup");
    ip.run().expect("run");
    ip.observed_trace()
        .into_iter()
        .map(|nr| {
            sysno::name(nr)
                .map(str::to_string)
                .unwrap_or_else(|| format!("syscall_{nr}"))
        })
        .collect()
}

fn main() {
    println!("Exhaustiveness experiment (paper §V-A) — tcc-like JIT workload\n");
    println!("The workload emits a fresh `getpid` SYSCALL at runtime and calls it,");
    println!("then performs one statically-visible getpid.\n");

    let sud = sim_trace(Mechanism::Sud);
    let zpoline = sim_trace(Mechanism::Zpoline);
    let lazypoline = sim_trace(Mechanism::Lazypoline { xstate: true });

    println!("observed traces (simulated):");
    println!("  SUD        : {}", sud.join(", "));
    println!("  zpoline    : {}", zpoline.join(", "));
    println!("  lazypoline : {}", lazypoline.join(", "));

    let sud_getpids = sud.iter().filter(|s| *s == "getpid").count();
    let zp_getpids = zpoline.iter().filter(|s| *s == "getpid").count();
    let lp_getpids = lazypoline.iter().filter(|s| *s == "getpid").count();

    println!();
    println!("getpid observations: SUD={sud_getpids}, zpoline={zp_getpids}, lazypoline={lp_getpids}");
    assert_eq!(sud, lazypoline, "lazypoline must match SUD exactly");
    assert_eq!(sud_getpids, 2, "both the JIT'd and the static getpid");
    assert_eq!(zp_getpids, 1, "zpoline misses the JIT'd one");
    println!("=> lazypoline's trace equals SUD's (exhaustive); zpoline misses the JIT syscall.\n");

    // — Native confirmation on the real kernel —
    if !zpoline::Trampoline::environment_supported() || !sud::is_supported() {
        println!("native half skipped (needs SUD + vm.mmap_min_addr=0)");
        return;
    }
    native_confirmation();
}

fn native_confirmation() {
    use interpose::{Action, SyscallEvent, SyscallHandler};
    use std::sync::atomic::{AtomicU64, Ordering};

    static GETPIDS: AtomicU64 = AtomicU64::new(0);
    struct Spy;
    impl SyscallHandler for Spy {
        fn handle(&self, ev: &mut SyscallEvent) -> Action {
            if ev.call.nr == syscalls::nr::GETPID {
                GETPIDS.fetch_add(1, Ordering::SeqCst);
            }
            Action::Passthrough
        }
    }
    interpose::set_global_handler(Box::new(Spy));
    let engine = lazypoline::init(lazypoline::Config::default()).expect("init");

    // Emit `mov eax, 39; syscall; ret` at runtime — after interposition
    // was armed, where no static scan can see it.
    let jit: extern "C" fn() -> u64 = unsafe {
        let page = libc::mmap(
            std::ptr::null_mut(),
            4096,
            libc::PROT_READ | libc::PROT_WRITE | libc::PROT_EXEC,
            libc::MAP_PRIVATE | libc::MAP_ANONYMOUS,
            -1,
            0,
        );
        assert_ne!(page, libc::MAP_FAILED);
        let code: [u8; 8] = [0xb8, 39, 0, 0, 0, 0x0f, 0x05, 0xc3];
        std::ptr::copy_nonoverlapping(code.as_ptr(), page as *mut u8, code.len());
        std::mem::transmute(page)
    };
    let before = engine.stats();
    let pid = jit();
    let pid2 = jit();
    engine.unenroll_current_thread();
    let after = engine.stats();

    assert_eq!(pid, std::process::id() as u64);
    assert_eq!(pid2, pid);
    assert!(GETPIDS.load(Ordering::SeqCst) >= 2);
    println!("native confirmation (real kernel, real rewriting):");
    println!(
        "  JIT-emitted getpid interposed {} times; slow-path trips {} -> {}, sites patched {} -> {}",
        GETPIDS.load(Ordering::SeqCst),
        before.slow_path_hits,
        after.slow_path_hits,
        before.sites_patched,
        after.sites_patched
    );
    println!("=> the runtime-generated site was discovered (SIGSYS), rewritten, and fast-pathed.");
}

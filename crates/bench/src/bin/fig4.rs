//! Regenerates **Figure 4**: lazypoline's overhead breakdown.
//!
//! The figure decomposes lazypoline's microbenchmark overhead into the
//! zpoline-equivalent rewriting cost, the cost of *enabling* SUD (the
//! exhaustiveness guarantee), and the cost of preserving extended
//! state. Derived from the same measurements as Table II, exactly as
//! in the paper.

use lp_bench::micro;

fn main() {
    if !micro::environment_supported() {
        eprintln!("skip: needs SUD and vm.mmap_min_addr = 0");
        return;
    }
    let r = micro::run_table2();
    let base = r.baseline.cycles();
    let zp = r.zpoline.cycles();
    let nox = r.lazypoline_nox.cycles();
    let full = r.lazypoline.cycles();

    let seg_syscall = base;
    let seg_zpoline = (zp - base).max(0.0);
    let seg_sud = (nox - zp).max(0.0);
    let seg_xstate = (full - nox).max(0.0);

    println!("Figure 4 — lazypoline overhead breakdown (cycles per interposed syscall)\n");
    let total = full;
    let bar = |label: &str, v: f64| {
        let width = (60.0 * v / total).round() as usize;
        println!("{label:<28} {v:>8.0}  |{}|", "#".repeat(width));
    };
    bar("bare syscall round trip", seg_syscall);
    bar("+ rewriting (zpoline part)", seg_zpoline);
    bar("+ enabling SUD", seg_sud);
    bar("+ xstate preservation", seg_xstate);
    println!("{:<28} {total:>8.0}", "= lazypoline total");

    println!(
        "\nfast path with SUD disabled vs zpoline: {:.2}x vs {:.2}x of baseline",
        zp / base,
        zp / base
    );
    println!(
        "(paper: the two match by construction; xstate preservation is the largest component: \
         here {:.0}% of total overhead)",
        100.0 * seg_xstate / (total - base)
    );
}

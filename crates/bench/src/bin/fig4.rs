//! Regenerates **Figure 4**: lazypoline's overhead breakdown.
//!
//! The figure decomposes lazypoline's microbenchmark overhead into the
//! zpoline-equivalent rewriting cost, the cost of *enabling* SUD (the
//! exhaustiveness guarantee), and the cost of preserving extended
//! state. Derived from the same measurements as Table II, exactly as
//! in the paper. `--json` additionally writes `BENCH_fig4.json`.

use lp_bench::json::Json;
use lp_bench::micro;

fn main() {
    let json_mode = std::env::args().any(|a| a == "--json");
    if !micro::environment_supported() {
        eprintln!("skip: needs SUD and vm.mmap_min_addr = 0");
        if json_mode {
            let root = Json::obj()
                .field("bench", Json::Str("fig4".into()))
                .field("native_supported", Json::Bool(false));
            std::fs::write("BENCH_fig4.json", root.render()).expect("write BENCH_fig4.json");
            println!("wrote BENCH_fig4.json");
        }
        return;
    }
    let r = micro::run_table2();
    let base = r.baseline.cycles();
    let zp = r.zpoline.cycles();
    let nox = r.lazypoline_nox.cycles();
    let full = r.lazypoline.cycles();

    let seg_syscall = base;
    let seg_zpoline = (zp - base).max(0.0);
    let seg_sud = (nox - zp).max(0.0);
    let seg_xstate = (full - nox).max(0.0);

    println!("Figure 4 — lazypoline overhead breakdown (cycles per interposed syscall)\n");
    let total = full;
    let bar = |label: &str, v: f64| {
        let width = (60.0 * v / total).round() as usize;
        println!("{label:<28} {v:>8.0}  |{}|", "#".repeat(width));
    };
    bar("bare syscall round trip", seg_syscall);
    bar("+ rewriting (zpoline part)", seg_zpoline);
    bar("+ enabling SUD", seg_sud);
    bar("+ xstate preservation", seg_xstate);
    println!("{:<28} {total:>8.0}", "= lazypoline total");

    println!(
        "\nfast path with SUD disabled vs zpoline: {:.2}x vs {:.2}x of baseline",
        zp / base,
        zp / base
    );
    println!(
        "(paper: the two match by construction; xstate preservation is the largest component: \
         here {:.0}% of total overhead)",
        100.0 * seg_xstate / (total - base)
    );

    // Interest-filtering win for loaded hooks (the hook-stack cell):
    // a narrowly scoped dlopen'ed hook skips event construction for
    // out-of-interest syscalls exactly like a compiled-in policy.
    let win_curve = micro::run_hook_win_curve();
    if let Some(w) = &win_curve {
        println!(
            "\nloaded-hook interest filtering: {:.0} cycles/dispatch (interest: all) vs \
             {:.0} (interest: openat) — {:.2}x",
            w.wide.cycles(),
            w.narrow.cycles(),
            w.wide.cycles() / w.narrow.cycles()
        );
    }

    if json_mode {
        let mut root = Json::obj()
            .field("bench", Json::Str("fig4".into()))
            .field("native_supported", Json::Bool(true))
            .field("iters", Json::Int(r.iters))
            .field("runs", Json::Int(r.runs))
            .field(
                "segments_cycles",
                Json::obj()
                    .field("bare_syscall", Json::Num(seg_syscall))
                    .field("rewriting", Json::Num(seg_zpoline))
                    .field("enabling_sud", Json::Num(seg_sud))
                    .field("xstate_preservation", Json::Num(seg_xstate))
                    .field("total", Json::Num(total)),
            )
            .field(
                "vs_baseline",
                Json::obj()
                    .field("zpoline", Json::Num(zp / base))
                    .field("lazypoline_no_xstate", Json::Num(nox / base))
                    .field("lazypoline", Json::Num(full / base)),
            );
        if let Some(w) = &win_curve {
            root = root.field(
                "hook_win_curve",
                Json::obj()
                    .field("wide_hook_cycles", Json::Num(w.wide.cycles()))
                    .field("narrow_hook_cycles", Json::Num(w.narrow.cycles()))
                    .field("speedup", Json::Num(w.wide.cycles() / w.narrow.cycles())),
            );
        }
        std::fs::write("BENCH_fig4.json", root.render()).expect("write BENCH_fig4.json");
        println!("\nwrote BENCH_fig4.json");
    }
}

//! Regenerates **Figure 5**: performance impact of lazypoline and
//! prior art on web servers (native).
//!
//! ```sh
//! cargo run -p lp-bench --bin fig5 --release
//! # paper-scale-ish sweep:
//! LP_BENCH_SECS=10 LP_BENCH_CONNS=8 LP_BENCH_WORKERS=12 \
//!   cargo run -p lp-bench --bin fig5 --release
//! ```
//!
//! Reports relative throughput (percent of baseline) per cell, the
//! same observable the paper plots. Absolute RPS differs from the
//! paper (48-core Xeon + nginx/lighttpd there; this host + lp-httpd
//! here); the *shape* — ordering and where the gaps close with file
//! size — is the reproduction target.

use lp_bench::macrobench::{run_fig5, MacroCell, SweepConfig, MECHANISMS};
use lp_bench::report::Table;
use httpd::Flavor;

fn main() {
    if !lp_bench::micro::environment_supported() {
        eprintln!("skip: needs SUD and vm.mmap_min_addr = 0");
        return;
    }
    let sweep = SweepConfig::default();
    eprintln!(
        "Figure 5 sweep: {:?} sizes x {:?} workers x {} configs x {:.1}s cells\n",
        sweep.sizes,
        sweep.worker_counts,
        sweep.mechanisms.len(),
        sweep.secs
    );
    let cells = run_fig5(&sweep).expect("sweep");

    for flavor in [Flavor::NginxLike, Flavor::LighttpdLike] {
        for &workers in &sweep.worker_counts {
            let group: Vec<&MacroCell> = cells
                .iter()
                .filter(|c| c.flavor == flavor && c.workers == workers)
                .collect();
            if group.is_empty() {
                continue;
            }
            println!("\n{} — {} worker(s): % of baseline throughput", flavor.name(), workers);
            let mut header = vec!["size".to_string()];
            header.extend(MECHANISMS.iter().map(|m| m.to_string()));
            let mut table = Table::new(header);
            for &size in &sweep.sizes {
                let base = group
                    .iter()
                    .find(|c| c.size == size && c.mechanism == "none")
                    .map(|c| c.rps)
                    .unwrap_or(0.0);
                let mut row = vec![human_size(size)];
                for mech in MECHANISMS {
                    let cell = group
                        .iter()
                        .find(|c| c.size == size && c.mechanism == mech);
                    match cell {
                        Some(c) if base > 0.0 => {
                            if mech == "none" {
                                row.push(format!("{:.0} rps", c.rps));
                            } else {
                                row.push(format!("{:.1}%", 100.0 * c.rps / base));
                            }
                        }
                        _ => row.push("-".into()),
                    }
                }
                table.row(row);
            }
            print!("{}", table.render());
        }
    }
    println!(
        "\n(paper, single worker: lazypoline-no-xstate >= 94.7% of baseline, within ~2-4pp of \
         zpoline;\n xstate preservation costs <= 4.7pp; SUD roughly halves throughput at small \
         sizes;\n all gaps shrink as file size grows.)"
    );
}

fn human_size(size: usize) -> String {
    if size >= 1 << 10 {
        format!("{}KB", size >> 10)
    } else {
        format!("{size}B")
    }
}

//! Regenerates **Figure 5**: performance impact of lazypoline and
//! prior art on web servers (native), as a throughput-vs-connections
//! scaling sweep with per-mechanism latency percentiles.
//!
//! ```sh
//! cargo run -p lp-bench --bin fig5 --release
//! cargo run -p lp-bench --bin fig5 --release -- --json   # also writes BENCH_fig5.json
//! # paper-scale-ish sweep:
//! LP_BENCH_SECS=10 LP_BENCH_CONNS=4096 LP_BENCH_THREADS=4 \
//!   cargo run -p lp-bench --bin fig5 --release
//! ```
//!
//! Reports relative throughput (percent of baseline) per cell, the
//! same observable the paper plots, plus p50/p99/p999 request latency
//! from the open-loop generator's histogram. Absolute RPS differs from
//! the paper (48-core Xeon + nginx/lighttpd there; this host +
//! lp-httpd here); the *shape* — ordering and where the gaps close —
//! is the reproduction target.
//!
//! With `--json` the sweep (or, on unsupported hosts, a machine-
//! readable skip stub with `"skipped": true`) is written to
//! `BENCH_fig5.json` so CI can assert on the artifact instead of
//! grepping stderr.

use lp_bench::json::Json;
use lp_bench::macrobench::{run_fig5, Fig5Results, MacroCell, SweepConfig};
use lp_bench::report::Table;

fn main() {
    let json_mode = std::env::args().any(|a| a == "--json");
    if !lp_bench::micro::environment_supported() {
        let reason = "needs Linux >= 5.11 SUD and vm.mmap_min_addr = 0";
        eprintln!("skip: {reason}");
        if json_mode {
            // Machine-readable skip stub: downstream tooling must be
            // able to tell "skipped" from "silently produced nothing".
            let stub = Json::obj()
                .field("bench", Json::Str("fig5".into()))
                .field("native_supported", Json::Bool(false))
                .field("skipped", Json::Bool(true))
                .field("reason", Json::Str(reason.into()));
            std::fs::write("BENCH_fig5.json", stub.render()).expect("write BENCH_fig5.json");
            println!("wrote BENCH_fig5.json (skip stub)");
        }
        return;
    }

    let sweep = SweepConfig::default();
    eprintln!(
        "Figure 5 sweep: {} {}B x{} worker(s), conns {:?}, {} mechanisms, \
         {} gen thread(s), rate {}, pipeline {}, {:.1}s cells\n",
        sweep.flavor.name(),
        sweep.size,
        sweep.workers,
        sweep.connections,
        sweep.mechanisms.len(),
        sweep.threads,
        if sweep.rate > 0.0 {
            format!("{:.0}/s", sweep.rate)
        } else {
            "saturation".into()
        },
        sweep.pipeline,
        sweep.secs,
    );
    let results = run_fig5(&sweep).expect("sweep");
    print_tables(&sweep, &results);
    if json_mode {
        let root = to_json(&sweep, &results);
        std::fs::write("BENCH_fig5.json", root.render()).expect("write BENCH_fig5.json");
        println!("\nwrote BENCH_fig5.json");
    }
}

fn cell<'a>(results: &'a Fig5Results, mech: &str, conns: usize) -> Option<&'a MacroCell> {
    results
        .cells
        .iter()
        .find(|c| c.mechanism == mech && c.connections == conns)
}

fn print_tables(sweep: &SweepConfig, results: &Fig5Results) {
    // Throughput scaling: one row per mechanism, one column per
    // connection count, relative to `none` at the same count.
    println!(
        "\n{} — {} worker(s), {}B: throughput vs connections (% of baseline)",
        sweep.flavor.name(),
        sweep.workers,
        sweep.size
    );
    let mut header = vec!["mechanism".to_string()];
    header.extend(sweep.connections.iter().map(|c| format!("c={c}")));
    let mut table = Table::new(header);
    for &mech in &sweep.mechanisms {
        let mut row = vec![mech.to_string()];
        for &conns in &sweep.connections {
            let base = cell(results, "none", conns).map(|c| c.rps).unwrap_or(0.0);
            match cell(results, mech, conns) {
                Some(c) if mech == "none" => row.push(format!("{:.0} rps", c.rps)),
                Some(c) if base > 0.0 => row.push(format!("{:.1}%", 100.0 * c.rps / base)),
                _ => row.push("-".into()),
            }
        }
        table.row(row);
    }
    print!("{}", table.render());

    // Latency percentiles at the highest connection count.
    let top = sweep.connections.last().copied().unwrap_or(1);
    println!("\nrequest latency at c={top} (scheduled-send to last byte)");
    let mut lat = Table::new(["mechanism", "p50", "p99", "p999", "errors", "dropped"]);
    for &mech in &sweep.mechanisms {
        if let Some(c) = cell(results, mech, top) {
            lat.row([
                mech.to_string(),
                format_us(c.p50_ns),
                format_us(c.p99_ns),
                format_us(c.p999_ns),
                c.errors.to_string(),
                c.events_dropped.to_string(),
            ]);
        }
    }
    print!("{}", lat.render());

    let cmp = &results.comparison;
    println!(
        "\ngenerator: open-loop {:.0} rps ({} conns) vs legacy closed-loop {:.0} rps \
         ({} conns) at {} thread(s) — {:.1}x",
        cmp.open_loop_rps,
        cmp.connections,
        cmp.closed_loop_rps,
        cmp.threads,
        cmp.threads,
        cmp.speedup,
    );
    println!(
        "\n(paper, single worker: lazypoline-no-xstate >= 94.7% of baseline, within ~2-4pp of \
         zpoline;\n xstate preservation costs <= 4.7pp; SUD roughly halves throughput at small \
         sizes;\n all gaps shrink as load grows.)"
    );
}

fn format_us(ns: u64) -> String {
    format!("{:.0}us", ns as f64 / 1_000.0)
}

fn to_json(sweep: &SweepConfig, results: &Fig5Results) -> Json {
    let rows = sweep
        .mechanisms
        .iter()
        .map(|&mech| {
            let cells = sweep
                .connections
                .iter()
                .filter_map(|&conns| cell(results, mech, conns))
                .map(|c| {
                    Json::obj()
                        .field("connections", Json::Int(c.connections as u64))
                        .field("rps", Json::Num(c.rps))
                        .field("requests", Json::Int(c.requests))
                        .field("errors", Json::Int(c.errors))
                        .field("unfinished", Json::Int(c.unfinished))
                        .field("p50_ns", Json::Int(c.p50_ns))
                        .field("p99_ns", Json::Int(c.p99_ns))
                        .field("p999_ns", Json::Int(c.p999_ns))
                        .field("events_recorded", Json::Int(c.events_recorded))
                        .field("events_dropped", Json::Int(c.events_dropped))
                        .field("drain_shards", Json::Int(c.drain_shards))
                        .field(
                            "shard_drained",
                            Json::Arr(c.shard_drained.iter().map(|&d| Json::Int(d)).collect()),
                        )
                })
                .collect();
            Json::obj()
                .field("mechanism", Json::Str(mech.into()))
                .field("cells", Json::Arr(cells))
        })
        .collect();
    let cmp = &results.comparison;
    Json::obj()
        .field("bench", Json::Str("fig5".into()))
        .field("native_supported", Json::Bool(true))
        .field("skipped", Json::Bool(false))
        .field("flavor", Json::Str(sweep.flavor.name().into()))
        .field("workers", Json::Int(sweep.workers as u64))
        .field("size", Json::Int(sweep.size as u64))
        .field("threads", Json::Int(sweep.threads as u64))
        .field("rate", Json::Num(sweep.rate))
        .field("pipeline", Json::Int(sweep.pipeline as u64))
        .field("secs", Json::Num(sweep.secs))
        .field(
            "connections",
            Json::Arr(
                sweep
                    .connections
                    .iter()
                    .map(|&c| Json::Int(c as u64))
                    .collect(),
            ),
        )
        .field("rows", Json::Arr(rows))
        .field(
            "generator_comparison",
            Json::obj()
                .field("threads", Json::Int(cmp.threads as u64))
                .field("connections", Json::Int(cmp.connections as u64))
                .field("open_loop_rps", Json::Num(cmp.open_loop_rps))
                .field("closed_loop_rps", Json::Num(cmp.closed_loop_rps))
                .field("speedup", Json::Num(cmp.speedup)),
        )
}

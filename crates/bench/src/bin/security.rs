//! The §VI security extension demo: a selector-overwrite attack
//! against lazypoline, unprotected vs. with an isolated selector.

use sim_interpose::{run_attack, AttackOutcome, Protection};

fn main() {
    println!("Selector-overwrite attack (paper §VI) on the simulator\n");
    println!(
        "attacker: store ALLOW to the selector byte, perform a hidden\n\
         syscall, restore BLOCK.\n"
    );

    match run_attack(Protection::None).expect("unprotected run") {
        AttackOutcome::Evaded { observed, actual } => {
            println!(
                "unprotected lazypoline : EVADED — interposer observed {observed} syscalls, \
                 kernel executed {actual}"
            );
        }
        other => println!("unprotected lazypoline : unexpected {other:?}"),
    }

    match run_attack(Protection::ReadOnlySelector).expect("protected run") {
        AttackOutcome::Blocked => {
            println!("protected selector     : BLOCKED — the overwrite faulted, task killed");
        }
        other => println!("protected selector     : unexpected {other:?}"),
    }

    let (unprot, prot) = sim_interpose::security::protection_overhead(200).expect("overhead");
    println!(
        "\nprotection cost: {:.2}x per interposed syscall (mprotect-windowed; real MPK \
         domain switches are ~20 cycles)",
        prot as f64 / unprot as f64
    );
    println!(
        "\n=> exactly the paper's point: selector-only SUD reduces attacker-robustness to an\n\
           intra-process memory-isolation problem, solvable with existing primitives."
    );
}

//! Quantitative cross-mechanism comparison on the simulator —
//! Table I's efficiency column with numbers attached, including the
//! mechanisms the native harness cannot measure fairly in-process
//! (ptrace, seccomp variants).
//!
//! Two workloads: the Table II microbenchmark loop and a server-like
//! request loop.

use lp_bench::env_u64;
use lp_bench::report::Table;
use sim_interpose::{Interposed, Mechanism};

fn cycles_for(mechanism: Mechanism, program: &[u8], prep: impl Fn(&mut sim_kernel::System)) -> u64 {
    let mut ip = Interposed::setup(mechanism, program, false).expect("setup");
    prep(&mut ip.system);
    ip.run().unwrap_or_else(|e| panic!("{mechanism:?}: {e}"));
    ip.cycles()
}

fn main() {
    let iters = env_u64("LP_SIM_ITERS", 2000);
    let micro = sim_workloads::bench::microbench(iters);
    let server = sim_workloads::bench::server_loop(iters / 10, 4);

    println!("Simulated mechanism comparison ({iters} microbench iterations)\n");
    let mut table = Table::new([
        "Mechanism",
        "micro cycles",
        "micro overhead",
        "server cycles",
        "server overhead",
    ]);

    let micro_base = cycles_for(Mechanism::Baseline, &micro, |_| {}) as f64;
    let server_base = cycles_for(Mechanism::Baseline, &server, |sys| {
        sim_workloads::bench::prepare_server_fs(&mut sys.kernel, 4)
    }) as f64;

    for mech in Mechanism::all() {
        let mc = cycles_for(mech, &micro, |_| {}) as f64;
        let sc = cycles_for(mech, &server, |sys| {
            sim_workloads::bench::prepare_server_fs(&mut sys.kernel, 4)
        }) as f64;
        table.row([
            mech.name().to_string(),
            format!("{mc:.0}"),
            format!("{:.2}x", mc / micro_base),
            format!("{sc:.0}"),
            format!("{:.2}x", sc / server_base),
        ]);
    }
    print!("{}", table.render());
    println!(
        "\n(cost model calibrated to the paper's Table II ratios — see EXPERIMENTS.md;\n\
         ptrace and the seccomp rows are the simulation-only baselines)"
    );
}

//! Regenerates **Table I**: characteristics of popular non-intrusive
//! syscall interposition solutions.
//!
//! The rows are derived from the simulated mechanisms' trait
//! descriptions, which the sim-interpose test suite cross-checks
//! against observable behaviour (trace completeness, cycle ordering).

use lp_bench::report::Table;
use sim_interpose::{mechanism_traits, Mechanism};

fn main() {
    println!("Table I — characteristics of syscall interposition solutions\n");
    let mut table = Table::new(["Mechanism", "Expressiveness", "Exhaustiveness", "Efficiency"]);
    let rows = [
        Mechanism::Ptrace,
        Mechanism::SeccompBpf,
        Mechanism::SeccompUser,
        Mechanism::Sud,
        Mechanism::Zpoline,
        Mechanism::Lazypoline { xstate: true },
    ];
    for m in rows {
        let t = mechanism_traits(m);
        table.row([
            t.name.to_string(),
            t.expressiveness.to_string(),
            if t.exhaustive { "yes".into() } else { "NO".to_string() },
            t.efficiency.to_string(),
        ]);
    }
    print!("{}", table.render());
    println!("\n(paper Table I: only the hybrid achieves Full + exhaustive + High)");
}

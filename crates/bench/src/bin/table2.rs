//! Regenerates **Table II**: microbenchmarking overhead compared to
//! baseline (native, on this host's real kernel), plus the
//! dispatch-cost optimization measurements (syscall-interest filtering
//! and batch rewriting).
//!
//! ```sh
//! cargo run -p lp-bench --bin table2 --release
//! LP_BENCH_ITERS=2000000 LP_BENCH_RUNS=10 cargo run -p lp-bench --bin table2 --release
//! cargo run -p lp-bench --bin table2 --release -- --json   # also writes BENCH_table2.json
//! ```
//!
//! The Table II rows need SUD and a mappable page zero; the
//! interest-filter dispatch comparison runs on any host (the filter
//! lives entirely in the dispatcher's decision sequence).

use lp_bench::json::Json;
use lp_bench::micro;
use lp_bench::report::Table;

/// The paper's Table II values for side-by-side comparison.
const PAPER: &[(&str, f64)] = &[
    ("zpoline", 1.2),
    ("lazypoline without xstate preservation", 1.66),
    ("lazypoline", 2.38),
    ("SUD", 20.8),
    ("baseline with SUD enabled (selector=ALLOW)", 1.42),
];

/// Attaches a row's mechanism counter snapshot (install-to-teardown
/// deltas, including the PR-2 robustness counters) to its JSON object.
fn with_stats(row: Json, stats: Option<&mechanism::StatsSnapshot>) -> Json {
    let Some(s) = stats else { return row };
    let observed = s.events_recorded + s.events_dropped;
    let drop_rate = if observed == 0 {
        0.0
    } else {
        s.events_dropped as f64 / observed as f64
    };
    row.field("drop_rate", Json::Num(drop_rate)).field(
        "mechanism_stats",
        Json::obj()
            .field("mechanism", Json::Str(s.mechanism.into()))
            .field("dispatches", Json::Int(s.dispatches))
            .field("slow_path_hits", Json::Int(s.slow_path_hits))
            .field("sites_patched", Json::Int(s.sites_patched))
            .field("unpatchable_emulations", Json::Int(s.unpatchable_emulations))
            .field(
                "disabled_mode_emulations",
                Json::Int(s.disabled_mode_emulations),
            )
            .field("signals_wrapped", Json::Int(s.signals_wrapped))
            .field("patch_retries", Json::Int(s.patch_retries))
            .field("pages_blocklisted", Json::Int(s.pages_blocklisted))
            .field("quarantined_handlers", Json::Int(s.quarantined_handlers))
            .field("events_recorded", Json::Int(s.events_recorded))
            .field("events_dropped", Json::Int(s.events_dropped))
            .field("events_spilled", Json::Int(s.events_spilled))
            .field("ring_grows", Json::Int(s.ring_grows))
            .field("ring_near_full", Json::Int(s.ring_near_full))
            .field("drain_yields", Json::Int(s.drain_yields))
            .field("drain_shards", Json::Int(s.drain_shards))
            .field("replay_divergences", Json::Int(s.replay_divergences))
            .field("bypass_blocked", Json::Int(s.bypass_blocked))
            .field("pkru_switches", Json::Int(s.pkru_switches))
            .field("hooks_loaded", Json::Int(s.hooks_loaded))
            .field("hook_dispatches", Json::Int(s.hook_dispatches))
            .field("hook_reloads", Json::Int(s.hook_reloads))
            .field("sfip_checks", Json::Int(s.sfip_checks))
            .field("sfip_violations", Json::Int(s.sfip_violations))
            .field("sfip_mode", Json::Str(s.sfip_mode.into())),
    )
}

fn main() {
    // Child-process mode: measure only the hardened row and exit (the
    // seccomp backstop is one-way per process — see `micro::HardenedRow`).
    if std::env::args().any(|a| a == "--hardened-row") {
        micro::hardened_child_main();
    }
    let json_mode = std::env::args().any(|a| a == "--json");
    let native = micro::environment_supported();

    let results = if native {
        Some(micro::run_table2())
    } else {
        eprintln!(
            "skip: this host cannot run the native microbenchmark \
             (needs Linux >= 5.11 SUD and vm.mmap_min_addr = 0)"
        );
        None
    };

    // The hardened row runs in a re-exec'd child so its one-way seccomp
    // filter cannot leak into this process's remaining measurements.
    let hardened = results.as_ref().and_then(|_| micro::run_hardened_row());

    if let Some(results) = &results {
        println!(
            "Table II — microbenchmark overhead vs baseline (syscall 500 x {} iters, {} runs)\n",
            results.iters, results.runs
        );
        let mut table = Table::new(["Configuration", "measured", "paper", "cycles/call", "σ%"]);
        let mut max_sd: f64 = results.baseline.stddev_pct();
        for (name, ratio, sd) in results.rows() {
            let paper = PAPER
                .iter()
                .find(|(n, _)| *n == name)
                .map(|(_, v)| format!("{v:.2}x"))
                .unwrap_or_default();
            let cycles = ratio * results.baseline.cycles();
            table.row([
                name.to_string(),
                format!("{ratio:.2}x"),
                paper,
                format!("{cycles:.0}"),
                format!("{sd:.2}"),
            ]);
            max_sd = max_sd.max(sd);
        }
        if let Some(h) = &hardened {
            let ratio = h.measurement.cycles() / results.baseline.cycles();
            table.row([
                h.measurement.name.to_string(),
                format!("{ratio:.2}x"),
                String::new(),
                format!("{:.0}", h.measurement.cycles()),
                format!("{:.2}", h.measurement.stddev_pct()),
            ]);
            max_sd = max_sd.max(h.measurement.stddev_pct());
        }
        print!("{}", table.render());
        if let Some(h) = &hardened {
            println!(
                "hardened row: level {}, {} pkru switch(es), {} bypass(es) blocked (child process)",
                h.harden_level, h.stats.pkru_switches, h.stats.bypass_blocked
            );
        }
        println!(
            "\nbaseline: {:.0} cycles/call; max relative stddev {:.2}%",
            results.baseline.cycles(),
            max_sd
        );
        if let Some(hooks) = &results.lazypoline_hooks {
            // Acceptance gate: dispatching through one dlopen-loaded
            // no-op hook should cost about what the structurally
            // identical compiled-in chain costs (target: within 15%).
            let chain = results.lazypoline_chain.cycles();
            let loaded = hooks.cycles();
            println!(
                "loaded-hook overhead: {loaded:.0} vs {chain:.0} cycles/call \
                 compiled-in chain ({:+.1}% — target within 15%)",
                (loaded / chain - 1.0) * 100.0
            );
        }
        if let Some(sfip_row) = &results.lazypoline_sfip {
            // Acceptance gate: the flow-integrity check is one
            // thread-local swap plus one bitmatrix test per syscall
            // (target: within 10% of plain lazypoline), and a policy
            // learned from the workload's own trace must be clean.
            let plain = results.lazypoline.cycles();
            let checked = sfip_row.cycles();
            let s = results.snapshot_for(sfip_row.name);
            println!(
                "sfip overhead: {checked:.0} vs {plain:.0} cycles/call plain lazypoline \
                 ({:+.1}% — target within 10%); {} checks, {} violation(s), mode {}",
                (checked / plain - 1.0) * 100.0,
                s.map_or(0, |s| s.sfip_checks),
                s.map_or(0, |s| s.sfip_violations),
                s.map_or("", |s| s.sfip_mode),
            );
        }
        println!("(paper: Xeon Gold 5318S @2.1GHz, Linux 5.15; this host differs — compare shapes, not absolutes)");
        if let Some(r) = &results.recording {
            println!(
                "recording row trace: {} events, {} dropped ({:.4}% drop rate), \
                 {} bytes ({:.1} B/event, LPTRACE{})",
                r.events,
                r.dropped,
                r.drop_rate() * 100.0,
                r.bytes,
                if r.events == 0 {
                    0.0
                } else {
                    r.bytes as f64 / r.events as f64
                },
                r.format_version,
            );
        }
    }

    // Interest-filter dispatch cost: runs everywhere.
    let dispatch = micro::run_dispatch_cost();
    let all = dispatch.all_syscalls.cycles();
    let filtered = dispatch.interest_filtered.cycles();
    println!("\nDispatch-cost optimization — syscall-interest filtering ({} iters, {} runs):\n",
        dispatch.iters, dispatch.runs);
    let mut t = Table::new(["handler", "cycles/dispatch", "σ%"]);
    t.row([
        dispatch.all_syscalls.name.to_string(),
        format!("{all:.0}"),
        format!("{:.2}", dispatch.all_syscalls.stddev_pct()),
    ]);
    t.row([
        dispatch.interest_filtered.name.to_string(),
        format!("{filtered:.0}"),
        format!("{:.2}", dispatch.interest_filtered.stddev_pct()),
    ]);
    print!("{}", t.render());
    println!(
        "\ninterest filtering saves {:.0} cycles/dispatch ({:.2}x) for handlers with precise sets",
        all - filtered,
        all / filtered
    );

    // The same win measured for *loaded* hooks: the stack recomputes
    // its interest from the hook descriptors, so a narrowly scoped
    // dlopen'ed hook gets the same raw-path shortcut a compiled-in
    // policy does. Runs everywhere; skipped when the example hook
    // cdylibs are not built.
    let win_curve = micro::run_hook_win_curve();
    if let Some(w) = &win_curve {
        let wide = w.wide.cycles();
        let narrow = w.narrow.cycles();
        println!(
            "\nLoaded-hook interest filtering ({} iters, {} runs):\n",
            w.iters, w.runs
        );
        let mut t = Table::new(["hook stack", "cycles/dispatch", "σ%"]);
        t.row([
            w.wide.name.to_string(),
            format!("{wide:.0}"),
            format!("{:.2}", w.wide.stddev_pct()),
        ]);
        t.row([
            w.narrow.name.to_string(),
            format!("{narrow:.0}"),
            format!("{:.2}", w.narrow.stddev_pct()),
        ]);
        print!("{}", t.render());
        println!(
            "\ndeclared interest saves {:.0} cycles/dispatch ({:.2}x) for loaded hooks too",
            wide - narrow,
            wide / narrow
        );
    }

    // Batch rewriting (needs the native machinery).
    let batch = results.as_ref().map(|_| micro::run_batch_ablation());
    if let Some(b) = &batch {
        println!(
            "\nBatch rewriting — {} fresh sites on one page: {} SIGSYS batched vs {} unbatched",
            b.sites, b.batched.slow_path_hits, b.unbatched.slow_path_hits
        );
    }

    if json_mode {
        let mut root = Json::obj()
            .field("bench", Json::Str("table2".into()))
            .field("native_supported", Json::Bool(native));
        if let Some(results) = &results {
            let mut rows = vec![with_stats(
                Json::obj()
                    .field("name", Json::Str("baseline".into()))
                    .field("cycles_per_call", Json::Num(results.baseline.cycles()))
                    .field("vs_baseline", Json::Num(1.0))
                    .field("stddev_pct", Json::Num(results.baseline.stddev_pct())),
                results.snapshot_for("baseline"),
            )];
            for (name, ratio, sd) in results.rows() {
                rows.push(with_stats(
                    Json::obj()
                        .field("name", Json::Str(name.into()))
                        .field(
                            "cycles_per_call",
                            Json::Num(ratio * results.baseline.cycles()),
                        )
                        .field("vs_baseline", Json::Num(ratio))
                        .field("stddev_pct", Json::Num(sd)),
                    results.snapshot_for(name),
                ));
            }
            if let Some(h) = &hardened {
                rows.push(with_stats(
                    Json::obj()
                        .field("name", Json::Str("lazypoline-hardened".into()))
                        .field("cycles_per_call", Json::Num(h.measurement.cycles()))
                        .field(
                            "vs_baseline",
                            Json::Num(h.measurement.cycles() / results.baseline.cycles()),
                        )
                        .field("stddev_pct", Json::Num(h.measurement.stddev_pct()))
                        .field("harden_level", Json::Str(h.harden_level.clone())),
                    Some(&h.stats),
                ));
            }
            root = root
                .field("iters", Json::Int(results.iters))
                .field("runs", Json::Int(results.runs))
                .field("rows", Json::Arr(rows));
            if let Some(r) = &results.recording {
                root = root.field(
                    "recording",
                    Json::obj()
                        .field("events", Json::Int(r.events))
                        .field("events_dropped", Json::Int(r.dropped))
                        .field("drop_rate", Json::Num(r.drop_rate()))
                        .field("trace_bytes", Json::Int(r.bytes))
                        .field(
                            "bytes_per_event",
                            Json::Num(if r.events == 0 {
                                0.0
                            } else {
                                r.bytes as f64 / r.events as f64
                            }),
                        )
                        .field("format_version", Json::Int(u64::from(r.format_version))),
                );
            }
        }
        root = root.field(
            "interest_dispatch",
            Json::obj()
                .field("iters", Json::Int(dispatch.iters))
                .field("runs", Json::Int(dispatch.runs))
                .field("all_syscalls_cycles", Json::Num(all))
                .field("interest_filtered_cycles", Json::Num(filtered))
                .field("speedup", Json::Num(all / filtered)),
        );
        if let Some(w) = &win_curve {
            root = root.field(
                "hook_win_curve",
                Json::obj()
                    .field("iters", Json::Int(w.iters))
                    .field("runs", Json::Int(w.runs))
                    .field("wide_hook_cycles", Json::Num(w.wide.cycles()))
                    .field("narrow_hook_cycles", Json::Num(w.narrow.cycles()))
                    .field("speedup", Json::Num(w.wide.cycles() / w.narrow.cycles())),
            );
        }
        if let Some(b) = &batch {
            root = root.field(
                "batch_rewriting",
                Json::obj()
                    .field("sites", Json::Int(b.sites as u64))
                    .field(
                        "batched",
                        Json::obj()
                            .field("slow_path_hits", Json::Int(b.batched.slow_path_hits))
                            .field("sites_patched", Json::Int(b.batched.sites_patched)),
                    )
                    .field(
                        "unbatched",
                        Json::obj()
                            .field("slow_path_hits", Json::Int(b.unbatched.slow_path_hits))
                            .field("sites_patched", Json::Int(b.unbatched.sites_patched)),
                    ),
            );
        }
        std::fs::write("BENCH_table2.json", root.render()).expect("write BENCH_table2.json");
        println!("\nwrote BENCH_table2.json");
    }
}

//! Regenerates **Table II**: microbenchmarking overhead compared to
//! baseline (native, on this host's real kernel).
//!
//! ```sh
//! cargo run -p lp-bench --bin table2 --release
//! LP_BENCH_ITERS=2000000 LP_BENCH_RUNS=10 cargo run -p lp-bench --bin table2 --release
//! ```

use lp_bench::micro;
use lp_bench::report::Table;

/// The paper's Table II values for side-by-side comparison.
const PAPER: &[(&str, f64)] = &[
    ("zpoline", 1.2),
    ("lazypoline without xstate preservation", 1.66),
    ("lazypoline", 2.38),
    ("SUD", 20.8),
    ("baseline with SUD enabled (selector=ALLOW)", 1.42),
];

fn main() {
    if !micro::environment_supported() {
        eprintln!(
            "skip: this host cannot run the native microbenchmark \
             (needs Linux >= 5.11 SUD and vm.mmap_min_addr = 0)"
        );
        return;
    }
    let results = micro::run_table2();
    println!(
        "Table II — microbenchmark overhead vs baseline (syscall 500 x {} iters, {} runs)\n",
        results.iters, results.runs
    );
    let mut table = Table::new(["Configuration", "measured", "paper", "cycles/call", "σ%"]);
    let mut max_sd: f64 = results.baseline.stddev_pct();
    for (name, ratio, sd) in results.rows() {
        let paper = PAPER
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, v)| format!("{v:.2}x"))
            .unwrap_or_default();
        let cycles = ratio * results.baseline.cycles();
        table.row([
            name.to_string(),
            format!("{ratio:.2}x"),
            paper,
            format!("{cycles:.0}"),
            format!("{sd:.2}"),
        ]);
        max_sd = max_sd.max(sd);
    }
    print!("{}", table.render());
    println!(
        "\nbaseline: {:.0} cycles/call; max relative stddev {:.2}%",
        results.baseline.cycles(),
        max_sd
    );
    println!("(paper: Xeon Gold 5318S @2.1GHz, Linux 5.15; this host differs — compare shapes, not absolutes)");
}

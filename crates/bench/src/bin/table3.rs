//! Regenerates **Table III**: ten coreutils evaluated with the
//! Pin-like register-preservation analysis on two simulated
//! distributions.
//!
//! ✓ = the program expected an extended-state (vector) register to be
//! preserved across at least one syscall; ✗ = no such expectation
//! observed.

use lp_bench::report::Table;
use sim_pin::analyze_coreutil;
use sim_workloads::{LibcFlavor, COREUTILS};

fn main() {
    println!("Table III — extended-state preservation expectations (Pin-like analysis)\n");
    let flavors = [LibcFlavor::V1Ubuntu2004, LibcFlavor::V3ClearLinux];
    let mut table = Table::new(["Coreutils", flavors[0].distro(), flavors[1].distro()]);
    let mut affected_counts = [0usize; 2];
    for util in COREUTILS {
        let mut cells = vec![util.name.to_string()];
        for (i, flavor) in flavors.iter().enumerate() {
            let report = analyze_coreutil(util, *flavor)
                .unwrap_or_else(|e| panic!("{}: {e}", util.name));
            let affected = report.extended_state_affected();
            if affected {
                affected_counts[i] += 1;
                let regs: Vec<String> = report
                    .affected_vector_regs()
                    .into_iter()
                    .map(|r| format!("x{r}"))
                    .collect();
                cells.push(format!("v ({})", regs.join(",")));
            } else {
                cells.push("x".to_string());
            }
        }
        table.row(cells);
    }
    print!("{}", table.render());
    println!(
        "\naffected: {}/10 on {}, {}/10 on {}",
        affected_counts[0],
        flavors[0].distro(),
        affected_counts[1],
        flavors[1].distro()
    );
    println!(
        "(paper: 40% affected on Ubuntu 20.04 via the pthread-init xmm issue (Listing 1);\n\
         all programs affected on Clear Linux via ptmalloc_init + getrandom)"
    );
}

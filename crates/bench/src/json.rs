//! Minimal hand-rolled JSON emission for the `--json` harness outputs.
//!
//! The container deliberately carries no serde; the benchmark binaries
//! only ever emit flat objects of numbers, strings, and small arrays,
//! so a value enum with a renderer covers everything.

use std::fmt::Write as _;

/// A JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A finite number (non-finite values render as `null`).
    Num(f64),
    /// An unsigned integer (rendered without a decimal point).
    Int(u64),
    /// A string (escaped on render).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object with insertion-ordered keys.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// An empty object, ready for [`Json::field`] chaining.
    pub fn obj() -> Json {
        Json::Obj(Vec::new())
    }

    /// Appends a key/value pair (builder style).
    ///
    /// # Panics
    ///
    /// Panics when `self` is not an object.
    pub fn field(mut self, key: &str, value: Json) -> Json {
        match &mut self {
            Json::Obj(fields) => fields.push((key.to_string(), value)),
            other => panic!("field() on non-object {other:?}"),
        }
        self
    }

    /// Renders with 2-space indentation and a trailing newline.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => {
                if n.is_finite() {
                    // Shortest stable form with enough precision for
                    // cycle counts and ratios.
                    let _ = write!(out, "{n:.4}");
                } else {
                    out.push_str("null");
                }
            }
            Json::Int(i) => {
                let _ = write!(out, "{i}");
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent + 1);
                    item.write(out, indent + 1);
                }
                newline_indent(out, indent);
                out.push(']');
            }
            Json::Obj(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent + 1);
                    write_escaped(out, k);
                    out.push_str(": ");
                    v.write(out, indent + 1);
                }
                newline_indent(out, indent);
                out.push('}');
            }
        }
    }
}

fn newline_indent(out: &mut String, indent: usize) {
    out.push('\n');
    for _ in 0..indent {
        out.push_str("  ");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_nested_object() {
        let j = Json::obj()
            .field("bench", Json::Str("table2".into()))
            .field("iters", Json::Int(1000))
            .field("ratio", Json::Num(2.375))
            .field("ok", Json::Bool(true))
            .field(
                "rows",
                Json::Arr(vec![Json::obj().field("name", Json::Str("zpoline".into()))]),
            );
        let s = j.render();
        assert!(s.contains("\"bench\": \"table2\""));
        assert!(s.contains("\"iters\": 1000"));
        assert!(s.contains("\"ratio\": 2.3750"));
        assert!(s.contains("\"name\": \"zpoline\""));
        assert!(s.ends_with("}\n"));
    }

    #[test]
    fn escapes_strings_and_hides_nonfinite() {
        let j = Json::obj()
            .field("s", Json::Str("a\"b\\c\nd".into()))
            .field("nan", Json::Num(f64::NAN));
        let s = j.render();
        assert!(s.contains("\\\"b\\\\c\\n"));
        assert!(s.contains("\"nan\": null"));
    }

    #[test]
    fn empty_collections() {
        assert_eq!(Json::obj().render(), "{}\n");
        assert_eq!(Json::Arr(vec![]).render(), "[]\n");
    }
}

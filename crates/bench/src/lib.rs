//! Shared benchmark machinery for the per-table/figure harness
//! binaries.
//!
//! * [`micro`] — the native Table II / Figure 4 microbenchmark: cycles
//!   per intercepted syscall under each interposition configuration.
//! * [`macrobench`] — the native Figure 5 web-server benchmark:
//!   forked server processes under each configuration, measured with
//!   the wrk-like client.
//! * [`report`] — plain-text table formatting and statistics.
//!
//! Iteration counts and durations are scaled down from the paper's
//! (100M iterations, 30s × 10 runs) and overridable via environment
//! variables (`LP_BENCH_ITERS`, `LP_BENCH_RUNS`, `LP_BENCH_SECS`,
//! `LP_BENCH_CONNS`) — overheads are per-syscall ratios and converge
//! at far smaller scales.

#![deny(missing_docs)]

pub mod json;
pub mod macrobench;
pub mod micro;
pub mod report;

/// Reads a `u64` knob from the environment with a default.
pub fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Reads an `f64` knob from the environment with a default.
pub fn env_f64(name: &str, default: f64) -> f64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn env_knobs_default() {
        assert_eq!(env_u64("LP_DOES_NOT_EXIST_XYZ", 7), 7);
        assert_eq!(env_f64("LP_DOES_NOT_EXIST_XYZ", 1.5), 1.5);
    }
}

//! The native Figure 5 web-server macrobenchmark.
//!
//! For every (server flavour × worker count × file size ×
//! interposition) cell, a fresh server process is forked, configured,
//! and measured over localhost with the wrk-like keep-alive client —
//! the paper's §V-B(b) setup scaled to this machine.
//!
//! Interposition configurations:
//!
//! * `Baseline` — no machinery.
//! * `Lazypoline` / `LazypolineNoX` — the hybrid engine with/without
//!   extended-state preservation.
//! * `Sud` — the engine with lazy rewriting disabled: every syscall
//!   takes the SIGSYS slow path (pure SUD interposition).
//! * `Zpoline` — the engine primed by a warmup phase, then detached
//!   from SUD (`SIGUSR1` → unenroll): all hot sites are rewritten and
//!   dispatch through the trampoline with the kernel's SUD machinery
//!   completely off — the paper's own method for isolating pure
//!   rewriting performance (Fig. 4).

use std::io::{self, Read, Write};
use std::os::fd::FromRawFd;
use std::sync::atomic::AtomicBool;
use std::time::Duration;

use httpd::{Docroot, Flavor, LoadConfig, Server, ServerConfig};
use lazypoline::{Config, XstateMask};

use crate::{env_f64, env_u64};

/// Interposition applied to the server process.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ServerInterposition {
    /// Native execution.
    Baseline,
    /// Primed rewriting, SUD off.
    Zpoline,
    /// Hybrid engine, no xstate preservation.
    LazypolineNoX,
    /// Hybrid engine, full xstate preservation.
    Lazypoline,
    /// Pure SUD (lazy rewriting disabled).
    Sud,
}

impl ServerInterposition {
    /// Row label.
    pub fn name(&self) -> &'static str {
        match self {
            ServerInterposition::Baseline => "baseline",
            ServerInterposition::Zpoline => "zpoline",
            ServerInterposition::LazypolineNoX => "lazypoline (no xstate)",
            ServerInterposition::Lazypoline => "lazypoline",
            ServerInterposition::Sud => "SUD",
        }
    }

    /// All configurations in Figure 5 order.
    pub fn all() -> [ServerInterposition; 5] {
        [
            ServerInterposition::Baseline,
            ServerInterposition::Zpoline,
            ServerInterposition::LazypolineNoX,
            ServerInterposition::Lazypoline,
            ServerInterposition::Sud,
        ]
    }
}

/// One measured cell of Figure 5.
#[derive(Clone, Debug)]
pub struct MacroCell {
    /// Server flavour.
    pub flavor: Flavor,
    /// Worker processes.
    pub workers: usize,
    /// Served file size in bytes.
    pub size: usize,
    /// Interposition configuration.
    pub interposition: ServerInterposition,
    /// Measured requests per second.
    pub rps: f64,
    /// Client-observed errors.
    pub errors: u64,
}

/// Sweep parameters (env-overridable).
#[derive(Clone, Debug)]
pub struct SweepConfig {
    /// Server flavours to run.
    pub flavors: Vec<Flavor>,
    /// Worker counts (paper: 1 and 12).
    pub worker_counts: Vec<usize>,
    /// File sizes (paper: 64B–256KB).
    pub sizes: Vec<usize>,
    /// Interposition rows.
    pub configs: Vec<ServerInterposition>,
    /// Measured seconds per cell.
    pub secs: f64,
    /// Client keep-alive connections.
    pub connections: usize,
}

impl Default for SweepConfig {
    fn default() -> SweepConfig {
        SweepConfig {
            flavors: vec![Flavor::NginxLike, Flavor::LighttpdLike],
            worker_counts: vec![1, env_u64("LP_BENCH_WORKERS", 12) as usize],
            sizes: vec![64, 4 << 10, 64 << 10, 256 << 10],
            configs: ServerInterposition::all().to_vec(),
            secs: env_f64("LP_BENCH_SECS", 1.5),
            connections: env_u64("LP_BENCH_CONNS", 4) as usize,
        }
    }
}

/// Runs one cell: forks the server, applies the configuration,
/// measures throughput, and tears the server down.
///
/// # Errors
///
/// I/O errors from the fork/pipe/load plumbing.
pub fn run_cell(
    docroot: &Docroot,
    flavor: Flavor,
    workers: usize,
    size: usize,
    interposition: ServerInterposition,
    secs: f64,
    connections: usize,
) -> io::Result<MacroCell> {
    let (read_fd, write_fd) = pipe()?;

    // SAFETY: standard fork; the child only uses async-signal-safe-ish
    // setup before entering its own event loop.
    let pid = unsafe { libc::fork() };
    if pid < 0 {
        return Err(io::Error::last_os_error());
    }
    if pid == 0 {
        drop(read_fd);
        server_child(docroot, flavor, workers, interposition, write_fd);
    }
    drop(write_fd);

    // Parent: learn the port.
    let mut buf = [0u8; 2];
    let mut r = read_fd;
    r.read_exact(&mut buf)?;
    let port = u16::from_le_bytes(buf);

    let path = httpd::docroot::path_for_size(size);

    // Warmup: drives every hot syscall site at least once (rewriting).
    let _ = httpd::run_load(&LoadConfig {
        port,
        path: path.clone(),
        connections: 2,
        duration: Duration::from_millis(300),
    });

    if interposition == ServerInterposition::Zpoline {
        // Detach the primed server from SUD.
        unsafe { libc::kill(-pid, libc::SIGUSR1) };
        std::thread::sleep(Duration::from_millis(100));
    }

    let report = httpd::run_load(&LoadConfig {
        port,
        path,
        connections,
        duration: Duration::from_secs_f64(secs),
    })?;

    unsafe {
        libc::kill(-pid, libc::SIGKILL);
        libc::waitpid(pid, std::ptr::null_mut(), 0);
    }

    Ok(MacroCell {
        flavor,
        workers,
        size,
        interposition,
        rps: report.rps(),
        errors: report.errors,
    })
}

fn server_child(
    docroot: &Docroot,
    flavor: Flavor,
    workers: usize,
    interposition: ServerInterposition,
    mut write_fd: std::fs::File,
) -> ! {
    unsafe { libc::setpgid(0, 0) };

    // SIGUSR1 = "drop out of SUD" (zpoline detach). Registered before
    // engine init; the engine adopts it into the wrapper protocol.
    unsafe {
        let mut sa: libc::sigaction = std::mem::zeroed();
        sa.sa_sigaction = sigusr1_unenroll as *const () as usize;
        sa.sa_flags = libc::SA_SIGINFO;
        libc::sigaction(libc::SIGUSR1, &sa, std::ptr::null_mut());
    }

    let engine_config = match interposition {
        ServerInterposition::Baseline => None,
        ServerInterposition::Zpoline => Some(Config {
            xstate: XstateMask::None,
            ..Config::default()
        }),
        ServerInterposition::LazypolineNoX => Some(Config {
            xstate: XstateMask::None,
            ..Config::default()
        }),
        ServerInterposition::Lazypoline => Some(Config::default()),
        ServerInterposition::Sud => Some(Config {
            lazy_rewriting: false,
            ..Config::default()
        }),
    };
    if let Some(cfg) = engine_config {
        match lazypoline::init(cfg) {
            Ok(engine) => std::mem::forget(engine),
            Err(e) => {
                eprintln!("server child: interposition unavailable: {e}");
                std::process::exit(2);
            }
        }
    }

    let server = match Server::bind(ServerConfig {
        flavor,
        workers,
        docroot: docroot.path().to_path_buf(),
    }) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("server child: bind: {e}");
            std::process::exit(2);
        }
    };
    let port = server.port();
    let _ = write_fd.write_all(&port.to_le_bytes());
    drop(write_fd);

    static NEVER: AtomicBool = AtomicBool::new(false);
    let _ = server.run(&NEVER);
    std::process::exit(0);
}

unsafe extern "C" fn sigusr1_unenroll(
    _sig: libc::c_int,
    _info: *mut libc::siginfo_t,
    _ctx: *mut libc::c_void,
) {
    sud::set_selector(sud::Dispatch::Allow);
    let _ = sud::disable_thread();
}

fn pipe() -> io::Result<(std::fs::File, std::fs::File)> {
    let mut fds = [0i32; 2];
    // SAFETY: plain pipe2.
    if unsafe { libc::pipe2(fds.as_mut_ptr(), libc::O_CLOEXEC) } != 0 {
        return Err(io::Error::last_os_error());
    }
    // SAFETY: fresh fds owned exactly once each.
    unsafe {
        Ok((
            std::fs::File::from_raw_fd(fds[0]),
            std::fs::File::from_raw_fd(fds[1]),
        ))
    }
}

/// Runs the whole Figure 5 sweep.
///
/// # Errors
///
/// Propagates the first cell failure.
pub fn run_fig5(sweep: &SweepConfig) -> io::Result<Vec<MacroCell>> {
    let docroot = Docroot::create(&sweep.sizes)?;
    let mut cells = Vec::new();
    for &flavor in &sweep.flavors {
        for &workers in &sweep.worker_counts {
            for &size in &sweep.sizes {
                for &config in &sweep.configs {
                    let cell = run_cell(
                        &docroot,
                        flavor,
                        workers,
                        size,
                        config,
                        sweep.secs,
                        sweep.connections,
                    )?;
                    eprintln!(
                        "  {} w={} {}B {}: {:.0} req/s ({} errors)",
                        flavor.name(),
                        workers,
                        size,
                        config.name(),
                        cell.rps,
                        cell.errors,
                    );
                    cells.push(cell);
                }
            }
        }
    }
    Ok(cells)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_names_and_order() {
        let all = ServerInterposition::all();
        assert_eq!(all.len(), 5);
        assert_eq!(all[0].name(), "baseline");
        assert_eq!(all[4].name(), "SUD");
    }

    #[test]
    fn default_sweep_is_sane() {
        let s = SweepConfig::default();
        assert!(s.sizes.contains(&(256 << 10)));
        assert_eq!(s.worker_counts[0], 1);
        assert!(s.secs > 0.0);
    }

    // Full cells are exercised by the fig5 binary and an integration
    // test (they fork servers and run seconds-long load phases).
}

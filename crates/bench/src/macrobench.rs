//! The native Figure 5 web-server macrobenchmark.
//!
//! For every (connection count × mechanism) cell, a fresh server
//! process is forked, configured, and measured over localhost with the
//! epoll-based **open-loop generator** ([`httpd::run_open_loop`]) —
//! the paper's §V-B(b) setup scaled to this machine, extended with the
//! throughput-vs-connections scaling curve and per-cell latency
//! percentiles (p50/p99/p999 from the generator's HDR-style
//! histogram, measured against the *scheduled* send time so
//! coordinated omission does not flatter slow cells).
//!
//! Interposition rows are **mechanism registry names**
//! ([`mechanism::by_name`]), not a private enum: the server child
//! installs whatever backend the cell names, so any registered native
//! configuration can be swept. [`MECHANISMS`] holds the Figure 5 rows:
//!
//! * `none` — no machinery.
//! * `zpoline` — the engine primed by a warmup phase, then detached
//!   from SUD (`SIGUSR1` → unenroll): all hot sites are rewritten and
//!   dispatch through the trampoline with the kernel's SUD machinery
//!   completely off — the paper's own method for isolating pure
//!   rewriting performance (Fig. 4).
//! * `lazypoline-nox` / `lazypoline` — the hybrid engine without/with
//!   extended-state preservation.
//! * `sud` — the engine with lazy rewriting disabled: every syscall
//!   takes the SIGSYS slow path (pure SUD interposition).
//!
//! The sweep additionally runs [`RECORD_MECHANISM`]
//! (`lazypoline+record`): full interposition with the flight recorder
//! live, an async trace writer, and a **sharded drain**
//! (`LP_DRAIN_SHARDS=2` unless overridden) — the cell that proves
//! recording keeps up with server load without dropping events. The
//! server child reports its recorder counters back over the control
//! pipe before teardown (`SIGTERM` → eventfd stop → stats line).

use std::io::{self, Read, Write};
use std::os::fd::FromRawFd;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use httpd::{Docroot, Flavor, LoadConfig, OpenLoopConfig, Server, ServerConfig, StopFlag};
use mechanism::replay;

use crate::{env_f64, env_u64};

/// The Figure 5 interposition rows, as mechanism registry names, in
/// presentation order.
pub const MECHANISMS: [&str; 5] = ["none", "zpoline", "lazypoline-nox", "lazypoline", "sud"];

/// The recording row: lazypoline with the flight recorder and a
/// sharded async drain. Swept after [`MECHANISMS`].
pub const RECORD_MECHANISM: &str = "lazypoline+record";

/// All rows the default Figure 5 sweep runs.
pub fn fig5_mechanisms() -> Vec<&'static str> {
    let mut v = MECHANISMS.to_vec();
    v.push(RECORD_MECHANISM);
    v
}

/// One measured cell of Figure 5.
#[derive(Clone, Debug)]
pub struct MacroCell {
    /// Server flavour.
    pub flavor: Flavor,
    /// Worker processes.
    pub workers: usize,
    /// Served file size in bytes.
    pub size: usize,
    /// Concurrent keep-alive connections the generator held open.
    pub connections: usize,
    /// Mechanism registry name the server ran under.
    pub mechanism: &'static str,
    /// Measured requests per second.
    pub rps: f64,
    /// Completed requests.
    pub requests: u64,
    /// Client-observed errors.
    pub errors: u64,
    /// Requests still in flight when the measurement window closed.
    pub unfinished: u64,
    /// Latency percentiles in nanoseconds (scheduled-send to last
    /// response byte).
    pub p50_ns: u64,
    /// 99th percentile latency (ns).
    pub p99_ns: u64,
    /// 99.9th percentile latency (ns).
    pub p999_ns: u64,
    /// Recorder events pushed in the server child (0 unless the cell
    /// ran a `+record` mechanism).
    pub events_recorded: u64,
    /// Recorder events dropped at full rings in the server child.
    pub events_dropped: u64,
    /// Drain shards the child's recorder ran with (1 = single drainer).
    pub drain_shards: u64,
    /// Events each drain shard spooled (`replay::shard_drained`).
    pub shard_drained: Vec<u64>,
}

/// Parameters for one forked-server measurement.
#[derive(Clone, Debug)]
pub struct CellConfig {
    /// Server flavour.
    pub flavor: Flavor,
    /// Worker processes.
    pub workers: usize,
    /// Served file size in bytes.
    pub size: usize,
    /// Mechanism registry name.
    pub mechanism: &'static str,
    /// Generator connections.
    pub connections: usize,
    /// Generator event-loop threads.
    pub threads: usize,
    /// Open-loop arrival rate in req/s (0.0 = saturation mode).
    pub rate: f64,
    /// Max in-flight requests per connection (saturation mode).
    pub pipeline: usize,
    /// Measured seconds.
    pub secs: f64,
}

/// Sweep parameters (env-overridable).
#[derive(Clone, Debug)]
pub struct SweepConfig {
    /// Server flavour (`lighttpd-like` by default: the leanest syscall
    /// mix, so interposition overhead is most visible).
    pub flavor: Flavor,
    /// Worker processes (`LP_BENCH_WORKERS`).
    pub workers: usize,
    /// Served file size in bytes (`LP_BENCH_SIZE`).
    pub size: usize,
    /// Connection-count ladder, ascending (from `LP_BENCH_CONNS`).
    pub connections: Vec<usize>,
    /// Mechanism registry names to sweep.
    pub mechanisms: Vec<&'static str>,
    /// Measured seconds per cell (`LP_BENCH_SECS`).
    pub secs: f64,
    /// Generator threads (`LP_BENCH_THREADS`).
    pub threads: usize,
    /// Target arrival rate in req/s, 0 = saturation (`LP_BENCH_RATE`).
    pub rate: f64,
    /// Per-connection pipeline depth (`LP_BENCH_PIPELINE`).
    pub pipeline: usize,
}

/// The scaling ladder: ¼ steps down from `max` (e.g. 1024 → 16, 64,
/// 256, 1024), deduplicated for small maxima.
pub fn conn_ladder(max: usize) -> Vec<usize> {
    let mut ladder: Vec<usize> = [64usize, 16, 4, 1]
        .iter()
        .map(|d| (max / d).max(1))
        .collect();
    ladder.dedup();
    ladder
}

impl Default for SweepConfig {
    fn default() -> SweepConfig {
        SweepConfig {
            flavor: Flavor::LighttpdLike,
            workers: env_u64("LP_BENCH_WORKERS", 1) as usize,
            // 64 B bodies: the paper's small-size regime, where
            // per-request syscall cost (and thus interposition
            // overhead) dominates the memcpy of the body.
            size: env_u64("LP_BENCH_SIZE", 64) as usize,
            connections: conn_ladder(env_u64("LP_BENCH_CONNS", 1024) as usize),
            mechanisms: fig5_mechanisms(),
            secs: env_f64("LP_BENCH_SECS", 2.0),
            threads: env_u64("LP_BENCH_THREADS", 2) as usize,
            rate: env_f64("LP_BENCH_RATE", 0.0),
            pipeline: env_u64("LP_BENCH_PIPELINE", 16) as usize,
        }
    }
}

/// Recorder counters a server child reports back before teardown.
#[derive(Clone, Debug, Default)]
pub struct ChildStats {
    /// `replay::events_recorded()` in the child at stop.
    pub events_recorded: u64,
    /// `replay::events_dropped()` in the child at stop.
    pub events_dropped: u64,
    /// `replay::drain_shards()` the child's recorder configured.
    pub drain_shards: u64,
    /// Per-shard spooled-event counts.
    pub shard_drained: Vec<u64>,
}

/// Monotonic suffix for per-cell temp trace paths (several cells can
/// run within one parent process).
static TRACE_SEQ: AtomicU64 = AtomicU64::new(0);

/// A forked, mechanism-installed server: the fork/pipe/teardown
/// plumbing shared by every cell.
struct ServerChild {
    pid: i32,
    port: u16,
    /// Read end of the control pipe; the child sends its port at
    /// startup and a stats line at shutdown.
    pipe: std::fs::File,
    /// Temp trace path for `+record` cells (cleaned up on stop).
    trace: Option<PathBuf>,
}

impl ServerChild {
    /// Forks a server child running `mech` and waits for its port.
    ///
    /// # Panics
    ///
    /// Panics if `mech` is not a registered mechanism name.
    fn spawn(
        docroot: &Docroot,
        flavor: Flavor,
        workers: usize,
        mech: &'static str,
    ) -> io::Result<ServerChild> {
        assert!(
            mechanism::by_name(mech).is_some(),
            "{mech} is not a registered mechanism"
        );
        // Recording needs a trace sink: without `LP_TRACE_OUT` the
        // recorder has no drain thread and the rings overflow.
        let trace = mech.ends_with("+record").then(|| {
            std::env::temp_dir().join(format!(
                "lp_fig5_{}_{}.lptrace",
                std::process::id(),
                TRACE_SEQ.fetch_add(1, Ordering::Relaxed),
            ))
        });
        let (read_fd, write_fd) = pipe()?;

        // SAFETY: standard fork; the child only uses async-signal-safe-ish
        // setup before entering its own event loop.
        let pid = unsafe { libc::fork() };
        if pid < 0 {
            return Err(io::Error::last_os_error());
        }
        if pid == 0 {
            drop(read_fd);
            server_child(docroot, flavor, workers, mech, write_fd, trace.as_deref());
        }
        drop(write_fd);

        // Parent: learn the port.
        let mut buf = [0u8; 2];
        let mut r = read_fd;
        r.read_exact(&mut buf)?;
        let port = u16::from_le_bytes(buf);
        Ok(ServerChild {
            pid,
            port,
            pipe: r,
            trace,
        })
    }

    /// Detaches the (primed) child from SUD: the zpoline row's
    /// measurement configuration.
    fn detach_sud(&self) {
        // SAFETY: signals our own child's process group.
        unsafe { libc::kill(-self.pid, libc::SIGUSR1) };
        std::thread::sleep(Duration::from_millis(100));
    }

    /// Stops the child (SIGTERM → eventfd stop), reads its stats line,
    /// and reaps the process group.
    fn stop_and_stats(mut self) -> io::Result<ChildStats> {
        // SIGTERM the master only: forked workers inherit the handler
        // and a copy of the write fd, and must not race it for the
        // stats line. The master SIGKILLs them before reporting.
        unsafe { libc::kill(self.pid, libc::SIGTERM) };
        let mut tail = String::new();
        let _ = self.pipe.read_to_string(&mut tail);
        unsafe {
            libc::kill(-self.pid, libc::SIGKILL);
            libc::waitpid(self.pid, std::ptr::null_mut(), 0);
        }
        if let Some(trace) = &self.trace {
            cleanup_trace(trace);
        }
        Ok(parse_stats(&tail))
    }
}

/// Parses the child's `stats <recorded> <dropped> <shards> <d0> ...`
/// line; missing or malformed lines degrade to zeros (non-recording
/// cells report zeros anyway).
fn parse_stats(tail: &str) -> ChildStats {
    let mut stats = ChildStats::default();
    let Some(line) = tail.lines().rev().find(|l| l.starts_with("stats ")) else {
        return stats;
    };
    let mut nums = line.split_whitespace().skip(1).map(|w| w.parse::<u64>());
    let mut next = |d: &mut u64| {
        if let Some(Ok(n)) = nums.next() {
            *d = n;
        }
    };
    next(&mut stats.events_recorded);
    next(&mut stats.events_dropped);
    next(&mut stats.drain_shards);
    stats.shard_drained = nums.by_ref().map_while(Result::ok).collect();
    stats
}

/// Removes a `+record` cell's temp trace and its per-shard spool
/// files (the child is killed mid-session, so the spools survive it).
fn cleanup_trace(trace: &Path) {
    let _ = std::fs::remove_file(trace);
    for shard in 0..replay::MAX_SHARDS {
        let _ = std::fs::remove_file(trace.with_extension(format!("shard{shard}")));
    }
}

/// Runs one cell: forks the server, installs the named mechanism in the
/// child, measures open-loop throughput and latency, and tears the
/// server down (collecting its recorder counters).
///
/// # Errors
///
/// I/O errors from the fork/pipe/load plumbing.
///
/// # Panics
///
/// Panics if `cfg.mechanism` is not a registered mechanism name.
pub fn run_cell(docroot: &Docroot, cfg: &CellConfig) -> io::Result<MacroCell> {
    let child = ServerChild::spawn(docroot, cfg.flavor, cfg.workers, cfg.mechanism)?;
    let path = httpd::docroot::path_for_size(cfg.size);

    // Warmup: drives every hot syscall site at least once (rewriting).
    let _ = httpd::run_load(&LoadConfig {
        port: child.port,
        path: path.clone(),
        connections: 2,
        duration: Duration::from_millis(300),
    });

    if cfg.mechanism == "zpoline" {
        child.detach_sud();
    }

    let report = httpd::run_open_loop(&OpenLoopConfig {
        port: child.port,
        path,
        connections: cfg.connections,
        threads: cfg.threads,
        rate: cfg.rate,
        pipeline: cfg.pipeline,
        duration: Duration::from_secs_f64(cfg.secs),
    })?;
    let stats = child.stop_and_stats()?;

    Ok(MacroCell {
        flavor: cfg.flavor,
        workers: cfg.workers,
        size: cfg.size,
        connections: cfg.connections,
        mechanism: cfg.mechanism,
        rps: report.rps(),
        requests: report.requests,
        errors: report.errors,
        unfinished: report.unfinished,
        p50_ns: report.latency.percentile(0.50),
        p99_ns: report.latency.percentile(0.99),
        p999_ns: report.latency.percentile(0.999),
        events_recorded: stats.events_recorded,
        events_dropped: stats.events_dropped,
        drain_shards: stats.drain_shards,
        shard_drained: stats.shard_drained,
    })
}

/// Open-loop vs thread-per-connection generator throughput against the
/// same uninstrumented server, at equal client thread count.
#[derive(Clone, Debug)]
pub struct GeneratorComparison {
    /// Client threads both generators ran with.
    pub threads: usize,
    /// Connections the open-loop generator multiplexed over them.
    pub connections: usize,
    /// Open-loop saturation throughput.
    pub open_loop_rps: f64,
    /// Legacy closed-loop throughput (one thread per connection, so
    /// `threads` connections).
    pub closed_loop_rps: f64,
    /// `open_loop_rps / closed_loop_rps`.
    pub speedup: f64,
}

/// Measures both generators against a `none` server: the legacy
/// thread-per-connection client ping-pongs one request per thread,
/// the open-loop generator multiplexes the sweep's highest connection
/// count over the same number of threads.
///
/// # Errors
///
/// I/O errors from the fork/pipe/load plumbing.
pub fn run_generator_comparison(
    docroot: &Docroot,
    sweep: &SweepConfig,
) -> io::Result<GeneratorComparison> {
    let connections = sweep.connections.last().copied().unwrap_or(1);
    let child = ServerChild::spawn(docroot, sweep.flavor, sweep.workers, "none")?;
    let path = httpd::docroot::path_for_size(sweep.size);
    let duration = Duration::from_secs_f64(sweep.secs);

    let _ = httpd::run_load(&LoadConfig {
        port: child.port,
        path: path.clone(),
        connections: 2,
        duration: Duration::from_millis(300),
    });

    let closed = httpd::run_load(&LoadConfig {
        port: child.port,
        path: path.clone(),
        connections: sweep.threads,
        duration,
    })?;
    let open = httpd::run_open_loop(&OpenLoopConfig {
        port: child.port,
        path,
        connections,
        threads: sweep.threads,
        rate: 0.0,
        pipeline: sweep.pipeline,
        duration,
    })?;
    child.stop_and_stats()?;

    let closed_rps = closed.rps();
    let open_rps = open.rps();
    Ok(GeneratorComparison {
        threads: sweep.threads,
        connections,
        open_loop_rps: open_rps,
        closed_loop_rps: closed_rps,
        speedup: if closed_rps > 0.0 {
            open_rps / closed_rps
        } else {
            0.0
        },
    })
}

/// Everything the Figure 5 sweep measures.
#[derive(Clone, Debug)]
pub struct Fig5Results {
    /// All (connections × mechanism) cells, in sweep order.
    pub cells: Vec<MacroCell>,
    /// The generator self-measurement.
    pub comparison: GeneratorComparison,
}

/// Runs the whole Figure 5 sweep: the connection ladder against every
/// mechanism row, then the generator comparison.
///
/// # Errors
///
/// Propagates the first cell failure.
pub fn run_fig5(sweep: &SweepConfig) -> io::Result<Fig5Results> {
    let docroot = Docroot::create(&[sweep.size])?;
    let mut cells = Vec::new();
    for &connections in &sweep.connections {
        for &mech in &sweep.mechanisms {
            let cell = run_cell(
                &docroot,
                &CellConfig {
                    flavor: sweep.flavor,
                    workers: sweep.workers,
                    size: sweep.size,
                    mechanism: mech,
                    connections,
                    threads: sweep.threads,
                    rate: sweep.rate,
                    pipeline: sweep.pipeline,
                    secs: sweep.secs,
                },
            )?;
            eprintln!(
                "  {} w={} {}B c={} {}: {:.0} req/s p99={}us ({} errors, {} dropped)",
                sweep.flavor.name(),
                sweep.workers,
                sweep.size,
                connections,
                mech,
                cell.rps,
                cell.p99_ns / 1_000,
                cell.errors,
                cell.events_dropped,
            );
            cells.push(cell);
        }
    }
    let comparison = run_generator_comparison(&docroot, sweep)?;
    eprintln!(
        "  generators @ {} thread(s): open-loop {:.0} req/s ({} conns) vs closed-loop {:.0} req/s ({:.1}x)",
        comparison.threads,
        comparison.open_loop_rps,
        comparison.connections,
        comparison.closed_loop_rps,
        comparison.speedup,
    );
    Ok(Fig5Results { cells, comparison })
}

/// The server child body: process-group leader, signal plumbing,
/// mechanism install, then the event loop until SIGTERM.
fn server_child(
    docroot: &Docroot,
    flavor: Flavor,
    workers: usize,
    mech: &'static str,
    mut write_fd: std::fs::File,
    trace: Option<&Path>,
) -> ! {
    unsafe { libc::setpgid(0, 0) };

    // SIGUSR1 = "drop out of SUD" (zpoline detach), SIGTERM = "stop
    // serving and report stats". Both registered before the mechanism
    // installs; the engine adopts them into the wrapper protocol.
    unsafe {
        let mut sa: libc::sigaction = std::mem::zeroed();
        sa.sa_sigaction = sigusr1_unenroll as *const () as usize;
        sa.sa_flags = libc::SA_SIGINFO;
        libc::sigaction(libc::SIGUSR1, &sa, std::ptr::null_mut());
        let mut term: libc::sigaction = std::mem::zeroed();
        term.sa_sigaction = sigterm_stop as *const () as usize;
        term.sa_flags = libc::SA_SIGINFO;
        libc::sigaction(libc::SIGTERM, &term, std::ptr::null_mut());
    }

    if let Some(path) = trace {
        // Recording cell: point the recorder at the temp trace and
        // default to a sharded drain (the cell exists to prove the
        // recorder keeps up with server load without drops).
        std::env::set_var(mechanism::TRACE_OUT_ENV, path);
        if std::env::var_os(replay::DRAIN_SHARDS_ENV).is_none() {
            std::env::set_var(replay::DRAIN_SHARDS_ENV, "2");
        }
        // On hosts with fewer cores than producer + drainer threads the
        // drainers only run when the scheduler preempts the event loop,
        // so the rings must absorb a full timeslice of events (~1 ms of
        // saturated serving is >10k records). 64k records ≈ 5.6 MiB per
        // hot ring — cheap insurance against overflow drops.
        if std::env::var_os(replay::ring::LP_RING_CAPACITY).is_none() {
            std::env::set_var(replay::ring::LP_RING_CAPACITY, "65536");
        }
    }

    let backend = mechanism::by_name(mech).expect("validated by ServerChild::spawn");
    match backend.install(Box::new(interpose::PassthroughHandler)) {
        // The server runs under the mechanism until SIGKILL; never tear
        // down (teardown in the event loop would race in-flight
        // requests for no benefit in a throwaway child).
        Ok(active) => std::mem::forget(active),
        Err(e) => {
            eprintln!("server child: mechanism {mech} unavailable: {e}");
            std::process::exit(2);
        }
    }

    let server = match Server::bind(ServerConfig {
        flavor,
        workers,
        docroot: docroot.path().to_path_buf(),
    }) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("server child: bind: {e}");
            std::process::exit(2);
        }
    };
    let port = server.port();
    let _ = write_fd.write_all(&port.to_le_bytes());

    let _ = server.run(&STOP);

    // Stopped via SIGTERM: report the recorder counters over the pipe
    // (zeros when this cell never recorded). The drain threads are
    // still sweeping, so per-shard counts may trail `recorded` by the
    // in-ring residue; `dropped` is exact.
    let mut stats = format!(
        "stats {} {} {}",
        replay::events_recorded(),
        replay::events_dropped(),
        replay::drain_shards(),
    );
    for shard in 0..replay::drain_shards() as usize {
        stats.push_str(&format!(" {}", replay::shard_drained(shard)));
    }
    stats.push('\n');
    let _ = write_fd.write_all(stats.as_bytes());
    drop(write_fd);
    std::process::exit(0);
}

/// The child's stop flag: SIGTERM-driven, eventfd-backed so the
/// blocked `epoll_wait` wakes immediately.
static STOP: StopFlag = StopFlag::new();

unsafe extern "C" fn sigusr1_unenroll(
    _sig: libc::c_int,
    _info: *mut libc::siginfo_t,
    _ctx: *mut libc::c_void,
) {
    mechanism::detach_current_thread();
}

unsafe extern "C" fn sigterm_stop(
    _sig: libc::c_int,
    _info: *mut libc::siginfo_t,
    _ctx: *mut libc::c_void,
) {
    // Async-signal-safe: an atomic store plus one eventfd write.
    STOP.stop();
}

fn pipe() -> io::Result<(std::fs::File, std::fs::File)> {
    let mut fds = [0i32; 2];
    // SAFETY: plain pipe2.
    if unsafe { libc::pipe2(fds.as_mut_ptr(), libc::O_CLOEXEC) } != 0 {
        return Err(io::Error::last_os_error());
    }
    // SAFETY: fresh fds owned exactly once each.
    unsafe {
        Ok((
            std::fs::File::from_raw_fd(fds[0]),
            std::fs::File::from_raw_fd(fds[1]),
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mechanism_rows_are_registered() {
        for mech in fig5_mechanisms() {
            assert!(
                mechanism::by_name(mech).is_some(),
                "{mech} must resolve in the registry"
            );
        }
        assert_eq!(MECHANISMS[0], "none");
        assert_eq!(MECHANISMS[4], "sud");
        assert_eq!(fig5_mechanisms().last(), Some(&RECORD_MECHANISM));
    }

    #[test]
    fn conn_ladder_scales_in_quarter_steps() {
        assert_eq!(conn_ladder(1024), vec![16, 64, 256, 1024]);
        assert_eq!(conn_ladder(64), vec![1, 4, 16, 64]);
        assert_eq!(conn_ladder(8), vec![1, 2, 8]);
        assert_eq!(conn_ladder(1), vec![1]);
    }

    #[test]
    fn default_sweep_is_sane() {
        let s = SweepConfig::default();
        assert!(!s.connections.is_empty());
        assert!(s.connections.windows(2).all(|w| w[0] < w[1]));
        assert!(s.mechanisms.contains(&"lazypoline"));
        assert!(s.mechanisms.contains(&RECORD_MECHANISM));
        assert!(s.secs > 0.0);
        assert!(s.threads >= 1);
        assert!(s.pipeline >= 1);
    }

    #[test]
    fn stats_line_round_trips() {
        let s = parse_stats("port junk\nstats 1000 0 2 400 600\n");
        assert_eq!(s.events_recorded, 1000);
        assert_eq!(s.events_dropped, 0);
        assert_eq!(s.drain_shards, 2);
        assert_eq!(s.shard_drained, vec![400, 600]);
        let empty = parse_stats("");
        assert_eq!(empty.events_recorded, 0);
        assert_eq!(empty.shard_drained, Vec::<u64>::new());
    }

    // Full cells are exercised by the fig5 binary and an integration
    // test (they fork servers and run seconds-long load phases).
}

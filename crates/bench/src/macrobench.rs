//! The native Figure 5 web-server macrobenchmark.
//!
//! For every (server flavour × worker count × file size × mechanism)
//! cell, a fresh server process is forked, configured, and measured
//! over localhost with the wrk-like keep-alive client — the paper's
//! §V-B(b) setup scaled to this machine.
//!
//! Interposition rows are **mechanism registry names**
//! ([`mechanism::by_name`]), not a private enum: the server child
//! installs whatever backend the cell names, so any registered native
//! configuration can be swept. [`MECHANISMS`] holds the Figure 5 rows:
//!
//! * `none` — no machinery.
//! * `zpoline` — the engine primed by a warmup phase, then detached
//!   from SUD (`SIGUSR1` → unenroll): all hot sites are rewritten and
//!   dispatch through the trampoline with the kernel's SUD machinery
//!   completely off — the paper's own method for isolating pure
//!   rewriting performance (Fig. 4).
//! * `lazypoline-nox` / `lazypoline` — the hybrid engine without/with
//!   extended-state preservation.
//! * `sud` — the engine with lazy rewriting disabled: every syscall
//!   takes the SIGSYS slow path (pure SUD interposition).

use std::io::{self, Read, Write};
use std::os::fd::FromRawFd;
use std::sync::atomic::AtomicBool;
use std::time::Duration;

use httpd::{Docroot, Flavor, LoadConfig, Server, ServerConfig};

use crate::{env_f64, env_u64};

/// The Figure 5 interposition rows, as mechanism registry names, in
/// presentation order.
pub const MECHANISMS: [&str; 5] = ["none", "zpoline", "lazypoline-nox", "lazypoline", "sud"];

/// One measured cell of Figure 5.
#[derive(Clone, Debug)]
pub struct MacroCell {
    /// Server flavour.
    pub flavor: Flavor,
    /// Worker processes.
    pub workers: usize,
    /// Served file size in bytes.
    pub size: usize,
    /// Mechanism registry name the server ran under.
    pub mechanism: &'static str,
    /// Measured requests per second.
    pub rps: f64,
    /// Client-observed errors.
    pub errors: u64,
}

/// Sweep parameters (env-overridable).
#[derive(Clone, Debug)]
pub struct SweepConfig {
    /// Server flavours to run.
    pub flavors: Vec<Flavor>,
    /// Worker counts (paper: 1 and 12).
    pub worker_counts: Vec<usize>,
    /// File sizes (paper: 64B–256KB).
    pub sizes: Vec<usize>,
    /// Mechanism registry names to sweep.
    pub mechanisms: Vec<&'static str>,
    /// Measured seconds per cell.
    pub secs: f64,
    /// Client keep-alive connections.
    pub connections: usize,
}

impl Default for SweepConfig {
    fn default() -> SweepConfig {
        SweepConfig {
            flavors: vec![Flavor::NginxLike, Flavor::LighttpdLike],
            worker_counts: vec![1, env_u64("LP_BENCH_WORKERS", 12) as usize],
            sizes: vec![64, 4 << 10, 64 << 10, 256 << 10],
            mechanisms: MECHANISMS.to_vec(),
            secs: env_f64("LP_BENCH_SECS", 1.5),
            connections: env_u64("LP_BENCH_CONNS", 4) as usize,
        }
    }
}

/// Runs one cell: forks the server, installs the named mechanism in the
/// child, measures throughput, and tears the server down.
///
/// # Errors
///
/// I/O errors from the fork/pipe/load plumbing.
///
/// # Panics
///
/// Panics if `mech` is not a registered mechanism name.
pub fn run_cell(
    docroot: &Docroot,
    flavor: Flavor,
    workers: usize,
    size: usize,
    mech: &'static str,
    secs: f64,
    connections: usize,
) -> io::Result<MacroCell> {
    assert!(
        mechanism::by_name(mech).is_some(),
        "{mech} is not a registered mechanism"
    );
    let (read_fd, write_fd) = pipe()?;

    // SAFETY: standard fork; the child only uses async-signal-safe-ish
    // setup before entering its own event loop.
    let pid = unsafe { libc::fork() };
    if pid < 0 {
        return Err(io::Error::last_os_error());
    }
    if pid == 0 {
        drop(read_fd);
        server_child(docroot, flavor, workers, mech, write_fd);
    }
    drop(write_fd);

    // Parent: learn the port.
    let mut buf = [0u8; 2];
    let mut r = read_fd;
    r.read_exact(&mut buf)?;
    let port = u16::from_le_bytes(buf);

    let path = httpd::docroot::path_for_size(size);

    // Warmup: drives every hot syscall site at least once (rewriting).
    let _ = httpd::run_load(&LoadConfig {
        port,
        path: path.clone(),
        connections: 2,
        duration: Duration::from_millis(300),
    });

    if mech == "zpoline" {
        // Detach the primed server from SUD.
        unsafe { libc::kill(-pid, libc::SIGUSR1) };
        std::thread::sleep(Duration::from_millis(100));
    }

    let report = httpd::run_load(&LoadConfig {
        port,
        path,
        connections,
        duration: Duration::from_secs_f64(secs),
    })?;

    unsafe {
        libc::kill(-pid, libc::SIGKILL);
        libc::waitpid(pid, std::ptr::null_mut(), 0);
    }

    Ok(MacroCell {
        flavor,
        workers,
        size,
        mechanism: mech,
        rps: report.rps(),
        errors: report.errors,
    })
}

fn server_child(
    docroot: &Docroot,
    flavor: Flavor,
    workers: usize,
    mech: &'static str,
    mut write_fd: std::fs::File,
) -> ! {
    unsafe { libc::setpgid(0, 0) };

    // SIGUSR1 = "drop out of SUD" (zpoline detach). Registered before
    // the mechanism installs; the engine adopts it into the wrapper
    // protocol.
    unsafe {
        let mut sa: libc::sigaction = std::mem::zeroed();
        sa.sa_sigaction = sigusr1_unenroll as *const () as usize;
        sa.sa_flags = libc::SA_SIGINFO;
        libc::sigaction(libc::SIGUSR1, &sa, std::ptr::null_mut());
    }

    let backend = mechanism::by_name(mech).expect("validated by run_cell");
    match backend.install(Box::new(interpose::PassthroughHandler)) {
        // The server runs under the mechanism until SIGKILL; never tear
        // down (teardown in the event loop would race in-flight
        // requests for no benefit in a throwaway child).
        Ok(active) => std::mem::forget(active),
        Err(e) => {
            eprintln!("server child: mechanism {mech} unavailable: {e}");
            std::process::exit(2);
        }
    }

    let server = match Server::bind(ServerConfig {
        flavor,
        workers,
        docroot: docroot.path().to_path_buf(),
    }) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("server child: bind: {e}");
            std::process::exit(2);
        }
    };
    let port = server.port();
    let _ = write_fd.write_all(&port.to_le_bytes());
    drop(write_fd);

    static NEVER: AtomicBool = AtomicBool::new(false);
    let _ = server.run(&NEVER);
    std::process::exit(0);
}

unsafe extern "C" fn sigusr1_unenroll(
    _sig: libc::c_int,
    _info: *mut libc::siginfo_t,
    _ctx: *mut libc::c_void,
) {
    mechanism::detach_current_thread();
}

fn pipe() -> io::Result<(std::fs::File, std::fs::File)> {
    let mut fds = [0i32; 2];
    // SAFETY: plain pipe2.
    if unsafe { libc::pipe2(fds.as_mut_ptr(), libc::O_CLOEXEC) } != 0 {
        return Err(io::Error::last_os_error());
    }
    // SAFETY: fresh fds owned exactly once each.
    unsafe {
        Ok((
            std::fs::File::from_raw_fd(fds[0]),
            std::fs::File::from_raw_fd(fds[1]),
        ))
    }
}

/// Runs the whole Figure 5 sweep.
///
/// # Errors
///
/// Propagates the first cell failure.
pub fn run_fig5(sweep: &SweepConfig) -> io::Result<Vec<MacroCell>> {
    let docroot = Docroot::create(&sweep.sizes)?;
    let mut cells = Vec::new();
    for &flavor in &sweep.flavors {
        for &workers in &sweep.worker_counts {
            for &size in &sweep.sizes {
                for &mech in &sweep.mechanisms {
                    let cell = run_cell(
                        &docroot,
                        flavor,
                        workers,
                        size,
                        mech,
                        sweep.secs,
                        sweep.connections,
                    )?;
                    eprintln!(
                        "  {} w={} {}B {}: {:.0} req/s ({} errors)",
                        flavor.name(),
                        workers,
                        size,
                        mech,
                        cell.rps,
                        cell.errors,
                    );
                    cells.push(cell);
                }
            }
        }
    }
    Ok(cells)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mechanism_rows_are_registered() {
        for mech in MECHANISMS {
            assert!(
                mechanism::by_name(mech).is_some(),
                "{mech} must resolve in the registry"
            );
        }
        assert_eq!(MECHANISMS[0], "none");
        assert_eq!(MECHANISMS[4], "sud");
    }

    #[test]
    fn default_sweep_is_sane() {
        let s = SweepConfig::default();
        assert!(s.sizes.contains(&(256 << 10)));
        assert_eq!(s.worker_counts[0], 1);
        assert_eq!(s.mechanisms, MECHANISMS.to_vec());
        assert!(s.secs > 0.0);
    }

    // Full cells are exercised by the fig5 binary and an integration
    // test (they fork servers and run seconds-long load phases).
}

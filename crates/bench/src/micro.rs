//! The native Table II / Figure 4 microbenchmark.
//!
//! "We measure the CPU cycles required to interpose a non-existent
//! syscall (number 500) 100M times" (§V-B(a)). One generic driver
//! measures every row: each Table II configuration is a *named backend*
//! in the `mechanism` registry ([`TABLE2_PLAN`]), installed around a
//! passthrough handler, measured, and torn down — no per-mechanism
//! engine-state sequencing lives here.
//!
//! Each configuration gets its own benchmark loop with its own
//! `syscall` instruction so lazy rewriting of one site cannot
//! contaminate another configuration:
//!
//! * `loop_plain` — never intercepted: used for the bare baseline and
//!   for "baseline with SUD enabled (selector=ALLOW)".
//! * `loop_sud` — used for the pure-SUD row; the loop re-arms the
//!   selector to BLOCK each iteration because the (non-rewriting)
//!   `sud-raw` handler leaves it at ALLOW on return. The re-arm store
//!   is part of the measured workload, exactly as in the classic
//!   deployment.
//! * `loop_fast` — patched once by the lazypoline slow path, then
//!   measured in steady state for the zpoline and lazypoline rows
//!   (the paper does the same: "we manually rewrote the syscall
//!   instruction up front, so there is no initial execution of the
//!   slow path").
//!
//! The zpoline row reuses the lazypoline fast path with SUD disabled
//! ([`mechanism::ActiveMechanism::detach`] after priming) — exactly the
//! paper's Figure 4 methodology: "we run the microbenchmark of
//! lazypoline's fast path again with SUD disabled […] without the SUD
//! overhead, lazypoline's fast path matches zpoline".

use std::arch::asm;
use std::arch::x86_64::_rdtsc;

use mechanism::XstateMask;

use crate::env_u64;
use crate::report::{geomean, rel_stddev_pct};

/// One configuration's measurement across runs.
#[derive(Clone, Debug)]
pub struct Measurement {
    /// Configuration label (Table II row name).
    pub name: &'static str,
    /// Cycles per syscall, one sample per run.
    pub cycles_per_call: Vec<f64>,
}

impl Measurement {
    /// Geomean cycles per call.
    pub fn cycles(&self) -> f64 {
        geomean(&self.cycles_per_call)
    }

    /// Relative standard deviation (%).
    pub fn stddev_pct(&self) -> f64 {
        rel_stddev_pct(&self.cycles_per_call)
    }
}

/// All Table II rows from one benchmark session.
#[derive(Clone, Debug)]
pub struct MicroResults {
    /// Bare syscall round trip.
    pub baseline: Measurement,
    /// SUD enabled, selector ALLOW, untouched site.
    pub sud_enabled_allow: Measurement,
    /// Rewritten site, SUD disabled (pure zpoline).
    pub zpoline: Measurement,
    /// Rewritten site, SUD enabled, no xstate preservation.
    pub lazypoline_nox: Measurement,
    /// Rewritten site, SUD enabled, full xstate preservation.
    pub lazypoline: Measurement,
    /// Full lazypoline with the flight recorder mirroring every
    /// syscall into the per-thread rings (record-overhead row).
    pub lazypoline_record: Measurement,
    /// Full lazypoline dispatching into a compiled-in two-handler
    /// [`interpose::ChainHandler`] — the baseline the loaded-hook row
    /// is judged against.
    pub lazypoline_chain: Measurement,
    /// Full lazypoline under the `lazypoline+hooks` backend with the
    /// no-op `hook_noop` cdylib loaded via `LP_HOOKS` — same stack
    /// shape as the chain row, but one handler crossed the `dlopen`
    /// ABI. `None` when the example hook library is not built.
    pub lazypoline_hooks: Option<Measurement>,
    /// Full lazypoline with a [`sfip::SfipHandler`] enforcing (count
    /// mode) the transition automaton learned from the `+record` row's
    /// own trace — the flow-integrity check's fast-path cost. `None`
    /// when the record row's trace could not be learned from.
    pub lazypoline_sfip: Option<Measurement>,
    /// Pure SUD interposition (SIGSYS per syscall).
    pub sud: Measurement,
    /// Per-row mechanism counters (row label → delta snapshot covering
    /// that row's install-to-teardown window), in measurement order.
    pub stats: Vec<(&'static str, mechanism::StatsSnapshot)>,
    /// Iterations per run used.
    pub iters: u64,
    /// Runs per configuration.
    pub runs: u64,
    /// Trace summary from the `lazypoline+record` row: that row runs
    /// with a live trace session (async drain thread + mmap spill), so
    /// the measured cost is the full production recording pipeline and
    /// the summary proves (or disproves) the zero-drop claim.
    pub recording: Option<mechanism::replay::RecordSummary>,
}

impl MicroResults {
    /// Rows in Table II order with overhead ratios vs baseline.
    pub fn rows(&self) -> Vec<(&'static str, f64, f64)> {
        let base = self.baseline.cycles();
        [
            &self.zpoline,
            &self.lazypoline_nox,
            &self.lazypoline,
            &self.lazypoline_record,
            &self.lazypoline_chain,
        ]
        .into_iter()
        .chain(self.lazypoline_hooks.as_ref())
        .chain(self.lazypoline_sfip.as_ref())
        .chain([&self.sud, &self.sud_enabled_allow])
        .map(|m| (m.name, m.cycles() / base, m.stddev_pct()))
        .collect()
    }

    /// The mechanism counter snapshot recorded for a row label.
    pub fn snapshot_for(&self, label: &str) -> Option<&mechanism::StatsSnapshot> {
        self.stats
            .iter()
            .find(|(l, _)| *l == label)
            .map(|(_, s)| s)
    }
}

#[inline(never)]
fn loop_plain(iters: u64) {
    debug_assert!(iters > 0);
    unsafe {
        asm!(
            "2:",
            "mov eax, 500",
            "syscall",
            "sub {c}, 1",
            "jnz 2b",
            c = inout(reg) iters => _,
            out("rax") _, out("rcx") _, out("r11") _,
        );
    }
}

#[inline(never)]
fn loop_fast(iters: u64) {
    debug_assert!(iters > 0);
    unsafe {
        asm!(
            "2:",
            "mov eax, 500",
            "syscall", // ← lazily rewritten to `call rax` on first BLOCK execution
            "sub {c}, 1",
            "jnz 2b",
            c = inout(reg) iters => _,
            out("rax") _, out("rcx") _, out("r11") _,
        );
    }
}

#[inline(never)]
fn loop_sud(iters: u64) {
    debug_assert!(iters > 0);
    let sel = sud::selector_ptr();
    // After the final iteration the handler has left the selector at
    // ALLOW, so the loop exits disarmed; the backend's teardown restores
    // the rest (SUD off, previous SIGSYS disposition).
    unsafe {
        asm!(
            "2:",
            "mov byte ptr [{sel}], 1", // re-arm BLOCK (handler left ALLOW)
            "mov eax, 500",
            "syscall", // every iteration: SIGSYS → handler emulates
            "sub {c}, 1",
            "jnz 2b",
            c = inout(reg) iters => _,
            sel = in(reg) sel,
            out("rax") _, out("rcx") _, out("r11") _,
        );
    }
}

fn time_loop(f: fn(u64), iters: u64) -> f64 {
    let start = unsafe { _rdtsc() };
    f(iters);
    let end = unsafe { _rdtsc() };
    (end - start) as f64 / iters as f64
}

fn measure(name: &'static str, f: fn(u64), iters: u64, runs: u64) -> Measurement {
    // One warmup run.
    f(iters.clamp(1, 10_000));
    let cycles_per_call = (0..runs).map(|_| time_loop(f, iters)).collect();
    Measurement {
        name,
        cycles_per_call,
    }
}

/// Whether this host can run the native microbenchmark at all.
pub fn environment_supported() -> bool {
    zpoline::Trampoline::environment_supported() && sud::is_supported()
}

/// One Table II row: a `mechanism` registry name plus how to measure
/// it. The driver knows nothing about what a backend *is* — install,
/// optionally prime/detach, time the loop, snapshot the counters.
struct RowSpec {
    /// Registry key for [`mechanism::by_name`].
    backend: &'static str,
    /// Table II row label.
    label: &'static str,
    /// The measured loop.
    body: fn(u64),
    /// Builds the handler the backend installs. Every standard row
    /// uses a bare passthrough; the hook-stack rows install richer
    /// shapes so the *dispatch structure* is what varies, not the work.
    handler: fn() -> Box<dyn interpose::SyscallHandler>,
    /// `LP_HOOKS` value to export around the install (empty: leave the
    /// ambient environment alone).
    hooks: &'static str,
    /// Run one iteration after install so the lazy rewriter patches the
    /// loop's shared syscall site before timing.
    prime: bool,
    /// Detach from SUD after priming — the zpoline row: patched site,
    /// pure rewriting, no SUD.
    detach: bool,
    /// Bound iterations by `LP_BENCH_SUD_ITERS` (the raw-SUD row pays a
    /// full signal round trip per iteration).
    capped: bool,
    /// Run the row with a live trace session: `LP_TRACE_OUT` points at
    /// a scratch trace so the `+record` backend spins up its drain
    /// thread and spills for real — recording cost without the spill
    /// pipeline would be a fiction.
    record: bool,
}

/// The standard rows' handler: a bare passthrough.
fn passthrough_handler() -> Box<dyn interpose::SyscallHandler> {
    Box::new(interpose::PassthroughHandler)
}

/// The loaded-hook comparator: a compiled-in two-entry chain (anchor +
/// one no-op member) — structurally the same stack the
/// `lazypoline+hooks` row runs, with zero `dlopen` in sight.
fn chain_handler() -> Box<dyn interpose::SyscallHandler> {
    Box::new(
        interpose::ChainHandler::new()
            .push(Box::new(interpose::PassthroughHandler))
            .push(Box::new(interpose::PassthroughHandler)),
    )
}

/// The Table II measurement plan, in execution order.
///
/// Ordering constraint: `sud-raw` owns the `SIGSYS` disposition and
/// must run before any engine-backed row initialises the engine
/// (process-global, one-way).
const TABLE2_PLAN: [RowSpec; 7] = [
    RowSpec {
        backend: "none",
        label: "baseline",
        body: loop_plain,
        prime: false,
        detach: false,
        capped: false,
        record: false,
        handler: passthrough_handler,
        hooks: "",
    },
    RowSpec {
        backend: "sud-allow",
        label: "baseline with SUD enabled (selector=ALLOW)",
        body: loop_plain,
        prime: false,
        detach: false,
        capped: false,
        record: false,
        handler: passthrough_handler,
        hooks: "",
    },
    RowSpec {
        backend: "sud-raw",
        label: "SUD",
        body: loop_sud,
        prime: false,
        detach: false,
        capped: true,
        record: false,
        handler: passthrough_handler,
        hooks: "",
    },
    RowSpec {
        backend: "lazypoline",
        label: "lazypoline",
        body: loop_fast,
        prime: true,
        detach: false,
        capped: false,
        record: false,
        handler: passthrough_handler,
        hooks: "",
    },
    RowSpec {
        backend: "lazypoline+record",
        label: "lazypoline+record (flight recorder)",
        body: loop_fast,
        prime: true,
        detach: false,
        capped: false,
        record: true,
        handler: passthrough_handler,
        hooks: "",
    },
    RowSpec {
        backend: "lazypoline-nox",
        label: "lazypoline without xstate preservation",
        body: loop_fast,
        prime: true,
        detach: false,
        capped: false,
        record: false,
        handler: passthrough_handler,
        hooks: "",
    },
    RowSpec {
        backend: "zpoline",
        label: "zpoline",
        body: loop_fast,
        prime: true,
        detach: true,
        capped: false,
        record: false,
        handler: passthrough_handler,
        hooks: "",
    },
];

/// Installs `row.backend` by name, measures `row.body`, and returns the
/// timing plus the backend's counter deltas for the window. Recording
/// rows run with a live trace session; its summary rides along.
fn measure_row(
    row: &RowSpec,
    iters: u64,
    runs: u64,
) -> (
    Measurement,
    mechanism::StatsSnapshot,
    Option<mechanism::replay::RecordSummary>,
) {
    // A recording row must pay for the real pipeline: trace session,
    // drain thread, mmap spill. `LP_TRACE_OUT` set by the caller keeps
    // the trace; otherwise it lands in a scratch file we remove.
    let mut scratch_trace = None;
    let mut scratch_capacity = false;
    if row.record && std::env::var_os("LP_TRACE_OUT").is_none() {
        let path = std::env::temp_dir().join(format!("lp_table2_{}.lpt", std::process::id()));
        std::env::set_var("LP_TRACE_OUT", &path);
        scratch_trace = Some(path);
    }
    if row.record && std::env::var_os(mechanism::replay::ring::LP_RING_CAPACITY).is_none() {
        // The bench thread is CPU-bound: on a single-core host the
        // drainer only runs when the producer's timeslice expires, so
        // the ring must absorb a full timeslice of production. Size it
        // to hold one whole measured run — zero drops by construction,
        // and the drainer still spills every event for the summary.
        let capacity = (2 * iters).next_power_of_two().clamp(
            mechanism::replay::ring::DEFAULT_RING_CAPACITY as u64,
            mechanism::replay::ring::MAX_RING_CAPACITY as u64,
        );
        std::env::set_var(
            mechanism::replay::ring::LP_RING_CAPACITY,
            capacity.to_string(),
        );
        scratch_capacity = true;
    }
    // Hook rows pin LP_HOOKS for the install window only, restoring
    // whatever the harness exported afterwards.
    let ambient_hooks = std::env::var_os("LP_HOOKS");
    if !row.hooks.is_empty() {
        std::env::set_var("LP_HOOKS", row.hooks);
    }
    let backend = mechanism::by_name(row.backend)
        .unwrap_or_else(|| panic!("{} is not in the mechanism registry", row.backend));
    let mut active = backend
        .install((row.handler)())
        .unwrap_or_else(|e| panic!("install {}: {e}", row.backend));
    if !row.hooks.is_empty() {
        match &ambient_hooks {
            Some(v) => std::env::set_var("LP_HOOKS", v),
            None => std::env::remove_var("LP_HOOKS"),
        }
    }
    if row.prime {
        (row.body)(1);
    }
    if row.detach {
        active.detach();
    }
    let m = measure(row.label, row.body, iters, runs);
    let stats = active.stats();
    let summary = if row.record {
        let s = active
            .finish_recording()
            .map(|r| r.unwrap_or_else(|e| panic!("finishing {} trace: {e}", row.backend)));
        if let Some(path) = scratch_trace {
            std::env::remove_var("LP_TRACE_OUT");
            let _ = std::fs::remove_file(&path);
        }
        if scratch_capacity {
            std::env::remove_var(mechanism::replay::ring::LP_RING_CAPACITY);
        }
        s
    } else {
        None
    };
    (m, stats, summary)
}

/// Runs the full Table II benchmark session through the generic driver.
///
/// Iterations and run counts come from `LP_BENCH_ITERS` (default
/// 200_000) and `LP_BENCH_RUNS` (default 10, like the paper); the
/// raw-SUD row is additionally bounded by `LP_BENCH_SUD_ITERS`
/// (default 50_000).
///
/// # Panics
///
/// Panics if the environment lacks SUD or page-zero mapping — call
/// [`environment_supported`] first.
pub fn run_table2() -> MicroResults {
    assert!(environment_supported(), "SUD or page-zero unavailable");
    let iters = env_u64("LP_BENCH_ITERS", 200_000).max(1);
    let runs = env_u64("LP_BENCH_RUNS", 10).max(1);
    let sud_iters = iters.min(env_u64("LP_BENCH_SUD_ITERS", 50_000)).max(1);

    // The sfip row enforces an automaton learned from the `+record`
    // row's own trace, so that trace must outlive its row: pin
    // `LP_TRACE_OUT` to a scratch path when the harness left it unset
    // (measure_row keeps — and never deletes — a caller-provided path).
    let ambient_trace = std::env::var_os("LP_TRACE_OUT");
    let learn_trace = match &ambient_trace {
        Some(v) => std::path::PathBuf::from(v),
        None => {
            let p = std::env::temp_dir().join(format!("lp_table2_learn_{}.lpt", std::process::id()));
            std::env::set_var("LP_TRACE_OUT", &p);
            p
        }
    };

    let mut measurements = Vec::with_capacity(TABLE2_PLAN.len());
    let mut stats = Vec::with_capacity(TABLE2_PLAN.len() + 3);
    let mut recording = None;
    for row in &TABLE2_PLAN {
        let row_iters = if row.capped { sud_iters } else { iters };
        let (m, s, summary) = measure_row(row, row_iters, runs);
        stats.push((row.label, s));
        measurements.push(m);
        recording = recording.or(summary);
    }

    // Syscall-flow-integrity row: learn the transition automaton from
    // the record row's trace, then measure the identical loop under
    // `lazypoline+sfip` (count mode — the check runs, nothing dies).
    let lazypoline_sfip = run_sfip_row(&learn_trace, iters, runs, &mut stats);
    if ambient_trace.is_none() {
        std::env::remove_var("LP_TRACE_OUT");
        let _ = std::fs::remove_file(&learn_trace);
    }

    // Hook-stack rows: the compiled-in chain comparator, then the same
    // stack shape with one member loaded over the `lp_hook_v1` ABI.
    let chain_row = RowSpec {
        backend: "lazypoline",
        label: "lazypoline+chain (compiled-in no-op chain)",
        body: loop_fast,
        prime: true,
        detach: false,
        capped: false,
        record: false,
        handler: chain_handler,
        hooks: "",
    };
    let (lazypoline_chain, s, _) = measure_row(&chain_row, iters, runs);
    stats.push((chain_row.label, s));

    // Skip (don't fail) when the example cdylib isn't built — the JSON
    // then simply lacks the row, like any unsupported configuration.
    let lazypoline_hooks = match hookabi::load_from_spec("hook_noop") {
        Ok(_) => {
            let row = RowSpec {
                backend: "lazypoline+hooks",
                label: "lazypoline+hooks (loaded no-op hook)",
                body: loop_fast,
                prime: true,
                detach: false,
                capped: false,
                record: false,
                handler: passthrough_handler,
                hooks: "hook_noop",
            };
            let (m, s, _) = measure_row(&row, iters, runs);
            stats.push((row.label, s));
            Some(m)
        }
        Err(e) => {
            eprintln!("skip: lazypoline+hooks row ({e})");
            None
        }
    };

    let mut it = measurements.into_iter();
    let (baseline, sud_enabled_allow, sud_m, lazypoline_m, lazypoline_record, lazypoline_nox, zpoline_m) = (
        it.next().unwrap(),
        it.next().unwrap(),
        it.next().unwrap(),
        it.next().unwrap(),
        it.next().unwrap(),
        it.next().unwrap(),
        it.next().unwrap(),
    );

    MicroResults {
        baseline,
        sud_enabled_allow,
        zpoline: zpoline_m,
        lazypoline_nox,
        lazypoline: lazypoline_m,
        lazypoline_record,
        lazypoline_chain,
        lazypoline_hooks,
        lazypoline_sfip,
        sud: sud_m,
        stats,
        iters,
        runs,
        recording,
    }
}

/// Learns an LPSFIP1 policy from the record row's trace and measures
/// the `lazypoline+sfip` row against it. Skips (returning `None`, like
/// the hooks row) when the trace is unreadable or empty — the table
/// then simply lacks the row.
fn run_sfip_row(
    trace: &std::path::Path,
    iters: u64,
    runs: u64,
    stats: &mut Vec<(&'static str, mechanism::StatsSnapshot)>,
) -> Option<Measurement> {
    let (_, records) = match mechanism::replay::read_trace_path(trace) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("skip: lazypoline+sfip row (reading {}: {e})", trace.display());
            return None;
        }
    };
    let policy = match sfip::Policy::learn(&records, "lazypoline+record") {
        Ok(p) => p,
        Err(e) => {
            eprintln!("skip: lazypoline+sfip row (learning: {e})");
            return None;
        }
    };
    let policy_path = std::env::temp_dir().join(format!("lp_table2_{}.sfip", std::process::id()));
    if let Err(e) = policy.save(&policy_path) {
        eprintln!("skip: lazypoline+sfip row (saving policy: {e})");
        return None;
    }
    std::env::set_var(sfip::POLICY_ENV, &policy_path);
    std::env::set_var(sfip::ACTION_ENV, "count");
    let row = RowSpec {
        backend: "lazypoline+sfip",
        label: "lazypoline+sfip (flow-integrity check)",
        body: loop_fast,
        prime: true,
        detach: false,
        capped: false,
        record: false,
        handler: passthrough_handler,
        hooks: "",
    };
    let (m, s, _) = measure_row(&row, iters, runs);
    std::env::remove_var(sfip::POLICY_ENV);
    std::env::remove_var(sfip::ACTION_ENV);
    let _ = std::fs::remove_file(&policy_path);
    stats.push((row.label, s));
    Some(m)
}

/// The interest-filtering win for *loaded* hooks: a [`interpose::HookStack`]
/// holding only one dlopen'ed hook, measured on the shared dispatch
/// decision path ([`interpose::interpose_syscall`]) with syscall 500.
///
/// * `wide` — `hook_noop` declares interest in every syscall, so each
///   iteration builds an event and virtually dispatches through the
///   loaded member.
/// * `narrow` — `hook_openat` declares interest in `openat` only;
///   syscall 500 fails the stack's recomputed interest gate and
///   executes raw, exactly like a compiled-in scoped policy.
///
/// Runs on any host (no SUD, no page zero). `None` when the example
/// hook cdylibs are not built.
#[derive(Clone, Debug)]
pub struct HookWinCurve {
    /// Iterations per run.
    pub iters: u64,
    /// Runs per configuration.
    pub runs: u64,
    /// Only `hook_noop` loaded (interest: all syscalls).
    pub wide: Measurement,
    /// Only `hook_openat` loaded (interest: `openat` only).
    pub narrow: Measurement,
}

/// Measures [`HookWinCurve`]; see the type docs.
pub fn run_hook_win_curve() -> Option<HookWinCurve> {
    let iters = env_u64("LP_BENCH_ITERS", 200_000).max(1);
    let runs = env_u64("LP_BENCH_RUNS", 10).max(1);

    let measure_only = |spec: &str, name: &'static str| -> Option<Measurement> {
        let mut hooks = match hookabi::load_from_spec(spec) {
            Ok(h) => h,
            Err(e) => {
                eprintln!("skip: hook win-curve ({e})");
                return None;
            }
        };
        let hook = hooks.pop()?;
        // The stack must contain ONLY the loaded hook: a compiled-in
        // anchor with all-syscalls interest would defeat the narrowing
        // this cell exists to show.
        let stack = interpose::HookStack::new();
        stack.attach_dynamic(Box::new(hook), 0);
        let guard = interpose::install_handler(Box::new(stack));
        let m = measure(name, loop_interest_dispatch, iters, runs);
        drop(guard);
        Some(m)
    };

    let wide = measure_only("hook_noop", "dispatch, loaded hook_noop (interest: all)")?;
    let narrow = measure_only("hook_openat", "dispatch, loaded hook_openat (interest: openat)")?;
    Some(HookWinCurve {
        iters,
        runs,
        wide,
        narrow,
    })
}

/// The `lazypoline-hardened` Table II row, measured in a **child**
/// process: the seccomp backstop is one-way per process, so installing
/// it in the benchmark process would leave every later row (and the
/// dispatch/batch ablations) running under the kill filter.
#[derive(Clone, Debug)]
pub struct HardenedRow {
    /// Steady-state fast-path timing under the hardened configuration.
    pub measurement: Measurement,
    /// Counter deltas for the measured window (only the fields the
    /// wire format carries; the rest stay 0).
    pub stats: mechanism::StatsSnapshot,
    /// The degradation-ladder rung the child reached (`Full` with MPK
    /// hardware, `BackstopOnly` without, etc.).
    pub harden_level: String,
}

/// Child-process entry for the hardened row: installs the
/// `lazypoline-hardened` backend, measures [`loop_fast`] in steady
/// state, and prints the wire format ([`parse_hardened_output`]) to
/// stdout. The parent re-execs this binary with `--hardened-row`.
pub fn hardened_child_main() -> ! {
    if !environment_supported() || mechanism::by_name("lazypoline-hardened").is_none() {
        std::process::exit(2);
    }
    let iters = env_u64("LP_BENCH_ITERS", 200_000).max(1);
    let runs = env_u64("LP_BENCH_RUNS", 10).max(1);
    let row = RowSpec {
        backend: "lazypoline-hardened",
        label: "lazypoline (hardened)",
        body: loop_fast,
        prime: true,
        detach: false,
        capped: false,
        record: false,
        handler: passthrough_handler,
        hooks: "",
    };
    let (m, stats, _) = measure_row(&row, iters, runs);
    let mut out = String::from("cycles");
    for c in &m.cycles_per_call {
        out.push_str(&format!(" {c}"));
    }
    out.push_str(&format!(
        "\nstats {} {} {} {} {} {}\nharden {:?}\n",
        stats.dispatches,
        stats.slow_path_hits,
        stats.sites_patched,
        stats.bypass_blocked,
        stats.pkru_switches,
        stats.drain_yields,
        lazypoline::health().harden,
    ));
    print!("{out}");
    std::process::exit(0);
}

/// Runs the hardened row by re-execing the current binary with
/// `--hardened-row` and parsing its stdout. `None` when the child
/// can't run the row (exit 2) or dies under its own backstop — the
/// table simply omits the row, like any other unsupported
/// configuration.
pub fn run_hardened_row() -> Option<HardenedRow> {
    let exe = std::env::current_exe().ok()?;
    let out = std::process::Command::new(exe)
        .arg("--hardened-row")
        .output()
        .ok()?;
    if !out.status.success() {
        eprintln!(
            "skip: hardened-row child exited with {} — {}",
            out.status,
            String::from_utf8_lossy(&out.stderr).trim()
        );
        return None;
    }
    parse_hardened_output(&String::from_utf8_lossy(&out.stdout))
}

/// Parses the child's line-oriented wire format: `cycles <f64>...`,
/// `stats <dispatches> <slow_path_hits> <sites_patched>
/// <bypass_blocked> <pkru_switches> <drain_yields>`, `harden <rung>`.
fn parse_hardened_output(text: &str) -> Option<HardenedRow> {
    let mut cycles = Vec::new();
    let mut stats = mechanism::StatsSnapshot {
        mechanism: "lazypoline-hardened",
        ..Default::default()
    };
    let mut harden_level = String::new();
    for line in text.lines() {
        let mut it = line.split_whitespace();
        match it.next() {
            Some("cycles") => cycles = it.filter_map(|t| t.parse().ok()).collect(),
            Some("stats") => {
                let mut n = || it.next().and_then(|t| t.parse().ok()).unwrap_or(0);
                stats.dispatches = n();
                stats.slow_path_hits = n();
                stats.sites_patched = n();
                stats.bypass_blocked = n();
                stats.pkru_switches = n();
                stats.drain_yields = n();
            }
            Some("harden") => harden_level = it.collect::<Vec<_>>().join(" "),
            _ => {}
        }
    }
    if cycles.is_empty() {
        return None;
    }
    Some(HardenedRow {
        measurement: Measurement {
            name: "lazypoline (hardened)",
            cycles_per_call: cycles,
        },
        stats,
        harden_level,
    })
}

/// Dispatch-cost comparison isolating the syscall-interest filter
/// (see [`run_dispatch_cost`]).
#[derive(Clone, Debug)]
pub struct DispatchCost {
    /// Iterations per run.
    pub iters: u64,
    /// Runs per configuration.
    pub runs: u64,
    /// Dispatch cost with an all-syscalls handler installed
    /// ([`interpose::CountHandler`] — event built and virtually
    /// dispatched on every call).
    pub all_syscalls: Measurement,
    /// Dispatch cost with a precisely scoped handler (a
    /// [`interpose::PolicyBuilder`] policy touching only `openat`):
    /// the benchmark syscall fails the interest word test and executes
    /// raw.
    pub interest_filtered: Measurement,
}

/// One iteration of the dispatcher's interest-gated hot-path decision
/// sequence.
///
/// This loop is **not** a reproduction of that sequence: it calls the
/// exported shared decision function [`interpose::interpose_syscall`] —
/// the same inline function `fastpath::lazypoline_dispatch` and the
/// raw-SUD handler run — so the benchmark cannot drift from the
/// production decision path. (See the equivalence unit test below and
/// `interpose_syscall_matches_dispatch_global` in `lp-interpose`.)
#[inline(never)]
fn loop_interest_dispatch(iters: u64) {
    let args = syscalls::SyscallArgs::nullary(syscalls::NONEXISTENT_SYSCALL);
    for _ in 0..iters {
        let ret = interpose::interpose_syscall(args, 0, |call| {
            // SAFETY: syscall 500 does not exist; the kernel returns
            // ENOSYS without touching memory.
            unsafe { syscalls::raw::syscall(call) }
        });
        std::hint::black_box(ret);
    }
}

/// Measures the per-syscall dispatch cost with an all-syscalls handler
/// vs an interest-scoped one (syscall-interest filtering). Runs on any
/// host — no SUD, no page zero: the filter's effect lives entirely in
/// the dispatcher's decision sequence.
pub fn run_dispatch_cost() -> DispatchCost {
    let iters = env_u64("LP_BENCH_ITERS", 200_000).max(1);
    let runs = env_u64("LP_BENCH_RUNS", 10).max(1);

    let guard = interpose::install_handler(Box::new(interpose::CountHandler::new()));
    let all_syscalls = measure(
        "dispatch, all-syscalls handler",
        loop_interest_dispatch,
        iters,
        runs,
    );
    drop(guard);

    // A policy that only cares about openat: syscall 500 fails the
    // interest test, so the shared decision function takes the raw arm.
    let policy = interpose::PolicyBuilder::allow_by_default()
        .deny(syscalls::nr::OPENAT)
        .build();
    let guard = interpose::install_handler(Box::new(policy));
    let interest_filtered = measure(
        "dispatch, PolicyHandler scoped to openat",
        loop_interest_dispatch,
        iters,
        runs,
    );
    drop(guard);

    DispatchCost {
        iters,
        runs,
        all_syscalls,
        interest_filtered,
    }
}

/// Counter deltas from executing a page of fresh syscall sites under
/// one batch-rewriting setting (see [`run_batch_ablation`]).
#[derive(Clone, Copy, Debug)]
pub struct BatchPhase {
    /// `SIGSYS` deliveries taken while running every site once.
    pub slow_path_hits: u64,
    /// Sites rewritten to `call rax` (batching patches neighbours too).
    pub sites_patched: u64,
}

/// The page-granular batch-rewriting ablation: `sites` fresh syscall
/// sites on one page, executed once each, with batching on vs off.
#[derive(Clone, Copy, Debug)]
pub struct BatchAblation {
    /// Distinct syscall sites emitted on the JIT page.
    pub sites: usize,
    /// Deltas under the `lazypoline` backend (one `SIGSYS` should
    /// sweep the whole page).
    pub batched: BatchPhase,
    /// Deltas under `lazypoline-nobatch` (one `SIGSYS` per site).
    pub unbatched: BatchPhase,
}

/// Emits `count` tiny functions (`mov eax, GETPID; syscall; ret`) at
/// 64-byte intervals on a fresh RWX page, `ret`-padded so a linear
/// sweep stays synchronized; returns the page base.
unsafe fn emit_getpid_page(count: usize) -> *mut u8 {
    assert!(count * 64 <= 4096);
    let page = libc::mmap(
        std::ptr::null_mut(),
        4096,
        libc::PROT_READ | libc::PROT_WRITE | libc::PROT_EXEC,
        libc::MAP_PRIVATE | libc::MAP_ANONYMOUS,
        -1,
        0,
    );
    assert_ne!(page, libc::MAP_FAILED, "mmap RWX page");
    let p = page as *mut u8;
    std::ptr::write_bytes(p, 0xc3, 4096);
    for i in 0..count {
        let code: [u8; 8] = [
            0xb8,
            syscalls::nr::GETPID as u8,
            0,
            0,
            0, // mov eax, 39
            0x0f,
            0x05, // syscall
            0xc3, // ret
        ];
        std::ptr::copy_nonoverlapping(code.as_ptr(), p.add(i * 64), code.len());
    }
    p
}

fn batch_phase(backend: &'static str, sites: usize) -> BatchPhase {
    // The batching switch is carried by the backend name; installing
    // either re-inits the process-global engine with that setting.
    let active = mechanism::by_name(backend)
        .expect("registered backend")
        .install(Box::new(interpose::PassthroughHandler))
        .expect("install");
    let (slow, patched);
    unsafe {
        let p = emit_getpid_page(sites);
        // Resolve the expected pid before the measurement window so
        // libc's own getpid syscall site cannot contribute its SIGSYS
        // to the deltas.
        let pid = libc::getpid() as u64;
        let before = active.stats();
        for i in 0..sites {
            let f: extern "C" fn() -> u64 = std::mem::transmute(p.add(i * 64));
            assert_eq!(f(), pid, "JIT site {i}");
        }
        let after = active.stats();
        slow = after.slow_path_hits - before.slow_path_hits;
        patched = after.sites_patched - before.sites_patched;
        libc::munmap(p as *mut _, 4096);
    }
    drop(active);
    BatchPhase {
        slow_path_hits: slow,
        sites_patched: patched,
    }
}

/// Runs the batch-rewriting ablation (multi-site discovery workload).
///
/// # Panics
///
/// Panics if the environment lacks SUD or page-zero mapping — call
/// [`environment_supported`] first.
pub fn run_batch_ablation() -> BatchAblation {
    assert!(environment_supported(), "SUD or page-zero unavailable");
    let sites = env_u64("LP_BENCH_BATCH_SITES", 16).clamp(1, 64) as usize;
    let unbatched = batch_phase("lazypoline-nobatch", sites);
    let batched = batch_phase("lazypoline", sites);
    BatchAblation {
        sites,
        batched,
        unbatched,
    }
}

/// Measures the fast path under every [`XstateMask`] level — the
/// tuning space of the paper's configurable preservation option
/// (§IV-B(b)). Standalone: installs the `lazypoline` backend and
/// sweeps [`mechanism::ActiveMechanism::set_xstate`].
pub fn run_xstate_sweep() -> Vec<(XstateMask, Measurement)> {
    assert!(environment_supported(), "SUD or page-zero unavailable");
    let iters = env_u64("LP_BENCH_ITERS", 200_000).max(1);
    let runs = env_u64("LP_BENCH_RUNS", 10).max(1);
    let mut active = mechanism::by_name("lazypoline")
        .expect("registered backend")
        .install(Box::new(interpose::PassthroughHandler))
        .expect("install");
    loop_fast(1); // ensure the site is rewritten
    let mut out = Vec::new();
    for mask in [
        XstateMask::None,
        XstateMask::X87,
        XstateMask::Sse,
        XstateMask::Avx,
    ] {
        assert!(active.set_xstate(mask), "lazypoline is engine-backed");
        let name = match mask {
            XstateMask::None => "xstate: none",
            XstateMask::X87 => "xstate: x87",
            XstateMask::Sse => "xstate: x87+sse",
            XstateMask::Avx => "xstate: x87+sse+avx",
        };
        out.push((mask, measure(name, loop_fast, iters, runs)));
    }
    // Teardown (drop) restores the default mask and unenrolls.
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measurement_statistics() {
        let m = Measurement {
            name: "x",
            cycles_per_call: vec![100.0, 110.0, 90.0],
        };
        assert!((m.cycles() - 99.66).abs() < 0.1);
        assert!(m.stddev_pct() > 0.0);
    }

    #[test]
    fn table2_plan_names_resolve_and_order_raw_sud_first() {
        let mut engine_seen = false;
        for row in &TABLE2_PLAN {
            assert!(
                mechanism::by_name(row.backend).is_some(),
                "{} must be registered",
                row.backend
            );
            if row.backend.starts_with("lazypoline") || row.backend == "zpoline" {
                engine_seen = true;
            }
            if row.backend == "sud-raw" {
                assert!(!engine_seen, "sud-raw must precede every engine row");
            }
        }
    }

    #[test]
    fn interest_dispatch_loop_matches_dispatch_global() {
        use interpose::{Action, SyscallEvent, SyscallHandler};

        // A handler that decides 500 with a sentinel: observable only
        // if the loop really consults the shared decision function.
        struct Sentinel;
        impl SyscallHandler for Sentinel {
            fn handle(&self, ev: &mut SyscallEvent) -> Action {
                if ev.call.nr == syscalls::NONEXISTENT_SYSCALL {
                    Action::Return(0xBEEF)
                } else {
                    Action::Passthrough
                }
            }
        }
        let _guard = interpose::install_handler(Box::new(Sentinel));

        let args = syscalls::SyscallArgs::nullary(syscalls::NONEXISTENT_SYSCALL);
        let via_shared = interpose::interpose_syscall(args, 0, |call| {
            // SAFETY: nonexistent syscall, returns ENOSYS.
            unsafe { syscalls::raw::syscall(call) }
        });
        let mut ev = interpose::SyscallEvent::new(args);
        let expected = match interpose::dispatch_global(&mut ev) {
            Action::Passthrough => unreachable!("Sentinel decides 500"),
            Action::Return(v) => v,
            Action::Fail(e) => e.as_ret(),
        };
        assert_eq!(via_shared, expected);
        assert_eq!(via_shared, 0xBEEF);
        // And the loop itself runs the same path without crashing.
        loop_interest_dispatch(10);
    }

    // The full session is exercised by the `table2` binary and the
    // micro-benchmark integration test (subprocess): running it here
    // would permanently rewrite this test runner's code.
}

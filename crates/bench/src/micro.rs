//! The native Table II / Figure 4 microbenchmark.
//!
//! "We measure the CPU cycles required to interpose a non-existent
//! syscall (number 500) 100M times" (§V-B(a)). Each configuration gets
//! its own benchmark loop with its own `syscall` instruction so lazy
//! rewriting of one site cannot contaminate another configuration:
//!
//! * `loop_plain` — never intercepted: used for the bare baseline and
//!   for "baseline with SUD enabled (selector=ALLOW)".
//! * `loop_sud` — used for the pure-SUD row; the loop re-arms the
//!   selector to BLOCK each iteration because the (non-rewriting)
//!   handler leaves it at ALLOW on return.
//! * `loop_fast` — patched once by the lazypoline slow path, then
//!   measured in steady state for the zpoline and lazypoline rows
//!   (the paper does the same: "we manually rewrote the syscall
//!   instruction up front, so there is no initial execution of the
//!   slow path").
//!
//! The zpoline row reuses the lazypoline fast path with SUD disabled —
//! exactly the paper's Figure 4 methodology: "we run the microbenchmark
//! of lazypoline's fast path again with SUD disabled […] without the
//! SUD overhead, lazypoline's fast path matches zpoline".

use std::arch::asm;
use std::arch::x86_64::_rdtsc;

use lazypoline::{Config, XstateMask};
use sud::sigsys::UContext;

use crate::report::{geomean, rel_stddev_pct};
use crate::{env_u64};

/// One configuration's measurement across runs.
#[derive(Clone, Debug)]
pub struct Measurement {
    /// Configuration label (Table II row name).
    pub name: &'static str,
    /// Cycles per syscall, one sample per run.
    pub cycles_per_call: Vec<f64>,
}

impl Measurement {
    /// Geomean cycles per call.
    pub fn cycles(&self) -> f64 {
        geomean(&self.cycles_per_call)
    }

    /// Relative standard deviation (%).
    pub fn stddev_pct(&self) -> f64 {
        rel_stddev_pct(&self.cycles_per_call)
    }
}

/// All Table II rows from one benchmark session.
#[derive(Clone, Debug)]
pub struct MicroResults {
    /// Bare syscall round trip.
    pub baseline: Measurement,
    /// SUD enabled, selector ALLOW, untouched site.
    pub sud_enabled_allow: Measurement,
    /// Rewritten site, SUD disabled (pure zpoline).
    pub zpoline: Measurement,
    /// Rewritten site, SUD enabled, no xstate preservation.
    pub lazypoline_nox: Measurement,
    /// Rewritten site, SUD enabled, full xstate preservation.
    pub lazypoline: Measurement,
    /// Pure SUD interposition (SIGSYS per syscall).
    pub sud: Measurement,
    /// Iterations per run used.
    pub iters: u64,
    /// Runs per configuration.
    pub runs: u64,
}

impl MicroResults {
    /// Rows in Table II order with overhead ratios vs baseline.
    pub fn rows(&self) -> Vec<(&'static str, f64, f64)> {
        let base = self.baseline.cycles();
        [
            &self.zpoline,
            &self.lazypoline_nox,
            &self.lazypoline,
            &self.sud,
            &self.sud_enabled_allow,
        ]
        .into_iter()
        .map(|m| (m.name, m.cycles() / base, m.stddev_pct()))
        .collect()
    }
}

#[inline(never)]
fn loop_plain(iters: u64) {
    debug_assert!(iters > 0);
    unsafe {
        asm!(
            "2:",
            "mov eax, 500",
            "syscall",
            "sub {c}, 1",
            "jnz 2b",
            c = inout(reg) iters => _,
            out("rax") _, out("rcx") _, out("r11") _,
        );
    }
}

#[inline(never)]
fn loop_fast(iters: u64) {
    debug_assert!(iters > 0);
    unsafe {
        asm!(
            "2:",
            "mov eax, 500",
            "syscall", // ← lazily rewritten to `call rax` on first BLOCK execution
            "sub {c}, 1",
            "jnz 2b",
            c = inout(reg) iters => _,
            out("rax") _, out("rcx") _, out("r11") _,
        );
    }
}

#[inline(never)]
fn loop_sud(iters: u64) {
    debug_assert!(iters > 0);
    let sel = sud::selector_ptr();
    unsafe {
        asm!(
            "2:",
            "mov byte ptr [{sel}], 1", // re-arm BLOCK (handler left ALLOW)
            "mov eax, 500",
            "syscall", // every iteration: SIGSYS → handler emulates
            "sub {c}, 1",
            "jnz 2b",
            c = inout(reg) iters => _,
            sel = in(reg) sel,
            out("rax") _, out("rcx") _, out("r11") _,
        );
    }
    sud::set_selector(sud::Dispatch::Allow);
}

/// The pure-SUD benchmark handler: emulate the syscall in the SIGSYS
/// handler without any rewriting (the classic deployment's behaviour,
/// minus the allowlist bookkeeping the loop replaces).
unsafe extern "C" fn sud_only_handler(
    _sig: libc::c_int,
    _info: *mut libc::siginfo_t,
    ctx: *mut libc::c_void,
) {
    sud::set_selector(sud::Dispatch::Allow);
    let mut uc = UContext::from_ptr(ctx);
    let ret = syscalls::raw::syscall(uc.syscall_args());
    uc.set_rax(ret);
    // Return with ALLOW; the benchmark loop re-arms BLOCK.
}

fn time_loop(f: fn(u64), iters: u64) -> f64 {
    let start = unsafe { _rdtsc() };
    f(iters);
    let end = unsafe { _rdtsc() };
    (end - start) as f64 / iters as f64
}

fn measure(name: &'static str, f: fn(u64), iters: u64, runs: u64) -> Measurement {
    // One warmup run.
    f(iters.clamp(1, 10_000));
    let cycles_per_call = (0..runs).map(|_| time_loop(f, iters)).collect();
    Measurement {
        name,
        cycles_per_call,
    }
}

/// Whether this host can run the native microbenchmark at all.
pub fn environment_supported() -> bool {
    zpoline::Trampoline::environment_supported() && sud::is_supported()
}

/// Runs the full Table II benchmark session.
///
/// Iterations and run counts come from `LP_BENCH_ITERS` (default
/// 200_000) and `LP_BENCH_RUNS` (default 10, like the paper).
///
/// # Panics
///
/// Panics if the environment lacks SUD or page-zero mapping — call
/// [`environment_supported`] first.
pub fn run_table2() -> MicroResults {
    assert!(environment_supported(), "SUD or page-zero unavailable");
    let iters = env_u64("LP_BENCH_ITERS", 200_000).max(1);
    let runs = env_u64("LP_BENCH_RUNS", 10).max(1);

    // Phase 1: bare baseline (no machinery at all).
    let baseline = measure("baseline", loop_plain, iters, runs);

    // Phase 2: SUD enabled, selector ALLOW, same untouched site.
    sud::enable_thread().expect("SUD probe passed");
    let sud_enabled_allow = measure(
        "baseline with SUD enabled (selector=ALLOW)",
        loop_plain,
        iters,
        runs,
    );
    sud::disable_thread().expect("disable");

    // Phase 3: pure SUD interposition with a non-rewriting handler.
    // (Must run before lazypoline::init claims the SIGSYS slot.)
    let old = unsafe { sud::sigsys::install_sigsys_handler(sud_only_handler) }.expect("sigaction");
    sud::enable_thread().expect("enable");
    // loop_sud arms BLOCK itself; keep iteration count bounded — each
    // iteration costs a full signal round trip.
    let sud_iters = iters.min(env_u64("LP_BENCH_SUD_ITERS", 50_000)).max(1);
    let sud_m = measure("SUD", loop_sud, sud_iters, runs);
    sud::set_selector(sud::Dispatch::Allow);
    sud::disable_thread().expect("disable");
    unsafe { libc::sigaction(libc::SIGSYS, &old, std::ptr::null_mut()) };

    // Phase 4: lazypoline with full xstate preservation.
    let engine = lazypoline::init(Config {
        xstate: XstateMask::Avx,
        ..Config::default()
    })
    .expect("lazypoline init");
    loop_fast(1); // lazy rewrite of the fast site
    let lazypoline_m = measure("lazypoline", loop_fast, iters, runs);

    // Phase 5: same site, no xstate preservation.
    zpoline::set_xstate_mask(XstateMask::None);
    let lazypoline_nox = measure("lazypoline without xstate preservation", loop_fast, iters, runs);

    // Phase 6: SUD disabled entirely — the zpoline configuration.
    engine.unenroll_current_thread();
    let zpoline_m = measure("zpoline", loop_fast, iters, runs);

    // Restore defaults for anything running after us in-process.
    zpoline::set_xstate_mask(XstateMask::Avx);

    MicroResults {
        baseline,
        sud_enabled_allow,
        zpoline: zpoline_m,
        lazypoline_nox,
        lazypoline: lazypoline_m,
        sud: sud_m,
        iters,
        runs,
    }
}

/// Dispatch-cost comparison isolating the syscall-interest filter
/// (see [`run_dispatch_cost`]).
#[derive(Clone, Debug)]
pub struct DispatchCost {
    /// Iterations per run.
    pub iters: u64,
    /// Runs per configuration.
    pub runs: u64,
    /// Dispatch cost with an all-syscalls handler installed
    /// ([`interpose::CountHandler`] — event built and virtually
    /// dispatched on every call).
    pub all_syscalls: Measurement,
    /// Dispatch cost with a precisely scoped handler (a
    /// [`interpose::PolicyBuilder`] policy touching only `openat`):
    /// the benchmark syscall fails the interest word test and executes
    /// raw.
    pub interest_filtered: Measurement,
}

/// One iteration of the dispatcher's interest-gated hot-path decision
/// sequence: one relaxed interest-word load + bit test, then either
/// the full event/virtual-call/post machinery or the raw syscall.
/// This is the code `lazypoline_dispatch` runs after frame capture,
/// reproduced over the public `interpose` API so the comparison runs
/// on hosts without page zero or SUD.
#[inline(never)]
fn loop_interest_dispatch(iters: u64) {
    use interpose::Action;
    let args = syscalls::SyscallArgs::nullary(syscalls::NONEXISTENT_SYSCALL);
    for _ in 0..iters {
        let ret = if interpose::global_interested(args.nr) {
            let mut ev = interpose::SyscallEvent::new(args);
            match interpose::dispatch_global(&mut ev) {
                Action::Passthrough => {
                    // SAFETY: syscall 500 does not exist; the kernel
                    // returns ENOSYS without touching memory.
                    let r = unsafe { syscalls::raw::syscall(ev.call) };
                    interpose::post_global(&ev, r)
                }
                Action::Return(v) => v,
                Action::Fail(e) => e.as_ret(),
            }
        } else {
            // SAFETY: as above.
            unsafe { syscalls::raw::syscall(args) }
        };
        std::hint::black_box(ret);
    }
}

/// Measures the per-syscall dispatch cost with an all-syscalls handler
/// vs an interest-scoped one (tentpole: syscall-interest filtering).
/// Runs on any host — no SUD, no page zero: the filter's effect lives
/// entirely in the dispatcher's decision sequence.
pub fn run_dispatch_cost() -> DispatchCost {
    let iters = env_u64("LP_BENCH_ITERS", 200_000).max(1);
    let runs = env_u64("LP_BENCH_RUNS", 10).max(1);

    interpose::set_global_handler(Box::new(interpose::CountHandler::new()));
    let all_syscalls = measure(
        "dispatch, all-syscalls handler",
        loop_interest_dispatch,
        iters,
        runs,
    );

    // A policy that only cares about openat: syscall 500 fails the
    // interest test, so the dispatch loop takes the raw-syscall arm.
    let policy = interpose::PolicyBuilder::allow_by_default()
        .deny(syscalls::nr::OPENAT)
        .build();
    interpose::set_global_handler(Box::new(policy));
    let interest_filtered = measure(
        "dispatch, PolicyHandler scoped to openat",
        loop_interest_dispatch,
        iters,
        runs,
    );

    interpose::set_global_handler(Box::new(interpose::PassthroughHandler));
    DispatchCost {
        iters,
        runs,
        all_syscalls,
        interest_filtered,
    }
}

/// Counter deltas from executing a page of fresh syscall sites under
/// one batch-rewriting setting (see [`run_batch_ablation`]).
#[derive(Clone, Copy, Debug)]
pub struct BatchPhase {
    /// `SIGSYS` deliveries taken while running every site once.
    pub slow_path_hits: u64,
    /// Sites rewritten to `call rax` (batching patches neighbours too).
    pub sites_patched: u64,
}

/// The page-granular batch-rewriting ablation: `sites` fresh syscall
/// sites on one page, executed once each, with batching on vs off.
#[derive(Clone, Copy, Debug)]
pub struct BatchAblation {
    /// Distinct syscall sites emitted on the JIT page.
    pub sites: usize,
    /// Deltas with `Config::batch_rewriting = true` (one `SIGSYS`
    /// should sweep the whole page).
    pub batched: BatchPhase,
    /// Deltas with batching off (one `SIGSYS` per site).
    pub unbatched: BatchPhase,
}

/// Emits `count` tiny functions (`mov eax, GETPID; syscall; ret`) at
/// 64-byte intervals on a fresh RWX page, `ret`-padded so a linear
/// sweep stays synchronized; returns the page base.
unsafe fn emit_getpid_page(count: usize) -> *mut u8 {
    assert!(count * 64 <= 4096);
    let page = libc::mmap(
        std::ptr::null_mut(),
        4096,
        libc::PROT_READ | libc::PROT_WRITE | libc::PROT_EXEC,
        libc::MAP_PRIVATE | libc::MAP_ANONYMOUS,
        -1,
        0,
    );
    assert_ne!(page, libc::MAP_FAILED, "mmap RWX page");
    let p = page as *mut u8;
    std::ptr::write_bytes(p, 0xc3, 4096);
    for i in 0..count {
        let code: [u8; 8] = [
            0xb8,
            syscalls::nr::GETPID as u8,
            0,
            0,
            0, // mov eax, 39
            0x0f,
            0x05, // syscall
            0xc3, // ret
        ];
        std::ptr::copy_nonoverlapping(code.as_ptr(), p.add(i * 64), code.len());
    }
    p
}

fn batch_phase(batch: bool, sites: usize) -> BatchPhase {
    // init() is idempotent for the process-global machinery but stores
    // the batching switch on every call, so the same process can
    // measure both settings back to back.
    let engine = lazypoline::init(Config {
        batch_rewriting: batch,
        ..Config::default()
    })
    .expect("lazypoline init");
    let (slow, patched);
    unsafe {
        let p = emit_getpid_page(sites);
        // Resolve the expected pid before the measurement window so
        // libc's own getpid syscall site cannot contribute its SIGSYS
        // to the deltas.
        let pid = libc::getpid() as u64;
        let before = lazypoline::stats();
        for i in 0..sites {
            let f: extern "C" fn() -> u64 = std::mem::transmute(p.add(i * 64));
            assert_eq!(f(), pid, "JIT site {i}");
        }
        let after = lazypoline::stats();
        slow = after.slow_path_hits - before.slow_path_hits;
        patched = after.sites_patched - before.sites_patched;
        libc::munmap(p as *mut _, 4096);
    }
    engine.unenroll_current_thread();
    BatchPhase {
        slow_path_hits: slow,
        sites_patched: patched,
    }
}

/// Runs the batch-rewriting ablation (multi-site discovery workload).
///
/// # Panics
///
/// Panics if the environment lacks SUD or page-zero mapping — call
/// [`environment_supported`] first.
pub fn run_batch_ablation() -> BatchAblation {
    assert!(environment_supported(), "SUD or page-zero unavailable");
    let sites = env_u64("LP_BENCH_BATCH_SITES", 16).clamp(1, 64) as usize;
    let unbatched = batch_phase(false, sites);
    let batched = batch_phase(true, sites);
    BatchAblation {
        sites,
        batched,
        unbatched,
    }
}

/// Measures the fast path under every [`XstateMask`] level — the
/// tuning space of the paper's configurable preservation option
/// (§IV-B(b)). Requires the engine to be live and the fast site primed
/// (call after [`run_table2`], or standalone — it initializes on
/// demand).
pub fn run_xstate_sweep() -> Vec<(XstateMask, Measurement)> {
    assert!(environment_supported(), "SUD or page-zero unavailable");
    let iters = env_u64("LP_BENCH_ITERS", 200_000).max(1);
    let runs = env_u64("LP_BENCH_RUNS", 10).max(1);
    let engine = lazypoline::init(Config::default()).expect("lazypoline init");
    loop_fast(1); // ensure the site is rewritten
    let mut out = Vec::new();
    for mask in [
        XstateMask::None,
        XstateMask::X87,
        XstateMask::Sse,
        XstateMask::Avx,
    ] {
        zpoline::set_xstate_mask(mask);
        let name = match mask {
            XstateMask::None => "xstate: none",
            XstateMask::X87 => "xstate: x87",
            XstateMask::Sse => "xstate: x87+sse",
            XstateMask::Avx => "xstate: x87+sse+avx",
        };
        out.push((mask, measure(name, loop_fast, iters, runs)));
    }
    zpoline::set_xstate_mask(XstateMask::Avx);
    engine.unenroll_current_thread();
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measurement_statistics() {
        let m = Measurement {
            name: "x",
            cycles_per_call: vec![100.0, 110.0, 90.0],
        };
        assert!((m.cycles() - 99.66).abs() < 0.1);
        assert!(m.stddev_pct() > 0.0);
    }

    // The full session is exercised by the `table2` binary and the
    // micro-benchmark integration test (subprocess): running it here
    // would permanently rewrite this test runner's code.
}

//! Table formatting and statistics for the harness binaries.

/// Geometric mean of strictly positive samples.
///
/// # Panics
///
/// Panics on an empty slice.
pub fn geomean(samples: &[f64]) -> f64 {
    assert!(!samples.is_empty(), "geomean of nothing");
    let log_sum: f64 = samples.iter().map(|s| s.max(f64::MIN_POSITIVE).ln()).sum();
    (log_sum / samples.len() as f64).exp()
}

/// Relative standard deviation (σ/μ) in percent.
pub fn rel_stddev_pct(samples: &[f64]) -> f64 {
    if samples.len() < 2 {
        return 0.0;
    }
    let mean = samples.iter().sum::<f64>() / samples.len() as f64;
    if mean == 0.0 {
        return 0.0;
    }
    let var = samples.iter().map(|s| (s - mean).powi(2)).sum::<f64>()
        / (samples.len() - 1) as f64;
    100.0 * var.sqrt() / mean
}

/// A simple fixed-width text table.
#[derive(Debug, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>, I: IntoIterator<Item = S>>(header: I) -> Table {
        Table {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (cells beyond the header count are dropped).
    pub fn row<S: Into<String>, I: IntoIterator<Item = S>>(&mut self, cells: I) {
        let mut row: Vec<String> = cells.into_iter().map(Into::into).collect();
        row.truncate(self.header.len().max(row.len()));
        self.rows.push(row);
    }

    /// Renders the table.
    pub fn render(&self) -> String {
        let cols = self
            .rows
            .iter()
            .map(|r| r.len())
            .chain([self.header.len()])
            .max()
            .unwrap_or(0);
        let mut widths = vec![0usize; cols];
        for (i, h) in self.header.iter().enumerate() {
            widths[i] = widths[i].max(h.chars().count());
        }
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.chars().count());
            }
        }
        let fmt_row = |cells: &[String]| -> String {
            let mut line = String::new();
            for (i, w) in widths.iter().enumerate() {
                let cell = cells.get(i).map(String::as_str).unwrap_or("");
                let pad = w - cell.chars().count();
                if i > 0 {
                    line.push_str("  ");
                }
                line.push_str(cell);
                line.push_str(&" ".repeat(pad));
            }
            line.trim_end().to_string()
        };
        let mut out = String::new();
        out.push_str(&fmt_row(&self.header));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (cols - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geomean_basics() {
        assert!((geomean(&[2.0, 8.0]) - 4.0).abs() < 1e-12);
        assert!((geomean(&[3.0]) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn rel_stddev_basics() {
        assert_eq!(rel_stddev_pct(&[5.0]), 0.0);
        assert_eq!(rel_stddev_pct(&[5.0, 5.0, 5.0]), 0.0);
        let sd = rel_stddev_pct(&[9.0, 11.0]);
        assert!((sd - 14.14).abs() < 0.1, "{sd}");
    }

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new(["name", "value"]);
        t.row(["zpoline", "1.20x"]);
        t.row(["lazypoline", "2.38x"]);
        let r = t.render();
        let lines: Vec<&str> = r.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("name"));
        assert!(lines[2].starts_with("zpoline"));
        // Columns aligned: "1.20x" and "2.38x" start at same offset.
        let off2 = lines[2].find("1.20x").unwrap();
        let off3 = lines[3].find("2.38x").unwrap();
        assert_eq!(off2, off3);
    }

    #[test]
    #[should_panic(expected = "geomean of nothing")]
    fn geomean_empty_panics() {
        geomean(&[]);
    }
}

//! Vendored, minimal benchmark harness exposing the subset of the
//! `criterion` crate API this workspace's benches use.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors this path dependency under the name `criterion`. It keeps
//! the same bench-authoring surface (`criterion_group!`,
//! `criterion_main!`, `Criterion`, `bench_function`, groups,
//! `Throughput`) and implements a plain warmup-then-measure loop with
//! mean/min timings printed per benchmark — no statistics machinery,
//! no plotting, no CLI filtering.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Per-element/byte normalization for group reports.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// The measured iteration processes this many logical elements.
    Elements(u64),
    /// The measured iteration processes this many bytes.
    Bytes(u64),
}

/// Timing harness configuration + runner.
#[derive(Clone, Debug)]
pub struct Criterion {
    warm_up: Duration,
    measurement: Duration,
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion {
            warm_up: Duration::from_millis(300),
            measurement: Duration::from_secs(1),
            sample_size: 10,
        }
    }
}

impl Criterion {
    /// Sets the warmup duration before sampling starts.
    pub fn warm_up_time(mut self, d: Duration) -> Criterion {
        self.warm_up = d;
        self
    }

    /// Sets the total measurement budget per benchmark.
    pub fn measurement_time(mut self, d: Duration) -> Criterion {
        self.measurement = d;
        self
    }

    /// Sets how many samples to take within the measurement budget.
    pub fn sample_size(mut self, n: usize) -> Criterion {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Criterion {
        run_bench(self, id, None, f);
        self
    }

    /// Opens a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
            throughput: None,
        }
    }
}

/// A group of related benchmarks sharing a name prefix and throughput.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the per-iteration throughput used in reports.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Runs one benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        let full = format!("{}/{}", self.name, id);
        run_bench(self.criterion, &full, self.throughput, f);
        self
    }

    /// Ends the group (reports are already printed per benchmark).
    pub fn finish(self) {}
}

/// Passed to the closure given to `bench_function`; call
/// [`Bencher::iter`] with the code under test.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `iters` invocations of `f`.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_bench<F: FnMut(&mut Bencher)>(c: &Criterion, id: &str, tput: Option<Throughput>, mut f: F) {
    // Calibration: find an iteration count that runs ≳ 1ms per sample.
    let mut iters = 1u64;
    loop {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        if b.elapsed >= Duration::from_millis(1) || iters >= 1 << 24 {
            break;
        }
        iters *= 4;
    }

    // Warmup.
    let warm_start = Instant::now();
    while warm_start.elapsed() < c.warm_up {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
    }

    // Samples.
    let budget_per_sample = c.measurement / c.sample_size as u32;
    let mut best = f64::INFINITY;
    let mut sum = 0.0;
    let mut samples = 0u32;
    for _ in 0..c.sample_size {
        let sample_start = Instant::now();
        let mut sample_iters = 0u64;
        let mut sample_elapsed = Duration::ZERO;
        while sample_start.elapsed() < budget_per_sample {
            let mut b = Bencher {
                iters,
                elapsed: Duration::ZERO,
            };
            f(&mut b);
            sample_elapsed += b.elapsed;
            sample_iters += b.iters;
        }
        if sample_iters == 0 {
            continue;
        }
        let ns_per_iter = sample_elapsed.as_nanos() as f64 / sample_iters as f64;
        best = best.min(ns_per_iter);
        sum += ns_per_iter;
        samples += 1;
    }
    let mean = if samples > 0 { sum / samples as f64 } else { 0.0 };

    match tput {
        Some(Throughput::Elements(n)) if mean > 0.0 => {
            let rate = n as f64 * 1e9 / mean;
            println!("{id:<48} {mean:>12.1} ns/iter (min {best:.1}) {rate:>14.0} elem/s");
        }
        Some(Throughput::Bytes(n)) if mean > 0.0 => {
            let rate = n as f64 * 1e9 / mean;
            println!("{id:<48} {mean:>12.1} ns/iter (min {best:.1}) {rate:>14.0} B/s");
        }
        _ => println!("{id:<48} {mean:>12.1} ns/iter (min {best:.1})"),
    }
}

/// Declares a group-runner function from configured targets.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $config;
            $($target(&mut c);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares `main` running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

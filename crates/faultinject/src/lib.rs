//! Deterministic fault injection for the lazypoline engine.
//!
//! The engine's robustness claims — degrade, never crash — are only
//! testable if its real failure points can be made to fail on demand.
//! This crate provides **named injection sites** threaded through those
//! points (trampoline install, patcher `mprotect` windows, SUD
//! enrollment, selector writes, slow-path emulation, and the hardened
//! mode's `pkey_alloc` / seccomp-backstop install / `WRPKRU` switches)
//! with
//! **deterministic schedules** (fail the Nth hit, every Nth hit, or the
//! first K hits), armable programmatically ([`arm`]) or via the
//! `LAZYPOLINE_FAULTS` environment variable ([`arm_from_env`]) so the
//! `LD_PRELOAD` deployment and CI exercise the same seams without code
//! changes.
//!
//! # Zero cost when disarmed
//!
//! The seams are always compiled in. [`check`] first reads one global
//! relaxed atomic (the count of armed sites); when it is zero — the
//! production state — the function returns immediately without touching
//! any per-site state. This keeps the fast-path overhead at a single
//! uncontended load, the same budget the engine's sharded counters pay.
//!
//! # Async-signal-safety
//!
//! [`check`] performs no allocation, takes no locks, and issues no
//! syscalls: it is callable from the `SIGSYS` handler (the
//! `slowpath_emulate` and `patch_mprotect` seams fire there).
//!
//! # Spec syntax
//!
//! `LAZYPOLINE_FAULTS` is a comma-separated list of
//! `site:schedule[:ERRNO]` entries:
//!
//! ```text
//! LAZYPOLINE_FAULTS=trampoline_install:first=1
//! LAZYPOLINE_FAULTS=patch_mprotect:every=3:EAGAIN,selector_write:nth=10
//! ```
//!
//! Schedules are `nth=N` (fail exactly the Nth hit), `every=N` (fail
//! every Nth hit), `first=K` (fail the first K hits). The optional
//! errno name selects the injected error; each site has a natural
//! default (see [`Site::default_errno`]).

#![deny(missing_docs)]

use std::fmt;
use std::sync::atomic::{AtomicI32, AtomicU64, AtomicU8, AtomicUsize, Ordering};

/// A named failure point inside the engine.
///
/// Each variant corresponds to one real, load-bearing operation whose
/// failure the engine must survive.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Site {
    /// `mmap` of the page-zero trampoline (`zpoline::Trampoline::install`).
    TrampolineInstall,
    /// The `mprotect` window that opens a code page for rewriting
    /// (`zpoline::patch_syscall_site` / `patch_page_sites`).
    PatchMprotect,
    /// `prctl(PR_SET_SYSCALL_USER_DISPATCH, ON, …)` enrollment
    /// (`sud::enable_thread_with_allowlist`).
    SudEnroll,
    /// The per-thread SUD selector byte store (`sud::set_selector`).
    /// An injected hit models one dropped store, which the write-verify
    /// loop in `set_selector` detects and repairs.
    SelectorWrite,
    /// Slow-path emulation of a dispatched syscall in the `SIGSYS`
    /// handler: instead of executing, the syscall returns the injected
    /// errno to the application (modelling `EINTR`/`EAGAIN`/`ENOMEM`
    /// from a congested kernel).
    SlowpathEmulate,
    /// `pkey_alloc(2)` for the hardened selector slab
    /// (`sud::pkey::ProtectedSlab::new`). An injected hit models a host
    /// with exhausted protection keys (or no MPK hardware at all), which
    /// the hardened installer must survive by degrading to the seccomp
    /// backstop alone.
    PkeyAlloc,
    /// `seccomp(SECCOMP_SET_MODE_FILTER, …)` installation of the
    /// hardened backstop filter (`lazypoline::harden`). An injected hit
    /// degrades hardened mode one more rung, down to plain lazypoline.
    SeccompInstall,
    /// A `WRPKRU` permission switch at the interposer boundary. An
    /// injected hit models one dropped PKRU update, which the
    /// write-verify loop around the switch detects and repairs —
    /// mirroring the `selector_write` seam one privilege level up.
    PkruSwitch,
}

/// Number of distinct injection sites.
pub const NUM_SITES: usize = 8;

/// Every site, in declaration order (index = internal slot).
pub const ALL_SITES: [Site; NUM_SITES] = [
    Site::TrampolineInstall,
    Site::PatchMprotect,
    Site::SudEnroll,
    Site::SelectorWrite,
    Site::SlowpathEmulate,
    Site::PkeyAlloc,
    Site::SeccompInstall,
    Site::PkruSwitch,
];

impl Site {
    fn index(self) -> usize {
        match self {
            Site::TrampolineInstall => 0,
            Site::PatchMprotect => 1,
            Site::SudEnroll => 2,
            Site::SelectorWrite => 3,
            Site::SlowpathEmulate => 4,
            Site::PkeyAlloc => 5,
            Site::SeccompInstall => 6,
            Site::PkruSwitch => 7,
        }
    }

    /// The spec-syntax name of this site.
    pub fn name(self) -> &'static str {
        match self {
            Site::TrampolineInstall => "trampoline_install",
            Site::PatchMprotect => "patch_mprotect",
            Site::SudEnroll => "sud_enroll",
            Site::SelectorWrite => "selector_write",
            Site::SlowpathEmulate => "slowpath_emulate",
            Site::PkeyAlloc => "pkey_alloc",
            Site::SeccompInstall => "seccomp_install",
            Site::PkruSwitch => "pkru_switch",
        }
    }

    /// Parses a spec-syntax site name.
    pub fn from_name(name: &str) -> Option<Site> {
        ALL_SITES.into_iter().find(|s| s.name() == name)
    }

    /// The errno injected when the spec names none: the most plausible
    /// real-world failure for each operation.
    pub fn default_errno(self) -> i32 {
        match self {
            Site::TrampolineInstall => EPERM, // vm.mmap_min_addr > 0
            Site::PatchMprotect => EAGAIN,    // transient VMA pressure
            Site::SudEnroll => ENOSYS,        // kernel < 5.11
            Site::SelectorWrite => EAGAIN,
            Site::SlowpathEmulate => EINTR,
            Site::PkeyAlloc => ENOSPC,     // all 15 user keys taken
            Site::SeccompInstall => EACCES, // no_new_privs refused
            Site::PkruSwitch => EAGAIN,
        }
    }
}

/// A deterministic failure schedule for one site.
///
/// Hit counts start at 1 on arming (re-arming resets them), so a
/// schedule's behaviour is reproducible from the moment it is armed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Schedule {
    /// Fail exactly the `N`th hit (1-based), succeed all others.
    Nth(u64),
    /// Fail every `N`th hit (hits N, 2N, 3N, …).
    EveryNth(u64),
    /// Fail the first `K` hits, succeed from `K+1` on.
    FirstK(u64),
}

// Schedule kinds as stored in the per-site atomic.
const KIND_DISARMED: u8 = 0;
const KIND_NTH: u8 = 1;
const KIND_EVERY: u8 = 2;
const KIND_FIRST: u8 = 3;

// Errno numbers, hardcoded so this crate stays dependency-free (the
// seams live below the `syscalls` crate in some dependency graphs).
const EPERM: i32 = 1;
const EINTR: i32 = 4;
const EAGAIN: i32 = 11;
const ENOMEM: i32 = 12;
const EACCES: i32 = 13;
const EFAULT: i32 = 14;
const EINVAL: i32 = 22;
const ENOSPC: i32 = 28;
const ENOSYS: i32 = 38;

fn errno_by_name(name: &str) -> Option<i32> {
    Some(match name {
        "EPERM" => EPERM,
        "EINTR" => EINTR,
        "EAGAIN" => EAGAIN,
        "ENOMEM" => ENOMEM,
        "EACCES" => EACCES,
        "EFAULT" => EFAULT,
        "EINVAL" => EINVAL,
        "ENOSPC" => ENOSPC,
        "ENOSYS" => ENOSYS,
        _ => return None,
    })
}

/// All mutable state of one site. Plain atomics only: `check` must be
/// async-signal-safe and lock-free.
struct SiteState {
    kind: AtomicU8,
    param: AtomicU64,
    errno: AtomicI32,
    hits: AtomicU64,
    injected: AtomicU64,
}

impl SiteState {
    const fn new() -> SiteState {
        SiteState {
            kind: AtomicU8::new(KIND_DISARMED),
            param: AtomicU64::new(0),
            errno: AtomicI32::new(0),
            hits: AtomicU64::new(0),
            injected: AtomicU64::new(0),
        }
    }
}

static SITES: [SiteState; NUM_SITES] = [const { SiteState::new() }; NUM_SITES];

/// Count of currently armed sites. The disarmed fast path in [`check`]
/// reads only this.
static ARMED_SITES: AtomicUsize = AtomicUsize::new(0);

/// Consults the seam at `site`: `None` means proceed normally (the
/// overwhelmingly common case), `Some(errno)` means the caller must
/// fail this operation with the given errno.
///
/// Disarmed cost: one relaxed atomic load. Armed sites additionally
/// pay one fetch-add on their hit counter. Async-signal-safe.
#[inline]
pub fn check(site: Site) -> Option<i32> {
    if ARMED_SITES.load(Ordering::Relaxed) == 0 {
        return None;
    }
    check_armed(site)
}

#[cold]
fn check_armed(site: Site) -> Option<i32> {
    let s = &SITES[site.index()];
    let kind = s.kind.load(Ordering::Relaxed);
    if kind == KIND_DISARMED {
        return None;
    }
    let hit = s.hits.fetch_add(1, Ordering::Relaxed) + 1;
    let param = s.param.load(Ordering::Relaxed);
    let fire = match kind {
        KIND_NTH => hit == param,
        KIND_EVERY => param != 0 && hit.is_multiple_of(param),
        KIND_FIRST => hit <= param,
        _ => false,
    };
    if fire {
        s.injected.fetch_add(1, Ordering::Relaxed);
        Some(s.errno.load(Ordering::Relaxed))
    } else {
        None
    }
}

/// Arms `site` with `schedule`, injecting `errno` (or the site's
/// [default](Site::default_errno) when `None`). Resets the site's hit
/// counter so the schedule is deterministic from this call; the
/// cumulative injected-fault counter is preserved.
pub fn arm(site: Site, schedule: Schedule, errno: Option<i32>) {
    let s = &SITES[site.index()];
    let (kind, param) = match schedule {
        Schedule::Nth(n) => (KIND_NTH, n),
        Schedule::EveryNth(n) => (KIND_EVERY, n),
        Schedule::FirstK(k) => (KIND_FIRST, k),
    };
    s.errno
        .store(errno.unwrap_or_else(|| site.default_errno()), Ordering::Relaxed);
    s.param.store(param, Ordering::Relaxed);
    s.hits.store(0, Ordering::Relaxed);
    if s.kind.swap(kind, Ordering::Relaxed) == KIND_DISARMED && kind != KIND_DISARMED {
        ARMED_SITES.fetch_add(1, Ordering::Relaxed);
    }
}

/// Disarms `site`; its seam reverts to zero-cost pass-through.
pub fn disarm(site: Site) {
    let s = &SITES[site.index()];
    if s.kind.swap(KIND_DISARMED, Ordering::Relaxed) != KIND_DISARMED {
        ARMED_SITES.fetch_sub(1, Ordering::Relaxed);
    }
}

/// Disarms every site.
pub fn disarm_all() {
    for site in ALL_SITES {
        disarm(site);
    }
}

/// Whether `site` is currently armed.
pub fn is_armed(site: Site) -> bool {
    SITES[site.index()].kind.load(Ordering::Relaxed) != KIND_DISARMED
}

/// Cumulative number of faults injected at `site` (across re-arms).
pub fn injected(site: Site) -> u64 {
    SITES[site.index()].injected.load(Ordering::Relaxed)
}

/// Cumulative number of faults injected across all sites.
pub fn total_injected() -> u64 {
    ALL_SITES.into_iter().map(injected).sum()
}

/// A malformed `LAZYPOLINE_FAULTS` entry.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SpecError {
    entry: String,
    reason: &'static str,
}

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "bad fault spec {:?}: {}", self.entry, self.reason)
    }
}

impl std::error::Error for SpecError {}

fn bad(entry: &str, reason: &'static str) -> SpecError {
    SpecError {
        entry: entry.to_string(),
        reason,
    }
}

/// Arms sites from a spec string (`site:schedule[:ERRNO],…` — see the
/// module docs). Returns the number of sites armed.
///
/// # Errors
///
/// Returns the first malformed entry; entries before it are already
/// armed, entries after it are not.
pub fn arm_from_spec(spec: &str) -> Result<usize, SpecError> {
    let mut armed = 0;
    for entry in spec.split(',') {
        let entry = entry.trim();
        if entry.is_empty() {
            continue;
        }
        let mut parts = entry.split(':');
        let site = parts
            .next()
            .and_then(Site::from_name)
            .ok_or_else(|| bad(entry, "unknown site name"))?;
        let sched = parts
            .next()
            .ok_or_else(|| bad(entry, "missing schedule (nth=N | every=N | first=K)"))?;
        let (key, val) = sched
            .split_once('=')
            .ok_or_else(|| bad(entry, "schedule must be key=N"))?;
        let n: u64 = val
            .parse()
            .ok()
            .filter(|&n| n > 0)
            .ok_or_else(|| bad(entry, "schedule count must be a positive integer"))?;
        let schedule = match key {
            "nth" => Schedule::Nth(n),
            "every" => Schedule::EveryNth(n),
            "first" => Schedule::FirstK(n),
            _ => return Err(bad(entry, "unknown schedule kind")),
        };
        let errno = match parts.next() {
            Some(name) => Some(errno_by_name(name).ok_or_else(|| bad(entry, "unknown errno name"))?),
            None => None,
        };
        if parts.next().is_some() {
            return Err(bad(entry, "trailing fields"));
        }
        arm(site, schedule, errno);
        armed += 1;
    }
    Ok(armed)
}

/// Arms sites from the `LAZYPOLINE_FAULTS` environment variable.
/// Returns the number of sites armed (0 when the variable is unset or
/// empty).
///
/// # Errors
///
/// Propagates [`arm_from_spec`] parse errors.
pub fn arm_from_env() -> Result<usize, SpecError> {
    match std::env::var("LAZYPOLINE_FAULTS") {
        Ok(spec) => arm_from_spec(&spec),
        Err(_) => Ok(0),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    // The registry is process-global; serialize tests that arm sites.
    static LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn disarmed_is_silent() {
        let _g = LOCK.lock().unwrap();
        disarm_all();
        for site in ALL_SITES {
            assert_eq!(check(site), None);
        }
        // Disarmed checks must not even count hits.
        arm(Site::SudEnroll, Schedule::Nth(1), None);
        disarm(Site::SudEnroll);
        assert_eq!(check(Site::SudEnroll), None);
    }

    #[test]
    fn nth_schedule_fires_once() {
        let _g = LOCK.lock().unwrap();
        disarm_all();
        arm(Site::TrampolineInstall, Schedule::Nth(3), Some(EINVAL));
        let fired: Vec<bool> = (0..6)
            .map(|_| check(Site::TrampolineInstall).is_some())
            .collect();
        assert_eq!(fired, [false, false, true, false, false, false]);
        disarm_all();
    }

    #[test]
    fn every_nth_schedule_repeats() {
        let _g = LOCK.lock().unwrap();
        disarm_all();
        arm(Site::PatchMprotect, Schedule::EveryNth(2), None);
        let fired: Vec<bool> = (0..6).map(|_| check(Site::PatchMprotect).is_some()).collect();
        assert_eq!(fired, [false, true, false, true, false, true]);
        assert_eq!(check(Site::PatchMprotect), None); // 7th
        disarm_all();
    }

    #[test]
    fn first_k_schedule_fails_prefix() {
        let _g = LOCK.lock().unwrap();
        disarm_all();
        let before = injected(Site::SlowpathEmulate);
        arm(Site::SlowpathEmulate, Schedule::FirstK(2), None);
        assert_eq!(check(Site::SlowpathEmulate), Some(EINTR));
        assert_eq!(check(Site::SlowpathEmulate), Some(EINTR));
        assert_eq!(check(Site::SlowpathEmulate), None);
        assert_eq!(injected(Site::SlowpathEmulate), before + 2);
        disarm_all();
    }

    #[test]
    fn rearm_resets_hits_but_keeps_injected() {
        let _g = LOCK.lock().unwrap();
        disarm_all();
        arm(Site::SudEnroll, Schedule::Nth(1), Some(EACCES));
        assert_eq!(check(Site::SudEnroll), Some(EACCES));
        let mid = injected(Site::SudEnroll);
        arm(Site::SudEnroll, Schedule::Nth(1), Some(EFAULT));
        assert_eq!(check(Site::SudEnroll), Some(EFAULT));
        assert_eq!(injected(Site::SudEnroll), mid + 1);
        disarm_all();
    }

    #[test]
    fn default_errnos_match_sites() {
        assert_eq!(Site::TrampolineInstall.default_errno(), EPERM);
        assert_eq!(Site::PatchMprotect.default_errno(), EAGAIN);
        assert_eq!(Site::SudEnroll.default_errno(), ENOSYS);
        assert_eq!(Site::SlowpathEmulate.default_errno(), EINTR);
        assert_eq!(Site::PkeyAlloc.default_errno(), ENOSPC);
        assert_eq!(Site::SeccompInstall.default_errno(), EACCES);
        assert_eq!(Site::PkruSwitch.default_errno(), EAGAIN);
    }

    #[test]
    fn hardened_sites_parse_from_spec() {
        let _g = LOCK.lock().unwrap();
        disarm_all();
        let n = arm_from_spec("pkey_alloc:first=1,seccomp_install:first=1:EINVAL,pkru_switch:nth=2")
            .unwrap();
        assert_eq!(n, 3);
        assert_eq!(check(Site::PkeyAlloc), Some(ENOSPC));
        assert_eq!(check(Site::PkeyAlloc), None);
        assert_eq!(check(Site::SeccompInstall), Some(EINVAL));
        assert_eq!(check(Site::PkruSwitch), None);
        assert_eq!(check(Site::PkruSwitch), Some(EAGAIN));
        disarm_all();
    }

    #[test]
    fn site_names_round_trip() {
        for site in ALL_SITES {
            assert_eq!(Site::from_name(site.name()), Some(site));
        }
        assert_eq!(Site::from_name("bogus"), None);
    }

    #[test]
    fn spec_parsing_arms_sites() {
        let _g = LOCK.lock().unwrap();
        disarm_all();
        let n = arm_from_spec("trampoline_install:first=1,patch_mprotect:every=3:ENOMEM").unwrap();
        assert_eq!(n, 2);
        assert!(is_armed(Site::TrampolineInstall));
        assert!(is_armed(Site::PatchMprotect));
        assert_eq!(check(Site::TrampolineInstall), Some(EPERM)); // default errno
        for _ in 0..2 {
            assert_eq!(check(Site::PatchMprotect), None);
        }
        assert_eq!(check(Site::PatchMprotect), Some(ENOMEM));
        disarm_all();
    }

    #[test]
    fn spec_rejects_garbage() {
        let _g = LOCK.lock().unwrap();
        disarm_all();
        for spec in [
            "nonsense:nth=1",
            "sud_enroll",
            "sud_enroll:nth",
            "sud_enroll:nth=0",
            "sud_enroll:nth=x",
            "sud_enroll:maybe=3",
            "sud_enroll:nth=1:EWHAT",
            "sud_enroll:nth=1:EINTR:extra",
        ] {
            assert!(arm_from_spec(spec).is_err(), "accepted {spec:?}");
        }
        // Empty entries are tolerated (trailing commas).
        assert_eq!(arm_from_spec("").unwrap(), 0);
        assert_eq!(arm_from_spec("sud_enroll:nth=5,").unwrap(), 1);
        disarm_all();
    }
}

//! The `lp_hook_v1` loadable-hook ABI and its `dlopen` loader.
//!
//! Interposers compiled into the binary implement
//! [`SyscallHandler`](interpose::SyscallHandler) directly; this crate
//! is the bridge for interposers shipped as **shared objects** and
//! attached to a live process (`LP_HOOKS=libfoo.so:prio,...`) — the
//! zpoline `ZPOLINE_HOOK=` ops story, but versioned, stackable, and
//! quarantined.
//!
//! # The ABI
//!
//! A hook cdylib exports one symbol, `lp_hook_v1`, a `#[repr(C)]`
//! [`LpHookV1`] descriptor. The layout is frozen: `abi_version` is the
//! **first field**, so a loader can read it before trusting anything
//! else in the struct — a version mismatch is a typed
//! [`HookLoadError::AbiMismatch`], never UB.
//!
//! `handle` receives a mutable [`LpHookEvent`] (it may rewrite the
//! number and arguments before a passthrough) and an out-parameter for
//! return/errno values; its return code selects the action:
//! [`LP_HOOK_CALL_NEXT`] falls through to the next hook down the stack,
//! [`LP_HOOK_RETURN`] short-circuits with `*out`, [`LP_HOOK_FAIL`]
//! short-circuits with `-errno` (`*out` holds the positive errno),
//! [`LP_HOOK_PANIC`] reports an internal panic/fault the hook caught
//! (see below). Unknown codes are treated as `call_next` — forward
//! compatibility over silent failure.
//!
//! # Panics must not cross the boundary
//!
//! A `dlopen`'d Rust cdylib carries its **own copy** of the Rust
//! runtime; a panic unwinding out of it is a *foreign exception* to the
//! host's `catch_unwind` and aborts the process — exactly the crash the
//! quarantine machinery exists to prevent. The ABI contract is
//! therefore: **hooks catch their own panics** and return
//! [`LP_HOOK_PANIC`]. The loader escalates that code by raising a
//! *host-side* panic, which the registry's `catch_unwind` converts into
//! a stack-wide quarantine (PR-2 semantics) while the syscall passes
//! through. The fn pointers stay `extern "C-unwind"` so in-process
//! descriptors (same runtime — tests, embedders) may still unwind
//! directly; shipped hook libraries must not rely on that.
//!
//! Loaded libraries are **never `dlclose`d**: a detached hook can still
//! be mid-invocation on another thread (detach is asynchronous, see
//! `interpose::HookStack`), so its code must stay mapped for the life
//! of the process — the same leak-by-design as the handler registry.

#![deny(missing_docs)]

use std::ffi::{CStr, CString};
use std::fmt;
use std::path::{Path, PathBuf};

use interpose::{Action, InterestSet, SyscallEvent, SyscallHandler};
use libc::{c_char, c_int};
use syscalls::Errno;

/// The ABI revision this loader speaks.
pub const LP_HOOK_ABI_V1: u32 = 1;

/// The descriptor symbol a hook cdylib must export.
pub const LP_HOOK_SYMBOL: &str = "lp_hook_v1";

/// `handle` return code: no decision — fall through to the next hook.
pub const LP_HOOK_CALL_NEXT: c_int = 0;
/// `handle` return code: short-circuit, return `*out` to the app.
pub const LP_HOOK_RETURN: c_int = 1;
/// `handle` return code: short-circuit, fail with `-(*out)` (`*out` is
/// a positive errno; out-of-range values are clamped to `EINVAL`).
pub const LP_HOOK_FAIL: c_int = 2;
/// `handle`/`post` return code: the hook caught an internal panic (or
/// equivalent fault) and is no longer trustworthy. The loader raises a
/// host-side panic, which the registry quarantines — see the module
/// docs for why the hook must catch the panic itself rather than let it
/// unwind across the `dlopen` boundary.
pub const LP_HOOK_PANIC: c_int = -1;

/// One intercepted syscall, as presented across the C ABI. Mirrors
/// `interpose::SyscallEvent` field for field.
#[repr(C)]
#[derive(Clone, Copy, Debug)]
pub struct LpHookEvent {
    /// Syscall number (mutable for rewriting before a passthrough).
    pub nr: u64,
    /// The six syscall arguments (mutable for rewriting).
    pub args: [u64; 6],
    /// Invocation-site address, 0 when unknown.
    pub site: u64,
}

/// The versioned hook descriptor a cdylib exports as `lp_hook_v1`.
///
/// `abi_version` must stay the first field forever (see module docs).
#[repr(C)]
pub struct LpHookV1 {
    /// Must equal [`LP_HOOK_ABI_V1`] for this revision.
    pub abi_version: u32,
    /// Default stack priority (higher runs earlier); an `LP_HOOKS`
    /// spec suffix (`lib.so:prio`) overrides it.
    pub priority: i32,
    /// NUL-terminated hook name for reports; may be null (the loader
    /// falls back to the file stem).
    pub name: *const c_char,
    /// 512-bit interest bitmap, low syscall numbers in word 0 bit 0.
    /// All-ones means every syscall (the common tracing case).
    pub interest_words: [u64; 8],
    /// Optional: runs once at load, before the hook can see syscalls.
    /// A nonzero return refuses the load ([`HookLoadError::InitFailed`]).
    pub init: Option<extern "C" fn() -> c_int>,
    /// Optional: runs at detach. (The library itself stays mapped.)
    pub fini: Option<extern "C" fn()>,
    /// The interposer body; required. See the module docs for the
    /// return-code protocol. `C-unwind` so panics quarantine.
    pub handle: Option<extern "C-unwind" fn(event: *mut LpHookEvent, out: *mut u64) -> c_int>,
    /// Optional result observer for executed passthroughs; returns the
    /// (possibly rewritten) return value.
    pub post: Option<extern "C-unwind" fn(event: *const LpHookEvent, ret: u64) -> u64>,
}

// SAFETY: descriptors are immutable statics; `name` points at a static
// NUL-terminated string. Required so Rust hook crates can declare
// `#[no_mangle] pub static lp_hook_v1: LpHookV1`.
unsafe impl Sync for LpHookV1 {}

/// Why a hook failed to load. Every failure mode is typed — a bad hook
/// library degrades to a structured install error, never UB or a crash.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HookLoadError {
    /// The `LP_HOOKS` spec string is malformed.
    BadSpec {
        /// The offending spec fragment.
        fragment: String,
        /// What was wrong with it.
        reason: String,
    },
    /// `dlopen` refused the library.
    Open {
        /// The path handed to `dlopen`.
        path: String,
        /// The `dlerror()` message.
        dlerror: String,
    },
    /// The library has no [`LP_HOOK_SYMBOL`] export.
    MissingSymbol {
        /// The library path.
        path: String,
        /// The symbol that was looked up.
        symbol: String,
    },
    /// The descriptor's `abi_version` is not one this loader speaks.
    /// Nothing past the version field was read.
    AbiMismatch {
        /// The library path.
        path: String,
        /// The version the descriptor declared.
        found: u32,
        /// The version this loader requires.
        expected: u32,
    },
    /// The descriptor is structurally invalid (e.g. no `handle` fn).
    BadDescriptor {
        /// The library path.
        path: String,
        /// What was wrong with it.
        reason: String,
    },
    /// The hook's `init` returned nonzero, refusing the load.
    InitFailed {
        /// The library path.
        path: String,
        /// The nonzero return code.
        code: i32,
    },
}

impl fmt::Display for HookLoadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HookLoadError::BadSpec { fragment, reason } => {
                write!(f, "bad hook spec {fragment:?}: {reason}")
            }
            HookLoadError::Open { path, dlerror } => {
                write!(f, "dlopen({path}) failed: {dlerror}")
            }
            HookLoadError::MissingSymbol { path, symbol } => {
                write!(f, "{path}: no `{symbol}` descriptor symbol (not a hook library?)")
            }
            HookLoadError::AbiMismatch { path, found, expected } => {
                write!(f, "{path}: hook ABI v{found}, this loader speaks v{expected}")
            }
            HookLoadError::BadDescriptor { path, reason } => {
                write!(f, "{path}: invalid hook descriptor: {reason}")
            }
            HookLoadError::InitFailed { path, code } => {
                write!(f, "{path}: hook init() refused the load (returned {code})")
            }
        }
    }
}

impl std::error::Error for HookLoadError {}

/// One parsed fragment of an `LP_HOOKS` spec: a library path or bare
/// name, plus an optional priority override.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HookSpec {
    /// Library path (contains `/`) or bare name to resolve.
    pub library: String,
    /// Priority from a `:prio` suffix; `None` uses the descriptor's.
    pub priority: Option<i32>,
}

/// Parses `LP_HOOKS`-style specs: comma-separated
/// `path-or-name[:priority]` fragments. An empty string yields no
/// hooks.
///
/// ```
/// let specs = lp_hookabi::parse_specs("libfoo.so:5,hook_count").unwrap();
/// assert_eq!(specs.len(), 2);
/// assert_eq!(specs[0].priority, Some(5));
/// assert_eq!(specs[1].library, "hook_count");
/// ```
pub fn parse_specs(spec: &str) -> Result<Vec<HookSpec>, HookLoadError> {
    let mut out = Vec::new();
    for frag in spec.split(',') {
        let frag = frag.trim();
        if frag.is_empty() {
            if spec.trim().is_empty() {
                continue; // wholly empty spec: no hooks
            }
            return Err(HookLoadError::BadSpec {
                fragment: String::new(),
                reason: "empty fragment (stray comma?)".into(),
            });
        }
        // `:prio` suffix — split on the *last* colon so the rare path
        // containing a colon still works when it also has a priority.
        let (library, priority) = match frag.rsplit_once(':') {
            Some((lib, prio)) if !lib.is_empty() => match prio.parse::<i32>() {
                Ok(p) => (lib.to_string(), Some(p)),
                // Not a number: the colon belongs to the path.
                Err(_) => (frag.to_string(), None),
            },
            _ => (frag.to_string(), None),
        };
        out.push(HookSpec { library, priority });
    }
    Ok(out)
}

/// Resolves a spec's library field to a `dlopen`-able path.
///
/// Anything containing `/` is used verbatim. A bare name is tried as
/// `lib<name>.so` (and as-is, for names already shaped like a
/// filename) next to the running executable and in its ancestor
/// directories' `deps/` — where cargo puts workspace cdylib artifacts
/// relative to test and bench binaries. If nothing is found the bare
/// name is returned unchanged, letting `dlopen` run its normal
/// `LD_LIBRARY_PATH` search (and produce the error if that fails too).
pub fn resolve_library(library: &str) -> PathBuf {
    if library.contains('/') {
        return PathBuf::from(library);
    }
    let mut candidates = Vec::new();
    if library.ends_with(".so") {
        candidates.push(library.to_string());
    } else {
        candidates.push(format!("lib{library}.so"));
    }
    if let Ok(exe) = std::env::current_exe() {
        let mut dir = exe.parent().map(Path::to_path_buf);
        for _ in 0..4 {
            let Some(d) = dir else { break };
            for cand in &candidates {
                for probe in [d.join(cand), d.join("deps").join(cand)] {
                    if probe.exists() {
                        return probe;
                    }
                }
            }
            dir = d.parent().map(Path::to_path_buf);
        }
    }
    PathBuf::from(library)
}

fn last_dlerror() -> String {
    // SAFETY: dlerror returns a thread-local NUL-terminated string or
    // null; we copy it out immediately.
    unsafe {
        let p = libc::dlerror();
        if p.is_null() {
            "unknown dlerror".to_string()
        } else {
            CStr::from_ptr(p).to_string_lossy().into_owned()
        }
    }
}

/// A loaded, validated hook, adapted to the
/// [`SyscallHandler`](interpose::SyscallHandler) trait so it can sit in
/// a `HookStack` next to compiled-in handlers.
pub struct LoadedHook {
    desc: &'static LpHookV1,
    name: String,
    priority: i32,
    origin: String,
}

impl LoadedHook {
    /// Validates `desc` and wraps it. This is the common tail of the
    /// `dlopen` path, public so tests (and embedders) can exercise the
    /// ABI without a shared object. **`desc.abi_version` must already
    /// have been checked** when `desc` came from an untrusted mapping;
    /// this function re-checks it for the in-process case.
    pub fn from_descriptor(
        desc: &'static LpHookV1,
        origin: &str,
        priority_override: Option<i32>,
    ) -> Result<LoadedHook, HookLoadError> {
        if desc.abi_version != LP_HOOK_ABI_V1 {
            return Err(HookLoadError::AbiMismatch {
                path: origin.to_string(),
                found: desc.abi_version,
                expected: LP_HOOK_ABI_V1,
            });
        }
        if desc.handle.is_none() {
            return Err(HookLoadError::BadDescriptor {
                path: origin.to_string(),
                reason: "handle fn pointer is null".into(),
            });
        }
        let name = if desc.name.is_null() {
            Path::new(origin)
                .file_stem()
                .map(|s| s.to_string_lossy().into_owned())
                .unwrap_or_else(|| "hook".into())
        } else {
            // SAFETY: the ABI requires `name` to be a NUL-terminated
            // static string when non-null.
            unsafe { CStr::from_ptr(desc.name).to_string_lossy().into_owned() }
        };
        if let Some(init) = desc.init {
            let code = init();
            if code != 0 {
                return Err(HookLoadError::InitFailed {
                    path: origin.to_string(),
                    code,
                });
            }
        }
        Ok(LoadedHook {
            desc,
            name,
            priority: priority_override.unwrap_or(desc.priority),
            origin: origin.to_string(),
        })
    }

    /// `dlopen`s `path`, finds and validates the [`LP_HOOK_SYMBOL`]
    /// descriptor, and runs its `init`. The library is never closed
    /// (module docs). `priority_override` comes from the spec suffix.
    pub fn load(path: &Path, priority_override: Option<i32>) -> Result<LoadedHook, HookLoadError> {
        let display = path.display().to_string();
        let cpath = CString::new(display.as_str()).map_err(|_| HookLoadError::BadSpec {
            fragment: display.clone(),
            reason: "path contains NUL".into(),
        })?;
        // SAFETY: plain dlopen of a caller-supplied path; flags are
        // RTLD_NOW (fail loads up front, not mid-dispatch) and
        // RTLD_LOCAL (hook symbols must not pollute the app's
        // namespace).
        let handle = unsafe { libc::dlopen(cpath.as_ptr(), libc::RTLD_NOW | libc::RTLD_LOCAL) };
        if handle.is_null() {
            return Err(HookLoadError::Open {
                path: display,
                dlerror: last_dlerror(),
            });
        }
        let sym = CString::new(LP_HOOK_SYMBOL).unwrap();
        // SAFETY: dlsym on the handle we just opened.
        let desc_ptr = unsafe { libc::dlsym(handle, sym.as_ptr()) } as *const LpHookV1;
        if desc_ptr.is_null() {
            return Err(HookLoadError::MissingSymbol {
                path: display,
                symbol: LP_HOOK_SYMBOL.to_string(),
            });
        }
        // Version gate BEFORE trusting the descriptor layout:
        // `abi_version` is the first u32 of every revision, so this
        // read is valid whatever the library actually exported.
        // SAFETY: desc_ptr points at ≥4 readable bytes (an exported
        // object symbol); only the leading u32 is read here.
        let found = unsafe { *(desc_ptr as *const u32) };
        if found != LP_HOOK_ABI_V1 {
            return Err(HookLoadError::AbiMismatch {
                path: display,
                found,
                expected: LP_HOOK_ABI_V1,
            });
        }
        // SAFETY: version checked — the full v1 layout applies. The
        // library is never unloaded, so 'static is accurate.
        let desc: &'static LpHookV1 = unsafe { &*desc_ptr };
        LoadedHook::from_descriptor(desc, &display, priority_override)
    }

    /// The hook's stack priority (spec override or descriptor default).
    pub fn priority(&self) -> i32 {
        self.priority
    }

    /// Where the hook came from (library path or descriptor origin).
    pub fn origin(&self) -> &str {
        &self.origin
    }

    /// Runs the descriptor's `fini`, if any. Called by the mechanism
    /// layer after detaching the hook from the stack.
    pub fn run_fini(&self) {
        if let Some(fini) = self.desc.fini {
            fini();
        }
    }
}

impl fmt::Debug for LoadedHook {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "LoadedHook({} prio={} from {})", self.name, self.priority, self.origin)
    }
}

// SAFETY: the descriptor is an immutable static and its functions are
// required by the ABI to be callable from any thread (they run on
// whatever application thread makes the syscall).
unsafe impl Send for LoadedHook {}
unsafe impl Sync for LoadedHook {}

impl SyscallHandler for LoadedHook {
    fn handle(&self, event: &mut SyscallEvent) -> Action {
        let mut c_ev = LpHookEvent {
            nr: event.call.nr,
            args: event.call.args,
            site: event.site as u64,
        };
        let mut out: u64 = 0;
        // Required by from_descriptor; unwrap is unreachable.
        let handle = self.desc.handle.expect("validated at load");
        let code = handle(&mut c_ev, &mut out);
        // Propagate rewrites back for later hooks / the execution.
        event.call.nr = c_ev.nr;
        event.call.args = c_ev.args;
        match code {
            LP_HOOK_RETURN => Action::Return(out),
            LP_HOOK_FAIL => {
                let errno = match i32::try_from(out) {
                    Ok(n) if (1..=Errno::MAX).contains(&n) => Errno::new(n),
                    _ => Errno::EINVAL,
                };
                Action::Fail(errno)
            }
            // The hook caught an internal panic it could not unwind
            // across the dlopen boundary (module docs): re-raise it
            // host-side so the registry's catch_unwind quarantines the
            // stack and the syscall passes through.
            LP_HOOK_PANIC => panic!(
                "hook {:?} ({}) reported an internal panic on syscall {}",
                self.name, self.origin, event.call.nr
            ),
            // LP_HOOK_CALL_NEXT and any future code: fall through.
            _ => Action::Passthrough,
        }
    }

    fn post(&self, event: &SyscallEvent, ret: u64) -> u64 {
        match self.desc.post {
            Some(post) => {
                let c_ev = LpHookEvent {
                    nr: event.call.nr,
                    args: event.call.args,
                    site: event.site as u64,
                };
                post(&c_ev, ret)
            }
            None => ret,
        }
    }

    fn name(&self) -> &str {
        &self.name
    }

    fn interest(&self) -> InterestSet {
        InterestSet::from_words(self.desc.interest_words)
    }
}

/// Parses `spec`, resolves each library, and loads every hook —
/// the one-call path behind `LP_HOOKS`. Fails on the first bad
/// fragment or library (a partial stack is worse than a typed error at
/// install time).
pub fn load_from_spec(spec: &str) -> Result<Vec<LoadedHook>, HookLoadError> {
    let mut hooks = Vec::new();
    for s in parse_specs(spec)? {
        let path = resolve_library(&s.library);
        hooks.push(LoadedHook::load(&path, s.priority)?);
    }
    Ok(hooks)
}

#[cfg(test)]
mod tests {
    use super::*;
    use syscalls::{nr, SyscallArgs};

    extern "C-unwind" fn deny_execve(ev: *mut LpHookEvent, out: *mut u64) -> c_int {
        unsafe {
            if (*ev).nr == nr::EXECVE {
                *out = libc::EPERM as u64;
                return LP_HOOK_FAIL;
            }
            if (*ev).nr == nr::GETPID {
                *out = 4242;
                return LP_HOOK_RETURN;
            }
            // Rewrite arg0 on everything else, then fall through.
            (*ev).args[0] += 1;
        }
        LP_HOOK_CALL_NEXT
    }

    extern "C-unwind" fn double_ret(_ev: *const LpHookEvent, ret: u64) -> u64 {
        ret * 2
    }

    const NAME: &[u8] = b"testhook\0";

    static GOOD: LpHookV1 = LpHookV1 {
        abi_version: LP_HOOK_ABI_V1,
        priority: 3,
        name: NAME.as_ptr() as *const c_char,
        interest_words: [u64::MAX; 8],
        init: None,
        fini: None,
        handle: Some(deny_execve),
        post: Some(double_ret),
    };

    #[test]
    fn descriptor_adapts_to_syscall_handler() {
        let h = LoadedHook::from_descriptor(&GOOD, "inline", None).unwrap();
        assert_eq!(h.name(), "testhook");
        assert_eq!(h.priority(), 3);
        assert!(h.interest().is_all());

        let mut ev = SyscallEvent::new(SyscallArgs::nullary(nr::EXECVE));
        assert_eq!(h.handle(&mut ev), Action::Fail(Errno::EPERM));

        let mut ev = SyscallEvent::new(SyscallArgs::nullary(nr::GETPID));
        assert_eq!(h.handle(&mut ev), Action::Return(4242));

        let mut ev = SyscallEvent::new(SyscallArgs::new(nr::WRITE, [9, 0, 0, 0, 0, 0]));
        assert_eq!(h.handle(&mut ev), Action::Passthrough);
        assert_eq!(ev.call.args[0], 10, "rewrite visible to caller");
        assert_eq!(h.post(&ev, 21), 42);
    }

    #[test]
    fn priority_override_beats_descriptor() {
        let h = LoadedHook::from_descriptor(&GOOD, "inline", Some(-7)).unwrap();
        assert_eq!(h.priority(), -7);
    }

    static WRONG_VERSION: LpHookV1 = LpHookV1 {
        abi_version: 999,
        ..GOOD_TEMPLATE
    };
    static NO_HANDLE: LpHookV1 = LpHookV1 {
        handle: None,
        ..GOOD_TEMPLATE
    };
    extern "C" fn refuse() -> c_int {
        17
    }
    static INIT_REFUSES: LpHookV1 = LpHookV1 {
        init: Some(refuse),
        ..GOOD_TEMPLATE
    };
    const GOOD_TEMPLATE: LpHookV1 = LpHookV1 {
        abi_version: LP_HOOK_ABI_V1,
        priority: 0,
        name: std::ptr::null(),
        interest_words: [u64::MAX; 8],
        init: None,
        fini: None,
        handle: Some(deny_execve),
        post: None,
    };

    #[test]
    fn bad_descriptors_are_typed_errors() {
        assert_eq!(
            LoadedHook::from_descriptor(&WRONG_VERSION, "x.so", None).unwrap_err(),
            HookLoadError::AbiMismatch {
                path: "x.so".into(),
                found: 999,
                expected: LP_HOOK_ABI_V1
            }
        );
        assert!(matches!(
            LoadedHook::from_descriptor(&NO_HANDLE, "x.so", None).unwrap_err(),
            HookLoadError::BadDescriptor { .. }
        ));
        assert_eq!(
            LoadedHook::from_descriptor(&INIT_REFUSES, "x.so", None).unwrap_err(),
            HookLoadError::InitFailed {
                path: "x.so".into(),
                code: 17
            }
        );
    }

    #[test]
    fn null_name_falls_back_to_file_stem() {
        static ANON: LpHookV1 = GOOD_TEMPLATE;
        let h = LoadedHook::from_descriptor(&ANON, "/tmp/libmyhook.so", None).unwrap();
        assert_eq!(h.name(), "libmyhook");
    }

    #[test]
    fn spec_parsing() {
        assert!(parse_specs("").unwrap().is_empty());
        assert!(parse_specs("  ").unwrap().is_empty());

        let v = parse_specs("libfoo.so:5,hook_count,./x/libbar.so:-2").unwrap();
        assert_eq!(
            v,
            vec![
                HookSpec { library: "libfoo.so".into(), priority: Some(5) },
                HookSpec { library: "hook_count".into(), priority: None },
                HookSpec { library: "./x/libbar.so".into(), priority: Some(-2) },
            ]
        );

        // A colon suffix that isn't a number belongs to the path.
        let v = parse_specs("weird:name.so").unwrap();
        assert_eq!(v[0].library, "weird:name.so");
        assert_eq!(v[0].priority, None);

        assert!(matches!(
            parse_specs("libfoo.so,,libbar.so").unwrap_err(),
            HookLoadError::BadSpec { .. }
        ));
    }

    #[test]
    fn resolve_passes_paths_through() {
        assert_eq!(resolve_library("./libx.so"), PathBuf::from("./libx.so"));
        assert_eq!(resolve_library("/a/b/libx.so"), PathBuf::from("/a/b/libx.so"));
        // Unresolvable bare name falls back unchanged for dlopen's own
        // search.
        assert_eq!(
            resolve_library("definitely_not_built"),
            PathBuf::from("definitely_not_built")
        );
    }

    #[test]
    fn dlopen_of_missing_library_is_typed() {
        let err = LoadedHook::load(Path::new("/nonexistent/libnothing.so"), None).unwrap_err();
        assert!(matches!(err, HookLoadError::Open { .. }), "{err}");
        // Errors render human-readably.
        assert!(err.to_string().contains("/nonexistent/libnothing.so"));
    }

    #[test]
    fn missing_descriptor_symbol_is_typed() {
        // libc.so.6 loads fine but has no lp_hook_v1 symbol.
        let err = LoadedHook::load(Path::new("libc.so.6"), None).unwrap_err();
        assert_eq!(
            err,
            HookLoadError::MissingSymbol {
                path: "libc.so.6".into(),
                symbol: LP_HOOK_SYMBOL.into()
            }
        );
    }
}

//! Benchmark document roots: files of the sizes Figure 5 sweeps.

use std::io;
use std::path::{Path, PathBuf};

/// The file sizes (bytes) served in the paper's Figure 5 sweep.
pub const PAPER_FILE_SIZES: &[usize] = &[
    64,
    1 << 10,
    4 << 10,
    16 << 10,
    64 << 10,
    256 << 10,
];

/// Canonical resource path for a file of `size` bytes.
pub fn path_for_size(size: usize) -> String {
    format!("/file_{size}")
}

/// A temporary directory populated with benchmark files.
///
/// Files are named `file_<size>` and filled with a deterministic byte
/// pattern so response integrity can be checked cheaply.
#[derive(Debug)]
pub struct Docroot {
    dir: PathBuf,
}

impl Docroot {
    /// Creates the docroot under the system temp dir, writing one file
    /// per entry in `sizes`.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn create(sizes: &[usize]) -> io::Result<Docroot> {
        let dir = std::env::temp_dir().join(format!("lp-httpd-root-{}", std::process::id()));
        std::fs::create_dir_all(&dir)?;
        for &size in sizes {
            std::fs::write(dir.join(format!("file_{size}")), pattern(size))?;
        }
        Ok(Docroot { dir })
    }

    /// The directory path.
    pub fn path(&self) -> &Path {
        &self.dir
    }

    /// Resolves a request path (`/file_4096`) to a filesystem path,
    /// refusing traversal.
    pub fn resolve(&self, request_path: &str) -> Option<PathBuf> {
        let name = request_path.strip_prefix('/')?;
        if name.is_empty() || name.contains('/') || name.contains("..") {
            return None;
        }
        let p = self.dir.join(name);
        p.is_file().then_some(p)
    }
}

impl Drop for Docroot {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.dir);
    }
}

/// Deterministic content for a file of `size` bytes.
pub fn pattern(size: usize) -> Vec<u8> {
    (0..size).map(|i| (i % 251) as u8).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn creates_all_sizes() {
        let root = Docroot::create(PAPER_FILE_SIZES).unwrap();
        for &s in PAPER_FILE_SIZES {
            let p = root.resolve(&path_for_size(s)).unwrap();
            assert_eq!(std::fs::metadata(&p).unwrap().len() as usize, s);
        }
    }

    #[test]
    fn rejects_traversal_and_missing() {
        let root = Docroot::create(&[64]).unwrap();
        assert!(root.resolve("/../etc/passwd").is_none());
        assert!(root.resolve("/a/b").is_none());
        assert!(root.resolve("/nope").is_none());
        assert!(root.resolve("nope").is_none());
        assert!(root.resolve("/").is_none());
    }

    #[test]
    fn pattern_is_deterministic() {
        assert_eq!(pattern(5), vec![0, 1, 2, 3, 4]);
        assert_eq!(pattern(0).len(), 0);
        assert_eq!(pattern(300)[251], 0);
    }

    #[test]
    fn drop_cleans_up() {
        let path;
        {
            let root = Docroot::create(&[64]).unwrap();
            path = root.path().to_path_buf();
            assert!(path.exists());
        }
        assert!(!path.exists());
    }
}

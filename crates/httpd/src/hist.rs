//! Log-bucketed latency histogram (HDR-style).
//!
//! The open-loop load generator records one latency sample per
//! completed request — at saturation that is hundreds of thousands of
//! samples per second across several event-loop threads, so the
//! recording path must be O(1), allocation-free, and mergeable. The
//! classic answer is a log-linear bucket layout: values are grouped by
//! their power-of-two octave, and each octave is split into
//! [`SUB_BUCKETS`] linear sub-buckets, bounding the relative
//! quantization error at `1 / SUB_BUCKETS` (~3%) everywhere across the
//! full `u64` range — nanoseconds to hours in one fixed ~15 KiB array.
//!
//! Each generator thread owns a private histogram; [`Histogram::merge`]
//! folds them into one (bucket-wise addition, lossless) from which
//! [`Histogram::percentile`] reads p50/p99/p999. Merging never changes
//! total count and merged percentiles always lie within the envelope
//! of the per-thread percentiles — both properties are property-tested
//! in `tests/hist_prop.rs`.

/// Linear sub-buckets per power-of-two octave (2^5): relative
/// quantization error ≤ 1/32 ≈ 3.1%.
pub const SUB_BUCKETS: usize = 32;

const SUB_BITS: u32 = SUB_BUCKETS.trailing_zeros();

/// Total bucket count covering all of `u64`.
const BUCKETS: usize = (64 - SUB_BITS as usize + 1) * SUB_BUCKETS;

/// A fixed-size log-bucketed histogram of `u64` samples (the load
/// generator stores nanoseconds).
#[derive(Clone)]
pub struct Histogram {
    counts: [u64; BUCKETS],
    total: u64,
    max: u64,
    min: u64,
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram::new()
    }
}

/// Bucket index for `value`: identity below [`SUB_BUCKETS`], then
/// log-linear (octave by leading zeros, sub-bucket by the next
/// [`SUB_BITS`] bits).
#[inline]
fn index(value: u64) -> usize {
    if value < SUB_BUCKETS as u64 {
        return value as usize;
    }
    let msb = 63 - value.leading_zeros();
    let shift = msb - SUB_BITS;
    let offset = ((value >> shift) & (SUB_BUCKETS as u64 - 1)) as usize;
    ((shift as usize + 1) << SUB_BITS) + offset
}

/// Lowest value mapping to bucket `i` (the bucket's representative
/// lower bound).
fn bucket_low(i: usize) -> u64 {
    if i < SUB_BUCKETS {
        return i as u64;
    }
    let octave = (i >> SUB_BITS) as u32;
    let offset = (i & (SUB_BUCKETS - 1)) as u64;
    (SUB_BUCKETS as u64 + offset) << (octave - 1)
}

/// Exclusive upper bound of bucket `i`.
fn bucket_high(i: usize) -> u64 {
    if i < SUB_BUCKETS {
        return i as u64 + 1;
    }
    let octave = (i >> SUB_BITS) as u32;
    bucket_low(i).saturating_add(1u64 << (octave - 1))
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Histogram {
        Histogram {
            counts: [0; BUCKETS],
            total: 0,
            max: 0,
            min: u64::MAX,
        }
    }

    /// Records one sample. O(1), allocation-free.
    #[inline]
    pub fn record(&mut self, value: u64) {
        self.counts[index(value)] += 1;
        self.total += 1;
        self.max = self.max.max(value);
        self.min = self.min.min(value);
    }

    /// Folds `other` into `self` (bucket-wise; lossless).
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += b;
        }
        self.total += other.total;
        self.max = self.max.max(other.max);
        self.min = self.min.min(other.min);
    }

    /// Total recorded samples.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Largest recorded sample (exact, not quantized). 0 when empty.
    pub fn max(&self) -> u64 {
        if self.total == 0 {
            0
        } else {
            self.max
        }
    }

    /// Smallest recorded sample (exact). 0 when empty.
    pub fn min(&self) -> u64 {
        if self.total == 0 {
            0
        } else {
            self.min
        }
    }

    /// The value at quantile `q` in `[0, 1]` — the smallest bucket
    /// boundary such that at least `q · count` samples fall at or below
    /// it (midpoint of the containing bucket, clamped to the observed
    /// min/max so quantization never reports beyond a real sample).
    /// Returns 0 on an empty histogram.
    pub fn percentile(&self, q: f64) -> u64 {
        if self.total == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.total as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                let mid = bucket_low(i) + (bucket_high(i) - bucket_low(i)) / 2;
                return mid.clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// `(p50, p99, p999)` in one pass-friendly call.
    pub fn summary(&self) -> (u64, u64, u64) {
        (
            self.percentile(0.50),
            self.percentile(0.99),
            self.percentile(0.999),
        )
    }
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Histogram")
            .field("count", &self.total)
            .field("min", &self.min())
            .field("p50", &self.percentile(0.5))
            .field("p99", &self.percentile(0.99))
            .field("max", &self.max())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_are_contiguous_and_monotonic() {
        // Every value maps into a bucket whose [low, high) contains it,
        // and indexes never decrease with the value.
        let mut prev = 0;
        for v in (0..4096u64).chain((12..63).map(|s| (1u64 << s) + 12345 % (1 << s))) {
            let i = index(v);
            assert!(bucket_low(i) <= v && v < bucket_high(i), "v={v} i={i}");
            assert!(i >= prev || v < 4096, "index monotonic");
            prev = i;
        }
        assert!(index(u64::MAX) < BUCKETS);
    }

    #[test]
    fn small_values_are_exact() {
        let mut h = Histogram::new();
        for v in 0..SUB_BUCKETS as u64 {
            h.record(v);
        }
        assert_eq!(h.count(), SUB_BUCKETS as u64);
        assert_eq!(h.percentile(0.0), 0);
        assert_eq!(h.max(), SUB_BUCKETS as u64 - 1);
    }

    #[test]
    fn percentile_error_is_bounded() {
        let mut h = Histogram::new();
        for v in 1..=100_000u64 {
            h.record(v * 1000); // 1ms .. 100s in µs-ish units
        }
        for (q, exact) in [(0.5, 50_000_000u64), (0.99, 99_000_000), (0.999, 99_900_000)] {
            let got = h.percentile(q);
            let err = (got as f64 - exact as f64).abs() / exact as f64;
            assert!(err < 0.04, "q={q} got={got} exact={exact} err={err}");
        }
    }

    #[test]
    fn merge_conserves_count_and_extremes() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        for v in [3u64, 77, 1_000_000, 42] {
            a.record(v);
        }
        for v in [9u64, 123_456_789, 5] {
            b.record(v);
        }
        let mut m = a.clone();
        m.merge(&b);
        assert_eq!(m.count(), a.count() + b.count());
        assert_eq!(m.max(), 123_456_789);
        assert_eq!(m.min(), 3);
    }

    #[test]
    fn empty_histogram_is_all_zeroes() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.percentile(0.5), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.summary(), (0, 0, 0));
    }
}

//! Minimal HTTP/1.1 request parsing and response construction.
//!
//! Only what the benchmark needs: GET requests, keep-alive, and
//! fixed-length bodies. Parsing is allocation-light and incremental
//! (requests may arrive split across reads).

/// A parsed GET request line.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Request {
    /// The request path, e.g. `/file_4096`.
    pub path: String,
    /// Whether the client asked to keep the connection open.
    pub keep_alive: bool,
}

/// Incremental request accumulator for one connection.
#[derive(Debug, Default)]
pub struct RequestBuffer {
    buf: Vec<u8>,
}

impl RequestBuffer {
    /// Creates an empty accumulator.
    pub fn new() -> RequestBuffer {
        RequestBuffer { buf: Vec::new() }
    }

    /// Appends freshly-read bytes.
    pub fn push(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Extracts the next complete request, if a full header block
    /// (`\r\n\r\n`) has arrived. Leftover bytes (pipelined requests)
    /// are retained.
    pub fn next_request(&mut self) -> Option<Request> {
        let end = find_header_end(&self.buf)?;
        let header: Vec<u8> = self.buf.drain(..end + 4).collect();
        parse_request(&header)
    }

    /// Bytes currently buffered (for overload protection).
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing is buffered.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }
}

fn find_header_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

fn parse_request(header: &[u8]) -> Option<Request> {
    let text = std::str::from_utf8(header).ok()?;
    let mut lines = text.split("\r\n");
    let request_line = lines.next()?;
    let mut parts = request_line.split(' ');
    let method = parts.next()?;
    let path = parts.next()?;
    let version = parts.next()?;
    if method != "GET" {
        return None;
    }
    // HTTP/1.1 defaults to keep-alive; 1.0 to close.
    let mut keep_alive = version == "HTTP/1.1";
    for line in lines {
        let lower = line.to_ascii_lowercase();
        if let Some(v) = lower.strip_prefix("connection:") {
            keep_alive = v.trim() == "keep-alive";
        }
    }
    Some(Request {
        path: path.to_string(),
        keep_alive,
    })
}

/// Builds a `200 OK` response header for a body of `len` bytes.
pub fn response_header(len: usize, keep_alive: bool) -> Vec<u8> {
    format!(
        "HTTP/1.1 200 OK\r\nServer: lp-httpd\r\nContent-Type: application/octet-stream\r\nContent-Length: {}\r\nConnection: {}\r\n\r\n",
        len,
        if keep_alive { "keep-alive" } else { "close" }
    )
    .into_bytes()
}

/// Builds a `404 Not Found` response.
pub fn response_404(keep_alive: bool) -> Vec<u8> {
    let body = b"not found\n";
    let mut r = format!(
        "HTTP/1.1 404 Not Found\r\nServer: lp-httpd\r\nContent-Length: {}\r\nConnection: {}\r\n\r\n",
        body.len(),
        if keep_alive { "keep-alive" } else { "close" }
    )
    .into_bytes();
    r.extend_from_slice(body);
    r
}

/// Builds the canonical benchmark request for `path`.
pub fn get_request(path: &str, keep_alive: bool) -> Vec<u8> {
    format!(
        "GET {} HTTP/1.1\r\nHost: localhost\r\nConnection: {}\r\n\r\n",
        path,
        if keep_alive { "keep-alive" } else { "close" }
    )
    .into_bytes()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_simple_get() {
        let mut rb = RequestBuffer::new();
        rb.push(b"GET /x HTTP/1.1\r\nHost: h\r\n\r\n");
        let r = rb.next_request().unwrap();
        assert_eq!(r.path, "/x");
        assert!(r.keep_alive);
        assert!(rb.is_empty());
    }

    #[test]
    fn split_across_reads() {
        let mut rb = RequestBuffer::new();
        rb.push(b"GET /abc HT");
        assert!(rb.next_request().is_none());
        rb.push(b"TP/1.1\r\n");
        assert!(rb.next_request().is_none());
        rb.push(b"\r\n");
        assert_eq!(rb.next_request().unwrap().path, "/abc");
    }

    #[test]
    fn pipelined_requests_preserved() {
        let mut rb = RequestBuffer::new();
        rb.push(b"GET /a HTTP/1.1\r\n\r\nGET /b HTTP/1.1\r\n\r\n");
        assert_eq!(rb.next_request().unwrap().path, "/a");
        assert_eq!(rb.next_request().unwrap().path, "/b");
        assert!(rb.next_request().is_none());
    }

    #[test]
    fn connection_close_detected() {
        let mut rb = RequestBuffer::new();
        rb.push(b"GET / HTTP/1.1\r\nConnection: close\r\n\r\n");
        assert!(!rb.next_request().unwrap().keep_alive);
        rb.push(b"GET / HTTP/1.0\r\n\r\n");
        assert!(!rb.next_request().unwrap().keep_alive);
    }

    #[test]
    fn non_get_rejected() {
        let mut rb = RequestBuffer::new();
        rb.push(b"POST / HTTP/1.1\r\n\r\n");
        assert!(rb.next_request().is_none());
    }

    #[test]
    fn header_and_request_roundtrip() {
        let hdr = response_header(1234, true);
        let s = String::from_utf8(hdr).unwrap();
        assert!(s.contains("Content-Length: 1234"));
        assert!(s.contains("keep-alive"));
        assert!(s.ends_with("\r\n\r\n"));

        let req = get_request("/file_64", true);
        let mut rb = RequestBuffer::new();
        rb.push(&req);
        assert_eq!(rb.next_request().unwrap().path, "/file_64");
    }

    #[test]
    fn not_found_is_well_formed() {
        let r = String::from_utf8(response_404(false)).unwrap();
        assert!(r.starts_with("HTTP/1.1 404"));
        assert!(r.contains("Connection: close"));
    }
}

//! Mini static-file web server + load client for the macrobenchmarks
//! (paper §V-B(b), Figure 5).
//!
//! The paper measures nginx 1.25.3 and lighttpd 1.4.73 serving static
//! content over localhost under `wrk`. This crate is the in-repo
//! substitute: an epoll-based HTTP/1.1 keep-alive server with two
//! flavours whose *syscall mixes* mirror the two originals where it
//! matters for interposition overhead:
//!
//! * [`Flavor::NginxLike`] — per request: `openat` + `fstat` + `read`
//!   (chunked) + `write` + `close`, like an uncached nginx worker.
//! * [`Flavor::LighttpdLike`] — files are loaded once at startup and
//!   served from memory: per request only `read` (request) + `write`
//!   (response), the leanest possible syscall mix, making relative
//!   interposition overhead *larger* (more syscalls per byte served at
//!   small sizes, fewer total syscalls at large ones).
//!
//! Multi-worker mode forks `N` worker processes sharing a listener via
//! `SO_REUSEPORT`, like nginx's master/worker model.
//!
//! The [`wrk`] module is the measurement client: keep-alive
//! connections hammering one resource for a fixed duration, reporting
//! requests/sec — the same observable Figure 5 plots.

#![deny(missing_docs)]

pub mod docroot;
pub mod http;
pub mod server;
pub mod wrk;

pub use docroot::Docroot;
pub use server::{Flavor, Server, ServerConfig};
pub use wrk::{run_load, LoadConfig, LoadReport};

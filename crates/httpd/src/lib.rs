//! Mini static-file web server + load client for the macrobenchmarks
//! (paper §V-B(b), Figure 5).
//!
//! The paper measures nginx 1.25.3 and lighttpd 1.4.73 serving static
//! content over localhost under `wrk`. This crate is the in-repo
//! substitute: an epoll-based HTTP/1.1 keep-alive server with two
//! flavours whose *syscall mixes* mirror the two originals where it
//! matters for interposition overhead:
//!
//! * [`Flavor::NginxLike`] — per request: `openat` + `fstat` + `read`
//!   (chunked) + `write` + `close`, like an uncached nginx worker.
//! * [`Flavor::LighttpdLike`] — files are loaded once at startup and
//!   served from memory: per request only `read` (request) + `write`
//!   (response), the leanest possible syscall mix, making relative
//!   interposition overhead *larger* (more syscalls per byte served at
//!   small sizes, fewer total syscalls at large ones).
//!
//! Multi-worker mode forks `N` worker processes sharing a listener via
//! `SO_REUSEPORT`, like nginx's master/worker model.
//!
//! The [`loadgen`] module is the measurement client: an epoll-based,
//! multi-threaded **open-loop** generator multiplexing thousands of
//! nonblocking keep-alive connections, recording per-request latency
//! into the log-bucketed [`hist::Histogram`] (p50/p99/p999 per cell —
//! the same observables Figure 5 plots, plus the tail the paper's
//! mean-RPS table hides). The legacy closed-loop [`wrk`] client is
//! kept as the comparison baseline the open-loop harness is measured
//! against.

#![deny(missing_docs)]

pub mod docroot;
pub mod hist;
pub mod http;
pub mod loadgen;
pub mod server;
pub mod wrk;

pub use docroot::Docroot;
pub use hist::Histogram;
pub use loadgen::{run_open_loop, OpenLoopConfig, OpenLoopReport};
pub use server::{Flavor, Server, ServerConfig, StopFlag};
pub use wrk::{run_load, LoadConfig, LoadReport};

//! Open-loop epoll load generator — the harness side of "production
//! traffic".
//!
//! The legacy [`wrk`](crate::wrk) client is closed-loop,
//! thread-per-connection: each thread fires a request, blocks on the
//! response, fires the next. That design cannot express thousands of
//! concurrent connections (a thread each), and — worse for
//! measurement — it *coordinates with the server*: when the server
//! stalls, the client politely stops offering load, so the stall never
//! shows up in the numbers (coordinated omission).
//!
//! This module is the replacement: `threads` event-loop threads
//! multiplex `connections` nonblocking keep-alive connections through
//! epoll. Request *admission* is open-loop — a virtual schedule admits
//! one request every `1/rate` seconds no matter what the server is
//! doing; a request whose turn arrives while its connection is busy is
//! queued on it (pipelined), not skipped. Latency is measured from the
//! request's **scheduled** time to response completion, so server
//! stalls surface as queueing delay in the tail percentiles instead of
//! silently thinning the load. `rate == 0` selects saturation mode:
//! every connection keeps [`OpenLoopConfig::pipeline`] requests
//! outstanding, which measures the server's ceiling.
//!
//! Each thread records latencies into its own [`Histogram`]; the
//! report merges them for p50/p99/p999.

use std::collections::VecDeque;
use std::io;
use std::net::TcpStream;
use std::os::fd::RawFd;
use std::time::{Duration, Instant};

use crate::hist::Histogram;
use crate::http::get_request;

/// Open-loop run parameters.
#[derive(Clone, Debug)]
pub struct OpenLoopConfig {
    /// Server port on localhost.
    pub port: u16,
    /// Resource to request, e.g. `/file_4096`.
    pub path: String,
    /// Concurrent keep-alive connections, split across threads.
    pub connections: usize,
    /// Event-loop threads.
    pub threads: usize,
    /// Target aggregate arrival rate in requests/second; `0.0` =
    /// saturation mode (keep every connection's pipeline full).
    pub rate: f64,
    /// Outstanding requests per connection in saturation mode (also
    /// the per-connection queue bound in rate mode).
    pub pipeline: usize,
    /// Admission window. In-flight requests get a short grace period
    /// after it to complete.
    pub duration: Duration,
}

impl Default for OpenLoopConfig {
    fn default() -> OpenLoopConfig {
        OpenLoopConfig {
            port: 0,
            path: "/".into(),
            connections: 64,
            threads: 2,
            rate: 0.0,
            pipeline: 4,
            duration: Duration::from_secs(1),
        }
    }
}

/// Results of one open-loop run.
#[derive(Clone, Debug)]
pub struct OpenLoopReport {
    /// Completed responses.
    pub requests: u64,
    /// Connection/protocol errors observed.
    pub errors: u64,
    /// Body bytes received.
    pub body_bytes: u64,
    /// Wall-clock seconds of the admission window.
    pub seconds: f64,
    /// Per-request latency (nanoseconds, scheduled-send → completion).
    pub latency: Histogram,
    /// Requests admitted by the schedule but not completed by the end
    /// of the grace period (queued or in flight at stop).
    pub unfinished: u64,
}

impl OpenLoopReport {
    /// Completed requests per second over the admission window.
    pub fn rps(&self) -> f64 {
        if self.seconds > 0.0 {
            self.requests as f64 / self.seconds
        } else {
            0.0
        }
    }
}

/// Runs open-loop load against `127.0.0.1:port`.
///
/// # Errors
///
/// Fails only if the server is unreachable at start; mid-run errors
/// are counted in the report.
pub fn run_open_loop(config: &OpenLoopConfig) -> io::Result<OpenLoopReport> {
    // Fail fast if the server is not there.
    TcpStream::connect(("127.0.0.1", config.port))?;

    let threads = config.threads.max(1);
    let start = Instant::now();
    let mut handles = Vec::new();
    for t in 0..threads {
        let config = config.clone();
        // Distribute connections evenly; earlier threads take the
        // remainder.
        let conns = config.connections.max(1) / threads
            + usize::from(t < config.connections.max(1) % threads);
        handles.push(std::thread::spawn(move || {
            if conns == 0 {
                return ThreadReport::default();
            }
            event_loop(&config, t, threads, conns)
        }));
    }

    let mut report = OpenLoopReport {
        requests: 0,
        errors: 0,
        body_bytes: 0,
        seconds: 0.0,
        latency: Histogram::new(),
        unfinished: 0,
    };
    for h in handles {
        let t = h.join().map_err(|_| io::Error::other("loadgen thread panicked"))?;
        report.requests += t.requests;
        report.errors += t.errors;
        report.body_bytes += t.body_bytes;
        report.unfinished += t.unfinished;
        report.latency.merge(&t.latency);
    }
    report.seconds = config.duration.as_secs_f64().max(
        // Rate mode can finish admitting early only if duration is 0;
        // measure at least the true elapsed time.
        f64::MIN_POSITIVE,
    );
    let _ = start;
    Ok(report)
}

#[derive(Default)]
struct ThreadReport {
    requests: u64,
    errors: u64,
    body_bytes: u64,
    unfinished: u64,
    latency: Histogram,
}

/// Response parser phase for one connection.
enum Phase {
    /// Accumulating header bytes until `\r\n\r\n`.
    Header,
    /// `n` body bytes still to consume.
    Body(usize),
}

struct Conn {
    fd: RawFd,
    /// Pending request bytes not yet accepted by the kernel.
    out: Vec<u8>,
    outpos: usize,
    /// Scheduled-send timestamps (ns since thread start) of requests
    /// written (or queued) but not yet answered, FIFO.
    inflight: VecDeque<u64>,
    /// Partial header bytes of the response being parsed.
    hdr: Vec<u8>,
    phase: Phase,
    /// Last write attempt hit EAGAIN; wait for the next EPOLLOUT edge.
    blocked: bool,
}

impl Conn {
    fn new(fd: RawFd) -> Conn {
        Conn {
            fd,
            out: Vec::with_capacity(512),
            outpos: 0,
            inflight: VecDeque::new(),
            hdr: Vec::with_capacity(256),
            phase: Phase::Header,
            blocked: true, // until the first EPOLLOUT (connect done)
        }
    }
}

fn now_ns(start: Instant) -> u64 {
    start.elapsed().as_nanos() as u64
}

fn event_loop(config: &OpenLoopConfig, tid: usize, threads: usize, conns: usize) -> ThreadReport {
    let mut report = ThreadReport::default();
    let request = get_request(&config.path, true);
    let pipeline = config.pipeline.max(1);
    let start = Instant::now();
    let deadline = config.duration.as_nanos() as u64;
    // Short grace period for in-flight requests after admission stops.
    let grace_end = deadline + (deadline / 4).clamp(50_000_000, 500_000_000);

    // Open-loop schedule: this thread admits every `threads/rate`
    // seconds, phase-shifted so threads interleave.
    let interval_ns = if config.rate > 0.0 {
        (threads as f64 * 1e9 / config.rate) as u64
    } else {
        0
    };
    let mut next_due = interval_ns / threads as u64 * tid as u64;

    let ep = unsafe { libc::epoll_create1(0) };
    if ep < 0 {
        report.errors += 1;
        return report;
    }

    let mut pool: Vec<Option<Conn>> = Vec::with_capacity(conns);
    for slot in 0..conns {
        pool.push(open_conn(ep, config.port, slot, &mut report));
    }
    let mut events = vec![libc::epoll_event { events: 0, u64: 0 }; 512];
    let mut scratch = vec![0u8; 64 * 1024];
    let mut cursor = 0usize; // round-robin admission cursor

    loop {
        let now = now_ns(start);
        if now >= grace_end {
            break;
        }
        let admitting = now < deadline;

        if admitting {
            if interval_ns == 0 {
                // Saturation: top every connection up to the pipeline
                // depth; scheduled time is the admission time.
                for (slot, entry) in pool.iter_mut().enumerate().take(conns) {
                    let Some(conn) = entry.as_mut() else {
                        *entry = open_conn(ep, config.port, slot, &mut report);
                        continue;
                    };
                    while conn.inflight.len() < pipeline {
                        conn.out.extend_from_slice(&request);
                        conn.inflight.push_back(now_ns(start));
                    }
                    if !conn.blocked && flush(conn).is_err() {
                        recycle(ep, entry, config.port, slot, &mut report);
                    }
                }
            } else {
                // Rate mode: admit every due request; a busy connection
                // queues it (late requests queue, they don't vanish).
                while next_due <= now {
                    // Pick the least-loaded of a few round-robin probes
                    // so one slow connection does not absorb the whole
                    // schedule.
                    let mut best = cursor % conns;
                    for probe in 0..4usize.min(conns) {
                        let i = (cursor + probe) % conns;
                        let load = |s: &Option<Conn>| {
                            s.as_ref().map_or(usize::MAX, |c| c.inflight.len())
                        };
                        if load(&pool[i]) < load(&pool[best]) {
                            best = i;
                        }
                    }
                    cursor = cursor.wrapping_add(1);
                    match pool[best].as_mut() {
                        Some(conn) if conn.inflight.len() < pipeline.max(64) => {
                            conn.out.extend_from_slice(&request);
                            // Latency clock starts at the *scheduled*
                            // time: queueing delay is measured, not
                            // coordinated away.
                            conn.inflight.push_back(next_due);
                            if !conn.blocked && flush(conn).is_err() {
                                recycle(ep, &mut pool[best], config.port, best, &mut report);
                            }
                        }
                        Some(_) => report.errors += 1, // queue bound hit
                        None => {
                            pool[best] = open_conn(ep, config.port, best, &mut report);
                            report.errors += 1;
                        }
                    }
                    next_due += interval_ns;
                }
            }
        } else if pool
            .iter()
            .all(|c| c.as_ref().is_none_or(|c| c.inflight.is_empty()))
        {
            break; // grace period and nothing left in flight
        }

        // Sleep until the next admission tick (rate mode) or briefly.
        let timeout_ms = if admitting && interval_ns > 0 {
            (next_due.saturating_sub(now_ns(start)) / 1_000_000).clamp(0, 100) as i32
        } else {
            5
        };
        let n = unsafe {
            libc::epoll_wait(ep, events.as_mut_ptr(), events.len() as i32, timeout_ms)
        };
        if n < 0 {
            let e = io::Error::last_os_error();
            if e.kind() == io::ErrorKind::Interrupted {
                continue;
            }
            report.errors += 1;
            break;
        }
        for ev in &events[..n as usize] {
            let slot = ev.u64 as usize;
            let Some(conn) = pool[slot].as_mut() else {
                continue;
            };
            let mut dead = ev.events & (libc::EPOLLHUP as u32 | libc::EPOLLERR as u32) != 0;
            if !dead && ev.events & libc::EPOLLOUT as u32 != 0 {
                conn.blocked = false;
                dead = flush(conn).is_err();
            }
            if !dead && ev.events & libc::EPOLLIN as u32 != 0 {
                dead = read_responses(conn, &mut scratch, start, &mut report).is_err();
            }
            if dead {
                recycle(ep, &mut pool[slot], config.port, slot, &mut report);
            }
        }
    }

    for conn in pool.into_iter().flatten() {
        report.unfinished += conn.inflight.len() as u64;
        unsafe { libc::close(conn.fd) };
    }
    unsafe { libc::close(ep) };
    report
}

/// Opens one nonblocking connection and registers it edge-triggered.
fn open_conn(ep: RawFd, port: u16, slot: usize, report: &mut ThreadReport) -> Option<Conn> {
    unsafe {
        let fd = libc::socket(
            libc::AF_INET,
            libc::SOCK_STREAM | libc::SOCK_NONBLOCK,
            0,
        );
        if fd < 0 {
            report.errors += 1;
            return None;
        }
        let one: libc::c_int = 1;
        libc::setsockopt(
            fd,
            libc::IPPROTO_TCP,
            libc::TCP_NODELAY,
            &one as *const _ as *const libc::c_void,
            std::mem::size_of::<libc::c_int>() as u32,
        );
        let addr = libc::sockaddr_in {
            sin_family: libc::AF_INET as u16,
            sin_port: port.to_be(),
            sin_addr: libc::in_addr {
                s_addr: u32::from_ne_bytes([127, 0, 0, 1]),
            },
            sin_zero: [0; 8],
        };
        let r = libc::connect(
            fd,
            &addr as *const _ as *const libc::sockaddr,
            std::mem::size_of::<libc::sockaddr_in>() as u32,
        );
        if r != 0 {
            let e = io::Error::last_os_error();
            // EINPROGRESS is the nonblocking handshake in flight;
            // completion arrives as EPOLLOUT.
            if e.raw_os_error() != Some(libc::EINPROGRESS) {
                libc::close(fd);
                report.errors += 1;
                return None;
            }
        }
        let mut ev = libc::epoll_event {
            events: (libc::EPOLLIN | libc::EPOLLOUT | libc::EPOLLET) as u32,
            u64: slot as u64,
        };
        if libc::epoll_ctl(ep, libc::EPOLL_CTL_ADD, fd, &mut ev) != 0 {
            libc::close(fd);
            report.errors += 1;
            return None;
        }
        Some(Conn::new(fd))
    }
}

/// Closes a failed connection (counting its in-flight requests as
/// unfinished) and opens a replacement in the same slot.
fn recycle(
    ep: RawFd,
    slot_ref: &mut Option<Conn>,
    port: u16,
    slot: usize,
    report: &mut ThreadReport,
) {
    if let Some(conn) = slot_ref.take() {
        report.errors += 1;
        report.unfinished += conn.inflight.len() as u64;
        unsafe {
            libc::epoll_ctl(ep, libc::EPOLL_CTL_DEL, conn.fd, std::ptr::null_mut());
            libc::close(conn.fd);
        }
    }
    *slot_ref = open_conn(ep, port, slot, report);
}

/// Writes as much pending output as the socket accepts. `Err` on fatal
/// error.
fn flush(conn: &mut Conn) -> Result<(), ()> {
    while conn.outpos < conn.out.len() {
        let n = unsafe {
            libc::write(
                conn.fd,
                conn.out[conn.outpos..].as_ptr() as *const libc::c_void,
                conn.out.len() - conn.outpos,
            )
        };
        if n < 0 {
            let e = io::Error::last_os_error();
            if matches!(
                e.kind(),
                io::ErrorKind::WouldBlock | io::ErrorKind::Interrupted
            ) || e.raw_os_error() == Some(libc::ENOTCONN)
            {
                conn.blocked = true;
                return Ok(());
            }
            return Err(());
        }
        conn.outpos += n as usize;
    }
    conn.out.clear();
    conn.outpos = 0;
    Ok(())
}

/// Reads until EAGAIN (edge-triggered), completing responses. `Err` on
/// EOF or fatal error.
fn read_responses(
    conn: &mut Conn,
    scratch: &mut [u8],
    start: Instant,
    report: &mut ThreadReport,
) -> Result<(), ()> {
    loop {
        let n = unsafe {
            libc::read(
                conn.fd,
                scratch.as_mut_ptr() as *mut libc::c_void,
                scratch.len(),
            )
        };
        if n == 0 {
            return Err(()); // server closed
        }
        if n < 0 {
            let e = io::Error::last_os_error();
            return if matches!(
                e.kind(),
                io::ErrorKind::WouldBlock | io::ErrorKind::Interrupted
            ) {
                Ok(())
            } else {
                Err(())
            };
        }
        let mut buf = &scratch[..n as usize];
        while !buf.is_empty() {
            match conn.phase {
                Phase::Header => {
                    // Accumulate until the header terminator; parse
                    // Content-Length from the completed block.
                    let already = conn.hdr.len();
                    conn.hdr.extend_from_slice(buf);
                    match find_header_end(&conn.hdr) {
                        Some(end) => {
                            let consumed = end + 4 - already;
                            buf = &buf[consumed..];
                            let len = content_length(&conn.hdr[..end + 4]).ok_or(())?;
                            conn.hdr.clear();
                            conn.phase = Phase::Body(len);
                            if len == 0 {
                                complete_response(conn, start, 0, report)?;
                            }
                        }
                        None => {
                            if conn.hdr.len() > 64 * 1024 {
                                return Err(()); // runaway header
                            }
                            buf = &[];
                        }
                    }
                }
                Phase::Body(remaining) => {
                    let take = remaining.min(buf.len());
                    buf = &buf[take..];
                    let left = remaining - take;
                    report.body_bytes += take as u64;
                    if left == 0 {
                        complete_response(conn, start, 0, report)?;
                    } else {
                        conn.phase = Phase::Body(left);
                    }
                }
            }
        }
    }
}

/// Marks the oldest in-flight request answered and records latency.
fn complete_response(
    conn: &mut Conn,
    start: Instant,
    _body: usize,
    report: &mut ThreadReport,
) -> Result<(), ()> {
    conn.phase = Phase::Header;
    let scheduled = conn.inflight.pop_front().ok_or(())?; // response w/o request
    report.requests += 1;
    report
        .latency
        .record(now_ns(start).saturating_sub(scheduled));
    Ok(())
}

fn find_header_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

fn content_length(header: &[u8]) -> Option<usize> {
    let text = std::str::from_utf8(header).ok()?;
    text.lines().find_map(|l| {
        l.to_ascii_lowercase()
            .strip_prefix("content-length:")
            .map(|v| v.trim().parse().ok())?
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::docroot::{path_for_size, Docroot};
    use crate::server::{Flavor, Server, ServerConfig};

    fn serve() -> (u16, std::sync::Arc<crate::server::StopFlag>, Docroot) {
        let root = Docroot::create(&[1024]).unwrap();
        let (port, stop, _handle) = Server::spawn_in_thread(ServerConfig {
            flavor: Flavor::LighttpdLike,
            workers: 1,
            docroot: root.path().to_path_buf(),
        })
        .unwrap();
        (port, stop, root)
    }

    #[test]
    fn saturation_mode_reports_throughput_and_latency() {
        let (port, stop, _root) = serve();
        let report = run_open_loop(&OpenLoopConfig {
            port,
            path: path_for_size(1024),
            connections: 8,
            threads: 2,
            rate: 0.0,
            pipeline: 2,
            duration: Duration::from_millis(300),
        })
        .unwrap();
        stop.stop();
        assert!(report.requests > 50, "{report:?}");
        assert_eq!(report.errors, 0, "{report:?}");
        assert_eq!(
            report.latency.count(),
            report.requests,
            "one latency sample per completed request"
        );
        assert_eq!(report.body_bytes, report.requests * 1024);
        let (p50, p99, p999) = report.latency.summary();
        assert!(p50 > 0 && p50 <= p99 && p99 <= p999, "{report:?}");
    }

    #[test]
    fn rate_mode_admits_close_to_schedule() {
        let (port, stop, _root) = serve();
        let report = run_open_loop(&OpenLoopConfig {
            port,
            path: path_for_size(1024),
            connections: 4,
            threads: 2,
            rate: 2000.0,
            pipeline: 4,
            duration: Duration::from_millis(500),
        })
        .unwrap();
        stop.stop();
        // ~1000 admitted; allow generous tolerance for CI noise but
        // assert the schedule neither stalled nor ran away.
        let admitted = report.requests + report.unfinished + report.errors;
        assert!(
            (500..=1600).contains(&admitted),
            "admitted {admitted}: {report:?}"
        );
        assert_eq!(report.errors, 0, "{report:?}");
    }

    #[test]
    fn dead_port_fails_fast() {
        assert!(run_open_loop(&OpenLoopConfig {
            port: 1,
            path: "/x".into(),
            connections: 1,
            threads: 1,
            rate: 0.0,
            pipeline: 1,
            duration: Duration::from_millis(10),
        })
        .is_err());
    }
}

//! The epoll event-loop server.
//!
//! Scaled for the open-loop macrobenchmark: connections are registered
//! **edge-triggered** with both `EPOLLIN | EPOLLOUT` armed once at
//! accept time (no per-request `epoll_ctl(MOD)` to toggle write
//! interest — one syscall per request saved), event batches are 1024
//! entries, and shutdown is signaled through an [`eventfd`] registered
//! in the epoll set, so `epoll_wait` blocks indefinitely instead of
//! waking every 50 ms to poll a stop flag.
//!
//! [`eventfd`]: StopFlag

use std::collections::HashMap;
use std::io;
use std::net::TcpListener;
use std::os::fd::{AsRawFd, RawFd};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicI32, Ordering};
use std::sync::Arc;

use crate::http::{response_404, response_header, RequestBuffer};

/// Cooperative, wakeup-capable stop signal for a worker event loop.
///
/// The flag half makes the state observable from anywhere; the eventfd
/// half (registered by the worker into its epoll set) turns
/// [`StopFlag::stop`] into an immediate `epoll_wait` wakeup, so the
/// loop needs no timeout tick. `stop()` is async-signal-safe (an
/// atomic store plus a `write(2)`), so a `SIGTERM` handler may call it
/// directly — the benchmark harness does exactly that.
///
/// One worker loop registers per flag. With forked multi-worker
/// servers each child has its own copy-on-write flag and is torn down
/// by signal, as before; `stop()` wakes the worker in the calling
/// process.
#[derive(Debug)]
pub struct StopFlag {
    flag: AtomicBool,
    efd: AtomicI32,
}

impl StopFlag {
    /// A new, un-stopped flag (usable in statics).
    pub const fn new() -> StopFlag {
        StopFlag {
            flag: AtomicBool::new(false),
            efd: AtomicI32::new(-1),
        }
    }

    /// Requests stop and wakes the registered worker. Safe to call
    /// from a signal handler and more than once.
    pub fn stop(&self) {
        self.flag.store(true, Ordering::SeqCst);
        let efd = self.efd.load(Ordering::SeqCst);
        if efd >= 0 {
            let one: u64 = 1;
            // SAFETY: write(2) on an eventfd; 8-byte counter add.
            unsafe {
                libc::write(efd, &one as *const u64 as *const libc::c_void, 8);
            }
        }
    }

    /// Whether stop has been requested.
    pub fn is_stopped(&self) -> bool {
        self.flag.load(Ordering::SeqCst)
    }

    fn register(&self, efd: RawFd) {
        self.efd.store(efd, Ordering::SeqCst);
    }

    /// Clears the registration *before* the worker closes the fd, so a
    /// racing `stop()` cannot write into a recycled descriptor.
    fn unregister(&self) {
        self.efd.store(-1, Ordering::SeqCst);
    }
}

impl Default for StopFlag {
    fn default() -> StopFlag {
        StopFlag::new()
    }
}

/// Which real-world server's syscall mix to mimic (see crate docs).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Flavor {
    /// Uncached per-request file I/O (openat/fstat/read×N/close).
    NginxLike,
    /// In-memory content, minimal per-request syscalls.
    LighttpdLike,
}

impl Flavor {
    /// Short name used in benchmark tables.
    pub fn name(self) -> &'static str {
        match self {
            Flavor::NginxLike => "nginx-like",
            Flavor::LighttpdLike => "lighttpd-like",
        }
    }
}

/// Server configuration.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Syscall-mix flavour.
    pub flavor: Flavor,
    /// Worker processes (1 = single process, no fork).
    pub workers: usize,
    /// Directory containing the files to serve.
    pub docroot: PathBuf,
}

/// A bound server, ready to run.
#[derive(Debug)]
pub struct Server {
    config: ServerConfig,
    listener: TcpListener,
    port: u16,
}

/// Read chunk size for the nginx-like per-request file reads (nginx's
/// default output buffering is 32 KiB).
const READ_CHUNK: usize = 32 * 1024;

impl Server {
    /// Binds a `SO_REUSEPORT` listener on an ephemeral localhost port.
    ///
    /// # Errors
    ///
    /// Propagates socket errors.
    pub fn bind(config: ServerConfig) -> io::Result<Server> {
        let listener = bind_reuseport(0)?;
        let port = listener.local_addr()?.port();
        Ok(Server {
            config,
            listener,
            port,
        })
    }

    /// The bound port.
    pub fn port(&self) -> u16 {
        self.port
    }

    /// Runs the server until [`StopFlag::stop`] is called.
    ///
    /// With `workers > 1`, forks `workers - 1` additional processes,
    /// each binding its own `SO_REUSEPORT` listener (the nginx
    /// master/worker model — the kernel load-balances accepts across
    /// the listeners); the calling process becomes worker 0. Forked
    /// workers hold a copy-on-write view of `stop` and are torn down
    /// by signal with the parent, as before.
    ///
    /// # Errors
    ///
    /// Propagates fork/socket/epoll errors from this process's setup.
    pub fn run(self, stop: &StopFlag) -> io::Result<()> {
        let mut children = Vec::new();
        for _ in 1..self.config.workers {
            // SAFETY: plain fork; children diverge immediately into
            // their own event loop and never return.
            match unsafe { libc::fork() } {
                -1 => return Err(io::Error::last_os_error()),
                0 => {
                    let listener = bind_reuseport(self.port)?;
                    let code = match worker_loop(&self.config, listener, stop) {
                        Ok(()) => 0,
                        Err(_) => 1,
                    };
                    std::process::exit(code);
                }
                pid => children.push(pid),
            }
        }
        let r = worker_loop(&self.config, self.listener, stop);
        for pid in children {
            unsafe {
                libc::kill(pid, libc::SIGKILL);
                libc::waitpid(pid, std::ptr::null_mut(), 0);
            }
        }
        r
    }

    /// Convenience for tests: runs a 1-worker server on a background
    /// thread; returns `(port, stop flag, join handle)`.
    pub fn spawn_in_thread(
        config: ServerConfig,
    ) -> io::Result<(u16, Arc<StopFlag>, std::thread::JoinHandle<io::Result<()>>)> {
        let server = Server::bind(ServerConfig {
            workers: 1,
            ..config
        })?;
        let port = server.port();
        let stop = Arc::new(StopFlag::new());
        let stop2 = Arc::clone(&stop);
        let handle = std::thread::spawn(move || server.run(&stop2));
        Ok((port, stop, handle))
    }
}

fn bind_reuseport(port: u16) -> io::Result<TcpListener> {
    unsafe {
        let fd = libc::socket(libc::AF_INET, libc::SOCK_STREAM, 0);
        if fd < 0 {
            return Err(io::Error::last_os_error());
        }
        let one: libc::c_int = 1;
        libc::setsockopt(
            fd,
            libc::SOL_SOCKET,
            libc::SO_REUSEADDR,
            &one as *const _ as *const libc::c_void,
            std::mem::size_of::<libc::c_int>() as u32,
        );
        libc::setsockopt(
            fd,
            libc::SOL_SOCKET,
            libc::SO_REUSEPORT,
            &one as *const _ as *const libc::c_void,
            std::mem::size_of::<libc::c_int>() as u32,
        );
        let addr = libc::sockaddr_in {
            sin_family: libc::AF_INET as u16,
            sin_port: port.to_be(),
            sin_addr: libc::in_addr {
                s_addr: u32::from_ne_bytes([127, 0, 0, 1]),
            },
            sin_zero: [0; 8],
        };
        if libc::bind(
            fd,
            &addr as *const _ as *const libc::sockaddr,
            std::mem::size_of::<libc::sockaddr_in>() as u32,
        ) != 0
        {
            let e = io::Error::last_os_error();
            libc::close(fd);
            return Err(e);
        }
        if libc::listen(fd, 1024) != 0 {
            let e = io::Error::last_os_error();
            libc::close(fd);
            return Err(e);
        }
        use std::os::fd::FromRawFd;
        Ok(TcpListener::from_raw_fd(fd))
    }
}

struct Conn {
    fd: RawFd,
    inbuf: RequestBuffer,
    outbuf: Vec<u8>,
    outpos: usize,
    close_after_flush: bool,
}

/// `epoll_event.u64` token for the stop eventfd (fds are never this
/// large).
const STOP_TOKEN: u64 = u64::MAX;

fn worker_loop(
    config: &ServerConfig,
    listener: TcpListener,
    stop: &StopFlag,
) -> io::Result<()> {
    listener.set_nonblocking(true)?;
    let lfd = listener.as_raw_fd();

    // lighttpd-like: preload content once; nginx-like: uncached I/O.
    let cache: HashMap<String, Vec<u8>> = if config.flavor == Flavor::LighttpdLike {
        let mut m = HashMap::new();
        for entry in std::fs::read_dir(&config.docroot)? {
            let entry = entry?;
            if entry.file_type()?.is_file() {
                let name = format!("/{}", entry.file_name().to_string_lossy());
                m.insert(name, std::fs::read(entry.path())?);
            }
        }
        m
    } else {
        HashMap::new()
    };

    unsafe {
        let ep = libc::epoll_create1(0);
        if ep < 0 {
            return Err(io::Error::last_os_error());
        }
        // Stop eventfd: stop() writes, epoll_wait wakes; no timeout
        // tick needed.
        let efd = libc::eventfd(0, libc::EFD_NONBLOCK | libc::EFD_CLOEXEC);
        if efd < 0 {
            let e = io::Error::last_os_error();
            libc::close(ep);
            return Err(e);
        }
        let mut ev = libc::epoll_event {
            events: libc::EPOLLIN as u32,
            u64: STOP_TOKEN,
        };
        if libc::epoll_ctl(ep, libc::EPOLL_CTL_ADD, efd, &mut ev) != 0 {
            let e = io::Error::last_os_error();
            libc::close(efd);
            libc::close(ep);
            return Err(e);
        }
        stop.register(efd);
        // Edge-triggered accept: accept_all drains to EAGAIN on every
        // edge.
        epoll_add(ep, lfd, (libc::EPOLLIN | libc::EPOLLET) as u32)?;

        let mut conns: HashMap<RawFd, Conn> = HashMap::new();
        let mut events = vec![libc::epoll_event { events: 0, u64: 0 }; 1024];
        let mut scratch = vec![0u8; READ_CHUNK];

        'event_loop: while !stop.is_stopped() {
            let n = libc::epoll_wait(ep, events.as_mut_ptr(), events.len() as i32, -1);
            if n < 0 {
                let e = io::Error::last_os_error();
                if e.kind() == io::ErrorKind::Interrupted {
                    continue;
                }
                stop.unregister();
                libc::close(efd);
                libc::close(ep);
                return Err(e);
            }
            for ev in &events[..n as usize] {
                if ev.u64 == STOP_TOKEN {
                    break 'event_loop;
                }
                let fd = ev.u64 as RawFd;
                if fd == lfd {
                    accept_all(ep, lfd, &mut conns);
                    continue;
                }
                let Some(conn) = conns.get_mut(&fd) else {
                    continue;
                };
                // Edge-triggered: drain reads to EAGAIN, then push as
                // much queued output as the socket takes. Write
                // interest is always armed, so a short write simply
                // resumes on the next EPOLLOUT edge — no epoll_mod.
                let mut dead =
                    ev.events & (libc::EPOLLHUP as u32 | libc::EPOLLERR as u32) != 0;
                if !dead && ev.events & libc::EPOLLIN as u32 != 0 {
                    dead = handle_readable(config, &cache, conn, &mut scratch);
                }
                if !dead {
                    dead = flush(conn);
                }
                if !dead && conn.close_after_flush && conn.outpos >= conn.outbuf.len() {
                    dead = true;
                }
                if dead {
                    libc::epoll_ctl(ep, libc::EPOLL_CTL_DEL, fd, std::ptr::null_mut());
                    libc::close(fd);
                    conns.remove(&fd);
                }
            }
        }
        for (&fd, _) in conns.iter() {
            libc::close(fd);
        }
        stop.unregister();
        libc::close(efd);
        libc::close(ep);
    }
    Ok(())
}

unsafe fn accept_all(ep: RawFd, lfd: RawFd, conns: &mut HashMap<RawFd, Conn>) {
    loop {
        let fd = libc::accept4(
            lfd,
            std::ptr::null_mut(),
            std::ptr::null_mut(),
            libc::SOCK_NONBLOCK,
        );
        if fd < 0 {
            return; // EAGAIN or transient error: try again on next event
        }
        let one: libc::c_int = 1;
        libc::setsockopt(
            fd,
            libc::IPPROTO_TCP,
            libc::TCP_NODELAY,
            &one as *const _ as *const libc::c_void,
            std::mem::size_of::<libc::c_int>() as u32,
        );
        // Register once, edge-triggered, with both directions armed —
        // write interest never needs toggling again.
        if epoll_add(
            ep,
            fd,
            (libc::EPOLLIN | libc::EPOLLOUT | libc::EPOLLET) as u32,
        )
        .is_err()
        {
            libc::close(fd);
            continue;
        }
        conns.insert(
            fd,
            Conn {
                fd,
                inbuf: RequestBuffer::new(),
                outbuf: Vec::new(),
                outpos: 0,
                close_after_flush: false,
            },
        );
    }
}

/// Reads all available bytes and queues responses. Returns `true` when
/// the connection is finished (peer closed or fatal error).
fn handle_readable(
    config: &ServerConfig,
    cache: &HashMap<String, Vec<u8>>,
    conn: &mut Conn,
    scratch: &mut [u8],
) -> bool {
    loop {
        let n = unsafe {
            libc::read(
                conn.fd,
                scratch.as_mut_ptr() as *mut libc::c_void,
                scratch.len(),
            )
        };
        match n {
            0 => return true, // orderly shutdown
            n if n < 0 => {
                let e = io::Error::last_os_error();
                return !matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock | io::ErrorKind::Interrupted
                );
            }
            n => conn.inbuf.push(&scratch[..n as usize]),
        }
        while let Some(req) = conn.inbuf.next_request() {
            serve_one(config, cache, conn, &req.path, req.keep_alive);
            if !req.keep_alive {
                conn.close_after_flush = true;
            }
        }
        // Overload guard: a client streaming garbage gets cut off.
        if conn.inbuf.len() > 64 * 1024 {
            return true;
        }
    }
}

fn serve_one(
    config: &ServerConfig,
    cache: &HashMap<String, Vec<u8>>,
    conn: &mut Conn,
    path: &str,
    keep_alive: bool,
) {
    match config.flavor {
        Flavor::LighttpdLike => match cache.get(path) {
            Some(body) => {
                conn.outbuf.extend_from_slice(&response_header(body.len(), keep_alive));
                conn.outbuf.extend_from_slice(body);
            }
            None => conn.outbuf.extend_from_slice(&response_404(keep_alive)),
        },
        Flavor::NginxLike => {
            // Per-request file I/O, like an uncached nginx worker.
            let fspath = resolve(&config.docroot, path);
            let served = fspath.and_then(|p| {
                let mut f = std::fs::File::open(p).ok()?;
                let len = f.metadata().ok()?.len() as usize;
                conn.outbuf.extend_from_slice(&response_header(len, keep_alive));
                let start = conn.outbuf.len();
                conn.outbuf.resize(start + len, 0);
                use std::io::Read;
                let mut off = 0;
                while off < len {
                    let chunk = (len - off).min(READ_CHUNK);
                    match f.read(&mut conn.outbuf[start + off..start + off + chunk]) {
                        Ok(0) => break,
                        Ok(n) => off += n,
                        Err(_) => return None,
                    }
                }
                (off == len).then_some(())
            });
            if served.is_none() {
                conn.outbuf.extend_from_slice(&response_404(keep_alive));
            }
        }
    }
}

fn resolve(docroot: &std::path::Path, request_path: &str) -> Option<std::path::PathBuf> {
    let name = request_path.strip_prefix('/')?;
    if name.is_empty() || name.contains('/') || name.contains("..") {
        return None;
    }
    let p = docroot.join(name);
    p.is_file().then_some(p)
}

/// Writes as much pending output as the socket accepts. Returns `true`
/// on fatal error.
fn flush(conn: &mut Conn) -> bool {
    while conn.outpos < conn.outbuf.len() {
        let n = unsafe {
            libc::write(
                conn.fd,
                conn.outbuf[conn.outpos..].as_ptr() as *const libc::c_void,
                conn.outbuf.len() - conn.outpos,
            )
        };
        if n < 0 {
            let e = io::Error::last_os_error();
            return !matches!(
                e.kind(),
                io::ErrorKind::WouldBlock | io::ErrorKind::Interrupted
            );
        }
        conn.outpos += n as usize;
    }
    conn.outbuf.clear();
    conn.outpos = 0;
    false
}

unsafe fn epoll_add(ep: RawFd, fd: RawFd, events: u32) -> io::Result<()> {
    let mut ev = libc::epoll_event {
        events,
        u64: fd as u64,
    };
    if libc::epoll_ctl(ep, libc::EPOLL_CTL_ADD, fd, &mut ev) != 0 {
        return Err(io::Error::last_os_error());
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::docroot::{path_for_size, pattern, Docroot};
    use std::io::{Read, Write};
    use std::net::TcpStream;

    fn request_once(port: u16, path: &str) -> Vec<u8> {
        let mut s = TcpStream::connect(("127.0.0.1", port)).unwrap();
        s.write_all(&crate::http::get_request(path, false)).unwrap();
        let mut buf = Vec::new();
        s.read_to_end(&mut buf).unwrap();
        buf
    }

    fn body_of(response: &[u8]) -> &[u8] {
        let pos = response
            .windows(4)
            .position(|w| w == b"\r\n\r\n")
            .expect("header end");
        &response[pos + 4..]
    }

    #[test]
    fn serves_correct_content_both_flavors() {
        let root = Docroot::create(&[64, 4096]).unwrap();
        for flavor in [Flavor::NginxLike, Flavor::LighttpdLike] {
            let (port, stop, handle) = Server::spawn_in_thread(ServerConfig {
                flavor,
                workers: 1,
                docroot: root.path().to_path_buf(),
            })
            .unwrap();
            let resp = request_once(port, &path_for_size(4096));
            assert!(resp.starts_with(b"HTTP/1.1 200"), "{flavor:?}");
            assert_eq!(body_of(&resp), pattern(4096), "{flavor:?}");

            let resp = request_once(port, "/missing");
            assert!(resp.starts_with(b"HTTP/1.1 404"), "{flavor:?}");

            stop.stop();
            handle.join().unwrap().unwrap();
        }
    }

    #[test]
    fn keepalive_serves_many_requests_on_one_connection() {
        let root = Docroot::create(&[64]).unwrap();
        let (port, stop, handle) = Server::spawn_in_thread(ServerConfig {
            flavor: Flavor::LighttpdLike,
            workers: 1,
            docroot: root.path().to_path_buf(),
        })
        .unwrap();

        let mut s = TcpStream::connect(("127.0.0.1", port)).unwrap();
        for _ in 0..50 {
            s.write_all(&crate::http::get_request("/file_64", true))
                .unwrap();
            let mut hdr = Vec::new();
            let mut byte = [0u8; 1];
            while !hdr.ends_with(b"\r\n\r\n") {
                s.read_exact(&mut byte).unwrap();
                hdr.push(byte[0]);
            }
            let mut body = vec![0u8; 64];
            s.read_exact(&mut body).unwrap();
            assert_eq!(body, pattern(64));
        }
        drop(s);
        stop.stop();
        handle.join().unwrap().unwrap();
    }

    #[test]
    fn stop_wakes_idle_worker_immediately() {
        let root = Docroot::create(&[64]).unwrap();
        let (_port, stop, handle) = Server::spawn_in_thread(ServerConfig {
            flavor: Flavor::LighttpdLike,
            workers: 1,
            docroot: root.path().to_path_buf(),
        })
        .unwrap();
        // No traffic at all: the worker is parked in epoll_wait with
        // an infinite timeout. stop() must wake it via the eventfd.
        let t0 = std::time::Instant::now();
        stop.stop();
        handle.join().unwrap().unwrap();
        assert!(
            t0.elapsed() < std::time::Duration::from_secs(2),
            "stop took {:?}",
            t0.elapsed()
        );
        assert!(stop.is_stopped());
    }

    #[test]
    fn flavor_names() {
        assert_eq!(Flavor::NginxLike.name(), "nginx-like");
        assert_eq!(Flavor::LighttpdLike.name(), "lighttpd-like");
    }
}

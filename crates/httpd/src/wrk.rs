//! wrk-like keep-alive load generator (paper §V-B(b): "we used the wrk
//! client […] to continuously request the same static resource […] via
//! a keepalive connection").
//!
//! **Legacy comparison client.** This is the original closed-loop,
//! thread-per-connection generator: each connection is a blocking
//! thread that ping-pongs one request at a time, so offered load drops
//! whenever the server stalls (coordinated omission) and concurrency
//! is capped by thread count. The macrobenchmark now drives load with
//! the epoll-based open-loop generator in [`crate::loadgen`]; this
//! module is kept so `BENCH_fig5.json` can report the generator
//! speedup (`fig5` runs both at the highest connection count).

use std::io::{self, Read, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crate::http::get_request;

/// Load-run parameters.
#[derive(Clone, Debug)]
pub struct LoadConfig {
    /// Server port on localhost.
    pub port: u16,
    /// Resource to hammer, e.g. `/file_4096`.
    pub path: String,
    /// Concurrent connections (each on its own thread).
    pub connections: usize,
    /// Wall-clock duration of the run.
    pub duration: Duration,
}

/// Results of one load run.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct LoadReport {
    /// Completed responses.
    pub requests: u64,
    /// Body bytes received.
    pub body_bytes: u64,
    /// Connection/protocol errors observed.
    pub errors: u64,
    /// Measured wall-clock seconds.
    pub seconds: f64,
}

impl LoadReport {
    /// Requests per second.
    pub fn rps(&self) -> f64 {
        if self.seconds > 0.0 {
            self.requests as f64 / self.seconds
        } else {
            0.0
        }
    }
}

/// Runs keep-alive load against `127.0.0.1:port` and reports
/// throughput.
///
/// # Errors
///
/// Fails only if no connection can be established at all; mid-run
/// errors are counted in the report.
pub fn run_load(config: &LoadConfig) -> io::Result<LoadReport> {
    // Fail fast if the server is not there.
    TcpStream::connect(("127.0.0.1", config.port))?;

    let stop = Arc::new(AtomicBool::new(false));
    let requests = Arc::new(AtomicU64::new(0));
    let body_bytes = Arc::new(AtomicU64::new(0));
    let errors = Arc::new(AtomicU64::new(0));

    let start = Instant::now();
    let mut threads = Vec::new();
    for _ in 0..config.connections.max(1) {
        let stop = Arc::clone(&stop);
        let requests = Arc::clone(&requests);
        let body_bytes = Arc::clone(&body_bytes);
        let errors = Arc::clone(&errors);
        let port = config.port;
        let path = config.path.clone();
        threads.push(std::thread::spawn(move || {
            connection_loop(port, &path, &stop, &requests, &body_bytes, &errors)
        }));
    }

    std::thread::sleep(config.duration);
    stop.store(true, Ordering::SeqCst);
    for t in threads {
        let _ = t.join();
    }
    let seconds = start.elapsed().as_secs_f64();

    Ok(LoadReport {
        requests: requests.load(Ordering::SeqCst),
        body_bytes: body_bytes.load(Ordering::SeqCst),
        errors: errors.load(Ordering::SeqCst),
        seconds,
    })
}

fn connection_loop(
    port: u16,
    path: &str,
    stop: &AtomicBool,
    requests: &AtomicU64,
    body_bytes: &AtomicU64,
    errors: &AtomicU64,
) {
    let request = get_request(path, true);
    let mut readbuf = vec![0u8; 64 * 1024];
    'reconnect: while !stop.load(Ordering::Relaxed) {
        let mut conn = match TcpStream::connect(("127.0.0.1", port)) {
            Ok(c) => c,
            Err(_) => {
                errors.fetch_add(1, Ordering::Relaxed);
                std::thread::sleep(Duration::from_millis(5));
                continue;
            }
        };
        conn.set_nodelay(true).ok();
        conn.set_read_timeout(Some(Duration::from_millis(200))).ok();

        while !stop.load(Ordering::Relaxed) {
            if conn.write_all(&request).is_err() {
                if !stop.load(Ordering::Relaxed) {
                    errors.fetch_add(1, Ordering::Relaxed);
                }
                continue 'reconnect;
            }
            match read_response(&mut conn, &mut readbuf, stop) {
                Ok(body) => {
                    requests.fetch_add(1, Ordering::Relaxed);
                    body_bytes.fetch_add(body as u64, Ordering::Relaxed);
                }
                Err(_) => {
                    // A response cut short by the stop flag is not a
                    // server error.
                    if !stop.load(Ordering::Relaxed) {
                        errors.fetch_add(1, Ordering::Relaxed);
                    }
                    continue 'reconnect;
                }
            }
        }
        return;
    }
}

/// Reads one full response (header + Content-Length body); returns the
/// body length.
fn read_response(
    conn: &mut TcpStream,
    buf: &mut [u8],
    stop: &AtomicBool,
) -> io::Result<usize> {
    let mut have = 0usize;
    let mut header_end = None;
    // Read until the full header is in the buffer.
    while header_end.is_none() {
        if stop.load(Ordering::Relaxed) {
            return Err(io::Error::new(io::ErrorKind::Interrupted, "stopped"));
        }
        let n = match conn.read(&mut buf[have..]) {
            Ok(0) => return Err(io::Error::new(io::ErrorKind::UnexpectedEof, "eof")),
            Ok(n) => n,
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => continue,
            Err(e) if e.kind() == io::ErrorKind::TimedOut => continue,
            Err(e) => return Err(e),
        };
        have += n;
        header_end = buf[..have].windows(4).position(|w| w == b"\r\n\r\n");
        if header_end.is_none() && have == buf.len() {
            return Err(io::Error::new(io::ErrorKind::InvalidData, "header too big"));
        }
    }
    let he = header_end.unwrap() + 4;
    let header = std::str::from_utf8(&buf[..he])
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "bad header"))?;
    let len: usize = header
        .lines()
        .find_map(|l| {
            l.to_ascii_lowercase()
                .strip_prefix("content-length:")
                .map(|v| v.trim().parse().unwrap_or(0))
        })
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "no content-length"))?;

    // Drain the body (possibly partially in buf already).
    let mut body_have = have - he;
    while body_have < len {
        if stop.load(Ordering::Relaxed) {
            return Err(io::Error::new(io::ErrorKind::Interrupted, "stopped"));
        }
        let want = (len - body_have).min(buf.len());
        match conn.read(&mut buf[..want]) {
            Ok(0) => return Err(io::Error::new(io::ErrorKind::UnexpectedEof, "eof in body")),
            Ok(n) => body_have += n,
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => continue,
            Err(e) if e.kind() == io::ErrorKind::TimedOut => continue,
            Err(e) => return Err(e),
        }
    }
    Ok(len)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::docroot::{path_for_size, Docroot};
    use crate::server::{Flavor, Server, ServerConfig};

    #[test]
    fn load_run_reports_throughput() {
        let root = Docroot::create(&[1024]).unwrap();
        let (port, stop, handle) = Server::spawn_in_thread(ServerConfig {
            flavor: Flavor::LighttpdLike,
            workers: 1,
            docroot: root.path().to_path_buf(),
        })
        .unwrap();

        let report = run_load(&LoadConfig {
            port,
            path: path_for_size(1024),
            connections: 2,
            duration: Duration::from_millis(300),
        })
        .unwrap();

        stop.stop();
        handle.join().unwrap().unwrap();

        assert!(report.requests > 10, "too slow: {report:?}");
        assert_eq!(report.body_bytes, report.requests * 1024);
        assert!(report.rps() > 0.0);
        assert_eq!(report.errors, 0);
    }

    #[test]
    fn connecting_to_dead_port_errors() {
        let r = run_load(&LoadConfig {
            port: 1,
            path: "/x".into(),
            connections: 1,
            duration: Duration::from_millis(10),
        });
        assert!(r.is_err());
    }

    #[test]
    fn report_rps_math() {
        let r = LoadReport {
            requests: 100,
            body_bytes: 0,
            errors: 0,
            seconds: 2.0,
        };
        assert_eq!(r.rps(), 50.0);
        assert_eq!(LoadReport::default().rps(), 0.0);
    }
}

#[cfg(test)]
mod large_tests {
    use super::*;
    use crate::docroot::{path_for_size, Docroot};
    use crate::server::{Flavor, Server, ServerConfig};

    #[test]
    fn large_file_load() {
        let root = Docroot::create(&[65536]).unwrap();
        let (port, stop, handle) = Server::spawn_in_thread(ServerConfig {
            flavor: Flavor::NginxLike,
            workers: 1,
            docroot: root.path().to_path_buf(),
        })
        .unwrap();
        let report = run_load(&LoadConfig {
            port,
            path: path_for_size(65536),
            connections: 2,
            duration: std::time::Duration::from_millis(500),
        })
        .unwrap();
        stop.stop();
        handle.join().unwrap().unwrap();
        assert_eq!(report.errors, 0, "{report:?}");
        assert!(report.requests > 5, "{report:?}");
    }
}

//! Property tests for the latency histogram: merging per-thread
//! histograms (exactly what the open-loop generator does at join time)
//! must conserve counts and extremes, and the merged percentiles must
//! stay bracketed by the per-shard percentiles and the exact sample
//! quantiles, up to the documented ~3% log-bucket resolution.

use proptest::prelude::*;

use lp_httpd::Histogram;

fn filled(values: &[u64]) -> Histogram {
    let mut h = Histogram::new();
    for &v in values {
        h.record(v);
    }
    h
}

/// Exact sample quantile with the histogram's rank convention
/// (`rank = ceil(q * n)`, clamped to at least 1).
fn exact_quantile(sorted: &[u64], q: f64) -> u64 {
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

/// Two log-linear buckets of slack (bucket width is ~1/32 of the
/// value, so this is a ~6% + 2 envelope): comparisons between a
/// bucketed percentile and any exact value must allow it.
fn slack(v: u64) -> u64 {
    v / 16 + 2
}

proptest! {
    /// Merging shard histograms conserves the total count, the min,
    /// and the max — the generator's per-thread join must lose nothing.
    #[test]
    fn merge_conserves_count_and_extremes(
        shards in proptest::collection::vec(
            proptest::collection::vec(0u64..1_000_000_000_000, 0..200),
            1..6,
        ),
    ) {
        let mut merged = Histogram::new();
        for values in &shards {
            merged.merge(&filled(values));
        }
        let all: Vec<u64> = shards.iter().flatten().copied().collect();
        prop_assert_eq!(merged.count(), all.len() as u64);
        if !all.is_empty() {
            prop_assert_eq!(merged.min(), *all.iter().min().unwrap());
            prop_assert_eq!(merged.max(), *all.iter().max().unwrap());
        }
    }

    /// A merged percentile lies within the bracket spanned by the
    /// per-shard percentiles (same bucketing on both sides, so up to
    /// bucket-width slack): merging can never invent a tail beyond the
    /// worst shard or hide one below the best.
    #[test]
    fn merged_percentiles_bracket_per_shard(
        shards in proptest::collection::vec(
            proptest::collection::vec(1u64..1_000_000_000_000, 1..200),
            2..5,
        ),
        q_pct in 1u32..100,
    ) {
        let q = f64::from(q_pct) / 100.0;
        let mut merged = Histogram::new();
        let mut shard_ps = Vec::new();
        for values in &shards {
            let h = filled(values);
            shard_ps.push(h.percentile(q));
            merged.merge(&h);
        }
        let p = merged.percentile(q);
        let lo = *shard_ps.iter().min().unwrap();
        let hi = *shard_ps.iter().max().unwrap();
        prop_assert!(
            p + slack(p) >= lo,
            "merged p{q} = {p} below shard bracket [{lo}, {hi}]"
        );
        prop_assert!(
            p <= hi + slack(hi),
            "merged p{q} = {p} above shard bracket [{lo}, {hi}]"
        );
    }

    /// The bucketed percentile tracks the exact sample quantile within
    /// the log-bucket resolution, whether recorded directly or merged.
    #[test]
    fn percentile_tracks_exact_quantile(
        values in proptest::collection::vec(1u64..1_000_000_000_000, 1..300),
        q_pct in 1u32..100,
    ) {
        let q = f64::from(q_pct) / 100.0;
        let h = filled(&values);
        let mut sorted = values.clone();
        sorted.sort_unstable();
        let exact = exact_quantile(&sorted, q);
        let approx = h.percentile(q);
        prop_assert!(
            approx + slack(exact) >= exact && approx <= exact + slack(exact),
            "p{q}: approx {approx} vs exact {exact}"
        );
    }

    /// Percentiles are monotone in `q` and pinned to the recorded
    /// range at the ends.
    #[test]
    fn percentiles_are_monotone(
        values in proptest::collection::vec(1u64..1_000_000_000_000, 1..300),
    ) {
        let h = filled(&values);
        let qs = [0.01, 0.25, 0.5, 0.9, 0.99, 0.999, 1.0];
        for w in qs.windows(2) {
            prop_assert!(
                h.percentile(w[0]) <= h.percentile(w[1]),
                "p{} > p{}", w[0], w[1]
            );
        }
        let top = h.percentile(1.0);
        prop_assert!(top <= h.max() && top + slack(top) >= h.max());
        prop_assert!(h.percentile(0.01) >= h.min());
    }
}

//! Property tests for the HTTP plumbing: request parsing must be
//! chunking-invariant (the event loop delivers bytes in arbitrary
//! pieces).

use proptest::prelude::*;

use lp_httpd::http::{get_request, response_header, Request, RequestBuffer};

fn drain(rb: &mut RequestBuffer) -> Vec<Request> {
    let mut out = Vec::new();
    while let Some(r) = rb.next_request() {
        out.push(r);
    }
    out
}

proptest! {
    /// However a byte stream of back-to-back requests is chunked, the
    /// same sequence of parsed requests comes out.
    #[test]
    fn parsing_is_chunking_invariant(
        paths in proptest::collection::vec("[a-z_0-9]{1,12}", 1..8),
        cut_points in proptest::collection::vec(any::<u16>(), 0..16),
        keep_alive in any::<bool>(),
    ) {
        let mut stream = Vec::new();
        for p in &paths {
            stream.extend_from_slice(&get_request(&format!("/{p}"), keep_alive));
        }

        // Reference: single push.
        let mut whole = RequestBuffer::new();
        whole.push(&stream);
        let reference = drain(&mut whole);

        // Chunked: cut at arbitrary sorted points.
        let mut cuts: Vec<usize> = cut_points
            .iter()
            .map(|&c| c as usize % (stream.len() + 1))
            .collect();
        cuts.sort_unstable();
        cuts.dedup();
        let mut chunked = RequestBuffer::new();
        let mut parsed = Vec::new();
        let mut prev = 0;
        for cut in cuts.into_iter().chain([stream.len()]) {
            chunked.push(&stream[prev..cut]);
            parsed.extend(drain(&mut chunked));
            prev = cut;
        }

        prop_assert_eq!(parsed.len(), reference.len());
        for (a, b) in parsed.iter().zip(reference.iter()) {
            prop_assert_eq!(&a.path, &b.path);
            prop_assert_eq!(a.keep_alive, b.keep_alive);
        }
        prop_assert_eq!(reference.len(), paths.len());
    }

    /// Response headers always parse back their own content length and
    /// terminate correctly.
    #[test]
    fn response_headers_wellformed(len in 0usize..10_000_000, ka in any::<bool>()) {
        let hdr = String::from_utf8(response_header(len, ka)).unwrap();
        prop_assert!(hdr.starts_with("HTTP/1.1 200 OK\r\n"));
        prop_assert!(hdr.ends_with("\r\n\r\n"));
        let want_len = format!("Content-Length: {len}\r\n");
        prop_assert!(hdr.contains(&want_len));
        let conn = if ka { "keep-alive" } else { "close" };
        let want_conn = format!("Connection: {conn}\r\n");
        prop_assert!(hdr.contains(&want_conn));
    }

    /// Garbage bytes never panic the parser and never fabricate a
    /// request unless they accidentally form one.
    #[test]
    fn garbage_is_safe(bytes in proptest::collection::vec(any::<u8>(), 0..512)) {
        let mut rb = RequestBuffer::new();
        rb.push(&bytes);
        let _ = drain(&mut rb); // must not panic
    }
}

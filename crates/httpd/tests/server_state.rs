//! Server state-machine tests over real sockets: the edge-triggered
//! event loop must survive requests dribbled in at arbitrary byte
//! boundaries, cut off header floods, and resume large responses
//! across send-buffer backpressure (mid-response `EAGAIN`).

use std::io::{self, Read, Write};
use std::net::TcpStream;
use std::os::fd::FromRawFd;
use std::time::Duration;

use lp_httpd::docroot::{path_for_size, pattern, Docroot};
use lp_httpd::http::get_request;
use lp_httpd::{Flavor, Server, ServerConfig};

fn spawn(
    sizes: &[usize],
    flavor: Flavor,
) -> (
    Docroot,
    u16,
    std::sync::Arc<lp_httpd::StopFlag>,
    std::thread::JoinHandle<io::Result<()>>,
) {
    let root = Docroot::create(sizes).unwrap();
    let (port, stop, handle) = Server::spawn_in_thread(ServerConfig {
        flavor,
        workers: 1,
        docroot: root.path().to_path_buf(),
    })
    .unwrap();
    (root, port, stop, handle)
}

/// Reads exactly one `HTTP/1.1` response (header + `Content-Length`
/// body) off the stream and returns (status line, body).
fn read_response(s: &mut TcpStream) -> (String, Vec<u8>) {
    let mut hdr = Vec::new();
    let mut byte = [0u8; 1];
    while !hdr.ends_with(b"\r\n\r\n") {
        s.read_exact(&mut byte).expect("header byte");
        hdr.push(byte[0]);
        assert!(hdr.len() < 8192, "runaway header");
    }
    let text = String::from_utf8_lossy(&hdr);
    let status = text.lines().next().unwrap_or_default().to_string();
    let len: usize = text
        .lines()
        .find_map(|l| l.strip_prefix("Content-Length: "))
        .expect("Content-Length")
        .trim()
        .parse()
        .unwrap();
    let mut body = vec![0u8; len];
    s.read_exact(&mut body).expect("body");
    (status, body)
}

#[test]
fn pipelined_requests_survive_arbitrary_byte_splits() {
    let (_root, port, stop, handle) = spawn(&[256], Flavor::LighttpdLike);
    let mut s = TcpStream::connect(("127.0.0.1", port)).unwrap();
    s.set_nodelay(true).unwrap();

    // 8 pipelined keep-alive requests as one byte stream, dribbled in
    // rotating odd-sized chunks so every request is split mid-line,
    // mid-header, and across request boundaries.
    const REQUESTS: usize = 8;
    let mut stream = Vec::new();
    for _ in 0..REQUESTS {
        stream.extend_from_slice(&get_request(&path_for_size(256), true));
    }
    let chunk_sizes = [1usize, 2, 3, 5, 7, 11, 13];
    let mut off = 0;
    let mut i = 0;
    while off < stream.len() {
        let n = chunk_sizes[i % chunk_sizes.len()].min(stream.len() - off);
        s.write_all(&stream[off..off + n]).unwrap();
        off += n;
        i += 1;
        // Give the event loop a chance to see each fragment as its own
        // readable edge (best effort; coalesced fragments are fine too).
        if i % 4 == 0 {
            std::thread::sleep(Duration::from_millis(1));
        }
    }

    for r in 0..REQUESTS {
        let (status, body) = read_response(&mut s);
        assert!(status.starts_with("HTTP/1.1 200"), "request {r}: {status}");
        assert_eq!(body, pattern(256), "request {r} body");
    }

    drop(s);
    stop.stop();
    handle.join().unwrap().unwrap();
}

#[test]
fn oversized_header_flood_is_cut_off() {
    let (_root, port, stop, handle) = spawn(&[64], Flavor::LighttpdLike);
    let mut s = TcpStream::connect(("127.0.0.1", port)).unwrap();
    s.set_read_timeout(Some(Duration::from_secs(10))).unwrap();

    // 96 KiB of header bytes with no terminator: past the 64 KiB guard
    // the server must drop the connection without ever responding. The
    // write side may fail once the server closes (EPIPE/reset) — that
    // is the expected cut-off, not a test failure.
    let junk = vec![b'x'; 96 * 1024];
    let _ = s.write_all(&junk);
    let _ = s.flush();

    let mut buf = [0u8; 512];
    let got = loop {
        match s.read(&mut buf) {
            Ok(0) => break 0,                   // clean FIN
            Ok(n) => break n,                   // would be a bogus response
            Err(e) if e.kind() == io::ErrorKind::ConnectionReset => break 0,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => panic!("unexpected read error: {e}"),
        }
    };
    assert_eq!(got, 0, "server must not answer a header flood");

    stop.stop();
    handle.join().unwrap().unwrap();
}

#[test]
fn large_responses_resume_after_send_backpressure() {
    const SIZE: usize = 1 << 20;
    const REQUESTS: usize = 8;
    let (_root, port, stop, handle) = spawn(&[SIZE], Flavor::LighttpdLike);

    // A connection with a tiny receive buffer: 8 pipelined 1 MiB
    // responses (8 MiB total) cannot fit in the server's send buffer,
    // so its write path hits EAGAIN mid-response and must resume off
    // later EPOLLOUT edges with no epoll_ctl toggling.
    let fd = unsafe { libc::socket(libc::AF_INET, libc::SOCK_STREAM, 0) };
    assert!(fd >= 0);
    let sz: libc::c_int = 4096;
    unsafe {
        libc::setsockopt(
            fd,
            libc::SOL_SOCKET,
            libc::SO_RCVBUF,
            &sz as *const _ as *const libc::c_void,
            std::mem::size_of::<libc::c_int>() as u32,
        );
    }
    let mut s = unsafe { TcpStream::from_raw_fd(fd) };
    let addr = libc::sockaddr_in {
        sin_family: libc::AF_INET as u16,
        sin_port: port.to_be(),
        sin_addr: libc::in_addr {
            s_addr: u32::from_ne_bytes([127, 0, 0, 1]),
        },
        sin_zero: [0; 8],
    };
    let rc = unsafe {
        libc::connect(
            fd,
            &addr as *const _ as *const libc::sockaddr,
            std::mem::size_of::<libc::sockaddr_in>() as u32,
        )
    };
    assert_eq!(rc, 0, "connect: {}", io::Error::last_os_error());
    s.set_read_timeout(Some(Duration::from_secs(30))).unwrap();

    for _ in 0..REQUESTS {
        s.write_all(&get_request(&path_for_size(SIZE), true)).unwrap();
    }
    // Let the server run into EAGAIN and park back into epoll_wait
    // with the remainder still queued.
    std::thread::sleep(Duration::from_millis(150));

    let expect = pattern(SIZE);
    for r in 0..REQUESTS {
        let (status, body) = read_response(&mut s);
        assert!(status.starts_with("HTTP/1.1 200"), "response {r}: {status}");
        assert_eq!(body.len(), SIZE, "response {r} length");
        assert!(body == expect, "response {r} body corrupted");
    }

    drop(s);
    stop.stop();
    handle.join().unwrap().unwrap();
}

//! Handler composition.

use crate::{Action, HookStack, InterestSet, SyscallEvent, SyscallHandler};

/// Runs handlers in order; the first non-[`Action::Passthrough`] wins.
///
/// Earlier handlers may rewrite the event for later ones (e.g. a
/// redirect followed by a policy check sees the redirected fd).
///
/// `ChainHandler` is the build-once facade over [`HookStack`]: every
/// handler is attached at priority 0, so dispatch order is exactly
/// insertion order (the stack breaks priority ties by attach sequence)
/// and the semantics match the stack's `call_next` contract. Code that
/// needs runtime attach/detach or explicit priorities uses `HookStack`
/// directly.
pub struct ChainHandler {
    stack: HookStack,
}

impl ChainHandler {
    /// Creates an empty chain (acts as passthrough).
    pub fn new() -> ChainHandler {
        ChainHandler {
            stack: HookStack::new(),
        }
    }

    /// Appends a handler to the chain.
    pub fn push(self, h: Box<dyn SyscallHandler>) -> ChainHandler {
        self.stack.attach(h, 0);
        self
    }

    /// Number of handlers in the chain.
    pub fn len(&self) -> usize {
        self.stack.len()
    }

    /// Whether the chain is empty.
    pub fn is_empty(&self) -> bool {
        self.stack.is_empty()
    }
}

impl Default for ChainHandler {
    fn default() -> ChainHandler {
        ChainHandler::new()
    }
}

impl std::fmt::Debug for ChainHandler {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "ChainHandler(len={})", self.len())
    }
}

impl SyscallHandler for ChainHandler {
    fn handle(&self, event: &mut SyscallEvent) -> Action {
        self.stack.handle(event)
    }

    fn post(&self, event: &SyscallEvent, ret: u64) -> u64 {
        // Every chained handler observes the result; rewrites compose
        // left to right.
        self.stack.post(event, ret)
    }

    fn name(&self) -> &str {
        "chain"
    }

    /// Union of the children's sets: the chain must run whenever *any*
    /// child wants the syscall. (Interest is keyed on the incoming
    /// number, so a child that rewrites `nr` for its successors still
    /// gets the chain invoked via its own membership.) An empty chain
    /// is a passthrough and asks for nothing.
    fn interest(&self) -> InterestSet {
        self.stack.interest()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CountHandler, PolicyBuilder};
    use syscalls::{nr, Errno, SyscallArgs};

    #[test]
    fn empty_chain_is_passthrough() {
        let c = ChainHandler::new();
        assert!(c.is_empty());
        let mut ev = SyscallEvent::new(SyscallArgs::nullary(nr::READ));
        assert_eq!(c.handle(&mut ev), Action::Passthrough);
    }

    #[test]
    fn first_decision_wins_but_all_priors_run() {
        let counter = CountHandler::new();
        // CountHandler clones share their Arc-backed counters, so the
        // chain's counts stay observable after the original is boxed.
        let observer = counter.clone();
        let deny = PolicyBuilder::allow_by_default().deny(nr::EXECVE).build();
        let chain = ChainHandler::new()
            .push(Box::new(counter))
            .push(Box::new(deny));
        assert_eq!(chain.len(), 2);

        let mut allowed = SyscallEvent::new(SyscallArgs::nullary(nr::READ));
        assert_eq!(chain.handle(&mut allowed), Action::Passthrough);

        let mut denied = SyscallEvent::new(SyscallArgs::nullary(nr::EXECVE));
        assert_eq!(chain.handle(&mut denied), Action::Fail(Errno::EPERM));

        // The counter sat *before* the deny, so it observed both calls
        // — including the one the policy then refused.
        assert_eq!(observer.count(nr::READ), 1);
        assert_eq!(observer.count(nr::EXECVE), 1);
        assert_eq!(observer.total(), 2);
    }

    #[test]
    fn post_composes_across_chain() {
        struct AddOne;
        impl SyscallHandler for AddOne {
            fn handle(&self, _: &mut SyscallEvent) -> Action {
                Action::Passthrough
            }
            fn post(&self, _: &SyscallEvent, ret: u64) -> u64 {
                ret + 1
            }
        }
        let chain = ChainHandler::new()
            .push(Box::new(AddOne))
            .push(Box::new(AddOne));
        let ev = SyscallEvent::new(SyscallArgs::nullary(nr::GETPID));
        assert_eq!(chain.post(&ev, 10), 12);
    }

    #[test]
    fn interest_unions_children() {
        use crate::FdRedirectHandler;
        assert!(ChainHandler::new().interest().is_empty());

        let chain = ChainHandler::new()
            .push(Box::new(FdRedirectHandler::new(1, 7)))
            .push(Box::new(
                PolicyBuilder::allow_by_default().deny(nr::EXECVE).build(),
            ));
        let i = chain.interest();
        assert!(i.contains(nr::WRITE), "from the redirect");
        assert!(i.contains(nr::EXECVE), "from the policy");
        assert!(!i.contains(nr::READ));

        // Any all-syscalls child (CountHandler keeps the default)
        // widens the chain to everything.
        let wide = ChainHandler::new()
            .push(Box::new(FdRedirectHandler::new(1, 7)))
            .push(Box::new(CountHandler::new()));
        assert!(wide.interest().is_all());
    }

    #[test]
    fn earlier_rewrites_visible_to_later() {
        use crate::FdRedirectHandler;
        // Redirect fd 1 → 7, then deny writes to fd ≥ 3: the redirected
        // call must be judged by its *rewritten* fd.
        let chain = ChainHandler::new()
            .push(Box::new(FdRedirectHandler::new(1, 7)))
            .push(Box::new(
                PolicyBuilder::allow_by_default()
                    .deny_write_to_fd_at_or_above(3)
                    .build(),
            ));
        let mut ev = SyscallEvent::new(SyscallArgs::new(nr::WRITE, [1, 0, 0, 0, 0, 0]));
        assert_eq!(chain.handle(&mut ev), Action::Fail(Errno::EBADF));
        assert_eq!(ev.call.args[0], 7);
    }
}

//! Allocation-free per-syscall-number counting.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crate::{Action, SyscallEvent, SyscallHandler};
use syscalls::MAX_SYSCALL_NR;

struct Counts {
    per_nr: Box<[AtomicU64]>,
    other: AtomicU64,
}

/// Counts invocations per syscall number, then passes through.
///
/// Storage is a fixed array of atomics covering the whole trampoline
/// range, so the hot path is one relaxed fetch-add — safe from any
/// interposition context. The storage is `Arc`-shared: `clone()` is
/// cheap and every clone observes the same counters, so a test or
/// report can keep a clone while the original is boxed into a chain,
/// stack, or the global registry.
pub struct CountHandler {
    counts: Arc<Counts>,
}

impl Clone for CountHandler {
    fn clone(&self) -> CountHandler {
        CountHandler {
            counts: Arc::clone(&self.counts),
        }
    }
}

impl CountHandler {
    /// Creates a zeroed counter.
    pub fn new() -> CountHandler {
        let per_nr = (0..MAX_SYSCALL_NR).map(|_| AtomicU64::new(0)).collect();
        CountHandler {
            counts: Arc::new(Counts {
                per_nr,
                other: AtomicU64::new(0),
            }),
        }
    }

    /// Invocations observed for `nr` so far.
    pub fn count(&self, nr: u64) -> u64 {
        match self.counts.per_nr.get(nr as usize) {
            Some(c) => c.load(Ordering::Relaxed),
            None => self.counts.other.load(Ordering::Relaxed),
        }
    }

    /// Total invocations across all numbers.
    pub fn total(&self) -> u64 {
        self.counts
            .per_nr
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .sum::<u64>()
            + self.counts.other.load(Ordering::Relaxed)
    }

    /// `(nr, count)` pairs for every number seen at least once,
    /// descending by count.
    pub fn top(&self) -> Vec<(u64, u64)> {
        let mut v: Vec<(u64, u64)> = self
            .counts
            .per_nr
            .iter()
            .enumerate()
            .filter_map(|(nr, c)| {
                let n = c.load(Ordering::Relaxed);
                (n > 0).then_some((nr as u64, n))
            })
            .collect();
        v.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        v
    }

    /// Resets every counter to zero.
    pub fn reset(&self) {
        for c in self.counts.per_nr.iter() {
            c.store(0, Ordering::Relaxed);
        }
        self.counts.other.store(0, Ordering::Relaxed);
    }
}

impl Default for CountHandler {
    fn default() -> CountHandler {
        CountHandler::new()
    }
}

impl std::fmt::Debug for CountHandler {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CountHandler")
            .field("total", &self.total())
            .finish()
    }
}

impl SyscallHandler for CountHandler {
    fn handle(&self, event: &mut SyscallEvent) -> Action {
        match self.counts.per_nr.get(event.call.nr as usize) {
            Some(c) => c.fetch_add(1, Ordering::Relaxed),
            None => self.counts.other.fetch_add(1, Ordering::Relaxed),
        };
        Action::Passthrough
    }

    fn name(&self) -> &str {
        "count"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use syscalls::{nr, SyscallArgs};

    fn hit(h: &CountHandler, nr: u64) {
        let mut ev = SyscallEvent::new(SyscallArgs::nullary(nr));
        assert_eq!(h.handle(&mut ev), Action::Passthrough);
    }

    #[test]
    fn counts_accumulate() {
        let h = CountHandler::new();
        hit(&h, nr::READ);
        hit(&h, nr::READ);
        hit(&h, nr::WRITE);
        assert_eq!(h.count(nr::READ), 2);
        assert_eq!(h.count(nr::WRITE), 1);
        assert_eq!(h.count(nr::OPEN), 0);
        assert_eq!(h.total(), 3);
    }

    #[test]
    fn out_of_range_numbers_bucketed() {
        let h = CountHandler::new();
        hit(&h, 100_000);
        assert_eq!(h.count(100_000), 1);
        assert_eq!(h.total(), 1);
    }

    #[test]
    fn top_sorts_descending() {
        let h = CountHandler::new();
        for _ in 0..3 {
            hit(&h, nr::WRITE);
        }
        hit(&h, nr::READ);
        assert_eq!(h.top(), vec![(nr::WRITE, 3), (nr::READ, 1)]);
    }

    #[test]
    fn reset_clears() {
        let h = CountHandler::new();
        hit(&h, nr::READ);
        h.reset();
        assert_eq!(h.total(), 0);
        assert!(h.top().is_empty());
    }
}

//! Syscall-interest sets: which syscall numbers a handler wants to see.
//!
//! The dominant cost of "dummy" interposition (paper §V, Table 2) is
//! not the handler body but getting *to* it: building a
//! [`SyscallEvent`](crate::SyscallEvent), the indirect call through the
//! handler vtable, and the post hook. Most real interposers care about
//! a handful of syscall numbers, so the mechanisms consult the
//! installed handler's [`InterestSet`] — one 64-bit load plus a bit
//! test — before paying any of that, and fall straight through to the
//! raw syscall for numbers the handler declared no interest in.
//!
//! The set covers numbers `0..512` (`syscalls::MAX_SYSCALL_NR`, the
//! same bound the zpoline trampoline's nop sled covers). Numbers at or
//! above the bound are conservatively reported as interesting, so a
//! handler can never silently miss an out-of-table syscall.

use syscalls::MAX_SYSCALL_NR;

const WORDS: usize = (MAX_SYSCALL_NR as usize) / 64;

/// A 512-bit bitmap of syscall numbers a handler wants delivered.
///
/// Mechanisms test membership on the hot path; construction happens
/// once at registration time, so the builder methods favour clarity
/// over speed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct InterestSet {
    bits: [u64; WORDS],
}

impl InterestSet {
    /// The set containing every syscall number. This is the default
    /// ([`SyscallHandler::interest`](crate::SyscallHandler::interest))
    /// so existing handlers keep seeing everything.
    pub const fn all() -> InterestSet {
        InterestSet {
            bits: [u64::MAX; WORDS],
        }
    }

    /// The empty set: the handler is never consulted on the fast path.
    pub const fn none() -> InterestSet {
        InterestSet { bits: [0; WORDS] }
    }

    /// Builds a set from an explicit list of syscall numbers.
    /// Numbers at or above [`MAX_SYSCALL_NR`] are ignored (they are
    /// implicitly interesting — see [`InterestSet::contains`]).
    pub fn of(nrs: &[u64]) -> InterestSet {
        let mut s = InterestSet::none();
        for &nr in nrs {
            s.insert(nr);
        }
        s
    }

    /// Adds `nr` to the set. No-op for out-of-range numbers.
    pub fn insert(&mut self, nr: u64) {
        if nr < MAX_SYSCALL_NR {
            self.bits[(nr / 64) as usize] |= 1u64 << (nr % 64);
        }
    }

    /// Removes `nr` from the set. No-op for out-of-range numbers
    /// (those stay implicitly interesting regardless).
    pub fn remove(&mut self, nr: u64) {
        if nr < MAX_SYSCALL_NR {
            self.bits[(nr / 64) as usize] &= !(1u64 << (nr % 64));
        }
    }

    /// Tests membership. Out-of-range numbers always report `true`:
    /// the table only filters what it can represent, and delivering an
    /// extra syscall is safe while dropping one is not.
    #[inline]
    pub fn contains(&self, nr: u64) -> bool {
        if nr >= MAX_SYSCALL_NR {
            return true;
        }
        self.bits[(nr / 64) as usize] & (1u64 << (nr % 64)) != 0
    }

    /// The union of two sets (used by
    /// [`ChainHandler`](crate::ChainHandler) to combine children).
    pub fn union(&self, other: &InterestSet) -> InterestSet {
        let mut bits = [0u64; WORDS];
        for (i, b) in bits.iter_mut().enumerate() {
            *b = self.bits[i] | other.bits[i];
        }
        InterestSet { bits }
    }

    /// `true` if no in-range number is a member.
    pub fn is_empty(&self) -> bool {
        self.bits.iter().all(|&w| w == 0)
    }

    /// `true` if every in-range number is a member.
    pub fn is_all(&self) -> bool {
        self.bits.iter().all(|&w| w == u64::MAX)
    }

    /// Number of in-range members.
    pub fn len(&self) -> usize {
        self.bits.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// The raw 64-bit words, low numbers first. Mechanisms cache these
    /// next to their handler pointer for a branch-free membership test.
    pub fn words(&self) -> [u64; WORDS] {
        self.bits
    }

    /// Rebuilds a set from [`InterestSet::words`] output.
    pub const fn from_words(bits: [u64; WORDS]) -> InterestSet {
        InterestSet { bits }
    }
}

impl Default for InterestSet {
    /// Defaults to all-interesting, matching the trait default.
    fn default() -> InterestSet {
        InterestSet::all()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_and_none() {
        let all = InterestSet::all();
        let none = InterestSet::none();
        assert!(all.is_all() && !all.is_empty());
        assert!(none.is_empty() && !none.is_all());
        assert_eq!(all.len(), 512);
        assert_eq!(none.len(), 0);
        for nr in 0..MAX_SYSCALL_NR {
            assert!(all.contains(nr));
            assert!(!none.contains(nr));
        }
    }

    #[test]
    fn set_and_contains_edges() {
        // Word-boundary edges: 0, 63/64, 511.
        let mut s = InterestSet::of(&[0, 63, 64, 511]);
        assert!(s.contains(0));
        assert!(s.contains(63));
        assert!(s.contains(64));
        assert!(s.contains(511));
        assert!(!s.contains(1));
        assert!(!s.contains(62));
        assert!(!s.contains(65));
        assert!(!s.contains(510));
        assert_eq!(s.len(), 4);
        s.remove(63);
        s.remove(64);
        assert!(!s.contains(63) && !s.contains(64));
        assert!(s.contains(0) && s.contains(511));
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn out_of_range_is_conservatively_interesting() {
        let none = InterestSet::none();
        assert!(none.contains(MAX_SYSCALL_NR));
        assert!(none.contains(u64::MAX));
        // ...and inserting out-of-range numbers is a no-op.
        let mut s = InterestSet::none();
        s.insert(MAX_SYSCALL_NR);
        s.insert(u64::MAX);
        assert!(s.is_empty());
    }

    #[test]
    fn union_combines() {
        let a = InterestSet::of(&[1, 100]);
        let b = InterestSet::of(&[100, 511]);
        let u = a.union(&b);
        assert_eq!(u, InterestSet::of(&[1, 100, 511]));
        assert_eq!(u.len(), 3);
        assert!(a.union(&InterestSet::all()).is_all());
        assert_eq!(a.union(&InterestSet::none()), a);
    }

    #[test]
    fn words_round_trip() {
        let s = InterestSet::of(&[0, 64, 128, 192, 256, 320, 384, 448, 511]);
        let w = s.words();
        assert_eq!(InterestSet::from_words(w), s);
        assert_eq!(w[0] & 1, 1);
        assert_eq!(w[7] >> 63, 1);
    }
}

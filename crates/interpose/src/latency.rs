//! Per-syscall latency measurement via the pre/post hook pair.
//!
//! Demonstrates the full expressiveness story: the handler observes
//! the call before execution (`handle`), the result after (`post`),
//! and correlates them — something seccomp-bpf structurally cannot do
//! and ptrace pays two context-switched stops for. Storage is
//! allocation-free (log₂-bucketed counters) per the handler contract.

use std::sync::atomic::{AtomicU64, Ordering};

use crate::{Action, SyscallEvent, SyscallHandler};

/// Number of log₂ latency buckets (cycles): bucket *i* counts samples
/// in `[2^i, 2^(i+1))`.
pub const LATENCY_BUCKETS: usize = 32;

/// Measures wall-cycle latency of every passthrough syscall with a
/// `rdtsc` pair, into a log₂ histogram.
///
/// Single-threaded accounting note: the pre-timestamp is stored in a
/// thread-local so concurrent syscalls on different threads do not
/// corrupt each other's samples.
pub struct LatencyHandler {
    buckets: [AtomicU64; LATENCY_BUCKETS],
    total: AtomicU64,
}

thread_local! {
    static T0: std::cell::Cell<u64> = const { std::cell::Cell::new(0) };
}

#[inline]
fn now_cycles() -> u64 {
    #[cfg(target_arch = "x86_64")]
    // SAFETY: rdtsc is always available on x86-64.
    unsafe {
        core::arch::x86_64::_rdtsc()
    }
    #[cfg(not(target_arch = "x86_64"))]
    0
}

impl LatencyHandler {
    /// A zeroed histogram.
    pub fn new() -> LatencyHandler {
        LatencyHandler {
            buckets: [const { AtomicU64::new(0) }; LATENCY_BUCKETS],
            total: AtomicU64::new(0),
        }
    }

    /// Samples recorded so far.
    pub fn samples(&self) -> u64 {
        self.total.load(Ordering::Relaxed)
    }

    /// Count in bucket `i` (`[2^i, 2^(i+1))` cycles).
    pub fn bucket(&self, i: usize) -> u64 {
        self.buckets
            .get(i)
            .map(|b| b.load(Ordering::Relaxed))
            .unwrap_or(0)
    }

    /// The histogram as `(lower_bound_cycles, count)` pairs for every
    /// non-empty bucket.
    pub fn histogram(&self) -> Vec<(u64, u64)> {
        (0..LATENCY_BUCKETS)
            .filter_map(|i| {
                let c = self.bucket(i);
                (c > 0).then_some((1u64 << i, c))
            })
            .collect()
    }

    /// Approximate median latency in cycles (bucket lower bound).
    pub fn approx_median(&self) -> Option<u64> {
        let total = self.samples();
        if total == 0 {
            return None;
        }
        let mut seen = 0;
        for i in 0..LATENCY_BUCKETS {
            seen += self.bucket(i);
            if seen * 2 >= total {
                return Some(1 << i);
            }
        }
        None
    }
}

impl Default for LatencyHandler {
    fn default() -> LatencyHandler {
        LatencyHandler::new()
    }
}

impl std::fmt::Debug for LatencyHandler {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "LatencyHandler({} samples)", self.samples())
    }
}

impl SyscallHandler for LatencyHandler {
    fn handle(&self, _event: &mut SyscallEvent) -> Action {
        T0.with(|c| c.set(now_cycles()));
        Action::Passthrough
    }

    fn post(&self, _event: &SyscallEvent, ret: u64) -> u64 {
        let t0 = T0.with(|c| c.get());
        if t0 != 0 {
            let dt = now_cycles().saturating_sub(t0).max(1);
            let bucket = (63 - dt.leading_zeros() as usize).min(LATENCY_BUCKETS - 1);
            self.buckets[bucket].fetch_add(1, Ordering::Relaxed);
            self.total.fetch_add(1, Ordering::Relaxed);
        }
        ret
    }

    fn name(&self) -> &str {
        "latency"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use syscalls::{nr, SyscallArgs};

    #[test]
    fn records_through_hook_pair() {
        let h = LatencyHandler::new();
        let mut ev = SyscallEvent::new(SyscallArgs::nullary(nr::GETPID));
        assert_eq!(h.handle(&mut ev), Action::Passthrough);
        // Simulate the executed syscall.
        std::hint::black_box(42);
        assert_eq!(h.post(&ev, 7), 7);
        assert_eq!(h.samples(), 1);
        assert_eq!(h.histogram().iter().map(|(_, c)| c).sum::<u64>(), 1);
        assert!(h.approx_median().is_some());
    }

    #[test]
    fn empty_histogram() {
        let h = LatencyHandler::new();
        assert_eq!(h.samples(), 0);
        assert!(h.histogram().is_empty());
        assert_eq!(h.approx_median(), None);
        assert_eq!(h.bucket(99), 0);
    }

    #[test]
    fn buckets_are_log2() {
        let h = LatencyHandler::new();
        // Drive post() with handcrafted timestamps by calling the
        // bucketing logic through real samples: 3 samples land in some
        // bucket; monotone counts.
        let mut ev = SyscallEvent::new(SyscallArgs::nullary(nr::GETPID));
        for _ in 0..3 {
            h.handle(&mut ev);
            h.post(&ev, 0);
        }
        assert_eq!(h.samples(), 3);
    }
}

//! The interposer API shared by every interposition mechanism in the
//! suite (native lazypoline, native zpoline, SUD-only, and the
//! simulated mechanisms).
//!
//! An interposer implements [`SyscallHandler`]; the mechanism invokes
//! [`SyscallHandler::handle`] for every intercepted syscall and acts on
//! the returned [`Action`]. Handlers run **on the application thread,
//! potentially interrupting arbitrary code** (including a syscall made
//! from inside `malloc`), so the hot path must be allocation-free; every
//! stock handler in this crate honours that.
//!
//! # Example
//!
//! ```rust
//! use lp_interpose::{Action, CountHandler, SyscallHandler, SyscallEvent};
//! use syscalls::{nr, SyscallArgs};
//!
//! let counter = CountHandler::new();
//! let mut ev = SyscallEvent::new(SyscallArgs::nullary(nr::GETPID));
//! assert_eq!(counter.handle(&mut ev), Action::Passthrough);
//! assert_eq!(counter.count(nr::GETPID), 1);
//! ```

#![deny(missing_docs)]

mod chain;
mod count;
mod interest;
mod latency;
mod policy;
mod registry;
mod remap;
mod rewrite;
mod stack;
mod trace;

pub use chain::ChainHandler;
pub use count::CountHandler;
pub use interest::InterestSet;
pub use latency::{LatencyHandler, LATENCY_BUCKETS};
pub use policy::{PolicyBuilder, PolicyHandler};
pub use registry::{
    dispatch_global, global_handler, global_interested, install_handler, interpose_syscall,
    post_global, quarantined_handlers, refresh_global_interest, set_global_handler,
    widen_global_interest, HandlerGuard,
};
pub use remap::{PathRemapHandler, MAX_PATH};
pub use rewrite::FdRedirectHandler;
pub use stack::{hook_dispatches, HookId, HookStack};
pub use trace::{format_syscall_line, TraceHandler, TraceSink};

use syscalls::{Errno, SyscallArgs};

/// What the mechanism should do with an intercepted syscall.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Action {
    /// Execute the (possibly modified) syscall and return its result —
    /// the paper's "dummy" interposition used for all benchmarks.
    Passthrough,
    /// Do not execute; return this value to the application.
    Return(u64),
    /// Do not execute; fail with `-errno`.
    Fail(Errno),
}

impl Action {
    /// Encodes `Return`/`Fail` as the raw `rax` value; `None` for
    /// `Passthrough`.
    pub fn as_ret(&self) -> Option<u64> {
        match self {
            Action::Passthrough => None,
            Action::Return(v) => Some(*v),
            Action::Fail(e) => Some(e.as_ret()),
        }
    }
}

/// One intercepted syscall, as presented to a handler.
///
/// `call` is mutable: handlers may rewrite the number or arguments
/// before a `Passthrough` ("inspect and modify the syscall number,
/// arguments", paper §II-A).
#[derive(Debug)]
pub struct SyscallEvent {
    /// The syscall about to be executed (mutable for rewriting).
    pub call: SyscallArgs,
    /// Return address of the invocation site, when the mechanism knows
    /// it (0 otherwise). Lets handlers attribute syscalls to code.
    pub site: usize,
}

impl SyscallEvent {
    /// Creates an event with no site attribution.
    pub fn new(call: SyscallArgs) -> SyscallEvent {
        SyscallEvent { call, site: 0 }
    }

    /// Creates an event attributed to a code address.
    pub fn with_site(call: SyscallArgs, site: usize) -> SyscallEvent {
        SyscallEvent { call, site }
    }
}

/// A syscall interposer.
///
/// # Contract
///
/// `handle` executes on the application thread with interposition
/// temporarily disabled for its own syscalls. It must not allocate on
/// the heap, panic, or block on locks that application code might hold.
/// A panic that happens anyway is contained rather than fatal: the
/// registry quarantines the handler and subsequent syscalls pass
/// through uninterposed (see [`quarantined_handlers`]).
pub trait SyscallHandler: Send + Sync {
    /// Decides what to do with one intercepted syscall.
    fn handle(&self, event: &mut SyscallEvent) -> Action;

    /// Observes (and may rewrite) the result after a `Passthrough`
    /// executed — the "modify the return value" capability ptrace
    /// offers (paper §II-A), on the fast path. Not called for
    /// `Return`/`Fail` decisions. Default: return `ret` unchanged.
    fn post(&self, event: &SyscallEvent, ret: u64) -> u64 {
        let _ = event;
        ret
    }

    /// Human-readable name for reports and experiment tables.
    fn name(&self) -> &str {
        "handler"
    }

    /// The syscall numbers this handler wants delivered.
    ///
    /// Mechanisms consult this **once at registration time** (the set
    /// is cached next to the handler pointer) and skip the handler —
    /// no event construction, no virtual call, no post hook — for
    /// numbers outside it. Handlers that inspect everything keep the
    /// default; handlers scoped to specific syscalls (policies,
    /// fd redirectors, path remappers) return a precise set so the
    /// mechanism's fast path stays near raw-syscall cost for the rest.
    fn interest(&self) -> InterestSet {
        InterestSet::all()
    }

    /// Identity hook for runtime-mutable handlers. [`HookStack`] is the
    /// only implementor: it uses this to recognise itself as the
    /// installed global handler, so mutations of *detached* stacks
    /// never touch the global interest cache. Ordinary handlers keep
    /// the `None` default.
    fn as_any(&self) -> Option<&dyn std::any::Any> {
        None
    }
}

/// The identity interposer: passes every syscall through untouched.
/// This is the configuration benchmarked throughout the paper's §V.
#[derive(Debug, Default, Clone, Copy)]
pub struct PassthroughHandler;

impl SyscallHandler for PassthroughHandler {
    fn handle(&self, _event: &mut SyscallEvent) -> Action {
        Action::Passthrough
    }

    fn name(&self) -> &str {
        "passthrough"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use syscalls::nr;

    #[test]
    fn action_encoding() {
        assert_eq!(Action::Passthrough.as_ret(), None);
        assert_eq!(Action::Return(7).as_ret(), Some(7));
        assert_eq!(Action::Fail(Errno::EPERM).as_ret(), Some((-1i64) as u64));
    }

    #[test]
    fn passthrough_never_intervenes() {
        let h = PassthroughHandler;
        for nr in [nr::READ, nr::WRITE, nr::EXECVE, 500] {
            let mut ev = SyscallEvent::new(SyscallArgs::nullary(nr));
            assert_eq!(h.handle(&mut ev), Action::Passthrough);
        }
        assert_eq!(h.name(), "passthrough");
    }

    #[test]
    fn event_site_attribution() {
        let ev = SyscallEvent::with_site(SyscallArgs::nullary(nr::GETPID), 0x1234);
        assert_eq!(ev.site, 0x1234);
        assert_eq!(SyscallEvent::new(SyscallArgs::nullary(0)).site, 0);
    }
}

//! Allow/deny sandboxing policies.
//!
//! Demonstrates the *expressiveness* dimension of Table I: unlike
//! seccomp-bpf, a userspace handler can make per-call decisions with
//! full argument access (the builder's `deny_write_to_fd` rule
//! dereferences nothing but inspects arguments — deeper inspection is
//! possible since the handler runs in-process).

use crate::{Action, InterestSet, SyscallEvent, SyscallHandler};
use syscalls::{Errno, MAX_SYSCALL_NR};

/// Default verdicts for syscalls with no specific rule.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Verdict {
    Allow,
    Deny(Errno),
}

/// A fixed-size allow/deny policy over syscall numbers, with optional
/// argument predicates. The decision path is array lookups only.
pub struct PolicyHandler {
    default: Verdict,
    per_nr: Box<[Option<Verdict>]>,
    /// Deny `write`/`pwrite64` to fds ≥ this value, if set.
    max_write_fd: Option<u64>,
    /// Precomputed in [`PolicyBuilder::build`]: exactly the syscalls
    /// whose verdict could differ from "execute it raw".
    interest: InterestSet,
}

impl std::fmt::Debug for PolicyHandler {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PolicyHandler")
            .field("default", &self.default)
            .finish()
    }
}

/// Builder for [`PolicyHandler`].
///
/// ```rust
/// use lp_interpose::PolicyBuilder;
/// use syscalls::nr;
///
/// let policy = PolicyBuilder::allow_by_default()
///     .deny(nr::EXECVE)
///     .deny(nr::FORK)
///     .build();
/// ```
#[derive(Debug)]
pub struct PolicyBuilder {
    default: Verdict,
    rules: Vec<(u64, Verdict)>,
    max_write_fd: Option<u64>,
}

impl PolicyBuilder {
    /// Start from "everything allowed" and deny selectively.
    pub fn allow_by_default() -> PolicyBuilder {
        PolicyBuilder {
            default: Verdict::Allow,
            rules: Vec::new(),
            max_write_fd: None,
        }
    }

    /// Start from "everything denied with `EPERM`" and allow selectively.
    pub fn deny_by_default() -> PolicyBuilder {
        PolicyBuilder {
            default: Verdict::Deny(Errno::EPERM),
            rules: Vec::new(),
            max_write_fd: None,
        }
    }

    /// Allows syscall `nr`.
    pub fn allow(mut self, nr: u64) -> PolicyBuilder {
        self.rules.push((nr, Verdict::Allow));
        self
    }

    /// Denies syscall `nr` with `EPERM`.
    pub fn deny(self, nr: u64) -> PolicyBuilder {
        self.deny_with(nr, Errno::EPERM)
    }

    /// Denies syscall `nr` with a chosen errno.
    pub fn deny_with(mut self, nr: u64, errno: Errno) -> PolicyBuilder {
        self.rules.push((nr, Verdict::Deny(errno)));
        self
    }

    /// Denies `write`/`pwrite64` to any fd ≥ `fd` (argument-level rule).
    pub fn deny_write_to_fd_at_or_above(mut self, fd: u64) -> PolicyBuilder {
        self.max_write_fd = Some(fd);
        self
    }

    /// Finalizes the policy.
    pub fn build(self) -> PolicyHandler {
        let mut per_nr: Vec<Option<Verdict>> = vec![None; MAX_SYSCALL_NR as usize];
        for &(nr, v) in &self.rules {
            if let Some(slot) = per_nr.get_mut(nr as usize) {
                *slot = Some(v);
            }
        }
        // The interest set is exact: a syscall the mechanism executes
        // raw (skipping this handler) behaves identically to one this
        // handler would wave through with `Action::Passthrough`. So
        // under allow-by-default only the denied numbers matter; under
        // deny-by-default everything matters *except* explicit allows.
        let mut interest = match self.default {
            Verdict::Allow => {
                let mut s = InterestSet::none();
                for (nr, v) in per_nr.iter().enumerate() {
                    if matches!(v, Some(Verdict::Deny(_))) {
                        s.insert(nr as u64);
                    }
                }
                s
            }
            Verdict::Deny(_) => {
                let mut s = InterestSet::all();
                for (nr, v) in per_nr.iter().enumerate() {
                    if matches!(v, Some(Verdict::Allow)) {
                        s.remove(nr as u64);
                    }
                }
                s
            }
        };
        // The argument-level write rule needs to see writes even when
        // the number-level verdict would be Allow.
        if self.max_write_fd.is_some() {
            interest.insert(syscalls::nr::WRITE);
            interest.insert(syscalls::nr::PWRITE64);
        }
        PolicyHandler {
            default: self.default,
            per_nr: per_nr.into_boxed_slice(),
            max_write_fd: self.max_write_fd,
            interest,
        }
    }
}

impl PolicyHandler {
    /// The verdict for a call, without side effects.
    pub fn decide(&self, event: &SyscallEvent) -> Action {
        if let Some(maxfd) = self.max_write_fd {
            let nr = event.call.nr;
            if (nr == syscalls::nr::WRITE || nr == syscalls::nr::PWRITE64)
                && event.call.args[0] >= maxfd
            {
                return Action::Fail(Errno::EBADF);
            }
        }
        let verdict = self
            .per_nr
            .get(event.call.nr as usize)
            .copied()
            .flatten()
            .unwrap_or(self.default);
        match verdict {
            Verdict::Allow => Action::Passthrough,
            Verdict::Deny(e) => Action::Fail(e),
        }
    }
}

impl SyscallHandler for PolicyHandler {
    fn handle(&self, event: &mut SyscallEvent) -> Action {
        self.decide(event)
    }

    fn name(&self) -> &str {
        "policy"
    }

    fn interest(&self) -> InterestSet {
        self.interest
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use syscalls::{nr, SyscallArgs};

    fn ev(nr: u64) -> SyscallEvent {
        SyscallEvent::new(SyscallArgs::nullary(nr))
    }

    #[test]
    fn allow_by_default_denies_listed() {
        let p = PolicyBuilder::allow_by_default()
            .deny(nr::EXECVE)
            .deny_with(nr::SOCKET, Errno::EACCES)
            .build();
        assert_eq!(p.handle(&mut ev(nr::READ)), Action::Passthrough);
        assert_eq!(p.handle(&mut ev(nr::EXECVE)), Action::Fail(Errno::EPERM));
        assert_eq!(p.handle(&mut ev(nr::SOCKET)), Action::Fail(Errno::EACCES));
    }

    #[test]
    fn deny_by_default_allows_listed() {
        let p = PolicyBuilder::deny_by_default()
            .allow(nr::READ)
            .allow(nr::WRITE)
            .allow(nr::EXIT_GROUP)
            .build();
        assert_eq!(p.handle(&mut ev(nr::READ)), Action::Passthrough);
        assert_eq!(p.handle(&mut ev(nr::OPEN)), Action::Fail(Errno::EPERM));
    }

    #[test]
    fn argument_level_rule() {
        let p = PolicyBuilder::allow_by_default()
            .deny_write_to_fd_at_or_above(3)
            .build();
        let mut stdout_write =
            SyscallEvent::new(SyscallArgs::new(nr::WRITE, [1, 0, 0, 0, 0, 0]));
        let mut file_write =
            SyscallEvent::new(SyscallArgs::new(nr::WRITE, [7, 0, 0, 0, 0, 0]));
        assert_eq!(p.handle(&mut stdout_write), Action::Passthrough);
        assert_eq!(p.handle(&mut file_write), Action::Fail(Errno::EBADF));
        // Other syscalls with large first args are untouched.
        let mut read = SyscallEvent::new(SyscallArgs::new(nr::READ, [7, 0, 0, 0, 0, 0]));
        assert_eq!(p.handle(&mut read), Action::Passthrough);
    }

    #[test]
    fn interest_is_precise() {
        use syscalls::MAX_SYSCALL_NR;

        let scoped = PolicyBuilder::allow_by_default().deny(nr::OPENAT).build();
        let i = scoped.interest();
        assert!(i.contains(nr::OPENAT));
        assert!(!i.contains(nr::GETPID));
        assert_eq!(i.len(), 1);

        // Redundant allow rules under allow-by-default add nothing.
        let noop = PolicyBuilder::allow_by_default().allow(nr::READ).build();
        assert!(noop.interest().is_empty());

        // Deny-by-default must see everything except explicit allows.
        let deny = PolicyBuilder::deny_by_default().allow(nr::READ).build();
        assert!(!deny.interest().contains(nr::READ));
        assert!(deny.interest().contains(nr::OPEN));
        assert_eq!(deny.interest().len(), MAX_SYSCALL_NR as usize - 1);

        // The argument-level write rule forces interest in writes even
        // when the number-level verdict allows them.
        let wr = PolicyBuilder::allow_by_default()
            .deny_write_to_fd_at_or_above(3)
            .build();
        assert!(wr.interest().contains(nr::WRITE));
        assert!(wr.interest().contains(nr::PWRITE64));
        assert_eq!(wr.interest().len(), 2);
    }

    #[test]
    fn out_of_range_numbers_use_default() {
        let allow = PolicyBuilder::allow_by_default().build();
        let deny = PolicyBuilder::deny_by_default().build();
        assert_eq!(allow.handle(&mut ev(100_000)), Action::Passthrough);
        assert_eq!(deny.handle(&mut ev(100_000)), Action::Fail(Errno::EPERM));
    }
}

//! Process-global handler registration.
//!
//! Interposition mechanisms (the lazypoline engine, the zpoline
//! dispatcher, the SUD-only interposer) consult one global handler so
//! that swapping mechanisms never requires re-registering policy. The
//! handler is stored behind an `AtomicPtr` to a leaked double box: the
//! hot path is a single atomic load and the handler lives for the rest
//! of the process (interposition is one-way; rewritten code sites can
//! fire at any time until exit).
//!
//! # Panic containment
//!
//! A handler panic must never unwind into the dispatcher: the dispatch
//! frames sit below hand-written assembly (and, on the slow path,
//! inside a signal handler), where unwinding is undefined behaviour and
//! would take the whole process down for a bug in *policy* code. Both
//! [`dispatch_global`] and [`post_global`] therefore run the handler
//! under [`std::panic::catch_unwind`]; the first panic **quarantines**
//! the handler — it is atomically disabled, its interest cache is
//! zeroed (so the fast path stops even consulting it), the event is
//! counted, and the intercepted syscall passes through unmodified.
//! Installing a handler via [`set_global_handler`] lifts the
//! quarantine.

use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicPtr, AtomicU64, Ordering};

use crate::{Action, SyscallEvent, SyscallHandler};

static GLOBAL: AtomicPtr<Box<dyn SyscallHandler>> = AtomicPtr::new(std::ptr::null_mut());

/// The installed handler's [`InterestSet`], cached as raw words so the
/// hot path pays one relaxed load and a bit test instead of a virtual
/// `interest()` call per syscall. All-ones when no handler is
/// registered (an unfiltered mechanism must still reach
/// [`dispatch_global`], which handles the null case).
///
/// The words are updated one at a time after the handler pointer is
/// stored, so a concurrent reader can observe a mix of the old and new
/// sets. That race is benign by construction: the stale words err only
/// toward *delivering* a syscall the new handler did not ask for (which
/// every handler must tolerate — the set is an optimization, not a
/// contract), or toward filtering one the *old* handler did not want.
/// Handlers are expected to be installed once, near startup, before the
/// threads they filter for exist.
static INTEREST_WORDS: [AtomicU64; 8] = [
    AtomicU64::new(u64::MAX),
    AtomicU64::new(u64::MAX),
    AtomicU64::new(u64::MAX),
    AtomicU64::new(u64::MAX),
    AtomicU64::new(u64::MAX),
    AtomicU64::new(u64::MAX),
    AtomicU64::new(u64::MAX),
    AtomicU64::new(u64::MAX),
];

/// Installs `handler` as the process-global interposer, replacing any
/// previous one, and caches its [`SyscallHandler::interest`] set for
/// the mechanisms' fast paths.
///
/// The handler is intentionally leaked: intercepted syscalls can occur
/// on any thread at any time once code has been rewritten, so there is
/// no safe point to drop it. (A replaced handler leaks too — handlers
/// are expected to be installed once, near startup.)
pub fn set_global_handler(handler: Box<dyn SyscallHandler>) {
    let interest = handler.interest();
    let thin = Box::into_raw(Box::new(handler));
    GLOBAL.store(thin, Ordering::SeqCst);
    for (cache, word) in INTEREST_WORDS.iter().zip(interest.words()) {
        cache.store(word, Ordering::Relaxed);
    }
    // A fresh handler starts trusted: lift any standing quarantine
    // *after* the interest cache is valid, so no window exists where a
    // quarantined-then-revived handler sees a zeroed set.
    QUARANTINED.store(false, Ordering::SeqCst);
}

/// Whether the installed handler is quarantined after panicking.
static QUARANTINED: AtomicBool = AtomicBool::new(false);

/// Cumulative count of handlers quarantined (monotonic — re-installing
/// a handler lifts the quarantine but does not erase the history).
static QUARANTINE_EVENTS: AtomicU64 = AtomicU64::new(0);

/// How many handler panics have led to quarantine since process start.
pub fn quarantined_handlers() -> u64 {
    QUARANTINE_EVENTS.load(Ordering::Relaxed)
}

/// Disables the installed handler after it panicked: first caller wins,
/// counts the event, zeroes the interest cache (the fast path stops
/// consulting the handler entirely), and writes a one-line note to
/// stderr with a raw `write` (no allocation, no locks — this can run
/// inside the `SIGSYS` handler).
#[cold]
fn quarantine_global() {
    if QUARANTINED.swap(true, Ordering::SeqCst) {
        return; // racing panics: already quarantined
    }
    QUARANTINE_EVENTS.fetch_add(1, Ordering::Relaxed);
    for cache in &INTEREST_WORDS {
        cache.store(0, Ordering::Relaxed);
    }
    let msg = b"interpose: handler panicked; quarantined (syscalls pass through)\n";
    unsafe {
        libc::write(2, msg.as_ptr().cast(), msg.len());
    }
}

/// Tests the cached interest set: should the mechanism deliver syscall
/// `nr` to the handler, or fall straight through to the raw syscall?
///
/// Out-of-range numbers (≥ 512) always report interesting, mirroring
/// [`InterestSet::contains`]. Costs one relaxed atomic load and a bit
/// test — cheap enough for every dispatch.
#[inline]
pub fn global_interested(nr: u64) -> bool {
    if nr >= syscalls::MAX_SYSCALL_NR {
        return true;
    }
    let word = INTEREST_WORDS[(nr / 64) as usize].load(Ordering::Relaxed);
    word & (1u64 << (nr % 64)) != 0
}

/// Returns the registered handler, if any.
pub fn global_handler() -> Option<&'static dyn SyscallHandler> {
    let p = GLOBAL.load(Ordering::Acquire);
    if p.is_null() {
        None
    } else {
        // SAFETY: set_global_handler leaks the box, so the pointee is
        // valid for 'static.
        Some(unsafe { (*p).as_ref() })
    }
}

/// Runs the global handler on `event`; [`Action::Passthrough`] when no
/// handler is registered or the handler is quarantined. A panicking
/// handler is quarantined and the event passes through (see the module
/// docs).
pub fn dispatch_global(event: &mut SyscallEvent) -> Action {
    match global_handler() {
        Some(h) if !QUARANTINED.load(Ordering::Relaxed) => {
            // AssertUnwindSafe: on panic the handler is never called
            // again (quarantine), so broken invariants are unobservable.
            match panic::catch_unwind(AssertUnwindSafe(|| h.handle(event))) {
                Ok(action) => action,
                Err(_) => {
                    quarantine_global();
                    Action::Passthrough
                }
            }
        }
        _ => Action::Passthrough,
    }
}

/// Runs the global handler's post hook on an executed syscall's result.
/// Quarantine applies as in [`dispatch_global`]; a panic here leaves the
/// syscall's real return value untouched.
pub fn post_global(event: &SyscallEvent, ret: u64) -> u64 {
    match global_handler() {
        Some(h) if !QUARANTINED.load(Ordering::Relaxed) => {
            match panic::catch_unwind(AssertUnwindSafe(|| h.post(event, ret))) {
                Ok(r) => r,
                Err(_) => {
                    quarantine_global();
                    ret
                }
            }
        }
        _ => ret,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{InterestSet, PassthroughHandler};
    use std::sync::Mutex;
    use syscalls::SyscallArgs;

    // The registry is process-global; serialize the tests that install
    // handlers so they don't observe each other's installs mid-assert.
    static REGISTRY_LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn unregistered_defaults_to_passthrough() {
        // Note: global state — this test runs before any set in this
        // process only when filtered; tolerate either outcome.
        let mut ev = SyscallEvent::new(SyscallArgs::nullary(39));
        let _ = dispatch_global(&mut ev);
    }

    #[test]
    fn register_and_dispatch() {
        let _g = REGISTRY_LOCK.lock().unwrap();
        set_global_handler(Box::new(PassthroughHandler));
        assert!(global_handler().is_some());
        assert_eq!(global_handler().unwrap().name(), "passthrough");
        let mut ev = SyscallEvent::new(SyscallArgs::nullary(39));
        assert_eq!(dispatch_global(&mut ev), Action::Passthrough);
    }

    struct OnlyOpenat;
    impl SyscallHandler for OnlyOpenat {
        fn handle(&self, _event: &mut SyscallEvent) -> Action {
            Action::Passthrough
        }
        fn interest(&self) -> InterestSet {
            InterestSet::of(&[syscalls::nr::OPENAT])
        }
    }

    #[test]
    fn interest_cache_tracks_installed_handler() {
        let _g = REGISTRY_LOCK.lock().unwrap();
        set_global_handler(Box::new(OnlyOpenat));
        assert!(global_interested(syscalls::nr::OPENAT));
        assert!(!global_interested(syscalls::nr::GETPID));
        assert!(!global_interested(0));
        assert!(!global_interested(511));
        // Out-of-table numbers stay conservatively interesting.
        assert!(global_interested(syscalls::MAX_SYSCALL_NR));
        // Reinstalling an all-syscalls handler restores full delivery.
        set_global_handler(Box::new(PassthroughHandler));
        assert!(global_interested(syscalls::nr::GETPID));
    }

    struct PanicsOnGetpid;
    impl SyscallHandler for PanicsOnGetpid {
        fn handle(&self, event: &mut SyscallEvent) -> Action {
            if event.call.nr == syscalls::nr::GETPID {
                panic!("policy bug");
            }
            Action::Passthrough
        }
    }

    #[test]
    fn panicking_handler_is_quarantined_not_fatal() {
        let _g = REGISTRY_LOCK.lock().unwrap();
        // Keep the expected panic's backtrace out of the test output.
        let prev_hook = panic::take_hook();
        panic::set_hook(Box::new(|_| {}));

        set_global_handler(Box::new(PanicsOnGetpid));
        let before = quarantined_handlers();
        assert!(global_interested(syscalls::nr::GETPID));

        let mut ev = SyscallEvent::new(SyscallArgs::nullary(syscalls::nr::GETPID));
        // The panic is contained; the event passes through.
        assert_eq!(dispatch_global(&mut ev), Action::Passthrough);
        assert_eq!(quarantined_handlers(), before + 1);
        // Quarantine zeroes the interest cache and mutes the handler.
        assert!(!global_interested(syscalls::nr::GETPID));
        assert_eq!(dispatch_global(&mut ev), Action::Passthrough);
        assert_eq!(quarantined_handlers(), before + 1, "second hit must not re-count");

        // post_global is muted too (and must not panic).
        assert_eq!(post_global(&ev, 42), 42);

        // Installing a fresh handler lifts the quarantine.
        set_global_handler(Box::new(PassthroughHandler));
        assert!(global_interested(syscalls::nr::GETPID));
        assert_eq!(dispatch_global(&mut ev), Action::Passthrough);
        assert_eq!(quarantined_handlers(), before + 1);

        panic::set_hook(prev_hook);
    }
}

//! Process-global handler registration.
//!
//! Interposition mechanisms (the lazypoline engine, the zpoline
//! dispatcher, the SUD-only interposer) consult one global handler so
//! that swapping mechanisms never requires re-registering policy. The
//! handler is stored behind an `AtomicPtr` to a leaked double box: the
//! hot path is a single atomic load and the handler lives for the rest
//! of the process (interposition is one-way; rewritten code sites can
//! fire at any time until exit).

use std::sync::atomic::{AtomicPtr, AtomicU64, Ordering};

use crate::{Action, SyscallEvent, SyscallHandler};

static GLOBAL: AtomicPtr<Box<dyn SyscallHandler>> = AtomicPtr::new(std::ptr::null_mut());

/// The installed handler's [`InterestSet`], cached as raw words so the
/// hot path pays one relaxed load and a bit test instead of a virtual
/// `interest()` call per syscall. All-ones when no handler is
/// registered (an unfiltered mechanism must still reach
/// [`dispatch_global`], which handles the null case).
///
/// The words are updated one at a time after the handler pointer is
/// stored, so a concurrent reader can observe a mix of the old and new
/// sets. That race is benign by construction: the stale words err only
/// toward *delivering* a syscall the new handler did not ask for (which
/// every handler must tolerate — the set is an optimization, not a
/// contract), or toward filtering one the *old* handler did not want.
/// Handlers are expected to be installed once, near startup, before the
/// threads they filter for exist.
static INTEREST_WORDS: [AtomicU64; 8] = [
    AtomicU64::new(u64::MAX),
    AtomicU64::new(u64::MAX),
    AtomicU64::new(u64::MAX),
    AtomicU64::new(u64::MAX),
    AtomicU64::new(u64::MAX),
    AtomicU64::new(u64::MAX),
    AtomicU64::new(u64::MAX),
    AtomicU64::new(u64::MAX),
];

/// Installs `handler` as the process-global interposer, replacing any
/// previous one, and caches its [`SyscallHandler::interest`] set for
/// the mechanisms' fast paths.
///
/// The handler is intentionally leaked: intercepted syscalls can occur
/// on any thread at any time once code has been rewritten, so there is
/// no safe point to drop it. (A replaced handler leaks too — handlers
/// are expected to be installed once, near startup.)
pub fn set_global_handler(handler: Box<dyn SyscallHandler>) {
    let interest = handler.interest();
    let thin = Box::into_raw(Box::new(handler));
    GLOBAL.store(thin, Ordering::SeqCst);
    for (cache, word) in INTEREST_WORDS.iter().zip(interest.words()) {
        cache.store(word, Ordering::Relaxed);
    }
}

/// Tests the cached interest set: should the mechanism deliver syscall
/// `nr` to the handler, or fall straight through to the raw syscall?
///
/// Out-of-range numbers (≥ 512) always report interesting, mirroring
/// [`InterestSet::contains`]. Costs one relaxed atomic load and a bit
/// test — cheap enough for every dispatch.
#[inline]
pub fn global_interested(nr: u64) -> bool {
    if nr >= syscalls::MAX_SYSCALL_NR {
        return true;
    }
    let word = INTEREST_WORDS[(nr / 64) as usize].load(Ordering::Relaxed);
    word & (1u64 << (nr % 64)) != 0
}

/// Returns the registered handler, if any.
pub fn global_handler() -> Option<&'static dyn SyscallHandler> {
    let p = GLOBAL.load(Ordering::Acquire);
    if p.is_null() {
        None
    } else {
        // SAFETY: set_global_handler leaks the box, so the pointee is
        // valid for 'static.
        Some(unsafe { (*p).as_ref() })
    }
}

/// Runs the global handler on `event`; [`Action::Passthrough`] when no
/// handler is registered.
pub fn dispatch_global(event: &mut SyscallEvent) -> Action {
    match global_handler() {
        Some(h) => h.handle(event),
        None => Action::Passthrough,
    }
}

/// Runs the global handler's post hook on an executed syscall's result.
pub fn post_global(event: &SyscallEvent, ret: u64) -> u64 {
    match global_handler() {
        Some(h) => h.post(event, ret),
        None => ret,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{InterestSet, PassthroughHandler};
    use std::sync::Mutex;
    use syscalls::SyscallArgs;

    // The registry is process-global; serialize the tests that install
    // handlers so they don't observe each other's installs mid-assert.
    static REGISTRY_LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn unregistered_defaults_to_passthrough() {
        // Note: global state — this test runs before any set in this
        // process only when filtered; tolerate either outcome.
        let mut ev = SyscallEvent::new(SyscallArgs::nullary(39));
        let _ = dispatch_global(&mut ev);
    }

    #[test]
    fn register_and_dispatch() {
        let _g = REGISTRY_LOCK.lock().unwrap();
        set_global_handler(Box::new(PassthroughHandler));
        assert!(global_handler().is_some());
        assert_eq!(global_handler().unwrap().name(), "passthrough");
        let mut ev = SyscallEvent::new(SyscallArgs::nullary(39));
        assert_eq!(dispatch_global(&mut ev), Action::Passthrough);
    }

    struct OnlyOpenat;
    impl SyscallHandler for OnlyOpenat {
        fn handle(&self, _event: &mut SyscallEvent) -> Action {
            Action::Passthrough
        }
        fn interest(&self) -> InterestSet {
            InterestSet::of(&[syscalls::nr::OPENAT])
        }
    }

    #[test]
    fn interest_cache_tracks_installed_handler() {
        let _g = REGISTRY_LOCK.lock().unwrap();
        set_global_handler(Box::new(OnlyOpenat));
        assert!(global_interested(syscalls::nr::OPENAT));
        assert!(!global_interested(syscalls::nr::GETPID));
        assert!(!global_interested(0));
        assert!(!global_interested(511));
        // Out-of-table numbers stay conservatively interesting.
        assert!(global_interested(syscalls::MAX_SYSCALL_NR));
        // Reinstalling an all-syscalls handler restores full delivery.
        set_global_handler(Box::new(PassthroughHandler));
        assert!(global_interested(syscalls::nr::GETPID));
    }
}

//! Process-global handler registration.
//!
//! Interposition mechanisms (the lazypoline engine, the zpoline
//! dispatcher, the SUD-only interposer) consult one global handler so
//! that swapping mechanisms never requires re-registering policy. The
//! handler is stored behind an `AtomicPtr` to a leaked double box: the
//! hot path is a single atomic load and the handler lives for the rest
//! of the process (interposition is one-way; rewritten code sites can
//! fire at any time until exit).
//!
//! # Panic containment
//!
//! A handler panic must never unwind into the dispatcher: the dispatch
//! frames sit below hand-written assembly (and, on the slow path,
//! inside a signal handler), where unwinding is undefined behaviour and
//! would take the whole process down for a bug in *policy* code. Both
//! [`dispatch_global`] and [`post_global`] therefore run the handler
//! under [`std::panic::catch_unwind`]; the first panic **quarantines**
//! the handler — it is atomically disabled, its interest cache is
//! zeroed (so the fast path stops even consulting it), the event is
//! counted, and the intercepted syscall passes through unmodified.
//! Installing a handler via [`set_global_handler`] lifts the
//! quarantine.

use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicPtr, AtomicU64, Ordering};

use syscalls::SyscallArgs;

use crate::{Action, SyscallEvent, SyscallHandler};

static GLOBAL: AtomicPtr<Box<dyn SyscallHandler>> = AtomicPtr::new(std::ptr::null_mut());

/// The installed handler's [`InterestSet`], cached as raw words so the
/// hot path pays one relaxed load and a bit test instead of a virtual
/// `interest()` call per syscall. All-ones when no handler is
/// registered (an unfiltered mechanism must still reach
/// [`dispatch_global`], which handles the null case).
///
/// The words are updated one at a time after the handler pointer is
/// stored, so a concurrent reader can observe a mix of the old and new
/// sets. That race is benign by construction: the stale words err only
/// toward *delivering* a syscall the new handler did not ask for (which
/// every handler must tolerate — the set is an optimization, not a
/// contract), or toward filtering one the *old* handler did not want.
/// Handlers are expected to be installed once, near startup, before the
/// threads they filter for exist.
static INTEREST_WORDS: [AtomicU64; 8] = [
    AtomicU64::new(u64::MAX),
    AtomicU64::new(u64::MAX),
    AtomicU64::new(u64::MAX),
    AtomicU64::new(u64::MAX),
    AtomicU64::new(u64::MAX),
    AtomicU64::new(u64::MAX),
    AtomicU64::new(u64::MAX),
    AtomicU64::new(u64::MAX),
];

/// Installs `handler` as the process-global interposer, replacing any
/// previous one, and caches its [`SyscallHandler::interest`] set for
/// the mechanisms' fast paths.
///
/// The handler is intentionally leaked: intercepted syscalls can occur
/// on any thread at any time once code has been rewritten, so there is
/// no safe point to drop it. (A replaced handler leaks too — handlers
/// are expected to be installed once, near startup.)
pub fn set_global_handler(handler: Box<dyn SyscallHandler>) {
    let interest = handler.interest();
    let thin = Box::into_raw(Box::new(handler));
    GLOBAL.store(thin, Ordering::SeqCst);
    for (cache, word) in INTEREST_WORDS.iter().zip(interest.words()) {
        cache.store(word, Ordering::Relaxed);
    }
    // A fresh handler starts trusted: lift any standing quarantine
    // *after* the interest cache is valid, so no window exists where a
    // quarantined-then-revived handler sees a zeroed set.
    QUARANTINED.store(false, Ordering::SeqCst);
}

/// Installs `handler` like [`set_global_handler`] and returns a guard
/// that restores the *previously* installed handler — pointer, interest
/// cache, and a lifted quarantine — when dropped.
///
/// This is the registration entry point for scoped installations
/// (benchmark phases, tests, `ActiveMechanism` guards): unlike a bare
/// [`set_global_handler`], a drop of the guard cannot leak handler state
/// into whatever runs next. Guards must be dropped in LIFO order; the
/// restored handler starts un-quarantined even if it had panicked
/// before. The guard is `!Send` — drop it on the installing thread.
pub fn install_handler(handler: Box<dyn SyscallHandler>) -> HandlerGuard {
    let prev = GLOBAL.load(Ordering::Acquire);
    set_global_handler(handler);
    HandlerGuard { prev }
}

/// RAII restoration of the previous global handler; see
/// [`install_handler`].
#[must_use = "dropping the guard immediately restores the previous handler"]
pub struct HandlerGuard {
    prev: *mut Box<dyn SyscallHandler>,
}

impl Drop for HandlerGuard {
    fn drop(&mut self) {
        if self.prev.is_null() {
            GLOBAL.store(std::ptr::null_mut(), Ordering::SeqCst);
            for cache in &INTEREST_WORDS {
                cache.store(u64::MAX, Ordering::Relaxed);
            }
        } else {
            // SAFETY: set_global_handler leaked the previous box, so
            // the pointee is still valid (handlers live for 'static).
            let interest = unsafe { (*self.prev).interest() };
            GLOBAL.store(self.prev, Ordering::SeqCst);
            for (cache, word) in INTEREST_WORDS.iter().zip(interest.words()) {
                cache.store(word, Ordering::Relaxed);
            }
        }
        QUARANTINED.store(false, Ordering::SeqCst);
    }
}

/// Recomputes the interest cache from the currently installed handler
/// (all-ones when none is installed, matching the registry default).
///
/// Runtime-mutable handlers — a [`HookStack`](crate::HookStack) whose
/// entry list changed — call this after publishing their new state so
/// the mechanisms' fast-path filter tracks the mutation. See the
/// `stack` module docs for the ordering protocol (widen before swap on
/// attach, swap before narrow on detach).
pub fn refresh_global_interest() {
    let interest = match global_handler() {
        Some(h) => h.interest(),
        None => crate::InterestSet::all(),
    };
    for (cache, word) in INTEREST_WORDS.iter().zip(interest.words()) {
        cache.store(word, Ordering::Relaxed);
    }
}

/// Widens the interest cache by OR-ing in `extra` without ever
/// narrowing it. Used on the attach path *before* the new hook-stack
/// state is published: a brief over-wide cache only delivers extra
/// syscalls (benign by the interest contract), whereas a brief
/// under-wide one would drop syscalls a live hook asked for.
pub fn widen_global_interest(extra: &crate::InterestSet) {
    for (cache, word) in INTEREST_WORDS.iter().zip(extra.words()) {
        cache.fetch_or(word, Ordering::Relaxed);
    }
}

/// Whether the installed handler is quarantined after panicking.
static QUARANTINED: AtomicBool = AtomicBool::new(false);

/// Cumulative count of handlers quarantined (monotonic — re-installing
/// a handler lifts the quarantine but does not erase the history).
static QUARANTINE_EVENTS: AtomicU64 = AtomicU64::new(0);

/// How many handler panics have led to quarantine since process start.
pub fn quarantined_handlers() -> u64 {
    QUARANTINE_EVENTS.load(Ordering::Relaxed)
}

/// Disables the installed handler after it panicked: first caller wins,
/// counts the event, zeroes the interest cache (the fast path stops
/// consulting the handler entirely), and writes a one-line note to
/// stderr with a raw `write` (no allocation, no locks — this can run
/// inside the `SIGSYS` handler).
#[cold]
fn quarantine_global() {
    if QUARANTINED.swap(true, Ordering::SeqCst) {
        return; // racing panics: already quarantined
    }
    QUARANTINE_EVENTS.fetch_add(1, Ordering::Relaxed);
    for cache in &INTEREST_WORDS {
        cache.store(0, Ordering::Relaxed);
    }
    let msg = b"interpose: handler panicked; quarantined (syscalls pass through)\n";
    unsafe {
        libc::write(2, msg.as_ptr().cast(), msg.len());
    }
}

/// Tests the cached interest set: should the mechanism deliver syscall
/// `nr` to the handler, or fall straight through to the raw syscall?
///
/// Out-of-range numbers (≥ 512) always report interesting, mirroring
/// [`InterestSet::contains`]. Costs one relaxed atomic load and a bit
/// test — cheap enough for every dispatch.
#[inline]
pub fn global_interested(nr: u64) -> bool {
    if nr >= syscalls::MAX_SYSCALL_NR {
        return true;
    }
    let word = INTEREST_WORDS[(nr / 64) as usize].load(Ordering::Relaxed);
    word & (1u64 << (nr % 64)) != 0
}

/// Returns the registered handler, if any.
pub fn global_handler() -> Option<&'static dyn SyscallHandler> {
    let p = GLOBAL.load(Ordering::Acquire);
    if p.is_null() {
        None
    } else {
        // SAFETY: set_global_handler leaks the box, so the pointee is
        // valid for 'static.
        Some(unsafe { (*p).as_ref() })
    }
}

/// Runs the global handler on `event`; [`Action::Passthrough`] when no
/// handler is registered or the handler is quarantined. A panicking
/// handler is quarantined and the event passes through (see the module
/// docs).
pub fn dispatch_global(event: &mut SyscallEvent) -> Action {
    match global_handler() {
        Some(h) if !QUARANTINED.load(Ordering::Relaxed) => {
            // AssertUnwindSafe: on panic the handler is never called
            // again (quarantine), so broken invariants are unobservable.
            match panic::catch_unwind(AssertUnwindSafe(|| h.handle(event))) {
                Ok(action) => action,
                Err(_) => {
                    quarantine_global();
                    Action::Passthrough
                }
            }
        }
        _ => Action::Passthrough,
    }
}

/// Runs the global handler's post hook on an executed syscall's result.
/// Quarantine applies as in [`dispatch_global`]; a panic here leaves the
/// syscall's real return value untouched.
pub fn post_global(event: &SyscallEvent, ret: u64) -> u64 {
    match global_handler() {
        Some(h) if !QUARANTINED.load(Ordering::Relaxed) => {
            match panic::catch_unwind(AssertUnwindSafe(|| h.post(event, ret))) {
                Ok(r) => r,
                Err(_) => {
                    quarantine_global();
                    ret
                }
            }
        }
        _ => ret,
    }
}

/// The complete per-syscall decision sequence every mechanism runs: the
/// interest gate, event construction, [`dispatch_global`], execution of
/// a `Passthrough` (via the caller-supplied `execute`, with the
/// handler's possibly-rewritten number/arguments), and the
/// [`post_global`] hook.
///
/// This is the **single source of truth** for that sequence.
/// `fastpath::lazypoline_dispatch` runs it after capturing the register
/// frame, the SUD-only interposer runs it inside its `SIGSYS` handler,
/// and the dispatch-cost microbenchmark (`loop_interest_dispatch`) calls
/// it directly — so the benchmark measures the production decision path
/// by construction instead of maintaining a copy of it.
///
/// `execute` performs the (possibly rewritten) syscall and returns its
/// raw result; it is not called for `Return`/`Fail` decisions. `site`
/// is the invocation-site address for event attribution (0 if unknown).
#[inline]
pub fn interpose_syscall<F>(call: SyscallArgs, site: usize, execute: F) -> u64
where
    F: FnOnce(SyscallArgs) -> u64,
{
    if !global_interested(call.nr) {
        return execute(call);
    }
    let mut event = SyscallEvent::with_site(call, site);
    match dispatch_global(&mut event) {
        Action::Passthrough => {
            let ret = execute(event.call);
            post_global(&event, ret)
        }
        Action::Return(v) => v,
        Action::Fail(e) => e.as_ret(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{InterestSet, PassthroughHandler};
    use std::sync::Mutex;

    // The registry is process-global; serialize the tests that install
    // handlers so they don't observe each other's installs mid-assert.
    static REGISTRY_LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn unregistered_defaults_to_passthrough() {
        // Note: global state — this test runs before any set in this
        // process only when filtered; tolerate either outcome.
        let mut ev = SyscallEvent::new(SyscallArgs::nullary(39));
        let _ = dispatch_global(&mut ev);
    }

    #[test]
    fn register_and_dispatch() {
        let _g = REGISTRY_LOCK.lock().unwrap();
        set_global_handler(Box::new(PassthroughHandler));
        assert!(global_handler().is_some());
        assert_eq!(global_handler().unwrap().name(), "passthrough");
        let mut ev = SyscallEvent::new(SyscallArgs::nullary(39));
        assert_eq!(dispatch_global(&mut ev), Action::Passthrough);
    }

    struct OnlyOpenat;
    impl SyscallHandler for OnlyOpenat {
        fn handle(&self, _event: &mut SyscallEvent) -> Action {
            Action::Passthrough
        }
        fn interest(&self) -> InterestSet {
            InterestSet::of(&[syscalls::nr::OPENAT])
        }
    }

    #[test]
    fn interest_cache_tracks_installed_handler() {
        let _g = REGISTRY_LOCK.lock().unwrap();
        set_global_handler(Box::new(OnlyOpenat));
        assert!(global_interested(syscalls::nr::OPENAT));
        assert!(!global_interested(syscalls::nr::GETPID));
        assert!(!global_interested(0));
        assert!(!global_interested(511));
        // Out-of-table numbers stay conservatively interesting.
        assert!(global_interested(syscalls::MAX_SYSCALL_NR));
        // Reinstalling an all-syscalls handler restores full delivery.
        set_global_handler(Box::new(PassthroughHandler));
        assert!(global_interested(syscalls::nr::GETPID));
    }

    struct PanicsOnGetpid;
    impl SyscallHandler for PanicsOnGetpid {
        fn handle(&self, event: &mut SyscallEvent) -> Action {
            if event.call.nr == syscalls::nr::GETPID {
                panic!("policy bug");
            }
            Action::Passthrough
        }
    }

    #[test]
    fn panicking_handler_is_quarantined_not_fatal() {
        let _g = REGISTRY_LOCK.lock().unwrap();
        // Keep the expected panic's backtrace out of the test output.
        let prev_hook = panic::take_hook();
        panic::set_hook(Box::new(|_| {}));

        set_global_handler(Box::new(PanicsOnGetpid));
        let before = quarantined_handlers();
        assert!(global_interested(syscalls::nr::GETPID));

        let mut ev = SyscallEvent::new(SyscallArgs::nullary(syscalls::nr::GETPID));
        // The panic is contained; the event passes through.
        assert_eq!(dispatch_global(&mut ev), Action::Passthrough);
        assert_eq!(quarantined_handlers(), before + 1);
        // Quarantine zeroes the interest cache and mutes the handler.
        assert!(!global_interested(syscalls::nr::GETPID));
        assert_eq!(dispatch_global(&mut ev), Action::Passthrough);
        assert_eq!(quarantined_handlers(), before + 1, "second hit must not re-count");

        // post_global is muted too (and must not panic).
        assert_eq!(post_global(&ev, 42), 42);

        // Installing a fresh handler lifts the quarantine.
        set_global_handler(Box::new(PassthroughHandler));
        assert!(global_interested(syscalls::nr::GETPID));
        assert_eq!(dispatch_global(&mut ev), Action::Passthrough);
        assert_eq!(quarantined_handlers(), before + 1);

        panic::set_hook(prev_hook);
    }

    #[test]
    fn handler_guard_restores_previous_handler_and_interest() {
        let _g = REGISTRY_LOCK.lock().unwrap();
        set_global_handler(Box::new(PassthroughHandler));
        {
            let _guard = install_handler(Box::new(OnlyOpenat));
            assert!(global_interested(syscalls::nr::OPENAT));
            assert!(!global_interested(syscalls::nr::GETPID));
            {
                // Nested (LIFO) installation restores one level.
                let _inner = install_handler(Box::new(PassthroughHandler));
                assert!(global_interested(syscalls::nr::GETPID));
            }
            assert!(!global_interested(syscalls::nr::GETPID));
        }
        // Outer drop restores the original passthrough handler.
        assert!(global_interested(syscalls::nr::GETPID));
        assert_eq!(global_handler().unwrap().name(), "passthrough");
    }

    #[test]
    fn installed_stack_mutations_track_interest_cache() {
        let _g = REGISTRY_LOCK.lock().unwrap();
        let stack = crate::HookStack::new();
        let guard = install_handler(Box::new(stack.clone()));
        // Empty stack: nothing is interesting.
        assert!(!global_interested(syscalls::nr::GETPID));

        let narrow = stack.attach(Box::new(OnlyOpenat), 0);
        assert!(global_interested(syscalls::nr::OPENAT));
        assert!(!global_interested(syscalls::nr::GETPID));

        let wide = stack.attach_dynamic(Box::new(PassthroughHandler), 1);
        assert!(global_interested(syscalls::nr::GETPID), "widened on attach");

        assert!(stack.detach(wide));
        assert!(!global_interested(syscalls::nr::GETPID), "narrowed on detach");
        assert!(global_interested(syscalls::nr::OPENAT), "survivor keeps its set");

        assert!(stack.detach(narrow));
        assert!(!global_interested(syscalls::nr::OPENAT));
        drop(guard);

        // A *detached* stack's mutations must not touch the cache.
        set_global_handler(Box::new(OnlyOpenat));
        let loose = crate::HookStack::new();
        loose.attach(Box::new(PassthroughHandler), 0);
        assert!(!global_interested(syscalls::nr::GETPID));
        set_global_handler(Box::new(PassthroughHandler));
    }

    struct Scripted;
    impl SyscallHandler for Scripted {
        fn handle(&self, event: &mut SyscallEvent) -> Action {
            match event.call.nr {
                syscalls::nr::GETPID => Action::Return(7777),
                syscalls::nr::OPENAT => Action::Fail(syscalls::Errno::EPERM),
                // Rewrite: bump arg0 so post/execute observe the edit.
                _ => {
                    event.call.args[0] += 1;
                    Action::Passthrough
                }
            }
        }
        fn post(&self, _event: &SyscallEvent, ret: u64) -> u64 {
            ret | 0x100
        }
    }

    #[test]
    fn interpose_syscall_matches_dispatch_global() {
        let _g = REGISTRY_LOCK.lock().unwrap();
        set_global_handler(Box::new(Scripted));
        // For each decision class, the shared sequence must agree with a
        // hand-run dispatch_global + post_global (the sequence it owns).
        for nr in [syscalls::nr::GETPID, syscalls::nr::OPENAT, syscalls::nr::WRITE] {
            let call = SyscallArgs::new(nr, [5, 0, 0, 0, 0, 0]);
            let via_shared = interpose_syscall(call, 0, |c| c.args[0] * 10);
            let mut ev = SyscallEvent::new(call);
            let expected = match dispatch_global(&mut ev) {
                Action::Passthrough => post_global(&ev, ev.call.args[0] * 10),
                Action::Return(v) => v,
                Action::Fail(e) => e.as_ret(),
            };
            assert_eq!(via_shared, expected, "nr {nr}");
        }
        // And the concrete values: Return short-circuits, Fail encodes
        // errno, Passthrough executes the rewritten args + post hook.
        assert_eq!(interpose_syscall(SyscallArgs::nullary(syscalls::nr::GETPID), 0, |_| 0), 7777);
        assert_eq!(
            interpose_syscall(SyscallArgs::nullary(syscalls::nr::OPENAT), 0, |_| 0),
            syscalls::Errno::EPERM.as_ret()
        );
        let call = SyscallArgs::new(syscalls::nr::WRITE, [5, 0, 0, 0, 0, 0]);
        assert_eq!(interpose_syscall(call, 0, |c| c.args[0] * 10), 60 | 0x100);
        set_global_handler(Box::new(PassthroughHandler));
    }
}

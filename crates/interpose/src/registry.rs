//! Process-global handler registration.
//!
//! Interposition mechanisms (the lazypoline engine, the zpoline
//! dispatcher, the SUD-only interposer) consult one global handler so
//! that swapping mechanisms never requires re-registering policy. The
//! handler is stored behind an `AtomicPtr` to a leaked double box: the
//! hot path is a single atomic load and the handler lives for the rest
//! of the process (interposition is one-way; rewritten code sites can
//! fire at any time until exit).

use std::sync::atomic::{AtomicPtr, Ordering};

use crate::{Action, SyscallEvent, SyscallHandler};

static GLOBAL: AtomicPtr<Box<dyn SyscallHandler>> = AtomicPtr::new(std::ptr::null_mut());

/// Installs `handler` as the process-global interposer, replacing any
/// previous one.
///
/// The handler is intentionally leaked: intercepted syscalls can occur
/// on any thread at any time once code has been rewritten, so there is
/// no safe point to drop it. (A replaced handler leaks too — handlers
/// are expected to be installed once, near startup.)
pub fn set_global_handler(handler: Box<dyn SyscallHandler>) {
    let thin = Box::into_raw(Box::new(handler));
    GLOBAL.store(thin, Ordering::SeqCst);
}

/// Returns the registered handler, if any.
pub fn global_handler() -> Option<&'static dyn SyscallHandler> {
    let p = GLOBAL.load(Ordering::Acquire);
    if p.is_null() {
        None
    } else {
        // SAFETY: set_global_handler leaks the box, so the pointee is
        // valid for 'static.
        Some(unsafe { (*p).as_ref() })
    }
}

/// Runs the global handler on `event`; [`Action::Passthrough`] when no
/// handler is registered.
pub fn dispatch_global(event: &mut SyscallEvent) -> Action {
    match global_handler() {
        Some(h) => h.handle(event),
        None => Action::Passthrough,
    }
}

/// Runs the global handler's post hook on an executed syscall's result.
pub fn post_global(event: &SyscallEvent, ret: u64) -> u64 {
    match global_handler() {
        Some(h) => h.post(event, ret),
        None => ret,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::PassthroughHandler;
    use syscalls::SyscallArgs;

    #[test]
    fn unregistered_defaults_to_passthrough() {
        // Note: global state — this test runs before any set in this
        // process only when filtered; tolerate either outcome.
        let mut ev = SyscallEvent::new(SyscallArgs::nullary(39));
        let _ = dispatch_global(&mut ev);
    }

    #[test]
    fn register_and_dispatch() {
        set_global_handler(Box::new(PassthroughHandler));
        assert!(global_handler().is_some());
        assert_eq!(global_handler().unwrap().name(), "passthrough");
        let mut ev = SyscallEvent::new(SyscallArgs::nullary(39));
        assert_eq!(dispatch_global(&mut ev), Action::Passthrough);
    }
}

//! Path remapping: the *deep argument inspection* capability.
//!
//! The paper's Table I separates mechanisms by expressiveness, and the
//! concrete line it draws is pointer dereference: "BPF … does not
//! allow simple operations such as dereferencing pointers" (§II-A).
//! This handler dereferences the `openat`/`open`/`stat` path pointer in
//! the interposed process's memory, compares it against a rule table,
//! and — on a match — substitutes a pointer to the replacement path,
//! transparently redirecting the file the application opens.
//!
//! The replacement pointer must stay valid until the syscall executes;
//! a per-thread buffer provides that without allocation in the hot
//! path.

use std::cell::RefCell;

use crate::{Action, InterestSet, SyscallEvent, SyscallHandler};
use syscalls::nr;

/// Maximum path length the handler will inspect.
pub const MAX_PATH: usize = 512;

/// Redirects file paths at the syscall boundary.
///
/// ```rust
/// use lp_interpose::PathRemapHandler;
///
/// let remap = PathRemapHandler::new()
///     .rule("/etc/hostname", "/tmp/fake-hostname");
/// ```
pub struct PathRemapHandler {
    rules: Vec<(Vec<u8>, Vec<u8>)>,
}

thread_local! {
    /// Replacement-path storage: must outlive the handler call, until
    /// the dispatcher has executed the rewritten syscall.
    static REPLACEMENT: RefCell<[u8; MAX_PATH]> = const { RefCell::new([0; MAX_PATH]) };
}

impl PathRemapHandler {
    /// An empty remapper (passes everything through).
    pub fn new() -> PathRemapHandler {
        PathRemapHandler { rules: Vec::new() }
    }

    /// Adds a `from` → `to` rule (exact path match).
    ///
    /// # Panics
    ///
    /// Panics if `to` exceeds [`MAX_PATH`] - 1 bytes.
    pub fn rule(mut self, from: &str, to: &str) -> PathRemapHandler {
        assert!(to.len() < MAX_PATH, "replacement path too long");
        self.rules
            .push((from.as_bytes().to_vec(), to.as_bytes().to_vec()));
        self
    }

    /// Number of rules installed.
    pub fn len(&self) -> usize {
        self.rules.len()
    }

    /// Whether no rules are installed.
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }

    /// Reads the NUL-terminated path at `ptr` (up to [`MAX_PATH`]).
    ///
    /// # Safety
    ///
    /// In-process interposition: `ptr` came out of the application's
    /// own registers and is dereferenced in the same address space, the
    /// same way the kernel would have. A wild pointer would have
    /// faulted in the kernel too; here it faults in the handler —
    /// acceptable for an in-process interposer, mirroring the C
    /// prototype. Reads stop at the first NUL or at `MAX_PATH`.
    unsafe fn read_path(ptr: u64) -> Option<Vec<u8>> {
        if ptr == 0 {
            return None;
        }
        let mut out = Vec::with_capacity(64);
        for i in 0..MAX_PATH {
            let b = *(ptr as *const u8).add(i);
            if b == 0 {
                return Some(out);
            }
            out.push(b);
        }
        None // unterminated within bounds: leave it alone
    }

    fn path_arg_index(nr_: u64) -> Option<usize> {
        match nr_ {
            nr::OPEN | nr::STAT | nr::LSTAT | nr::ACCESS | nr::READLINK | nr::CHMOD
            | nr::UNLINK | nr::TRUNCATE => Some(0),
            nr::OPENAT | nr::NEWFSTATAT | nr::UNLINKAT | nr::READLINKAT | nr::FACCESSAT
            | nr::FCHMODAT | nr::MKDIRAT | nr::STATX => Some(1),
            _ => None,
        }
    }
}

impl Default for PathRemapHandler {
    fn default() -> PathRemapHandler {
        PathRemapHandler::new()
    }
}

impl std::fmt::Debug for PathRemapHandler {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "PathRemapHandler({} rules)", self.rules.len())
    }
}

impl SyscallHandler for PathRemapHandler {
    fn handle(&self, event: &mut SyscallEvent) -> Action {
        if self.rules.is_empty() {
            return Action::Passthrough;
        }
        let Some(idx) = Self::path_arg_index(event.call.nr) else {
            return Action::Passthrough;
        };
        // SAFETY: see read_path.
        let Some(path) = (unsafe { Self::read_path(event.call.args[idx]) }) else {
            return Action::Passthrough;
        };
        for (from, to) in &self.rules {
            if &path == from {
                let new_ptr = REPLACEMENT.with(|buf| {
                    let mut buf = buf.borrow_mut();
                    buf[..to.len()].copy_from_slice(to);
                    buf[to.len()] = 0;
                    buf.as_ptr() as u64
                });
                event.call.args[idx] = new_ptr;
                break;
            }
        }
        Action::Passthrough
    }

    fn name(&self) -> &str {
        "path-remap"
    }

    /// Exactly the path-carrying syscalls [`Self::path_arg_index`]
    /// recognizes; an empty rule table never needs a call at all.
    fn interest(&self) -> InterestSet {
        if self.rules.is_empty() {
            return InterestSet::none();
        }
        InterestSet::of(&[
            nr::OPEN,
            nr::STAT,
            nr::LSTAT,
            nr::ACCESS,
            nr::READLINK,
            nr::CHMOD,
            nr::UNLINK,
            nr::TRUNCATE,
            nr::OPENAT,
            nr::NEWFSTATAT,
            nr::UNLINKAT,
            nr::READLINKAT,
            nr::FACCESSAT,
            nr::FCHMODAT,
            nr::MKDIRAT,
            nr::STATX,
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use syscalls::SyscallArgs;

    fn ev(nr_: u64, path: &std::ffi::CString, arg_idx: usize) -> SyscallEvent {
        let mut args = [0u64; 6];
        args[arg_idx] = path.as_ptr() as u64;
        SyscallEvent::new(SyscallArgs::new(nr_, args))
    }

    #[test]
    fn remaps_matching_open_path() {
        let h = PathRemapHandler::new().rule("/etc/hostname", "/tmp/other");
        let p = std::ffi::CString::new("/etc/hostname").unwrap();
        let mut e = ev(nr::OPENAT, &p, 1);
        assert_eq!(h.handle(&mut e), Action::Passthrough);
        assert_ne!(e.call.args[1], p.as_ptr() as u64, "pointer not swapped");
        // The substituted pointer reads back the replacement.
        let got = unsafe { std::ffi::CStr::from_ptr(e.call.args[1] as *const i8) };
        assert_eq!(got.to_str().unwrap(), "/tmp/other");
    }

    #[test]
    fn non_matching_paths_untouched() {
        let h = PathRemapHandler::new().rule("/etc/hostname", "/tmp/other");
        let p = std::ffi::CString::new("/etc/passwd").unwrap();
        let mut e = ev(nr::OPEN, &p, 0);
        h.handle(&mut e);
        assert_eq!(e.call.args[0], p.as_ptr() as u64);
    }

    #[test]
    fn non_path_syscalls_untouched() {
        let h = PathRemapHandler::new().rule("/a", "/b");
        let mut e = SyscallEvent::new(SyscallArgs::new(nr::READ, [3, 0x1000, 10, 0, 0, 0]));
        h.handle(&mut e);
        assert_eq!(e.call.args[1], 0x1000);
    }

    #[test]
    fn null_pointer_is_safe() {
        let h = PathRemapHandler::new().rule("/a", "/b");
        let mut e = SyscallEvent::new(SyscallArgs::new(nr::OPEN, [0, 0, 0, 0, 0, 0]));
        assert_eq!(h.handle(&mut e), Action::Passthrough);
    }

    #[test]
    fn empty_handler_is_inert() {
        let h = PathRemapHandler::new();
        assert!(h.is_empty());
        assert_eq!(h.len(), 0);
        let p = std::ffi::CString::new("/x").unwrap();
        let mut e = ev(nr::OPEN, &p, 0);
        h.handle(&mut e);
        assert_eq!(e.call.args[0], p.as_ptr() as u64);
    }
}

//! Argument-rewriting interposition.
//!
//! Exercises the mutation capability the kernel interfaces advertise
//! (paper §II-A, ptrace: "inspect and modify the syscall number,
//! arguments, and return value") on the userspace fast path.

use std::sync::atomic::{AtomicI64, Ordering};

use crate::{Action, InterestSet, SyscallEvent, SyscallHandler};
use syscalls::nr;

/// Redirects I/O syscalls aimed at one fd to another fd.
///
/// The canonical demo: silence a chatty program by redirecting its
/// stdout writes to `/dev/null`, or tee them to a log fd — without the
/// program's cooperation.
#[derive(Debug)]
pub struct FdRedirectHandler {
    from: AtomicI64,
    to: AtomicI64,
}

impl FdRedirectHandler {
    /// Redirects `from` → `to` for `write`, `writev`, `pwrite64`,
    /// `sendto` and `fsync`.
    pub fn new(from: i32, to: i32) -> FdRedirectHandler {
        FdRedirectHandler {
            from: AtomicI64::new(from as i64),
            to: AtomicI64::new(to as i64),
        }
    }

    /// Changes the mapping at runtime.
    pub fn retarget(&self, from: i32, to: i32) {
        self.from.store(from as i64, Ordering::SeqCst);
        self.to.store(to as i64, Ordering::SeqCst);
    }
}

impl SyscallHandler for FdRedirectHandler {
    fn handle(&self, event: &mut SyscallEvent) -> Action {
        let affected = matches!(
            event.call.nr,
            nr::WRITE | nr::WRITEV | nr::PWRITE64 | nr::SENDTO | nr::FSYNC
        );
        if affected && event.call.args[0] as i64 == self.from.load(Ordering::Relaxed) {
            event.call.args[0] = self.to.load(Ordering::Relaxed) as u64;
        }
        Action::Passthrough
    }

    fn name(&self) -> &str {
        "fd-redirect"
    }

    /// Exactly the five fd-carrying syscalls `handle` matches on.
    fn interest(&self) -> InterestSet {
        InterestSet::of(&[nr::WRITE, nr::WRITEV, nr::PWRITE64, nr::SENDTO, nr::FSYNC])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use syscalls::SyscallArgs;

    #[test]
    fn rewrites_matching_fd() {
        let h = FdRedirectHandler::new(1, 9);
        let mut ev = SyscallEvent::new(SyscallArgs::new(nr::WRITE, [1, 0xabc, 3, 0, 0, 0]));
        assert_eq!(h.handle(&mut ev), Action::Passthrough);
        assert_eq!(ev.call.args[0], 9);
        // Buffer/len untouched.
        assert_eq!(ev.call.args[1], 0xabc);
        assert_eq!(ev.call.args[2], 3);
    }

    #[test]
    fn leaves_other_fds_and_syscalls() {
        let h = FdRedirectHandler::new(1, 9);
        let mut other_fd = SyscallEvent::new(SyscallArgs::new(nr::WRITE, [2, 0, 0, 0, 0, 0]));
        h.handle(&mut other_fd);
        assert_eq!(other_fd.call.args[0], 2);
        let mut read = SyscallEvent::new(SyscallArgs::new(nr::READ, [1, 0, 0, 0, 0, 0]));
        h.handle(&mut read);
        assert_eq!(read.call.args[0], 1);
    }

    #[test]
    fn retarget_takes_effect() {
        let h = FdRedirectHandler::new(1, 9);
        h.retarget(2, 5);
        let mut ev = SyscallEvent::new(SyscallArgs::new(nr::WRITE, [2, 0, 0, 0, 0, 0]));
        h.handle(&mut ev);
        assert_eq!(ev.call.args[0], 5);
    }
}

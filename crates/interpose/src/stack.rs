//! Priority-ordered, runtime-mutable handler stacks.
//!
//! [`HookStack`] generalizes [`ChainHandler`](crate::ChainHandler) from
//! a build-once composition into a stack that can be **attached to and
//! detached from while syscalls are in flight**. Dispatch is lock-free:
//! the stack's entry list lives behind one `AtomicPtr` to an immutable
//! snapshot, so the hot path pays a single acquire load — mutations
//! build a new snapshot off to the side and swap it in (RCU style).
//! Replaced snapshots are intentionally leaked: a dispatch racing the
//! swap may still hold the old pointer, and — like the registry's
//! leaked handler boxes — there is no safe point to free them once
//! rewritten code sites can fire on any thread.
//!
//! # `call_next` semantics
//!
//! Entries run in priority order (higher `priority` first; ties in
//! attach order). Returning [`Action::Passthrough`] from `handle` *is*
//! the `call_next` of stackable-hook designs: control falls to the next
//! entry down. The first non-`Passthrough` decision wins and the rest
//! of the stack is skipped for that event — exactly the
//! `ChainHandler` contract, now with an ordering knob. `post` hooks run
//! in the same order, folding the return value top to bottom.
//!
//! # Interest recomputation protocol
//!
//! When a stack is installed as the process-global handler, the
//! engine's fast path filters syscalls through the *cached* interest
//! words (see [`global_interested`](crate::global_interested)) — so
//! every mutation must keep that cache consistent with the entry list
//! or a hook silently misses syscalls it asked for. The invariant:
//! **delivering an extra syscall is benign, dropping one is not** (the
//! interest set is an optimization, not a contract). Hence:
//!
//! - **Attach widens before the swap.** The cache is OR-ed with the new
//!   union *first*, then the snapshot pointer is published, then the
//!   cache is recomputed exactly. If the order were reversed, a syscall
//!   arriving between swap and recompute could be filtered out even
//!   though the new hook's entry is already live.
//! - **Detach swaps before narrowing.** The snapshot without the hook
//!   is published first; only then is the cache recomputed (narrowed).
//!   Narrowing first would filter syscalls away from a hook still
//!   visible to concurrent dispatches.
//!
//! Batch-rewrite gating needs no extra step: rewritten call sites
//! funnel into the same `interpose_syscall` decision sequence, which
//! consults the refreshed cache on every fault.

use std::sync::atomic::{AtomicPtr, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::registry;
use crate::{Action, InterestSet, SyscallEvent, SyscallHandler};

/// Identifies one attached hook for later [`HookStack::detach`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct HookId(u64);

/// Process-wide count of dynamically-loaded hook invocations (entries
/// attached via [`HookStack::attach_dynamic`]); surfaced as
/// `hook_dispatches` in mechanism stats.
static HOOK_DISPATCHES: AtomicU64 = AtomicU64::new(0);

/// Cumulative invocations of dynamically-loaded hooks since process
/// start. Mechanism guards snapshot this at install time and report the
/// delta.
pub fn hook_dispatches() -> u64 {
    HOOK_DISPATCHES.load(Ordering::Relaxed)
}

struct Entry {
    handler: Box<dyn SyscallHandler>,
    priority: i32,
    seq: u64,
    id: HookId,
    /// Loaded at runtime (counts toward `hooks_loaded`/`hook_dispatches`)
    /// rather than compiled in.
    dynamic: bool,
}

/// One immutable snapshot of the stack: the ordered entry list plus its
/// precomputed interest union. Never mutated after publication.
struct Snapshot {
    entries: Vec<Arc<Entry>>,
    interest: InterestSet,
}

impl Snapshot {
    fn empty() -> Snapshot {
        Snapshot {
            entries: Vec::new(),
            interest: InterestSet::none(),
        }
    }
}

struct Shared {
    /// Current snapshot; hot path does one acquire load. Old snapshots
    /// leak (see module docs).
    state: AtomicPtr<Snapshot>,
    /// Serializes mutations only — never touched on dispatch.
    mutate: Mutex<()>,
    next_seq: AtomicU64,
}

/// A runtime-mutable, priority-ordered stack of [`SyscallHandler`]s.
///
/// `Clone` is shallow: clones share the same stack, so one clone can be
/// installed as the global handler (via `Box<HookStack>`) while another
/// keeps attach/detach access. See the module docs for dispatch and
/// mutation semantics.
#[derive(Clone)]
pub struct HookStack {
    shared: Arc<Shared>,
}

impl HookStack {
    /// Creates an empty stack (dispatches as passthrough).
    pub fn new() -> HookStack {
        HookStack {
            shared: Arc::new(Shared {
                state: AtomicPtr::new(Box::into_raw(Box::new(Snapshot::empty()))),
                mutate: Mutex::new(()),
                next_seq: AtomicU64::new(0),
            }),
        }
    }

    fn snapshot(&self) -> &Snapshot {
        // SAFETY: snapshots are published via Box::into_raw and never
        // freed, so the pointee outlives every reader.
        unsafe { &*self.shared.state.load(Ordering::Acquire) }
    }

    /// Whether this stack (through any clone) is the installed
    /// process-global handler, and mutations must therefore keep the
    /// global interest cache in sync. Detached stacks — including
    /// chains under construction and stacks nested inside another
    /// handler — skip the cache entirely; their interest is read once
    /// at whatever point they *are* installed.
    fn is_installed(&self) -> bool {
        registry::global_handler()
            .and_then(|h| h.as_any())
            .and_then(|a| a.downcast_ref::<HookStack>())
            .is_some_and(|s| Arc::ptr_eq(&s.shared, &self.shared))
    }

    fn attach_entry(&self, handler: Box<dyn SyscallHandler>, priority: i32, dynamic: bool) -> HookId {
        let _m = self.shared.mutate.lock().unwrap();
        let seq = self.shared.next_seq.fetch_add(1, Ordering::Relaxed);
        let id = HookId(seq);
        let cur = self.snapshot();
        let mut entries = cur.entries.clone();
        entries.push(Arc::new(Entry {
            handler,
            priority,
            seq,
            id,
            dynamic,
        }));
        entries.sort_by(|a, b| b.priority.cmp(&a.priority).then(a.seq.cmp(&b.seq)));
        let interest = entries
            .iter()
            .fold(InterestSet::none(), |acc, e| acc.union(&e.handler.interest()));
        let next = Box::into_raw(Box::new(Snapshot { entries, interest }));
        if self.is_installed() {
            // Widen-before-swap (module docs): after this point the
            // cache already admits everything the new entry wants, so
            // no syscall arriving between the swap and the exact
            // recompute is filtered.
            registry::widen_global_interest(&interest);
            self.shared.state.store(next, Ordering::Release);
            registry::refresh_global_interest();
        } else {
            self.shared.state.store(next, Ordering::Release);
        }
        id
    }

    /// Attaches a compiled-in handler at `priority` (higher runs
    /// earlier; ties run in attach order). Safe while dispatches are in
    /// flight on other threads.
    pub fn attach(&self, handler: Box<dyn SyscallHandler>, priority: i32) -> HookId {
        self.attach_entry(handler, priority, false)
    }

    /// Attaches a dynamically-loaded hook (same semantics as
    /// [`HookStack::attach`], but the entry counts toward
    /// `hooks_loaded` and its invocations toward [`hook_dispatches`]).
    pub fn attach_dynamic(&self, handler: Box<dyn SyscallHandler>, priority: i32) -> HookId {
        self.attach_entry(handler, priority, true)
    }

    /// Detaches the hook identified by `id`; returns `false` if it was
    /// already gone. Detach is asynchronous with respect to concurrent
    /// dispatches: one that already loaded the old snapshot may invoke
    /// the hook a final time, so hook code must stay valid (loaded
    /// libraries are never `dlclose`d).
    pub fn detach(&self, id: HookId) -> bool {
        let _m = self.shared.mutate.lock().unwrap();
        let cur = self.snapshot();
        if !cur.entries.iter().any(|e| e.id == id) {
            return false;
        }
        let entries: Vec<Arc<Entry>> = cur
            .entries
            .iter()
            .filter(|e| e.id != id)
            .cloned()
            .collect();
        let interest = entries
            .iter()
            .fold(InterestSet::none(), |acc, e| acc.union(&e.handler.interest()));
        let next = Box::into_raw(Box::new(Snapshot { entries, interest }));
        // Swap-before-narrow (module docs): the cache keeps admitting
        // the detached hook's syscalls until the snapshot without it is
        // the one every dispatch sees.
        self.shared.state.store(next, Ordering::Release);
        if self.is_installed() {
            registry::refresh_global_interest();
        }
        true
    }

    /// Number of attached entries.
    pub fn len(&self) -> usize {
        self.snapshot().entries.len()
    }

    /// Whether the stack has no entries.
    pub fn is_empty(&self) -> bool {
        self.snapshot().entries.is_empty()
    }

    /// Number of dynamically-loaded entries currently attached — the
    /// `hooks_loaded` gauge.
    pub fn dynamic_len(&self) -> usize {
        self.snapshot().entries.iter().filter(|e| e.dynamic).count()
    }

    /// `(name, priority)` per entry in dispatch order, for reports.
    pub fn entries(&self) -> Vec<(String, i32)> {
        self.snapshot()
            .entries
            .iter()
            .map(|e| (e.handler.name().to_string(), e.priority))
            .collect()
    }
}

impl Default for HookStack {
    fn default() -> HookStack {
        HookStack::new()
    }
}

impl std::fmt::Debug for HookStack {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = self.snapshot();
        write!(
            f,
            "HookStack(len={}, dynamic={}, interest={})",
            s.entries.len(),
            s.entries.iter().filter(|e| e.dynamic).count(),
            s.interest.len()
        )
    }
}

impl SyscallHandler for HookStack {
    fn handle(&self, event: &mut SyscallEvent) -> Action {
        for e in &self.snapshot().entries {
            if e.dynamic {
                HOOK_DISPATCHES.fetch_add(1, Ordering::Relaxed);
            }
            match e.handler.handle(event) {
                Action::Passthrough => continue, // call_next
                decided => return decided,
            }
        }
        Action::Passthrough
    }

    fn post(&self, event: &SyscallEvent, ret: u64) -> u64 {
        self.snapshot()
            .entries
            .iter()
            .fold(ret, |acc, e| e.handler.post(event, acc))
    }

    fn name(&self) -> &str {
        "hook-stack"
    }

    fn interest(&self) -> InterestSet {
        self.snapshot().interest
    }

    fn as_any(&self) -> Option<&dyn std::any::Any> {
        Some(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CountHandler, PolicyBuilder};
    use syscalls::{nr, Errno, SyscallArgs};

    #[test]
    fn empty_stack_is_passthrough() {
        let s = HookStack::new();
        assert!(s.is_empty());
        assert!(s.interest().is_empty());
        let mut ev = SyscallEvent::new(SyscallArgs::nullary(nr::READ));
        assert_eq!(s.handle(&mut ev), Action::Passthrough);
        assert_eq!(s.post(&ev, 9), 9);
    }

    #[test]
    fn priority_orders_dispatch_ties_by_attach_order() {
        struct Tag(u64);
        impl SyscallHandler for Tag {
            fn handle(&self, ev: &mut SyscallEvent) -> Action {
                ev.call.args[0] = ev.call.args[0] * 10 + self.0;
                Action::Passthrough
            }
        }
        let s = HookStack::new();
        s.attach(Box::new(Tag(2)), 0);
        s.attach(Box::new(Tag(3)), 0); // same prio: after Tag(2)
        s.attach(Box::new(Tag(1)), 5); // higher prio: first
        let mut ev = SyscallEvent::new(SyscallArgs::nullary(nr::GETPID));
        s.handle(&mut ev);
        assert_eq!(ev.call.args[0], 123);
    }

    #[test]
    fn first_decision_wins_and_skips_rest() {
        let counter = CountHandler::new();
        let tail = counter.clone();
        let s = HookStack::new();
        s.attach(
            Box::new(PolicyBuilder::allow_by_default().deny(nr::EXECVE).build()),
            10,
        );
        s.attach(Box::new(counter), 0);
        let mut denied = SyscallEvent::new(SyscallArgs::nullary(nr::EXECVE));
        assert_eq!(s.handle(&mut denied), Action::Fail(Errno::EPERM));
        assert_eq!(tail.total(), 0, "decided above the counter: skipped");
        let mut allowed = SyscallEvent::new(SyscallArgs::nullary(nr::READ));
        assert_eq!(s.handle(&mut allowed), Action::Passthrough);
        assert_eq!(tail.count(nr::READ), 1);
    }

    #[test]
    fn attach_detach_update_interest_and_len() {
        let s = HookStack::new();
        let a = s.attach(
            Box::new(PolicyBuilder::allow_by_default().deny(nr::EXECVE).build()),
            0,
        );
        assert!(s.interest().contains(nr::EXECVE));
        assert!(!s.interest().contains(nr::READ));
        let b = s.attach_dynamic(Box::new(CountHandler::new()), 1);
        assert!(s.interest().is_all());
        assert_eq!((s.len(), s.dynamic_len()), (2, 1));

        assert!(s.detach(b));
        assert!(!s.detach(b), "double detach reports gone");
        assert_eq!((s.len(), s.dynamic_len()), (1, 0));
        assert!(!s.interest().contains(nr::READ), "interest narrowed back");
        assert!(s.detach(a));
        assert!(s.is_empty());
    }

    #[test]
    fn dynamic_entries_count_dispatches() {
        let s = HookStack::new();
        s.attach_dynamic(Box::new(CountHandler::new()), 0);
        let before = hook_dispatches();
        let mut ev = SyscallEvent::new(SyscallArgs::nullary(nr::GETPID));
        s.handle(&mut ev);
        s.handle(&mut ev);
        assert_eq!(hook_dispatches(), before + 2);
    }

    #[test]
    fn clones_share_state() {
        let s = HookStack::new();
        let other = s.clone();
        s.attach(Box::new(CountHandler::new()), 0);
        assert_eq!(other.len(), 1);
        assert_eq!(format!("{other:?}"), "HookStack(len=1, dynamic=0, interest=512)");
    }

    #[test]
    fn post_folds_in_priority_order() {
        struct Add(u64);
        impl SyscallHandler for Add {
            fn handle(&self, _: &mut SyscallEvent) -> Action {
                Action::Passthrough
            }
            fn post(&self, _: &SyscallEvent, ret: u64) -> u64 {
                ret * 2 + self.0
            }
        }
        let s = HookStack::new();
        s.attach(Box::new(Add(1)), 1); // runs first: 10*2+1 = 21
        s.attach(Box::new(Add(0)), 0); // then: 21*2+0 = 42
        let ev = SyscallEvent::new(SyscallArgs::nullary(nr::GETPID));
        assert_eq!(s.post(&ev, 10), 42);
    }
}

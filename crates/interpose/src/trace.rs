//! strace-like tracing without heap allocation.
//!
//! The exhaustiveness experiment (paper §V-A) uses exactly this
//! interposer: "they print the current system call with all its
//! arguments, then execute the syscall without modification".

use std::sync::atomic::{AtomicU64, Ordering};

use crate::{Action, SyscallEvent, SyscallHandler};
use syscalls::SyscallArgs;

/// Where trace lines go.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum TraceSink {
    /// Raw `write(2)` to stderr (fd 2) — allocation-free and reentrancy
    /// safe, like the C prototype's tracing interposer.
    #[default]
    Stderr,
    /// Raw `write(2)` to an arbitrary fd (e.g. a pipe to a collector).
    Fd(i32),
    /// Discard output but still count lines (for benchmarking the
    /// formatting cost alone).
    Null,
}

/// Formats one strace-like line into `buf`, returning the byte length.
///
/// Zero allocation: suitable for signal-handler context. Lines look
/// like `getpid(0x0, 0x0, 0x0, 0x0, 0x0, 0x0) @0x401234\n`.
pub fn format_syscall_line(call: &SyscallArgs, site: usize, buf: &mut [u8]) -> usize {
    let mut w = Cursor { buf, pos: 0 };
    match call.name() {
        Some(name) => w.push_str(name),
        None => {
            w.push_str("syscall_");
            w.push_u64(call.nr);
        }
    }
    w.push_str("(");
    for (i, a) in call.args.iter().enumerate() {
        if i > 0 {
            w.push_str(", ");
        }
        w.push_hex(*a);
    }
    w.push_str(")");
    if site != 0 {
        w.push_str(" @");
        w.push_hex(site as u64);
    }
    w.push_str("\n");
    w.pos
}

struct Cursor<'a> {
    buf: &'a mut [u8],
    pos: usize,
}

impl Cursor<'_> {
    fn push_byte(&mut self, b: u8) {
        if self.pos < self.buf.len() {
            self.buf[self.pos] = b;
            self.pos += 1;
        }
    }

    fn push_str(&mut self, s: &str) {
        for &b in s.as_bytes() {
            self.push_byte(b);
        }
    }

    fn push_u64(&mut self, mut v: u64) {
        let mut digits = [0u8; 20];
        let mut n = 0;
        loop {
            digits[n] = b'0' + (v % 10) as u8;
            v /= 10;
            n += 1;
            if v == 0 {
                break;
            }
        }
        for i in (0..n).rev() {
            self.push_byte(digits[i]);
        }
    }

    fn push_hex(&mut self, v: u64) {
        self.push_str("0x");
        if v == 0 {
            self.push_byte(b'0');
            return;
        }
        let mut started = false;
        for shift in (0..16).rev() {
            let nib = ((v >> (shift * 4)) & 0xf) as u8;
            if nib != 0 {
                started = true;
            }
            if started {
                self.push_byte(if nib < 10 { b'0' + nib } else { b'a' + nib - 10 });
            }
        }
    }
}

/// Prints every intercepted syscall, strace-style, then passes through.
#[derive(Debug, Default)]
pub struct TraceHandler {
    sink: TraceSink,
    lines: AtomicU64,
}

impl TraceHandler {
    /// Traces to stderr.
    pub fn new() -> TraceHandler {
        TraceHandler::with_sink(TraceSink::Stderr)
    }

    /// Traces to the given sink.
    pub fn with_sink(sink: TraceSink) -> TraceHandler {
        TraceHandler {
            sink,
            lines: AtomicU64::new(0),
        }
    }

    /// Number of lines emitted so far.
    pub fn lines(&self) -> u64 {
        self.lines.load(Ordering::Relaxed)
    }
}

impl SyscallHandler for TraceHandler {
    fn handle(&self, event: &mut SyscallEvent) -> Action {
        let mut buf = [0u8; 256];
        let len = format_syscall_line(&event.call, event.site, &mut buf);
        self.lines.fetch_add(1, Ordering::Relaxed);
        let fd = match self.sink {
            TraceSink::Stderr => 2,
            TraceSink::Fd(fd) => fd,
            TraceSink::Null => {
                return Action::Passthrough;
            }
        };
        // SAFETY: writing our stack buffer to a caller-chosen fd.
        unsafe {
            syscalls::raw::syscall3(syscalls::nr::WRITE, fd as u64, buf.as_ptr() as u64, len as u64);
        }
        Action::Passthrough
    }

    fn name(&self) -> &str {
        "trace"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use syscalls::nr;

    fn fmt(call: &SyscallArgs, site: usize) -> String {
        let mut buf = [0u8; 256];
        let n = format_syscall_line(call, site, &mut buf);
        String::from_utf8(buf[..n].to_vec()).unwrap()
    }

    #[test]
    fn formats_named_syscall() {
        let call = SyscallArgs::new(nr::WRITE, [1, 0xdead, 5, 0, 0, 0]);
        assert_eq!(fmt(&call, 0), "write(0x1, 0xdead, 0x5, 0x0, 0x0, 0x0)\n");
    }

    #[test]
    fn formats_unknown_syscall_and_site() {
        let call = SyscallArgs::nullary(500);
        assert_eq!(
            fmt(&call, 0x40_1234),
            "syscall_500(0x0, 0x0, 0x0, 0x0, 0x0, 0x0) @0x401234\n"
        );
    }

    #[test]
    fn formatting_truncates_gracefully() {
        let call = SyscallArgs::new(nr::WRITE, [u64::MAX; 6]);
        let mut tiny = [0u8; 8];
        let n = format_syscall_line(&call, usize::MAX, &mut tiny);
        assert_eq!(n, 8); // clamped to buffer
    }

    #[test]
    fn null_sink_counts_lines() {
        let h = TraceHandler::with_sink(TraceSink::Null);
        let mut ev = SyscallEvent::new(SyscallArgs::nullary(nr::GETPID));
        assert_eq!(h.handle(&mut ev), Action::Passthrough);
        assert_eq!(h.handle(&mut ev), Action::Passthrough);
        assert_eq!(h.lines(), 2);
    }

    #[test]
    fn hex_edge_cases() {
        let call = SyscallArgs::new(nr::READ, [0, u64::MAX, 0x10, 0, 0, 0]);
        let s = fmt(&call, 0);
        assert!(s.contains("0x0, 0xffffffffffffffff, 0x10"));
    }
}

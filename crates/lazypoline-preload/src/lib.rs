//! `LD_PRELOAD` shim: arm lazypoline inside *arbitrary, unmodified*
//! binaries — the paper's deployment model ("non-intrusive").
//!
//! ```sh
//! cargo build -p lazypoline-preload --release
//! LAZYPOLINE_MODE=count LAZYPOLINE_STATS=1 \
//!   LD_PRELOAD=target/release/liblazypoline_preload.so  ls -l
//! ```
//!
//! Environment knobs:
//!
//! | Variable | Values | Effect |
//! |---|---|---|
//! | `LAZYPOLINE_MODE` | `passthrough` (default), `trace`, `count` | interposer choice |
//! | `LAZYPOLINE_XSTATE` | `avx` (default), `sse`, `x87`, `none` | extended-state preservation (paper §IV-B(b)) |
//! | `LAZYPOLINE_STATS` | `1` | dump engine counters at exit |
//! | `LAZYPOLINE_FAULTS` | `site:schedule[:ERRNO],…` | arm fault-injection seams (testing only) |
//! | `LP_HOOKS` | `lib.so[:prio],…` | dlopen `lp_hook_v1` hook libraries into a runtime stack around the mode handler |
//!
//! `LP_HOOKS` is the execve-propagation story for runtime hook stacks:
//! loaded libraries don't survive an `execve`, but the environment does
//! — a preloaded shim in the new image re-reads the same variable and
//! reloads the same hook set before `main`. Paths with a `/` are passed
//! to `dlopen` verbatim; prefer absolute paths here, since the
//! preloaded process's working directory and `current_exe` are the
//! *application's*, not the build tree's. A hook that fails to load
//! disables the whole `LP_HOOKS` set (with a diagnostic) rather than
//! running a partial policy stack.
//!
//! `LAZYPOLINE_FAULTS` (e.g. `trampoline_install:first=1` or
//! `patch_mprotect:every=3:EAGAIN`) arms the engine's built-in fault
//! seams before initialization; the engine then *degrades* instead of
//! failing — `trampoline_install` forces `Mode::SudOnly`, `sud_enroll`
//! forces `Mode::PrescanOnly`, and patch faults exercise the retry and
//! page-blocklist machinery. The resulting mode and robustness counters
//! are visible programmatically via `lazypoline::health()` and in the
//! `LAZYPOLINE_STATS=1` dump. Sites: `trampoline_install`,
//! `patch_mprotect`, `sud_enroll`, `selector_write`,
//! `slowpath_emulate`; schedules: `nth=N`, `every=N`, `first=K`.
//!
//! The constructor runs from `.init_array` before `main`, so every
//! syscall the application itself makes is interposed. Syscalls made
//! by the dynamic loader *before* our constructor are inherently out of
//! reach — the same holds for the C prototype.

use std::sync::atomic::{AtomicPtr, Ordering};

use interpose::{CountHandler, PassthroughHandler, SyscallHandler, TraceHandler, TraceSink};
use lazypoline::{Config, XstateMask};

static COUNTER: AtomicPtr<CountHandler> = AtomicPtr::new(std::ptr::null_mut());

/// Hooks loaded from `LP_HOOKS` at init (0 when unset); drives the
/// hooks section of the stats dump.
static HOOKS_LOADED: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);

/// Private dup of stderr taken at init: programs like coreutils close
/// fd 2 in their own atexit handlers, which run *before* ours (LIFO),
/// so stats must go to a descriptor the application cannot reach.
static STATS_FD: std::sync::atomic::AtomicI32 = std::sync::atomic::AtomicI32::new(2);

/// The constructor entry registered in `.init_array`.
///
/// # Safety
///
/// Called once by the dynamic loader during process startup.
unsafe extern "C" fn preload_ctor() {
    let mode = std::env::var("LAZYPOLINE_MODE").unwrap_or_default();
    let xstate = match std::env::var("LAZYPOLINE_XSTATE").as_deref() {
        Ok("none") => XstateMask::None,
        Ok("x87") => XstateMask::X87,
        Ok("sse") => XstateMask::Sse,
        _ => XstateMask::Avx,
    };

    let handler: Box<dyn SyscallHandler> = match mode.as_str() {
        "trace" => Box::new(TraceHandler::with_sink(TraceSink::Stderr)),
        "count" => {
            let leaked: &'static CountHandler = Box::leak(Box::new(CountHandler::new()));
            COUNTER.store(leaked as *const _ as *mut _, Ordering::SeqCst);
            struct Fwd(&'static CountHandler);
            impl SyscallHandler for Fwd {
                fn handle(&self, ev: &mut interpose::SyscallEvent) -> interpose::Action {
                    self.0.handle(ev)
                }
                fn name(&self) -> &str {
                    "count"
                }
            }
            Box::new(Fwd(leaked))
        }
        _ => Box::new(PassthroughHandler),
    };

    // LP_HOOKS: wrap the mode handler in a runtime hook stack and load
    // every named library around it (mode handler anchors priority 0).
    let handler: Box<dyn SyscallHandler> = match std::env::var("LP_HOOKS") {
        Ok(spec) if !spec.is_empty() => match hookabi::load_from_spec(&spec) {
            Ok(loaded) => {
                let stack = interpose::HookStack::new();
                stack.attach(handler, 0);
                for hook in loaded {
                    let prio = hook.priority();
                    stack.attach_dynamic(Box::new(hook), prio);
                }
                HOOKS_LOADED.store(stack.dynamic_len() as u64, Ordering::SeqCst);
                Box::new(stack)
            }
            Err(e) => {
                // All-or-nothing: a partial policy stack is worse than
                // none, so one bad spec entry disables the whole set.
                eprintln!("lazypoline-preload: LP_HOOKS disabled ({e})");
                handler
            }
        },
        _ => handler,
    };
    interpose::set_global_handler(handler);

    let config = Config {
        xstate,
        ..Config::default()
    };
    match lazypoline::init(config) {
        Ok(engine) => {
            // The engine must outlive main; prevent the drop-unenroll.
            std::mem::forget(engine);
            if std::env::var("LAZYPOLINE_STATS").as_deref() == Ok("1") {
                let fd = libc::fcntl(2, libc::F_DUPFD_CLOEXEC, 700);
                if fd >= 0 {
                    STATS_FD.store(fd, Ordering::SeqCst);
                }
                libc::atexit(dump_stats);
            }
        }
        Err(e) => {
            eprintln!("lazypoline-preload: disabled ({e})");
        }
    }
}

extern "C" fn dump_stats() {
    let fd = STATS_FD.load(Ordering::SeqCst);
    let mut out = String::new();
    let h = lazypoline::health();
    let s = h.stats;
    out.push_str("-- lazypoline stats --\n");
    out.push_str(&format!("mode                     : {:?}\n", h.mode));
    out.push_str(&format!("slow-path (SIGSYS) trips : {}\n", s.slow_path_hits));
    out.push_str(&format!("sites lazily rewritten   : {}\n", s.sites_patched));
    out.push_str(&format!("dispatcher invocations   : {}\n", s.dispatches));
    out.push_str(&format!("unpatchable emulations   : {}\n", s.unpatchable_emulations));
    out.push_str(&format!("disabled-mode emulations : {}\n", s.disabled_mode_emulations));
    out.push_str(&format!("signals wrapped          : {}\n", s.signals_wrapped));
    // Robustness lines appear only when something actually degraded,
    // keeping the healthy-path dump short.
    if s.patch_retries + s.pages_blocklisted + s.quarantined_handlers + h.faults_injected > 0 {
        out.push_str(&format!("patch retries            : {}\n", s.patch_retries));
        out.push_str(&format!("pages blocklisted        : {}\n", s.pages_blocklisted));
        out.push_str(&format!("handlers quarantined     : {}\n", s.quarantined_handlers));
        out.push_str(&format!("faults injected          : {}\n", h.faults_injected));
    }
    let hooks = HOOKS_LOADED.load(Ordering::SeqCst);
    if hooks > 0 {
        out.push_str(&format!("hooks loaded             : {hooks}\n"));
        out.push_str(&format!(
            "hook dispatches          : {}\n",
            interpose::hook_dispatches()
        ));
    }
    let counter = COUNTER.load(Ordering::SeqCst);
    if !counter.is_null() {
        out.push_str("-- top syscalls --\n");
        // SAFETY: set once from a leaked box.
        for (nr, count) in unsafe { &*counter }.top().into_iter().take(15) {
            out.push_str(&format!(
                "{:>10}  {}\n",
                count,
                syscalls::nr::name(nr).unwrap_or("?")
            ));
        }
    }
    // SAFETY: writing an owned buffer to our private fd.
    unsafe {
        libc::write(fd, out.as_ptr() as *const libc::c_void, out.len());
    }
}

#[used]
#[link_section = ".init_array"]
static PRELOAD_CTOR: unsafe extern "C" fn() = preload_ctor;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ctor_is_registered() {
        // The static must survive to link time with the right type.
        let f: unsafe extern "C" fn() = PRELOAD_CTOR;
        assert_eq!(f as usize, preload_ctor as *const () as usize);
    }
}

//! Negative cache of unpatchable code pages.
//!
//! When a page's `mprotect` window keeps failing (hardened mapping,
//! sealed memory, injected fault), re-attempting the rewrite on every
//! `SIGSYS` to that page would pay the spinlock + `/proc/self/maps`
//! walk + failed `mprotect` on every single trip. This table remembers
//! such pages so the slow path goes straight to emulation — turning a
//! persistent failure into the same steady-state cost as the pure-SUD
//! configuration.
//!
//! Constraints (the table is consulted and filled from the `SIGSYS`
//! handler):
//!
//! * **Async-signal-safe, lock-free**: a fixed static array of
//!   `AtomicUsize` page addresses, CAS insertion, linear-scan lookup.
//!   No allocation, ever.
//! * **Fill-forward**: slots are claimed in order, so a lookup can stop
//!   at the first empty slot. Two racing inserts both scan from the
//!   front; the CAS loser re-examines the observed value and moves on.
//! * **Bounded**: [`CAPACITY`] entries. A full table only means later
//!   unpatchable pages fall back to re-attempting the patch per trip —
//!   a perf regression, never a correctness one.
//! * **No invalidation**: entries outlive `munmap`. A stale entry makes
//!   a *recycled* page address emulate instead of patch — again purely
//!   a perf effect, and one the paper's own one-way-rewriting design
//!   already accepts in spirit. (Page address 0 can never need
//!   blocklisting — it is the trampoline — so 0 doubles as the empty
//!   marker.)

use std::sync::atomic::{AtomicUsize, Ordering};

/// Maximum number of pages remembered. Processes with more than this
/// many *distinct* unpatchable pages are pathological; the table
/// saturating is safe (see module docs).
pub(crate) const CAPACITY: usize = 64;

static PAGES: [AtomicUsize; CAPACITY] = [const { AtomicUsize::new(0) }; CAPACITY];

/// Whether `page` (page-aligned address) is blocklisted.
#[inline]
pub(crate) fn contains(page: usize) -> bool {
    for slot in &PAGES {
        match slot.load(Ordering::Acquire) {
            0 => return false, // slots fill in order: nothing beyond
            p if p == page => return true,
            _ => {}
        }
    }
    false
}

/// Inserts `page` (page-aligned address). Returns `true` if this call
/// added it, `false` if it was already present or the table is full.
pub(crate) fn insert(page: usize) -> bool {
    debug_assert_eq!(page & 4095, 0);
    if page == 0 {
        return false;
    }
    for slot in &PAGES {
        let cur = slot.load(Ordering::Acquire);
        if cur == page {
            return false;
        }
        if cur == 0 {
            match slot.compare_exchange(0, page, Ordering::AcqRel, Ordering::Acquire) {
                Ok(_) => return true,
                Err(actual) if actual == page => return false,
                Err(_) => {} // racer claimed this slot; try the next
            }
        }
    }
    false
}

/// Number of blocklisted pages.
pub(crate) fn len() -> usize {
    PAGES
        .iter()
        .take_while(|s| s.load(Ordering::Acquire) != 0)
        .count()
}

#[cfg(test)]
mod tests {
    use super::*;

    // The table is process-global and append-only, so these tests use
    // addresses no real page can alias and assert on deltas.

    #[test]
    fn insert_and_contains() {
        let page = 0xdead_b000usize;
        assert!(!contains(page));
        assert!(insert(page));
        assert!(contains(page));
        // Duplicate insert is refused.
        assert!(!insert(page));
    }

    #[test]
    fn zero_is_never_inserted() {
        assert!(!insert(0));
        assert!(!contains(0));
        // len() only counts claimed slots (and tests run concurrently,
        // so just bound it).
        assert!(len() <= CAPACITY);
    }

    #[test]
    fn concurrent_inserts_land_exactly_once() {
        let base = 0xcafe_0000usize;
        let threads: Vec<_> = (0..8)
            .map(|t| {
                std::thread::spawn(move || {
                    let mut added = 0usize;
                    for i in 0..4 {
                        // All threads fight over the same 4 pages.
                        if insert(base + ((t + i) % 4) * 4096) {
                            added += 1;
                        }
                    }
                    added
                })
            })
            .collect();
        let total: usize = threads.into_iter().map(|t| t.join().unwrap()).sum();
        assert_eq!(total, 4, "each page must be inserted exactly once");
        for i in 0..4 {
            assert!(contains(base + i * 4096));
        }
    }
}

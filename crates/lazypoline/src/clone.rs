//! `clone`/`fork`/`vfork` interposition (paper §IV-B(a)).
//!
//! SUD is per-task and the kernel deactivates it on every `fork`,
//! `clone`, and `execve`, so new tasks must re-enroll to stay
//! interposed. Three shapes:
//!
//! * **`fork`-like** (no new stack): the child resumes inside the
//!   dispatcher on a copy-on-write copy of the parent stack; we simply
//!   re-enroll before returning 0 to the application.
//! * **thread-like `clone`** (new stack, `CLONE_VM | CLONE_SETTLS`):
//!   the child cannot return through the dispatcher (its registers and
//!   stack no longer describe this call chain), so we seed the child
//!   stack with a start shim that enrolls the new thread and then
//!   `ret`s to the application's own continuation address — the return
//!   address the `call rax` captured in [`RawFrame::ret_addr`].
//! * **`vfork`**: downgraded to `fork` (the classic interposer
//!   approach — vfork's suspended-parent/shared-stack semantics cannot
//!   survive an intervening function frame). POSIX-compliant callers
//!   only `execve`/`_exit` in the child, for which fork semantics are
//!   a strict superset.
//!
//! Raw `clone` with a new stack but **without** `CLONE_SETTLS` gets a
//! plain continuation (no enrollment): the child would share the
//! parent's TLS, so enrolling it would alias the parent's selector
//! byte. Such children run uninterposed until they enroll themselves —
//! a documented deviation (the C prototype maps a fresh `%gs` region
//! instead).

use syscalls::{nr, SyscallArgs};
use zpoline::RawFrame;

use crate::raw_internal;

const SIG_UNBLOCK: u64 = 1;

const CLONE_VM: u64 = 0x100;
const CLONE_VFORK: u64 = 0x4000;
const CLONE_SETTLS: u64 = 0x0008_0000;

/// Bounded attempts when re-enabling SUD on a fresh task. The kernel
/// supported SUD a moment ago (the parent dispatched this very clone),
/// so a failure here is transient by construction — worth a couple of
/// immediate re-attempts before accepting degradation.
const ENROLL_ATTEMPTS: u32 = 3;

/// [`sud::enable_thread`] with bounded retry; returns whether SUD is
/// enabled when it gives up.
fn enable_thread_with_retry() -> bool {
    for _ in 0..ENROLL_ATTEMPTS {
        if sud::enable_thread().is_ok() {
            return true;
        }
        std::hint::spin_loop();
    }
    false
}

/// Re-enrolls the current task after the kernel cleared its SUD state.
///
/// Called in fork children (from dispatcher context, selector ALLOW —
/// the dispatcher exit path re-BLOCKs) and from the clone-child shim.
pub(crate) fn reenroll_after_clone() {
    // Hardened mode: the fresh task starts with its PKRU at the
    // kernel's init value (slab writable) — close it before the first
    // dispatch so the selector is protected again.
    crate::harden::rearm_after_clone();
    if crate::tls::enrolled() {
        // After the bounded retry, ignore failure: the task degrades to
        // uninterposed rather than dying.
        let _ = enable_thread_with_retry();
    }
}

/// `fork`/`vfork` (and `clone` without a new stack).
pub(crate) unsafe fn handle_fork(_frame: &mut RawFrame) -> u64 {
    // vfork → fork downgrade (see module docs).
    let ret = raw_internal::syscall(SyscallArgs::nullary(nr::FORK));
    if ret == 0 {
        reenroll_after_clone();
    }
    ret
}

/// `clone` in all its shapes.
pub(crate) unsafe fn handle_clone(frame: &mut RawFrame) -> u64 {
    let flags = frame.a1;
    let child_stack = frame.a2;

    if child_stack == 0 {
        // fork-like: child continues in this dispatcher frame (CoW or
        // shared stack with CLONE_VFORK semantics handled by caller).
        let ret = raw_internal::syscall(frame.syscall_args());
        if ret == 0 {
            reenroll_after_clone();
        }
        return ret;
    }

    // New-stack clone: seed the child stack so the child lands on the
    // application continuation without unwinding our Rust frames.
    //
    // Enrollment: a fresh TLS block (CLONE_SETTLS) always gets its own
    // selector. A vfork-style child (CLONE_VM | CLONE_VFORK, the
    // posix_spawn pattern) shares the parent's TLS, but the parent is
    // suspended until the child execs or exits, so briefly sharing the
    // selector byte is safe — and necessary to interpose the child's
    // pre-exec syscalls (including the execve itself).
    let enroll = flags & CLONE_SETTLS != 0
        || (flags & CLONE_VM != 0 && flags & CLONE_VFORK != 0);
    let vm = flags & CLONE_VM != 0;

    let (new_sp, _slots) = if enroll {
        // [new_sp] = shim, [new_sp+8] = app continuation.
        let sp = (child_stack - 16) as *mut u64;
        sp.write(lp_clone_child_shim as *const () as usize as u64);
        sp.add(1).write(frame.ret_addr);
        (sp as u64, 2)
    } else {
        // [new_sp] = app continuation only.
        let sp = (child_stack - 8) as *mut u64;
        sp.write(frame.ret_addr);
        (sp as u64, 1)
    };

    if !vm {
        // New stack without shared VM: the child gets a CoW copy, and
        // both sides can safely run the generic path — but the child
        // still must not unwind our frames, so use the asm path too.
    }

    clone_asm(frame.nr, flags, new_sp, frame.a3, frame.a4, frame.a5)
}

/// Issues `clone` such that the child immediately `ret`s into the
/// seeded stack instead of resuming in Rust code.
///
/// The child executes exactly two instructions here (`test`, `jnz`
/// fall-through, `ret`), abandoning this Rust frame — which is sound
/// because nothing on it is ever observed again by the child.
unsafe fn clone_asm(nr: u64, flags: u64, new_sp: u64, ptid: u64, ctid: u64, tls: u64) -> u64 {
    let ret: u64;
    core::arch::asm!(
        "syscall",
        "test rax, rax",
        "jnz 2f",
        "ret", // child: into shim or app continuation
        "2:",
        inlateout("rax") nr => ret,
        in("rdi") flags,
        in("rsi") new_sp,
        in("rdx") ptid,
        in("r10") ctid,
        in("r8") tls,
        out("rcx") _,
        out("r11") _,
    );
    ret
}

// Child-start shim: enrolls the fresh thread (its TLS block was just
// installed via CLONE_SETTLS) and continues to the application with
// rax = 0 and rsp exactly where the application expects it.
std::arch::global_asm!(
    r#"
    .text
    .globl lp_clone_child_shim
    .type lp_clone_child_shim, @function
lp_clone_child_shim:
    # rsp → [app continuation]; rax = 0 (we are the child).
    call lp_clone_child_init@PLT
    xor eax, eax
    ret
    .size lp_clone_child_shim, . - lp_clone_child_shim
"#
);

extern "C" {
    fn lp_clone_child_shim();
}

/// Rust side of the child-start shim.
#[no_mangle]
unsafe extern "C" fn lp_clone_child_init() {
    // The parent was enrolled (it dispatched this clone). A fresh TLS
    // block (CLONE_SETTLS) says "not enrolled" — inherit the parent's
    // decision. A vfork-style child *shares* the parent's TLS, which at
    // this point still carries the parent's dispatcher re-entrancy
    // guard; clear it, or every child syscall would take the raw
    // passthrough path. (Safe: the parent is suspended until the child
    // execs or exits, and restores its own guard on dispatcher exit.)
    crate::tls::set_in_dispatch(false);
    crate::tls::set_enrolled(true);
    // The clone may have been emulated *inside the SIGSYS handler*
    // (pure-SUD configuration, or the SudOnly degradation rung), in
    // which case this child inherited a signal mask with SIGSYS blocked
    // — and, unlike a fork-like child, it never travels through a
    // sigreturn that would restore the pre-handler mask. A blocked
    // SIGSYS turns the first intercepted syscall into a straight kill,
    // so unblock it unconditionally before arming the selector.
    let sigsys_mask: u64 = 1 << (libc::SIGSYS as u64 - 1);
    raw_internal::syscall(SyscallArgs::new(
        nr::RT_SIGPROCMASK,
        [
            SIG_UNBLOCK,
            &sigsys_mask as *const u64 as u64,
            0,
            8,
            0,
            0,
        ],
    ));
    // Hardened mode: adopt a protected selector slot for this fresh
    // thread (its own cache line on the pkey slab) and close the slab
    // before arming, mirroring the parent's enrollment.
    if sud::pkey::slab_ready() {
        let _ = sud::adopt_protected_selector();
    }
    crate::harden::rearm_after_clone();
    if enable_thread_with_retry() {
        sud::set_selector(sud::Dispatch::Block);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clone_flag_constants_match_linux() {
        assert_eq!(CLONE_VM, libc::CLONE_VM as u64);
        assert_eq!(CLONE_SETTLS, libc::CLONE_SETTLS as u64);
    }

    #[test]
    fn fork_like_clone_roundtrip() {
        // Exercise handle_fork end-to-end: child exits immediately,
        // parent waits. (No SUD active in this unit test; the re-enroll
        // path is a no-op because the thread is not enrolled.)
        unsafe {
            let mut frame = RawFrame {
                nr: nr::FORK,
                a1: 0,
                a2: 0,
                a3: 0,
                a4: 0,
                a5: 0,
                a6: 0,
                saved_rbx: 0,
                saved_rbp: 0,
                ret_addr: 0,
            };
            let pid = handle_fork(&mut frame);
            if pid == 0 {
                // child
                libc::_exit(42);
            }
            let mut status = 0;
            libc::waitpid(pid as i32, &mut status, 0);
            assert!(libc::WIFEXITED(status));
            assert_eq!(libc::WEXITSTATUS(status), 42);
        }
    }

    #[test]
    fn thread_like_clone_runs_continuation() {
        // Hand-rolled thread: a tiny continuation that stores a flag
        // and exits the thread. We pass CLONE_SETTLS=false so the shim
        // is skipped (plain continuation path) — the child shares our
        // TLS and must not touch it.
        use std::sync::atomic::{AtomicU64, Ordering};
        static FLAG: AtomicU64 = AtomicU64::new(0);

        unsafe extern "C" fn child_body() -> ! {
            FLAG.store(7, Ordering::SeqCst);
            // exit(0) — thread exit, not process exit (no EXIT_GROUP).
            syscalls::raw::syscall1(nr::EXIT, 0);
            std::hint::unreachable_unchecked()
        }

        unsafe {
            let stack = libc::mmap(
                std::ptr::null_mut(),
                64 * 1024,
                libc::PROT_READ | libc::PROT_WRITE,
                libc::MAP_PRIVATE | libc::MAP_ANONYMOUS | libc::MAP_STACK,
                -1,
                0,
            );
            assert_ne!(stack, libc::MAP_FAILED);
            let stack_top = (stack as usize + 64 * 1024) & !15;

            let flags = (libc::CLONE_VM | libc::CLONE_FS | libc::CLONE_FILES | libc::CLONE_SIGHAND
                | libc::CLONE_THREAD) as u64;
            let mut frame = RawFrame {
                nr: nr::CLONE,
                a1: flags,
                a2: stack_top as u64,
                a3: 0,
                a4: 0,
                a5: 0,
                a6: 0,
                saved_rbx: 0,
                saved_rbp: 0,
                ret_addr: child_body as *const () as usize as u64,
            };
            let tid = handle_clone(&mut frame);
            assert!(
                (tid as i64) > 0,
                "clone failed: {:?}",
                syscalls::Errno::from_ret(tid)
            );
            // Wait for the child to set the flag.
            for _ in 0..10_000 {
                if FLAG.load(Ordering::SeqCst) == 7 {
                    break;
                }
                std::thread::yield_now();
            }
            assert_eq!(FLAG.load(Ordering::SeqCst), 7);
        }
    }
}

//! Engine-wide event counters (exposed via [`crate::Stats`]).

use std::sync::atomic::{AtomicU64, Ordering};

/// Slow-path (`SIGSYS`) deliveries.
pub(crate) static SLOW_PATH_HITS: AtomicU64 = AtomicU64::new(0);
/// Syscall sites rewritten to `call rax`.
pub(crate) static SITES_PATCHED: AtomicU64 = AtomicU64::new(0);
/// Syscalls that reached the dispatcher (fast path + re-executed slow
/// path + emulated-unpatchable).
pub(crate) static DISPATCHES: AtomicU64 = AtomicU64::new(0);
/// Syscalls emulated directly in the SIGSYS handler because the site
/// could not be patched.
pub(crate) static UNPATCHABLE_EMULATIONS: AtomicU64 = AtomicU64::new(0);
/// Application signal-handler invocations routed through the wrapper.
pub(crate) static SIGNALS_WRAPPED: AtomicU64 = AtomicU64::new(0);

pub(crate) fn bump(counter: &AtomicU64) {
    counter.fetch_add(1, Ordering::Relaxed);
}

pub(crate) fn get(counter: &AtomicU64) -> u64 {
    counter.load(Ordering::Relaxed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bump_and_get() {
        static C: AtomicU64 = AtomicU64::new(0);
        bump(&C);
        bump(&C);
        assert_eq!(get(&C), 2);
    }
}

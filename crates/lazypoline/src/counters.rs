//! Engine-wide event counters (exposed via [`crate::Stats`]).
//!
//! Counters are *sharded per thread*: every thread bumps its own
//! cache-line-sized slot, and readers aggregate across slots. The
//! previous design (one global `AtomicU64` per counter) put every
//! dispatching thread's `lock xadd` on the same cache line — on the
//! fast path that contended line was charged once per syscall, which
//! is exactly the kind of overhead the paper's design works to
//! eliminate. Shards make the common case a local, uncontended RMW.
//!
//! Constraints honoured here:
//!
//! * **Async-signal-safe**: `bump` runs inside the `SIGSYS` handler
//!   and the signal wrapper. Shard storage is a static array (no
//!   allocation, ever) and the thread→shard assignment uses a
//!   const-initialized TLS cell (plain TLS read, no lazy init
//!   machinery).
//! * **Fixed memory**: 64 shards regardless of thread count; threads
//!   beyond 64 share shards round-robin, which only means some lines
//!   are contended again — never lost counts.
//! * **API shape**: `Stats` aggregates on read; totals are exact once
//!   writers quiesce (relaxed increments are still atomic per slot).

use std::cell::Cell;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

/// One engine event stream, identified by its slot index within a
/// shard. The statics below are the only instances.
pub(crate) struct Counter(usize);

/// Slow-path (`SIGSYS`) deliveries.
pub(crate) static SLOW_PATH_HITS: Counter = Counter(0);
/// Syscall sites rewritten to `call rax`.
pub(crate) static SITES_PATCHED: Counter = Counter(1);
/// Syscalls that reached the dispatcher (fast path + re-executed slow
/// path + emulated-unpatchable).
pub(crate) static DISPATCHES: Counter = Counter(2);
/// Syscalls emulated directly in the SIGSYS handler because the site
/// could not be patched.
pub(crate) static UNPATCHABLE_EMULATIONS: Counter = Counter(3);
/// Application signal-handler invocations routed through the wrapper.
pub(crate) static SIGNALS_WRAPPED: Counter = Counter(4);
/// Retries of a patch attempt after a transient `mprotect` failure
/// (`EAGAIN`/`ENOMEM`) in the slow path.
pub(crate) static PATCH_RETRIES: Counter = Counter(5);
/// Pages inserted into the unpatchable-page blocklist after persistent
/// patch failure.
pub(crate) static PAGES_BLOCKLISTED: Counter = Counter(6);
/// Syscalls emulated in the handler because lazy rewriting is disabled
/// (pure-SUD configuration or `Mode::SudOnly` degradation) — a config
/// state, distinct from [`UNPATCHABLE_EMULATIONS`] failures.
pub(crate) static DISABLED_MODE_EMULATIONS: Counter = Counter(7);

// Exactly 8 counters: one cache line per shard (the layout unit test
// asserts this). A 9th counter would double every shard — split a new
// event stream into a second shard array instead.
const NUM_COUNTERS: usize = 8;
const NUM_SHARDS: usize = 64;

/// One thread's slots for all the counters, padded to a cache line so
/// two threads' shards never false-share.
#[repr(align(64))]
struct Shard {
    slots: [AtomicU64; NUM_COUNTERS],
}

static SHARDS: [Shard; NUM_SHARDS] = [const {
    Shard {
        slots: [const { AtomicU64::new(0) }; NUM_COUNTERS],
    }
}; NUM_SHARDS];

/// Round-robin shard assignment for new threads.
static NEXT_SHARD: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    /// This thread's shard index; `usize::MAX` = not yet assigned.
    /// Const-initialized so the first access — possibly from a signal
    /// handler — performs no lazy initialization.
    static SHARD_IDX: Cell<usize> = const { Cell::new(usize::MAX) };
}

#[inline]
fn shard_index() -> usize {
    SHARD_IDX.with(|c| {
        let cached = c.get();
        if cached != usize::MAX {
            return cached;
        }
        // A signal interrupting between the fetch_add and the set can
        // at worst burn an extra index — assignment stays valid.
        let idx = NEXT_SHARD.fetch_add(1, Ordering::Relaxed) % NUM_SHARDS;
        c.set(idx);
        idx
    })
}

/// Adds one to `counter` on the calling thread's shard.
#[inline]
pub(crate) fn bump(counter: &Counter) {
    SHARDS[shard_index()].slots[counter.0].fetch_add(1, Ordering::Relaxed);
}

/// Adds `n` to `counter` on the calling thread's shard (bulk events,
/// e.g. a static prescan reporting how many sites it rewrote).
#[inline]
pub(crate) fn add(counter: &Counter, n: u64) {
    SHARDS[shard_index()].slots[counter.0].fetch_add(n, Ordering::Relaxed);
}

/// Sums `counter` across all shards. Exact once writers quiesce;
/// during concurrent bumping it is a momentary snapshot, same as the
/// old single-atomic read.
pub(crate) fn get(counter: &Counter) -> u64 {
    SHARDS
        .iter()
        .map(|s| s.slots[counter.0].load(Ordering::Relaxed))
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bump_and_get() {
        // Tests share the process-global counters, so assert on deltas.
        let before = get(&SIGNALS_WRAPPED);
        bump(&SIGNALS_WRAPPED);
        bump(&SIGNALS_WRAPPED);
        assert_eq!(get(&SIGNALS_WRAPPED), before + 2);
    }

    #[test]
    fn shards_aggregate_across_threads() {
        let before = get(&UNPATCHABLE_EMULATIONS);
        let threads: Vec<_> = (0..8)
            .map(|_| {
                std::thread::spawn(|| {
                    for _ in 0..1000 {
                        bump(&UNPATCHABLE_EMULATIONS);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(get(&UNPATCHABLE_EMULATIONS), before + 8 * 1000);
    }

    #[test]
    fn shard_layout_is_cache_line_sized() {
        assert_eq!(std::mem::align_of::<Shard>(), 64);
        assert_eq!(std::mem::size_of::<Shard>(), 64);
    }

    #[test]
    fn thread_shard_is_stable_within_a_thread() {
        let a = shard_index();
        let b = shard_index();
        assert_eq!(a, b);
        assert!(a < NUM_SHARDS);
    }
}

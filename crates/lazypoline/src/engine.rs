//! Engine assembly: wires the trampoline, dispatcher, SIGSYS handler,
//! signal adoption, and per-thread enrollment together — with a
//! degradation ladder instead of all-or-nothing initialization.
//!
//! # Degradation ladder
//!
//! The paper's central claim is interposition *without compromise*; a
//! production engine must additionally not make the *process* pay for
//! the engine's own misfortune. [`init`] therefore degrades instead of
//! failing when one of its two mechanisms is unavailable:
//!
//! | trampoline | SUD | resulting [`Mode`] |
//! |---|---|---|
//! | ok | ok | [`Mode::Hybrid`] — the full design |
//! | failed | ok | [`Mode::SudOnly`] — every syscall emulated in the `SIGSYS` handler; exhaustiveness preserved, speed sacrificed |
//! | ok | failed | [`Mode::PrescanOnly`] — statically rewritten regions dispatch; exhaustiveness sacrificed (no discovery of new sites) |
//! | failed | failed | clean [`InitError`]; the process runs un-interposed |
//!
//! The active mode and the robustness counters are observable via
//! [`health`].

use std::fmt;
use std::io;
use std::sync::atomic::{AtomicBool, AtomicU8, Ordering};
use std::sync::Once;

use zpoline::{Trampoline, XstateMask};

use crate::counters;
use crate::{blocklist, fastpath, signals, slowpath, tls};

/// Configuration for [`init`].
#[derive(Clone, Copy, Debug)]
pub struct Config {
    /// Which extended-state components the fast path preserves around
    /// the handler (paper §IV-B(b); Table II benchmarks both
    /// `Avx` — full preservation, the default — and `None`).
    pub xstate: XstateMask,
    /// Re-route signal handlers registered *before* initialization
    /// through the wrapper protocol (recommended; see §IV-B(c)).
    pub adopt_existing_signal_handlers: bool,
    /// Enable the lazy rewriting fast path (default). Disabling turns
    /// the engine into a pure SUD interposer: every intercepted
    /// syscall takes the SIGSYS slow path and is emulated in the
    /// handler — the "SUD" baseline of Table II and Figure 5, and the
    /// ablation isolating the paper's core contribution.
    pub lazy_rewriting: bool,
    /// On a slow-path trip, rewrite *all* verifiable `syscall` sites on
    /// the faulting executable page under a single spinlock/`mprotect`
    /// window, not just the faulting site (default on). Amortizes the
    /// per-site rewrite cost and converts neighbouring sites' future
    /// `SIGSYS` deliveries into fast-path entries. Turn off to ablate
    /// batching: `SLOW_PATH_HITS` then rises to one per site while
    /// `SITES_PATCHED` stays the same.
    pub batch_rewriting: bool,
    /// Statically pre-scan and rewrite the executable regions whose
    /// path satisfies common safety filters before enabling SUD. This
    /// makes the very first executions of known sites take the fast
    /// path (zpoline-style priming); purely an optimization — the slow
    /// path catches everything regardless. Off by default because
    /// static disassembly is heuristic (§II-B).
    pub static_prescan: bool,
}

impl Default for Config {
    fn default() -> Config {
        Config {
            xstate: XstateMask::Avx,
            adopt_existing_signal_handlers: true,
            lazy_rewriting: true,
            batch_rewriting: true,
            static_prescan: false,
        }
    }
}

/// Why [`init`] failed outright (every rung of the degradation ladder
/// exhausted, or a per-thread step failed). The process is left
/// un-interposed but otherwise intact when any of these is returned.
#[derive(Debug)]
pub enum InitError {
    /// Page zero could not be mapped (usually `vm.mmap_min_addr > 0`).
    /// Only returned when SUD *also* failed — a trampoline failure
    /// alone degrades to [`Mode::SudOnly`].
    Trampoline(io::Error),
    /// `prctl(PR_SET_SYSCALL_USER_DISPATCH)` failed (kernel < 5.11 or
    /// seccomp-filtered) on a later thread's enrollment.
    Sud(io::Error),
    /// Installing the `SIGSYS` disposition failed.
    Sigaction(io::Error),
    /// Both mechanisms failed: no rung of the ladder is available.
    Unavailable {
        /// The trampoline install failure.
        trampoline: io::Error,
        /// The SUD setup/enrollment failure.
        sud: io::Error,
    },
}

impl fmt::Display for InitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InitError::Trampoline(e) => write!(f, "trampoline install failed: {e}"),
            InitError::Sud(e) => write!(f, "syscall user dispatch unavailable: {e}"),
            InitError::Sigaction(e) => write!(f, "SIGSYS handler install failed: {e}"),
            InitError::Unavailable { trampoline, sud } => write!(
                f,
                "no interposition mechanism available (trampoline: {trampoline}; SUD: {sud})"
            ),
        }
    }
}

impl std::error::Error for InitError {}

/// Which rung of the degradation ladder the engine runs on (see the
/// module docs). Decided once, at first [`init`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Mode {
    /// [`init`] has not completed yet.
    Uninitialized,
    /// Trampoline + SUD: lazy rewriting with an exhaustive slow path —
    /// the paper's design.
    Hybrid,
    /// SUD only: the trampoline is unavailable, so nothing is ever
    /// rewritten; every intercepted syscall is emulated in the `SIGSYS`
    /// handler. Exhaustive but slow (Table II's "SUD" row).
    SudOnly,
    /// Trampoline only: SUD is unavailable, so new sites are never
    /// discovered; regions rewritten by the static prescan dispatch
    /// through the trampoline. Fast but not exhaustive.
    PrescanOnly,
}

/// Event counters since initialization.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Stats {
    /// `SIGSYS` deliveries (slow-path trips).
    pub slow_path_hits: u64,
    /// Syscall sites rewritten to `call rax`.
    pub sites_patched: u64,
    /// Syscalls that reached the dispatcher.
    pub dispatches: u64,
    /// Syscalls emulated in the handler because patching failed (the
    /// site or its page is unpatchable).
    pub unpatchable_emulations: u64,
    /// Syscalls emulated in the handler because lazy rewriting is
    /// disabled (pure-SUD configuration or [`Mode::SudOnly`]) — a
    /// configuration state, not a failure.
    pub disabled_mode_emulations: u64,
    /// Application signal deliveries routed through the wrapper.
    pub signals_wrapped: u64,
    /// Patch re-attempts after transient `mprotect` failures.
    pub patch_retries: u64,
    /// Pages inserted into the unpatchable-page blocklist.
    pub pages_blocklisted: u64,
    /// Interposer handlers quarantined after panicking (cumulative).
    pub quarantined_handlers: u64,
    /// Syscall events captured into the flight-recorder rings
    /// (cumulative; nonzero only while a `record` interposer runs).
    pub events_recorded: u64,
    /// Syscall events the flight recorder dropped to its overflow
    /// policy (full ring or exhausted ring pool; cumulative).
    pub events_dropped: u64,
    /// Divergences replay handlers detected between an execution and
    /// its trace (cumulative).
    pub replay_divergences: u64,
    /// Records the drain path moved from the rings into a trace file
    /// (cumulative; async drain-thread sweeps and synchronous drains).
    pub events_spilled: u64,
    /// Adaptive capacity doublings of flight-recorder rings
    /// (cumulative).
    pub ring_grows: u64,
    /// Ring pushes that observed near-full (≥3/4) occupancy —
    /// backpressure the drain thread could not absorb (cumulative).
    pub ring_near_full: u64,
    /// Near-full pushes that `sched_yield`ed the producer under the
    /// opt-in `LP_DRAIN_YIELD` knob (cumulative).
    pub drain_yields: u64,
    /// Drainer threads partitioning the ring pool in the most recent
    /// recorder session (1 = single drainer; `LP_DRAIN_SHARDS`).
    pub drain_shards: u64,
    /// Escape attempts the hardened-mode seccomp backstop caught
    /// (cumulative; nonzero only under `lazypoline-hardened`).
    pub bypass_blocked: u64,
    /// WRPKRU open/close pairs around protected-selector writes
    /// (cumulative; nonzero only with the pkey slab armed).
    pub pkru_switches: u64,
}

/// Robustness snapshot: the active degradation-ladder rung plus the
/// counters that describe how the engine has been coping.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Health {
    /// The rung of the degradation ladder the engine runs on.
    pub mode: Mode,
    /// Pages in the unpatchable-page blocklist.
    pub patch_blocklist_pages: u64,
    /// Interposer handlers quarantined after panicking (cumulative).
    pub quarantined_handlers: u64,
    /// Faults injected by the `faultinject` seams (0 in production).
    pub faults_injected: u64,
    /// Patch re-attempts after transient `mprotect` failures.
    pub patch_retries: u64,
    /// The hardening rung achieved ([`crate::harden::level`];
    /// `HardenLevel::Off` unless hardened install was attempted).
    pub harden: crate::harden::HardenLevel,
    /// The full counter set ([`stats`]).
    pub stats: Stats,
}

static INITIALIZED: AtomicBool = AtomicBool::new(false);

/// The established [`Mode`], encoded as a u8 (0 = uninitialized).
static MODE: AtomicU8 = AtomicU8::new(0);

/// Arms fault seams from `LAZYPOLINE_FAULTS` exactly once per process
/// (re-arming on a second `init` would reset schedule hit counts).
static FAULTS_FROM_ENV: Once = Once::new();

fn store_mode(m: Mode) {
    let v = match m {
        Mode::Uninitialized => 0,
        Mode::Hybrid => 1,
        Mode::SudOnly => 2,
        Mode::PrescanOnly => 3,
    };
    MODE.store(v, Ordering::SeqCst);
}

/// The engine's active degradation-ladder rung
/// ([`Mode::Uninitialized`] before the first successful [`init`]).
pub fn mode() -> Mode {
    match MODE.load(Ordering::SeqCst) {
        1 => Mode::Hybrid,
        2 => Mode::SudOnly,
        3 => Mode::PrescanOnly,
        _ => Mode::Uninitialized,
    }
}

/// Handle to the initialized engine.
///
/// Engine state is process-global and permanent (rewritten sites
/// cannot be un-rewritten); the handle governs only the calling
/// thread's enrollment. Dropping it un-enrolls the current thread.
#[derive(Debug)]
pub struct Engine {
    _private: (),
}

/// Initializes hybrid interposition and enrolls the calling thread.
///
/// Idempotent for the process-global parts; a second call on another
/// thread simply enrolls that thread (except in [`Mode::PrescanOnly`],
/// where there is nothing to enroll in).
///
/// Initialization *degrades* rather than fails when one mechanism is
/// unavailable — see the module docs for the ladder. Check [`health`]
/// for the resulting [`Mode`].
///
/// # Errors
///
/// See [`InitError`]; returned only when no ladder rung is available
/// (or a later thread's enrollment fails). On error nothing
/// irreversible has happened — specifically, SUD is not left enabled.
///
/// # Examples
///
/// ```no_run
/// let engine = lazypoline::init(lazypoline::Config::default())?;
/// assert!(engine.is_enrolled());
/// # Ok::<(), lazypoline::InitError>(())
/// ```
pub fn init(config: Config) -> Result<Engine, InitError> {
    FAULTS_FROM_ENV.call_once(|| {
        if let Err(e) = faultinject::arm_from_env() {
            eprintln!("lazypoline: ignoring LAZYPOLINE_FAULTS: {e}");
        }
    });
    crate::slowpath::BATCH_REWRITING.store(config.batch_rewriting, Ordering::SeqCst);

    if !INITIALIZED.load(Ordering::SeqCst) {
        return init_process_global(config);
    }

    // Re-initialization (another thread, or a redundant call): adjust
    // per-call knobs, but never contradict the established mode.
    zpoline::set_xstate_mask(config.xstate);
    if mode() != Mode::SudOnly {
        crate::slowpath::LAZY_REWRITING.store(config.lazy_rewriting, Ordering::SeqCst);
    }
    let engine = Engine { _private: () };
    if mode() == Mode::PrescanOnly {
        // No SIGSYS machinery: enrolling would raise SIGSYS with the
        // default (fatal) disposition. Threads stay un-enrolled.
        return Ok(engine);
    }
    engine.enroll_current_thread().map_err(InitError::Sud)?;
    Ok(engine)
}

/// First-call path: establish the process-global machinery and decide
/// the degradation-ladder rung.
fn init_process_global(config: Config) -> Result<Engine, InitError> {
    crate::slowpath::LAZY_REWRITING.store(config.lazy_rewriting, Ordering::SeqCst);
    zpoline::set_xstate_mask(config.xstate);

    // Rung 1: the trampoline. Failure is survivable (→ SudOnly).
    let tramp_err = match Trampoline::install() {
        Ok(_) => {
            zpoline::set_dispatcher(fastpath::lazypoline_dispatch);
            None
        }
        Err(e) => Some(e),
    };

    // Rung 2: SUD — handler disposition plus this thread's enrollment.
    // Failure is survivable when the trampoline stands (→ PrescanOnly).
    let mut sud_err = None;
    unsafe {
        if config.adopt_existing_signal_handlers {
            signals::adopt_existing_handlers();
        }
        if let Err(e) = sud::sigsys::install_sigsys_handler(slowpath::sigsys_handler) {
            sud_err = Some(e);
        }
    }
    let engine = Engine { _private: () };
    if sud_err.is_none() {
        if let Err(e) = engine.enroll_current_thread() {
            sud_err = Some(e);
        }
    }

    let decided = match (tramp_err, sud_err) {
        (None, None) => Mode::Hybrid,
        (Some(_), None) => Mode::SudOnly,
        (None, Some(_)) => Mode::PrescanOnly,
        (Some(trampoline), Some(sud)) => {
            return Err(InitError::Unavailable { trampoline, sud });
        }
    };

    match decided {
        Mode::SudOnly => {
            // No trampoline: a patched site would `call` into unmapped
            // page zero. Force pure-SUD emulation whatever the config
            // asked for.
            crate::slowpath::LAZY_REWRITING.store(false, Ordering::SeqCst);
        }
        Mode::Hybrid | Mode::PrescanOnly => {
            // PrescanOnly *needs* the prescan (it is the only way any
            // syscall gets interposed); in Hybrid it is the configured
            // optimization. Run it with the selector disarmed so the
            // scan's own syscalls don't spam the slow path.
            if decided == Mode::PrescanOnly || config.static_prescan {
                let re_arm = tls::enrolled();
                if re_arm {
                    sud::set_selector(sud::Dispatch::Allow);
                }
                // libc only: it carries the syscall sites of every
                // dynamically-linked binary, and its instruction stream
                // is the one the zpoline lineage has long rewritten
                // statically. Raw syscalls in other objects stay
                // uninterposed in PrescanOnly — the documented
                // exhaustiveness sacrifice of this rung. Errors are
                // non-fatal: in Hybrid the slow path remains
                // exhaustive; in PrescanOnly a partial rewrite still
                // interposes what it reached.
                if let Ok((patched, _unknown)) =
                    unsafe { zpoline::rewrite_process(|r| r.path.contains("libc")) }
                {
                    counters::add(&counters::SITES_PATCHED, patched as u64);
                }
                if re_arm {
                    sud::set_selector(sud::Dispatch::Block);
                }
            }
        }
        Mode::Uninitialized => unreachable!(),
    }

    store_mode(decided);
    INITIALIZED.store(true, Ordering::SeqCst);
    Ok(engine)
}

impl Engine {
    /// Enrolls the calling thread: enables SUD with this thread's
    /// selector byte and arms it (selector = BLOCK).
    ///
    /// # Errors
    ///
    /// Returns the `prctl` failure; the thread is left un-enrolled.
    pub fn enroll_current_thread(&self) -> io::Result<()> {
        // Hardened mode: give this thread a selector slot on the
        // protected slab *before* the prctl, so the kernel records the
        // protected address. A full slab falls back to the TLS byte —
        // the thread is interposed, just not selector-hardened.
        if sud::pkey::slab_ready() {
            let _ = sud::adopt_protected_selector();
        }
        tls::set_enrolled(true);
        match sud::enable_thread() {
            Ok(()) => {
                sud::set_selector(sud::Dispatch::Block);
                Ok(())
            }
            Err(e) => {
                tls::set_enrolled(false);
                Err(e)
            }
        }
    }

    /// Un-enrolls the calling thread: new syscall sites on this thread
    /// stop being discovered. Already-rewritten sites still dispatch.
    pub fn unenroll_current_thread(&self) {
        tls::set_enrolled(false);
        sud::set_selector(sud::Dispatch::Allow);
        let _ = sud::disable_thread();
    }

    /// Whether the calling thread is currently enrolled.
    pub fn is_enrolled(&self) -> bool {
        tls::enrolled()
    }

    /// Whether the process-global machinery is live.
    pub fn is_initialized() -> bool {
        INITIALIZED.load(Ordering::SeqCst)
    }

    /// Engine-wide event counters.
    pub fn stats(&self) -> Stats {
        stats()
    }

    /// Robustness snapshot (mode + degradation counters).
    pub fn health(&self) -> Health {
        health()
    }
}

impl Drop for Engine {
    fn drop(&mut self) {
        if tls::enrolled() {
            self.unenroll_current_thread();
        }
    }
}

/// Engine-wide event counters (also available without a handle — e.g.
/// from benchmark reporting code).
pub fn stats() -> Stats {
    Stats {
        slow_path_hits: counters::get(&counters::SLOW_PATH_HITS),
        sites_patched: counters::get(&counters::SITES_PATCHED),
        dispatches: counters::get(&counters::DISPATCHES),
        unpatchable_emulations: counters::get(&counters::UNPATCHABLE_EMULATIONS),
        disabled_mode_emulations: counters::get(&counters::DISABLED_MODE_EMULATIONS),
        signals_wrapped: counters::get(&counters::SIGNALS_WRAPPED),
        patch_retries: counters::get(&counters::PATCH_RETRIES),
        pages_blocklisted: counters::get(&counters::PAGES_BLOCKLISTED),
        quarantined_handlers: interpose::quarantined_handlers(),
        // Recorder counters live in lp-replay (its rings own the drop
        // accounting); the engine folds them in so `health()` and the
        // benches report one uniform counter set.
        events_recorded: replay::events_recorded(),
        events_dropped: replay::events_dropped(),
        replay_divergences: replay::replay_divergences(),
        events_spilled: replay::events_spilled(),
        ring_grows: replay::ring::total_grows(),
        ring_near_full: replay::ring::total_near_full(),
        drain_yields: replay::ring::total_drain_yields(),
        drain_shards: replay::drain_shards(),
        bypass_blocked: crate::harden::bypass_blocked(),
        pkru_switches: sud::pkey::pkru_switch_count(),
    }
}

/// Robustness snapshot (also available without a handle): the active
/// [`Mode`] plus the counters describing degradations taken so far.
pub fn health() -> Health {
    let stats = stats();
    Health {
        mode: mode(),
        patch_blocklist_pages: blocklist::len() as u64,
        quarantined_handlers: stats.quarantined_handlers,
        faults_injected: faultinject::total_injected(),
        patch_retries: stats.patch_retries,
        harden: crate::harden::level(),
        stats,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_default_is_full_preservation() {
        let c = Config::default();
        assert_eq!(c.xstate, XstateMask::Avx);
        assert!(c.adopt_existing_signal_handlers);
        assert!(c.lazy_rewriting);
        assert!(c.batch_rewriting);
        assert!(!c.static_prescan);
    }

    #[test]
    fn init_error_display() {
        let e = InitError::Sud(io::Error::from_raw_os_error(libc::EINVAL));
        assert!(e.to_string().contains("dispatch unavailable"));
        let e = InitError::Unavailable {
            trampoline: io::Error::from_raw_os_error(libc::EPERM),
            sud: io::Error::from_raw_os_error(libc::ENOSYS),
        };
        let s = e.to_string();
        assert!(s.contains("no interposition mechanism"), "{s}");
        assert!(s.contains("trampoline:"), "{s}");
    }

    #[test]
    fn mode_defaults_to_uninitialized_in_unit_tests() {
        // Unit tests never run engine init (it would rewrite this test
        // process); the health snapshot must still be readable.
        let h = health();
        assert_eq!(h.stats, stats());
        assert!(h.patch_blocklist_pages <= crate::blocklist::CAPACITY as u64);
    }

    // End-to-end engine tests live in the workspace `tests/` directory
    // and run in subprocesses: initialization permanently rewrites
    // code in the test runner image, which must not leak into sibling
    // unit tests.
}

//! Engine assembly: wires the trampoline, dispatcher, SIGSYS handler,
//! signal adoption, and per-thread enrollment together.

use std::fmt;
use std::io;
use std::sync::atomic::{AtomicBool, Ordering};

use zpoline::{Trampoline, XstateMask};

use crate::counters;
use crate::{fastpath, signals, slowpath, tls};

/// Configuration for [`init`].
#[derive(Clone, Copy, Debug)]
pub struct Config {
    /// Which extended-state components the fast path preserves around
    /// the handler (paper §IV-B(b); Table II benchmarks both
    /// `Avx` — full preservation, the default — and `None`).
    pub xstate: XstateMask,
    /// Re-route signal handlers registered *before* initialization
    /// through the wrapper protocol (recommended; see §IV-B(c)).
    pub adopt_existing_signal_handlers: bool,
    /// Enable the lazy rewriting fast path (default). Disabling turns
    /// the engine into a pure SUD interposer: every intercepted
    /// syscall takes the SIGSYS slow path and is emulated in the
    /// handler — the "SUD" baseline of Table II and Figure 5, and the
    /// ablation isolating the paper's core contribution.
    pub lazy_rewriting: bool,
    /// On a slow-path trip, rewrite *all* verifiable `syscall` sites on
    /// the faulting executable page under a single spinlock/`mprotect`
    /// window, not just the faulting site (default on). Amortizes the
    /// per-site rewrite cost and converts neighbouring sites' future
    /// `SIGSYS` deliveries into fast-path entries. Turn off to ablate
    /// batching: `SLOW_PATH_HITS` then rises to one per site while
    /// `SITES_PATCHED` stays the same.
    pub batch_rewriting: bool,
    /// Statically pre-scan and rewrite the executable regions whose
    /// path satisfies common safety filters before enabling SUD. This
    /// makes the very first executions of known sites take the fast
    /// path (zpoline-style priming); purely an optimization — the slow
    /// path catches everything regardless. Off by default because
    /// static disassembly is heuristic (§II-B).
    pub static_prescan: bool,
}

impl Default for Config {
    fn default() -> Config {
        Config {
            xstate: XstateMask::Avx,
            adopt_existing_signal_handlers: true,
            lazy_rewriting: true,
            batch_rewriting: true,
            static_prescan: false,
        }
    }
}

/// Why [`init`] failed. The process is left un-interposed but otherwise
/// intact when any of these is returned.
#[derive(Debug)]
pub enum InitError {
    /// Page zero could not be mapped (usually `vm.mmap_min_addr > 0`).
    Trampoline(io::Error),
    /// `prctl(PR_SET_SYSCALL_USER_DISPATCH)` failed (kernel < 5.11 or
    /// seccomp-filtered).
    Sud(io::Error),
    /// Installing the `SIGSYS` disposition failed.
    Sigaction(io::Error),
}

impl fmt::Display for InitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InitError::Trampoline(e) => write!(f, "trampoline install failed: {e}"),
            InitError::Sud(e) => write!(f, "syscall user dispatch unavailable: {e}"),
            InitError::Sigaction(e) => write!(f, "SIGSYS handler install failed: {e}"),
        }
    }
}

impl std::error::Error for InitError {}

/// Event counters since initialization.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Stats {
    /// `SIGSYS` deliveries (slow-path trips).
    pub slow_path_hits: u64,
    /// Syscall sites rewritten to `call rax`.
    pub sites_patched: u64,
    /// Syscalls that reached the dispatcher.
    pub dispatches: u64,
    /// Syscalls emulated in the handler because patching failed.
    pub unpatchable_emulations: u64,
    /// Application signal deliveries routed through the wrapper.
    pub signals_wrapped: u64,
}

static INITIALIZED: AtomicBool = AtomicBool::new(false);

/// Handle to the initialized engine.
///
/// Engine state is process-global and permanent (rewritten sites
/// cannot be un-rewritten); the handle governs only the calling
/// thread's enrollment. Dropping it un-enrolls the current thread.
#[derive(Debug)]
pub struct Engine {
    _private: (),
}

/// Initializes hybrid interposition and enrolls the calling thread.
///
/// Idempotent for the process-global parts; a second call on another
/// thread simply enrolls that thread.
///
/// # Errors
///
/// See [`InitError`]. On error nothing irreversible has happened —
/// specifically, SUD is not left enabled.
///
/// # Examples
///
/// ```no_run
/// let engine = lazypoline::init(lazypoline::Config::default())?;
/// assert!(engine.is_enrolled());
/// # Ok::<(), lazypoline::InitError>(())
/// ```
pub fn init(config: Config) -> Result<Engine, InitError> {
    crate::slowpath::LAZY_REWRITING.store(config.lazy_rewriting, Ordering::SeqCst);
    crate::slowpath::BATCH_REWRITING.store(config.batch_rewriting, Ordering::SeqCst);
    if !INITIALIZED.load(Ordering::SeqCst) {
        zpoline::set_xstate_mask(config.xstate);
        Trampoline::install().map_err(InitError::Trampoline)?;
        zpoline::set_dispatcher(fastpath::lazypoline_dispatch);

        unsafe {
            if config.adopt_existing_signal_handlers {
                signals::adopt_existing_handlers();
            }
            sud::sigsys::install_sigsys_handler(slowpath::sigsys_handler)
                .map_err(InitError::Sigaction)?;
        }

        if config.static_prescan {
            // Prime the obvious regions; errors are non-fatal (the slow
            // path remains exhaustive).
            let _ = unsafe {
                zpoline::rewrite_process(|r| {
                    r.path.contains("libc") || r.path.ends_with(&current_exe_name())
                })
            };
        }

        INITIALIZED.store(true, Ordering::SeqCst);
    } else {
        // Re-initialization may still adjust the xstate policy.
        zpoline::set_xstate_mask(config.xstate);
    }

    let engine = Engine { _private: () };
    engine.enroll_current_thread().map_err(InitError::Sud)?;
    Ok(engine)
}

fn current_exe_name() -> String {
    std::env::current_exe()
        .ok()
        .and_then(|p| p.file_name().map(|s| s.to_string_lossy().into_owned()))
        .unwrap_or_default()
}

impl Engine {
    /// Enrolls the calling thread: enables SUD with this thread's
    /// selector byte and arms it (selector = BLOCK).
    ///
    /// # Errors
    ///
    /// Returns the `prctl` failure; the thread is left un-enrolled.
    pub fn enroll_current_thread(&self) -> io::Result<()> {
        tls::set_enrolled(true);
        match sud::enable_thread() {
            Ok(()) => {
                sud::set_selector(sud::Dispatch::Block);
                Ok(())
            }
            Err(e) => {
                tls::set_enrolled(false);
                Err(e)
            }
        }
    }

    /// Un-enrolls the calling thread: new syscall sites on this thread
    /// stop being discovered. Already-rewritten sites still dispatch.
    pub fn unenroll_current_thread(&self) {
        tls::set_enrolled(false);
        sud::set_selector(sud::Dispatch::Allow);
        let _ = sud::disable_thread();
    }

    /// Whether the calling thread is currently enrolled.
    pub fn is_enrolled(&self) -> bool {
        tls::enrolled()
    }

    /// Whether the process-global machinery is live.
    pub fn is_initialized() -> bool {
        INITIALIZED.load(Ordering::SeqCst)
    }

    /// Engine-wide event counters.
    pub fn stats(&self) -> Stats {
        stats()
    }
}

impl Drop for Engine {
    fn drop(&mut self) {
        if tls::enrolled() {
            self.unenroll_current_thread();
        }
    }
}

/// Engine-wide event counters (also available without a handle — e.g.
/// from benchmark reporting code).
pub fn stats() -> Stats {
    Stats {
        slow_path_hits: counters::get(&counters::SLOW_PATH_HITS),
        sites_patched: counters::get(&counters::SITES_PATCHED),
        dispatches: counters::get(&counters::DISPATCHES),
        unpatchable_emulations: counters::get(&counters::UNPATCHABLE_EMULATIONS),
        signals_wrapped: counters::get(&counters::SIGNALS_WRAPPED),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_default_is_full_preservation() {
        let c = Config::default();
        assert_eq!(c.xstate, XstateMask::Avx);
        assert!(c.adopt_existing_signal_handlers);
        assert!(c.lazy_rewriting);
        assert!(c.batch_rewriting);
        assert!(!c.static_prescan);
    }

    #[test]
    fn init_error_display() {
        let e = InitError::Sud(io::Error::from_raw_os_error(libc::EINVAL));
        assert!(e.to_string().contains("dispatch unavailable"));
    }

    // End-to-end engine tests live in the workspace `tests/` directory
    // and run in subprocesses: initialization permanently rewrites
    // code in the test runner image, which must not leak into sibling
    // unit tests.
}

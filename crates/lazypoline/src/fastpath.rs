//! The dispatcher: one shared syscall-handling implementation for both
//! the fast path (trampoline) and the slow path (SIGSYS emulation
//! fallback), exactly as the paper motivates in §IV-A(c).

use sud::Dispatch;
use syscalls::{nr, Errno, SyscallArgs};
use zpoline::RawFrame;

use crate::counters::{self, DISPATCHES};
use crate::{clone, raw_internal, signals, tls};

/// Byte offset from the `RawFrame` pointer to the application's `rsp`
/// at the moment the (rewritten) syscall instruction executed.
///
/// Derived from the trampoline stub's stack layout: the stub enters
/// with `rsp = E` (app rsp after the `call rax` push, i.e. app rsp at
/// the syscall minus 8) and builds the frame at `E - 208`.
pub(crate) const FRAME_TO_APP_RSP: usize = 216;

/// The dispatcher registered with the zpoline trampoline.
///
/// Protocol (paper §IV-A): flip the selector to ALLOW so the
/// interposer's own syscalls bypass SUD, run the shared handler, then
/// restore BLOCK if this thread is enrolled. Entered either directly
/// from application code via a rewritten site (selector was BLOCK) or
/// from the slow path's re-execution (selector already ALLOW) — the
/// exit rule is the same for both, which is what makes selector-only
/// SUD work.
pub(crate) unsafe extern "C" fn lazypoline_dispatch(frame: *mut RawFrame) -> u64 {
    counters::bump(&DISPATCHES);
    sud::set_selector(Dispatch::Allow);

    let frame = &mut *frame;

    // rt_sigreturn must take its special path even when re-entered
    // (the wrapper's own return travels through here while the
    // dispatch guard is set).
    if frame.nr == nr::RT_SIGRETURN {
        do_rt_sigreturn(frame);
    }

    // Interest fast-out: when the installed handler declared no
    // interest in this number, skip everything — no event, no virtual
    // call, no dispatch guard — and execute raw. One relaxed load plus
    // a bit test. Syscalls the engine must emulate for correctness
    // (signals, clones) never take this exit regardless of handler
    // interest. This same exit serves the zpoline-only configuration
    // (this dispatcher with SUD unenrolled): there `enrolled()` is
    // false and the selector stays at ALLOW.
    if !needs_emulation(frame.nr) && !interpose::global_interested(frame.nr) {
        let ret = raw_internal::syscall(frame.syscall_args());
        if tls::enrolled() {
            sud::set_selector(Dispatch::Block);
        }
        return ret;
    }

    if tls::in_dispatch() {
        // A handler re-entered the dispatcher (e.g. through a patched
        // libc call inside the handler). Execute raw — the outer
        // dispatch restores the selector on its own exit.
        return raw_internal::syscall(frame.syscall_args());
    }

    let was = tls::set_in_dispatch(true);
    let ret = handle_syscall(frame, true);
    tls::set_in_dispatch(was);

    if tls::enrolled() {
        sud::set_selector(Dispatch::Block);
    }
    ret
}

/// Syscalls [`handle_syscall`] must always emulate itself, whatever the
/// installed handler's interest: executing them raw would break signal
/// transparency or thread/process bookkeeping. (`rt_sigreturn` is
/// handled before the fast-out and listed for the slow path's benefit.)
#[inline]
pub(crate) fn needs_emulation(nr_: u64) -> bool {
    matches!(
        nr_,
        nr::RT_SIGRETURN
            | nr::RT_SIGACTION
            | nr::RT_SIGPROCMASK
            | nr::CLONE
            | nr::CLONE3
            | nr::FORK
            | nr::VFORK
    )
}

/// Shared syscall handling: notify the global handler, then execute
/// (with special handling for the process-control syscalls the paper
/// calls out: `rt_sigreturn`, `rt_sigaction`, `clone`, `fork`,
/// `vfork`, plus `rt_sigprocmask` to keep `SIGSYS` deliverable).
///
/// # Safety
///
/// `frame` must describe a syscall invocation from this thread, and
/// the selector must be ALLOW.
pub(crate) unsafe fn handle_syscall(frame: &mut RawFrame, notify: bool) -> u64 {
    if !notify {
        return execute_frame(frame);
    }
    // The decision sequence itself — interest gate, event construction,
    // dispatch, passthrough execution, post hook — is not written here:
    // it is `interpose::interpose_syscall`, the one copy shared with the
    // SUD-only interposer and the dispatch-cost benchmark. Execution of
    // a `Passthrough` routes back through [`execute_frame`] so the
    // engine's emulations apply to whatever call the handler settled on.
    let call = frame.syscall_args();
    let site = frame.ret_addr as usize;
    interpose::interpose_syscall(call, site, |decided| {
        // The handler may have rewritten number/arguments.
        frame.nr = decided.nr;
        frame.a1 = decided.args[0];
        frame.a2 = decided.args[1];
        frame.a3 = decided.args[2];
        frame.a4 = decided.args[3];
        frame.a5 = decided.args[4];
        frame.a6 = decided.args[5];
        execute_frame(frame)
    })
}

/// Executes the frame's (possibly handler-rewritten) syscall: emulation
/// for the process-control syscalls the paper calls out, raw execution
/// for everything else. Result observation/rewriting (`post`) happens in
/// the caller's shared sequence; for clone-like calls whose child
/// resumed elsewhere, the dispatcher frame only ever returns in the
/// parent, so the post hook runs there alone.
///
/// # Safety
///
/// As [`handle_syscall`].
unsafe fn execute_frame(frame: &mut RawFrame) -> u64 {
    match frame.nr {
        nr::RT_SIGRETURN => do_rt_sigreturn(frame),
        nr::RT_SIGACTION => signals::handle_sigaction(frame),
        nr::RT_SIGPROCMASK => handle_sigprocmask(frame),
        nr::CLONE => clone::handle_clone(frame),
        // Refusing clone3 makes glibc fall back to clone, which we can
        // interpose faithfully (same approach as the C prototype and
        // other interposers).
        nr::CLONE3 => Errno::ENOSYS.as_ret(),
        nr::FORK | nr::VFORK => clone::handle_fork(frame),
        _ => raw_internal::syscall(frame.syscall_args()),
    }
}

/// `rt_sigreturn` cannot be issued from dispatcher context directly:
/// the kernel reads the signal frame at the *current* `rsp`. Restore
/// the application's `rsp` (where the frame lives) and issue the
/// syscall there, with the selector at ALLOW so the instruction is
/// never itself dispatched (paper Fig. 3 step ③). Control continues at
/// whatever context the signal frame describes — typically the
/// sigreturn trampoline installed by the signal wrapper, which
/// re-establishes the selector (step ④).
unsafe fn do_rt_sigreturn(frame: &mut RawFrame) -> ! {
    sud::set_selector(Dispatch::Allow);
    let frame_rsp = (frame as *mut RawFrame as usize + FRAME_TO_APP_RSP) as u64;
    core::arch::asm!(
        "mov rsp, {0}",
        "mov eax, 15", // rt_sigreturn
        "syscall",
        "ud2",
        in(reg) frame_rsp,
        options(noreturn),
    );
}

/// Keeps `SIGSYS` unblockable: without the slow-path signal, a fresh
/// syscall site executed while `SIGSYS` is masked would kill the
/// process (force_sig semantics) or stall interposition.
unsafe fn handle_sigprocmask(frame: &mut RawFrame) -> u64 {
    const SIG_BLOCK: u64 = 0;
    const SIG_SETMASK: u64 = 2;
    let how = frame.a1;
    let set = frame.a2 as *const u64;
    if !set.is_null() && (how == SIG_BLOCK || how == SIG_SETMASK) && frame.a4 == 8 {
        let mut mask = set.read();
        mask &= !(1u64 << (libc::SIGSYS - 1));
        let patched = SyscallArgs::new(
            nr::RT_SIGPROCMASK,
            [how, &mask as *const u64 as u64, frame.a3, 8, 0, 0],
        );
        return raw_internal::syscall(patched);
    }
    raw_internal::syscall(frame.syscall_args())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mk_frame(nr: u64, args: [u64; 6]) -> RawFrame {
        RawFrame {
            nr,
            a1: args[0],
            a2: args[1],
            a3: args[2],
            a4: args[3],
            a5: args[4],
            a6: args[5],
            saved_rbx: 0,
            saved_rbp: 0,
            ret_addr: 0,
        }
    }

    #[test]
    fn plain_syscall_passes_through() {
        let mut f = mk_frame(nr::GETPID, [0; 6]);
        let ret = unsafe { handle_syscall(&mut f, true) };
        assert_eq!(ret, std::process::id() as u64);
    }

    #[test]
    fn clone3_is_refused() {
        let mut f = mk_frame(nr::CLONE3, [0; 6]);
        let ret = unsafe { handle_syscall(&mut f, true) };
        assert_eq!(Errno::from_ret(ret), Some(Errno::ENOSYS));
    }

    #[test]
    fn sigprocmask_cannot_block_sigsys() {
        unsafe {
            let sigsys_bit = 1u64 << (libc::SIGSYS - 1);
            let want: u64 = sigsys_bit | (1 << (libc::SIGUSR1 - 1));
            let mut f = mk_frame(
                nr::RT_SIGPROCMASK,
                [0 /*SIG_BLOCK*/, &want as *const u64 as u64, 0, 8, 0, 0],
            );
            assert_eq!(handle_syscall(&mut f, true), 0);
            // Read back the mask: SIGUSR1 blocked, SIGSYS not.
            let mut cur: u64 = 0;
            let q = mk_frame(
                nr::RT_SIGPROCMASK,
                [0, 0, &mut cur as *mut u64 as u64, 8, 0, 0],
            );
            let mut q = q;
            assert_eq!(handle_syscall(&mut q, true), 0);
            assert_ne!(cur & (1 << (libc::SIGUSR1 - 1)), 0);
            assert_eq!(cur & sigsys_bit, 0);
            // Restore.
            let none: u64 = 0;
            let mut r = mk_frame(
                nr::RT_SIGPROCMASK,
                [2 /*SETMASK*/, &none as *const u64 as u64, 0, 8, 0, 0],
            );
            handle_syscall(&mut r, true);
        }
    }

    #[test]
    fn uninterested_syscall_bypasses_handler_but_executes() {
        use interpose::{Action, InterestSet, SyscallEvent, SyscallHandler};

        // Interested only in the non-existent number 499; decides with
        // a sentinel so notification is observable.
        struct Only499;
        impl SyscallHandler for Only499 {
            fn handle(&self, _ev: &mut SyscallEvent) -> Action {
                Action::Return(0xDEAD)
            }
            fn interest(&self) -> InterestSet {
                InterestSet::of(&[499])
            }
        }
        // The guard restores whatever handler (and interest cache) was
        // installed before this test, instead of leaking Only499.
        let _guard = interpose::install_handler(Box::new(Only499));

        // getpid is outside the interest set: the handler must be
        // bypassed (no 0xDEAD) while the syscall itself still executes.
        let mut f = mk_frame(nr::GETPID, [0; 6]);
        let ret = unsafe { handle_syscall(&mut f, true) };
        assert_eq!(ret, std::process::id() as u64);

        // 499 is inside the set: the handler decides.
        let mut f = mk_frame(499, [0; 6]);
        let ret = unsafe { handle_syscall(&mut f, true) };
        assert_eq!(ret, 0xDEAD);

        // Emulated syscalls never bypass their emulation: clone3 is
        // refused by the engine even though the handler is indifferent.
        let mut f = mk_frame(nr::CLONE3, [0; 6]);
        let ret = unsafe { handle_syscall(&mut f, true) };
        assert_eq!(Errno::from_ret(ret), Some(Errno::ENOSYS));
    }

    #[test]
    fn frame_rsp_offset_matches_stub_layout() {
        // 10 frame qwords (80) + xsave anchor conventions: the stub
        // builds the frame 208 below its entry rsp, and the app rsp at
        // the call site is entry+8.
        assert_eq!(FRAME_TO_APP_RSP, 216);
        assert_eq!(std::mem::size_of::<RawFrame>(), 80);
    }
}

//! Hardened interposition: the seccomp backstop behind the selector.
//!
//! Plain lazypoline's exhaustiveness rests on one writable byte: the
//! SUD selector. Application code that guesses (or leaks) its address
//! can flip it to ALLOW and issue syscalls the interposer never sees.
//! Hardened mode (ISSUE 7, after the paper's §VII discussion of
//! sandboxing) closes that hole with two independent layers:
//!
//! 1. **Protected selector** — the selector byte moves onto an
//!    MPK-protected slab ([`sud::pkey`]); the dispatcher opens the
//!    write-disable bit only around its own selector writes (WRPKRU,
//!    ~20 cycles), so a stray or malicious write from application code
//!    faults instead of succeeding.
//! 2. **Seccomp backstop** — a minimal BPF filter admits syscalls only
//!    from allowlisted code: the dedicated *gate page* (through which
//!    all of the suite's own raw syscalls are funnelled once
//!    [`syscalls::raw::set_syscall_gate`] is armed), shared-library
//!    text, the vdso, and a short list of numbers the dispatcher must
//!    issue inline (`rt_sigreturn`, the clone family, the exits).
//!    Everything else — in particular a syscall instruction in
//!    application text executed while the selector illegitimately
//!    reads ALLOW — traps with `SIGSYS`/`SYS_SECCOMP`, which
//!    [`on_bypass`] counts and answers per [`BypassPolicy`].
//!
//! The kernel checks SUD *before* seccomp on syscall entry, so the
//! backstop is invisible in the common case: a BLOCKed syscall raises
//! the SUD `SIGSYS` and the filter never runs; an ALLOWed dispatcher
//! re-issue enters from the gate page and passes the IP allowlist.
//!
//! Like engine init, hardening *degrades* rather than fails:
//! full (pkey + backstop) → backstop only (no MPK hardware, as on most
//! CI) → plain lazypoline (seccomp unavailable). [`level`] reports the
//! rung; `engine::health()` surfaces it.

use std::io;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, AtomicUsize, Ordering};

use syscalls::{nr, Errno, SyscallArgs};

use crate::raw_internal;

/// `siginfo.si_code` for a seccomp `SECCOMP_RET_TRAP` delivery.
pub const SYS_SECCOMP: libc::c_int = 1;

/// `seccomp(2)` operation: install a filter program.
const SECCOMP_SET_MODE_FILTER: u64 = 1;
/// Extend the filter to every thread of the process atomically.
const SECCOMP_FILTER_FLAG_TSYNC: u64 = 1;
/// `prctl` option: required before an unprivileged filter install.
const PR_SET_NO_NEW_PRIVS: u64 = 38;

const SECCOMP_RET_ALLOW: u32 = 0x7fff_0000;
const SECCOMP_RET_TRAP: u32 = 0x0003_0000;
const AUDIT_ARCH_X86_64: u32 = 0xc000_003e;

// `struct seccomp_data` field offsets.
const OFF_NR: u32 = 0;
const OFF_ARCH: u32 = 4;
const OFF_IP_LO: u32 = 8;
const OFF_IP_HI: u32 = 12;

// Classic-BPF opcodes (the seccomp subset we need).
const BPF_LD_W_ABS: u16 = 0x20;
const BPF_JEQ_K: u16 = 0x15;
const BPF_JGE_K: u16 = 0x35;
const BPF_JGT_K: u16 = 0x25;
const BPF_RET_K: u16 = 0x06;

/// Syscall numbers admitted regardless of instruction pointer: the
/// dispatcher must issue these from inline assembly in its own text
/// (`do_rt_sigreturn`, `clone_asm`) where no gate detour is possible,
/// and a task must always be able to die.
const NR_ALLOWLIST: &[u32] = &[
    nr::RT_SIGRETURN as u32,
    nr::CLONE as u32,
    nr::FORK as u32,
    nr::VFORK as u32,
    nr::EXIT as u32,
    nr::EXIT_GROUP as u32,
    nr::CLONE3 as u32,
];

/// IP-range blocks the filter can hold. `/proc/self/maps` of a typical
/// dynamically linked test binary has ~10 executable file mappings;
/// the cap guards the `u8` BPF jump offsets with a wide margin.
const MAX_RANGES: usize = 32;

/// Gate-page stub: `(nr, a1..a6)` per the SysV integer convention in,
/// syscall return out. See [`syscalls::raw::GateFn`].
///
/// ```text
/// mov rax, rdi        ; nr
/// mov rdi, rsi        ; a1
/// mov rsi, rdx        ; a2
/// mov rdx, rcx        ; a3
/// mov r10, r8         ; a4
/// mov r8,  r9         ; a5
/// mov r9,  [rsp+8]    ; a6 (7th integer argument, on the stack)
/// syscall
/// ret
/// ```
const GATE_STUB: &[u8] = &[
    0x48, 0x89, 0xf8, // mov rax, rdi
    0x48, 0x89, 0xf7, // mov rdi, rsi
    0x48, 0x89, 0xd6, // mov rsi, rdx
    0x48, 0x89, 0xca, // mov rdx, rcx
    0x4d, 0x89, 0xc2, // mov r10, r8
    0x4d, 0x89, 0xc8, // mov r8, r9
    0x4c, 0x8b, 0x4c, 0x24, 0x08, // mov r9, [rsp+8]
    0x0f, 0x05, // syscall
    0xc3, // ret
];

/// What [`on_bypass`] does with a blocked escape attempt.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BypassPolicy {
    /// Kill the whole process with `SIGKILL` — the paper-faithful
    /// sandbox answer (an escape attempt means the application is
    /// compromised).
    Kill,
    /// Re-arm the protection and force the bypassed syscall back
    /// through the interposer — it executes, but observed. Useful for
    /// auditing deployments and for in-process regression tests.
    Quarantine,
}

/// The hardening rung actually achieved, most to least protected.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum HardenLevel {
    /// Hardening was never requested.
    Off,
    /// Protected selector (MPK hardware) and seccomp backstop.
    Full,
    /// Protected selector only — the backstop install failed.
    PkeyOnly,
    /// Seccomp backstop only — no MPK hardware (`pkey_alloc` failed).
    BackstopOnly,
    /// Hardening was requested but neither layer could be armed; the
    /// engine runs as plain lazypoline.
    Unprotected,
}

static HARDEN_ATTEMPTED: AtomicBool = AtomicBool::new(false);
static PKEY_ACTIVE: AtomicBool = AtomicBool::new(false);
static BACKSTOP_ACTIVE: AtomicBool = AtomicBool::new(false);
/// Encoded [`BypassPolicy`] (0 = Kill, 1 = Quarantine).
static POLICY: AtomicU8 = AtomicU8::new(0);
/// Escape attempts the backstop caught (kept out of the sharded
/// counter block — its shards are exactly full; see `counters.rs`).
static BYPASS_BLOCKED: AtomicU64 = AtomicU64::new(0);
/// Gate-page address once mapped (for the filter's IP allowlist).
static GATE_PAGE: AtomicUsize = AtomicUsize::new(0);

/// One classic-BPF instruction.
#[repr(C)]
#[derive(Clone, Copy)]
struct SockFilter {
    code: u16,
    jt: u8,
    jf: u8,
    k: u32,
}

#[repr(C)]
struct SockFprog {
    len: u16,
    filter: *const SockFilter,
}

const fn insn(code: u16, jt: u8, jf: u8, k: u32) -> SockFilter {
    SockFilter { code, jt, jf, k }
}

/// Arms the protected-selector layer: carve the MPK slab and move this
/// thread's selector byte onto it. Call **before** [`crate::init`] so
/// enrollment hands the kernel the protected address.
///
/// # Errors
///
/// Propagates `pkey_alloc`/`mmap` failure (`EINVAL` on hosts without
/// MPK) — the caller records it and continues to the next rung.
pub fn prepare_pkey() -> io::Result<()> {
    HARDEN_ATTEMPTED.store(true, Ordering::SeqCst);
    sud::pkey::init_protected_slab()?;
    sud::adopt_protected_selector()?;
    PKEY_ACTIVE.store(sud::pkey::slab_hardware_protected(), Ordering::SeqCst);
    Ok(())
}

/// Maps the gate page (RW → copy stub → RX) and returns its address.
fn map_gate_page() -> io::Result<usize> {
    const PAGE: u64 = 4096;
    let addr = unsafe {
        raw_internal::syscall(SyscallArgs::new(
            nr::MMAP,
            [
                0,
                PAGE,
                (libc::PROT_READ | libc::PROT_WRITE) as u64,
                (libc::MAP_PRIVATE | libc::MAP_ANONYMOUS) as u64,
                u64::MAX, // fd = -1
                0,
            ],
        ))
    };
    if let Some(e) = Errno::from_ret(addr) {
        return Err(io::Error::from_raw_os_error(e.as_i32()));
    }
    unsafe {
        core::ptr::copy_nonoverlapping(GATE_STUB.as_ptr(), addr as *mut u8, GATE_STUB.len());
        let r = raw_internal::syscall(SyscallArgs::new(
            nr::MPROTECT,
            [addr, PAGE, (libc::PROT_READ | libc::PROT_EXEC) as u64, 0, 0, 0],
        ));
        if let Some(e) = Errno::from_ret(r) {
            raw_internal::syscall(SyscallArgs::new(nr::MUNMAP, [addr, PAGE, 0, 0, 0, 0]));
            return Err(io::Error::from_raw_os_error(e.as_i32()));
        }
    }
    Ok(addr as usize)
}

/// Collects the IP allowlist: the gate page, every file-backed
/// executable mapping *except* the main executable, and the kernel's
/// `[vdso]`/`[vsyscall]` pages. The main executable is the exclusion
/// that gives the backstop its teeth: that is where application (and
/// attacker) syscall instructions live.
fn exec_ranges(gate: usize) -> io::Result<Vec<(u64, u64)>> {
    let exe = std::fs::read_link("/proc/self/exe")?;
    let maps = std::fs::read_to_string("/proc/self/maps")?;
    let mut ranges: Vec<(u64, u64)> = vec![(gate as u64, gate as u64 + 4096)];
    for line in maps.lines() {
        let mut parts = line.split_whitespace();
        let (Some(span), Some(perms)) = (parts.next(), parts.next()) else {
            continue;
        };
        if !perms.contains('x') {
            continue;
        }
        let path = line.split_whitespace().nth(5).unwrap_or("");
        let allowed = (path.starts_with('/') && std::path::Path::new(path) != exe.as_path())
            || path == "[vdso]"
            || path == "[vsyscall]";
        if !allowed {
            continue;
        }
        let Some((lo, hi)) = span.split_once('-') else {
            continue;
        };
        let (Ok(lo), Ok(hi)) = (u64::from_str_radix(lo, 16), u64::from_str_radix(hi, 16)) else {
            continue;
        };
        ranges.push((lo, hi));
    }
    // The BPF range blocks compare the IP's halves separately, so a
    // block must not straddle a 4 GiB boundary — split any that do.
    let mut split = Vec::new();
    for (mut lo, hi) in ranges {
        while lo >> 32 != (hi - 1) >> 32 {
            let edge = ((lo >> 32) + 1) << 32;
            split.push((lo, edge));
            lo = edge;
        }
        split.push((lo, hi));
    }
    // Adjacent maps lines for one DSO (r-xp segments split by
    // alignment) often touch; merging keeps the block count down.
    split.sort_unstable();
    let mut merged: Vec<(u64, u64)> = Vec::new();
    for (lo, hi) in split {
        match merged.last_mut() {
            Some(last) if last.1 == lo && last.1 >> 32 == (hi - 1) >> 32 => last.1 = hi,
            _ => merged.push((lo, hi)),
        }
    }
    if merged.len() > MAX_RANGES {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("{} executable ranges exceed filter capacity", merged.len()),
        ));
    }
    Ok(merged)
}

/// Builds the backstop program.
///
/// Layout: arch check, number allowlist, then one five-instruction
/// block per IP range (`ld ip_hi; jeq; ld ip_lo; jge lo; jgt hi-1`),
/// falling through to `ret TRAP` with `ret ALLOW` last.
fn build_filter(ranges: &[(u64, u64)]) -> Vec<SockFilter> {
    let n_nums = NR_ALLOWLIST.len();
    let n_blocks = ranges.len();
    let trap_idx = 3 + n_nums + 5 * n_blocks;
    let allow_idx = trap_idx + 1;
    let mut p = Vec::with_capacity(allow_idx + 1);

    p.push(insn(BPF_LD_W_ABS, 0, 0, OFF_ARCH));
    p.push(insn(BPF_JEQ_K, 0, (trap_idx - 2) as u8, AUDIT_ARCH_X86_64));
    p.push(insn(BPF_LD_W_ABS, 0, 0, OFF_NR));
    for (i, &num) in NR_ALLOWLIST.iter().enumerate() {
        let here = 3 + i;
        p.push(insn(BPF_JEQ_K, (allow_idx - here - 1) as u8, 0, num));
    }
    for (b, &(lo, hi)) in ranges.iter().enumerate() {
        // jf/jt offsets are relative to the *next* instruction; each
        // block's miss path lands on the next block (or the TRAP).
        let base = 3 + n_nums + 5 * b;
        let next = base + 5;
        p.push(insn(BPF_LD_W_ABS, 0, 0, OFF_IP_HI));
        p.push(insn(BPF_JEQ_K, 0, (next - base - 2) as u8, (lo >> 32) as u32));
        p.push(insn(BPF_LD_W_ABS, 0, 0, OFF_IP_LO));
        p.push(insn(BPF_JGE_K, 0, (next - base - 4) as u8, lo as u32));
        p.push(insn(BPF_JGT_K, 0, (allow_idx - next) as u8, (hi - 1) as u32));
    }
    debug_assert_eq!(p.len(), trap_idx);
    p.push(insn(BPF_RET_K, 0, 0, SECCOMP_RET_TRAP));
    p.push(insn(BPF_RET_K, 0, 0, SECCOMP_RET_ALLOW));
    p
}

/// Arms the seccomp backstop: maps the gate page, reroutes the suite's
/// raw syscalls through it, and installs the filter process-wide
/// (`TSYNC`). Call **after** [`crate::init`] — the filter is
/// irreversible, so every later legitimate syscall must already have
/// an admitted path.
///
/// # Errors
///
/// `seccomp_install` seam injections, `prctl`/`seccomp` failures, or
/// an oversized IP allowlist. On error the gate is disarmed again and
/// the process is exactly as un-hardened as before the call.
pub fn arm_backstop(policy: BypassPolicy) -> io::Result<()> {
    HARDEN_ATTEMPTED.store(true, Ordering::SeqCst);
    if BACKSTOP_ACTIVE.load(Ordering::SeqCst) {
        return Ok(());
    }
    POLICY.store(policy as u8, Ordering::SeqCst);

    // Arm from dispatcher-like context: with the engine live the
    // selector reads BLOCK here, and every raw syscall below would
    // take the slow path — where the lazy rewriter would patch
    // `raw_internal::syscall`'s instruction, the one site whose
    // patching turns the dispatcher's passthrough into unbounded
    // trampoline recursion. Parking the selector at ALLOW for the
    // (single-threaded, self-inflicted) arming window keeps every
    // arming syscall off the rewriter's radar; BLOCK is restored on
    // all exits.
    let was_blocked = sud::selector() == sud::Dispatch::Block;
    sud::set_selector(sud::Dispatch::Allow);
    let result = arm_backstop_inner();
    if was_blocked {
        sud::set_selector(sud::Dispatch::Block);
    }
    result
}

fn arm_backstop_inner() -> io::Result<()> {
    let gate = match GATE_PAGE.load(Ordering::SeqCst) {
        0 => {
            let g = map_gate_page()?;
            // The gate's own `syscall` instruction executes with the
            // selector at BLOCK whenever engine-internal code issues a
            // raw syscall from non-dispatcher context. The resulting
            // slow-path trip must emulate, never rewrite: a patched
            // gate would send the dispatcher's passthrough back into
            // the trampoline, recursing until the stack dies.
            crate::blocklist::insert(g & !4095);
            GATE_PAGE.store(g, Ordering::SeqCst);
            g
        }
        g => g,
    };

    let install = || -> io::Result<()> {
        if let Some(e) = faultinject::check(faultinject::Site::SeccompInstall) {
            return Err(io::Error::from_raw_os_error(e));
        }
        let ranges = exec_ranges(gate)?;
        let prog = build_filter(&ranges);
        let fprog = SockFprog {
            len: prog.len() as u16,
            filter: prog.as_ptr(),
        };
        unsafe {
            let r = raw_internal::syscall(SyscallArgs::new(
                nr::PRCTL,
                [PR_SET_NO_NEW_PRIVS, 1, 0, 0, 0, 0],
            ));
            if let Some(e) = Errno::from_ret(r) {
                return Err(io::Error::from_raw_os_error(e.as_i32()));
            }
            let r = raw_internal::syscall(SyscallArgs::new(
                nr::SECCOMP,
                [
                    SECCOMP_SET_MODE_FILTER,
                    SECCOMP_FILTER_FLAG_TSYNC,
                    &fprog as *const _ as u64,
                    0,
                    0,
                    0,
                ],
            ));
            if let Some(e) = Errno::from_ret(r) {
                return Err(io::Error::from_raw_os_error(e.as_i32()));
            }
            if r != 0 {
                // TSYNC refused: some thread already carries a
                // conflicting filter.
                return Err(io::Error::from_raw_os_error(libc::EPERM));
            }
        }
        Ok(())
    };

    // Arm the gate *before* installing: the install syscalls themselves
    // then already run through the soon-to-be-allowlisted page, and no
    // window exists where a filtered syscall could issue from our text.
    unsafe {
        syscalls::raw::set_syscall_gate(core::mem::transmute::<usize, syscalls::raw::GateFn>(
            gate,
        ));
    }
    match install() {
        Ok(()) => {
            BACKSTOP_ACTIVE.store(true, Ordering::SeqCst);
            Ok(())
        }
        Err(e) => {
            syscalls::raw::clear_syscall_gate();
            Err(e)
        }
    }
}

/// The achieved hardening rung.
pub fn level() -> HardenLevel {
    let pkey = PKEY_ACTIVE.load(Ordering::SeqCst);
    let backstop = BACKSTOP_ACTIVE.load(Ordering::SeqCst);
    match (pkey, backstop) {
        (true, true) => HardenLevel::Full,
        (true, false) => HardenLevel::PkeyOnly,
        (false, true) => HardenLevel::BackstopOnly,
        (false, false) if HARDEN_ATTEMPTED.load(Ordering::SeqCst) => HardenLevel::Unprotected,
        _ => HardenLevel::Off,
    }
}

/// Whether the backstop filter is live (the `SIGSYS` handler's test
/// for whether a `SYS_SECCOMP` delivery is ours to answer).
pub fn backstop_armed() -> bool {
    BACKSTOP_ACTIVE.load(Ordering::SeqCst)
}

/// Escape attempts the backstop caught.
pub fn bypass_blocked() -> u64 {
    BYPASS_BLOCKED.load(Ordering::SeqCst)
}

/// The active policy.
pub fn policy() -> BypassPolicy {
    match POLICY.load(Ordering::SeqCst) {
        1 => BypassPolicy::Quarantine,
        _ => BypassPolicy::Kill,
    }
}

/// Reads `LP_HARDEN_POLICY` (`kill` | `quarantine`, default kill).
pub fn policy_from_env() -> BypassPolicy {
    match std::env::var("LP_HARDEN_POLICY").as_deref() {
        Ok("quarantine") => BypassPolicy::Quarantine,
        _ => BypassPolicy::Kill,
    }
}

/// Answers a backstop trap from the `SIGSYS` handler: count it, repair
/// the protection the attacker disturbed, then kill or quarantine.
///
/// Returns `true` when the caller should emulate the trapped syscall
/// through the interposer (quarantine); under [`BypassPolicy::Kill`]
/// this never returns.
///
/// # Safety
///
/// Signal-handler context only.
pub(crate) unsafe fn on_bypass() -> bool {
    BYPASS_BLOCKED.fetch_add(1, Ordering::SeqCst);
    // Whatever the attacker did to get here involved opening the
    // selector slab; close it again. The selector byte itself must NOT
    // be re-BLOCKed here — in handler context that would turn our own
    // next syscall into a forced (fatal) nested SIGSYS. The quarantine
    // emulation path re-arms it through the sigreturn trampoline,
    // exactly like an ordinary slow-path trip.
    sud::pkey::rearm_after_clone();
    match policy() {
        BypassPolicy::Quarantine => true,
        BypassPolicy::Kill => {
            let pid = raw_internal::syscall(SyscallArgs::nullary(nr::GETPID));
            raw_internal::syscall(SyscallArgs::new(
                nr::KILL,
                [pid, libc::SIGKILL as u64, 0, 0, 0, 0],
            ));
            // SIGKILL cannot be blocked; if delivery is somehow
            // deferred, refuse to continue the compromised process.
            raw_internal::syscall(SyscallArgs::new(nr::EXIT_GROUP, [137, 0, 0, 0, 0, 0]));
            unreachable!("exit_group returned");
        }
    }
}

/// Re-arms hardening in a fresh task (fork/clone child): PKRU is
/// per-thread and a new thread starts with the slab open, so close it
/// before the first dispatch. The seccomp filter itself is inherited
/// by the kernel — nothing to re-install.
pub(crate) fn rearm_after_clone() {
    if HARDEN_ATTEMPTED.load(Ordering::SeqCst) {
        sud::pkey::rearm_after_clone();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gate_stub_is_position_independent_syscall() {
        // Ends in syscall; ret — no relocations, no absolute addresses.
        let n = GATE_STUB.len();
        assert_eq!(&GATE_STUB[n - 3..], &[0x0f, 0x05, 0xc3]);
        assert!(n <= 64, "stub must fit comfortably in one page");
    }

    #[test]
    fn filter_layout_is_consistent() {
        let ranges = [(0x7f00_0000_0000u64, 0x7f00_0000_4000u64), (0x1000, 0x2000)];
        let p = build_filter(&ranges);
        assert_eq!(p.len(), 3 + NR_ALLOWLIST.len() + 5 * ranges.len() + 2);
        // Last two instructions: TRAP then ALLOW.
        assert_eq!(p[p.len() - 2].k, SECCOMP_RET_TRAP);
        assert_eq!(p[p.len() - 1].k, SECCOMP_RET_ALLOW);
        // Every number-allowlist jump lands exactly on the ALLOW.
        let allow_idx = p.len() - 1;
        for (i, _) in NR_ALLOWLIST.iter().enumerate() {
            let here = 3 + i;
            assert_eq!(here + 1 + p[here].jt as usize, allow_idx);
        }
        // Every range block's in-range path lands on the ALLOW and its
        // miss paths land on the next block (or the TRAP).
        for b in 0..ranges.len() {
            let base = 3 + NR_ALLOWLIST.len() + 5 * b;
            let next = base + 5;
            assert_eq!(base + 1 + 1 + p[base + 1].jf as usize, next);
            assert_eq!(base + 3 + 1 + p[base + 3].jf as usize, next);
            assert_eq!(base + 4 + 1 + p[base + 4].jf as usize, allow_idx);
            assert_eq!(base + 4 + 1 + p[base + 4].jt as usize, next);
        }
    }

    #[test]
    fn ranges_never_straddle_4gib() {
        // exec_ranges on the live process: every range must sit within
        // one 4 GiB aligned window and include the synthetic gate.
        let ranges = exec_ranges(0xdead_0000).expect("maps parse");
        assert!(ranges.iter().any(|&(lo, _)| lo == 0xdead_0000));
        for &(lo, hi) in &ranges {
            assert!(lo < hi);
            assert_eq!(lo >> 32, (hi - 1) >> 32, "{lo:#x}-{hi:#x} straddles");
        }
    }

    #[test]
    fn main_executable_is_not_allowlisted() {
        let exe = std::fs::read_link("/proc/self/exe").unwrap();
        let maps = std::fs::read_to_string("/proc/self/maps").unwrap();
        let mut exe_exec_start = None;
        for line in maps.lines() {
            if line.contains(exe.to_str().unwrap()) && line.contains("r-xp") {
                let span = line.split_whitespace().next().unwrap();
                let lo = u64::from_str_radix(span.split('-').next().unwrap(), 16).unwrap();
                exe_exec_start = Some(lo);
                break;
            }
        }
        let exe_lo = exe_exec_start.expect("own text mapping present");
        let ranges = exec_ranges(0x1000_0000).unwrap();
        assert!(
            !ranges.iter().any(|&(lo, hi)| lo <= exe_lo && exe_lo < hi),
            "main executable text must trap"
        );
    }

    #[test]
    fn policy_and_level_defaults() {
        // Unit tests never arm anything (that would be irreversible).
        assert_eq!(policy_from_env(), BypassPolicy::Kill);
        assert!(!backstop_armed());
        assert_eq!(bypass_blocked(), 0);
    }
}

//! **lazypoline** — exhaustive, expressive, and efficient syscall
//! interposition via hybrid lazy rewriting (DSN 2024).
//!
//! The design (paper §III) combines two mechanisms:
//!
//! * **Slow path** — Linux Syscall User Dispatch delivers `SIGSYS` for
//!   every syscall executed while the per-thread selector byte reads
//!   BLOCK. The handler rewrites the faulting `syscall` instruction to
//!   `call rax` and resumes execution *at the rewritten instruction*,
//!   which transfers straight into the fast path ("selector-only SUD",
//!   §IV-A: one shared syscall-handling implementation, no allowlisted
//!   code ranges).
//! * **Fast path** — the zpoline trampoline at virtual address 0
//!   catches the `call rax`, preserves the full register file (plus
//!   SSE/AVX/x87 state, configurable), and invokes the dispatcher,
//!   which runs the registered [`interpose::SyscallHandler`].
//!
//! Because the kernel identifies every syscall instruction as it is
//! *first executed*, interposition is exhaustive — JIT-generated and
//! `dlopen`ed code included — while all subsequent executions of each
//! site pay only the rewriting-level cost.
//!
//! # Quick start
//!
//! ```no_run
//! use lazypoline::{init, Config};
//! use interpose::CountHandler;
//!
//! interpose::set_global_handler(Box::new(CountHandler::new()));
//! let engine = init(Config::default())?;
//! // Every syscall on this thread is now interposed, forever.
//! std::fs::read_to_string("/etc/hostname").ok();
//! println!("interposed {} syscalls", engine.stats().dispatches);
//! # Ok::<(), lazypoline::InitError>(())
//! ```
//!
//! # Process-global, one-way
//!
//! Initialization rewrites code in place and installs process-wide
//! state (trampoline page, `SIGSYS` disposition, signal wrappers).
//! There is no uninstall: dropping the [`Engine`] merely stops
//! intercepting *new* sites on this thread; already-rewritten sites
//! keep routing through the dispatcher (as passthrough when no handler
//! decides otherwise).

#![deny(missing_docs)]

mod blocklist;
mod clone;
mod counters;
mod engine;
mod fastpath;
pub mod harden;
mod raw_internal;
mod signals;
mod slowpath;
mod tls;

pub use engine::{health, init, mode, stats, Config, Engine, Health, InitError, Mode, Stats};
pub use harden::{BypassPolicy, HardenLevel};
pub use zpoline::XstateMask;

#[cfg(test)]
mod tests {
    #[test]
    fn public_types_are_send_sync_debug() {
        fn assert_traits<T: std::fmt::Debug + Send + Sync>() {}
        assert_traits::<super::Config>();
        assert_traits::<super::Stats>();
        assert_traits::<super::InitError>();
        assert_traits::<super::Health>();
        assert_traits::<super::Mode>();
    }
}

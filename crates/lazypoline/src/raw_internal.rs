//! Private syscall issue points for the dispatcher.
//!
//! The dispatcher must never execute a `syscall` instruction that the
//! lazy rewriter could have patched: if application code (running with
//! the selector at BLOCK) ever executed the *same* instruction, the
//! slow path would rewrite it to `call rax`, and the dispatcher's
//! passthrough would then recurse into itself forever.
//!
//! These functions are private to this crate and only ever called from
//! dispatcher context, where the selector is ALLOW — so their `syscall`
//! instructions can never raise `SIGSYS` and can never be rewritten.
//! (`#[inline(never)]` keeps them from being merged into callers that
//! might be reachable from application code.)

use core::arch::asm;
use syscalls::SyscallArgs;

/// Issues `call` natively. Never patched; see module docs.
///
/// Under hardened mode the backstop filter only admits syscalls issued
/// from allowlisted code, which this crate's text is not — so once the
/// gate is armed, delegate to [`syscalls::raw::syscall`], which routes
/// through the gate page. The recursion hazard in the module docs does
/// not apply there: the gate page is never a rewriting candidate.
///
/// # Safety
///
/// Same contract as [`syscalls::raw::syscall`].
#[inline(never)]
pub(crate) unsafe fn syscall(call: SyscallArgs) -> u64 {
    if syscalls::raw::gate_armed() {
        return syscalls::raw::syscall(call);
    }
    let ret;
    asm!(
        "syscall",
        inlateout("rax") call.nr => ret,
        in("rdi") call.args[0],
        in("rsi") call.args[1],
        in("rdx") call.args[2],
        in("r10") call.args[3],
        in("r8") call.args[4],
        in("r9") call.args[5],
        out("rcx") _,
        out("r11") _,
        options(nostack),
    );
    ret
}

/// `rt_sigaction` with the kernel's raw struct layout.
///
/// # Safety
///
/// `new`/`old` must be valid kernel sigaction pointers or null.
#[inline(never)]
pub(crate) unsafe fn rt_sigaction(sig: i32, new: u64, old: u64) -> u64 {
    syscall(SyscallArgs::new(
        syscalls::nr::RT_SIGACTION,
        [sig as u64, new, old, 8, 0, 0],
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use syscalls::{nr, Errno};

    #[test]
    fn internal_syscall_works() {
        let pid = unsafe { syscall(SyscallArgs::nullary(nr::GETPID)) };
        assert_eq!(pid, std::process::id() as u64);
    }

    #[test]
    fn rt_sigaction_query() {
        // Query SIGUSR1 disposition without changing it.
        let mut old = [0u64; 4];
        let r = unsafe { rt_sigaction(libc::SIGUSR1, 0, old.as_mut_ptr() as u64) };
        assert_eq!(Errno::from_ret(r), None);
    }
}

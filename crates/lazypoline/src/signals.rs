//! Application signal handling under interposition (paper §IV-B(c),
//! Fig. 3).
//!
//! Every application `rt_sigaction` is intercepted: the real kernel
//! registration points at [`lp_signal_wrapper`], and the application's
//! own disposition lives in a table. On delivery, the wrapper
//!
//! 1. pushes the current selector value onto the per-thread
//!    *sigreturn stack* and sets the selector to BLOCK, so syscalls
//!    made by the application handler are interposed normally (①, ②);
//! 2. invokes the recorded application handler;
//! 3. redirects the interrupted context's `rip` to the *sigreturn
//!    trampoline* before returning. The wrapper's own `rt_sigreturn`
//!    travels through the interposer (slow path the first time, fast
//!    path after), whose `rt_sigreturn` special case issues the real
//!    sigreturn with the selector at ALLOW (③);
//! 4. the kernel restores the interrupted context — whose `rip` now
//!    points at the trampoline, which pops the saved selector, makes it
//!    live again, and jumps to the original resume address (④).
//!
//! The trampoline is written to be completely transparent: it preserves
//! every general-purpose register, `rflags`, and (subject to the
//! configured [`zpoline::XstateMask`]) all extended state.

use std::sync::atomic::{AtomicU64, Ordering};

use syscalls::Errno;
use zpoline::RawFrame;

use crate::counters::{self, SIGNALS_WRAPPED};
use crate::{raw_internal, tls};

pub(crate) const SIG_DFL: u64 = 0;
pub(crate) const SIG_IGN: u64 = 1;
#[cfg(test)]
const SA_RESTORER: u64 = 0x0400_0000;
const SIGSYS_MASK_BIT: u64 = 1 << (libc::SIGSYS as u64 - 1);

/// The kernel's `rt_sigaction` struct layout (differs from libc's!).
#[repr(C)]
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub(crate) struct KernelSigaction {
    pub handler: u64,
    pub flags: u64,
    pub restorer: u64,
    pub mask: u64,
}

/// Lock-free per-signal slot. Fields are read independently in signal
/// context; a racing re-registration can tear across fields, which is
/// no worse than the inherent kernel-level registration race.
struct SigSlot {
    handler: AtomicU64,
    flags: AtomicU64,
    restorer: AtomicU64,
    mask: AtomicU64,
}

impl SigSlot {
    const fn new() -> SigSlot {
        SigSlot {
            handler: AtomicU64::new(SIG_DFL),
            flags: AtomicU64::new(0),
            restorer: AtomicU64::new(0),
            mask: AtomicU64::new(0),
        }
    }

    fn load(&self) -> KernelSigaction {
        KernelSigaction {
            handler: self.handler.load(Ordering::Acquire),
            flags: self.flags.load(Ordering::Acquire),
            restorer: self.restorer.load(Ordering::Acquire),
            mask: self.mask.load(Ordering::Acquire),
        }
    }

    fn store(&self, a: KernelSigaction) {
        self.handler.store(a.handler, Ordering::Release);
        self.flags.store(a.flags, Ordering::Release);
        self.restorer.store(a.restorer, Ordering::Release);
        self.mask.store(a.mask, Ordering::Release);
    }
}

const NSIG: usize = 65;

// A `const` item of an interior-mutable type is exactly what array
// repetition needs here: each element becomes its own fresh atomics.
#[allow(clippy::declare_interior_mutable_const)]
static APP_ACTIONS: [SigSlot; NSIG] = {
    const SLOT: SigSlot = SigSlot::new();
    [SLOT; NSIG]
};

/// The application's current disposition for `sig` (what it believes
/// is registered).
pub(crate) fn app_action(sig: i32) -> Option<KernelSigaction> {
    APP_ACTIONS.get(sig as usize).map(|s| s.load())
}

/// Intercepted `rt_sigaction` (paper: "we intercept all of the
/// application's attempts to register custom signal handlers").
pub(crate) unsafe fn handle_sigaction(frame: &mut RawFrame) -> u64 {
    let sig = frame.a1 as i64;
    let newp = frame.a2 as *const KernelSigaction;
    let oldp = frame.a3 as *mut KernelSigaction;

    // Anything unusual (bad signal, odd sigset size) goes to the kernel
    // untouched so errno semantics stay exact.
    if !(1..NSIG as i64).contains(&sig) || frame.a4 != 8 {
        return raw_internal::syscall(frame.syscall_args());
    }
    let sig = sig as i32;
    if sig == libc::SIGKILL || sig == libc::SIGSTOP {
        return raw_internal::syscall(frame.syscall_args());
    }

    let prev_app = APP_ACTIONS[sig as usize].load();

    if newp.is_null() {
        // Pure query: answer from the table (transparent — the app
        // never sees our wrapper).
        if !oldp.is_null() {
            oldp.write(prev_app);
        }
        return 0;
    }

    let app = newp.read();

    if sig == libc::SIGSYS {
        // The slow path owns SIGSYS. Record the app's wish (it is
        // consulted for non-SUD SIGSYS, e.g. seccomp) but keep our
        // kernel registration.
        APP_ACTIONS[sig as usize].store(app);
        if !oldp.is_null() {
            oldp.write(prev_app);
        }
        return 0;
    }

    let kernel_act = wrap_action(&app);
    let ret = raw_internal::rt_sigaction(sig, &kernel_act as *const _ as u64, 0);
    if Errno::from_ret(ret).is_some() {
        return ret;
    }
    APP_ACTIONS[sig as usize].store(app);
    if !oldp.is_null() {
        oldp.write(prev_app);
    }
    0
}

/// Builds the kernel-level registration standing in for an application
/// action: our wrapper, always `SA_SIGINFO`, never masking `SIGSYS`,
/// with `SA_RESETHAND` emulated in the wrapper instead of by the
/// kernel (the kernel reset would expose the *wrapper*'s removal, not
/// the app handler's).
fn wrap_action(app: &KernelSigaction) -> KernelSigaction {
    if app.handler == SIG_DFL || app.handler == SIG_IGN {
        return *app;
    }
    KernelSigaction {
        handler: lp_signal_wrapper as *const () as usize as u64,
        flags: (app.flags | libc::SA_SIGINFO as u64) & !(libc::SA_RESETHAND as u64),
        restorer: app.restorer,
        mask: app.mask & !SIGSYS_MASK_BIT,
    }
}

/// Adopts dispositions registered before lazypoline initialized, so
/// that pre-existing handlers also run under the wrapper protocol.
/// Signals 32/33 (NPTL-internal) and KILL/STOP/SYS are skipped.
pub(crate) unsafe fn adopt_existing_handlers() {
    for sig in 1..NSIG as i32 {
        if sig == libc::SIGKILL
            || sig == libc::SIGSTOP
            || sig == libc::SIGSYS
            || sig == 32
            || sig == 33
        {
            continue;
        }
        let mut old = KernelSigaction::default();
        let r = raw_internal::rt_sigaction(sig, 0, &mut old as *mut _ as u64);
        if Errno::from_ret(r).is_some() {
            continue;
        }
        APP_ACTIONS[sig as usize].store(old);
        if old.handler != SIG_DFL && old.handler != SIG_IGN {
            let wrapped = wrap_action(&old);
            let _ = raw_internal::rt_sigaction(sig, &wrapped as *const _ as u64, 0);
        }
    }
}

/// The wrapper installed as the real kernel handler for every wrapped
/// application signal.
pub(crate) unsafe extern "C" fn lp_signal_wrapper(
    sig: libc::c_int,
    info: *mut libc::siginfo_t,
    ctx: *mut libc::c_void,
) {
    counters::bump(&SIGNALS_WRAPPED);
    let prev_selector = sud::selector().as_byte();
    if tls::enrolled() {
        sud::set_selector(sud::Dispatch::Block);
    }

    let slot = APP_ACTIONS
        .get(sig as usize)
        .map(|s| s.load())
        .unwrap_or_default();

    // SA_RESETHAND: restore default disposition before running the
    // handler, as the kernel would have.
    if slot.flags & libc::SA_RESETHAND as u64 != 0 {
        let dfl = KernelSigaction {
            handler: SIG_DFL,
            flags: slot.flags & !(libc::SA_RESETHAND as u64),
            restorer: slot.restorer,
            mask: 0,
        };
        APP_ACTIONS[sig as usize].store(dfl);
        let _ = raw_internal::rt_sigaction(sig, &dfl as *const _ as u64, 0);
    }

    // Run the application handler with the dispatch guard lifted: its
    // syscalls are *application* syscalls and must be interposed.
    let saved_guard = tls::set_in_dispatch(false);
    match slot.handler {
        SIG_DFL | SIG_IGN => {
            // Raced with a concurrent re-registration; default-action
            // emulation for DFL is out of scope — treat as ignore.
        }
        h if slot.flags & libc::SA_SIGINFO as u64 != 0 => {
            let f: extern "C" fn(libc::c_int, *mut libc::siginfo_t, *mut libc::c_void) =
                std::mem::transmute(h as usize);
            f(sig, info, ctx);
        }
        h => {
            let f: extern "C" fn(libc::c_int) = std::mem::transmute(h as usize);
            f(sig);
        }
    }
    tls::set_in_dispatch(saved_guard);

    // Redirect the resume point through the sigreturn trampoline so the
    // selector becomes live again only after the kernel has restored
    // the interrupted context (paper Fig. 3 ④). The app handler may
    // have modified the context's rip — honour it by saving whatever is
    // there *now*.
    let mut uc = sud::sigsys::UContext::from_ptr(ctx);
    if tls::push_sigreturn(prev_selector, uc.rip()) {
        uc.set_rip(lp_sigreturn_tramp as *const () as usize as u64);
    }
    // else: sigreturn stack exhausted — leave the selector BLOCKed
    // (safe: one extra slow-path trip at worst) and resume directly.
}

/// Rust side of the sigreturn trampoline: pops the `(selector, rip)`
/// entry, restores the selector, and returns the resume address.
#[no_mangle]
unsafe extern "C" fn lp_sigreturn_pop() -> u64 {
    match tls::pop_sigreturn() {
        Some(e) => {
            sud::set_selector(sud::Dispatch::from_byte(e.selector as u8));
            e.rip
        }
        None => {
            // Corrupted state: a trampoline resume with no matching
            // push. Nothing sane to resume to — fail loudly.
            let msg = b"lazypoline: sigreturn stack underflow\n";
            raw_internal::syscall(syscalls::SyscallArgs::new(
                syscalls::nr::WRITE,
                [2, msg.as_ptr() as u64, msg.len() as u64, 0, 0, 0],
            ));
            raw_internal::syscall(syscalls::SyscallArgs::new(
                syscalls::nr::EXIT_GROUP,
                [117, 0, 0, 0, 0, 0],
            ));
            0
        }
    }
}

// The sigreturn trampoline (paper Fig. 3 step ④). Runs in application
// context immediately after a kernel sigreturn; must be fully
// transparent. Flag-mutating instructions are avoided outside the
// pushfq/popfq window; extended state is preserved around the Rust
// helper via xsave64/xrstor64 (mask shared with the fast-path stub).
std::arch::global_asm!(
    r#"
    .text
    .globl lp_sigreturn_tramp
    .type lp_sigreturn_tramp, @function
    .align 16
lp_sigreturn_tramp:
    lea rsp, [rsp - 128]          # skip the interrupted frame's red zone
    push rbp
    mov rbp, rsp
    push rbx                      # [rbp-8]
    lea rsp, [rsp - 8]            # [rbp-16] = resume-rip slot
    push rax
    push rcx
    push rdx
    push rsi
    push rdi
    push r8
    push r9
    push r10
    push r11
    pushfq                        # [rbp-96]; flags free to clobber below
    xor ebx, ebx
    mov rax, qword ptr [rip + LP_XSTATE_MASK@GOTPCREL]
    movzx eax, byte ptr [rax]
    test eax, eax
    jz 2f
    lea rsp, [rsp - 4160]
    and rsp, -64
    mov rbx, rsp
    xor edx, edx
    mov qword ptr [rbx + 512], rdx
    mov qword ptr [rbx + 520], rdx
    mov qword ptr [rbx + 528], rdx
    mov qword ptr [rbx + 536], rdx
    mov qword ptr [rbx + 544], rdx
    mov qword ptr [rbx + 552], rdx
    mov qword ptr [rbx + 560], rdx
    mov qword ptr [rbx + 568], rdx
    xsave64 [rbx]
2:
    and rsp, -16
    call lp_sigreturn_pop@PLT         # rax = resume rip; selector restored
    mov qword ptr [rbp - 16], rax
    test rbx, rbx
    jz 3f
    mov rax, qword ptr [rip + LP_XSTATE_MASK@GOTPCREL]
    movzx eax, byte ptr [rax]
    xor edx, edx
    xrstor64 [rbx]
3:
    lea rsp, [rbp - 96]
    popfq
    pop r11
    pop r10
    pop r9
    pop r8
    pop rdi
    pop rsi
    pop rdx
    pop rcx
    pop rax
    lea rsp, [rsp + 8]
    pop rbx
    pop rbp
    lea rsp, [rsp + 128]
    jmp qword ptr [rsp - 152]     # resume-rip slot, now in dead stack
    .size lp_sigreturn_tramp, . - lp_sigreturn_tramp
"#
);

extern "C" {
    pub(crate) fn lp_sigreturn_tramp();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wrap_action_preserves_dfl_ign() {
        let dfl = KernelSigaction::default();
        assert_eq!(wrap_action(&dfl), dfl);
        let ign = KernelSigaction {
            handler: SIG_IGN,
            ..Default::default()
        };
        assert_eq!(wrap_action(&ign), ign);
    }

    #[test]
    fn wrap_action_installs_wrapper_and_strips_sigsys() {
        let app = KernelSigaction {
            handler: 0xdead_beef,
            flags: (libc::SA_RESTART | libc::SA_RESETHAND) as u64 | SA_RESTORER,
            restorer: 0x1234,
            mask: SIGSYS_MASK_BIT | (1 << 9),
        };
        let w = wrap_action(&app);
        assert_eq!(w.handler, lp_signal_wrapper as *const () as usize as u64);
        assert_ne!(w.flags & libc::SA_SIGINFO as u64, 0);
        assert_eq!(w.flags & libc::SA_RESETHAND as u64, 0);
        assert_ne!(w.flags & libc::SA_RESTART as u64, 0);
        assert_ne!(w.flags & SA_RESTORER, 0);
        assert_eq!(w.restorer, 0x1234);
        assert_eq!(w.mask & SIGSYS_MASK_BIT, 0);
        assert_ne!(w.mask & (1 << 9), 0);
    }

    #[test]
    fn slot_store_load_roundtrip() {
        let slot = SigSlot::new();
        let a = KernelSigaction {
            handler: 1,
            flags: 2,
            restorer: 3,
            mask: 4,
        };
        slot.store(a);
        assert_eq!(slot.load(), a);
    }

    #[test]
    fn sigreturn_tramp_restores_registers_and_selector() {
        // Drive the trampoline directly (no kernel involved): push an
        // entry whose rip is a label right after a jmp to the tramp,
        // then verify registers and selector survive.
        unsafe {
            sud::set_selector(sud::Dispatch::Allow);
            let resume: u64;
            let r12_out: u64;
            let r13_out: u64;
            // The continuation address is taken with lea. (rbx cannot
            // be an asm operand under LLVM, so the sentinels use
            // r12/r13 — r12/r13 cross the trampoline untouched, and
            // rbx preservation is covered by the fast-path stub tests.)
            core::arch::asm!(
                "lea rdi, [rip + 8f]",
                // Aligned call frame for the Rust helper.
                "push rbp",
                "mov rbp, rsp",
                "and rsp, -16",
                "call {push_fn}",          // records (BLOCK, resume-rip)
                "mov rsp, rbp",
                "pop rbp",
                "mov r12, 0x1111222233334444",
                "mov r13, 0x5555666677778888",
                "jmp {tramp}",
                "8:",
                push_fn = sym push_for_test,
                tramp = sym lp_sigreturn_tramp,
                out("rdi") _,
                lateout("r12") r12_out,
                lateout("r13") r13_out,
                out("rax") resume,
                out("rcx") _, out("rdx") _, out("rsi") _,
                out("r8") _, out("r9") _, out("r10") _, out("r11") _,
                out("r14") _, out("r15") _,
            );
            let _ = resume;
            assert_eq!(r12_out, 0x1111_2222_3333_4444);
            assert_eq!(r13_out, 0x5555_6666_7777_8888);
            // The entry requested BLOCK; the tramp must have applied it.
            assert_eq!(sud::selector(), sud::Dispatch::Block);
            sud::set_selector(sud::Dispatch::Allow);
        }
    }

    unsafe extern "C" fn push_for_test(rip: u64) {
        // No assert here: panicking across `extern "C"` aborts. The
        // outer test observes failure through the selector check.
        let _ = tls::push_sigreturn(sud::Dispatch::Block.as_byte(), rip);
    }
}

//! The SUD slow path: the `SIGSYS` handler that performs lazy rewriting
//! (paper §IV-A).
//!
//! On every dispatch the handler:
//!
//! 1. sets the selector to ALLOW (its own syscalls must not recurse),
//! 2. rewrites the faulting `syscall` instruction to `call rax`
//!    ([`zpoline::patch_syscall_site`], under the rewrite spinlock),
//! 3. rewinds the interrupted `rip` to the *rewritten* instruction and
//!    sigreturns with the selector still at ALLOW ("selector-only
//!    SUD"). Re-execution enters the fast path, which handles the
//!    syscall and re-arms the selector on exit — giving the paper's
//!    single shared handling implementation for both paths.
//!
//! If the site cannot be patched (e.g. unwritable special mapping), the
//! syscall is emulated right here through the same shared
//! [`crate::fastpath::handle_syscall`] logic, and the selector is
//! re-armed through the sigreturn trampoline.

use std::sync::atomic::{AtomicBool, Ordering};

use sud::sigsys::{SigsysInfo, UContext};
use sud::Dispatch;
use zpoline::RawFrame;

use crate::counters::{self, SITES_PATCHED, SLOW_PATH_HITS, UNPATCHABLE_EMULATIONS};
use crate::{fastpath, signals, tls};

/// When false, the slow path never rewrites: every dispatched syscall
/// is emulated in the handler, which turns the engine into a pure
/// SUD interposer — the configuration Table II's "SUD" row measures,
/// and an ablation of the paper's central design choice.
pub(crate) static LAZY_REWRITING: AtomicBool = AtomicBool::new(true);

/// When true (default), a `SIGSYS` for an unpatched site rewrites every
/// rewritable `syscall` site on that executable page in one
/// spinlock/`mprotect` window ([`zpoline::patch_page_sites`]), instead
/// of only the faulting site. Each extra site patched here is a future
/// slow-path trip that never happens. Disable via
/// [`crate::Config::batch_rewriting`] to ablate (the `ablate` bench
/// compares `SITES_PATCHED` vs `SLOW_PATH_HITS` across both modes).
pub(crate) static BATCH_REWRITING: AtomicBool = AtomicBool::new(true);

/// The process-wide `SIGSYS` handler.
///
/// # Safety
///
/// Installed via `sigaction` with `SA_SIGINFO`; only the kernel calls
/// it.
pub(crate) unsafe extern "C" fn sigsys_handler(
    sig: libc::c_int,
    info: *mut libc::siginfo_t,
    ctx: *mut libc::c_void,
) {
    let si = SigsysInfo::from_siginfo(info);
    if si.code != sud::SYS_USER_DISPATCH {
        // A genuine SIGSYS (e.g. seccomp): forward to the application's
        // recorded handler, if any.
        forward_foreign_sigsys(sig, info, ctx);
        return;
    }

    counters::bump(&SLOW_PATH_HITS);
    sud::set_selector(Dispatch::Allow);

    let mut uc = UContext::from_ptr(ctx);
    let insn = si.syscall_insn_addr();

    let patch_result = if !LAZY_REWRITING.load(Ordering::Relaxed) {
        Err(zpoline::PatchError::TrampolineMissing)
    } else if BATCH_REWRITING.load(Ordering::Relaxed) {
        // Page-granular batch rewriting: one SIGSYS pays the
        // lock/mprotect cost for every verifiable site on the page.
        zpoline::patch_page_sites(insn).map(|batch| {
            for _ in 0..batch.extra_patched {
                counters::bump(&SITES_PATCHED);
            }
            batch.site
        })
    } else {
        zpoline::patch_syscall_site(insn)
    };
    match patch_result {
        Ok(zpoline::PatchOutcome::Patched) => {
            counters::bump(&SITES_PATCHED);
            uc.set_rip(insn as u64);
        }
        Ok(zpoline::PatchOutcome::AlreadyPatched) => {
            // Another thread raced us; re-execute through the fast path
            // all the same.
            uc.set_rip(insn as u64);
        }
        Err(_) => {
            // Unpatchable site: emulate the syscall here through the
            // shared dispatcher logic (paper §IV-A(c): one handling
            // implementation), then re-arm the selector via the
            // sigreturn trampoline.
            counters::bump(&UNPATCHABLE_EMULATIONS);
            let args = uc.syscall_args();
            let mut frame = RawFrame {
                nr: args.nr,
                a1: args.args[0],
                a2: args.args[1],
                a3: args.args[2],
                a4: args.args[3],
                a5: args.args[4],
                a6: args.args[5],
                saved_rbx: 0,
                saved_rbp: 0,
                ret_addr: uc.rip(),
            };
            let was = tls::set_in_dispatch(true);
            let ret = fastpath::handle_syscall(&mut frame, true);
            tls::set_in_dispatch(was);
            uc.set_rax(ret);
            let restore = if tls::enrolled() {
                Dispatch::Block
            } else {
                Dispatch::Allow
            };
            if tls::push_sigreturn(restore.as_byte(), uc.rip()) {
                uc.set_rip(signals::lp_sigreturn_tramp as *const () as usize as u64);
            }
            // On overflow: resume directly with ALLOW; interposition of
            // new sites on this thread pauses until the next wrapped
            // event — safe degradation.
        }
    }
    // Return with the selector at ALLOW; the kernel's sigreturn cannot
    // recurse, and the fast path re-arms BLOCK on its way out.
}

/// Delivers a non-SUD `SIGSYS` to the application handler recorded in
/// the signal table (the app may legitimately use seccomp + SIGSYS).
unsafe fn forward_foreign_sigsys(
    sig: libc::c_int,
    info: *mut libc::siginfo_t,
    ctx: *mut libc::c_void,
) {
    if let Some(act) = signals::app_action(sig) {
        match act.handler {
            signals::SIG_DFL | signals::SIG_IGN => {}
            h if act.flags & libc::SA_SIGINFO as u64 != 0 => {
                let f: extern "C" fn(libc::c_int, *mut libc::siginfo_t, *mut libc::c_void) =
                    std::mem::transmute(h as usize);
                f(sig, info, ctx);
            }
            h => {
                let f: extern "C" fn(libc::c_int) = std::mem::transmute(h as usize);
                f(sig);
            }
        }
    }
}

//! The SUD slow path: the `SIGSYS` handler that performs lazy rewriting
//! (paper §IV-A).
//!
//! On every dispatch the handler:
//!
//! 1. sets the selector to ALLOW (its own syscalls must not recurse),
//! 2. rewrites the faulting `syscall` instruction to `call rax`
//!    ([`zpoline::patch_syscall_site`], under the rewrite spinlock),
//! 3. rewinds the interrupted `rip` to the *rewritten* instruction and
//!    sigreturns with the selector still at ALLOW ("selector-only
//!    SUD"). Re-execution enters the fast path, which handles the
//!    syscall and re-arms the selector on exit — giving the paper's
//!    single shared handling implementation for both paths.
//!
//! When the site is not rewritten, the syscall is emulated right here
//! through the same shared [`crate::fastpath::handle_syscall`] logic,
//! and the selector is re-armed through the sigreturn trampoline. The
//! reasons are kept distinct (they answer different questions):
//!
//! * **rewriting disabled** — a configuration state (pure-SUD mode, or
//!   the `Mode::SudOnly` degradation rung), counted as
//!   `DISABLED_MODE_EMULATIONS`;
//! * **page blocklisted** — a previous patch attempt failed
//!   persistently, so the page's `SIGSYS` trips skip straight to
//!   emulation (counted as `UNPATCHABLE_EMULATIONS`);
//! * **patch failed** — this attempt failed, after a bounded retry for
//!   transient `mprotect` errors; persistent `mprotect` failures insert
//!   the page into the blocklist (also `UNPATCHABLE_EMULATIONS`).

use std::sync::atomic::{AtomicBool, Ordering};

use sud::sigsys::{SigsysInfo, UContext};
use sud::Dispatch;
use syscalls::Errno;
use zpoline::RawFrame;

use crate::counters::{
    self, DISABLED_MODE_EMULATIONS, PAGES_BLOCKLISTED, PATCH_RETRIES, SITES_PATCHED,
    SLOW_PATH_HITS, UNPATCHABLE_EMULATIONS,
};
use crate::{blocklist, fastpath, signals, tls};

/// When false, the slow path never rewrites: every dispatched syscall
/// is emulated in the handler, which turns the engine into a pure
/// SUD interposer — the configuration Table II's "SUD" row measures,
/// an ablation of the paper's central design choice, and the engine's
/// `Mode::SudOnly` degradation rung (no trampoline to `call` into).
pub(crate) static LAZY_REWRITING: AtomicBool = AtomicBool::new(true);

/// When true (default), a `SIGSYS` for an unpatched site rewrites every
/// rewritable `syscall` site on that executable page in one
/// spinlock/`mprotect` window ([`zpoline::patch_page_sites`]), instead
/// of only the faulting site. Each extra site patched here is a future
/// slow-path trip that never happens. Disable via
/// [`crate::Config::batch_rewriting`] to ablate (the `ablate` bench
/// compares `SITES_PATCHED` vs `SLOW_PATH_HITS` across both modes).
pub(crate) static BATCH_REWRITING: AtomicBool = AtomicBool::new(true);

/// Additional patch attempts after a transient `mprotect` failure
/// (`EAGAIN`/`ENOMEM`). Plain capped re-attempts — no sleeping in a
/// signal handler.
const PATCH_RETRY_LIMIT: u32 = 3;

/// Why the faulting site is being emulated instead of rewritten.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum EmulationReason {
    /// Lazy rewriting is off — a configuration state, not a failure.
    RewritingDisabled,
    /// The page is blocklisted or this patch attempt failed.
    Unpatchable,
}

/// The process-wide `SIGSYS` handler.
///
/// # Safety
///
/// Installed via `sigaction` with `SA_SIGINFO`; only the kernel calls
/// it.
pub(crate) unsafe extern "C" fn sigsys_handler(
    sig: libc::c_int,
    info: *mut libc::siginfo_t,
    ctx: *mut libc::c_void,
) {
    let si = SigsysInfo::from_siginfo(info);
    if si.code != sud::SYS_USER_DISPATCH {
        if si.code == crate::harden::SYS_SECCOMP && crate::harden::backstop_armed() {
            // The hardened backstop caught a syscall from
            // non-allowlisted code with the selector at ALLOW — a
            // bypass attempt. Kill never returns; quarantine asks us
            // to route the syscall through the interposer after all.
            if crate::harden::on_bypass() {
                let mut uc = UContext::from_ptr(ctx);
                emulate_in_handler(&mut uc);
            }
            return;
        }
        // A genuine SIGSYS (e.g. application seccomp): forward to the
        // application's recorded handler, if any.
        forward_foreign_sigsys(sig, info, ctx);
        return;
    }

    counters::bump(&SLOW_PATH_HITS);
    sud::set_selector(Dispatch::Allow);

    let mut uc = UContext::from_ptr(ctx);
    let insn = si.syscall_insn_addr();
    let page = insn & !4095;

    let emulate_reason = if !LAZY_REWRITING.load(Ordering::Relaxed) {
        Some(EmulationReason::RewritingDisabled)
    } else if blocklist::contains(page) {
        // Negative cache hit: this page's mprotect window is known
        // broken — skip the lock + maps walk + doomed mprotect.
        Some(EmulationReason::Unpatchable)
    } else {
        match patch_with_retry(insn, page) {
            Ok(zpoline::PatchOutcome::Patched) => {
                counters::bump(&SITES_PATCHED);
                None
            }
            // Another thread raced us; re-execute through the fast
            // path all the same.
            Ok(zpoline::PatchOutcome::AlreadyPatched) => None,
            Err(_) => Some(EmulationReason::Unpatchable),
        }
    };

    match emulate_reason {
        None => uc.set_rip(insn as u64),
        Some(reason) => {
            counters::bump(match reason {
                EmulationReason::RewritingDisabled => &DISABLED_MODE_EMULATIONS,
                EmulationReason::Unpatchable => &UNPATCHABLE_EMULATIONS,
            });
            emulate_in_handler(&mut uc);
        }
    }
    // Return with the selector at ALLOW; the kernel's sigreturn cannot
    // recurse, and the fast path re-arms BLOCK on its way out.
}

/// One patch attempt honouring the batch-rewriting setting.
unsafe fn patch_once(insn: usize) -> Result<zpoline::PatchOutcome, zpoline::PatchError> {
    if BATCH_REWRITING.load(Ordering::Relaxed) {
        // Page-granular batch rewriting: one SIGSYS pays the
        // lock/mprotect cost for every verifiable site on the page.
        zpoline::patch_page_sites(insn).map(|batch| {
            for _ in 0..batch.extra_patched {
                counters::bump(&SITES_PATCHED);
            }
            batch.site
        })
    } else {
        zpoline::patch_syscall_site(insn)
    }
}

/// Patches `insn`, retrying transient `mprotect` failures a bounded
/// number of times; a still-failing `mprotect` blocklists the page so
/// future `SIGSYS` trips on it go straight to emulation.
unsafe fn patch_with_retry(
    insn: usize,
    page: usize,
) -> Result<zpoline::PatchOutcome, zpoline::PatchError> {
    let mut result = patch_once(insn);
    let mut retries = 0;
    while retries < PATCH_RETRY_LIMIT {
        match result {
            Err(zpoline::PatchError::MprotectFailed(e))
                if e == Errno::EAGAIN || e == Errno::ENOMEM =>
            {
                counters::bump(&PATCH_RETRIES);
                retries += 1;
                std::hint::spin_loop();
                result = patch_once(insn);
            }
            _ => break,
        }
    }
    if let Err(zpoline::PatchError::MprotectFailed(_)) = result {
        // Persistent mprotect failure: negative-cache the page.
        // (Non-mprotect errors — unmapped address, foreign bytes — are
        // not page properties, so they are not cached.)
        if blocklist::insert(page) {
            counters::bump(&PAGES_BLOCKLISTED);
        }
    }
    result
}

/// Emulates the intercepted syscall inside the handler through the
/// shared dispatcher logic (paper §IV-A(c): one handling
/// implementation), then re-arms the selector via the sigreturn
/// trampoline.
///
/// The `slowpath_emulate` fault seam fires *before* the handler is
/// notified: an injected fault means the syscall never executed and the
/// application sees the errno — exactly the contract of a real
/// `EINTR`/`EAGAIN` from the kernel, and therefore not a lost
/// interposition. The engine's *internal* emulations
/// ([`fastpath::needs_emulation`]: `rt_sigreturn`, signal-table and
/// task-management plumbing) are exempt — the kernel cannot fail those
/// with a transient errno, and pretending it can would corrupt signal
/// frames rather than model any real fault.
unsafe fn emulate_in_handler(uc: &mut UContext) {
    let nr_ = uc.syscall_args().nr;
    let injected = if fastpath::needs_emulation(nr_) {
        None
    } else {
        faultinject::check(faultinject::Site::SlowpathEmulate)
    };
    let ret = if let Some(e) = injected {
        Errno::new(e).as_ret()
    } else {
        let args = uc.syscall_args();
        let mut frame = RawFrame {
            nr: args.nr,
            a1: args.args[0],
            a2: args.args[1],
            a3: args.args[2],
            a4: args.args[3],
            a5: args.args[4],
            a6: args.args[5],
            saved_rbx: 0,
            saved_rbp: 0,
            ret_addr: uc.rip(),
        };
        let was = tls::set_in_dispatch(true);
        let ret = fastpath::handle_syscall(&mut frame, true);
        tls::set_in_dispatch(was);
        ret
    };
    uc.set_rax(ret);
    let restore = if tls::enrolled() {
        Dispatch::Block
    } else {
        Dispatch::Allow
    };
    if tls::push_sigreturn(restore.as_byte(), uc.rip()) {
        uc.set_rip(signals::lp_sigreturn_tramp as *const () as usize as u64);
    }
    // On overflow: resume directly with ALLOW; interposition of
    // new sites on this thread pauses until the next wrapped
    // event — safe degradation.
}

/// Delivers a non-SUD `SIGSYS` to the application handler recorded in
/// the signal table (the app may legitimately use seccomp + SIGSYS).
unsafe fn forward_foreign_sigsys(
    sig: libc::c_int,
    info: *mut libc::siginfo_t,
    ctx: *mut libc::c_void,
) {
    if let Some(act) = signals::app_action(sig) {
        match act.handler {
            signals::SIG_DFL | signals::SIG_IGN => {}
            h if act.flags & libc::SA_SIGINFO as u64 != 0 => {
                let f: extern "C" fn(libc::c_int, *mut libc::siginfo_t, *mut libc::c_void) =
                    std::mem::transmute(h as usize);
                f(sig, info, ctx);
            }
            h => {
                let f: extern "C" fn(libc::c_int) = std::mem::transmute(h as usize);
                f(sig);
            }
        }
    }
}

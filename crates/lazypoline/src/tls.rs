//! Per-thread interposition state.
//!
//! The paper keeps per-task state in `%gs`-relative memory regions
//! (§IV-B(a)); this reproduction uses Rust thread-locals, which are
//! `%fs`-relative on x86-64 and satisfy the same requirement: per-task
//! storage addressable without spilling application registers. All
//! thread-locals here are `const`-initialized, so accesses compile to
//! plain TLS loads with no lazy-initialization branch — safe from
//! signal handlers and from the dispatcher.

use std::cell::{Cell, UnsafeCell};

/// Maximum depth of nested signal deliveries whose selector state we
/// can track. 64 nested signals on one thread would already mean a
/// runaway handler.
pub(crate) const SIGRETURN_STACK_DEPTH: usize = 64;

/// One saved `(selector, resume rip)` pair — pushed when a wrapped
/// application signal handler is entered, popped by the sigreturn
/// trampoline (paper Fig. 3 steps ① and ④).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(C)]
pub(crate) struct SigreturnEntry {
    /// Raw selector byte to restore (widened for alignment).
    pub selector: u64,
    /// Where the application should resume.
    pub rip: u64,
}

#[repr(C)]
pub(crate) struct SigreturnStack {
    pub idx: usize,
    pub entries: [SigreturnEntry; SIGRETURN_STACK_DEPTH],
}

thread_local! {
    /// Whether this thread asked for interposition (drives the
    /// selector value the dispatcher restores on exit).
    static ENROLLED: Cell<bool> = const { Cell::new(false) };

    /// Re-entrancy guard: set while the dispatcher runs handler code,
    /// cleared across application signal-handler invocations (which
    /// must be interposed normally).
    static IN_DISPATCH: Cell<bool> = const { Cell::new(false) };

    /// The per-thread sigreturn stack (paper §IV-B(c)).
    static SRSTACK: UnsafeCell<SigreturnStack> = const {
        UnsafeCell::new(SigreturnStack {
            idx: 0,
            entries: [SigreturnEntry { selector: 0, rip: 0 }; SIGRETURN_STACK_DEPTH],
        })
    };
}

pub(crate) fn enrolled() -> bool {
    ENROLLED.with(|c| c.get())
}

pub(crate) fn set_enrolled(v: bool) {
    ENROLLED.with(|c| c.set(v));
}

pub(crate) fn in_dispatch() -> bool {
    IN_DISPATCH.with(|c| c.get())
}

pub(crate) fn set_in_dispatch(v: bool) -> bool {
    IN_DISPATCH.with(|c| c.replace(v))
}

/// Pushes a `(selector, rip)` pair for the sigreturn trampoline.
///
/// Returns `false` on overflow (the caller then falls back to leaving
/// the selector at BLOCK, which is safe: at worst one extra slow-path
/// round trip).
pub(crate) fn push_sigreturn(selector: u8, rip: u64) -> bool {
    SRSTACK.with(|s| {
        // SAFETY: single-threaded access (TLS); signal nesting is
        // strictly stack-like on one thread.
        let st = unsafe { &mut *s.get() };
        if st.idx >= SIGRETURN_STACK_DEPTH {
            return false;
        }
        st.entries[st.idx] = SigreturnEntry {
            selector: selector as u64,
            rip,
        };
        st.idx += 1;
        true
    })
}

/// Pops the most recent `(selector, rip)` pair; `None` when empty.
pub(crate) fn pop_sigreturn() -> Option<SigreturnEntry> {
    SRSTACK.with(|s| {
        let st = unsafe { &mut *s.get() };
        if st.idx == 0 {
            return None;
        }
        st.idx -= 1;
        Some(st.entries[st.idx])
    })
}

/// Current sigreturn-stack depth (for tests and stats).
#[cfg(test)]
pub(crate) fn sigreturn_depth() -> usize {
    SRSTACK.with(|s| unsafe { &*s.get() }.idx)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn enrollment_flag_roundtrip() {
        assert!(!enrolled());
        set_enrolled(true);
        assert!(enrolled());
        set_enrolled(false);
    }

    #[test]
    fn dispatch_guard_replace_semantics() {
        assert!(!in_dispatch());
        assert!(!set_in_dispatch(true));
        assert!(in_dispatch());
        assert!(set_in_dispatch(false));
        assert!(!in_dispatch());
    }

    #[test]
    fn sigreturn_stack_lifo() {
        assert_eq!(pop_sigreturn(), None);
        assert!(push_sigreturn(1, 0x1000));
        assert!(push_sigreturn(0, 0x2000));
        assert_eq!(sigreturn_depth(), 2);
        assert_eq!(
            pop_sigreturn(),
            Some(SigreturnEntry {
                selector: 0,
                rip: 0x2000
            })
        );
        assert_eq!(
            pop_sigreturn(),
            Some(SigreturnEntry {
                selector: 1,
                rip: 0x1000
            })
        );
        assert_eq!(pop_sigreturn(), None);
    }

    #[test]
    fn sigreturn_stack_overflow_is_reported() {
        for i in 0..SIGRETURN_STACK_DEPTH {
            assert!(push_sigreturn(0, i as u64));
        }
        assert!(!push_sigreturn(0, 999));
        for _ in 0..SIGRETURN_STACK_DEPTH {
            assert!(pop_sigreturn().is_some());
        }
        assert_eq!(pop_sigreturn(), None);
    }

    #[test]
    fn tls_is_per_thread() {
        set_enrolled(true);
        let other = std::thread::spawn(enrolled).join().unwrap();
        assert!(!other);
        set_enrolled(false);
    }
}

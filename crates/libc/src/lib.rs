//! Vendored, minimal `libc` replacement for offline builds.
//!
//! The build environment has no access to crates.io, so this workspace
//! vendors the exact FFI surface it uses as a path dependency named
//! `libc`. Rust's `std` already links the platform C library, so every
//! `extern "C"` declaration below binds to the real glibc symbol; the
//! types and constants mirror the x86_64-unknown-linux-gnu definitions
//! of the upstream `libc` crate (and are checked against the kernel ABI
//! by this crate's tests where layout matters).
//!
//! **x86_64-linux-gnu only.** Items are added strictly on demand.

#![allow(non_camel_case_types)]
#![allow(clippy::missing_safety_doc)]

pub use core::ffi::c_void;

pub type c_char = i8;
pub type c_schar = i8;
pub type c_uchar = u8;
pub type c_short = i16;
pub type c_ushort = u16;
pub type c_int = i32;
pub type c_uint = u32;
pub type c_long = i64;
pub type c_ulong = u64;
pub type c_longlong = i64;
pub type c_ulonglong = u64;
pub type size_t = usize;
pub type ssize_t = isize;
pub type off_t = i64;
pub type pid_t = i32;
pub type mode_t = u32;
pub type socklen_t = u32;
pub type sa_family_t = u16;
pub type in_port_t = u16;
pub type in_addr_t = u32;
pub type greg_t = i64;
pub type sighandler_t = usize;

// ——— errno ———————————————————————————————————————————————————————————

pub const EPERM: c_int = 1;
pub const EINVAL: c_int = 22;
pub const ENOSYS: c_int = 38;
pub const ENOTCONN: c_int = 107;
pub const EINPROGRESS: c_int = 115;

// ——— memory protection / mmap ————————————————————————————————————————

pub const PROT_NONE: c_int = 0;
pub const PROT_READ: c_int = 1;
pub const PROT_WRITE: c_int = 2;
pub const PROT_EXEC: c_int = 4;

pub const MAP_PRIVATE: c_int = 0x0002;
pub const MAP_FIXED: c_int = 0x0010;
pub const MAP_ANONYMOUS: c_int = 0x0020;
pub const MAP_STACK: c_int = 0x0002_0000;
pub const MAP_FAILED: *mut c_void = !0 as *mut c_void;

// ——— open/fcntl ——————————————————————————————————————————————————————

pub const O_RDONLY: c_int = 0;
pub const O_CLOEXEC: c_int = 0x80000;
pub const F_DUPFD_CLOEXEC: c_int = 1030;

// ——— signals —————————————————————————————————————————————————————————

pub const SIGKILL: c_int = 9;
pub const SIGUSR1: c_int = 10;
pub const SIGUSR2: c_int = 12;
pub const SIGTERM: c_int = 15;
pub const SIGSTOP: c_int = 19;
pub const SIGSYS: c_int = 31;

pub const SA_SIGINFO: c_int = 4;
pub const SA_RESTART: c_int = 0x1000_0000;
pub const SA_RESETHAND: c_int = 0x8000_0000_u32 as c_int;

pub const SIG_BLOCK: c_int = 0;
pub const SIG_UNBLOCK: c_int = 1;
pub const SIG_SETMASK: c_int = 2;

/// glibc `sigset_t`: 1024 bits.
#[repr(C)]
#[derive(Clone, Copy)]
pub struct sigset_t {
    __val: [u64; 16],
}

#[repr(C)]
#[derive(Clone, Copy)]
pub struct sigaction {
    pub sa_sigaction: sighandler_t,
    pub sa_mask: sigset_t,
    pub sa_flags: c_int,
    pub sa_restorer: Option<unsafe extern "C" fn()>,
}

/// glibc `siginfo_t`: 128 bytes, 8-aligned; only the leading three
/// fields are named (the union tail is accessed by consumers through
/// their own `#[repr(C)]` casts, as the kernel ABI intends).
#[repr(C)]
#[derive(Clone, Copy)]
pub struct siginfo_t {
    pub si_signo: c_int,
    pub si_errno: c_int,
    pub si_code: c_int,
    _pad: [c_int; 29],
    _align: [u64; 0],
}

#[repr(C)]
#[derive(Clone, Copy)]
pub struct stack_t {
    pub ss_sp: *mut c_void,
    pub ss_flags: c_int,
    pub ss_size: size_t,
}

// mcontext gregs indices (glibc <sys/ucontext.h>).
pub const REG_R8: c_int = 0;
pub const REG_R9: c_int = 1;
pub const REG_R10: c_int = 2;
pub const REG_R11: c_int = 3;
pub const REG_R12: c_int = 4;
pub const REG_R13: c_int = 5;
pub const REG_R14: c_int = 6;
pub const REG_R15: c_int = 7;
pub const REG_RDI: c_int = 8;
pub const REG_RSI: c_int = 9;
pub const REG_RBP: c_int = 10;
pub const REG_RBX: c_int = 11;
pub const REG_RDX: c_int = 12;
pub const REG_RAX: c_int = 13;
pub const REG_RCX: c_int = 14;
pub const REG_RSP: c_int = 15;
pub const REG_RIP: c_int = 16;
pub const REG_EFL: c_int = 17;

#[repr(C)]
#[derive(Clone, Copy)]
pub struct mcontext_t {
    pub gregs: [greg_t; 23],
    pub fpregs: *mut c_void,
    __reserved1: [u64; 8],
}

#[repr(C)]
#[derive(Clone, Copy)]
pub struct ucontext_t {
    pub uc_flags: c_ulong,
    pub uc_link: *mut ucontext_t,
    pub uc_stack: stack_t,
    pub uc_mcontext: mcontext_t,
    pub uc_sigmask: sigset_t,
    __fpregs_mem: [u64; 64],
    __ssp: [u64; 4],
}

// ——— clone flags —————————————————————————————————————————————————————

pub const CLONE_VM: c_int = 0x100;
pub const CLONE_FS: c_int = 0x200;
pub const CLONE_FILES: c_int = 0x400;
pub const CLONE_SIGHAND: c_int = 0x800;
pub const CLONE_THREAD: c_int = 0x10000;
pub const CLONE_SETTLS: c_int = 0x80000;

// ——— sockets —————————————————————————————————————————————————————————

pub const AF_INET: c_int = 2;
pub const SOCK_STREAM: c_int = 1;
pub const SOCK_NONBLOCK: c_int = 0x800;
pub const SOL_SOCKET: c_int = 1;
pub const SO_REUSEADDR: c_int = 2;
pub const SO_RCVBUF: c_int = 8;
pub const SO_REUSEPORT: c_int = 15;
pub const IPPROTO_TCP: c_int = 6;
pub const TCP_NODELAY: c_int = 1;

#[repr(C)]
#[derive(Clone, Copy)]
pub struct in_addr {
    pub s_addr: in_addr_t,
}

#[repr(C)]
#[derive(Clone, Copy)]
pub struct sockaddr {
    pub sa_family: sa_family_t,
    pub sa_data: [c_char; 14],
}

#[repr(C)]
#[derive(Clone, Copy)]
pub struct sockaddr_in {
    pub sin_family: sa_family_t,
    pub sin_port: in_port_t,
    pub sin_addr: in_addr,
    pub sin_zero: [u8; 8],
}

// ——— epoll ———————————————————————————————————————————————————————————

pub const EPOLLIN: c_int = 0x1;
pub const EPOLLOUT: c_int = 0x4;
pub const EPOLLERR: c_int = 0x8;
pub const EPOLLHUP: c_int = 0x10;
/// Edge-triggered (kernel bit 31; negative as a `c_int`, exactly like
/// upstream libc's value).
pub const EPOLLET: c_int = 0x8000_0000_u32 as c_int;

pub const EPOLL_CTL_ADD: c_int = 1;
pub const EPOLL_CTL_DEL: c_int = 2;
pub const EPOLL_CTL_MOD: c_int = 3;

// ——— eventfd —————————————————————————————————————————————————————————

pub const EFD_CLOEXEC: c_int = 0x80000;
pub const EFD_NONBLOCK: c_int = 0x800;

/// Packed on x86-64, matching the kernel's `__attribute__((packed))`.
#[repr(C, packed)]
#[derive(Clone, Copy)]
pub struct epoll_event {
    pub events: u32,
    pub u64: u64,
}

// ——— dynamic loader ——————————————————————————————————————————————————

pub const RTLD_LAZY: c_int = 0x0001;
pub const RTLD_NOW: c_int = 0x0002;
pub const RTLD_LOCAL: c_int = 0;
pub const RTLD_GLOBAL: c_int = 0x0100;

// ——— wait status macros ——————————————————————————————————————————————

#[allow(non_snake_case)]
pub fn WIFEXITED(status: c_int) -> bool {
    (status & 0x7f) == 0
}

#[allow(non_snake_case)]
pub fn WEXITSTATUS(status: c_int) -> c_int {
    (status >> 8) & 0xff
}

// ——— functions (bound to glibc, which std already links) —————————————

extern "C" {
    pub fn _exit(status: c_int) -> !;
    pub fn atexit(cb: extern "C" fn()) -> c_int;
    pub fn getpid() -> pid_t;
    pub fn fork() -> pid_t;
    pub fn waitpid(pid: pid_t, status: *mut c_int, options: c_int) -> pid_t;
    pub fn kill(pid: pid_t, sig: c_int) -> c_int;
    pub fn raise(sig: c_int) -> c_int;
    pub fn setpgid(pid: pid_t, pgid: pid_t) -> c_int;

    pub fn read(fd: c_int, buf: *mut c_void, count: size_t) -> ssize_t;
    pub fn write(fd: c_int, buf: *const c_void, count: size_t) -> ssize_t;
    pub fn close(fd: c_int) -> c_int;
    pub fn pipe2(fds: *mut c_int, flags: c_int) -> c_int;
    pub fn fcntl(fd: c_int, cmd: c_int, ...) -> c_int;

    pub fn mmap(
        addr: *mut c_void,
        len: size_t,
        prot: c_int,
        flags: c_int,
        fd: c_int,
        offset: off_t,
    ) -> *mut c_void;
    pub fn munmap(addr: *mut c_void, len: size_t) -> c_int;
    pub fn mprotect(addr: *mut c_void, len: size_t, prot: c_int) -> c_int;
    pub fn memset(s: *mut c_void, c: c_int, n: size_t) -> *mut c_void;

    pub fn prctl(option: c_int, ...) -> c_int;

    pub fn sigaction(signum: c_int, act: *const sigaction, oldact: *mut sigaction) -> c_int;
    pub fn sigemptyset(set: *mut sigset_t) -> c_int;
    pub fn sigfillset(set: *mut sigset_t) -> c_int;
    pub fn sigismember(set: *const sigset_t, sig: c_int) -> c_int;
    pub fn pthread_sigmask(how: c_int, set: *const sigset_t, oldset: *mut sigset_t) -> c_int;

    pub fn socket(domain: c_int, ty: c_int, protocol: c_int) -> c_int;
    pub fn connect(fd: c_int, addr: *const sockaddr, addrlen: socklen_t) -> c_int;
    pub fn bind(fd: c_int, addr: *const sockaddr, addrlen: socklen_t) -> c_int;
    pub fn listen(fd: c_int, backlog: c_int) -> c_int;
    pub fn accept4(
        fd: c_int,
        addr: *mut sockaddr,
        addrlen: *mut socklen_t,
        flags: c_int,
    ) -> c_int;
    pub fn setsockopt(
        fd: c_int,
        level: c_int,
        optname: c_int,
        optval: *const c_void,
        optlen: socklen_t,
    ) -> c_int;

    pub fn eventfd(initval: c_uint, flags: c_int) -> c_int;

    // Dynamic loader (in libc.so.6 since glibc 2.34; no -ldl needed).
    pub fn dlopen(filename: *const c_char, flags: c_int) -> *mut c_void;
    pub fn dlsym(handle: *mut c_void, symbol: *const c_char) -> *mut c_void;
    pub fn dlclose(handle: *mut c_void) -> c_int;
    pub fn dlerror() -> *mut c_char;

    pub fn epoll_create1(flags: c_int) -> c_int;
    pub fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut epoll_event) -> c_int;
    pub fn epoll_wait(
        epfd: c_int,
        events: *mut epoll_event,
        maxevents: c_int,
        timeout: c_int,
    ) -> c_int;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn abi_critical_layouts() {
        // Kernel/glibc ABI sizes this shim must not get wrong.
        assert_eq!(core::mem::size_of::<sigset_t>(), 128);
        assert_eq!(core::mem::size_of::<siginfo_t>(), 128);
        assert_eq!(core::mem::align_of::<siginfo_t>(), 8);
        assert_eq!(core::mem::size_of::<epoll_event>(), 12);
        assert_eq!(core::mem::size_of::<sockaddr_in>(), 16);
        assert_eq!(core::mem::size_of::<mcontext_t>(), 256);
        // gregs start 40 bytes into ucontext_t (flags + link + stack).
        assert_eq!(core::mem::offset_of!(ucontext_t, uc_mcontext), 40);
        assert_eq!(core::mem::size_of::<ucontext_t>(), 968);
    }

    #[test]
    fn live_symbols_resolve() {
        unsafe {
            assert_eq!(getpid() as u32, std::process::id());
            let mut set = core::mem::zeroed::<sigset_t>();
            sigemptyset(&mut set);
            assert_eq!(sigismember(&set, SIGUSR1), 0);
            sigfillset(&mut set);
            assert_eq!(sigismember(&set, SIGUSR1), 1);
        }
    }
}

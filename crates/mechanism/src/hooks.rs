//! The `<base>+hooks` dynamic backend: any static mechanism with a
//! runtime [`HookStack`] installed as its handler — the caller's
//! compiled-in handler at priority 0, plus every hook library named by
//! `LP_HOOKS=lib.so[:prio],...` loaded through the `lp_hook_v1` ABI
//! and stacked by priority.
//!
//! Like `<base>+record`, the name carries payload and therefore lives
//! outside the static tables: parsed on first lookup, leaked, cached.
//!
//! # Propagation
//!
//! *fork*: the loaded libraries, the stack snapshot, and the registry's
//! handler pointer are ordinary inherited memory; the engine re-arms
//! SUD in the child, so hooks keep firing without any reload (the
//! native `hook_stack` scenario proves it).
//! *execve*: memory is wiped, but `LP_HOOKS` survives in the
//! environment — a preloaded `lazypoline-preload` in the new image
//! reloads the same hook set at its constructor (the preload crate
//! reads the same variable).

use std::sync::{Arc, Mutex};

use hookabi::LoadedHook;
use interpose::{Action, HookId, HookStack, InterestSet, SyscallEvent, SyscallHandler};
use sim_interpose::Traits;

use crate::{
    static_by_name, ActiveMechanism, InstallError, Inner, Mechanism, RunError, SimOutcome,
    StatsSnapshot,
};

/// Environment variable naming the hook libraries a `<base>+hooks`
/// backend loads at install: comma-separated `path-or-name[:priority]`
/// (see `hookabi::parse_specs`). Unset or empty: the stack holds only
/// the compiled-in handler.
pub const HOOKS_ENV: &str = "LP_HOOKS";

/// Process-lifetime cache of constructed `+hooks` backends, keyed by
/// the full name (same pattern as the record/replay cache).
static CACHE: Mutex<Vec<(String, &'static dyn Mechanism)>> = Mutex::new(Vec::new());

/// Parses `<base>+hooks`; `None` if the name has no `+hooks` suffix or
/// the base is not a static backend.
pub(crate) fn dynamic_by_name(name: &str) -> Option<&'static dyn Mechanism> {
    let mut cache = CACHE.lock().unwrap();
    if let Some((_, m)) = cache.iter().find(|(k, _)| k == name) {
        return Some(*m);
    }
    let base_name = name.strip_suffix("+hooks")?;
    let base = static_by_name(base_name)?;
    let built: &'static dyn Mechanism = Box::leak(Box::new(HooksBackend {
        key: Box::leak(name.to_string().into_boxed_str()),
        base,
    }));
    cache.push((name.to_string(), built));
    Some(built)
}

/// Shares one [`LoadedHook`] between the stack entry (which needs a
/// `Box<dyn SyscallHandler>`) and the install guard (which needs the
/// hook back for `fini` at detach).
struct SharedHook(Arc<LoadedHook>);

impl SyscallHandler for SharedHook {
    fn handle(&self, event: &mut SyscallEvent) -> Action {
        self.0.handle(event)
    }
    fn post(&self, event: &SyscallEvent, ret: u64) -> u64 {
        self.0.post(event, ret)
    }
    fn name(&self) -> &str {
        self.0.name()
    }
    fn interest(&self) -> InterestSet {
        self.0.interest()
    }
}

/// `<base>+hooks`: the base mechanism dispatching into a runtime
/// [`HookStack`].
struct HooksBackend {
    key: &'static str,
    base: &'static dyn Mechanism,
}

impl Mechanism for HooksBackend {
    fn name(&self) -> &'static str {
        self.key
    }

    fn traits(&self) -> Traits {
        self.base.traits()
    }

    fn is_available(&self) -> bool {
        self.base.is_available()
    }

    fn install(
        &self,
        handler: Box<dyn SyscallHandler>,
    ) -> Result<ActiveMechanism, InstallError> {
        // Load every hook *before* arming the base: a bad library is a
        // typed install error, never a half-armed mechanism.
        let spec = std::env::var(HOOKS_ENV).unwrap_or_default();
        let loaded = hookabi::load_from_spec(&spec).map_err(InstallError::Hook)?;

        let stack = HookStack::new();
        // The compiled-in handler anchors the stack at priority 0;
        // spec/descriptor priorities place each hook around it.
        stack.attach(handler, 0);
        let mut hooks = Vec::with_capacity(loaded.len());
        for h in loaded {
            let h = Arc::new(h);
            let prio = h.priority();
            let id = stack.attach_dynamic(Box::new(SharedHook(Arc::clone(&h))), prio);
            hooks.push((id, h));
        }

        let dispatch_base = interpose::hook_dispatches();
        // The base installs a clone of the stack as the process-global
        // handler — clones share state, so runtime attach/detach
        // through the guard's `stack()` mutates the live handler (and
        // the stack recognises itself as installed, keeping the
        // interest cache in sync).
        let base = self.base.install(Box::new(stack.clone()))?;
        Ok(ActiveMechanism::new(
            self.key,
            Inner::Hooks(Box::new(HooksActive {
                base,
                stack,
                hooks,
                dispatch_base,
            })),
        ))
    }
}

/// Live `<base>+hooks` installation: the base guard, the shared stack,
/// and the loaded hooks (kept for `fini` + reporting).
pub(crate) struct HooksActive {
    base: ActiveMechanism,
    stack: HookStack,
    hooks: Vec<(HookId, Arc<LoadedHook>)>,
    /// `interpose::hook_dispatches()` at install, for delta reporting.
    dispatch_base: u64,
}

impl HooksActive {
    pub(crate) fn snapshot(&self, mechanism: &'static str) -> StatsSnapshot {
        let mut s = self.base.stats();
        s.mechanism = mechanism;
        s.hooks_loaded = self.stack.dynamic_len() as u64;
        s.hook_dispatches = interpose::hook_dispatches().saturating_sub(self.dispatch_base);
        s
    }

    pub(crate) fn detach(&mut self) {
        self.base.detach();
    }

    pub(crate) fn set_xstate(&mut self, mask: zpoline::XstateMask) -> bool {
        self.base.set_xstate(mask)
    }

    pub(crate) fn run_program(&mut self, program: &[u8]) -> Result<SimOutcome, RunError> {
        self.base.run_program(program)
    }

    pub(crate) fn stack(&self) -> &HookStack {
        &self.stack
    }

    pub(crate) fn loaded(&self) -> Vec<(HookId, String, i32)> {
        self.hooks
            .iter()
            .map(|(id, h)| (*id, h.name().to_string(), h.priority()))
            .collect()
    }

    pub(crate) fn detach_hook(&mut self, id: HookId) -> bool {
        let Some(pos) = self.hooks.iter().position(|(hid, _)| *hid == id) else {
            return false;
        };
        if !self.stack.detach(id) {
            return false;
        }
        let (_, hook) = self.hooks.remove(pos);
        hook.run_fini();
        true
    }
}

impl Drop for HooksActive {
    fn drop(&mut self) {
        // Teardown order: the base guard (still held) keeps the stack
        // valid while we detach; fini runs per surviving hook. The
        // libraries themselves stay mapped forever (hookabi docs).
        for (id, hook) in self.hooks.drain(..) {
            if self.stack.detach(id) {
                hook.run_fini();
            }
        }
    }
}

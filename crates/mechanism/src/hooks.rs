//! The `<base>+hooks` dynamic backend: any static mechanism with a
//! runtime [`HookStack`] installed as its handler — the caller's
//! compiled-in handler at priority 0, plus every hook library named by
//! `LP_HOOKS=lib.so[:prio],...` loaded through the `lp_hook_v1` ABI
//! and stacked by priority.
//!
//! Like `<base>+record`, the name carries payload and therefore lives
//! outside the static tables: parsed on first lookup, leaked, cached.
//!
//! # Propagation
//!
//! *fork*: the loaded libraries, the stack snapshot, and the registry's
//! handler pointer are ordinary inherited memory; the engine re-arms
//! SUD in the child, so hooks keep firing without any reload (the
//! native `hook_stack` scenario proves it).
//! *execve*: memory is wiped, but `LP_HOOKS` survives in the
//! environment — a preloaded `lazypoline-preload` in the new image
//! reloads the same hook set at its constructor (the preload crate
//! reads the same variable).

use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, SystemTime};

use hookabi::LoadedHook;
use interpose::{Action, HookId, HookStack, InterestSet, SyscallEvent, SyscallHandler};
use sim_interpose::Traits;

use crate::{
    static_by_name, ActiveMechanism, InstallError, Inner, Mechanism, RunError, SimOutcome,
    StatsSnapshot,
};

/// Environment variable naming the hook libraries a `<base>+hooks`
/// backend loads at install: comma-separated `path-or-name[:priority]`
/// (see `hookabi::parse_specs`). Unset or empty: the stack holds only
/// the compiled-in handler.
pub const HOOKS_ENV: &str = "LP_HOOKS";

/// `LP_HOOKS_WATCH=1` at install starts a housekeeping thread that
/// polls each loaded library's mtime and, on change, hot-reloads it:
/// `detach` (narrowing interest after the swap) → `fini` → re-`dlopen`
/// → `attach` at the same priority, racing live dispatch safely via
/// the stack's RCU snapshot swaps. Note `dlopen` of an in-place
/// rewrite (same inode) returns the already-mapped module — the
/// reload still re-runs `fini`/`init` and bumps [`hook_reloads`]; a
/// *new* inode at the same path (rename-over) maps fresh code.
pub const HOOKS_WATCH_ENV: &str = "LP_HOOKS_WATCH";

/// Poll interval of the mtime watcher.
const WATCH_INTERVAL: Duration = Duration::from_millis(25);

/// Hook libraries hot-reloaded by the watcher, process-wide.
static HOOK_RELOADS: AtomicU64 = AtomicU64::new(0);

/// Hook libraries hot-reloaded by the `LP_HOOKS_WATCH` watcher since
/// process start.
pub fn hook_reloads() -> u64 {
    HOOK_RELOADS.load(Ordering::Relaxed)
}

/// Process-lifetime cache of constructed `+hooks` backends, keyed by
/// the full name (same pattern as the record/replay cache).
static CACHE: Mutex<Vec<(String, &'static dyn Mechanism)>> = Mutex::new(Vec::new());

/// Parses `<base>+hooks`; `None` if the name has no `+hooks` suffix or
/// the base is not a static backend.
pub(crate) fn dynamic_by_name(name: &str) -> Option<&'static dyn Mechanism> {
    let mut cache = CACHE.lock().unwrap();
    if let Some((_, m)) = cache.iter().find(|(k, _)| k == name) {
        return Some(*m);
    }
    let base_name = name.strip_suffix("+hooks")?;
    let base = static_by_name(base_name)?;
    let built: &'static dyn Mechanism = Box::leak(Box::new(HooksBackend {
        key: Box::leak(name.to_string().into_boxed_str()),
        base,
    }));
    cache.push((name.to_string(), built));
    Some(built)
}

/// Shares one [`LoadedHook`] between the stack entry (which needs a
/// `Box<dyn SyscallHandler>`) and the install guard (which needs the
/// hook back for `fini` at detach).
struct SharedHook(Arc<LoadedHook>);

impl SyscallHandler for SharedHook {
    fn handle(&self, event: &mut SyscallEvent) -> Action {
        self.0.handle(event)
    }
    fn post(&self, event: &SyscallEvent, ret: u64) -> u64 {
        self.0.post(event, ret)
    }
    fn name(&self) -> &str {
        self.0.name()
    }
    fn interest(&self) -> InterestSet {
        self.0.interest()
    }
}

/// `<base>+hooks`: the base mechanism dispatching into a runtime
/// [`HookStack`].
struct HooksBackend {
    key: &'static str,
    base: &'static dyn Mechanism,
}

impl Mechanism for HooksBackend {
    fn name(&self) -> &'static str {
        self.key
    }

    fn traits(&self) -> Traits {
        self.base.traits()
    }

    fn is_available(&self) -> bool {
        self.base.is_available()
    }

    fn install(
        &self,
        handler: Box<dyn SyscallHandler>,
    ) -> Result<ActiveMechanism, InstallError> {
        // Load every hook *before* arming the base: a bad library is a
        // typed install error, never a half-armed mechanism.
        let spec = std::env::var(HOOKS_ENV).unwrap_or_default();
        let loaded = hookabi::load_from_spec(&spec).map_err(InstallError::Hook)?;

        let stack = HookStack::new();
        // The compiled-in handler anchors the stack at priority 0;
        // spec/descriptor priorities place each hook around it.
        stack.attach(handler, 0);
        let mut hooks = Vec::with_capacity(loaded.len());
        for h in loaded {
            let h = Arc::new(h);
            let prio = h.priority();
            let id = stack.attach_dynamic(Box::new(SharedHook(Arc::clone(&h))), prio);
            let mtime = mtime_of(h.origin());
            hooks.push(WatchedHook { id, hook: h, mtime });
        }
        let hooks = Arc::new(Mutex::new(hooks));

        let dispatch_base = interpose::hook_dispatches();
        let reload_base = hook_reloads();
        // The base installs a clone of the stack as the process-global
        // handler — clones share state, so runtime attach/detach
        // through the guard's `stack()` mutates the live handler (and
        // the stack recognises itself as installed, keeping the
        // interest cache in sync).
        let base = self.base.install(Box::new(stack.clone()))?;
        let watcher = if std::env::var(HOOKS_WATCH_ENV).is_ok_and(|v| v == "1")
            && !hooks.lock().unwrap().is_empty()
        {
            Some(Watcher::spawn(stack.clone(), Arc::clone(&hooks)))
        } else {
            None
        };
        Ok(ActiveMechanism::new(
            self.key,
            Inner::Hooks(Box::new(HooksActive {
                base,
                stack,
                hooks,
                dispatch_base,
                reload_base,
                watcher,
            })),
        ))
    }
}

/// One attached dynamic hook plus the mtime the watcher compares
/// against.
struct WatchedHook {
    id: HookId,
    hook: Arc<LoadedHook>,
    mtime: Option<SystemTime>,
}

fn mtime_of(path: &str) -> Option<SystemTime> {
    std::fs::metadata(path).and_then(|m| m.modified()).ok()
}

/// The `LP_HOOKS_WATCH` housekeeping thread: stopped and joined when
/// the owning [`HooksActive`] drops, *before* the hooks detach.
struct Watcher {
    stop: Arc<AtomicBool>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl Watcher {
    fn spawn(stack: HookStack, hooks: Arc<Mutex<Vec<WatchedHook>>>) -> Watcher {
        let stop = Arc::new(AtomicBool::new(false));
        let stop2 = Arc::clone(&stop);
        let handle = std::thread::Builder::new()
            .name("lp-hooks-watch".into())
            .spawn(move || {
                while !stop2.load(Ordering::Relaxed) {
                    std::thread::sleep(WATCH_INTERVAL);
                    sweep(&stack, &hooks);
                }
            })
            .expect("spawn hook watcher thread");
        Watcher {
            stop,
            handle: Some(handle),
        }
    }
}

impl Drop for Watcher {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

/// One watcher pass: reload every hook whose library mtime moved.
/// The swap is `detach` → `fini` → reload → `attach` (the order the
/// manual [`HooksActive::detach_hook`] path uses); dispatch racing the
/// window simply misses the hook for a few events — the stack's RCU
/// snapshots make both edges safe against in-flight syscalls.
fn sweep(stack: &HookStack, hooks: &Mutex<Vec<WatchedHook>>) {
    let mut hooks = hooks.lock().unwrap();
    for entry in hooks.iter_mut() {
        let now = mtime_of(entry.hook.origin());
        let (Some(seen), Some(changed)) = (entry.mtime, now) else {
            // Library currently unreadable (mid-rewrite) or mtime was
            // never known: (re)arm the comparison and try next pass.
            entry.mtime = now.or(entry.mtime);
            continue;
        };
        if changed == seen {
            continue;
        }
        // Always advance the watermark — a library that fails to
        // reload is retried only on a *further* change, not every
        // pass.
        entry.mtime = Some(changed);
        let origin = entry.hook.origin().to_string();
        let prio = entry.hook.priority();
        match LoadedHook::load(Path::new(&origin), Some(prio)) {
            Ok(fresh) => {
                if !stack.detach(entry.id) {
                    continue; // manually detached since the lock check
                }
                entry.hook.run_fini();
                let fresh = Arc::new(fresh);
                entry.id = stack.attach_dynamic(Box::new(SharedHook(Arc::clone(&fresh))), prio);
                entry.hook = fresh;
                HOOK_RELOADS.fetch_add(1, Ordering::Relaxed);
            }
            Err(_) => {
                // Keep dispatching into the old module; the next mtime
                // bump retries.
            }
        }
    }
}

/// Live `<base>+hooks` installation: the base guard, the shared stack,
/// and the loaded hooks (kept for `fini` + reporting; shared with the
/// optional mtime watcher).
pub(crate) struct HooksActive {
    base: ActiveMechanism,
    stack: HookStack,
    hooks: Arc<Mutex<Vec<WatchedHook>>>,
    /// `interpose::hook_dispatches()` at install, for delta reporting.
    dispatch_base: u64,
    /// [`hook_reloads`] at install, for delta reporting.
    reload_base: u64,
    /// The `LP_HOOKS_WATCH` thread; drop order stops it before the
    /// hooks detach.
    watcher: Option<Watcher>,
}

impl HooksActive {
    pub(crate) fn snapshot(&self, mechanism: &'static str) -> StatsSnapshot {
        let mut s = self.base.stats();
        s.mechanism = mechanism;
        s.hooks_loaded = self.stack.dynamic_len() as u64;
        s.hook_dispatches = interpose::hook_dispatches().saturating_sub(self.dispatch_base);
        s.hook_reloads = hook_reloads().saturating_sub(self.reload_base);
        s
    }

    pub(crate) fn detach(&mut self) {
        self.base.detach();
    }

    pub(crate) fn set_xstate(&mut self, mask: zpoline::XstateMask) -> bool {
        self.base.set_xstate(mask)
    }

    pub(crate) fn run_program(&mut self, program: &[u8]) -> Result<SimOutcome, RunError> {
        self.base.run_program(program)
    }

    pub(crate) fn stack(&self) -> &HookStack {
        &self.stack
    }

    pub(crate) fn loaded(&self) -> Vec<(HookId, String, i32)> {
        self.hooks
            .lock()
            .unwrap()
            .iter()
            .map(|w| (w.id, w.hook.name().to_string(), w.hook.priority()))
            .collect()
    }

    pub(crate) fn detach_hook(&mut self, id: HookId) -> bool {
        let mut hooks = self.hooks.lock().unwrap();
        let Some(pos) = hooks.iter().position(|w| w.id == id) else {
            return false;
        };
        if !self.stack.detach(id) {
            return false;
        }
        let w = hooks.remove(pos);
        w.hook.run_fini();
        true
    }
}

impl Drop for HooksActive {
    fn drop(&mut self) {
        // Teardown order: the watcher thread stops first (it mutates
        // the stack), then the base guard (still held) keeps the stack
        // valid while we detach; fini runs per surviving hook. The
        // libraries themselves stay mapped forever (hookabi docs).
        self.watcher = None;
        for w in self.hooks.lock().unwrap().drain(..) {
            if self.stack.detach(w.id) {
                w.hook.run_fini();
            }
        }
    }
}

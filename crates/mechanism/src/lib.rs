//! The mechanism layer: every interposition backend in the suite —
//! native engine configurations, raw SUD, and the simulated mechanisms
//! — behind one trait, one string-keyed registry, and one
//! install/teardown/stats lifecycle.
//!
//! The paper's claim is comparative (Table I/II line lazypoline up
//! against zpoline, SUD, seccomp, and ptrace as *peer* mechanisms), so
//! the suite treats "which mechanism" as data, not code: drivers ask
//! the registry for a backend [`by_name`] (or [`from_env`] via
//! `LP_MECHANISM`), [`Mechanism::install`] it around a
//! [`SyscallHandler`], and read a uniform [`StatsSnapshot`] from the
//! returned [`ActiveMechanism`] guard. Adding a backend is a one-file
//! change here; the micro/macro benchmarks, examples, and tests pick it
//! up by name.
//!
//! # Registered names
//!
//! Native (this process, this kernel):
//!
//! | name | configuration |
//! |------|---------------|
//! | `none` | no interposition (baseline) |
//! | `sud-allow` | SUD enabled, selector parked at ALLOW (paper's "SUD enabled" baseline) |
//! | `sud-raw` | classic selector-only SUD: raw `SIGSYS` interposer, no engine (Table II's "SUD" row) |
//! | `sud` | the engine with lazy rewriting disabled (every syscall takes the slow path) |
//! | `zpoline` | the engine, no xstate preservation; [`ActiveMechanism::detach`] after warmup drops SUD for pure-rewriting operation |
//! | `lazypoline-nox` | the hybrid without extended-state preservation |
//! | `lazypoline` | the full hybrid (default) |
//! | `lazypoline-nobatch` | the hybrid with page-granular batch rewriting off |
//! | `lazypoline-hardened` | the hybrid with the pkey-protected selector and seccomp backstop (one-way per process; degrades gracefully without MPK) |
//!
//! Simulated (run a guest program, see [`ActiveMechanism::run_program`]):
//! `sim:baseline`, `sim:baseline-sud`, `sim:ptrace`, `sim:seccomp-bpf`,
//! `sim:seccomp-user`, `sim:sud`, `sim:zpoline`, `sim:lazypoline-nox`,
//! `sim:lazypoline`, `sim:lazypoline-hardened`.
//!
//! Dynamic (parsed by [`by_name`], composed over the rows above):
//! `<base>+record` (flight recorder around any backend),
//! `replay:<trace-path>` (deterministic replay of a recorded trace),
//! `<base>+hooks` (a runtime [`interpose::HookStack`] as the
//! handler, loading every `lp_hook_v1` library named by `LP_HOOKS`),
//! and `<base>+sfip` (syscall-flow-integrity enforcement of a learned
//! `LPSFIP1` policy named by `LP_SFIP_POLICY`).
//!
//! # One-way caveats
//!
//! Native interposition is not fully reversible: engine initialisation
//! is process-global and rewritten syscall sites stay rewritten, so
//! dropping an engine-backed [`ActiveMechanism`] unenrolls the thread
//! and restores the handler/selector/xstate, but already-patched sites
//! keep dispatching (to whatever handler is then installed — the guard
//! restores the previous one). `sud-raw` owns the `SIGSYS` disposition
//! and must therefore be installed *before* any engine-backed backend
//! in a process's lifetime.

#![deny(missing_docs)]

mod hooks;
mod native;
mod record_replay;
mod sfip;
mod sim;

use interpose::SyscallHandler;
pub use hooks::{HOOKS_ENV, HOOKS_WATCH_ENV};
pub use record_replay::TRACE_OUT_ENV;
pub use replay;
pub use sim_interpose::{Efficiency, Expressiveness, Traits};
pub use zpoline::XstateMask;

/// An interposition backend: something that can wrap a
/// [`SyscallHandler`] around this process (native) or a guest program
/// (simulated).
pub trait Mechanism: Send + Sync {
    /// The registry key (`lazypoline`, `sud`, `sim:ptrace`, …).
    fn name(&self) -> &'static str;

    /// The mechanism's Table I row: expressiveness, exhaustiveness,
    /// efficiency class.
    fn traits(&self) -> Traits;

    /// Whether this backend can be installed on this host (kernel SUD
    /// support, `vm.mmap_min_addr = 0`, …). Simulated backends are
    /// always available.
    fn is_available(&self) -> bool;

    /// Activates the mechanism with `handler` as the interposer.
    ///
    /// The returned guard owns teardown: dropping it restores the
    /// previously installed handler, the thread's SUD selector, and
    /// (where changed) the xstate mask — see the crate docs for what
    /// native interposition cannot undo.
    fn install(&self, handler: Box<dyn SyscallHandler>)
        -> Result<ActiveMechanism, InstallError>;
}

/// Why [`Mechanism::install`] failed.
#[derive(Debug)]
pub enum InstallError {
    /// The host lacks a kernel feature this backend needs.
    Unsupported(&'static str),
    /// The backend conflicts with process-global state already set up
    /// (e.g. `sud-raw` after the engine claimed `SIGSYS`).
    Conflict(&'static str),
    /// Engine initialisation failed.
    Init(lazypoline::InitError),
    /// A raw kernel interface (prctl/sigaction) failed.
    Io(std::io::Error),
    /// A `<base>+hooks` backend could not load a hook library named by
    /// `LP_HOOKS` (bad spec, dlopen failure, ABI mismatch, …).
    Hook(hookabi::HookLoadError),
    /// A `<base>+sfip` backend could not load the policy named by
    /// `LP_SFIP_POLICY` (missing path, bad magic/version/geometry,
    /// unknown `LP_SFIP_POLICY_ACTION`, …).
    Policy(::sfip::PolicyError),
}

impl std::fmt::Display for InstallError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            InstallError::Unsupported(why) => write!(f, "unsupported on this host: {why}"),
            InstallError::Conflict(why) => write!(f, "conflicts with process state: {why}"),
            InstallError::Init(e) => write!(f, "engine init failed: {e}"),
            InstallError::Io(e) => write!(f, "kernel interface failed: {e}"),
            InstallError::Hook(e) => write!(f, "hook loading failed: {e}"),
            InstallError::Policy(e) => write!(f, "sfip policy failed: {e}"),
        }
    }
}

impl std::error::Error for InstallError {}

/// Why [`ActiveMechanism::run_program`] failed.
#[derive(Debug)]
pub enum RunError {
    /// The backend is native; it interposes this process, not guest
    /// programs.
    NotSimulated,
    /// The simulator rejected the mechanism/program combination.
    Setup(sim_interpose::SetupError),
    /// The guest faulted or was killed.
    Sim(sim_kernel::kernel::SimError),
}

impl std::fmt::Display for RunError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RunError::NotSimulated => write!(f, "native mechanisms do not run guest programs"),
            RunError::Setup(e) => write!(f, "simulator setup failed: {e}"),
            RunError::Sim(e) => write!(f, "guest run failed: {e}"),
        }
    }
}

impl std::error::Error for RunError {}

/// Uniform per-installation statistics, reported as **deltas since
/// install** so drivers can attribute counts to one measurement phase.
///
/// Engine-backed natives report the full counter set (including the
/// robustness counters: patch retries, blocklisted pages, quarantined
/// handlers). `sud-raw` counts each `SIGSYS` trip as both a dispatch
/// and a slow-path hit. Simulated backends map the sim kernel's
/// counters (observed syscalls → `dispatches`, SUD/SIGSYS deliveries →
/// `slow_path_hits`); counters without a simulated equivalent stay 0.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StatsSnapshot {
    /// Registry key of the mechanism that produced this snapshot.
    pub mechanism: &'static str,
    /// Syscalls that reached the mechanism's dispatcher.
    pub dispatches: u64,
    /// Slow-path (`SIGSYS`) trips.
    pub slow_path_hits: u64,
    /// Syscall sites rewritten to `call rax`.
    pub sites_patched: u64,
    /// Syscalls emulated because their site is unpatchable.
    pub unpatchable_emulations: u64,
    /// Syscalls emulated because lazy rewriting is off.
    pub disabled_mode_emulations: u64,
    /// Application signal deliveries routed through the wrapper.
    pub signals_wrapped: u64,
    /// Patch re-attempts after transient `mprotect` failures.
    pub patch_retries: u64,
    /// Pages inserted into the unpatchable-page blocklist.
    pub pages_blocklisted: u64,
    /// Interposer handlers quarantined after panicking.
    pub quarantined_handlers: u64,
    /// Syscall events the flight recorder captured (nonzero only under
    /// a `<base>+record` backend or a manually installed recorder).
    pub events_recorded: u64,
    /// Syscall events the flight recorder dropped to its overflow
    /// policy.
    pub events_dropped: u64,
    /// Divergences replay detected between the execution and its trace
    /// (nonzero only under `replay:<path>`).
    pub replay_divergences: u64,
    /// Records the drain path spilled from the rings into a trace file
    /// (async drain-thread sweeps and synchronous drains).
    pub events_spilled: u64,
    /// Adaptive capacity doublings of flight-recorder rings.
    pub ring_grows: u64,
    /// Ring pushes that observed near-full (≥3/4) occupancy —
    /// recorder backpressure short of an actual drop.
    pub ring_near_full: u64,
    /// Near-full pushes that yielded the producer (`LP_DRAIN_YIELD`).
    pub drain_yields: u64,
    /// Drainer threads partitioning the ring pool in the most recent
    /// recorder session (1 = single drainer; `LP_DRAIN_SHARDS`).
    pub drain_shards: u64,
    /// Escape attempts the hardened backstop caught (nonzero only
    /// under `lazypoline-hardened` / `sim:lazypoline-hardened`).
    pub bypass_blocked: u64,
    /// WRPKRU open/close pairs around protected-selector writes
    /// (nonzero only with the pkey layer armed).
    pub pkru_switches: u64,
    /// Dynamically loaded hooks currently attached to the handler stack
    /// (a gauge, not a delta; nonzero only under `<base>+hooks`).
    pub hooks_loaded: u64,
    /// Syscall events dispatched into dynamically loaded hooks since
    /// install (one count per hook per event that reaches it).
    pub hook_dispatches: u64,
    /// Hook libraries reloaded by the `LP_HOOKS_WATCH` mtime watcher
    /// since install (nonzero only under `<base>+hooks` with the
    /// watcher enabled).
    pub hook_reloads: u64,
    /// Syscall-flow transition checks performed since install (nonzero
    /// only under `<base>+sfip`).
    pub sfip_checks: u64,
    /// Syscall-flow violations observed since install (nonzero only
    /// under `<base>+sfip`).
    pub sfip_violations: u64,
    /// The `<base>+sfip` violation action (`kill`|`quarantine`|`count`;
    /// empty for other backends).
    pub sfip_mode: &'static str,
}

impl StatsSnapshot {
    pub(crate) fn zero(mechanism: &'static str) -> StatsSnapshot {
        StatsSnapshot {
            mechanism,
            ..StatsSnapshot::default()
        }
    }
}

/// Result of one simulated guest run.
#[derive(Clone, Debug)]
pub struct SimOutcome {
    /// The guest's exit status.
    pub exit: i64,
    /// Simulated cycles consumed.
    pub cycles: u64,
    /// Syscall numbers the mechanism observed, in order (empty for
    /// mechanisms that cannot observe, e.g. `sim:seccomp-bpf`).
    pub observed: Vec<u64>,
}

/// A live installation: handler registered, mechanism armed. Teardown
/// runs on drop (mechanism first, then handler restoration).
#[must_use = "dropping the guard immediately tears the mechanism down"]
pub struct ActiveMechanism {
    name: &'static str,
    inner: Inner,
}

pub(crate) enum Inner {
    Native(Box<native::NativeActive>),
    Sim(sim::SimActive),
    Record(Box<record_replay::RecordActive>),
    Replay(Box<record_replay::ReplayActive>),
    Hooks(Box<hooks::HooksActive>),
    Sfip(Box<sfip::SfipActive>),
}

impl ActiveMechanism {
    pub(crate) fn new(name: &'static str, inner: Inner) -> ActiveMechanism {
        ActiveMechanism { name, inner }
    }

    /// The registry key of the installed mechanism.
    pub fn mechanism_name(&self) -> &'static str {
        self.name
    }

    /// Counters accumulated since install (see [`StatsSnapshot`]).
    pub fn stats(&self) -> StatsSnapshot {
        match &self.inner {
            Inner::Native(n) => n.snapshot(self.name),
            Inner::Sim(s) => s.snapshot(self.name),
            Inner::Record(r) => r.snapshot(self.name),
            Inner::Replay(r) => r.snapshot(self.name),
            Inner::Hooks(h) => h.snapshot(self.name),
            Inner::Sfip(s) => s.snapshot(self.name),
        }
    }

    /// The runtime hook stack of a `<base>+hooks` backend — a clone
    /// shares state with the installed handler, so attaching/detaching
    /// through it mutates live dispatch. `None` for other backends.
    pub fn hook_stack(&self) -> Option<&interpose::HookStack> {
        match &self.inner {
            Inner::Hooks(h) => Some(h.stack()),
            _ => None,
        }
    }

    /// The dynamically loaded hooks of a `<base>+hooks` backend:
    /// `(id, name, priority)` per hook, in load order. Empty for other
    /// backends.
    pub fn loaded_hooks(&self) -> Vec<(interpose::HookId, String, i32)> {
        match &self.inner {
            Inner::Hooks(h) => h.loaded(),
            _ => Vec::new(),
        }
    }

    /// Detaches one dynamically loaded hook mid-flight: removes it from
    /// the stack (narrowing the interest cache after the swap) and runs
    /// its `fini`. Returns `false` if the id is unknown or already
    /// detached, or the backend is not `<base>+hooks`.
    pub fn detach_hook(&mut self, id: interpose::HookId) -> bool {
        match &mut self.inner {
            Inner::Hooks(h) => h.detach_hook(id),
            _ => false,
        }
    }

    /// Ends a `<base>+record` backend's trace session early, returning
    /// the summary (events written, events dropped). `None` for other
    /// backends, or when no trace file was requested
    /// (`LP_TRACE_OUT` unset), or after the session already finished.
    /// Without this call the session finishes on drop, best-effort.
    pub fn finish_recording(&mut self) -> Option<std::io::Result<replay::RecordSummary>> {
        match &mut self.inner {
            Inner::Record(r) => r.finish_recording(),
            _ => None,
        }
    }

    /// The first divergence a `replay:<path>` backend observed, if any.
    /// `None` for other backends or while the replay is on-script.
    pub fn replay_divergence(&self) -> Option<replay::Divergence> {
        match &self.inner {
            Inner::Replay(r) => r.first_divergence(),
            _ => None,
        }
    }

    /// The shared replay progress state of a `replay:<path>` backend
    /// (trace length, cursor position, divergence count).
    pub fn replay_state(&self) -> Option<&std::sync::Arc<replay::ReplayState>> {
        match &self.inner {
            Inner::Replay(r) => Some(r.state()),
            _ => None,
        }
    }

    /// Stops interposing on the calling thread while keeping the
    /// handler and any rewritten sites in place: engine-backed natives
    /// unenroll from SUD (the `zpoline` backend's post-warmup switch to
    /// pure rewriting), raw-SUD backends park the selector at ALLOW.
    /// No-op for `none` and simulated backends.
    pub fn detach(&mut self) {
        match &mut self.inner {
            Inner::Native(n) => n.detach(),
            Inner::Record(r) => r.detach(),
            Inner::Replay(r) => r.detach(),
            Inner::Hooks(h) => h.detach(),
            Inner::Sfip(s) => s.detach(),
            Inner::Sim(_) => {}
        }
    }

    /// Changes which extended-state components the fast path preserves.
    /// Returns `false` (and does nothing) unless the backend is
    /// engine-based. A non-default mask is restored to the full default
    /// on teardown.
    pub fn set_xstate(&mut self, mask: XstateMask) -> bool {
        match &mut self.inner {
            Inner::Native(n) => n.set_xstate(mask),
            Inner::Record(r) => r.set_xstate(mask),
            Inner::Replay(r) => r.set_xstate(mask),
            Inner::Hooks(h) => h.set_xstate(mask),
            Inner::Sfip(s) => s.set_xstate(mask),
            Inner::Sim(_) => false,
        }
    }

    /// Runs a guest program under a simulated mechanism, replaying the
    /// mechanism's observations through the installed handler (same
    /// event/post shape as the native dispatchers) and accumulating
    /// [`StatsSnapshot`] counters. Errors with [`RunError::NotSimulated`]
    /// on native backends.
    pub fn run_program(&mut self, program: &[u8]) -> Result<SimOutcome, RunError> {
        match &mut self.inner {
            Inner::Sim(s) => s.run(program),
            Inner::Record(r) => r.run_program(program),
            Inner::Replay(r) => r.run_program(program),
            Inner::Hooks(h) => h.run_program(program),
            Inner::Sfip(s) => s.run_program(program),
            Inner::Native(_) => Err(RunError::NotSimulated),
        }
    }
}

/// Iterates every registered backend, native first.
pub fn all() -> impl Iterator<Item = &'static dyn Mechanism> {
    native::NATIVE_BACKENDS
        .iter()
        .map(|b| b as &dyn Mechanism)
        .chain(sim::SIM_BACKENDS.iter().map(|b| b as &dyn Mechanism))
}

/// Every registered backend name, native first.
pub fn names() -> Vec<&'static str> {
    all().map(|m| m.name()).collect()
}

/// Looks a backend up by registry key.
///
/// Besides the static names above, two **dynamic** name forms are
/// recognised (constructed on first lookup, cached for the process):
///
/// * `<base>+record` — any static backend with the flight recorder
///   composed around the handler (e.g. `lazypoline+record`,
///   `sim:lazypoline+record`). Set `LP_TRACE_OUT=<path>` to also drain
///   the rings into a trace file.
/// * `replay:<trace-path>` — deterministic replay of a recorded trace;
///   the base mechanism comes from the trace header's source mechanism
///   (override with `LP_REPLAY_BASE`).
/// * `<base>+hooks` — any static backend with a runtime
///   [`interpose::HookStack`] as its handler (e.g. `lazypoline+hooks`,
///   `sim:lazypoline+hooks`): the compiled-in handler at priority 0
///   plus every `lp_hook_v1` library named by `LP_HOOKS`.
/// * `<base>+sfip` — any static backend with syscall-flow-integrity
///   enforcement around the handler: the `LPSFIP1` policy named by
///   `LP_SFIP_POLICY` is checked per transition, with
///   `LP_SFIP_POLICY_ACTION=kill|quarantine|count` on violation.
pub fn by_name(name: &str) -> Option<&'static dyn Mechanism> {
    static_by_name(name)
        .or_else(|| record_replay::dynamic_by_name(name))
        .or_else(|| hooks::dynamic_by_name(name))
        .or_else(|| sfip::dynamic_by_name(name))
}

/// Static-registry lookup only — used internally so dynamic backends
/// resolve their base without recursing into the dynamic parser.
pub(crate) fn static_by_name(name: &str) -> Option<&'static dyn Mechanism> {
    all().find(|m| m.name() == name)
}

/// The environment variable drivers consult for mechanism selection.
pub const ENV_VAR: &str = "LP_MECHANISM";

/// The backend [`from_env`] falls back to: the paper's subject.
pub const DEFAULT_MECHANISM: &str = "lazypoline";

/// The backend named by `LP_MECHANISM`, or [`DEFAULT_MECHANISM`] when
/// unset/empty. An unknown name is an error (listing the valid names),
/// not a silent fallback.
pub fn from_env() -> Result<&'static dyn Mechanism, UnknownMechanism> {
    match std::env::var(ENV_VAR) {
        Ok(name) if !name.is_empty() => by_name(&name).ok_or(UnknownMechanism(name)),
        _ => Ok(by_name(DEFAULT_MECHANISM).expect("default mechanism is registered")),
    }
}

/// `LP_MECHANISM` named a mechanism the registry does not know.
#[derive(Debug)]
pub struct UnknownMechanism(pub String);

impl std::fmt::Display for UnknownMechanism {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "unknown mechanism {:?} (valid: {}; dynamic forms: \
             <base>+record, replay:<trace-path>, <base>+hooks, <base>+sfip)",
            self.0,
            names().join(", ")
        )
    }
}

impl std::error::Error for UnknownMechanism {}

/// Detaches the calling thread from SUD interposition without an
/// [`ActiveMechanism`] handle: selector to ALLOW, then SUD off.
///
/// Async-signal-safe (one store, one prctl) — this is the hook for
/// signal-driven detach protocols like the macrobenchmark's `SIGUSR1`
/// switch to pure-zpoline operation, where the guard was deliberately
/// leaked in a child process.
pub fn detach_current_thread() {
    sud::set_selector(sud::Dispatch::Allow);
    let _ = sud::disable_thread();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_covers_every_table_row() {
        // Table II native rows + every simulated mechanism, by name.
        for name in [
            "none",
            "sud-allow",
            "sud-raw",
            "sud",
            "zpoline",
            "lazypoline-nox",
            "lazypoline",
            "lazypoline-nobatch",
            "lazypoline-hardened",
            "sim:baseline",
            "sim:baseline-sud",
            "sim:ptrace",
            "sim:seccomp-bpf",
            "sim:seccomp-user",
            "sim:sud",
            "sim:zpoline",
            "sim:lazypoline-nox",
            "sim:lazypoline",
            "sim:lazypoline-hardened",
        ] {
            let m = by_name(name).unwrap_or_else(|| panic!("{name} not registered"));
            assert_eq!(m.name(), name);
        }
        assert_eq!(names().len(), 19);
        assert!(by_name("ptrace").is_none(), "native ptrace is not a backend");
    }

    #[test]
    fn traits_match_table_one() {
        let lp = by_name("lazypoline").unwrap().traits();
        assert_eq!(lp.expressiveness, Expressiveness::Full);
        assert!(lp.exhaustive);
        assert_eq!(lp.efficiency, Efficiency::High);
        // Native and simulated rows of the same mechanism agree.
        assert_eq!(lp, by_name("sim:lazypoline").unwrap().traits());
        assert_eq!(
            by_name("sud").unwrap().traits(),
            by_name("sim:sud").unwrap().traits()
        );
        let zp = by_name("zpoline").unwrap().traits();
        assert!(!zp.exhaustive, "rewriting alone misses JIT syscalls");
        // The hardened rows keep lazypoline's winning profile, and the
        // native and simulated variants agree.
        let hard = by_name("lazypoline-hardened").unwrap().traits();
        assert_eq!(hard.expressiveness, Expressiveness::Full);
        assert!(hard.exhaustive);
        assert_eq!(hard.efficiency, Efficiency::High);
        assert_eq!(
            hard,
            by_name("sim:lazypoline-hardened").unwrap().traits()
        );
    }

    #[test]
    fn from_env_defaults_and_rejects_unknown() {
        // Note: reads the ambient LP_MECHANISM, so only assert the
        // unset path when the harness did not set one.
        if std::env::var(ENV_VAR).is_err() {
            assert_eq!(from_env().unwrap().name(), DEFAULT_MECHANISM);
        }
        assert!(by_name("no-such-mechanism").is_none());
        let err = UnknownMechanism("no-such-mechanism".into()).to_string();
        assert!(err.contains("lazypoline"), "error lists valid names: {err}");
        // The dynamic name forms are part of the valid vocabulary and
        // must appear in the error too.
        for form in [
            "<base>+record",
            "replay:<trace-path>",
            "<base>+hooks",
            "<base>+sfip",
        ] {
            assert!(err.contains(form), "error lists dynamic form {form}: {err}");
        }
    }

    #[test]
    fn hooks_backend_composes_and_reports() {
        let m = by_name("sim:lazypoline+hooks").expect("+hooks parses over sim bases");
        assert_eq!(m.name(), "sim:lazypoline+hooks");
        assert!(m.is_available());
        assert_eq!(m.traits(), by_name("sim:lazypoline").unwrap().traits());
        // Unknown bases don't parse; repeat lookups hit the cache.
        assert!(by_name("no-such-base+hooks").is_none());
        assert!(std::ptr::eq(m, by_name("sim:lazypoline+hooks").unwrap()));

        // With LP_HOOKS unset the stack holds only the compiled-in
        // handler — still a fully functional installation. (Skip when
        // the harness exported LP_HOOKS: this test asserts emptiness.)
        if std::env::var(HOOKS_ENV).is_err() {
            let mut active = m
                .install(Box::new(interpose::CountHandler::new()))
                .expect("sim +hooks installs without hook libraries");
            let out = active
                .run_program(&sim_workloads::bench::microbench(20))
                .expect("guest runs");
            assert_eq!(out.exit, 0);
            let s = active.stats();
            assert_eq!(s.mechanism, "sim:lazypoline+hooks");
            assert!(s.dispatches > 0, "compiled-in handler still dispatches");
            assert_eq!(s.hooks_loaded, 0);
            assert_eq!(s.hook_dispatches, 0);
            let stack = active.hook_stack().expect("+hooks exposes its stack");
            assert_eq!(stack.len(), 1, "compiled-in handler only");
            assert!(active.loaded_hooks().is_empty());
        }
        // Non-hooks backends expose no stack.
        let plain = by_name("none")
            .unwrap()
            .install(Box::new(interpose::PassthroughHandler))
            .unwrap();
        assert!(plain.hook_stack().is_none());
        assert!(plain.loaded_hooks().is_empty());
    }

    #[test]
    fn sfip_backend_composes_and_requires_policy() {
        let m = by_name("sim:lazypoline+sfip").expect("+sfip parses over sim bases");
        assert_eq!(m.name(), "sim:lazypoline+sfip");
        assert!(m.is_available());
        assert_eq!(m.traits(), by_name("sim:lazypoline").unwrap().traits());
        // Unknown bases don't parse; repeat lookups hit the cache.
        assert!(by_name("no-such-base+sfip").is_none());
        assert!(std::ptr::eq(m, by_name("sim:lazypoline+sfip").unwrap()));
        // An +sfip install without LP_SFIP_POLICY is a typed error,
        // never a silently unenforced mechanism. (Skip when the
        // harness exported a policy for the whole run.)
        if std::env::var(::sfip::POLICY_ENV).is_err() {
            match m.install(Box::new(interpose::PassthroughHandler)) {
                Err(InstallError::Policy(::sfip::PolicyError::NoPolicyPath)) => {}
                Err(other) => panic!("expected NoPolicyPath, got {other}"),
                Ok(_) => panic!("install must fail without a policy"),
            }
        }
    }

    #[test]
    fn none_backend_installs_and_reports_zero_stats() {
        let m = by_name("none").unwrap();
        assert!(m.is_available());
        let active = m
            .install(Box::new(interpose::PassthroughHandler))
            .expect("none is always installable");
        assert_eq!(active.mechanism_name(), "none");
        let s = active.stats();
        assert_eq!(s.dispatches, 0);
        assert_eq!(s.slow_path_hits, 0);
    }

    #[test]
    fn sim_backend_runs_guest_and_counts() {
        let m = by_name("sim:lazypoline").unwrap();
        assert!(m.is_available());
        let mut active = m
            .install(Box::new(interpose::CountHandler::new()))
            .expect("sim backends always install");
        let program = sim_workloads::bench::microbench(50);
        let out = active.run_program(&program).expect("guest runs");
        assert_eq!(out.exit, 0);
        assert!(out.cycles > 0);
        assert!(!out.observed.is_empty());
        let s = active.stats();
        assert_eq!(s.dispatches, out.observed.len() as u64);
        assert!(s.slow_path_hits > 0, "lazy rewriting trips SIGSYS per site");
        assert!(
            s.slow_path_hits < s.dispatches,
            "hybrid: slow path per site, not per call"
        );
    }

    #[test]
    fn native_backend_rejects_run_program() {
        let m = by_name("none").unwrap();
        let mut active = m.install(Box::new(interpose::PassthroughHandler)).unwrap();
        assert!(matches!(
            active.run_program(&[]),
            Err(RunError::NotSimulated)
        ));
    }
}

//! Native backends: adapters from registry names to the real
//! engine/SUD configurations running in *this* process.

use std::sync::atomic::{AtomicU64, Ordering};

use interpose::SyscallHandler;
use sim_interpose::{Efficiency, Expressiveness, Traits};
use zpoline::XstateMask;

use crate::{ActiveMechanism, InstallError, Inner, Mechanism, StatsSnapshot};

/// One registry row: a name bound to a concrete native configuration.
pub(crate) struct NativeBackend {
    key: &'static str,
    cfg: NativeCfg,
    traits: Traits,
}

enum NativeCfg {
    /// No interposition at all.
    Nothing,
    /// SUD enabled with the selector parked at ALLOW: measures the
    /// paper's "cost of merely enabling SUD" baseline.
    SudAllow,
    /// Classic selector-only SUD: a raw `SIGSYS` interposer and no
    /// engine. Owns the `SIGSYS` disposition, so it must be installed
    /// before any engine-backed backend (one-shot per arming: the
    /// handler exits with the selector at ALLOW; callers re-arm BLOCK,
    /// as the microbenchmark loop does per iteration).
    RawSud,
    /// The lazypoline engine in a specific configuration.
    Engine {
        xstate: XstateMask,
        lazy_rewriting: bool,
        batch_rewriting: bool,
    },
    /// The full hybrid plus the hardened layers: pkey-protected
    /// selector (where MPK hardware exists) and the seccomp backstop
    /// filter. **One-way per process**: the filter cannot be removed,
    /// and the syscall gate stays armed after teardown.
    Hardened,
}

const LAZYPOLINE_TRAITS: Traits = Traits {
    name: "lazypoline (hybrid)",
    expressiveness: Expressiveness::Full,
    exhaustive: true,
    efficiency: Efficiency::High,
};

/// Shared by the native and simulated hardened rows (the traits
/// equality test pairs them up).
pub(crate) const HARDENED_TRAITS: Traits = Traits {
    name: "lazypoline (hardened)",
    expressiveness: Expressiveness::Full,
    exhaustive: true,
    efficiency: Efficiency::High,
};

const SUD_TRAITS: Traits = Traits {
    name: "SUD",
    expressiveness: Expressiveness::Full,
    exhaustive: true,
    efficiency: Efficiency::Moderate,
};

const BASELINE_TRAITS: Traits = Traits {
    name: "baseline",
    expressiveness: Expressiveness::None,
    exhaustive: false,
    efficiency: Efficiency::High,
};

pub(crate) static NATIVE_BACKENDS: [NativeBackend; 9] = [
    NativeBackend {
        key: "none",
        cfg: NativeCfg::Nothing,
        traits: BASELINE_TRAITS,
    },
    NativeBackend {
        key: "sud-allow",
        cfg: NativeCfg::SudAllow,
        traits: BASELINE_TRAITS,
    },
    NativeBackend {
        key: "sud-raw",
        cfg: NativeCfg::RawSud,
        traits: SUD_TRAITS,
    },
    NativeBackend {
        key: "sud",
        cfg: NativeCfg::Engine {
            xstate: XstateMask::Avx,
            lazy_rewriting: false,
            batch_rewriting: true,
        },
        traits: SUD_TRAITS,
    },
    NativeBackend {
        key: "zpoline",
        cfg: NativeCfg::Engine {
            xstate: XstateMask::None,
            lazy_rewriting: true,
            batch_rewriting: true,
        },
        traits: Traits {
            name: "binary rewriting (zpoline)",
            expressiveness: Expressiveness::Full,
            exhaustive: false,
            efficiency: Efficiency::High,
        },
    },
    NativeBackend {
        key: "lazypoline-nox",
        cfg: NativeCfg::Engine {
            xstate: XstateMask::None,
            lazy_rewriting: true,
            batch_rewriting: true,
        },
        traits: LAZYPOLINE_TRAITS,
    },
    NativeBackend {
        key: "lazypoline",
        cfg: NativeCfg::Engine {
            xstate: XstateMask::Avx,
            lazy_rewriting: true,
            batch_rewriting: true,
        },
        traits: LAZYPOLINE_TRAITS,
    },
    NativeBackend {
        key: "lazypoline-nobatch",
        cfg: NativeCfg::Engine {
            xstate: XstateMask::Avx,
            lazy_rewriting: true,
            batch_rewriting: false,
        },
        traits: LAZYPOLINE_TRAITS,
    },
    NativeBackend {
        key: "lazypoline-hardened",
        cfg: NativeCfg::Hardened,
        traits: HARDENED_TRAITS,
    },
];

impl Mechanism for NativeBackend {
    fn name(&self) -> &'static str {
        self.key
    }

    fn traits(&self) -> Traits {
        self.traits
    }

    fn is_available(&self) -> bool {
        match self.cfg {
            NativeCfg::Nothing => true,
            NativeCfg::SudAllow | NativeCfg::RawSud => sud::is_supported(),
            // Engine rows with rewriting need the page-0 trampoline;
            // the pure slow-path row only needs SUD (on hosts without
            // the trampoline, init degrades to SudOnly, which is
            // exactly this backend's semantics anyway).
            NativeCfg::Engine { lazy_rewriting, .. } => {
                sud::is_supported()
                    && (!lazy_rewriting || zpoline::Trampoline::environment_supported())
            }
            // The hardened row needs the full hybrid; the hardening
            // layers themselves degrade (no MPK → backstop only, no
            // seccomp → plain lazypoline) rather than gate availability.
            NativeCfg::Hardened => {
                sud::is_supported() && zpoline::Trampoline::environment_supported()
            }
        }
    }

    fn install(
        &self,
        handler: Box<dyn SyscallHandler>,
    ) -> Result<ActiveMechanism, InstallError> {
        if !self.is_available() {
            return Err(InstallError::Unsupported(
                "needs Syscall User Dispatch and/or vm.mmap_min_addr = 0",
            ));
        }
        // Handler first: once the mechanism arms, every intercepted
        // syscall must already see the caller's handler, not the
        // previous one. The guard reverses this order on teardown.
        let guard = interpose::install_handler(handler);
        let base = lazypoline::stats();
        let base_raw_dispatches = RAW_SUD_DISPATCHES.load(Ordering::Relaxed);

        let kind = match self.cfg {
            NativeCfg::Nothing => NativeKind::Nothing,
            NativeCfg::SudAllow => {
                sud::enable_thread().map_err(InstallError::Io)?;
                sud::set_selector(sud::Dispatch::Allow);
                NativeKind::SudAllow
            }
            NativeCfg::RawSud => {
                if lazypoline::Engine::is_initialized() {
                    return Err(InstallError::Conflict(
                        "sud-raw owns the SIGSYS disposition; install it before any \
                         engine-backed mechanism",
                    ));
                }
                // SAFETY: the handler is async-signal-safe and follows
                // the SUD protocol (selector to ALLOW as first action).
                let old = unsafe { sud::sigsys::install_sigsys_handler(raw_sud_handler) }
                    .map_err(InstallError::Io)?;
                if let Err(e) = sud::enable_thread() {
                    unsafe { libc::sigaction(libc::SIGSYS, &old, std::ptr::null_mut()) };
                    return Err(InstallError::Io(e));
                }
                sud::set_selector(sud::Dispatch::Block);
                NativeKind::RawSud { old }
            }
            NativeCfg::Engine {
                xstate,
                lazy_rewriting,
                batch_rewriting,
            } => {
                let engine = lazypoline::init(lazypoline::Config {
                    xstate,
                    lazy_rewriting,
                    batch_rewriting,
                    ..lazypoline::Config::default()
                })
                .map_err(InstallError::Init)?;
                NativeKind::Engine {
                    engine,
                    restore_xstate: xstate != XstateMask::Avx,
                }
            }
            NativeCfg::Hardened => {
                // Ladder rung 1: protected selector — must precede
                // init so enrollment hands the kernel the protected
                // address. Failure (no MPK hardware) degrades.
                let _ = lazypoline::harden::prepare_pkey();
                let engine = lazypoline::init(lazypoline::Config::default())
                    .map_err(InstallError::Init)?;
                // Ladder rung 2: the seccomp backstop — after init, so
                // every legitimate syscall path (gate page, number
                // allowlist) exists before the irreversible filter.
                let _ =
                    lazypoline::harden::arm_backstop(lazypoline::harden::policy_from_env());
                NativeKind::Engine {
                    engine,
                    restore_xstate: false,
                }
            }
        };
        Ok(ActiveMechanism::new(
            self.key,
            Inner::Native(Box::new(NativeActive {
                kind,
                base,
                base_raw_dispatches,
                _guard: guard,
            })),
        ))
    }
}

enum NativeKind {
    Nothing,
    SudAllow,
    RawSud { old: libc::sigaction },
    Engine {
        engine: lazypoline::Engine,
        restore_xstate: bool,
    },
}

/// Live native installation. Field order is teardown order: the
/// mechanism disarms before the handler guard restores the previous
/// handler.
pub(crate) struct NativeActive {
    kind: NativeKind,
    base: lazypoline::Stats,
    base_raw_dispatches: u64,
    _guard: interpose::HandlerGuard,
}

impl NativeActive {
    pub(crate) fn snapshot(&self, mechanism: &'static str) -> StatsSnapshot {
        let now = lazypoline::stats();
        let mut s = StatsSnapshot::zero(mechanism);
        // Quarantine and the recorder/replay counters are
        // registry-level, not engine-level: report them for every
        // backend (the raw-SUD handler dispatches through the same
        // registry, and a record/replay wrapper may envelop any of
        // them).
        s.quarantined_handlers = now
            .quarantined_handlers
            .saturating_sub(self.base.quarantined_handlers);
        s.events_recorded = now.events_recorded.saturating_sub(self.base.events_recorded);
        s.events_dropped = now.events_dropped.saturating_sub(self.base.events_dropped);
        s.replay_divergences = now
            .replay_divergences
            .saturating_sub(self.base.replay_divergences);
        s.events_spilled = now.events_spilled.saturating_sub(self.base.events_spilled);
        s.ring_grows = now.ring_grows.saturating_sub(self.base.ring_grows);
        s.ring_near_full = now.ring_near_full.saturating_sub(self.base.ring_near_full);
        s.drain_yields = now.drain_yields.saturating_sub(self.base.drain_yields);
        // A configuration value, not a counter: report it as-is.
        s.drain_shards = now.drain_shards;
        match &self.kind {
            NativeKind::Nothing | NativeKind::SudAllow => {}
            NativeKind::RawSud { .. } => {
                let d = RAW_SUD_DISPATCHES
                    .load(Ordering::Relaxed)
                    .saturating_sub(self.base_raw_dispatches);
                s.dispatches = d;
                s.slow_path_hits = d;
            }
            NativeKind::Engine { .. } => {
                // The engine counts trampoline entries in `dispatches`;
                // slow-path *emulations* (rewriting disabled, or an
                // unpatchable page) notify the handler without entering
                // the trampoline. The unified snapshot reports every
                // handler-visible dispatch, whichever path carried it.
                s.dispatches = now.dispatches.saturating_sub(self.base.dispatches)
                    + now
                        .disabled_mode_emulations
                        .saturating_sub(self.base.disabled_mode_emulations)
                    + now
                        .unpatchable_emulations
                        .saturating_sub(self.base.unpatchable_emulations);
                s.slow_path_hits = now.slow_path_hits.saturating_sub(self.base.slow_path_hits);
                s.sites_patched = now.sites_patched.saturating_sub(self.base.sites_patched);
                s.unpatchable_emulations = now
                    .unpatchable_emulations
                    .saturating_sub(self.base.unpatchable_emulations);
                s.disabled_mode_emulations = now
                    .disabled_mode_emulations
                    .saturating_sub(self.base.disabled_mode_emulations);
                s.signals_wrapped = now.signals_wrapped.saturating_sub(self.base.signals_wrapped);
                s.patch_retries = now.patch_retries.saturating_sub(self.base.patch_retries);
                s.pages_blocklisted = now
                    .pages_blocklisted
                    .saturating_sub(self.base.pages_blocklisted);
                s.bypass_blocked = now.bypass_blocked.saturating_sub(self.base.bypass_blocked);
                s.pkru_switches = now.pkru_switches.saturating_sub(self.base.pkru_switches);
            }
        }
        s
    }

    pub(crate) fn detach(&mut self) {
        match &mut self.kind {
            NativeKind::Nothing => {}
            NativeKind::SudAllow | NativeKind::RawSud { .. } => {
                sud::set_selector(sud::Dispatch::Allow);
            }
            NativeKind::Engine { engine, .. } => engine.unenroll_current_thread(),
        }
    }

    pub(crate) fn set_xstate(&mut self, mask: XstateMask) -> bool {
        match &mut self.kind {
            NativeKind::Engine { restore_xstate, .. } => {
                zpoline::set_xstate_mask(mask);
                *restore_xstate = mask != XstateMask::Avx;
                true
            }
            _ => false,
        }
    }
}

impl Drop for NativeActive {
    fn drop(&mut self) {
        match &mut self.kind {
            NativeKind::Nothing => {}
            NativeKind::SudAllow => {
                sud::set_selector(sud::Dispatch::Allow);
                let _ = sud::disable_thread();
            }
            NativeKind::RawSud { old } => {
                sud::set_selector(sud::Dispatch::Allow);
                let _ = sud::disable_thread();
                // SAFETY: restoring a previously valid disposition.
                unsafe { libc::sigaction(libc::SIGSYS, old, std::ptr::null_mut()) };
            }
            NativeKind::Engine { restore_xstate, .. } => {
                if *restore_xstate {
                    zpoline::set_xstate_mask(XstateMask::Avx);
                }
                // The Engine field's own Drop unenrolls the thread (if
                // still enrolled) when this struct's fields drop.
            }
        }
        // After this body: self.kind drops (Engine unenroll), then
        // self._guard restores the previous handler.
    }
}

/// Dispatches the raw-SUD backend counted here (per `SIGSYS` trip).
static RAW_SUD_DISPATCHES: AtomicU64 = AtomicU64::new(0);

/// The classic SUD deployment's `SIGSYS` handler: selector to ALLOW
/// (per protocol — also what makes it one-shot), then the same shared
/// decision sequence the engine's dispatcher runs
/// ([`interpose::interpose_syscall`]), with the syscall executed right
/// in the handler and its result written back to the interrupted
/// context's `rax`.
unsafe extern "C" fn raw_sud_handler(
    _sig: libc::c_int,
    _info: *mut libc::siginfo_t,
    ctx: *mut libc::c_void,
) {
    sud::set_selector(sud::Dispatch::Allow);
    RAW_SUD_DISPATCHES.fetch_add(1, Ordering::Relaxed);
    let mut uc = sud::sigsys::UContext::from_ptr(ctx);
    let call = uc.syscall_args();
    let site = uc.rip() as usize;
    let ret = interpose::interpose_syscall(call, site, |decided| {
        syscalls::raw::syscall(decided)
    });
    uc.set_rax(ret);
}

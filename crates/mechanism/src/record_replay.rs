//! Dynamic record/replay backends: `<base>+record` composes the
//! flight recorder around any static backend; `replay:<trace-path>`
//! re-executes a workload against a recorded trace.
//!
//! These are *names with payload*, so they cannot live in the static
//! registry tables: [`dynamic_by_name`] parses the name on first
//! lookup, builds the backend, leaks it (the registry hands out
//! `&'static dyn Mechanism`), and caches it so repeated lookups of the
//! same name return the same instance.

use std::path::PathBuf;
use std::sync::{Arc, Mutex};

use interpose::SyscallHandler;
use replay::{Divergence, RecordHandler, RecordSummary, Recorder, ReplayHandler, ReplayState};
use sim_interpose::{Efficiency, Expressiveness, Traits};

use crate::{
    static_by_name, ActiveMechanism, InstallError, Inner, Mechanism, RunError, SimOutcome,
    StatsSnapshot,
};

/// Environment variable naming the trace file a `<base>+record`
/// backend drains its rings into. Unset: the flight recorder still
/// runs (rings + counters), but nothing is written to disk.
pub const TRACE_OUT_ENV: &str = "LP_TRACE_OUT";

/// Environment variable overriding the base mechanism a
/// `replay:<path>` backend installs (default: the trace header's
/// source mechanism).
pub const REPLAY_BASE_ENV: &str = "LP_REPLAY_BASE";

/// Process-lifetime cache of constructed dynamic backends, keyed by
/// the full name. Keeps repeated `by_name` calls from leaking a new
/// backend each time.
static CACHE: Mutex<Vec<(String, &'static dyn Mechanism)>> = Mutex::new(Vec::new());

/// Parses a dynamic backend name; `None` if `name` matches neither
/// form (or names an unknown base).
pub(crate) fn dynamic_by_name(name: &str) -> Option<&'static dyn Mechanism> {
    let mut cache = CACHE.lock().unwrap();
    if let Some((_, m)) = cache.iter().find(|(k, _)| k == name) {
        return Some(*m);
    }
    let built: &'static dyn Mechanism = if let Some(base_name) = name.strip_suffix("+record") {
        let base = static_by_name(base_name)?;
        Box::leak(Box::new(RecordBackend {
            key: Box::leak(name.to_string().into_boxed_str()),
            base,
        }))
    } else if let Some(path) = name.strip_prefix("replay:") {
        if path.is_empty() {
            return None;
        }
        Box::leak(Box::new(ReplayBackend {
            key: Box::leak(name.to_string().into_boxed_str()),
            path: PathBuf::from(path),
        }))
    } else {
        return None;
    };
    cache.push((name.to_string(), built));
    Some(built)
}

// ——— record ————————————————————————————————————————————————————————

/// `<base>+record`: the base mechanism with a [`RecordHandler`]
/// wrapped around the caller's handler.
struct RecordBackend {
    key: &'static str,
    base: &'static dyn Mechanism,
}

impl Mechanism for RecordBackend {
    fn name(&self) -> &'static str {
        self.key
    }

    fn traits(&self) -> Traits {
        self.base.traits()
    }

    fn is_available(&self) -> bool {
        self.base.is_available()
    }

    fn install(
        &self,
        handler: Box<dyn SyscallHandler>,
    ) -> Result<ActiveMechanism, InstallError> {
        // Open the trace session (if requested) before arming the base
        // so its header names the base and no early event is missed.
        let recorder = match std::env::var(TRACE_OUT_ENV) {
            Ok(path) if !path.is_empty() => Some(
                Recorder::to_path(path.as_ref(), self.base.name()).map_err(InstallError::Io)?,
            ),
            _ => None,
        };
        let base = self
            .base
            .install(Box::new(RecordHandler::wrapping(handler)))?;
        Ok(ActiveMechanism::new(
            self.key,
            Inner::Record(Box::new(RecordActive { base, recorder })),
        ))
    }
}

/// Live `<base>+record` installation: the base guard plus the optional
/// trace session. Field order is teardown order — the base disarms
/// (its last events land in the rings) before the recorder's drop
/// performs the final drain.
pub(crate) struct RecordActive {
    base: ActiveMechanism,
    recorder: Option<Recorder>,
}

impl RecordActive {
    pub(crate) fn snapshot(&self, mechanism: &'static str) -> StatsSnapshot {
        // The base snapshot already carries the recorder counters
        // (they are registry-level, reported by every backend kind);
        // only the attribution changes.
        let mut s = self.base.stats();
        s.mechanism = mechanism;
        s
    }

    pub(crate) fn detach(&mut self) {
        self.base.detach();
    }

    pub(crate) fn set_xstate(&mut self, mask: zpoline::XstateMask) -> bool {
        self.base.set_xstate(mask)
    }

    pub(crate) fn run_program(&mut self, program: &[u8]) -> Result<SimOutcome, RunError> {
        let out = self.base.run_program(program);
        // Drain between guest runs so rings never overflow across a
        // multi-run session (each sim run can observe more events than
        // one ring holds).
        if let Some(rec) = &mut self.recorder {
            let _ = rec.drain();
        }
        out
    }

    pub(crate) fn finish_recording(&mut self) -> Option<std::io::Result<RecordSummary>> {
        Some(self.recorder.take()?.finish())
    }
}

// ——— replay ————————————————————————————————————————————————————————

/// `replay:<trace-path>`: deterministic replay of a recorded trace.
struct ReplayBackend {
    key: &'static str,
    path: PathBuf,
}

impl ReplayBackend {
    /// The base mechanism to re-execute under: `LP_REPLAY_BASE` if
    /// set, else the trace's own source mechanism, else the paper's
    /// subject (`lazypoline` / `sim:lazypoline` by source family).
    fn base_for(&self, source: &str) -> Result<&'static dyn Mechanism, InstallError> {
        if let Ok(name) = std::env::var(REPLAY_BASE_ENV) {
            if !name.is_empty() {
                return static_by_name(&name)
                    .ok_or(InstallError::Unsupported("LP_REPLAY_BASE names no backend"));
            }
        }
        if let Some(m) = static_by_name(source) {
            return Ok(m);
        }
        let fallback = if source.starts_with("sim:") {
            "sim:lazypoline"
        } else {
            "lazypoline"
        };
        static_by_name(fallback).ok_or(InstallError::Unsupported("no replay base backend"))
    }
}

impl Mechanism for ReplayBackend {
    fn name(&self) -> &'static str {
        self.key
    }

    fn traits(&self) -> Traits {
        Traits {
            name: "deterministic replay",
            expressiveness: Expressiveness::Full,
            exhaustive: true,
            efficiency: Efficiency::High,
        }
    }

    /// The trace is only read at install; a bad path surfaces there as
    /// a structured [`InstallError::Io`], not here.
    fn is_available(&self) -> bool {
        true
    }

    fn install(
        &self,
        handler: Box<dyn SyscallHandler>,
    ) -> Result<ActiveMechanism, InstallError> {
        let state =
            ReplayState::load(&self.path).map_err(|e| InstallError::Io(e.into()))?;
        let base = self.base_for(&state.header().source_mechanism)?;
        if !base.is_available() {
            return Err(InstallError::Unsupported(
                "replay base mechanism unavailable on this host",
            ));
        }
        let replayer = ReplayHandler::new(Arc::clone(&state)).observing(handler);
        let base = base.install(Box::new(replayer))?;
        Ok(ActiveMechanism::new(
            self.key,
            Inner::Replay(Box::new(ReplayActive { base, state })),
        ))
    }
}

/// Live `replay:<path>` installation.
pub(crate) struct ReplayActive {
    base: ActiveMechanism,
    state: Arc<ReplayState>,
}

impl ReplayActive {
    pub(crate) fn snapshot(&self, mechanism: &'static str) -> StatsSnapshot {
        let mut s = self.base.stats();
        s.mechanism = mechanism;
        s
    }

    pub(crate) fn detach(&mut self) {
        self.base.detach();
    }

    pub(crate) fn set_xstate(&mut self, mask: zpoline::XstateMask) -> bool {
        self.base.set_xstate(mask)
    }

    pub(crate) fn run_program(&mut self, program: &[u8]) -> Result<SimOutcome, RunError> {
        self.base.run_program(program)
    }

    pub(crate) fn first_divergence(&self) -> Option<Divergence> {
        self.state.first_divergence()
    }

    pub(crate) fn state(&self) -> &Arc<ReplayState> {
        &self.state
    }
}

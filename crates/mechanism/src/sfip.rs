//! The dynamic `<base>+sfip` backend: syscall-flow-integrity
//! enforcement composed around any static backend.
//!
//! `LP_SFIP_POLICY=<path>` names the `LPSFIP1` policy to enforce
//! (required — an `+sfip` install without a policy is a typed
//! [`InstallError::Policy`], never a silent no-op);
//! `LP_SFIP_POLICY_ACTION` picks the violation action
//! (`kill`|`quarantine`|`count`, default `kill`); `LP_SFIP_ORIGINS=1`
//! additionally enforces the per-site origin sets when the policy
//! carries them.

use std::sync::{Arc, Mutex};

use ::sfip::{Policy, SfipHandler, ViolationAction};
use interpose::SyscallHandler;

use crate::{
    static_by_name, ActiveMechanism, InstallError, Inner, Mechanism, RunError, SimOutcome,
    StatsSnapshot,
};

/// Process-lifetime cache of constructed `<base>+sfip` backends, keyed
/// by the full name (same idiom as the record/replay and hooks caches).
static CACHE: Mutex<Vec<(String, &'static dyn Mechanism)>> = Mutex::new(Vec::new());

/// Parses `<base>+sfip`; `None` for other shapes or an unknown base.
pub(crate) fn dynamic_by_name(name: &str) -> Option<&'static dyn Mechanism> {
    let base_name = name.strip_suffix("+sfip")?;
    let mut cache = CACHE.lock().unwrap();
    if let Some((_, m)) = cache.iter().find(|(k, _)| k == name) {
        return Some(*m);
    }
    let base = static_by_name(base_name)?;
    let built: &'static dyn Mechanism = Box::leak(Box::new(SfipBackend {
        key: Box::leak(name.to_string().into_boxed_str()),
        base,
    }));
    cache.push((name.to_string(), built));
    Some(built)
}

/// `<base>+sfip`: the base mechanism with an [`SfipHandler`] wrapped
/// around the caller's handler.
struct SfipBackend {
    key: &'static str,
    base: &'static dyn Mechanism,
}

impl Mechanism for SfipBackend {
    fn name(&self) -> &'static str {
        self.key
    }

    fn traits(&self) -> sim_interpose::Traits {
        self.base.traits()
    }

    fn is_available(&self) -> bool {
        self.base.is_available()
    }

    fn install(
        &self,
        handler: Box<dyn SyscallHandler>,
    ) -> Result<ActiveMechanism, InstallError> {
        // Load and validate everything before arming the base, so a
        // bad policy or action leaves nothing half-installed.
        let path = match std::env::var(::sfip::POLICY_ENV) {
            Ok(p) if !p.is_empty() => p,
            _ => return Err(InstallError::Policy(::sfip::PolicyError::NoPolicyPath)),
        };
        let policy = Policy::load(path.as_ref()).map_err(InstallError::Policy)?;
        let action = ViolationAction::from_env().map_err(InstallError::Policy)?;
        let check_origins = std::env::var(::sfip::ORIGINS_ENV).is_ok_and(|v| v == "1");
        let enforcer = SfipHandler::new(Arc::new(policy), action, check_origins, handler);
        let base = self.base.install(Box::new(enforcer))?;
        Ok(ActiveMechanism::new(
            self.key,
            Inner::Sfip(Box::new(SfipActive {
                base,
                action,
                checks_base: ::sfip::checks(),
                violations_base: ::sfip::violations(),
            })),
        ))
    }
}

/// Live `<base>+sfip` installation: the base guard plus install-time
/// counter baselines so the snapshot reports deltas.
pub(crate) struct SfipActive {
    base: ActiveMechanism,
    action: ViolationAction,
    checks_base: u64,
    violations_base: u64,
}

impl SfipActive {
    pub(crate) fn snapshot(&self, mechanism: &'static str) -> StatsSnapshot {
        let mut s = self.base.stats();
        s.mechanism = mechanism;
        s.sfip_checks = ::sfip::checks().saturating_sub(self.checks_base);
        s.sfip_violations = ::sfip::violations().saturating_sub(self.violations_base);
        s.sfip_mode = self.action.name();
        s
    }

    pub(crate) fn detach(&mut self) {
        self.base.detach();
    }

    pub(crate) fn set_xstate(&mut self, mask: zpoline::XstateMask) -> bool {
        self.base.set_xstate(mask)
    }

    pub(crate) fn run_program(&mut self, program: &[u8]) -> Result<SimOutcome, RunError> {
        self.base.run_program(program)
    }
}

//! Simulated backends: the `sim:*` registry rows, bridging
//! `sim-interpose`'s mechanism models into the same trait the native
//! configurations implement.

use interpose::{Action, InterestSet, SyscallEvent, SyscallHandler};
use sim_interpose::{mechanism_traits, Interposed, Traits};

use crate::{ActiveMechanism, InstallError, Inner, Mechanism, RunError, SimOutcome, StatsSnapshot};

/// One registry row: a name bound to a simulated mechanism model.
pub(crate) struct SimBackend {
    key: &'static str,
    mech: sim_interpose::Mechanism,
}

pub(crate) static SIM_BACKENDS: [SimBackend; 10] = [
    SimBackend {
        key: "sim:baseline",
        mech: sim_interpose::Mechanism::Baseline,
    },
    SimBackend {
        key: "sim:baseline-sud",
        mech: sim_interpose::Mechanism::BaselineSudEnabled,
    },
    SimBackend {
        key: "sim:ptrace",
        mech: sim_interpose::Mechanism::Ptrace,
    },
    SimBackend {
        key: "sim:seccomp-bpf",
        mech: sim_interpose::Mechanism::SeccompBpf,
    },
    SimBackend {
        key: "sim:seccomp-user",
        mech: sim_interpose::Mechanism::SeccompUser,
    },
    SimBackend {
        key: "sim:sud",
        mech: sim_interpose::Mechanism::Sud,
    },
    SimBackend {
        key: "sim:zpoline",
        mech: sim_interpose::Mechanism::Zpoline,
    },
    SimBackend {
        key: "sim:lazypoline-nox",
        mech: sim_interpose::Mechanism::Lazypoline { xstate: false },
    },
    SimBackend {
        key: "sim:lazypoline",
        mech: sim_interpose::Mechanism::Lazypoline { xstate: true },
    },
    SimBackend {
        key: "sim:lazypoline-hardened",
        mech: sim_interpose::Mechanism::LazypolineHardened,
    },
];

impl Mechanism for SimBackend {
    fn name(&self) -> &'static str {
        self.key
    }

    fn traits(&self) -> Traits {
        mechanism_traits(self.mech)
    }

    fn is_available(&self) -> bool {
        true
    }

    fn install(
        &self,
        handler: Box<dyn SyscallHandler>,
    ) -> Result<ActiveMechanism, InstallError> {
        Ok(ActiveMechanism::new(
            self.key,
            Inner::Sim(SimActive::new(self.mech, handler)),
        ))
    }
}

/// Live simulated installation: the handler plus counters accumulated
/// across [`ActiveMechanism::run_program`] calls.
pub(crate) struct SimActive {
    mech: sim_interpose::Mechanism,
    handler: Box<dyn SyscallHandler>,
    dispatches: u64,
    slow_path_hits: u64,
    /// Process-global recorder/replay counters at install time, so the
    /// snapshot reports deltas attributable to this installation (same
    /// contract as the native backends).
    base_recorded: u64,
    base_dropped: u64,
    base_divergences: u64,
    base_spilled: u64,
    base_grows: u64,
    base_near_full: u64,
    base_drain_yields: u64,
}

impl SimActive {
    pub(crate) fn new(
        mech: sim_interpose::Mechanism,
        handler: Box<dyn SyscallHandler>,
    ) -> SimActive {
        SimActive {
            mech,
            handler,
            dispatches: 0,
            slow_path_hits: 0,
            base_recorded: replay::events_recorded(),
            base_dropped: replay::events_dropped(),
            base_divergences: replay::replay_divergences(),
            base_spilled: replay::events_spilled(),
            base_grows: replay::ring::total_grows(),
            base_near_full: replay::ring::total_near_full(),
            base_drain_yields: replay::ring::total_drain_yields(),
        }
    }

    pub(crate) fn run(&mut self, program: &[u8]) -> Result<SimOutcome, RunError> {
        // The handler's interest set plays the role the registry's
        // cached words play natively: observation-capable mechanisms
        // filter delivery to the declared numbers.
        let interest = self.handler.interest();
        let nrs: Vec<u64>;
        let filter = if interest == InterestSet::all() {
            None
        } else {
            nrs = (0..syscalls::MAX_SYSCALL_NR)
                .filter(|&nr| interest.contains(nr))
                .collect();
            Some(nrs.as_slice())
        };
        let mut ip = Interposed::setup_filtered(self.mech, program, true, filter)
            .map_err(RunError::Setup)?;
        let exit = ip.run().map_err(RunError::Sim)?;
        let observed = ip.observed_trace();

        // Replay the mechanism's observations through the handler with
        // the same event/post shape the native dispatchers use. (The
        // sim records numbers, not full argument images, so events are
        // nullary; `ptrace` logs kernel-side and ignores the filter, so
        // re-check interest here for uniform delivery semantics.)
        for &nr in &observed {
            if !interest.contains(nr) {
                continue;
            }
            let mut ev = SyscallEvent::new(syscalls::SyscallArgs::nullary(nr));
            if let Action::Passthrough = self.handler.handle(&mut ev) {
                self.handler.post(&ev, 0);
            }
        }

        self.dispatches += observed.len() as u64;
        self.slow_path_hits += ip.system.kernel.stats().sud_dispatches;
        Ok(SimOutcome {
            exit,
            cycles: ip.cycles(),
            observed,
        })
    }

    pub(crate) fn snapshot(&self, mechanism: &'static str) -> StatsSnapshot {
        let mut s = StatsSnapshot::zero(mechanism);
        s.dispatches = self.dispatches;
        s.slow_path_hits = self.slow_path_hits;
        s.events_recorded = replay::events_recorded().saturating_sub(self.base_recorded);
        s.events_dropped = replay::events_dropped().saturating_sub(self.base_dropped);
        s.replay_divergences =
            replay::replay_divergences().saturating_sub(self.base_divergences);
        s.events_spilled = replay::events_spilled().saturating_sub(self.base_spilled);
        s.ring_grows = replay::ring::total_grows().saturating_sub(self.base_grows);
        s.ring_near_full = replay::ring::total_near_full().saturating_sub(self.base_near_full);
        s.drain_yields =
            replay::ring::total_drain_yields().saturating_sub(self.base_drain_yields);
        // A configuration value, not a counter: report it as-is.
        s.drain_shards = replay::drain_shards();
        s
    }
}

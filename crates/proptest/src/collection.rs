//! Collection strategies (`proptest::collection` subset).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::collections::BTreeSet;
use std::ops::Range;

/// Strategy for `Vec`s with lengths drawn from `size`.
#[derive(Clone, Debug)]
pub struct VecStrategy<S> {
    element: S,
    size: Range<usize>,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn gen_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = (self.size.end - self.size.start).max(1) as u64;
        let len = self.size.start + rng.below(span) as usize;
        (0..len).map(|_| self.element.gen_value(rng)).collect()
    }
}

/// `proptest::collection::vec`: vectors of `element` with a length in
/// `size` (half-open, like proptest's `SizeRange` from a `Range`).
pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
    assert!(size.start < size.end, "empty size range");
    VecStrategy { element, size }
}

/// Strategy for `BTreeSet`s with target sizes drawn from `size`.
#[derive(Clone, Debug)]
pub struct BTreeSetStrategy<S> {
    element: S,
    size: Range<usize>,
}

impl<S: Strategy> Strategy for BTreeSetStrategy<S>
where
    S::Value: Ord,
{
    type Value = BTreeSet<S::Value>;
    fn gen_value(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
        let span = (self.size.end - self.size.start).max(1) as u64;
        let target = self.size.start + rng.below(span) as usize;
        let mut out = BTreeSet::new();
        // Duplicates shrink the set; retry a bounded number of times to
        // approach the target size (exactness is not part of the
        // contract this workspace relies on).
        for _ in 0..target.saturating_mul(8).max(8) {
            if out.len() >= target {
                break;
            }
            out.insert(self.element.gen_value(rng));
        }
        out
    }
}

/// `proptest::collection::btree_set`: sets of `element` with a size
/// in `size` (best-effort under duplicate draws).
pub fn btree_set<S: Strategy>(element: S, size: Range<usize>) -> BTreeSetStrategy<S>
where
    S::Value: Ord,
{
    assert!(size.start < size.end, "empty size range");
    BTreeSetStrategy { element, size }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arbitrary::any;

    #[test]
    fn vec_lengths_in_range() {
        let s = vec(any::<u8>(), 2..5);
        let mut rng = TestRng::for_case(1);
        for _ in 0..100 {
            let v = s.gen_value(&mut rng);
            assert!((2..5).contains(&v.len()));
        }
    }

    #[test]
    fn btree_set_nonempty() {
        let s = btree_set(0u64..1000, 1..20);
        let mut rng = TestRng::for_case(2);
        for _ in 0..50 {
            let v = s.gen_value(&mut rng);
            assert!(!v.is_empty() && v.len() < 20);
            assert!(v.iter().all(|&x| x < 1000));
        }
    }
}

//! Vendored, minimal property-testing shim exposing the subset of the
//! `proptest` crate API this workspace uses.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors this path dependency under the name `proptest`. It keeps the
//! same surface syntax (`proptest!`, `prop_assert!`, strategies,
//! `prop_oneof!`, `collection::vec`, string character-class patterns)
//! but trades sophistication for zero dependencies:
//!
//! * cases are generated from a deterministic splitmix64 RNG (seed
//!   fixed per test, so failures reproduce);
//! * there is **no shrinking** — a failing case panics with the raw
//!   inputs rendered via `Debug`;
//! * the number of cases comes from `PROPTEST_CASES` (default 64).

pub mod collection;
pub mod strategy;

pub mod test_runner {
    //! Deterministic RNG + case-count plumbing for the `proptest!`
    //! macro expansion.

    /// Splitmix64: tiny, fast, and good enough for test-case generation.
    #[derive(Clone, Debug)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// A deterministic generator for case number `case` of a test.
        pub fn for_case(case: u64) -> TestRng {
            TestRng {
                state: 0x9e37_79b9_7f4a_7c15_u64.wrapping_add(case.wrapping_mul(0xbf58_476d_1ce4_e5b9)),
            }
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// Uniform value in `[0, bound)`; `bound` must be nonzero.
        pub fn below(&mut self, bound: u64) -> u64 {
            // Modulo bias is irrelevant at test-generation quality.
            self.next_u64() % bound
        }
    }

    /// Number of cases to run per property (`PROPTEST_CASES`, default 64).
    pub fn cases() -> u64 {
        std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .filter(|&n| n > 0)
            .unwrap_or(64)
    }
}

pub mod arbitrary {
    //! The `any::<T>()` entry point and the [`Arbitrary`] types behind it.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical "whole domain" strategy.
    pub trait Arbitrary: Sized + std::fmt::Debug {
        /// One uniformly random value of the type.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! int_arbitrary {
        ($($t:ty),+) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )+};
    }
    int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl<T: Arbitrary, const N: usize> Arbitrary for [T; N] {
        fn arbitrary(rng: &mut TestRng) -> [T; N] {
            core::array::from_fn(|_| T::arbitrary(rng))
        }
    }

    /// Strategy producing arbitrary values of `T`.
    #[derive(Clone, Debug, Default)]
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn gen_value(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The whole-domain strategy for `T` (proptest's `any`).
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

pub mod prelude {
    //! One-stop import mirroring `proptest::prelude::*`.
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Runs each property function over generated cases.
///
/// Supported grammar (the subset the workspace uses):
///
/// ```ignore
/// proptest! {
///     /// docs
///     #[test]
///     fn name(x in strategy_expr, y in other_strategy) { body }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)+) => {$(
        $(#[$meta])*
        fn $name() {
            let __cases = $crate::test_runner::cases();
            for __case in 0..__cases {
                let mut __rng = $crate::test_runner::TestRng::for_case(__case);
                $(let $arg = $crate::strategy::Strategy::gen_value(&$strat, &mut __rng);)+
                let mut __inputs = String::new();
                $(__inputs.push_str(&format!("  {} = {:?}\n", stringify!($arg), &$arg));)+
                let __run = || -> ::std::result::Result<(), ::std::string::String> {
                    $body
                    Ok(())
                };
                if let Err(__msg) = __run() {
                    panic!(
                        "proptest case {}/{} failed: {}\ninputs:\n{}",
                        __case + 1, __cases, __msg, __inputs
                    );
                }
            }
        }
    )+};
}

/// `prop_assert!`: fail the current case (with no shrinking) on a false
/// condition.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err(format!(
                "assertion failed: {} ({}:{})",
                stringify!($cond), file!(), line!()
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err(format!($($fmt)+));
        }
    };
}

/// `prop_assert_eq!`: equality assertion rendered with `Debug`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (lhs, rhs) = (&$a, &$b);
        if !(lhs == rhs) {
            return Err(format!(
                "{}\n  left: {:?}\n right: {:?} ({}:{})",
                format!($($fmt)+), lhs, rhs, file!(), line!()
            ));
        }
    }};
    ($a:expr, $b:expr) => {{
        let (lhs, rhs) = (&$a, &$b);
        if !(lhs == rhs) {
            return Err(format!(
                "assertion failed: {} == {}\n  left: {:?}\n right: {:?} ({}:{})",
                stringify!($a), stringify!($b), lhs, rhs, file!(), line!()
            ));
        }
    }};
}

/// `prop_assert_ne!`: inequality assertion rendered with `Debug`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (lhs, rhs) = (&$a, &$b);
        if lhs == rhs {
            return Err(format!(
                "assertion failed: {} != {}\n  both: {:?} ({}:{})",
                stringify!($a), stringify!($b), lhs, file!(), line!()
            ));
        }
    }};
}

/// `prop_oneof!`: uniformly choose among strategies producing the same
/// value type. (Weights are not supported — the workspace uses none.)
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(::std::vec![
            $($crate::strategy::boxed($arm)),+
        ])
    };
}

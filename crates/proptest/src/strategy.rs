//! Value-generation strategies (the proptest-compatible core).

use crate::test_runner::TestRng;

/// A recipe for generating values of one type.
///
/// Unlike real proptest there is no value tree and no shrinking: a
/// strategy is just a deterministic function of the RNG state.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn gen_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f` (proptest's `prop_map`).
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Generates a value, then generates from the strategy `f` derives
    /// from it (proptest's `prop_flat_map`).
    fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }
}

/// See [`Strategy::prop_map`].
#[derive(Clone, Debug)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn gen_value(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.gen_value(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Clone, Debug)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn gen_value(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.gen_value(rng)).gen_value(rng)
    }
}

/// Always generates a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn gen_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

// Integer ranges. `start..end` and `start..=end` are strategies over
// the respective interval, as in proptest.
macro_rules! int_range_strategy {
    ($($t:ty),+) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn gen_value(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn gen_value(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start() as i128, *self.end() as i128);
                assert!(lo <= hi, "empty range strategy");
                let span = (hi - lo + 1) as u64; // never 0: callers use sub-u64 spans
                (lo + rng.below(span) as i128) as $t
            }
        }
    )+};
}
int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

// Tuples of strategies generate tuples of values.
macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn gen_value(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.gen_value(rng),)+)
            }
        }
    };
}
tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, F);

// A Vec of strategies generates a Vec of values, element-wise.
impl<S: Strategy> Strategy for Vec<S> {
    type Value = Vec<S::Value>;
    fn gen_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
        self.iter().map(|s| s.gen_value(rng)).collect()
    }
}

impl<V> Strategy for Box<dyn Strategy<Value = V>> {
    type Value = V;
    fn gen_value(&self, rng: &mut TestRng) -> V {
        (**self).gen_value(rng)
    }
}

/// Boxes a strategy for use in heterogeneous unions (`prop_oneof!`).
pub fn boxed<S: Strategy + 'static>(s: S) -> Box<dyn Strategy<Value = S::Value>> {
    Box::new(s)
}

/// Uniform choice among strategies of one value type (`prop_oneof!`).
pub struct Union<V> {
    arms: Vec<Box<dyn Strategy<Value = V>>>,
}

impl<V> Union<V> {
    /// Builds a union; panics on an empty arm list.
    pub fn new(arms: Vec<Box<dyn Strategy<Value = V>>>) -> Union<V> {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;
    fn gen_value(&self, rng: &mut TestRng) -> V {
        let idx = rng.below(self.arms.len() as u64) as usize;
        self.arms[idx].gen_value(rng)
    }
}

// String strategies from character-class patterns. Supports exactly the
// `"[class]{min,max}"` shape (plus a bare `[class]` for one char),
// where the class lists literal characters and `a-z` ranges — the
// subset the workspace's tests use. Anything else panics loudly.
impl Strategy for &str {
    type Value = String;
    fn gen_value(&self, rng: &mut TestRng) -> String {
        let (chars, min, max) = parse_class_pattern(self)
            .unwrap_or_else(|| panic!("unsupported string pattern strategy: {self:?}"));
        let len = min + rng.below((max - min + 1) as u64) as usize;
        (0..len)
            .map(|_| chars[rng.below(chars.len() as u64) as usize])
            .collect()
    }
}

/// Parses `[chars]{min,max}` → (expanded alphabet, min, max).
fn parse_class_pattern(pat: &str) -> Option<(Vec<char>, usize, usize)> {
    let rest = pat.strip_prefix('[')?;
    let close = rest.find(']')?;
    let class: Vec<char> = rest[..close].chars().collect();
    let mut alphabet = Vec::new();
    let mut i = 0;
    while i < class.len() {
        if i + 2 < class.len() && class[i + 1] == '-' {
            let (lo, hi) = (class[i], class[i + 2]);
            if lo > hi {
                return None;
            }
            for c in lo..=hi {
                alphabet.push(c);
            }
            i += 3;
        } else {
            alphabet.push(class[i]);
            i += 1;
        }
    }
    if alphabet.is_empty() {
        return None;
    }
    let tail = &rest[close + 1..];
    if tail.is_empty() {
        return Some((alphabet, 1, 1));
    }
    let counts = tail.strip_prefix('{')?.strip_suffix('}')?;
    let (min, max) = match counts.split_once(',') {
        Some((a, b)) => (a.trim().parse().ok()?, b.trim().parse().ok()?),
        None => {
            let n = counts.trim().parse().ok()?;
            (n, n)
        }
    };
    if min > max {
        return None;
    }
    Some((alphabet, min, max))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_pattern_parsing() {
        let (chars, min, max) = parse_class_pattern("[a-z_0-9]{1,12}").unwrap();
        assert!(chars.contains(&'a') && chars.contains(&'z') && chars.contains(&'_'));
        assert!(chars.contains(&'0') && chars.contains(&'9'));
        assert_eq!((min, max), (1, 12));
        assert!(parse_class_pattern("no-brackets").is_none());
        assert_eq!(parse_class_pattern("[ab]").map(|t| (t.1, t.2)), Some((1, 1)));
    }

    #[test]
    fn range_strategies_respect_bounds() {
        let mut rng = TestRng::for_case(7);
        for _ in 0..200 {
            let v = (3u64..10).gen_value(&mut rng);
            assert!((3..10).contains(&v));
            let w = (-5i32..=5).gen_value(&mut rng);
            assert!((-5..=5).contains(&w));
        }
    }

    #[test]
    fn string_strategy_respects_pattern() {
        let mut rng = TestRng::for_case(3);
        for _ in 0..100 {
            let s = "[a-z_0-9]{1,12}".gen_value(&mut rng);
            assert!(!s.is_empty() && s.len() <= 12);
            assert!(s.chars().all(|c| c.is_ascii_lowercase() || c == '_' || c.is_ascii_digit()));
        }
    }
}

//! Compact `LPTRACE2` record encoding.
//!
//! LPTRACE1 spends a fixed 88 bytes per record; at production event
//! rates the disk write becomes the recorder's bottleneck. LPTRACE2
//! exploits what syscall streams actually look like — the same few
//! (sysno, call-site) pairs repeat millions of times, timestamps are
//! monotonic with small deltas, most argument registers are zero or
//! small — to get the typical record down to a handful of bytes
//! (~3–5× smaller end to end; see `DESIGN.md` §5).
//!
//! # Record wire format (all varints LEB128, little-endian groups)
//!
//! | field | encoding |
//! |-------|----------|
//! | key | varint: `0` = literal escape, then varint sysno + varint site; `k>0` = dictionary entry `k-1` |
//! | tsc | zigzag varint of the **wrapping** delta from the previous record's tsc |
//! | tid | zigzag varint of the delta from the previous record's tid |
//! | args mask | one byte, bit *i* set ⇔ `args[i] != 0` |
//! | args | varint of each `args[i]` whose mask bit is set |
//! | ret | zigzag varint (returns are small positives or small `-errno`s) |
//!
//! The (sysno, site) dictionary is built **implicitly and identically**
//! on both sides: each literal escape appends to the dictionary while
//! it has room ([`DICT_CAP`]); once full, further new pairs stay
//! literal forever. There is no table in the file and no
//! synchronization to get wrong — the decoder replays exactly the
//! inserts the encoder performed.
//!
//! Records are self-delimiting, so the stream needs no count field:
//! clean EOF at a record boundary is the end of the trace; EOF inside
//! a record is [`TraceError::Truncated`](crate::TraceError::Truncated).
//!
//! Encoding runs on the drain thread (never the interposer hot path),
//! so it may allocate freely.

use std::collections::HashMap;

use crate::event::EventRecord;
use crate::format::TraceError;

/// Dictionary entries both sides will build before falling back to
/// literal-only encoding. 2¹⁶ distinct (sysno, site) pairs is far past
/// any real workload (the paper's exhaustiveness suite exercises a few
/// hundred sites).
pub const DICT_CAP: usize = 1 << 16;

/// Worst-case encoded size of one record: literal key (1 + 10 + 10) +
/// tsc (10) + tid (10) + mask (1) + six args (60) + ret (10).
pub const MAX_ENCODED_SIZE: usize = 102;

// ——— varint primitives ——————————————————————————————————————————————

/// Appends `v` as LEB128 (7 bits per byte, high bit = continuation).
#[inline]
pub fn put_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Zigzag-maps a signed value so small magnitudes encode small.
#[inline]
pub fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

/// Inverse of [`zigzag`].
#[inline]
pub fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

/// Reads a LEB128 varint from `buf` at `*pos`, advancing it. `None`
/// when the buffer ends mid-varint (or immediately) — the caller
/// decides whether that is clean EOF or truncation.
#[inline]
pub fn get_varint(buf: &[u8], pos: &mut usize) -> Option<u64> {
    let mut v = 0u64;
    let mut shift = 0u32;
    loop {
        let byte = *buf.get(*pos)?;
        *pos += 1;
        v |= u64::from(byte & 0x7f) << shift;
        if byte & 0x80 == 0 {
            return Some(v);
        }
        shift += 7;
        if shift >= 64 {
            // Over-long varint: treat as corruption (caller maps to
            // Truncated — the stream is unrecoverable either way).
            return None;
        }
    }
}

// ——— encoder ————————————————————————————————————————————————————————

/// Streaming LPTRACE2 encoder: one per trace, records in trace order.
pub struct Lp2Encoder {
    dict: HashMap<(u64, u64), u64>,
    prev_tsc: u64,
    prev_tid: u32,
}

impl Default for Lp2Encoder {
    fn default() -> Lp2Encoder {
        Lp2Encoder::new()
    }
}

impl Lp2Encoder {
    /// An encoder with an empty dictionary and zero deltas — matches a
    /// fresh [`Lp2Decoder`].
    pub fn new() -> Lp2Encoder {
        Lp2Encoder {
            dict: HashMap::new(),
            prev_tsc: 0,
            prev_tid: 0,
        }
    }

    /// Appends `rec`'s encoding to `out` and returns the encoded byte
    /// length.
    pub fn encode(&mut self, rec: &EventRecord, out: &mut Vec<u8>) -> usize {
        let start = out.len();
        let pair = (rec.sysno, rec.site);
        match self.dict.get(&pair) {
            Some(&idx) => put_varint(out, idx + 1),
            None => {
                put_varint(out, 0);
                put_varint(out, rec.sysno);
                put_varint(out, rec.site);
                if self.dict.len() < DICT_CAP {
                    let idx = self.dict.len() as u64;
                    self.dict.insert(pair, idx);
                }
            }
        }
        put_varint(out, zigzag(rec.tsc.wrapping_sub(self.prev_tsc) as i64));
        self.prev_tsc = rec.tsc;
        put_varint(
            out,
            zigzag(i64::from(rec.tid).wrapping_sub(i64::from(self.prev_tid))),
        );
        self.prev_tid = rec.tid;
        let mut mask = 0u8;
        for (i, &a) in rec.args.iter().enumerate() {
            if a != 0 {
                mask |= 1 << i;
            }
        }
        out.push(mask);
        for &a in rec.args.iter().filter(|&&a| a != 0) {
            put_varint(out, a);
        }
        put_varint(out, zigzag(rec.ret as i64));
        out.len() - start
    }
}

// ——— decoder ————————————————————————————————————————————————————————

/// Streaming LPTRACE2 decoder — mirrors [`Lp2Encoder`]'s state machine
/// (same implicit dictionary inserts, same delta bases).
pub struct Lp2Decoder {
    dict: Vec<(u64, u64)>,
    prev_tsc: u64,
    prev_tid: u32,
}

impl Default for Lp2Decoder {
    fn default() -> Lp2Decoder {
        Lp2Decoder::new()
    }
}

impl Lp2Decoder {
    /// A decoder in the initial state (empty dictionary, zero deltas).
    pub fn new() -> Lp2Decoder {
        Lp2Decoder {
            dict: Vec::new(),
            prev_tsc: 0,
            prev_tid: 0,
        }
    }

    /// Decodes the record starting at `*pos`, advancing it past the
    /// record. `Ok(None)` = clean EOF at a record boundary; EOF inside
    /// a record (or a malformed varint / dictionary reference) is
    /// [`TraceError::Truncated`].
    pub fn decode_next(
        &mut self,
        buf: &[u8],
        pos: &mut usize,
    ) -> Result<Option<EventRecord>, TraceError> {
        if *pos >= buf.len() {
            return Ok(None);
        }
        let key = get_varint(buf, pos).ok_or(TraceError::Truncated)?;
        let (sysno, site) = if key == 0 {
            let sysno = get_varint(buf, pos).ok_or(TraceError::Truncated)?;
            let site = get_varint(buf, pos).ok_or(TraceError::Truncated)?;
            if self.dict.len() < DICT_CAP {
                self.dict.push((sysno, site));
            }
            (sysno, site)
        } else {
            *self
                .dict
                .get(key as usize - 1)
                .ok_or(TraceError::Truncated)?
        };
        let tsc_delta = get_varint(buf, pos).ok_or(TraceError::Truncated)?;
        let tsc = self.prev_tsc.wrapping_add(unzigzag(tsc_delta) as u64);
        self.prev_tsc = tsc;
        let tid_delta = get_varint(buf, pos).ok_or(TraceError::Truncated)?;
        let tid = i64::from(self.prev_tid).wrapping_add(unzigzag(tid_delta)) as u32;
        self.prev_tid = tid;
        let mask = *buf.get(*pos).ok_or(TraceError::Truncated)?;
        *pos += 1;
        let mut args = [0u64; 6];
        for (i, a) in args.iter_mut().enumerate() {
            if mask & (1 << i) != 0 {
                *a = get_varint(buf, pos).ok_or(TraceError::Truncated)?;
            }
        }
        let ret = unzigzag(get_varint(buf, pos).ok_or(TraceError::Truncated)?) as u64;
        Ok(Some(EventRecord {
            sysno,
            args,
            ret,
            tsc,
            site,
            tid,
        }))
    }

    /// Decodes every record remaining in `buf` from offset `pos`.
    pub fn decode_all(
        &mut self,
        buf: &[u8],
        mut pos: usize,
    ) -> Result<Vec<EventRecord>, TraceError> {
        let mut out = Vec::new();
        while let Some(rec) = self.decode_next(buf, &mut pos)? {
            out.push(rec);
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(records: &[EventRecord]) -> Vec<EventRecord> {
        let mut enc = Lp2Encoder::new();
        let mut bytes = Vec::new();
        for r in records {
            enc.encode(r, &mut bytes);
        }
        Lp2Decoder::new().decode_all(&bytes, 0).unwrap()
    }

    #[test]
    fn varint_roundtrip_edges() {
        for v in [0u64, 1, 127, 128, 300, u64::from(u32::MAX), u64::MAX] {
            let mut out = Vec::new();
            put_varint(&mut out, v);
            let mut pos = 0;
            assert_eq!(get_varint(&out, &mut pos), Some(v));
            assert_eq!(pos, out.len());
        }
        for v in [0i64, 1, -1, 63, -64, i64::MAX, i64::MIN] {
            assert_eq!(unzigzag(zigzag(v)), v);
        }
    }

    #[test]
    fn typical_stream_roundtrips_and_compresses() {
        let mut records = Vec::new();
        let mut tsc = 1_000_000u64;
        for i in 0..1000u64 {
            tsc += 150 + i % 7;
            records.push(EventRecord {
                sysno: syscalls::nr::GETPID + i % 3,
                args: [3, 0x1000, 64, 0, 0, 0],
                ret: 64,
                tsc,
                site: 0x40_0000 + (i % 5) * 16,
                tid: 100 + (i % 4) as u32,
            });
        }
        let mut enc = Lp2Encoder::new();
        let mut bytes = Vec::new();
        for r in &records {
            enc.encode(r, &mut bytes);
        }
        assert_eq!(roundtrip(&records), records);
        let fixed = records.len() * crate::event::RECORD_SIZE;
        assert!(
            bytes.len() * 3 <= fixed,
            "compression below 1/3 of LPTRACE1 on a typical stream: {} vs {fixed}",
            bytes.len()
        );
    }

    #[test]
    fn adversarial_values_roundtrip() {
        let records = vec![
            EventRecord {
                sysno: u64::MAX,
                args: [u64::MAX; 6],
                ret: u64::MAX,
                tsc: u64::MAX, // next delta wraps
                site: u64::MAX,
                tid: u32::MAX,
            },
            EventRecord {
                sysno: 0,
                args: [0; 6],
                ret: (-4095i64) as u64,
                tsc: 0, // wrapping delta from u64::MAX
                site: 0,
                tid: 0,
            },
            EventRecord::ZERO,
        ];
        assert_eq!(roundtrip(&records), records);
    }

    #[test]
    fn dictionary_overflow_falls_back_to_literals() {
        // More distinct (sysno, site) pairs than DICT_CAP: the tail
        // stays literal on both sides and still round-trips.
        let n = DICT_CAP + 50;
        let records: Vec<EventRecord> = (0..n as u64)
            .map(|i| EventRecord {
                sysno: i,
                site: i * 2,
                tsc: i * 100,
                ..EventRecord::ZERO
            })
            .collect();
        assert_eq!(roundtrip(&records), records);
    }

    #[test]
    fn truncation_inside_a_record_is_detected() {
        let mut enc = Lp2Encoder::new();
        let mut bytes = Vec::new();
        enc.encode(
            &EventRecord {
                sysno: 1,
                tsc: 500,
                ..EventRecord::ZERO
            },
            &mut bytes,
        );
        let full = bytes.len();
        // Every proper prefix (except empty = clean EOF) is truncated.
        for cut in 1..full {
            let mut dec = Lp2Decoder::new();
            assert!(
                matches!(dec.decode_all(&bytes[..cut], 0), Err(TraceError::Truncated)),
                "cut at {cut} must be Truncated"
            );
        }
        assert!(Lp2Decoder::new().decode_all(&bytes[..0], 0).unwrap().is_empty());
        assert_eq!(Lp2Decoder::new().decode_all(&bytes, 0).unwrap().len(), 1);
    }

    #[test]
    fn bad_dictionary_reference_is_structured() {
        // key = 5 with an empty dictionary.
        let bytes = [5u8, 0, 0, 0, 0];
        let mut dec = Lp2Decoder::new();
        assert!(matches!(
            dec.decode_all(&bytes, 0),
            Err(TraceError::Truncated)
        ));
    }
}

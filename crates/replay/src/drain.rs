//! The dedicated drain thread: continuously sweeps the flight-recorder
//! rings into the trace writer so producers never meet a full ring at
//! steady state.
//!
//! The thread is spawned by [`Recorder`](crate::Recorder) **before**
//! the interposition mechanism installs. That ordering is load-bearing
//! twice over: syscall-user-dispatch enrollment is per-thread and
//! inherited across `clone`, so a thread that exists before install is
//! never enrolled — the drainer's own syscalls (mmap remaps,
//! ftruncate) are neither interposed nor recorded, and it cannot
//! deadlock against the engine it serves.
//!
//! Each sweep drains every claimed ring, sorts the batch by `tsc` (the
//! cross-thread merge key), and appends it to the writer. Between
//! empty sweeps the thread backs off adaptively — a bounded stretch of
//! `yield_now`, then `park_timeout` — so an idle recorder costs
//! nothing measurable. [`DrainHandle::stop`] sets the stop flag,
//! unparks, and joins; the thread's exit path re-sweeps until the
//! rings are empty, so every event pushed before `stop` lands in the
//! trace.

use std::io::{self, Seek, Write};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use crate::event::EventRecord;
use crate::format::TraceWriter;
use crate::ring;

/// Records appended to a trace by drain sweeps (process lifetime),
/// counting both the async thread's sweeps and synchronous
/// [`Recorder::drain`](crate::Recorder::drain) calls.
pub(crate) static EVENTS_SPILLED: AtomicU64 = AtomicU64::new(0);

/// Consecutive empty sweeps that merely yield before the thread starts
/// parking.
const YIELD_SWEEPS: u32 = 64;

/// Park duration once idle. Long enough to vacate the CPU, short
/// enough that a burst after silence meets a drainer at most ~200µs
/// behind — a few hundred records at production rates, well inside a
/// default ring. Producers additionally cut the park short: a push
/// that crosses the near-full threshold calls [`wake_if_parked`].
const IDLE_PARK: Duration = Duration::from_micros(200);

/// Whether the drain thread has announced it is parking. Checked by
/// producers on near-full pushes so a burst arriving mid-park wakes
/// the drainer instead of riding out the timeout against a filling
/// ring. Relaxed ordering throughout: a missed wake costs at most one
/// `IDLE_PARK` of latency (the park always times out), never an event.
static PARKED: AtomicBool = AtomicBool::new(false);

/// The running drain thread's handle, for producer-side wakes. One
/// recorder session (and thus one drainer) exists at a time.
static DRAINER: Mutex<Option<std::thread::Thread>> = Mutex::new(None);

/// Unparks the drain thread if one is registered and parking. Called
/// from the producer hot path (possibly signal context), so it must
/// not block: `try_lock` skips the wake under contention, which only
/// ever delays the sweep by the bounded park timeout.
#[cold]
pub(crate) fn wake_if_parked() {
    if !PARKED.load(Ordering::Relaxed) {
        return;
    }
    if let Ok(guard) = DRAINER.try_lock() {
        if let Some(t) = guard.as_ref() {
            t.unpark();
        }
    }
}

/// A running drain thread plus its stop signal.
pub(crate) struct DrainHandle<W: Write + Seek + Send + 'static> {
    stop: Arc<AtomicBool>,
    thread: JoinHandle<io::Result<TraceWriter<W>>>,
}

impl<W: Write + Seek + Send + 'static> DrainHandle<W> {
    /// Signals the thread, joins it, and returns the writer (with
    /// every pre-`stop` event appended) or the first spill error.
    pub(crate) fn stop(self) -> io::Result<TraceWriter<W>> {
        self.stop.store(true, Ordering::Release);
        if let Ok(mut guard) = DRAINER.lock() {
            *guard = None;
        }
        self.thread.thread().unpark();
        self.thread
            .join()
            .map_err(|_| io::Error::other("drain thread panicked"))?
    }
}

/// Spawns the drain thread around `writer`. Call before the
/// interposition mechanism installs (see module docs).
pub(crate) fn spawn<W: Write + Seek + Send + 'static>(
    writer: TraceWriter<W>,
) -> io::Result<DrainHandle<W>> {
    let stop = Arc::new(AtomicBool::new(false));
    let stop2 = Arc::clone(&stop);
    let thread = std::thread::Builder::new()
        .name("lp-drain".into())
        .spawn(move || run(writer, &stop2))?;
    if let Ok(mut guard) = DRAINER.lock() {
        *guard = Some(thread.thread().clone());
    }
    Ok(DrainHandle { stop, thread })
}

fn run<W: Write + Seek>(
    mut writer: TraceWriter<W>,
    stop: &AtomicBool,
) -> io::Result<TraceWriter<W>> {
    let mut pending: Vec<EventRecord> = Vec::new();
    let mut idle_sweeps = 0u32;
    loop {
        let stopping = stop.load(Ordering::Acquire);
        let n = sweep(&mut writer, &mut pending)?;
        if n == 0 {
            if stopping {
                return Ok(writer);
            }
            if idle_sweeps < YIELD_SWEEPS {
                idle_sweeps += 1;
                std::thread::yield_now();
            } else {
                PARKED.store(true, Ordering::Relaxed);
                // Re-sweep after announcing the park: a producer that
                // went near-full between the empty sweep above and the
                // store would have read PARKED == false and skipped
                // its wake. Only park when still empty.
                if sweep(&mut writer, &mut pending)? == 0 {
                    std::thread::park_timeout(IDLE_PARK);
                }
                PARKED.store(false, Ordering::Relaxed);
            }
        } else {
            idle_sweeps = 0;
        }
        // A non-empty sweep during stop loops straight back around:
        // producers racing the stop signal still get their last events
        // spilled before the thread exits on the empty sweep.
    }
}

/// One sweep: drain every ring, merge by timestamp, append.
pub(crate) fn sweep<W: Write + Seek>(
    writer: &mut TraceWriter<W>,
    pending: &mut Vec<EventRecord>,
) -> io::Result<usize> {
    pending.clear();
    ring::drain_all(|rec| pending.push(rec));
    // One claimed ring is already in tsc order (one producer, in-order
    // rdtsc stamps); the merge sort only earns its keep across rings.
    if ring::rings_claimed() > 1 {
        pending.sort_by_key(|r| r.tsc);
    }
    for rec in pending.iter() {
        writer.append(rec)?;
    }
    EVENTS_SPILLED.fetch_add(pending.len() as u64, Ordering::Relaxed);
    Ok(pending.len())
}

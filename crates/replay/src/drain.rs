//! The dedicated drain thread: continuously sweeps the flight-recorder
//! rings into the trace writer so producers never meet a full ring at
//! steady state.
//!
//! The thread is spawned by [`Recorder`](crate::Recorder) **before**
//! the interposition mechanism installs. That ordering is load-bearing
//! twice over: syscall-user-dispatch enrollment is per-thread and
//! inherited across `clone`, so a thread that exists before install is
//! never enrolled — the drainer's own syscalls (mmap remaps,
//! ftruncate) are neither interposed nor recorded, and it cannot
//! deadlock against the engine it serves.
//!
//! Each sweep drains every claimed ring, sorts the batch by `tsc` (the
//! cross-thread merge key), and appends it to the writer. Between
//! empty sweeps the thread backs off adaptively — a bounded stretch of
//! `yield_now`, then `park_timeout` — so an idle recorder costs
//! nothing measurable. [`DrainHandle::stop`] sets the stop flag,
//! unparks, and joins; the thread's exit path re-sweeps until the
//! rings are empty, so every event pushed before `stop` lands in the
//! trace.
//!
//! # Sharded draining (`LP_DRAIN_SHARDS`)
//!
//! One drainer keeps up with a handful of producers, but when many
//! cores produce at saturation a single sweep loop becomes the
//! bottleneck: it must memcpy every ring's batch *and* delta-compress
//! it through one `TraceWriter`. [`spawn_sharded`] instead runs `M`
//! drainer threads, shard `i` owning the rings whose pool index is
//! `idx % M` ([`ring::drain_partition`]) — a stable partition, so
//! every ring keeps exactly one consumer and the SPSC contract holds.
//! Each shard spills raw [`EventRecord`]s into its own side spool file
//! (`<trace>.shard<i>`, an [`MmapSink`] — appends are memcpys into the
//! page cache, no shared lock anywhere on the drain path). At
//! [`ShardedDrainHandle::stop`] the shards are joined, the spools are
//! read back, merged by `tsc`, appended through the single
//! `TraceWriter` (so the on-disk trace format is identical to the
//! unsharded one), and deleted. Per-shard progress is observable via
//! [`shard_drained`].

use std::io::{self, Seek, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use crate::event::{EventRecord, RECORD_SIZE};
use crate::format::TraceWriter;
use crate::ring;
use crate::spill::MmapSink;

/// Hard upper bound on `LP_DRAIN_SHARDS`.
pub const MAX_SHARDS: usize = 16;

/// Records drained by each shard (process lifetime). Shard 0 also
/// counts the unsharded drainer's sweeps and synchronous drains.
static SHARD_DRAINED: [AtomicU64; MAX_SHARDS] = [const { AtomicU64::new(0) }; MAX_SHARDS];

/// Records drained by shard `shard` since process start (shard 0
/// includes all unsharded draining).
pub fn shard_drained(shard: usize) -> u64 {
    SHARD_DRAINED
        .get(shard)
        .map_or(0, |c| c.load(Ordering::Relaxed))
}

/// Records appended to a trace by drain sweeps (process lifetime),
/// counting both the async thread's sweeps and synchronous
/// [`Recorder::drain`](crate::Recorder::drain) calls.
pub(crate) static EVENTS_SPILLED: AtomicU64 = AtomicU64::new(0);

/// Consecutive empty sweeps that merely yield before the thread starts
/// parking.
const YIELD_SWEEPS: u32 = 64;

/// Park duration once idle. Long enough to vacate the CPU, short
/// enough that a burst after silence meets a drainer at most ~200µs
/// behind — a few hundred records at production rates, well inside a
/// default ring. Producers additionally cut the park short: a push
/// that crosses the near-full threshold calls [`wake_if_parked`].
const IDLE_PARK: Duration = Duration::from_micros(200);

/// How many drainer threads have announced they are parking. Checked
/// by producers on near-full pushes so a burst arriving mid-park wakes
/// the drainers instead of riding out the timeout against a filling
/// ring. Relaxed ordering throughout: a missed wake costs at most one
/// `IDLE_PARK` of latency (the park always times out), never an event.
static PARKED: AtomicUsize = AtomicUsize::new(0);

/// The running drainer threads' handles, for producer-side wakes. One
/// recorder session exists at a time; it registers 1 (unsharded) or M
/// (sharded) threads here.
static DRAINERS: Mutex<Vec<std::thread::Thread>> = Mutex::new(Vec::new());

/// Unparks any registered drainer threads that are parking. Called
/// from the producer hot path (possibly signal context), so it must
/// not block: `try_lock` skips the wake under contention, which only
/// ever delays the sweep by the bounded park timeout.
#[cold]
pub(crate) fn wake_if_parked() {
    if PARKED.load(Ordering::Relaxed) == 0 {
        return;
    }
    if let Ok(guard) = DRAINERS.try_lock() {
        for t in guard.iter() {
            t.unpark();
        }
    }
}

/// A running drain thread plus its stop signal.
pub(crate) struct DrainHandle<W: Write + Seek + Send + 'static> {
    stop: Arc<AtomicBool>,
    thread: JoinHandle<io::Result<TraceWriter<W>>>,
}

impl<W: Write + Seek + Send + 'static> DrainHandle<W> {
    /// Signals the thread, joins it, and returns the writer (with
    /// every pre-`stop` event appended) or the first spill error.
    pub(crate) fn stop(self) -> io::Result<TraceWriter<W>> {
        self.stop.store(true, Ordering::Release);
        if let Ok(mut guard) = DRAINERS.lock() {
            guard.clear();
        }
        self.thread.thread().unpark();
        self.thread
            .join()
            .map_err(|_| io::Error::other("drain thread panicked"))?
    }
}

/// Spawns the drain thread around `writer`. Call before the
/// interposition mechanism installs (see module docs).
pub(crate) fn spawn<W: Write + Seek + Send + 'static>(
    writer: TraceWriter<W>,
) -> io::Result<DrainHandle<W>> {
    let stop = Arc::new(AtomicBool::new(false));
    let stop2 = Arc::clone(&stop);
    let thread = std::thread::Builder::new()
        .name("lp-drain".into())
        .spawn(move || run(writer, &stop2))?;
    if let Ok(mut guard) = DRAINERS.lock() {
        guard.clear();
        guard.push(thread.thread().clone());
    }
    Ok(DrainHandle { stop, thread })
}

fn run<W: Write + Seek>(
    mut writer: TraceWriter<W>,
    stop: &AtomicBool,
) -> io::Result<TraceWriter<W>> {
    let mut pending: Vec<EventRecord> = Vec::new();
    let mut idle_sweeps = 0u32;
    loop {
        let stopping = stop.load(Ordering::Acquire);
        let n = sweep(&mut writer, &mut pending)?;
        if n == 0 {
            if stopping {
                return Ok(writer);
            }
            if idle_sweeps < YIELD_SWEEPS {
                idle_sweeps += 1;
                std::thread::yield_now();
            } else {
                PARKED.fetch_add(1, Ordering::Relaxed);
                // Re-sweep after announcing the park: a producer that
                // went near-full between the empty sweep above and the
                // increment would have read PARKED == 0 and skipped
                // its wake. Only park when still empty.
                if sweep(&mut writer, &mut pending)? == 0 {
                    std::thread::park_timeout(IDLE_PARK);
                }
                PARKED.fetch_sub(1, Ordering::Relaxed);
            }
        } else {
            idle_sweeps = 0;
        }
        // A non-empty sweep during stop loops straight back around:
        // producers racing the stop signal still get their last events
        // spilled before the thread exits on the empty sweep.
    }
}

/// One sweep: drain every ring, merge by timestamp, append.
pub(crate) fn sweep<W: Write + Seek>(
    writer: &mut TraceWriter<W>,
    pending: &mut Vec<EventRecord>,
) -> io::Result<usize> {
    pending.clear();
    ring::drain_all(|rec| pending.push(rec));
    // One claimed ring is already in tsc order (one producer, in-order
    // rdtsc stamps); the merge sort only earns its keep across rings.
    if ring::rings_claimed() > 1 {
        pending.sort_by_key(|r| r.tsc);
    }
    for rec in pending.iter() {
        writer.append(rec)?;
    }
    EVENTS_SPILLED.fetch_add(pending.len() as u64, Ordering::Relaxed);
    SHARD_DRAINED[0].fetch_add(pending.len() as u64, Ordering::Relaxed);
    Ok(pending.len())
}

// ——— sharded draining ————————————————————————————————————————————————

/// `M` running shard drainers plus the writer they merge into at stop.
pub(crate) struct ShardedDrainHandle<W: Write + Seek + Send + 'static> {
    stop: Arc<AtomicBool>,
    threads: Vec<JoinHandle<io::Result<u64>>>,
    spools: Vec<PathBuf>,
    writer: Option<TraceWriter<W>>,
}

impl<W: Write + Seek + Send + 'static> ShardedDrainHandle<W> {
    /// Signals every shard, joins them, merges the spools by `tsc`
    /// through the writer (then deletes them), and returns the writer.
    pub(crate) fn stop(mut self) -> io::Result<TraceWriter<W>> {
        self.stop.store(true, Ordering::Release);
        if let Ok(mut guard) = DRAINERS.lock() {
            guard.clear();
        }
        for t in &self.threads {
            t.thread().unpark();
        }
        let mut first_err = None;
        for t in self.threads.drain(..) {
            match t.join() {
                Ok(Ok(_records)) => {}
                Ok(Err(e)) => first_err = first_err.or(Some(e)),
                Err(_) => {
                    first_err =
                        first_err.or_else(|| Some(io::Error::other("shard drainer panicked")))
                }
            }
        }
        let mut writer = self
            .writer
            .take()
            .expect("sharded handle stopped only once");
        if let Some(e) = first_err {
            return Err(e);
        }
        // Merge: the spools hold raw records in per-shard tsc order;
        // one global sort restores the cross-thread interleaving and
        // the delta-compressing writer sees exactly the stream a
        // single drainer would have produced.
        let mut all: Vec<EventRecord> = Vec::new();
        for spool in &self.spools {
            let bytes = crate::spill::read_back(spool)?;
            for chunk in bytes.chunks_exact(RECORD_SIZE) {
                all.push(EventRecord::decode(chunk.try_into().unwrap()));
            }
        }
        all.sort_by_key(|r| r.tsc);
        for rec in &all {
            writer.append(rec)?;
        }
        for spool in &self.spools {
            let _ = std::fs::remove_file(spool);
        }
        Ok(writer)
    }
}

impl<W: Write + Seek + Send + 'static> Drop for ShardedDrainHandle<W> {
    fn drop(&mut self) {
        // Dropped without stop() (error paths): stop the threads so
        // they don't spin forever; spools are left for inspection.
        self.stop.store(true, Ordering::Release);
        for t in self.threads.drain(..) {
            t.thread().unpark();
            let _ = t.join();
        }
    }
}

/// Spawns `shards` drainer threads partitioning the ring pool, each
/// spilling raw records to `<trace_path>.shard<i>`. Call before the
/// interposition mechanism installs, exactly like [`spawn`].
pub(crate) fn spawn_sharded<W: Write + Seek + Send + 'static>(
    writer: TraceWriter<W>,
    shards: usize,
    trace_path: &Path,
) -> io::Result<ShardedDrainHandle<W>> {
    let shards = shards.clamp(1, MAX_SHARDS);
    let stop = Arc::new(AtomicBool::new(false));
    let mut threads = Vec::with_capacity(shards);
    let mut spools = Vec::with_capacity(shards);
    let mut registry = Vec::with_capacity(shards);
    for shard in 0..shards {
        let spool = trace_path.with_extension(format!("shard{shard}"));
        let sink = MmapSink::create(&spool)?;
        let stop2 = Arc::clone(&stop);
        let thread = std::thread::Builder::new()
            .name(format!("lp-drain-{shard}"))
            .spawn(move || run_shard(sink, shard, shards, &stop2))?;
        registry.push(thread.thread().clone());
        spools.push(spool);
        threads.push(thread);
    }
    if let Ok(mut guard) = DRAINERS.lock() {
        *guard = registry;
    }
    Ok(ShardedDrainHandle {
        stop,
        threads,
        spools,
        writer: Some(writer),
    })
}

/// One shard's drain loop: sweep the partition into the spool with the
/// same adaptive backoff as the unsharded drainer. Returns the records
/// drained by this shard during the session.
fn run_shard(
    mut sink: MmapSink,
    shard: usize,
    shards: usize,
    stop: &AtomicBool,
) -> io::Result<u64> {
    let mut pending: Vec<EventRecord> = Vec::new();
    let mut total = 0u64;
    let mut idle_sweeps = 0u32;
    loop {
        let stopping = stop.load(Ordering::Acquire);
        let n = sweep_shard(&mut sink, shard, shards, &mut pending)?;
        total += n as u64;
        if n == 0 {
            if stopping {
                return Ok(total);
            }
            if idle_sweeps < YIELD_SWEEPS {
                idle_sweeps += 1;
                std::thread::yield_now();
            } else {
                PARKED.fetch_add(1, Ordering::Relaxed);
                // Same announce-then-recheck dance as the unsharded
                // drainer (see `run`).
                let n = sweep_shard(&mut sink, shard, shards, &mut pending)?;
                total += n as u64;
                if n == 0 {
                    std::thread::park_timeout(IDLE_PARK);
                }
                PARKED.fetch_sub(1, Ordering::Relaxed);
            }
        } else {
            idle_sweeps = 0;
        }
    }
}

/// One sharded sweep: drain the partition, append raw records to the
/// spool. No sort — per-ring FIFO is preserved and the global merge
/// happens once at stop.
fn sweep_shard(
    sink: &mut MmapSink,
    shard: usize,
    shards: usize,
    pending: &mut Vec<EventRecord>,
) -> io::Result<usize> {
    pending.clear();
    ring::drain_partition(shard, shards, |rec| pending.push(rec));
    for rec in pending.iter() {
        sink.write_all(&rec.encode())?;
    }
    EVENTS_SPILLED.fetch_add(pending.len() as u64, Ordering::Relaxed);
    SHARD_DRAINED[shard].fetch_add(pending.len() as u64, Ordering::Relaxed);
    Ok(pending.len())
}

//! The fixed-size syscall event record — the unit of both the
//! flight-recorder rings and the on-disk trace format.

/// Encoded size of one [`EventRecord`] in a trace, in bytes.
///
/// 8 (sysno) + 48 (args) + 8 (ret) + 8 (tsc) + 8 (site) + 4 (tid) +
/// 4 (pad), all little-endian. The size is part of the trace format
/// contract (stored in the header, checked on read).
pub const RECORD_SIZE: usize = 88;

/// One recorded syscall: the complete invocation, its result, and
/// where/when it happened.
///
/// Fixed-size and `Copy` so the hot path can store it into a
/// pre-allocated ring slot with a plain memcpy — no allocation, no
/// pointers, safe from signal-handler context.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct EventRecord {
    /// The syscall number, post-rewrite (what actually executed).
    pub sysno: u64,
    /// The six argument registers, post-rewrite.
    pub args: [u64; 6],
    /// The raw return value delivered to the application.
    pub ret: u64,
    /// `rdtsc` timestamp at record time (0 on non-x86-64 builds).
    /// Orders events across per-thread rings at drain time.
    pub tsc: u64,
    /// Invocation-site address, when the mechanism knows it (else 0).
    pub site: u64,
    /// Kernel thread id of the recording thread.
    pub tid: u32,
}

impl EventRecord {
    /// The all-zero record (ring slots start in this state).
    pub const ZERO: EventRecord = EventRecord {
        sysno: 0,
        args: [0; 6],
        ret: 0,
        tsc: 0,
        site: 0,
        tid: 0,
    };

    /// Encodes into the fixed little-endian wire layout.
    pub fn encode(&self) -> [u8; RECORD_SIZE] {
        let mut out = [0u8; RECORD_SIZE];
        out[0..8].copy_from_slice(&self.sysno.to_le_bytes());
        for (i, a) in self.args.iter().enumerate() {
            out[8 + i * 8..16 + i * 8].copy_from_slice(&a.to_le_bytes());
        }
        out[56..64].copy_from_slice(&self.ret.to_le_bytes());
        out[64..72].copy_from_slice(&self.tsc.to_le_bytes());
        out[72..80].copy_from_slice(&self.site.to_le_bytes());
        out[80..84].copy_from_slice(&self.tid.to_le_bytes());
        out
    }

    /// Decodes from the wire layout ([`encode`](EventRecord::encode)'s
    /// inverse). Any byte pattern is a valid record — integrity is the
    /// trace header's job, divergence detection is the replayer's.
    pub fn decode(buf: &[u8; RECORD_SIZE]) -> EventRecord {
        let u64_at = |o: usize| u64::from_le_bytes(buf[o..o + 8].try_into().unwrap());
        let mut args = [0u64; 6];
        for (i, a) in args.iter_mut().enumerate() {
            *a = u64_at(8 + i * 8);
        }
        EventRecord {
            sysno: u64_at(0),
            args,
            ret: u64_at(56),
            tsc: u64_at(64),
            site: u64_at(72),
            tid: u32::from_le_bytes(buf[80..84].try_into().unwrap()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_decode_roundtrip() {
        let r = EventRecord {
            sysno: syscalls::nr::READ,
            args: [3, 0xdead_beef, 512, 1, 2, u64::MAX],
            ret: (-11i64) as u64,
            tsc: 0x1234_5678_9abc_def0,
            site: 0x40_1234,
            tid: 4242,
        };
        assert_eq!(EventRecord::decode(&r.encode()), r);
    }

    #[test]
    fn zero_record_is_all_zero_bytes() {
        assert_eq!(EventRecord::ZERO.encode(), [0u8; RECORD_SIZE]);
        assert_eq!(EventRecord::decode(&[0u8; RECORD_SIZE]), EventRecord::ZERO);
    }

    #[test]
    fn record_size_matches_layout() {
        // 8 + 48 + 8 + 8 + 8 + 4 + 4 pad.
        assert_eq!(RECORD_SIZE, 88);
        assert_eq!(RECORD_SIZE % 8, 0, "records stay 8-byte aligned in a trace");
    }
}

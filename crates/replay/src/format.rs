//! The versioned binary trace format and its strace-like `dump`
//! rendering.
//!
//! # Layout
//!
//! A trace is a 64-byte header followed by the record payload. Both
//! format generations share the header layout; the magic carries the
//! generation and selects the payload encoding:
//!
//! | offset | size | field |
//! |-------:|-----:|-------|
//! | 0  | 8  | magic `"LPTRACE1"` or `"LPTRACE2"` |
//! | 8  | 4  | format version (LE u32; 1 or 2, matching the magic) |
//! | 12 | 4  | architecture (ELF machine id; 62 = x86-64) |
//! | 16 | 4  | page size of the recording host |
//! | 20 | 4  | record size ([`RECORD_SIZE`] in v1; 0 in v2 — records are variable-length) |
//! | 24 | 8  | TSC frequency in Hz (0 = uncalibrated) |
//! | 32 | 8  | events dropped by the overflow policy (patched at finalize) |
//! | 40 | 24 | recording mechanism name, NUL-padded |
//!
//! The v1 payload is a flat array of [`RECORD_SIZE`]-byte
//! [`EventRecord`]s (count implied by file size). The v2 payload is a
//! self-delimiting [`codec`](crate::codec) varint stream — clean EOF
//! at a record boundary ends the trace. Readers accept both
//! generations transparently; the writer picks one at creation
//! ([`TraceHeader::version`]).
//!
//! Everything is little-endian. The header is written first with
//! `events_dropped = 0` and patched in place on
//! [`TraceWriter::finalize`], so a crash mid-recording leaves a
//! readable (if drop-undercounting) trace — flight-recorder semantics.

use std::fs::File;
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::Path;

use crate::codec::{Lp2Decoder, Lp2Encoder};
use crate::event::{EventRecord, RECORD_SIZE};

/// Trace file magic of the fixed-record generation.
pub const MAGIC: [u8; 8] = *b"LPTRACE1";

/// Trace file magic of the compressed-varint generation.
pub const MAGIC2: [u8; 8] = *b"LPTRACE2";

/// The fixed-record format generation.
pub const VERSION: u32 = 1;

/// The compressed format generation — what new recordings write by
/// default (`LP_TRACE_FORMAT=1` opts back into v1).
pub const VERSION2: u32 = 2;

/// Header size in bytes.
pub const HEADER_SIZE: usize = 64;

/// ELF machine id for x86-64, the only architecture the native
/// interposers support.
pub const ARCH_X86_64: u32 = 62;

/// Byte offset of the `events_dropped` header field (patched at
/// finalize).
const DROPPED_OFFSET: u64 = 32;

/// Maximum stored length of the source-mechanism name.
const MECHANISM_FIELD: usize = 24;

/// The decoded trace header.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TraceHeader {
    /// Format version ([`VERSION`]).
    pub version: u32,
    /// Architecture of the recording host ([`ARCH_X86_64`]).
    pub arch: u32,
    /// Page size of the recording host.
    pub page_size: u32,
    /// TSC frequency in Hz; 0 when calibration was unavailable.
    pub tsc_hz: u64,
    /// Events the overflow policy dropped during recording.
    pub events_dropped: u64,
    /// Registry name of the mechanism the trace was recorded under
    /// (e.g. `sim:lazypoline`) — replay uses it to pick its base
    /// mechanism.
    pub source_mechanism: String,
}

impl TraceHeader {
    /// A fresh v1 (fixed-record) header for a recording on this host.
    pub fn new(source_mechanism: &str, tsc_hz: u64) -> TraceHeader {
        TraceHeader {
            version: VERSION,
            arch: ARCH_X86_64,
            page_size: 4096,
            tsc_hz,
            events_dropped: 0,
            source_mechanism: source_mechanism.to_string(),
        }
    }

    /// The same header re-stamped at format generation `version`
    /// ([`VERSION`] or [`VERSION2`]).
    pub fn with_version(mut self, version: u32) -> TraceHeader {
        assert!(
            version == VERSION || version == VERSION2,
            "unknown trace format generation {version}"
        );
        self.version = version;
        self
    }

    fn encode(&self) -> [u8; HEADER_SIZE] {
        let mut out = [0u8; HEADER_SIZE];
        let (magic, record_size) = match self.version {
            VERSION2 => (MAGIC2, 0u32),
            _ => (MAGIC, RECORD_SIZE as u32),
        };
        out[0..8].copy_from_slice(&magic);
        out[8..12].copy_from_slice(&self.version.to_le_bytes());
        out[12..16].copy_from_slice(&self.arch.to_le_bytes());
        out[16..20].copy_from_slice(&self.page_size.to_le_bytes());
        out[20..24].copy_from_slice(&record_size.to_le_bytes());
        out[24..32].copy_from_slice(&self.tsc_hz.to_le_bytes());
        out[32..40].copy_from_slice(&self.events_dropped.to_le_bytes());
        let name = self.source_mechanism.as_bytes();
        let n = name.len().min(MECHANISM_FIELD - 1); // keep a NUL
        out[40..40 + n].copy_from_slice(&name[..n]);
        out
    }

    fn decode(buf: &[u8; HEADER_SIZE]) -> Result<TraceHeader, TraceError> {
        let expected_version = if buf[0..8] == MAGIC {
            VERSION
        } else if buf[0..8] == MAGIC2 {
            VERSION2
        } else {
            return Err(TraceError::BadMagic);
        };
        let u32_at = |o: usize| u32::from_le_bytes(buf[o..o + 4].try_into().unwrap());
        let u64_at = |o: usize| u64::from_le_bytes(buf[o..o + 8].try_into().unwrap());
        let version = u32_at(8);
        if version != expected_version {
            return Err(TraceError::BadVersion(version));
        }
        let record_size = u32_at(20);
        if version == VERSION && record_size as usize != RECORD_SIZE {
            return Err(TraceError::BadRecordSize(record_size));
        }
        let name_field = &buf[40..40 + MECHANISM_FIELD];
        let end = name_field.iter().position(|&b| b == 0).unwrap_or(MECHANISM_FIELD);
        Ok(TraceHeader {
            version,
            arch: u32_at(12),
            page_size: u32_at(16),
            tsc_hz: u64_at(24),
            events_dropped: u64_at(32),
            source_mechanism: String::from_utf8_lossy(&name_field[..end]).into_owned(),
        })
    }
}

/// Why a trace could not be read.
#[derive(Debug)]
pub enum TraceError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// The file does not start with [`MAGIC`].
    BadMagic,
    /// The file's format version is not [`VERSION`].
    BadVersion(u32),
    /// The header claims a record size other than [`RECORD_SIZE`].
    BadRecordSize(u32),
    /// The file ends mid-record (or mid-header).
    Truncated,
}

impl std::fmt::Display for TraceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceError::Io(e) => write!(f, "trace I/O failed: {e}"),
            TraceError::BadMagic => write!(f, "not a lazypoline trace (bad magic)"),
            TraceError::BadVersion(v) => {
                write!(
                    f,
                    "unsupported trace version {v} (this build reads {VERSION} and {VERSION2})"
                )
            }
            TraceError::BadRecordSize(s) => {
                write!(f, "trace record size {s} != expected {RECORD_SIZE}")
            }
            TraceError::Truncated => write!(f, "trace truncated mid-record"),
        }
    }
}

impl std::error::Error for TraceError {}

impl From<io::Error> for TraceError {
    fn from(e: io::Error) -> TraceError {
        TraceError::Io(e)
    }
}

impl From<TraceError> for io::Error {
    fn from(e: TraceError) -> io::Error {
        match e {
            TraceError::Io(e) => e,
            other => io::Error::new(io::ErrorKind::InvalidData, other.to_string()),
        }
    }
}

/// Streams records into the binary trace format — fixed 88-byte
/// records for a v1 header, the compressed [`codec`](crate::codec)
/// stream for v2.
pub struct TraceWriter<W: Write + Seek> {
    out: W,
    events: u64,
    bytes: u64,
    /// `Some` iff the header was v2.
    encoder: Option<Lp2Encoder>,
    /// Encode scratch, reused across appends.
    scratch: Vec<u8>,
}

impl<W: Write + Seek> TraceWriter<W> {
    /// Writes the header (with `events_dropped = 0`, patched later)
    /// and readies the writer for [`append`](TraceWriter::append).
    pub fn new(mut out: W, header: &TraceHeader) -> io::Result<TraceWriter<W>> {
        out.write_all(&header.encode())?;
        Ok(TraceWriter {
            out,
            events: 0,
            bytes: HEADER_SIZE as u64,
            encoder: (header.version == VERSION2).then(Lp2Encoder::new),
            scratch: Vec::new(),
        })
    }

    /// Appends one record in the header's format generation.
    pub fn append(&mut self, rec: &EventRecord) -> io::Result<()> {
        let n = match &mut self.encoder {
            Some(enc) => {
                self.scratch.clear();
                enc.encode(rec, &mut self.scratch);
                self.out.write_all(&self.scratch)?;
                self.scratch.len()
            }
            None => {
                self.out.write_all(&rec.encode())?;
                RECORD_SIZE
            }
        };
        self.events += 1;
        self.bytes += n as u64;
        Ok(())
    }

    /// Records written so far.
    pub fn events(&self) -> u64 {
        self.events
    }

    /// Bytes written so far (header included).
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// Patches the final drop count into the header, flushes, and
    /// returns the underlying writer plus the record count.
    pub fn finalize(mut self, events_dropped: u64) -> io::Result<(W, u64)> {
        self.out.seek(SeekFrom::Start(DROPPED_OFFSET))?;
        self.out.write_all(&events_dropped.to_le_bytes())?;
        self.out.seek(SeekFrom::End(0))?;
        self.out.flush()?;
        Ok((self.out, self.events))
    }
}

/// Reads a complete trace from `r`: header plus every record.
pub fn read_trace<R: Read>(mut r: R) -> Result<(TraceHeader, Vec<EventRecord>), TraceError> {
    let mut hdr = [0u8; HEADER_SIZE];
    r.read_exact(&mut hdr).map_err(|e| {
        if e.kind() == io::ErrorKind::UnexpectedEof {
            TraceError::Truncated
        } else {
            TraceError::Io(e)
        }
    })?;
    let header = TraceHeader::decode(&hdr)?;
    let mut records = Vec::new();
    if header.version == VERSION2 {
        // v2 records are variable-length: pull the payload in and let
        // the streaming decoder delimit (clean EOF at a boundary ends
        // the trace; EOF inside a record is Truncated).
        let mut payload = Vec::new();
        r.read_to_end(&mut payload).map_err(TraceError::Io)?;
        records = Lp2Decoder::new().decode_all(&payload, 0)?;
    } else {
        let mut buf = [0u8; RECORD_SIZE];
        loop {
            match read_full(&mut r, &mut buf)? {
                0 => break,
                RECORD_SIZE => records.push(EventRecord::decode(&buf)),
                _ => return Err(TraceError::Truncated),
            }
        }
    }
    Ok((header, records))
}

/// Reads a complete trace from a file path.
pub fn read_trace_path(path: &Path) -> Result<(TraceHeader, Vec<EventRecord>), TraceError> {
    read_trace(io::BufReader::new(File::open(path)?))
}

/// Reads as many bytes as available up to `buf.len()`, returning the
/// count (0 = clean EOF; a short count = truncation).
fn read_full<R: Read>(r: &mut R, buf: &mut [u8]) -> Result<usize, TraceError> {
    let mut n = 0;
    while n < buf.len() {
        match r.read(&mut buf[n..]) {
            Ok(0) => break,
            Ok(k) => n += k,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(TraceError::Io(e)),
        }
    }
    Ok(n)
}

/// Renders one record as an strace-like line into `buf`, returning the
/// byte length: the existing shared syscall formatter
/// ([`interpose::format_syscall_line`]) plus a ` = <ret>` suffix.
///
/// This is **the** text rendering of a recorded syscall — the
/// `lp-trace dump` subcommand and the `strace_lite` example both go
/// through here, so there is exactly one formatting path.
pub fn render_record(rec: &EventRecord, buf: &mut [u8]) -> usize {
    let call = syscalls::SyscallArgs::new(rec.sysno, rec.args);
    let mut n = interpose::format_syscall_line(&call, rec.site as usize, buf);
    // Replace the formatter's trailing newline with " = <ret>\n".
    if n > 0 && buf[n - 1] == b'\n' {
        n -= 1;
    }
    let mut push = |b: u8| {
        if n < buf.len() {
            buf[n] = b;
            n += 1;
        }
    };
    for b in b" = " {
        push(*b);
    }
    let ret = rec.ret as i64;
    // Signed decimal, matching strace's result column (-errno visible).
    let mut digits = [0u8; 20];
    let mut v = ret.unsigned_abs();
    let mut k = 0;
    loop {
        digits[k] = b'0' + (v % 10) as u8;
        v /= 10;
        k += 1;
        if v == 0 {
            break;
        }
    }
    if ret < 0 {
        push(b'-');
    }
    for i in (0..k).rev() {
        push(digits[i]);
    }
    push(b'\n');
    n
}

/// Renders a whole trace strace-style into `out` (header summary line
/// first, then one line per record).
pub fn dump_trace(path: &Path, out: &mut impl Write) -> Result<u64, TraceError> {
    let (header, records) = read_trace_path(path)?;
    writeln!(
        out,
        "# lazypoline trace v{}: {} events, {} dropped, recorded under {:?} (tsc {} Hz)",
        header.version,
        records.len(),
        header.events_dropped,
        header.source_mechanism,
        header.tsc_hz,
    )?;
    let mut buf = [0u8; 256];
    for rec in &records {
        let n = render_record(rec, &mut buf);
        out.write_all(&buf[..n])?;
    }
    Ok(records.len() as u64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn sample(n: u64) -> EventRecord {
        EventRecord {
            sysno: syscalls::nr::READ,
            args: [3, 0x1000, 64, 0, 0, 0],
            ret: 64,
            tsc: n,
            site: 0x40_0000 + n,
            tid: 7,
        }
    }

    #[test]
    fn write_read_roundtrip_with_drop_patch() {
        let header = TraceHeader::new("sim:lazypoline", 2_100_000_000);
        let mut w = TraceWriter::new(Cursor::new(Vec::new()), &header).unwrap();
        for i in 0..5 {
            w.append(&sample(i)).unwrap();
        }
        let (cursor, events) = w.finalize(42).unwrap();
        assert_eq!(events, 5);

        let (h, recs) = read_trace(Cursor::new(cursor.into_inner())).unwrap();
        assert_eq!(h.events_dropped, 42, "finalize patches the header");
        assert_eq!(h.source_mechanism, "sim:lazypoline");
        assert_eq!(h.tsc_hz, 2_100_000_000);
        assert_eq!(recs.len(), 5);
        assert_eq!(recs[3], sample(3));
    }

    #[test]
    fn v2_write_read_roundtrip_is_transparent_and_smaller() {
        let header = TraceHeader::new("sim:lazypoline", 2_100_000_000).with_version(VERSION2);
        let mut w = TraceWriter::new(Cursor::new(Vec::new()), &header).unwrap();
        for i in 0..200 {
            w.append(&sample(i)).unwrap();
        }
        let v2_bytes = w.bytes();
        let (cursor, events) = w.finalize(7).unwrap();
        assert_eq!(events, 200);

        let (h, recs) = read_trace(Cursor::new(cursor.into_inner())).unwrap();
        assert_eq!(h.version, VERSION2);
        assert_eq!(h.events_dropped, 7);
        assert_eq!(h.source_mechanism, "sim:lazypoline");
        assert_eq!(recs.len(), 200);
        assert_eq!(recs[123], sample(123));
        let v1_bytes = (HEADER_SIZE + 200 * RECORD_SIZE) as u64;
        assert!(
            v2_bytes * 3 <= v1_bytes,
            "v2 at least 3x smaller here: {v2_bytes} vs {v1_bytes}"
        );
    }

    #[test]
    fn v2_truncated_payload_detected() {
        let header = TraceHeader::new("x", 0).with_version(VERSION2);
        let mut w = TraceWriter::new(Cursor::new(Vec::new()), &header).unwrap();
        w.append(&sample(0)).unwrap();
        w.append(&sample(1)).unwrap();
        let (cursor, _) = w.finalize(0).unwrap();
        let mut bytes = cursor.into_inner();
        bytes.truncate(bytes.len() - 1);
        assert!(matches!(
            read_trace(Cursor::new(bytes)),
            Err(TraceError::Truncated)
        ));
    }

    #[test]
    fn v2_magic_with_wrong_version_field_rejected() {
        let mut bytes = TraceHeader::new("x", 0)
            .with_version(VERSION2)
            .encode()
            .to_vec();
        bytes[8] = 1; // claims v1 under the v2 magic
        assert!(matches!(
            read_trace(Cursor::new(bytes)),
            Err(TraceError::BadVersion(1))
        ));
    }

    #[test]
    fn bad_magic_and_version_are_structured_errors() {
        assert!(matches!(
            read_trace(Cursor::new(vec![0u8; 256])),
            Err(TraceError::BadMagic)
        ));
        let mut bytes = TraceHeader::new("x", 0).encode().to_vec();
        bytes[8] = 99; // version
        assert!(matches!(
            read_trace(Cursor::new(bytes)),
            Err(TraceError::BadVersion(99))
        ));
        assert!(matches!(
            read_trace(Cursor::new(vec![1u8; 10])),
            Err(TraceError::Truncated)
        ));
    }

    #[test]
    fn truncated_record_detected() {
        let header = TraceHeader::new("x", 0);
        let mut w = TraceWriter::new(Cursor::new(Vec::new()), &header).unwrap();
        w.append(&sample(0)).unwrap();
        let (cursor, _) = w.finalize(0).unwrap();
        let mut bytes = cursor.into_inner();
        bytes.truncate(bytes.len() - 10);
        assert!(matches!(
            read_trace(Cursor::new(bytes)),
            Err(TraceError::Truncated)
        ));
    }

    #[test]
    fn long_mechanism_name_is_clamped_not_fatal() {
        let long = "sim:".repeat(20);
        let header = TraceHeader::new(&long, 0);
        let w = TraceWriter::new(Cursor::new(Vec::new()), &header).unwrap();
        let (cursor, _) = w.finalize(0).unwrap();
        let (h, _) = read_trace(Cursor::new(cursor.into_inner())).unwrap();
        assert!(h.source_mechanism.len() < MECHANISM_FIELD);
        assert!(long.starts_with(&h.source_mechanism));
    }

    #[test]
    fn render_matches_shared_formatter_with_ret_suffix() {
        let rec = sample(1);
        let mut buf = [0u8; 256];
        let n = render_record(&rec, &mut buf);
        let line = std::str::from_utf8(&buf[..n]).unwrap();
        assert_eq!(line, "read(0x3, 0x1000, 0x40, 0x0, 0x0, 0x0) @0x400001 = 64\n");

        let errno = EventRecord {
            ret: (-2i64) as u64,
            site: 0,
            ..rec
        };
        let n = render_record(&errno, &mut buf);
        let line = std::str::from_utf8(&buf[..n]).unwrap();
        assert!(line.ends_with(" = -2\n"), "{line}");
    }
}

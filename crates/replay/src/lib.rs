//! Syscall record & replay on top of exhaustive interposition.
//!
//! The paper's central guarantee — lazypoline intercepts *every*
//! syscall (§V-A) — is exactly the property record/replay systems need.
//! This crate turns it into a subsystem with three layers:
//!
//! 1. **Flight recorder** ([`ring`], [`RecordHandler`]): a
//!    [`SyscallHandler`](interpose::SyscallHandler) that mirrors every
//!    intercepted syscall into lock-free per-thread SPSC rings
//!    (drop-and-count on overflow; never perturbs the application).
//! 2. **Trace format** ([`format`], [`codec`], [`spill`]): a
//!    [`Recorder`] session spills the rings into a versioned binary
//!    trace — by default a dedicated drain thread continuously sweeps
//!    the rings into an mmap-backed chunked file in the compressed
//!    `LPTRACE2` encoding (delta tsc, varint args, dictionary
//!    sysno/site), so producers keep up at full event rate with zero
//!    drops; `LPTRACE1`'s fixed 88-byte records remain writable
//!    (`LP_TRACE_FORMAT=1`) and both generations read back
//!    transparently, with an strace-like [`dump_trace`] rendering
//!    built on the shared
//!    [`format_syscall_line`](interpose::format_syscall_line).
//! 3. **Deterministic replay** ([`ReplayHandler`]): re-runs a workload
//!    against its trace, re-injecting recorded results for
//!    nondeterministic syscalls ([`NONDETERMINISTIC`]) and raising a
//!    structured, counted [`Divergence`] — never a panic — when the
//!    execution departs from the script.
//!
//! The `lp-mechanism` registry exposes the ends of the pipe as
//! `"<base>+record"` and `"replay:<trace-path>"` backends; the
//! `lp-trace` binary is the command-line front end.

#![deny(missing_docs)]

pub mod codec;
pub mod drain;
mod event;
pub mod format;
mod record;
mod replay;
pub mod ring;
pub mod spill;

pub use event::{EventRecord, RECORD_SIZE};
pub use format::{
    dump_trace, read_trace, read_trace_path, render_record, TraceError, TraceHeader, TraceWriter,
    HEADER_SIZE, MAGIC, MAGIC2, VERSION, VERSION2,
};
pub use drain::{shard_drained, MAX_SHARDS};
pub use record::{
    drain_shards, events_dropped, events_recorded, events_spilled, RecordHandler, RecordSummary,
    Recorder, DRAIN_ENV, DRAIN_SHARDS_ENV, TRACE_FORMAT_ENV,
};
pub use ring::RingConfigError;
pub use replay::{
    is_nondeterministic, replay_divergences, Divergence, DivergenceKind, ReplayHandler,
    ReplayState, NONDETERMINISTIC,
};

//! Syscall record & replay on top of exhaustive interposition.
//!
//! The paper's central guarantee — lazypoline intercepts *every*
//! syscall (§V-A) — is exactly the property record/replay systems need.
//! This crate turns it into a subsystem with three layers:
//!
//! 1. **Flight recorder** ([`ring`], [`RecordHandler`]): a
//!    [`SyscallHandler`](interpose::SyscallHandler) that mirrors every
//!    intercepted syscall into lock-free per-thread SPSC rings
//!    (drop-and-count on overflow; never perturbs the application).
//! 2. **Trace format** ([`format`]): a [`Recorder`] session drains the
//!    rings into a compact versioned binary trace — 64-byte header
//!    (arch, page size, TSC calibration, drop count, source mechanism)
//!    plus fixed 88-byte records — with an strace-like
//!    [`dump_trace`] rendering built on the shared
//!    [`format_syscall_line`](interpose::format_syscall_line).
//! 3. **Deterministic replay** ([`ReplayHandler`]): re-runs a workload
//!    against its trace, re-injecting recorded results for
//!    nondeterministic syscalls ([`NONDETERMINISTIC`]) and raising a
//!    structured, counted [`Divergence`] — never a panic — when the
//!    execution departs from the script.
//!
//! The `lp-mechanism` registry exposes the ends of the pipe as
//! `"<base>+record"` and `"replay:<trace-path>"` backends; the
//! `lp-trace` binary is the command-line front end.

#![deny(missing_docs)]

mod event;
pub mod format;
mod record;
mod replay;
pub mod ring;

pub use event::{EventRecord, RECORD_SIZE};
pub use format::{
    dump_trace, read_trace, read_trace_path, render_record, TraceError, TraceHeader, TraceWriter,
    HEADER_SIZE, MAGIC, VERSION,
};
pub use record::{
    events_dropped, events_recorded, RecordHandler, RecordSummary, Recorder,
};
pub use replay::{
    is_nondeterministic, replay_divergences, Divergence, DivergenceKind, ReplayHandler,
    ReplayState, NONDETERMINISTIC,
};

//! The record-side interposer: a [`SyscallHandler`] that mirrors every
//! intercepted syscall into the flight-recorder rings, and a
//! [`Recorder`] session that drains the rings into a trace file.

use std::cell::Cell;
use std::fs::File;
use std::io::{self, BufWriter, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

use interpose::{Action, InterestSet, SyscallEvent, SyscallHandler};

use crate::drain;
use crate::event::EventRecord;
use crate::format::{TraceHeader, TraceWriter, VERSION, VERSION2};
use crate::ring;
use crate::spill::MmapSink;

/// Environment variable selecting the trace format generation: `1`
/// forces LPTRACE1 (fixed 88-byte records); unset or `2` writes the
/// compressed LPTRACE2 default.
pub const TRACE_FORMAT_ENV: &str = "LP_TRACE_FORMAT";

/// Environment variable selecting the drain mode: unset or `async`
/// runs the dedicated drain thread (zero drops at steady state);
/// `sync` restores the drain-at-phase-boundaries behavior.
pub const DRAIN_ENV: &str = "LP_DRAIN";

/// Environment variable selecting how many drainer threads partition
/// the ring pool (async mode only): unset or `1` keeps the single
/// drainer; `2..=16` shard the pool, each shard spilling to its own
/// side spool merged into the trace at finish. See
/// [`drain`](crate::drain)'s module docs.
pub const DRAIN_SHARDS_ENV: &str = "LP_DRAIN_SHARDS";

/// Drainer shard count of the most recent recorder session (1 when
/// unsharded; persists after the session for stats reporting).
static CONFIGURED_SHARDS: AtomicU64 = AtomicU64::new(1);

/// Drainer shard count configured for the current/most recent
/// recording session (1 = single drainer).
pub fn drain_shards() -> u64 {
    CONFIGURED_SHARDS.load(Ordering::Relaxed)
}

/// Events successfully recorded into a ring (process lifetime).
static EVENTS_RECORDED: AtomicU64 = AtomicU64::new(0);

/// Events successfully recorded into a ring since process start.
pub fn events_recorded() -> u64 {
    EVENTS_RECORDED.load(Ordering::Relaxed)
}

/// Events dropped by the overflow policy (full ring or exhausted ring
/// pool) since process start. `events_recorded() + events_dropped()`
/// equals the number of syscalls the recorder observed.
pub fn events_dropped() -> u64 {
    ring::total_dropped()
}

/// Records spilled from the rings into a trace since process start
/// (async drain sweeps and synchronous [`Recorder::drain`] calls).
pub fn events_spilled() -> u64 {
    drain::EVENTS_SPILLED.load(Ordering::Relaxed)
}

thread_local! {
    /// Cached kernel tid — one `gettid` per thread, then free reads.
    /// Const-init so the first access (possibly from signal context)
    /// performs no lazy initialization.
    static CACHED_TID: Cell<u32> = const { Cell::new(0) };
}

#[inline]
fn current_tid() -> u32 {
    CACHED_TID.with(|c| {
        let cached = c.get();
        if cached != 0 {
            return cached;
        }
        // SAFETY: gettid takes no arguments and cannot fail.
        let tid = unsafe { syscalls::raw::syscall0(syscalls::nr::GETTID) } as u32;
        c.set(tid);
        tid
    })
}

#[inline]
fn timestamp() -> u64 {
    #[cfg(target_arch = "x86_64")]
    // SAFETY: rdtsc has no side effects or preconditions.
    unsafe {
        core::arch::x86_64::_rdtsc()
    }
    #[cfg(not(target_arch = "x86_64"))]
    0
}

/// A [`SyscallHandler`] that records every event it sees into the
/// calling thread's flight-recorder ring, then defers the actual
/// decision to an optional inner handler.
///
/// The hot path is allocation-free and async-signal-safe: it builds a
/// fixed-size [`EventRecord`] on the stack and memcpys it into a
/// pre-allocated ring slot. Syscalls the inner handler answers with
/// `Return`/`Fail` are recorded immediately (their result is already
/// known); `Passthrough` syscalls are recorded in [`post`] with the
/// real kernel return value.
///
/// [`post`]: SyscallHandler::post
pub struct RecordHandler {
    inner: Option<Box<dyn SyscallHandler>>,
}

impl RecordHandler {
    /// Records around `inner`: events flow to `inner` exactly as they
    /// would without recording, and every one is mirrored into a ring.
    pub fn wrapping(inner: Box<dyn SyscallHandler>) -> RecordHandler {
        RecordHandler { inner: Some(inner) }
    }

    /// A pure recorder: every syscall passes through, every syscall is
    /// recorded.
    pub fn passthrough() -> RecordHandler {
        RecordHandler { inner: None }
    }

    #[inline]
    fn record(&self, event: &SyscallEvent, ret: u64) {
        let ok = ring::push_current_thread(EventRecord {
            sysno: event.call.nr,
            args: event.call.args,
            ret,
            tsc: timestamp(),
            site: event.site as u64,
            tid: current_tid(),
        });
        if ok {
            EVENTS_RECORDED.fetch_add(1, Ordering::Relaxed);
        }
    }
}

impl SyscallHandler for RecordHandler {
    fn handle(&self, event: &mut SyscallEvent) -> Action {
        let action = match &self.inner {
            Some(inner) => inner.handle(event),
            None => Action::Passthrough,
        };
        // Short-circuited syscalls never reach `post`; their result is
        // decided right here, so record them now (post-rewrite args).
        if let Some(ret) = action.as_ret() {
            self.record(event, ret);
        }
        action
    }

    fn post(&self, event: &SyscallEvent, ret: u64) -> u64 {
        let ret = match &self.inner {
            Some(inner) => inner.post(event, ret),
            None => ret,
        };
        self.record(event, ret);
        ret
    }

    fn name(&self) -> &str {
        "record"
    }

    fn interest(&self) -> InterestSet {
        // Recording wants *everything*, regardless of what the inner
        // handler is interested in — a trace with holes cannot replay.
        InterestSet::all()
    }
}

/// Only one recorder session may drain the shared ring pool at a time.
static SESSION_ACTIVE: AtomicBool = AtomicBool::new(false);

/// Summary of a finished recording session.
#[derive(Clone, Debug)]
pub struct RecordSummary {
    /// Trace file the session wrote.
    pub path: PathBuf,
    /// Records written to the trace.
    pub events: u64,
    /// Events dropped by the overflow policy during the session.
    pub dropped: u64,
    /// Trace file size in bytes (header included).
    pub bytes: u64,
    /// Format generation written (1 = LPTRACE1, 2 = LPTRACE2).
    pub format_version: u32,
}

impl RecordSummary {
    /// Fraction of observed events the session dropped (0.0 = lossless).
    pub fn drop_rate(&self) -> f64 {
        let total = self.events + self.dropped;
        if total == 0 {
            0.0
        } else {
            self.dropped as f64 / total as f64
        }
    }

    /// A ring capacity that would likely have made this session
    /// lossless (`None` when it already was): the current capacity
    /// scaled by the observed overflow, rounded up to a power of two.
    pub fn suggested_ring_capacity(&self) -> Option<usize> {
        if self.dropped == 0 {
            return None;
        }
        let factor = (self.events + self.dropped)
            .div_ceil(self.events.max(1))
            .max(2) as usize;
        Some(
            ring::configured_capacity()
                .saturating_mul(factor)
                .next_power_of_two()
                .min(ring::MAX_RING_CAPACITY),
        )
    }
}

/// The sink a recording spills into: a buffered file for synchronous
/// phase-boundary drains, a chunked shared mapping under the async
/// drain thread (a batch append is a memcpy into the page cache).
enum TraceOut {
    Buffered(BufWriter<File>),
    Mmap(MmapSink),
}

impl Write for TraceOut {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self {
            TraceOut::Buffered(w) => w.write(buf),
            TraceOut::Mmap(w) => w.write(buf),
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        match self {
            TraceOut::Buffered(w) => w.flush(),
            TraceOut::Mmap(w) => w.flush(),
        }
    }
}

impl Seek for TraceOut {
    fn seek(&mut self, pos: SeekFrom) -> io::Result<u64> {
        match self {
            TraceOut::Buffered(w) => w.seek(pos),
            TraceOut::Mmap(w) => w.seek(pos),
        }
    }
}

/// How the session moves records from the rings to the writer.
enum Mode {
    /// The caller drains at phase boundaries ([`Recorder::drain`]).
    Sync {
        /// `None` once finished (consumed by `finish` or drop).
        writer: Option<TraceWriter<TraceOut>>,
        /// Drain buffer, reused so only the first drain grows it.
        pending: Vec<EventRecord>,
    },
    /// The dedicated drain thread sweeps continuously.
    Async {
        /// `None` once finished.
        handle: Option<drain::DrainHandle<TraceOut>>,
    },
    /// M drainer threads partition the ring pool (`LP_DRAIN_SHARDS`).
    Sharded {
        /// `None` once finished.
        handle: Option<drain::ShardedDrainHandle<TraceOut>>,
    },
}

/// A recording session: owns the trace file, spills the
/// flight-recorder rings into it, and patches the final drop count on
/// [`finish`](Recorder::finish).
///
/// By default the session runs a dedicated drain thread that sweeps
/// the rings continuously into an mmap-backed LPTRACE2 trace — at
/// steady state producers never meet a full ring, so
/// `events_dropped == 0`. `LP_DRAIN=sync` restores synchronous
/// phase-boundary draining and `LP_TRACE_FORMAT=1` the fixed-record
/// LPTRACE1 format. `LP_RING_CAPACITY` / `LP_MAX_RINGS` are validated
/// and applied here (a malformed value fails the install, never
/// silently falls back).
///
/// Create it *before* installing the [`RecordHandler`] — it clears
/// stale ring contents, and the drain thread must be spawned before
/// the mechanism installs so it is never enrolled in syscall
/// interposition (its own spill syscalls stay out of the trace).
/// `finish` after the handler is uninstalled.
pub struct Recorder {
    mode: Mode,
    path: PathBuf,
    dropped_at_start: u64,
    format_version: u32,
}

impl Recorder {
    /// Opens `path` for writing, stamps the trace header, and (in the
    /// default async mode) starts the drain thread.
    ///
    /// `source_mechanism` is the registry name of the mechanism the
    /// recording will run under — replay reads it back to choose its
    /// own base mechanism.
    pub fn to_path(path: &Path, source_mechanism: &str) -> io::Result<Recorder> {
        // Validate configuration before touching any state: a typo'd
        // LP_RING_CAPACITY must fail the install, not half-start it.
        ring::configure_from_env()?;
        let format_version = match std::env::var(TRACE_FORMAT_ENV) {
            Ok(s) if s == "1" => VERSION,
            Ok(s) if s == "2" || s.is_empty() => VERSION2,
            Err(_) => VERSION2,
            Ok(s) => {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidInput,
                    format!("{TRACE_FORMAT_ENV}={s:?}: expected 1 or 2"),
                ))
            }
        };
        let async_drain = match std::env::var(DRAIN_ENV) {
            Ok(s) if s == "sync" => false,
            Ok(s) if s == "async" || s.is_empty() => true,
            Err(_) => true,
            Ok(s) => {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidInput,
                    format!("{DRAIN_ENV}={s:?}: expected async or sync"),
                ))
            }
        };
        let shards = match std::env::var(DRAIN_SHARDS_ENV) {
            Err(_) => 1,
            Ok(s) if s.is_empty() => 1,
            Ok(s) => match s.parse::<usize>() {
                Ok(n) if (1..=drain::MAX_SHARDS).contains(&n) => n,
                _ => {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidInput,
                        format!(
                            "{DRAIN_SHARDS_ENV}={s:?}: expected 1..={}",
                            drain::MAX_SHARDS
                        ),
                    ))
                }
            },
        };
        if shards > 1 && !async_drain {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                format!("{DRAIN_SHARDS_ENV}>1 requires {DRAIN_ENV}=async"),
            ));
        }

        if SESSION_ACTIVE.swap(true, Ordering::AcqRel) {
            return Err(io::Error::other("another recording session is active"));
        }
        let release_on = |e: io::Error| {
            SESSION_ACTIVE.store(false, Ordering::Release);
            e
        };
        // Discard events from before this session so the trace starts
        // clean; drops up to now are not this session's drops.
        ring::drain_all(|_| {});
        let dropped_at_start = ring::total_dropped();

        let header =
            TraceHeader::new(source_mechanism, calibrate_tsc_hz()).with_version(format_version);
        let sink = if async_drain {
            TraceOut::Mmap(MmapSink::create(path).map_err(release_on)?)
        } else {
            TraceOut::Buffered(BufWriter::new(File::create(path).map_err(release_on)?))
        };
        let writer = TraceWriter::new(sink, &header).map_err(release_on)?;
        CONFIGURED_SHARDS.store(shards as u64, Ordering::Relaxed);
        let mode = if shards > 1 {
            Mode::Sharded {
                handle: Some(drain::spawn_sharded(writer, shards, path).map_err(release_on)?),
            }
        } else if async_drain {
            Mode::Async {
                handle: Some(drain::spawn(writer).map_err(release_on)?),
            }
        } else {
            Mode::Sync {
                writer: Some(writer),
                pending: Vec::new(),
            }
        };
        Ok(Recorder {
            mode,
            path: path.to_path_buf(),
            dropped_at_start,
            format_version,
        })
    }

    /// Synchronous mode: drains every ring into the trace, ordering
    /// records by timestamp (per-ring order is FIFO; the tsc merges
    /// across threads), returning how many records were appended.
    /// Async mode: a no-op — the drain thread is already sweeping.
    pub fn drain(&mut self) -> io::Result<usize> {
        match &mut self.mode {
            Mode::Sync {
                writer: Some(writer),
                pending,
            } => drain::sweep(writer, pending),
            _ => Ok(0),
        }
    }

    /// Final drain (async mode: stops and joins the drain thread),
    /// patches the session's drop count into the header, and closes
    /// the trace.
    pub fn finish(mut self) -> io::Result<RecordSummary> {
        self.finish_inner()
            .expect("finish on a live recorder always has a writer")
    }

    fn finish_inner(&mut self) -> Option<io::Result<RecordSummary>> {
        let writer = match &mut self.mode {
            Mode::Sync { writer, pending } => {
                writer.as_ref()?;
                let sweep = drain::sweep(writer.as_mut().unwrap(), pending);
                let writer = writer.take()?;
                match sweep {
                    Ok(_) => writer,
                    Err(e) => {
                        SESSION_ACTIVE.store(false, Ordering::Release);
                        return Some(Err(e));
                    }
                }
            }
            Mode::Async { handle } => {
                let handle = handle.take()?;
                match handle.stop() {
                    Ok(w) => w,
                    Err(e) => {
                        SESSION_ACTIVE.store(false, Ordering::Release);
                        return Some(Err(e));
                    }
                }
            }
            Mode::Sharded { handle } => {
                let handle = handle.take()?;
                match handle.stop() {
                    Ok(w) => w,
                    Err(e) => {
                        SESSION_ACTIVE.store(false, Ordering::Release);
                        return Some(Err(e));
                    }
                }
            }
        };
        let dropped = ring::total_dropped() - self.dropped_at_start;
        let bytes = writer.bytes();
        let result = writer.finalize(dropped).map(|(_, events)| RecordSummary {
            path: self.path.clone(),
            events,
            dropped,
            bytes,
            format_version: self.format_version,
        });
        SESSION_ACTIVE.store(false, Ordering::Release);
        Some(result)
    }
}

impl Drop for Recorder {
    /// Best-effort finish for sessions dropped without an explicit
    /// [`finish`](Recorder::finish): the trace on disk stays complete
    /// and the drop count gets patched, but errors are swallowed.
    fn drop(&mut self) {
        let _ = self.finish_inner();
    }
}

/// Estimates the TSC frequency by timing a short sleep against
/// `CLOCK_MONOTONIC`. Good to a few percent — enough for the header's
/// "clock calibration" field to convert trace timestamps to wall time.
fn calibrate_tsc_hz() -> u64 {
    #[cfg(target_arch = "x86_64")]
    {
        let t0 = std::time::Instant::now();
        let c0 = timestamp();
        std::thread::sleep(std::time::Duration::from_millis(5));
        let cycles = timestamp().wrapping_sub(c0);
        let nanos = t0.elapsed().as_nanos() as u64;
        if nanos == 0 {
            return 0;
        }
        (cycles as u128 * 1_000_000_000u128 / nanos as u128) as u64
    }
    #[cfg(not(target_arch = "x86_64"))]
    0
}

#[cfg(test)]
mod tests {
    use super::*;
    use syscalls::{nr, SyscallArgs};

    #[test]
    fn short_circuited_actions_record_their_result() {
        struct Deny;
        impl SyscallHandler for Deny {
            fn handle(&self, _ev: &mut SyscallEvent) -> Action {
                Action::Return(1234)
            }
        }
        let before = events_recorded();
        let h = RecordHandler::wrapping(Box::new(Deny));
        let mut ev = SyscallEvent::new(SyscallArgs::nullary(nr::GETPID));
        assert_eq!(h.handle(&mut ev), Action::Return(1234));
        assert_eq!(events_recorded(), before + 1);
    }

    #[test]
    fn passthrough_records_in_post_with_real_ret() {
        let before = events_recorded();
        let h = RecordHandler::passthrough();
        let mut ev = SyscallEvent::new(SyscallArgs::nullary(nr::GETPID));
        assert_eq!(h.handle(&mut ev), Action::Passthrough);
        assert_eq!(events_recorded(), before, "handle alone records nothing");
        assert_eq!(h.post(&ev, 777), 777);
        assert_eq!(events_recorded(), before + 1);
    }

    #[test]
    fn tid_is_cached_and_nonzero() {
        assert_ne!(current_tid(), 0);
        assert_eq!(current_tid(), current_tid());
    }

    #[cfg(target_arch = "x86_64")]
    #[test]
    fn tsc_calibration_is_plausible() {
        let hz = calibrate_tsc_hz();
        // Any machine running this is somewhere between 100 MHz and 10 GHz.
        assert!(hz > 100_000_000 && hz < 10_000_000_000, "tsc_hz = {hz}");
    }
}

//! The record-side interposer: a [`SyscallHandler`] that mirrors every
//! intercepted syscall into the flight-recorder rings, and a
//! [`Recorder`] session that drains the rings into a trace file.

use std::cell::Cell;
use std::fs::File;
use std::io::{self, BufWriter};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

use interpose::{Action, InterestSet, SyscallEvent, SyscallHandler};

use crate::event::EventRecord;
use crate::format::{TraceHeader, TraceWriter};
use crate::ring;

/// Events successfully recorded into a ring (process lifetime).
static EVENTS_RECORDED: AtomicU64 = AtomicU64::new(0);

/// Events successfully recorded into a ring since process start.
pub fn events_recorded() -> u64 {
    EVENTS_RECORDED.load(Ordering::Relaxed)
}

/// Events dropped by the overflow policy (full ring or exhausted ring
/// pool) since process start. `events_recorded() + events_dropped()`
/// equals the number of syscalls the recorder observed.
pub fn events_dropped() -> u64 {
    ring::total_dropped()
}

thread_local! {
    /// Cached kernel tid — one `gettid` per thread, then free reads.
    /// Const-init so the first access (possibly from signal context)
    /// performs no lazy initialization.
    static CACHED_TID: Cell<u32> = const { Cell::new(0) };
}

#[inline]
fn current_tid() -> u32 {
    CACHED_TID.with(|c| {
        let cached = c.get();
        if cached != 0 {
            return cached;
        }
        // SAFETY: gettid takes no arguments and cannot fail.
        let tid = unsafe { syscalls::raw::syscall0(syscalls::nr::GETTID) } as u32;
        c.set(tid);
        tid
    })
}

#[inline]
fn timestamp() -> u64 {
    #[cfg(target_arch = "x86_64")]
    // SAFETY: rdtsc has no side effects or preconditions.
    unsafe {
        core::arch::x86_64::_rdtsc()
    }
    #[cfg(not(target_arch = "x86_64"))]
    0
}

/// A [`SyscallHandler`] that records every event it sees into the
/// calling thread's flight-recorder ring, then defers the actual
/// decision to an optional inner handler.
///
/// The hot path is allocation-free and async-signal-safe: it builds a
/// fixed-size [`EventRecord`] on the stack and memcpys it into a
/// pre-allocated ring slot. Syscalls the inner handler answers with
/// `Return`/`Fail` are recorded immediately (their result is already
/// known); `Passthrough` syscalls are recorded in [`post`] with the
/// real kernel return value.
///
/// [`post`]: SyscallHandler::post
pub struct RecordHandler {
    inner: Option<Box<dyn SyscallHandler>>,
}

impl RecordHandler {
    /// Records around `inner`: events flow to `inner` exactly as they
    /// would without recording, and every one is mirrored into a ring.
    pub fn wrapping(inner: Box<dyn SyscallHandler>) -> RecordHandler {
        RecordHandler { inner: Some(inner) }
    }

    /// A pure recorder: every syscall passes through, every syscall is
    /// recorded.
    pub fn passthrough() -> RecordHandler {
        RecordHandler { inner: None }
    }

    #[inline]
    fn record(&self, event: &SyscallEvent, ret: u64) {
        let ok = ring::push_current_thread(EventRecord {
            sysno: event.call.nr,
            args: event.call.args,
            ret,
            tsc: timestamp(),
            site: event.site as u64,
            tid: current_tid(),
        });
        if ok {
            EVENTS_RECORDED.fetch_add(1, Ordering::Relaxed);
        }
    }
}

impl SyscallHandler for RecordHandler {
    fn handle(&self, event: &mut SyscallEvent) -> Action {
        let action = match &self.inner {
            Some(inner) => inner.handle(event),
            None => Action::Passthrough,
        };
        // Short-circuited syscalls never reach `post`; their result is
        // decided right here, so record them now (post-rewrite args).
        if let Some(ret) = action.as_ret() {
            self.record(event, ret);
        }
        action
    }

    fn post(&self, event: &SyscallEvent, ret: u64) -> u64 {
        let ret = match &self.inner {
            Some(inner) => inner.post(event, ret),
            None => ret,
        };
        self.record(event, ret);
        ret
    }

    fn name(&self) -> &str {
        "record"
    }

    fn interest(&self) -> InterestSet {
        // Recording wants *everything*, regardless of what the inner
        // handler is interested in — a trace with holes cannot replay.
        InterestSet::all()
    }
}

/// Only one recorder session may drain the shared ring pool at a time.
static SESSION_ACTIVE: AtomicBool = AtomicBool::new(false);

/// Summary of a finished recording session.
#[derive(Clone, Debug)]
pub struct RecordSummary {
    /// Trace file the session wrote.
    pub path: PathBuf,
    /// Records written to the trace.
    pub events: u64,
    /// Events dropped by the overflow policy during the session.
    pub dropped: u64,
}

/// A recording session: owns the trace file, drains the flight-recorder
/// rings into it, and patches the final drop count on
/// [`finish`](Recorder::finish).
///
/// Create it *before* installing the [`RecordHandler`] (it clears any
/// stale ring contents), call [`drain`](Recorder::drain) as often as
/// desired (e.g. after each workload phase), and `finish` after the
/// handler is uninstalled.
pub struct Recorder {
    /// `None` once finished (consumed by `finish` or best-effort drop).
    writer: Option<TraceWriter<BufWriter<File>>>,
    path: PathBuf,
    dropped_at_start: u64,
    /// Drain buffer, reused across drains so only the first grows.
    pending: Vec<EventRecord>,
}

impl Recorder {
    /// Opens `path` for writing and stamps the trace header.
    ///
    /// `source_mechanism` is the registry name of the mechanism the
    /// recording will run under — replay reads it back to choose its
    /// own base mechanism.
    pub fn to_path(path: &Path, source_mechanism: &str) -> io::Result<Recorder> {
        if SESSION_ACTIVE.swap(true, Ordering::AcqRel) {
            return Err(io::Error::other("another recording session is active"));
        }
        // Discard events from before this session so the trace starts
        // clean; drops up to now are not this session's drops.
        ring::drain_all(|_| {});
        let dropped_at_start = ring::total_dropped();

        let header = TraceHeader::new(source_mechanism, calibrate_tsc_hz());
        let file = match File::create(path) {
            Ok(f) => f,
            Err(e) => {
                SESSION_ACTIVE.store(false, Ordering::Release);
                return Err(e);
            }
        };
        let writer = match TraceWriter::new(BufWriter::new(file), &header) {
            Ok(w) => w,
            Err(e) => {
                SESSION_ACTIVE.store(false, Ordering::Release);
                return Err(e);
            }
        };
        Ok(Recorder {
            writer: Some(writer),
            path: path.to_path_buf(),
            dropped_at_start,
            pending: Vec::new(),
        })
    }

    /// Drains every ring into the trace, ordering records by timestamp
    /// (per-ring order is FIFO; the tsc merges across threads). Returns
    /// how many records were appended.
    pub fn drain(&mut self) -> io::Result<usize> {
        let Some(writer) = self.writer.as_mut() else {
            return Ok(0);
        };
        self.pending.clear();
        let pending = &mut self.pending;
        ring::drain_all(|rec| pending.push(rec));
        self.pending.sort_by_key(|r| r.tsc);
        for rec in &self.pending {
            writer.append(rec)?;
        }
        Ok(self.pending.len())
    }

    /// Final drain, patches the session's drop count into the header,
    /// and closes the trace.
    pub fn finish(mut self) -> io::Result<RecordSummary> {
        self.finish_inner()
            .expect("finish on a live recorder always has a writer")
    }

    fn finish_inner(&mut self) -> Option<io::Result<RecordSummary>> {
        self.writer.as_ref()?;
        if let Err(e) = self.drain() {
            self.writer = None;
            SESSION_ACTIVE.store(false, Ordering::Release);
            return Some(Err(e));
        }
        let writer = self.writer.take()?;
        let dropped = ring::total_dropped() - self.dropped_at_start;
        let result = writer.finalize(dropped).map(|(_, events)| RecordSummary {
            path: self.path.clone(),
            events,
            dropped,
        });
        SESSION_ACTIVE.store(false, Ordering::Release);
        Some(result)
    }
}

impl Drop for Recorder {
    /// Best-effort finish for sessions dropped without an explicit
    /// [`finish`](Recorder::finish): the trace on disk stays complete
    /// and the drop count gets patched, but errors are swallowed.
    fn drop(&mut self) {
        let _ = self.finish_inner();
    }
}

/// Estimates the TSC frequency by timing a short sleep against
/// `CLOCK_MONOTONIC`. Good to a few percent — enough for the header's
/// "clock calibration" field to convert trace timestamps to wall time.
fn calibrate_tsc_hz() -> u64 {
    #[cfg(target_arch = "x86_64")]
    {
        let t0 = std::time::Instant::now();
        let c0 = timestamp();
        std::thread::sleep(std::time::Duration::from_millis(5));
        let cycles = timestamp().wrapping_sub(c0);
        let nanos = t0.elapsed().as_nanos() as u64;
        if nanos == 0 {
            return 0;
        }
        (cycles as u128 * 1_000_000_000u128 / nanos as u128) as u64
    }
    #[cfg(not(target_arch = "x86_64"))]
    0
}

#[cfg(test)]
mod tests {
    use super::*;
    use syscalls::{nr, SyscallArgs};

    #[test]
    fn short_circuited_actions_record_their_result() {
        struct Deny;
        impl SyscallHandler for Deny {
            fn handle(&self, _ev: &mut SyscallEvent) -> Action {
                Action::Return(1234)
            }
        }
        let before = events_recorded();
        let h = RecordHandler::wrapping(Box::new(Deny));
        let mut ev = SyscallEvent::new(SyscallArgs::nullary(nr::GETPID));
        assert_eq!(h.handle(&mut ev), Action::Return(1234));
        assert_eq!(events_recorded(), before + 1);
    }

    #[test]
    fn passthrough_records_in_post_with_real_ret() {
        let before = events_recorded();
        let h = RecordHandler::passthrough();
        let mut ev = SyscallEvent::new(SyscallArgs::nullary(nr::GETPID));
        assert_eq!(h.handle(&mut ev), Action::Passthrough);
        assert_eq!(events_recorded(), before, "handle alone records nothing");
        assert_eq!(h.post(&ev, 777), 777);
        assert_eq!(events_recorded(), before + 1);
    }

    #[test]
    fn tid_is_cached_and_nonzero() {
        assert_ne!(current_tid(), 0);
        assert_eq!(current_tid(), current_tid());
    }

    #[cfg(target_arch = "x86_64")]
    #[test]
    fn tsc_calibration_is_plausible() {
        let hz = calibrate_tsc_hz();
        // Any machine running this is somewhere between 100 MHz and 10 GHz.
        assert!(hz > 100_000_000 && hz < 10_000_000_000, "tsc_hz = {hz}");
    }
}

//! The replay-side interposer: re-injects recorded results for
//! nondeterministic syscalls and detects divergence from the trace.

use std::path::Path;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

use interpose::{Action, SyscallEvent, SyscallHandler};
use syscalls::nr;

use crate::event::EventRecord;
use crate::format::{read_trace_path, TraceError, TraceHeader};

/// Syscalls whose results the kernel does not reproduce run-to-run —
/// replay substitutes the recorded result instead of re-executing.
///
/// | syscall | source of nondeterminism |
/// |---|---|
/// | `read` | pipe/socket/tty payloads, short reads |
/// | `recvfrom` / `recvmsg` | network payloads and timing |
/// | `clock_gettime` / `gettimeofday` | wall clock |
/// | `getrandom` | kernel entropy |
pub const NONDETERMINISTIC: [u64; 6] = [
    nr::READ,
    nr::RECVFROM,
    nr::RECVMSG,
    nr::CLOCK_GETTIME,
    nr::GETRANDOM,
    nr::GETTIMEOFDAY,
];

/// Whether replay re-injects the recorded result for `sysno` instead
/// of re-executing it.
pub fn is_nondeterministic(sysno: u64) -> bool {
    NONDETERMINISTIC.contains(&sysno)
}

/// How a replayed execution departed from its trace.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DivergenceKind {
    /// The execution made a different syscall than the trace expected.
    Sysno,
    /// Same syscall, different arguments (strict-args mode only).
    Args,
    /// The execution made more syscalls than the trace holds.
    TraceExhausted,
}

/// A structured divergence report: where in the trace the replay went
/// off-script, what the trace expected, and what actually happened.
#[derive(Clone, Debug)]
pub struct Divergence {
    /// Record index into the trace (0-based).
    pub offset: u64,
    /// The record the trace expected (`None` when exhausted).
    pub expected: Option<EventRecord>,
    /// Syscall number the execution actually made.
    pub actual_sysno: u64,
    /// Arguments the execution actually passed.
    pub actual_args: [u64; 6],
    /// What kind of mismatch.
    pub kind: DivergenceKind,
}

impl std::fmt::Display for Divergence {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let actual = syscalls::SyscallArgs::new(self.actual_sysno, self.actual_args);
        match self.kind {
            DivergenceKind::Sysno => write!(
                f,
                "divergence at trace offset {}: expected {}({}) but execution made {}({})",
                self.offset,
                self.expected.as_ref().map_or("?", |e| name_of(e.sysno)),
                self.expected.as_ref().map_or(0, |e| e.sysno),
                name_of(actual.nr),
                actual.nr,
            ),
            DivergenceKind::Args => write!(
                f,
                "divergence at trace offset {}: {}({}) called with {:x?}, trace recorded {:x?}",
                self.offset,
                name_of(actual.nr),
                actual.nr,
                self.actual_args,
                self.expected.as_ref().map_or([0; 6], |e| e.args),
            ),
            DivergenceKind::TraceExhausted => write!(
                f,
                "divergence at trace offset {}: trace exhausted but execution made {}({})",
                self.offset,
                name_of(actual.nr),
                actual.nr,
            ),
        }
    }
}

fn name_of(sysno: u64) -> &'static str {
    nr::name(sysno).unwrap_or("?")
}

/// Divergences observed by replay handlers (process lifetime) — folded
/// into engine stats and `table2 --json` alongside the record counters.
static REPLAY_DIVERGENCES: AtomicU64 = AtomicU64::new(0);

/// Divergences observed by replay handlers since process start.
pub fn replay_divergences() -> u64 {
    REPLAY_DIVERGENCES.load(Ordering::Relaxed)
}

/// Shared replay progress, visible to the handler (on the hot path) and
/// to whoever installed it (for the verdict afterwards).
pub struct ReplayState {
    records: Vec<EventRecord>,
    header: TraceHeader,
    /// Next trace record to match.
    cursor: AtomicUsize,
    /// Divergences this session.
    divergences: AtomicU64,
    /// First divergence, kept for the structured report.
    first: Mutex<Option<Divergence>>,
}

impl ReplayState {
    /// Loads a trace from disk.
    pub fn load(path: &Path) -> Result<Arc<ReplayState>, TraceError> {
        let (header, records) = read_trace_path(path)?;
        Ok(Arc::new(ReplayState {
            records,
            header,
            cursor: AtomicUsize::new(0),
            divergences: AtomicU64::new(0),
            first: Mutex::new(None),
        }))
    }

    /// The trace header (source mechanism, calibration, drop count).
    pub fn header(&self) -> &TraceHeader {
        &self.header
    }

    /// Records in the trace.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the trace holds no records.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// How many trace records have been consumed.
    pub fn position(&self) -> usize {
        self.cursor.load(Ordering::Relaxed).min(self.records.len())
    }

    /// Divergences observed this session.
    pub fn divergences(&self) -> u64 {
        self.divergences.load(Ordering::Relaxed)
    }

    /// The first divergence observed, if any — the structured verdict.
    pub fn first_divergence(&self) -> Option<Divergence> {
        self.first.lock().unwrap().clone()
    }

    fn diverge(&self, d: Divergence) {
        self.divergences.fetch_add(1, Ordering::Relaxed);
        REPLAY_DIVERGENCES.fetch_add(1, Ordering::Relaxed);
        let mut first = self.first.lock().unwrap();
        first.get_or_insert(d);
    }
}

/// A [`SyscallHandler`] that replays a recorded trace: each intercepted
/// syscall is matched against the next trace record; nondeterministic
/// syscalls get the recorded result re-injected ([`Action::Return`]),
/// deterministic ones pass through to the kernel; any mismatch raises a
/// counted, structured [`Divergence`] and the execution continues
/// best-effort (passthrough) so the report covers the whole run.
pub struct ReplayHandler {
    state: Arc<ReplayState>,
    /// An observer handler that sees every event (its `handle` runs
    /// first, its `post` runs after a passthrough) but whose decision
    /// the replay matching overrides — the trace, not the observer,
    /// scripts the execution.
    observer: Option<Box<dyn SyscallHandler>>,
    /// Also require recorded arguments to match, not just the syscall
    /// number. Off by default: pointer arguments shift under ASLR, so
    /// strict mode is only meaningful for ASLR-pinned or simulated
    /// recordings.
    strict_args: bool,
}

impl ReplayHandler {
    /// Replays `state`, matching syscall numbers only.
    pub fn new(state: Arc<ReplayState>) -> ReplayHandler {
        ReplayHandler {
            state,
            observer: None,
            strict_args: false,
        }
    }

    /// Lets `observer` watch every replayed event: its `handle` runs
    /// first (decision ignored), its `post` runs after passthroughs.
    pub fn observing(mut self, observer: Box<dyn SyscallHandler>) -> ReplayHandler {
        self.observer = Some(observer);
        self
    }

    /// Additionally requires argument equality, not just syscall-number
    /// equality. Off by default: pointer arguments shift under ASLR, so
    /// strict mode is only meaningful for ASLR-pinned or simulated
    /// recordings.
    pub fn strict(mut self) -> ReplayHandler {
        self.strict_args = true;
        self
    }

    /// The shared progress/verdict state.
    pub fn state(&self) -> &Arc<ReplayState> {
        &self.state
    }
}

impl SyscallHandler for ReplayHandler {
    fn handle(&self, event: &mut SyscallEvent) -> Action {
        if let Some(obs) = &self.observer {
            // Observation only: the trace decides the action.
            let _ = obs.handle(event);
        }
        let idx = self.state.cursor.fetch_add(1, Ordering::Relaxed);
        let Some(rec) = self.state.records.get(idx) else {
            self.state.diverge(Divergence {
                offset: idx as u64,
                expected: None,
                actual_sysno: event.call.nr,
                actual_args: event.call.args,
                kind: DivergenceKind::TraceExhausted,
            });
            return Action::Passthrough;
        };
        if rec.sysno != event.call.nr {
            self.state.diverge(Divergence {
                offset: idx as u64,
                expected: Some(*rec),
                actual_sysno: event.call.nr,
                actual_args: event.call.args,
                kind: DivergenceKind::Sysno,
            });
            return Action::Passthrough;
        }
        if self.strict_args && rec.args != event.call.args {
            self.state.diverge(Divergence {
                offset: idx as u64,
                expected: Some(*rec),
                actual_sysno: event.call.nr,
                actual_args: event.call.args,
                kind: DivergenceKind::Args,
            });
            return Action::Passthrough;
        }
        if is_nondeterministic(rec.sysno) {
            // Re-inject the recorded result instead of re-executing:
            // the replayed run sees the same bytes/time/entropy the
            // recorded run saw.
            Action::Return(rec.ret)
        } else {
            Action::Passthrough
        }
    }

    fn post(&self, event: &SyscallEvent, ret: u64) -> u64 {
        match &self.observer {
            Some(obs) => obs.post(event, ret),
            None => ret,
        }
    }

    fn name(&self) -> &str {
        "replay"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::format::TraceWriter;
    use std::io::Cursor;
    use syscalls::SyscallArgs;

    fn state_of(records: &[EventRecord]) -> Arc<ReplayState> {
        // Build via the wire format so the load path is exercised.
        let header = TraceHeader::new("sim:lazypoline", 0);
        let mut w = TraceWriter::new(Cursor::new(Vec::new()), &header).unwrap();
        for r in records {
            w.append(r).unwrap();
        }
        let (cursor, _) = w.finalize(0).unwrap();
        let (header, records) = crate::format::read_trace(Cursor::new(cursor.into_inner())).unwrap();
        Arc::new(ReplayState {
            records,
            header,
            cursor: AtomicUsize::new(0),
            divergences: AtomicU64::new(0),
            first: Mutex::new(None),
        })
    }

    fn rec(sysno: u64, ret: u64) -> EventRecord {
        EventRecord {
            sysno,
            ret,
            ..EventRecord::ZERO
        }
    }

    fn drive(h: &ReplayHandler, sysno: u64) -> Action {
        let mut ev = SyscallEvent::new(SyscallArgs::nullary(sysno));
        h.handle(&mut ev)
    }

    #[test]
    fn nondeterministic_results_are_reinjected() {
        let h = ReplayHandler::new(state_of(&[
            rec(nr::GETPID, 42),
            rec(nr::READ, 17),
            rec(nr::CLOCK_GETTIME, 0),
        ]));
        assert_eq!(drive(&h, nr::GETPID), Action::Passthrough);
        assert_eq!(drive(&h, nr::READ), Action::Return(17));
        assert_eq!(drive(&h, nr::CLOCK_GETTIME), Action::Return(0));
        assert_eq!(h.state().divergences(), 0);
        assert_eq!(h.state().position(), 3);
    }

    #[test]
    fn sysno_mismatch_is_a_structured_divergence() {
        let h = ReplayHandler::new(state_of(&[rec(nr::GETPID, 0)]));
        assert_eq!(drive(&h, nr::WRITE), Action::Passthrough);
        assert_eq!(h.state().divergences(), 1);
        let d = h.state().first_divergence().unwrap();
        assert_eq!(d.kind, DivergenceKind::Sysno);
        assert_eq!(d.offset, 0);
        assert_eq!(d.actual_sysno, nr::WRITE);
        assert_eq!(d.expected.unwrap().sysno, nr::GETPID);
        assert!(d.to_string().contains("expected getpid"), "{d}");
    }

    #[test]
    fn trace_exhaustion_is_a_divergence_not_a_panic() {
        let h = ReplayHandler::new(state_of(&[rec(nr::GETPID, 0)]));
        assert_eq!(drive(&h, nr::GETPID), Action::Passthrough);
        assert_eq!(drive(&h, nr::GETPID), Action::Passthrough);
        let d = h.state().first_divergence().unwrap();
        assert_eq!(d.kind, DivergenceKind::TraceExhausted);
        assert_eq!(d.offset, 1);
        assert!(d.expected.is_none());
    }

    #[test]
    fn strict_args_flags_argument_drift() {
        let recorded = EventRecord {
            sysno: nr::WRITE,
            args: [1, 0x5000, 10, 0, 0, 0],
            ..EventRecord::ZERO
        };
        let h = ReplayHandler::new(state_of(&[recorded, recorded])).strict();
        let mut ev = SyscallEvent::new(SyscallArgs::new(nr::WRITE, [1, 0x5000, 10, 0, 0, 0]));
        assert_eq!(h.handle(&mut ev), Action::Passthrough);
        assert_eq!(h.state().divergences(), 0);
        let mut ev = SyscallEvent::new(SyscallArgs::new(nr::WRITE, [1, 0x6000, 10, 0, 0, 0]));
        assert_eq!(h.handle(&mut ev), Action::Passthrough);
        assert_eq!(h.state().divergences(), 1);
        assert_eq!(h.state().first_divergence().unwrap().kind, DivergenceKind::Args);
    }

    #[test]
    fn only_first_divergence_is_kept_but_all_are_counted() {
        let before = replay_divergences();
        let h = ReplayHandler::new(state_of(&[rec(nr::GETPID, 0), rec(nr::GETPID, 0)]));
        drive(&h, nr::WRITE);
        drive(&h, nr::CLOSE);
        assert_eq!(h.state().divergences(), 2);
        assert_eq!(replay_divergences(), before + 2);
        assert_eq!(h.state().first_divergence().unwrap().actual_sysno, nr::WRITE);
    }
}

//! Lock-free per-thread SPSC flight-recorder rings.
//!
//! The recorder's hot path runs inside the interposer — potentially in
//! signal-handler context, potentially interrupting `malloc` — so it
//! must never take a lock, call into the allocator, or block. Every
//! recording thread therefore owns one single-producer/single-consumer
//! ring from a fixed pool of ring *headers*: the producer is that
//! thread alone, the consumer is the (single) drainer. Slot storage is
//! `mmap`ed directly (a raw syscall — async-signal-safe, no `malloc`)
//! the first time a ring is claimed, sized by the runtime
//! configuration ([`configure`] / [`LP_RING_CAPACITY`]).
//!
//! A full ring **drops the new event and counts the drop** rather than
//! blocking or overwriting — the flight-recorder contract is "never
//! perturb the application; account for every event either in the
//! trace or in the drop counter". On top of that policy sits
//! **adaptive growth**: a producer that observes sustained near-full
//! occupancy (or an outright drop) flags the ring, and the next time
//! the producer sees the ring *empty* — which a live drain thread
//! makes frequent — it swaps in a doubled slot array. Growth is
//! producer-side only and happens strictly at empty, which keeps the
//! SPSC publication protocol untouched (see [`SpscRing::grow_now`]).
//!
//! Threads beyond the pool size share nothing: they record nothing and
//! count their events into a pool-exhaustion drop counter, preserving
//! the `recorded + dropped == observed` invariant.

use std::cell::Cell;
use std::sync::atomic::{AtomicBool, AtomicPtr, AtomicU64, AtomicUsize, Ordering};

use crate::event::EventRecord;

/// Default entries per ring — the compile-time value before PR 6, now
/// just the fallback when [`LP_RING_CAPACITY`] is unset. Power of two
/// (masked indexing); at 88 bytes per record one default ring is
/// 88 KiB, mapped only when a thread actually claims it.
pub const DEFAULT_RING_CAPACITY: usize = 1024;

/// Default rings in the pool — matches the engine counter shard count;
/// override with [`LP_MAX_RINGS`] up to [`HARD_MAX_RINGS`].
pub const DEFAULT_MAX_RINGS: usize = 64;

/// Ring headers physically present in the pool; [`LP_MAX_RINGS`] can
/// lower or raise the usable count up to this bound. Headers are tiny
/// (the slot arrays are mapped on claim), so the headroom is cheap.
pub const HARD_MAX_RINGS: usize = 512;

/// Largest accepted/grown per-ring capacity (records). At 88 bytes per
/// record this caps one ring's slot array at 360 MiB — far beyond any
/// sane configuration, present so arithmetic cannot overflow.
pub const MAX_RING_CAPACITY: usize = 1 << 22;

/// Environment variable overriding the per-ring capacity (records;
/// must be a power of two in `[64, MAX_RING_CAPACITY]`).
pub const LP_RING_CAPACITY: &str = "LP_RING_CAPACITY";

/// Environment variable overriding the usable ring count (must be a
/// power of two in `[1, HARD_MAX_RINGS]`).
pub const LP_MAX_RINGS: &str = "LP_MAX_RINGS";

/// Environment variable opting into producer-side cooperative
/// yielding: any non-empty value other than `0` makes a near-full push
/// `sched_yield` the producer, giving a same-core drain thread a
/// timeslice before the ring overflows. Off by default — yielding
/// perturbs the application (the flight-recorder contract), so it is
/// strictly an opt-in for single-core deployments where the PR 6 async
/// drain thread cannot run concurrently with the producer.
pub const LP_DRAIN_YIELD: &str = "LP_DRAIN_YIELD";

/// Near-full threshold: a push that leaves occupancy at or above 3/4
/// of capacity counts as backpressure and requests growth.
const NEAR_FULL_NUM: usize = 3;
const NEAR_FULL_DEN: usize = 4;

/// Ceiling adaptive growth will not double past (unless the configured
/// capacity is explicitly larger): 128k records ≈ 11 MiB per hot ring.
const GROWTH_CEILING: usize = 1 << 17;

// ——— runtime configuration ————————————————————————————————————————

/// Why a ring configuration was rejected.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RingConfigError {
    /// The value parsed but is not a power of two.
    NotPowerOfTwo {
        /// Which variable/parameter was rejected.
        var: &'static str,
        /// The offending value.
        value: u64,
    },
    /// The value is a power of two but outside the accepted range.
    OutOfRange {
        /// Which variable/parameter was rejected.
        var: &'static str,
        /// The offending value.
        value: u64,
        /// Smallest accepted value.
        min: u64,
        /// Largest accepted value.
        max: u64,
    },
    /// The value did not parse as an unsigned integer.
    NotANumber {
        /// Which variable/parameter was rejected.
        var: &'static str,
        /// The raw string.
        value: String,
    },
}

impl std::fmt::Display for RingConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RingConfigError::NotPowerOfTwo { var, value } => {
                write!(f, "{var}={value} is not a power of two")
            }
            RingConfigError::OutOfRange {
                var,
                value,
                min,
                max,
            } => write!(f, "{var}={value} outside accepted range [{min}, {max}]"),
            RingConfigError::NotANumber { var, value } => {
                write!(f, "{var}={value:?} is not an unsigned integer")
            }
        }
    }
}

impl std::error::Error for RingConfigError {}

impl From<RingConfigError> for std::io::Error {
    fn from(e: RingConfigError) -> std::io::Error {
        std::io::Error::new(std::io::ErrorKind::InvalidInput, e.to_string())
    }
}

/// Configured per-ring capacity (0 = unset, use default). Applies to
/// rings claimed *after* the store; already-claimed rings keep their
/// storage (growth still doubles them).
static CONFIG_CAPACITY: AtomicUsize = AtomicUsize::new(0);
/// Configured usable ring count (0 = unset, use default).
static CONFIG_MAX_RINGS: AtomicUsize = AtomicUsize::new(0);
/// Whether near-full pushes yield the producer ([`LP_DRAIN_YIELD`]).
static DRAIN_YIELD: AtomicBool = AtomicBool::new(false);
/// Times a near-full push actually yielded (process-wide; the knob is
/// global, so the counter is too).
static DRAIN_YIELDS: AtomicU64 = AtomicU64::new(0);

/// Sets the ring geometry programmatically. Both must be powers of two
/// (validated with a typed [`RingConfigError`]); affects rings claimed
/// after the call. The defaults ([`DEFAULT_RING_CAPACITY`] /
/// [`DEFAULT_MAX_RINGS`]) are unchanged from the compile-time era.
pub fn configure(capacity: usize, max_rings: usize) -> Result<(), RingConfigError> {
    validate(LP_RING_CAPACITY, capacity as u64, 64, MAX_RING_CAPACITY as u64)?;
    validate(LP_MAX_RINGS, max_rings as u64, 1, HARD_MAX_RINGS as u64)?;
    CONFIG_CAPACITY.store(capacity, Ordering::Release);
    CONFIG_MAX_RINGS.store(max_rings, Ordering::Release);
    Ok(())
}

/// Reads [`LP_RING_CAPACITY`] / [`LP_MAX_RINGS`] and applies them.
/// Unset/empty variables keep the current setting; malformed values
/// are a typed error (never a silent fallback). Call this from a
/// normal (non-signal) context — session/handler setup does.
pub fn configure_from_env() -> Result<(), RingConfigError> {
    if let Some(v) = env_value(LP_RING_CAPACITY)? {
        validate(LP_RING_CAPACITY, v, 64, MAX_RING_CAPACITY as u64)?;
        CONFIG_CAPACITY.store(v as usize, Ordering::Release);
    }
    if let Some(v) = env_value(LP_MAX_RINGS)? {
        validate(LP_MAX_RINGS, v, 1, HARD_MAX_RINGS as u64)?;
        CONFIG_MAX_RINGS.store(v as usize, Ordering::Release);
    }
    // Boolean knob: set and not "0" means on (no typed error — any
    // value is a valid intent).
    if let Ok(s) = std::env::var(LP_DRAIN_YIELD) {
        set_drain_yield(!s.is_empty() && s != "0");
    }
    Ok(())
}

/// Enables/disables producer-side yielding programmatically (the
/// [`LP_DRAIN_YIELD`] equivalent).
pub fn set_drain_yield(enabled: bool) {
    DRAIN_YIELD.store(enabled, Ordering::Relaxed);
}

/// Whether near-full pushes currently yield.
pub fn drain_yield_enabled() -> bool {
    DRAIN_YIELD.load(Ordering::Relaxed)
}

/// Times a near-full push `sched_yield`ed the producer (process-wide).
pub fn total_drain_yields() -> u64 {
    DRAIN_YIELDS.load(Ordering::Relaxed)
}

fn env_value(var: &'static str) -> Result<Option<u64>, RingConfigError> {
    match std::env::var(var) {
        Ok(s) if !s.is_empty() => s
            .parse::<u64>()
            .map(Some)
            .map_err(|_| RingConfigError::NotANumber { var, value: s }),
        _ => Ok(None),
    }
}

fn validate(var: &'static str, value: u64, min: u64, max: u64) -> Result<(), RingConfigError> {
    if !value.is_power_of_two() {
        return Err(RingConfigError::NotPowerOfTwo { var, value });
    }
    if value < min || value > max {
        return Err(RingConfigError::OutOfRange {
            var,
            value,
            min,
            max,
        });
    }
    Ok(())
}

/// The per-ring capacity new claims will use.
pub fn configured_capacity() -> usize {
    match CONFIG_CAPACITY.load(Ordering::Acquire) {
        0 => DEFAULT_RING_CAPACITY,
        n => n,
    }
}

/// The number of pool rings threads may claim.
pub fn configured_max_rings() -> usize {
    match CONFIG_MAX_RINGS.load(Ordering::Acquire) {
        0 => DEFAULT_MAX_RINGS,
        n => n.min(HARD_MAX_RINGS),
    }
}

// ——— slot storage (mmap, allocator-free) ———————————————————————————

/// Maps `capacity` record slots with anonymous memory via the raw
/// `mmap` syscall — no allocator, async-signal-safe. Null on failure.
fn map_slots(capacity: usize) -> *mut EventRecord {
    let bytes = capacity * std::mem::size_of::<EventRecord>();
    // PROT_READ|PROT_WRITE = 3, MAP_PRIVATE|MAP_ANONYMOUS = 0x22.
    // SAFETY: anonymous mapping, kernel picks the address; no memory is
    // touched on failure (negative errno return).
    let ret = unsafe {
        syscalls::raw::syscall6(
            syscalls::nr::MMAP,
            0,
            bytes as u64,
            3,
            0x22,
            u64::MAX, // fd = -1
            0,
        )
    };
    if (ret as i64) < 0 {
        std::ptr::null_mut()
    } else {
        ret as *mut EventRecord
    }
}

/// Unmaps a slot array previously produced by [`map_slots`].
fn unmap_slots(ptr: *mut EventRecord, capacity: usize) {
    let bytes = capacity * std::mem::size_of::<EventRecord>();
    // SAFETY: `ptr`/`bytes` come from a successful map_slots call and
    // the caller guarantees no outstanding reference (see grow_now).
    unsafe {
        syscalls::raw::syscall2(syscalls::nr::MUNMAP, ptr as u64, bytes as u64);
    }
}

// ——— the ring ———————————————————————————————————————————————————————

/// A single-producer single-consumer ring of [`EventRecord`]s with a
/// drop-and-count overflow policy and producer-side adaptive growth.
///
/// # Contract
///
/// `push` may be called from **one** thread at a time (the owning
/// producer); `drain` from one thread at a time (the drainer). The two
/// sides may run concurrently. The static pool upholds this by
/// assigning each ring to at most one producer thread for the process
/// lifetime and serializing drains behind the recorder session.
///
/// # Growth protocol
///
/// Only the producer ever replaces `slots`/`capacity`, and only while
/// it observes the ring **empty** (`head == tail`). The consumer reads
/// `slots`/`capacity` only after an `Acquire` load of `head` showed
/// the ring non-empty — and a non-empty ring is never swapped — so the
/// consumer always dereferences the array its records were written to.
/// All records live in one array at any instant (a swap at empty means
/// no record straddles generations), which keeps masked indexing with
/// monotonic head/tail correct across capacity changes.
pub struct SpscRing {
    /// Next write index (monotonic; slot = index & (capacity - 1)).
    head: AtomicUsize,
    /// Next read index (monotonic).
    tail: AtomicUsize,
    /// Events dropped because the ring was full (or unmappable).
    dropped: AtomicU64,
    /// Pushes that left occupancy at ≥ 3/4 capacity (backpressure).
    near_full: AtomicU64,
    /// Times the producer doubled the slot array.
    grows: AtomicU64,
    /// Producer saw pressure (near-full or a drop); grow at next empty.
    want_grow: AtomicBool,
    /// `dropped` as of the last growth decision (producer-only). Drops
    /// since then are hard evidence of undersizing: the next growth
    /// jumps straight to the ceiling instead of doubling, so a
    /// burst-heavy producer does not bleed events across several
    /// doubling rounds.
    dropped_at_last_grow: AtomicU64,
    /// Slot array; null until first push maps it.
    slots: AtomicPtr<EventRecord>,
    /// Power-of-two slot count (0 until mapped).
    capacity: AtomicUsize,
}

impl SpscRing {
    /// An empty, unmapped ring. `const` so the pool lives in a static;
    /// the slot array is mapped by the first `push`.
    #[allow(clippy::new_without_default)]
    pub const fn new() -> SpscRing {
        SpscRing {
            head: AtomicUsize::new(0),
            tail: AtomicUsize::new(0),
            dropped: AtomicU64::new(0),
            near_full: AtomicU64::new(0),
            grows: AtomicU64::new(0),
            want_grow: AtomicBool::new(false),
            dropped_at_last_grow: AtomicU64::new(0),
            slots: AtomicPtr::new(std::ptr::null_mut()),
            capacity: AtomicUsize::new(0),
        }
    }

    /// A ring with storage mapped eagerly at `capacity` (power of two)
    /// — for tests and embedders; pool rings map lazily on claim.
    pub fn with_capacity(capacity: usize) -> SpscRing {
        assert!(capacity.is_power_of_two(), "ring capacity must be 2^n");
        let ring = SpscRing::new();
        let slots = map_slots(capacity);
        assert!(!slots.is_null(), "mmap of {capacity} ring slots failed");
        ring.slots.store(slots, Ordering::Release);
        ring.capacity.store(capacity, Ordering::Release);
        ring
    }

    /// Appends `rec`; returns `false` (and counts the drop) when full.
    ///
    /// Producer side only. Allocator-free and async-signal-safe (the
    /// lazy first-push mapping and adaptive growth go through the raw
    /// `mmap` syscall).
    #[inline]
    pub fn push(&self, rec: EventRecord) -> bool {
        let mut cap = self.capacity.load(Ordering::Relaxed);
        let mut slots = self.slots.load(Ordering::Relaxed);
        if slots.is_null() {
            cap = configured_capacity();
            slots = map_slots(cap);
            if slots.is_null() {
                self.dropped.fetch_add(1, Ordering::Relaxed);
                return false;
            }
            self.slots.store(slots, Ordering::Release);
            self.capacity.store(cap, Ordering::Release);
        }
        let head = self.head.load(Ordering::Relaxed);
        let tail = self.tail.load(Ordering::Acquire);
        let occupied = head.wrapping_sub(tail);
        if occupied >= cap {
            self.dropped.fetch_add(1, Ordering::Relaxed);
            self.want_grow.store(true, Ordering::Relaxed);
            crate::drain::wake_if_parked();
            return false;
        }
        if occupied == 0 && self.want_grow.load(Ordering::Relaxed) {
            (slots, cap) = self.grow_now(slots, cap);
        }
        // SAFETY: slot `head` is outside `[tail, head)` so the consumer
        // is not reading it; this thread is the only producer.
        unsafe {
            *slots.add(head & (cap - 1)) = rec;
        }
        self.head.store(head.wrapping_add(1), Ordering::Release);
        if (occupied + 1) * NEAR_FULL_DEN >= cap * NEAR_FULL_NUM {
            self.near_full.fetch_add(1, Ordering::Relaxed);
            self.want_grow.store(true, Ordering::Relaxed);
            // A parked drainer must not ride out its timeout against a
            // 3/4-full ring: this is the backpressure signal.
            crate::drain::wake_if_parked();
            // Opt-in single-core relief: donate the rest of this
            // timeslice so the drainer can empty the ring before the
            // producer overflows it. A raw syscall — still allocator-
            // free and async-signal-safe.
            if DRAIN_YIELD.load(Ordering::Relaxed) {
                DRAIN_YIELDS.fetch_add(1, Ordering::Relaxed);
                unsafe {
                    syscalls::raw::syscall0(syscalls::nr::SCHED_YIELD);
                }
            }
        }
        true
    }

    /// Doubles the slot array. Producer side, called only at observed
    /// `head == tail`: the consumer never dereferences `slots` unless
    /// it saw the ring non-empty, every consumer read of the old array
    /// happened-before its `Release` store of `tail` (which this
    /// producer `Acquire`-loaded to observe emptiness), so the old
    /// array is quiescent and can be unmapped immediately.
    #[cold]
    fn grow_now(
        &self,
        old_slots: *mut EventRecord,
        old_cap: usize,
    ) -> (*mut EventRecord, usize) {
        self.want_grow.store(false, Ordering::Relaxed);
        let ceiling = GROWTH_CEILING.max(configured_capacity());
        if old_cap >= ceiling {
            return (old_slots, old_cap);
        }
        // Drops since the last growth decision mean doubling was (or
        // would be) too slow for this producer's burst rate — e.g. a
        // CPU-bound burst on a single core, where the drainer only
        // runs when the producer's timeslice expires. Jump to the
        // ceiling so at most one burst window ever pays the loss.
        let dropped = self.dropped.load(Ordering::Relaxed);
        let new_cap = if dropped > self.dropped_at_last_grow.load(Ordering::Relaxed) {
            ceiling
        } else {
            (old_cap * 2).min(ceiling)
        };
        self.dropped_at_last_grow.store(dropped, Ordering::Relaxed);
        let new_slots = map_slots(new_cap);
        if new_slots.is_null() {
            return (old_slots, old_cap); // keep recording at old size
        }
        self.slots.store(new_slots, Ordering::Release);
        self.capacity.store(new_cap, Ordering::Release);
        self.grows.fetch_add(1, Ordering::Relaxed);
        TOTAL_GROWS.fetch_add(1, Ordering::Relaxed);
        unmap_slots(old_slots, old_cap);
        (new_slots, new_cap)
    }

    /// Removes every available record in FIFO order, passing each to
    /// `f`. Returns how many were drained. Consumer side only.
    pub fn drain(&self, mut f: impl FnMut(EventRecord)) -> usize {
        let tail = self.tail.load(Ordering::Relaxed);
        let head = self.head.load(Ordering::Acquire);
        if head == tail {
            return 0;
        }
        // Loaded after the Acquire on `head`: a non-empty ring is never
        // swapped, so this is the array the records were written to.
        let slots = self.slots.load(Ordering::Acquire);
        let cap = self.capacity.load(Ordering::Acquire);
        let mut idx = tail;
        while idx != head {
            // SAFETY: slots in `[tail, head)` are published by the
            // producer's Release store and not rewritten until the
            // consumer advances tail past them.
            let rec = unsafe { *slots.add(idx & (cap - 1)) };
            f(rec);
            idx = idx.wrapping_add(1);
        }
        self.tail.store(head, Ordering::Release);
        head.wrapping_sub(tail)
    }

    /// Records currently buffered (racy snapshot).
    pub fn len(&self) -> usize {
        self.head
            .load(Ordering::Acquire)
            .wrapping_sub(self.tail.load(Ordering::Acquire))
    }

    /// Whether the ring currently holds no records (racy snapshot).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Current slot count (0 before the first push maps storage).
    pub fn capacity(&self) -> usize {
        self.capacity.load(Ordering::Acquire)
    }

    /// Cumulative events dropped to the overflow policy.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Cumulative pushes that observed near-full occupancy.
    pub fn near_full(&self) -> u64 {
        self.near_full.load(Ordering::Relaxed)
    }

    /// Times this ring's slot array was doubled.
    pub fn grows(&self) -> u64 {
        self.grows.load(Ordering::Relaxed)
    }
}

impl Drop for SpscRing {
    fn drop(&mut self) {
        let slots = self.slots.load(Ordering::Acquire);
        let cap = self.capacity.load(Ordering::Acquire);
        if !slots.is_null() {
            unmap_slots(slots, cap);
        }
    }
}

// ——— the static pool ———————————————————————————————————————————————

static RINGS: [SpscRing; HARD_MAX_RINGS] = [const { SpscRing::new() }; HARD_MAX_RINGS];

/// Next pool slot to hand out (monotonic; never reused — a ring's
/// producer assignment is for the thread's lifetime, which keeps the
/// SPSC contract trivially true).
static NEXT_RING: AtomicUsize = AtomicUsize::new(0);

/// Events dropped because more than the configured ring count of
/// threads recorded.
static POOL_EXHAUSTED_DROPS: AtomicU64 = AtomicU64::new(0);

/// Adaptive growths across the pool (and standalone rings).
static TOTAL_GROWS: AtomicU64 = AtomicU64::new(0);

/// TLS sentinel: not yet assigned.
const UNASSIGNED: usize = usize::MAX;
/// TLS sentinel: pool exhausted, this thread records nothing.
const NO_RING: usize = usize::MAX - 1;

thread_local! {
    /// This thread's ring index. Const-initialized so the first access
    /// — possibly from a signal handler — performs no lazy init.
    static RING_IDX: Cell<usize> = const { Cell::new(UNASSIGNED) };
}

/// Appends `rec` to the calling thread's ring, claiming one from the
/// pool on first use. Returns `false` when the event was dropped
/// (ring full, or pool exhausted) — the drop is counted either way.
#[inline]
pub fn push_current_thread(rec: EventRecord) -> bool {
    let idx = RING_IDX.with(|c| {
        let cached = c.get();
        if cached != UNASSIGNED {
            return cached;
        }
        let claimed = NEXT_RING.fetch_add(1, Ordering::Relaxed);
        let idx = if claimed < configured_max_rings() {
            claimed
        } else {
            NO_RING
        };
        c.set(idx);
        idx
    });
    if idx == NO_RING {
        POOL_EXHAUSTED_DROPS.fetch_add(1, Ordering::Relaxed);
        return false;
    }
    RINGS[idx].push(rec)
}

/// How many pool rings are currently claimed by threads.
pub fn rings_claimed() -> usize {
    NEXT_RING.load(Ordering::Relaxed).min(HARD_MAX_RINGS)
}

/// Drains every claimed pool ring, passing records to `f` (per-ring
/// FIFO order; cross-ring interleaving is the caller's to resolve,
/// e.g. by sorting on [`EventRecord::tsc`]). Single drainer at a time.
pub fn drain_all(mut f: impl FnMut(EventRecord)) -> usize {
    RINGS[..rings_claimed()]
        .iter()
        .map(|r| r.drain(&mut f))
        .sum()
}

/// Drains the claimed pool rings belonging to partition `shard` of
/// `shards` (ring index modulo `shards`), passing records to `f`.
///
/// The partition is stable — a ring index never changes — so with one
/// drainer thread per shard every ring still has exactly one consumer
/// and the SPSC contract holds shard-locally. Cross-ring ordering is
/// the caller's to resolve at merge time.
pub fn drain_partition(shard: usize, shards: usize, mut f: impl FnMut(EventRecord)) -> usize {
    let shards = shards.max(1);
    RINGS[..rings_claimed()]
        .iter()
        .enumerate()
        .filter(|(i, _)| i % shards == shard)
        .map(|(_, r)| r.drain(&mut f))
        .sum()
}

/// Cumulative events dropped across the pool: full rings plus
/// pool-exhausted threads.
pub fn total_dropped() -> u64 {
    RINGS[..rings_claimed()]
        .iter()
        .map(SpscRing::dropped)
        .sum::<u64>()
        + POOL_EXHAUSTED_DROPS.load(Ordering::Relaxed)
}

/// Cumulative near-full (backpressure) observations across the pool.
pub fn total_near_full() -> u64 {
    RINGS[..rings_claimed()]
        .iter()
        .map(SpscRing::near_full)
        .sum()
}

/// Cumulative adaptive ring growths (pool and standalone rings).
pub fn total_grows() -> u64 {
    TOTAL_GROWS.load(Ordering::Relaxed)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(n: u64) -> EventRecord {
        EventRecord {
            sysno: n,
            tsc: n,
            ..EventRecord::ZERO
        }
    }

    #[test]
    fn fifo_order_preserved() {
        let ring = SpscRing::with_capacity(1024);
        for i in 0..10 {
            assert!(ring.push(rec(i)));
        }
        let mut seen = Vec::new();
        assert_eq!(ring.drain(|r| seen.push(r.sysno)), 10);
        assert_eq!(seen, (0..10).collect::<Vec<_>>());
        assert!(ring.is_empty());
    }

    #[test]
    fn lazy_mapping_on_first_push() {
        let ring = SpscRing::new();
        assert_eq!(ring.capacity(), 0);
        assert!(ring.push(rec(1)));
        assert!(ring.capacity().is_power_of_two());
        let mut n = 0;
        ring.drain(|_| n += 1);
        assert_eq!(n, 1);
    }

    #[test]
    fn overflow_drops_and_counts() {
        let cap = 256u64;
        let ring = SpscRing::with_capacity(cap as usize);
        for i in 0..(cap + 17) {
            ring.push(rec(i));
        }
        assert_eq!(ring.len(), cap as usize);
        assert_eq!(ring.dropped(), 17);
        // The *oldest* events survive (drop-newest policy).
        let mut first = None;
        ring.drain(|r| {
            first.get_or_insert(r.sysno);
        });
        assert_eq!(first, Some(0));
    }

    #[test]
    fn wraparound_across_many_generations() {
        let cap = 1024;
        let ring = SpscRing::with_capacity(cap);
        let mut expect = 0u64;
        for gen in 0..5 {
            let n = cap / 2 + gen; // never fills: no drops
            for i in 0..n {
                assert!(ring.push(rec(expect + i as u64)));
            }
            let mut drained = Vec::new();
            assert_eq!(ring.drain(|r| drained.push(r.sysno)), n);
            assert_eq!(drained.first(), Some(&expect));
            assert_eq!(drained.last(), Some(&(expect + n as u64 - 1)));
            expect += n as u64;
        }
        assert_eq!(ring.dropped(), 0);
    }

    #[test]
    fn near_full_requests_growth_and_grow_happens_at_empty() {
        let ring = SpscRing::with_capacity(64);
        // Fill to 3/4: the crossing push flags backpressure.
        for i in 0..48 {
            assert!(ring.push(rec(i)));
        }
        assert!(ring.near_full() > 0, "3/4 occupancy observed");
        assert_eq!(ring.grows(), 0, "no growth while non-empty");
        ring.drain(|_| {});
        // First push at empty performs the doubling, then stores.
        assert!(ring.push(rec(99)));
        assert_eq!(ring.grows(), 1);
        assert_eq!(ring.capacity(), 128);
        let mut seen = Vec::new();
        ring.drain(|r| seen.push(r.sysno));
        assert_eq!(seen, vec![99], "record landed in the grown array");
        assert_eq!(ring.dropped(), 0);
    }

    #[test]
    fn drain_yield_fires_only_when_enabled() {
        // Fresh rings per phase: backpressure from the first phase
        // would otherwise grow the ring at the next empty push and put
        // the 3/4 threshold out of reach.
        set_drain_yield(false);
        let quiet = SpscRing::with_capacity(64);
        for i in 0..48 {
            assert!(quiet.push(rec(i)));
        }
        assert!(quiet.near_full() > 0);
        let before = total_drain_yields();

        // Enabled: the near-full crossing push yields and counts.
        set_drain_yield(true);
        let noisy = SpscRing::with_capacity(64);
        for i in 0..48 {
            assert!(noisy.push(rec(i)));
        }
        set_drain_yield(false);
        let fired = total_drain_yields() - before;
        assert!(fired > 0, "yield counter proves the knob fires");
        assert!(noisy.near_full() > 0);
        assert_eq!(noisy.dropped(), 0);
    }

    #[test]
    fn a_drop_grows_straight_to_the_ceiling() {
        let ring = SpscRing::with_capacity(64);
        for i in 0..70 {
            ring.push(rec(i));
        }
        assert_eq!(ring.dropped(), 6);
        ring.drain(|_| {});
        // Actual loss is hard evidence of undersizing: no doubling
        // ladder, straight to the growth ceiling.
        assert!(ring.push(rec(0)));
        assert_eq!(ring.capacity(), GROWTH_CEILING.max(configured_capacity()));
        assert_eq!(ring.grows(), 1);
        ring.drain(|_| {});
        // Near-full pressure without loss still doubles (nothing to
        // double to here: already at the ceiling).
        ring.want_grow.store(true, Ordering::Relaxed);
        ring.push(rec(1));
        assert_eq!(ring.capacity(), GROWTH_CEILING.max(configured_capacity()));
        ring.drain(|_| {});
    }

    #[test]
    fn growth_stops_at_ceiling() {
        let ring = SpscRing::with_capacity(GROWTH_CEILING.max(configured_capacity()));
        let cap = ring.capacity();
        ring.push(rec(0));
        ring.drain(|_| {});
        // Force a grow request and give it an empty observation.
        ring.want_grow.store(true, Ordering::Relaxed);
        ring.push(rec(1));
        assert_eq!(ring.capacity(), cap, "ceiling respected");
        assert_eq!(ring.grows(), 0);
        ring.drain(|_| {});
    }

    #[test]
    fn configure_validates_and_applies() {
        // Typed errors, no state change on failure.
        assert!(matches!(
            configure(1000, 64),
            Err(RingConfigError::NotPowerOfTwo { var, value: 1000 })
                if var == LP_RING_CAPACITY
        ));
        assert!(matches!(
            configure(1024, HARD_MAX_RINGS * 2),
            Err(RingConfigError::OutOfRange { var, .. }) if var == LP_MAX_RINGS
        ));
        assert!(matches!(
            configure(16, 64),
            Err(RingConfigError::OutOfRange { var, value: 16, .. })
                if var == LP_RING_CAPACITY
        ));
        // A valid configuration round-trips through the accessors.
        let (cap0, rings0) = (configured_capacity(), configured_max_rings());
        configure(2048, 64).unwrap();
        assert_eq!(configured_capacity(), 2048);
        assert_eq!(configured_max_rings(), 64);
        // Restore (tests share the process).
        CONFIG_CAPACITY.store(
            if cap0 == DEFAULT_RING_CAPACITY { 0 } else { cap0 },
            Ordering::Release,
        );
        CONFIG_MAX_RINGS.store(
            if rings0 == DEFAULT_MAX_RINGS { 0 } else { rings0 },
            Ordering::Release,
        );
    }

    #[test]
    fn concurrent_producer_consumer() {
        use std::sync::atomic::AtomicBool;
        use std::sync::Arc;

        let ring = Arc::new(SpscRing::with_capacity(1024));
        let done = Arc::new(AtomicBool::new(false));
        const N: u64 = 50_000;

        let producer = {
            let ring = Arc::clone(&ring);
            let done = Arc::clone(&done);
            std::thread::spawn(move || {
                let mut pushed = 0u64;
                for i in 0..N {
                    if ring.push(rec(i)) {
                        pushed += 1;
                    }
                }
                done.store(true, Ordering::Release);
                pushed
            })
        };

        let mut seen = Vec::new();
        loop {
            ring.drain(|r| seen.push(r.sysno));
            if done.load(Ordering::Acquire) && ring.is_empty() {
                break;
            }
        }
        let pushed = producer.join().unwrap();
        assert_eq!(seen.len() as u64, pushed);
        assert_eq!(pushed + ring.dropped(), N, "every event accounted for");
        // Drained values are a strictly increasing subsequence of 0..N.
        assert!(seen.windows(2).all(|w| w[0] < w[1]), "order violated");
    }

    #[test]
    fn concurrent_producer_consumer_with_growth() {
        use std::sync::atomic::AtomicBool;
        use std::sync::Arc;

        // Tiny ring + concurrent drainer: growth fires mid-stream and
        // the accounting + FIFO-order invariants must survive it.
        let ring = Arc::new(SpscRing::with_capacity(64));
        let done = Arc::new(AtomicBool::new(false));
        const N: u64 = 100_000;

        let producer = {
            let ring = Arc::clone(&ring);
            let done = Arc::clone(&done);
            std::thread::spawn(move || {
                let mut pushed = 0u64;
                for i in 0..N {
                    if ring.push(rec(i)) {
                        pushed += 1;
                    }
                }
                done.store(true, Ordering::Release);
                pushed
            })
        };

        let mut seen = Vec::new();
        loop {
            ring.drain(|r| seen.push(r.sysno));
            if done.load(Ordering::Acquire) && ring.is_empty() {
                break;
            }
        }
        let pushed = producer.join().unwrap();
        assert_eq!(seen.len() as u64, pushed);
        assert_eq!(pushed + ring.dropped(), N, "every event accounted for");
        assert!(seen.windows(2).all(|w| w[0] < w[1]), "order violated");
        assert!(ring.grows() > 0, "growth engaged under pressure");
        assert!(ring.capacity() > 64);
    }
}

//! Lock-free per-thread SPSC flight-recorder rings.
//!
//! The recorder's hot path runs inside the interposer — potentially in
//! signal-handler context, potentially interrupting `malloc` — so it
//! must never allocate, lock, or block. Every recording thread
//! therefore owns one single-producer/single-consumer ring from a
//! fixed static pool: the producer is that thread alone, the consumer
//! is the (single) drainer. A full ring **drops the new event and
//! counts the drop** rather than blocking or overwriting — the
//! flight-recorder contract is "never perturb the application; account
//! for every event either in the trace or in the drop counter".
//!
//! Threads beyond the pool size share nothing: they record nothing and
//! count their events into a pool-exhaustion drop counter, preserving
//! the `recorded + dropped == observed` invariant.

use std::cell::{Cell, UnsafeCell};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

use crate::event::EventRecord;

/// Entries per ring. Power of two (masked indexing); at 88 bytes per
/// record one ring is 88 KiB, and the whole pool lives in BSS so only
/// rings actually claimed by threads get backing pages.
pub const RING_CAPACITY: usize = 1024;

/// Rings in the static pool — matches the engine counter shard count;
/// threads beyond this record nothing (drop-and-count).
pub const MAX_RINGS: usize = 64;

/// A slot holding one record. `UnsafeCell` because the producer writes
/// it while the consumer may be scanning *other* slots; the head/tail
/// protocol guarantees no slot is read and written concurrently.
struct Slot(UnsafeCell<EventRecord>);

// SAFETY: access to the cell is serialized by the ring's head/tail
// protocol — the producer only writes slots in `[tail, head+cap)`, the
// consumer only reads slots in `[tail, head)`, and each index is
// published with Release/consumed with Acquire.
unsafe impl Sync for Slot {}

/// A single-producer single-consumer ring of [`EventRecord`]s with a
/// drop-and-count overflow policy.
///
/// # Contract
///
/// `push` may be called from **one** thread at a time (the owning
/// producer); `drain` from one thread at a time (the drainer). The two
/// sides may run concurrently. The static pool upholds this by
/// assigning each ring to at most one producer thread for the process
/// lifetime and serializing drains behind the recorder session.
pub struct SpscRing {
    /// Next write index (monotonic; slot = index % capacity).
    head: AtomicUsize,
    /// Next read index (monotonic).
    tail: AtomicUsize,
    /// Events dropped because the ring was full.
    dropped: AtomicU64,
    slots: [Slot; RING_CAPACITY],
}

impl SpscRing {
    /// An empty ring. `const` so the pool can live in a static.
    #[allow(clippy::new_without_default)]
    pub const fn new() -> SpscRing {
        SpscRing {
            head: AtomicUsize::new(0),
            tail: AtomicUsize::new(0),
            dropped: AtomicU64::new(0),
            slots: [const { Slot(UnsafeCell::new(EventRecord::ZERO)) }; RING_CAPACITY],
        }
    }

    /// Appends `rec`; returns `false` (and counts the drop) when full.
    ///
    /// Producer side only. Allocation-free and async-signal-safe.
    #[inline]
    pub fn push(&self, rec: EventRecord) -> bool {
        let head = self.head.load(Ordering::Relaxed);
        let tail = self.tail.load(Ordering::Acquire);
        if head.wrapping_sub(tail) >= RING_CAPACITY {
            self.dropped.fetch_add(1, Ordering::Relaxed);
            return false;
        }
        // SAFETY: slot `head` is outside `[tail, head)` so the consumer
        // is not reading it; this thread is the only producer.
        unsafe {
            *self.slots[head % RING_CAPACITY].0.get() = rec;
        }
        self.head.store(head.wrapping_add(1), Ordering::Release);
        true
    }

    /// Removes every available record in FIFO order, passing each to
    /// `f`. Returns how many were drained. Consumer side only.
    pub fn drain(&self, mut f: impl FnMut(EventRecord)) -> usize {
        let tail = self.tail.load(Ordering::Relaxed);
        let head = self.head.load(Ordering::Acquire);
        let mut idx = tail;
        while idx != head {
            // SAFETY: slots in `[tail, head)` are published by the
            // producer's Release store and not rewritten until the
            // consumer advances tail past them.
            let rec = unsafe { *self.slots[idx % RING_CAPACITY].0.get() };
            f(rec);
            idx = idx.wrapping_add(1);
        }
        self.tail.store(head, Ordering::Release);
        head.wrapping_sub(tail)
    }

    /// Records currently buffered (racy snapshot).
    pub fn len(&self) -> usize {
        self.head
            .load(Ordering::Acquire)
            .wrapping_sub(self.tail.load(Ordering::Acquire))
    }

    /// Whether the ring currently holds no records (racy snapshot).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Cumulative events dropped to the overflow policy.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }
}

// ——— the static pool ———————————————————————————————————————————————

static RINGS: [SpscRing; MAX_RINGS] = [const { SpscRing::new() }; MAX_RINGS];

/// Next pool slot to hand out (monotonic; never reused — a ring's
/// producer assignment is for the thread's lifetime, which keeps the
/// SPSC contract trivially true).
static NEXT_RING: AtomicUsize = AtomicUsize::new(0);

/// Events dropped because more than [`MAX_RINGS`] threads recorded.
static POOL_EXHAUSTED_DROPS: AtomicU64 = AtomicU64::new(0);

/// TLS sentinel: not yet assigned.
const UNASSIGNED: usize = usize::MAX;
/// TLS sentinel: pool exhausted, this thread records nothing.
const NO_RING: usize = usize::MAX - 1;

thread_local! {
    /// This thread's ring index. Const-initialized so the first access
    /// — possibly from a signal handler — performs no lazy init.
    static RING_IDX: Cell<usize> = const { Cell::new(UNASSIGNED) };
}

/// Appends `rec` to the calling thread's ring, claiming one from the
/// pool on first use. Returns `false` when the event was dropped
/// (ring full, or pool exhausted) — the drop is counted either way.
#[inline]
pub fn push_current_thread(rec: EventRecord) -> bool {
    let idx = RING_IDX.with(|c| {
        let cached = c.get();
        if cached != UNASSIGNED {
            return cached;
        }
        let claimed = NEXT_RING.fetch_add(1, Ordering::Relaxed);
        let idx = if claimed < MAX_RINGS { claimed } else { NO_RING };
        c.set(idx);
        idx
    });
    if idx == NO_RING {
        POOL_EXHAUSTED_DROPS.fetch_add(1, Ordering::Relaxed);
        return false;
    }
    RINGS[idx].push(rec)
}

/// Drains every pool ring, passing records to `f` (per-ring FIFO
/// order; cross-ring interleaving is the caller's to resolve, e.g. by
/// sorting on [`EventRecord::tsc`]). Single drainer at a time.
pub fn drain_all(mut f: impl FnMut(EventRecord)) -> usize {
    RINGS.iter().map(|r| r.drain(&mut f)).sum()
}

/// Cumulative events dropped across the pool: full rings plus
/// pool-exhausted threads.
pub fn total_dropped() -> u64 {
    RINGS.iter().map(SpscRing::dropped).sum::<u64>()
        + POOL_EXHAUSTED_DROPS.load(Ordering::Relaxed)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(n: u64) -> EventRecord {
        EventRecord {
            sysno: n,
            tsc: n,
            ..EventRecord::ZERO
        }
    }

    #[test]
    fn fifo_order_preserved() {
        let ring = SpscRing::new();
        for i in 0..10 {
            assert!(ring.push(rec(i)));
        }
        let mut seen = Vec::new();
        assert_eq!(ring.drain(|r| seen.push(r.sysno)), 10);
        assert_eq!(seen, (0..10).collect::<Vec<_>>());
        assert!(ring.is_empty());
    }

    #[test]
    fn overflow_drops_and_counts() {
        let ring = SpscRing::new();
        for i in 0..(RING_CAPACITY as u64 + 17) {
            ring.push(rec(i));
        }
        assert_eq!(ring.len(), RING_CAPACITY);
        assert_eq!(ring.dropped(), 17);
        // The *oldest* events survive (drop-newest policy).
        let mut first = None;
        ring.drain(|r| {
            first.get_or_insert(r.sysno);
        });
        assert_eq!(first, Some(0));
    }

    #[test]
    fn wraparound_across_many_generations() {
        let ring = SpscRing::new();
        let mut expect = 0u64;
        for gen in 0..5 {
            let n = RING_CAPACITY / 2 + gen; // never fills: no drops
            for i in 0..n {
                assert!(ring.push(rec(expect + i as u64)));
            }
            let mut drained = Vec::new();
            assert_eq!(ring.drain(|r| drained.push(r.sysno)), n);
            assert_eq!(drained.first(), Some(&expect));
            assert_eq!(drained.last(), Some(&(expect + n as u64 - 1)));
            expect += n as u64;
        }
        assert_eq!(ring.dropped(), 0);
    }

    #[test]
    fn concurrent_producer_consumer() {
        use std::sync::atomic::AtomicBool;
        use std::sync::Arc;

        let ring = Arc::new(SpscRing::new());
        let done = Arc::new(AtomicBool::new(false));
        const N: u64 = 50_000;

        let producer = {
            let ring = Arc::clone(&ring);
            let done = Arc::clone(&done);
            std::thread::spawn(move || {
                let mut pushed = 0u64;
                for i in 0..N {
                    if ring.push(rec(i)) {
                        pushed += 1;
                    }
                }
                done.store(true, Ordering::Release);
                pushed
            })
        };

        let mut seen = Vec::new();
        loop {
            ring.drain(|r| seen.push(r.sysno));
            if done.load(Ordering::Acquire) && ring.is_empty() {
                break;
            }
        }
        let pushed = producer.join().unwrap();
        assert_eq!(seen.len() as u64, pushed);
        assert_eq!(pushed + ring.dropped(), N, "every event accounted for");
        // Drained values are a strictly increasing subsequence of 0..N.
        assert!(seen.windows(2).all(|w| w[0] < w[1]), "order violated");
    }
}

//! mmap-backed chunked trace spill.
//!
//! The drain thread's job is to move records out of the rings faster
//! than producers insert them; a `write(2)` per batch makes the kernel
//! copy every byte and stalls the drainer on the page cache lock. The
//! [`MmapSink`] instead `ftruncate`s the trace file ahead in
//! [`CHUNK_SIZE`] windows and maps each window `MAP_SHARED`, so
//! spilling a batch is a plain `memcpy` into the page cache and
//! writeback happens on the kernel's schedule, entirely off the drain
//! path.
//!
//! `MmapSink` implements `Write + Seek`, so the generic
//! [`TraceWriter`](crate::TraceWriter) drives it exactly like a
//! `BufWriter<File>` — including the seek-back-and-patch of the
//! header's drop count at finalize (an out-of-window seek remaps; the
//! final drop back of the sink trims the file to the high-water mark
//! and unmaps). All file operations go through raw syscalls already in
//! the tree; nothing here allocates per record.

use std::fs::File;
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::os::fd::AsRawFd;
use std::path::Path;

/// Bytes per mapped window. 4 MiB ≈ 48k LPTRACE1 records or several
/// hundred thousand LPTRACE2 records per remap — remaps are rare.
pub const CHUNK_SIZE: u64 = 4 << 20;

const PROT_READ_WRITE: u64 = 3;
const MAP_SHARED: u64 = 0x01;

fn os_err(ret: u64) -> io::Error {
    io::Error::from_raw_os_error(-(ret as i64) as i32)
}

fn syscall_failed(ret: u64) -> bool {
    (ret as i64) < 0 && (ret as i64) > -4096
}

/// A `Write + Seek` sink that spills through chunked shared mappings
/// of the output file.
pub struct MmapSink {
    file: File,
    /// Current window base (null = no window mapped).
    base: *mut u8,
    /// File offset the window starts at (CHUNK_SIZE-aligned).
    window_start: u64,
    /// Logical write position.
    pos: u64,
    /// High-water mark — the file's true length, trimmed to on drop.
    max_pos: u64,
    /// Length the file has been `ftruncate`d to (window padding).
    truncated_to: u64,
}

// SAFETY: the raw mapping pointer is not thread-affine; the sink is
// used from one thread at a time (it is moved into the drain thread).
unsafe impl Send for MmapSink {}

impl MmapSink {
    /// Creates (truncates) `path` and readies the first window.
    pub fn create(path: &Path) -> io::Result<MmapSink> {
        // Read-write: a PROT_READ|PROT_WRITE shared mapping of an
        // O_WRONLY fd is EACCES.
        let file = File::options()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(path)?;
        Ok(MmapSink {
            file,
            base: std::ptr::null_mut(),
            window_start: 0,
            pos: 0,
            max_pos: 0,
            truncated_to: 0,
        })
    }

    /// Remaps the window so it covers file offset `offset`.
    fn map_window(&mut self, offset: u64) -> io::Result<()> {
        self.unmap();
        let start = offset & !(CHUNK_SIZE - 1);
        let end = start + CHUNK_SIZE;
        if self.truncated_to < end {
            // SAFETY: plain ftruncate on our own open fd.
            let ret = unsafe {
                syscalls::raw::syscall2(
                    syscalls::nr::FTRUNCATE,
                    self.file.as_raw_fd() as u64,
                    end,
                )
            };
            if syscall_failed(ret) {
                return Err(os_err(ret));
            }
            self.truncated_to = end;
        }
        // SAFETY: shared file mapping at a kernel-chosen address; the
        // fd is ours and the range was just truncated into existence.
        let ret = unsafe {
            syscalls::raw::syscall6(
                syscalls::nr::MMAP,
                0,
                CHUNK_SIZE,
                PROT_READ_WRITE,
                MAP_SHARED,
                self.file.as_raw_fd() as u64,
                start,
            )
        };
        if syscall_failed(ret) {
            return Err(os_err(ret));
        }
        self.base = ret as *mut u8;
        self.window_start = start;
        Ok(())
    }

    fn unmap(&mut self) {
        if !self.base.is_null() {
            // SAFETY: unmapping exactly what map_window mapped.
            unsafe {
                syscalls::raw::syscall2(syscalls::nr::MUNMAP, self.base as u64, CHUNK_SIZE);
            }
            self.base = std::ptr::null_mut();
        }
    }
}

impl Write for MmapSink {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        let mut written = 0;
        while written < buf.len() {
            let pos = self.pos;
            let in_window = !self.base.is_null()
                && pos >= self.window_start
                && pos < self.window_start + CHUNK_SIZE;
            if !in_window {
                self.map_window(pos)?;
            }
            let off = (pos - self.window_start) as usize;
            let room = CHUNK_SIZE as usize - off;
            let n = room.min(buf.len() - written);
            // SAFETY: [base+off, base+off+n) is inside the mapped
            // window; source and destination cannot overlap.
            unsafe {
                std::ptr::copy_nonoverlapping(buf.as_ptr().add(written), self.base.add(off), n);
            }
            written += n;
            self.pos += n as u64;
            self.max_pos = self.max_pos.max(self.pos);
        }
        Ok(written)
    }

    fn flush(&mut self) -> io::Result<()> {
        // MAP_SHARED: stores are already in the page cache; writeback
        // is the kernel's. Durability (msync) is not part of the
        // flight-recorder contract.
        Ok(())
    }
}

impl Seek for MmapSink {
    fn seek(&mut self, pos: SeekFrom) -> io::Result<u64> {
        let new = match pos {
            SeekFrom::Start(o) => Some(o),
            SeekFrom::End(d) => self.max_pos.checked_add_signed(d),
            SeekFrom::Current(d) => self.pos.checked_add_signed(d),
        };
        match new {
            Some(p) => {
                self.pos = p;
                Ok(p)
            }
            None => Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "seek before byte 0",
            )),
        }
    }
}

impl Drop for MmapSink {
    /// Unmaps and trims the window padding so the file's length equals
    /// exactly the bytes written.
    fn drop(&mut self) {
        self.unmap();
        if self.truncated_to != self.max_pos {
            // SAFETY: final trim of our own fd; best-effort.
            unsafe {
                syscalls::raw::syscall2(
                    syscalls::nr::FTRUNCATE,
                    self.file.as_raw_fd() as u64,
                    self.max_pos,
                );
            }
        }
    }
}

/// Reads back a file written through an [`MmapSink`] (plain read —
/// the sink is write-only by design). Test helper.
#[doc(hidden)]
pub fn read_back(path: &Path) -> io::Result<Vec<u8>> {
    let mut out = Vec::new();
    File::open(path)?.read_to_end(&mut out)?;
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp(tag: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("lp_spill_{tag}_{}.bin", std::process::id()))
    }

    #[test]
    fn write_seek_patch_roundtrip() {
        let path = temp("patch");
        {
            let mut sink = MmapSink::create(&path).unwrap();
            sink.write_all(b"headerXXpayload").unwrap();
            sink.seek(SeekFrom::Start(6)).unwrap();
            sink.write_all(b"OK").unwrap();
            sink.seek(SeekFrom::End(0)).unwrap();
            sink.write_all(b"!").unwrap();
        }
        let bytes = read_back(&path).unwrap();
        assert_eq!(bytes, b"headerOKpayload!", "patched in place, then appended");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn file_is_trimmed_to_exact_length() {
        let path = temp("trim");
        {
            let mut sink = MmapSink::create(&path).unwrap();
            sink.write_all(&[0xa5; 1000]).unwrap();
        }
        assert_eq!(
            std::fs::metadata(&path).unwrap().len(),
            1000,
            "chunk padding trimmed on drop"
        );
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn writes_spanning_many_chunks() {
        let path = temp("chunks");
        let pattern: Vec<u8> = (0..=255u8).cycle().take(3 * CHUNK_SIZE as usize + 12345).collect();
        {
            let mut sink = MmapSink::create(&path).unwrap();
            // Uneven write sizes force mid-buffer window crossings.
            for chunk in pattern.chunks(70_001) {
                sink.write_all(chunk).unwrap();
            }
            // Patch far behind the current window, then keep going.
            sink.seek(SeekFrom::Start(3)).unwrap();
            sink.write_all(b"zz").unwrap();
            sink.seek(SeekFrom::End(0)).unwrap();
            sink.write_all(b"end").unwrap();
        }
        let bytes = read_back(&path).unwrap();
        assert_eq!(bytes.len(), pattern.len() + 3);
        assert_eq!(&bytes[3..5], b"zz");
        assert_eq!(&bytes[bytes.len() - 3..], b"end");
        assert_eq!(&bytes[5..100], &pattern[5..100]);
        assert_eq!(
            &bytes[100..pattern.len()],
            &pattern[100..],
            "chunk-spanning content intact"
        );
        std::fs::remove_file(&path).unwrap();
    }
}

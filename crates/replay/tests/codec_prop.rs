//! Property tests for the LPTRACE2 codec: arbitrary record streams
//! round-trip bit-exactly through encode → decode, including tsc
//! deltas that wrap the u64 space and dictionary-heavy site mixes.

use lp_replay::codec::{get_varint, put_varint, unzigzag, zigzag, Lp2Decoder, Lp2Encoder};
use lp_replay::{EventRecord, RECORD_SIZE};
use proptest::prelude::*;

fn arb_record() -> impl Strategy<Value = EventRecord> {
    (
        // Small sysno pool exercises the dictionary hit path; the
        // arbitrary arm exercises the literal-escape path.
        prop_oneof![0u64..32, any::<u64>()],
        prop_oneof![Just([0u64; 6]), any::<[u64; 6]>()],
        any::<u64>(),
        // tsc: arbitrary, so consecutive deltas go negative and wrap.
        any::<u64>(),
        prop_oneof![Just(0x40_0000u64), any::<u64>()],
        any::<u32>(),
    )
        .prop_map(|(sysno, args, ret, tsc, site, tid)| EventRecord {
            sysno,
            args,
            ret,
            tsc,
            site,
            tid,
        })
}

fn encode_stream(records: &[EventRecord]) -> Vec<u8> {
    let mut enc = Lp2Encoder::new();
    let mut bytes = Vec::new();
    for r in records {
        enc.encode(r, &mut bytes);
    }
    bytes
}

proptest! {
    /// Any record sequence round-trips exactly, whatever the tsc
    /// ordering (deltas are wrapping-signed, so descending and
    /// wrapping timestamps must survive too).
    #[test]
    fn stream_roundtrips_bit_exactly(records in proptest::collection::vec(arb_record(), 0..64)) {
        let bytes = encode_stream(&records);
        let decoded = Lp2Decoder::new().decode_all(&bytes, 0).expect("well-formed stream");
        prop_assert_eq!(decoded, records);
    }

    /// Explicit wraparound: consecutive tsc values straddling u64::MAX
    /// and 0 decode back exactly.
    #[test]
    fn tsc_wraparound_deltas_roundtrip(base in any::<u64>(), steps in proptest::collection::vec(any::<i64>(), 1..32)) {
        let mut tsc = base;
        let mut records = Vec::new();
        for (i, s) in steps.iter().enumerate() {
            tsc = tsc.wrapping_add(*s as u64);
            records.push(EventRecord { sysno: i as u64, tsc, ..EventRecord::ZERO });
        }
        let bytes = encode_stream(&records);
        let decoded = Lp2Decoder::new().decode_all(&bytes, 0).expect("well-formed stream");
        prop_assert_eq!(decoded, records);
    }

    /// Realistic streams (repeating sites, mostly-monotonic tsc) stay
    /// well under the fixed LPTRACE1 record size on average.
    #[test]
    fn repetitive_streams_compress(n in 16u64..256) {
        let records: Vec<EventRecord> = (0..n)
            .map(|i| EventRecord {
                sysno: i % 7,
                args: [3, 4096, 0, 0, 0, 0],
                ret: 4096,
                tsc: 1_000_000 + i * 800,
                site: 0x40_1000 + (i % 5) * 64,
                tid: 7001,
            })
            .collect();
        let bytes = encode_stream(&records);
        let per_record = bytes.len() as f64 / n as f64;
        prop_assert!(
            per_record * 3.0 <= RECORD_SIZE as f64,
            "expected >=3x compression, got {} B/record", per_record
        );
    }

    /// varint and zigzag primitives invert for every u64/i64.
    #[test]
    fn varint_and_zigzag_invert(v in any::<u64>(), s in any::<i64>()) {
        let mut buf = Vec::new();
        put_varint(&mut buf, v);
        let mut pos = 0;
        prop_assert_eq!(get_varint(&buf, &mut pos), Some(v));
        prop_assert_eq!(pos, buf.len());
        prop_assert_eq!(unzigzag(zigzag(s)), s);
    }

    /// Any truncation point strictly inside an encoded stream is a
    /// structured error or a clean shorter prefix — never a panic,
    /// never an invented record.
    #[test]
    fn truncation_never_panics_or_invents(records in proptest::collection::vec(arb_record(), 1..32), cut_pct in 0usize..100) {
        let bytes = encode_stream(&records);
        let cut = bytes.len() * cut_pct / 100;
        match Lp2Decoder::new().decode_all(&bytes[..cut], 0) {
            Ok(prefix) => {
                prop_assert!(prefix.len() <= records.len());
                prop_assert_eq!(prefix.as_slice(), &records[..prefix.len()]);
            }
            Err(e) => {
                // Mid-record cut: structured truncation error.
                let msg = e.to_string();
                prop_assert!(msg.contains("truncated"), "{}", msg);
            }
        }
    }
}

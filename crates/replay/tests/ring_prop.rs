//! Property tests for the flight-recorder ring: round-trip fidelity,
//! ordering, and drop-counter accuracy under arbitrary workloads.

use lp_replay::ring::{SpscRing, DEFAULT_RING_CAPACITY};
use lp_replay::EventRecord;
use proptest::prelude::*;

/// A ring at the default geometry with storage mapped eagerly, so the
/// properties are independent of any ambient `LP_RING_CAPACITY`.
fn default_ring() -> SpscRing {
    SpscRing::with_capacity(DEFAULT_RING_CAPACITY)
}

fn rec(seq: u64) -> EventRecord {
    EventRecord {
        sysno: seq % 453,
        args: [seq, seq ^ 0xaaaa, seq << 7, !seq, seq.rotate_left(13), 6],
        ret: seq.wrapping_mul(31),
        tsc: seq,
        site: 0x40_0000 + seq,
        tid: (seq % 97) as u32 + 1,
    }
}

proptest! {
    /// Write N (≤ capacity), drain N: every record comes back intact,
    /// in order, with zero drops.
    #[test]
    fn roundtrip_preserves_records_and_order(n in 0usize..=DEFAULT_RING_CAPACITY) {
        let ring = default_ring();
        for i in 0..n {
            prop_assert!(ring.push(rec(i as u64)));
        }
        let mut out = Vec::new();
        prop_assert_eq!(ring.drain(|r| out.push(r)), n);
        prop_assert_eq!(out.len(), n);
        for (i, r) in out.iter().enumerate() {
            prop_assert_eq!(*r, rec(i as u64));
        }
        prop_assert_eq!(ring.dropped(), 0);
        prop_assert!(ring.is_empty());
    }

    /// Pushing past capacity drops exactly the excess, keeps the oldest
    /// events, and counts every drop.
    #[test]
    fn overflow_drop_counter_is_exact(extra in 1u64..3000) {
        let ring = default_ring();
        let total = DEFAULT_RING_CAPACITY as u64 + extra;
        let mut accepted = 0u64;
        for i in 0..total {
            if ring.push(rec(i)) {
                accepted += 1;
            }
        }
        prop_assert_eq!(accepted, DEFAULT_RING_CAPACITY as u64);
        prop_assert_eq!(ring.dropped(), extra);
        prop_assert_eq!(accepted + ring.dropped(), total, "every event accounted for");
        // Drop-newest policy: the survivors are the first CAPACITY events.
        let mut seq = 0u64;
        ring.drain(|r| {
            assert_eq!(r, rec(seq));
            seq += 1;
        });
    }

    /// Interleaved push/drain bursts of arbitrary sizes never lose,
    /// duplicate, or reorder an accepted record.
    #[test]
    fn interleaved_bursts_conserve_events(bursts in proptest::collection::vec(1usize..2048, 1..12)) {
        let ring = default_ring();
        let mut next_push = 0u64;
        let mut next_drain = 0u64;
        for burst in bursts {
            for _ in 0..burst {
                // A dropped record is not part of the FIFO sequence; the
                // same seq is retried on the next non-full slot and the
                // drop counter owns the accounting.
                if ring.push(rec(next_push)) {
                    next_push += 1;
                }
            }
            ring.drain(|r| {
                assert_eq!(r.tsc, next_drain, "FIFO order across wraparound");
                next_drain += 1;
            });
            prop_assert_eq!(next_drain, next_push, "drain catches up to pushes");
        }
    }
}

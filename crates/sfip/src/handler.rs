//! The enforcement handler: one per-thread last-sysno load + one
//! bitmatrix test per intercepted syscall, with the
//! kill/quarantine/count violation ladder.

use std::cell::Cell;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, Ordering};
use std::sync::Arc;

use interpose::{InterestSet, SyscallEvent, SyscallHandler};
use syscalls::{nr, raw, MAX_SYSCALL_NR};

use crate::policy::Policy;
use crate::PolicyError;

/// Sentinel "no previous syscall on this thread yet": the first
/// syscall of a thread's chain is always transition-allowed.
pub const NO_PREV: u64 = u64::MAX;

/// What to do when a syscall violates the learned automaton — the
/// `LP_SFIP_POLICY_ACTION` ladder, ordered from most to least severe.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ViolationAction {
    /// Kill the process before the violating syscall executes:
    /// raw `SIGKILL` + `exit_group(137)`, mirroring the hardened
    /// engine's bypass policy. The default.
    Kill,
    /// Disable enforcement and keep passing through — the same
    /// fail-open containment the registry applies to panicking hooks.
    /// Exactly one violation is counted; checks stop afterwards.
    Quarantine,
    /// Audit mode: count every violation, block nothing, keep
    /// checking. The mode to run first in production.
    Count,
}

impl ViolationAction {
    /// Reads [`crate::ACTION_ENV`]; unset or empty means [`ViolationAction::Kill`].
    pub fn from_env() -> Result<ViolationAction, PolicyError> {
        match std::env::var(crate::ACTION_ENV) {
            Err(_) => Ok(ViolationAction::Kill),
            Ok(v) => match v.as_str() {
                "" | "kill" => Ok(ViolationAction::Kill),
                "quarantine" => Ok(ViolationAction::Quarantine),
                "count" => Ok(ViolationAction::Count),
                other => Err(PolicyError::BadAction(other.to_string())),
            },
        }
    }

    /// The action's registry/JSON name.
    pub fn name(self) -> &'static str {
        match self {
            ViolationAction::Kill => "kill",
            ViolationAction::Quarantine => "quarantine",
            ViolationAction::Count => "count",
        }
    }
}

/// Transition checks performed since process start.
static SFIP_CHECKS: AtomicU64 = AtomicU64::new(0);
/// Violations observed since process start.
static SFIP_VIOLATIONS: AtomicU64 = AtomicU64::new(0);
/// Last installed action (0 = never installed; else action ordinal+1).
static SFIP_MODE: AtomicU8 = AtomicU8::new(0);
/// Handler-instance epoch: a fresh install must not inherit another
/// install's per-thread last-sysno state (tests install repeatedly on
/// the same threads).
static EPOCH: AtomicU64 = AtomicU64::new(1);

thread_local! {
    /// (handler epoch, last in-range sysno) of the current thread.
    static LAST: Cell<(u64, u64)> = const { Cell::new((0, NO_PREV)) };
}

/// Transition checks performed process-wide.
pub fn checks() -> u64 {
    SFIP_CHECKS.load(Ordering::Relaxed)
}

/// Violations observed process-wide.
pub fn violations() -> u64 {
    SFIP_VIOLATIONS.load(Ordering::Relaxed)
}

/// Name of the most recently installed violation action, `"off"` when
/// no [`SfipHandler`] was ever constructed.
pub fn mode_name() -> &'static str {
    match SFIP_MODE.load(Ordering::Relaxed) {
        1 => "kill",
        2 => "quarantine",
        3 => "count",
        _ => "off",
    }
}

/// A [`SyscallHandler`] enforcing a learned transition [`Policy`]
/// around an inner handler.
///
/// The inner handler runs *first* (so the checked sysno is
/// post-rewrite — exactly what the recorder stored and the learner
/// folded), then the transition test runs *before* the mechanism
/// executes anything: a `kill` verdict fires before the violating
/// syscall reaches the kernel.
pub struct SfipHandler {
    inner: Box<dyn SyscallHandler>,
    policy: Arc<Policy>,
    action: ViolationAction,
    check_origins: bool,
    /// Cleared by the first violation under [`ViolationAction::Quarantine`].
    enabled: AtomicBool,
    epoch: u64,
}

impl SfipHandler {
    /// Wraps `inner` with enforcement of `policy` under `action`.
    pub fn new(
        policy: Arc<Policy>,
        action: ViolationAction,
        check_origins: bool,
        inner: Box<dyn SyscallHandler>,
    ) -> SfipHandler {
        SFIP_MODE.store(
            match action {
                ViolationAction::Kill => 1,
                ViolationAction::Quarantine => 2,
                ViolationAction::Count => 3,
            },
            Ordering::Relaxed,
        );
        SfipHandler {
            inner,
            policy,
            action,
            check_origins,
            enabled: AtomicBool::new(true),
            epoch: EPOCH.fetch_add(1, Ordering::Relaxed),
        }
    }

    /// Is enforcement still live (i.e. not quarantined)?
    pub fn enforcing(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// The action this handler applies on violation.
    pub fn action(&self) -> ViolationAction {
        self.action
    }

    #[cold]
    #[inline(never)]
    fn on_violation(&self, prev: u64, nr: u64, site: u64) {
        SFIP_VIOLATIONS.fetch_add(1, Ordering::Relaxed);
        report_violation(prev, nr, site, self.action.name());
        match self.action {
            ViolationAction::Count => {}
            ViolationAction::Quarantine => self.enabled.store(false, Ordering::Relaxed),
            ViolationAction::Kill => kill_process(),
        }
    }
}

impl SyscallHandler for SfipHandler {
    fn handle(&self, event: &mut SyscallEvent) -> interpose::Action {
        // Inner first: the checked number is post-rewrite, matching
        // what the recorder stored when the policy was learned.
        let decision = self.inner.handle(event);
        let nr = event.call.nr;
        if nr < MAX_SYSCALL_NR && self.enabled.load(Ordering::Relaxed) {
            SFIP_CHECKS.fetch_add(1, Ordering::Relaxed);
            let prev = LAST.with(|c| {
                let (epoch, last) = c.get();
                c.set((self.epoch, nr));
                if epoch == self.epoch {
                    last
                } else {
                    NO_PREV
                }
            });
            let ok = (prev == NO_PREV || self.policy.allows(prev, nr))
                && (!self.check_origins || self.policy.allows_origin(nr, event.site as u64));
            if !ok {
                self.on_violation(prev, nr, event.site as u64);
            }
        }
        decision
    }

    fn post(&self, event: &SyscallEvent, ret: u64) -> u64 {
        self.inner.post(event, ret)
    }

    fn name(&self) -> &str {
        "sfip"
    }

    fn interest(&self) -> InterestSet {
        // Every syscall must be observed: a gap in the chain would
        // manufacture transitions the automaton never saw.
        InterestSet::all()
    }
}

/// Kills the process with the raw-syscall sequence the hardened
/// engine's bypass policy uses: `SIGKILL` first (unblockable), then
/// `exit_group(137)` in case the kill is somehow swallowed.
fn kill_process() -> ! {
    unsafe {
        let pid = raw::syscall0(nr::GETPID);
        raw::syscall2(nr::KILL, pid, libc::SIGKILL as u64);
        raw::syscall1(nr::EXIT_GROUP, 137);
    }
    unreachable!("exit_group returned");
}

/// Writes one violation line straight to stderr with a raw `write(2)`
/// — no allocation, no locks; safe from signal context.
fn report_violation(prev: u64, nr: u64, site: u64, action: &'static str) {
    let mut line = LineBuf::new();
    line.push(b"lp-sfip: flow violation ");
    if prev == NO_PREV {
        line.push(b"<start>");
    } else {
        line.push_u64(prev);
    }
    line.push(b" -> ");
    line.push_u64(nr);
    if site != 0 {
        line.push(b" site=0x");
        line.push_hex(site);
    }
    line.push(b" action=");
    line.push(action.as_bytes());
    line.push(b"\n");
    unsafe {
        libc::write(
            2,
            line.buf.as_ptr().cast::<libc::c_void>(),
            line.len,
        );
    }
}

/// Fixed-size, allocation-free line builder for the violation report.
struct LineBuf {
    buf: [u8; 128],
    len: usize,
}

impl LineBuf {
    fn new() -> LineBuf {
        LineBuf { buf: [0; 128], len: 0 }
    }

    fn push(&mut self, s: &[u8]) {
        for &b in s {
            if self.len < self.buf.len() {
                self.buf[self.len] = b;
                self.len += 1;
            }
        }
    }

    fn push_u64(&mut self, mut v: u64) {
        let mut tmp = [0u8; 20];
        let mut i = tmp.len();
        loop {
            i -= 1;
            tmp[i] = b'0' + (v % 10) as u8;
            v /= 10;
            if v == 0 {
                break;
            }
        }
        let (start, end) = (i, tmp.len());
        self.push(&tmp[start..end]);
    }

    fn push_hex(&mut self, v: u64) {
        let digits = b"0123456789abcdef";
        let mut started = false;
        for shift in (0..16).rev() {
            let nib = ((v >> (shift * 4)) & 0xf) as usize;
            if nib != 0 || started || shift == 0 {
                started = true;
                self.push(&[digits[nib]]);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use interpose::{CountHandler, PassthroughHandler};
    use std::sync::Mutex;
    use syscalls::SyscallArgs;

    /// The check/violation counters are process-global; tests that
    /// assert on their deltas serialize behind this.
    static COUNTER_LOCK: Mutex<()> = Mutex::new(());

    fn ev(nr: u64) -> SyscallEvent {
        SyscallEvent::new(SyscallArgs::nullary(nr))
    }

    #[test]
    fn count_mode_counts_and_keeps_enforcing() {
        let _g = COUNTER_LOCK.lock().unwrap();
        let mut p = Policy::empty("test");
        p.insert(nr::READ, nr::WRITE);
        p.insert(nr::WRITE, nr::READ);
        let h = SfipHandler::new(
            Arc::new(p),
            ViolationAction::Count,
            false,
            Box::new(PassthroughHandler),
        );
        let base = violations();
        // read -> write -> read: all learned.
        for n in [nr::READ, nr::WRITE, nr::READ] {
            h.handle(&mut ev(n));
        }
        assert_eq!(violations() - base, 0);
        // read -> getpid: never learned; counted, not blocked, and the
        // chain keeps advancing (getpid -> getpid violates again).
        h.handle(&mut ev(nr::GETPID));
        assert_eq!(violations() - base, 1);
        h.handle(&mut ev(nr::GETPID));
        assert_eq!(violations() - base, 2);
        assert!(h.enforcing());
    }

    #[test]
    fn quarantine_disables_after_first_violation() {
        let _g = COUNTER_LOCK.lock().unwrap();
        let mut p = Policy::empty("test");
        p.insert(nr::READ, nr::READ);
        let h = SfipHandler::new(
            Arc::new(p),
            ViolationAction::Quarantine,
            false,
            Box::new(PassthroughHandler),
        );
        let (vbase, cbase) = (violations(), checks());
        h.handle(&mut ev(nr::READ));
        h.handle(&mut ev(nr::GETPID)); // violation: quarantines
        assert_eq!(violations() - vbase, 1);
        assert!(!h.enforcing());
        let frozen = checks();
        h.handle(&mut ev(nr::GETPID)); // would violate again; not checked
        assert_eq!(violations() - vbase, 1, "quarantined: no further counting");
        assert_eq!(checks(), frozen, "quarantined: checks stop");
        assert!(checks() - cbase >= 2);
    }

    #[test]
    fn inner_handler_runs_and_out_of_range_skips_checks() {
        let _g = COUNTER_LOCK.lock().unwrap();
        let counter = CountHandler::new();
        let h = SfipHandler::new(
            Arc::new(Policy::empty("test")),
            ViolationAction::Count,
            false,
            Box::new(counter.clone()),
        );
        let (vbase, cbase) = (violations(), checks());
        // Out-of-range sysno: delivered to inner, never checked, and
        // does not open the chain.
        h.handle(&mut ev(MAX_SYSCALL_NR + 7));
        assert_eq!(checks(), cbase);
        // First in-range syscall opens the chain without violating.
        h.handle(&mut ev(nr::GETPID));
        assert_eq!(violations() - vbase, 0);
        assert_eq!(counter.count(nr::GETPID), 1, "inner handler saw the event");
    }

    #[test]
    fn fresh_handler_does_not_inherit_thread_state() {
        let _g = COUNTER_LOCK.lock().unwrap();
        let mut p = Policy::empty("test");
        p.insert(nr::READ, nr::READ);
        let mk = || {
            SfipHandler::new(
                Arc::new({
                    let mut p2 = Policy::empty("test");
                    p2.insert(nr::READ, nr::READ);
                    p2
                }),
                ViolationAction::Count,
                false,
                Box::new(PassthroughHandler),
            )
        };
        let _ = p;
        let vbase = violations();
        let h1 = mk();
        h1.handle(&mut ev(nr::WRITE)); // chain: write
        drop(h1);
        let h2 = mk();
        // Under h1's chain write -> read would violate; a fresh epoch
        // must treat read as the thread's first syscall.
        h2.handle(&mut ev(nr::READ));
        assert_eq!(violations() - vbase, 0);
    }

    #[test]
    fn origin_enforcement_flags_unknown_sites() {
        let _g = COUNTER_LOCK.lock().unwrap();
        let mut p = Policy::empty("test");
        p.insert(nr::READ, nr::READ);
        p.insert_origin(nr::READ, 0x4000);
        let h = SfipHandler::new(
            Arc::new(p),
            ViolationAction::Count,
            true,
            Box::new(PassthroughHandler),
        );
        let vbase = violations();
        let mut good = SyscallEvent::with_site(SyscallArgs::nullary(nr::READ), 0x4000);
        h.handle(&mut good);
        assert_eq!(violations() - vbase, 0);
        let mut bad = SyscallEvent::with_site(SyscallArgs::nullary(nr::READ), 0x6666);
        h.handle(&mut bad);
        assert_eq!(violations() - vbase, 1, "unknown site flagged");
        // Site 0 (mechanism couldn't attribute) is never a violation.
        h.handle(&mut ev(nr::READ));
        assert_eq!(violations() - vbase, 1);
    }

    #[test]
    fn action_parsing() {
        assert_eq!(ViolationAction::Kill.name(), "kill");
        assert_eq!(ViolationAction::Quarantine.name(), "quarantine");
        assert_eq!(ViolationAction::Count.name(), "count");
    }
}

//! Syscall-flow integrity (SFIP) learned from recorded traces.
//!
//! Following SFIP (Canella et al.) — coarse-grained syscall-flow
//! integrity with one-table-lookup enforcement — this crate closes the
//! loop between the suite's flight recorder and its interposition fast
//! path:
//!
//! 1. **Learning pass** ([`Policy::learn`]): folds one or more recorded
//!    `LPTRACE1`/`LPTRACE2` traces into a syscall-transition automaton —
//!    an N×N bitmatrix over sysno pairs (N = 512, one cache line per
//!    row) plus optional per-sysno origin-site sets taken from the
//!    trace's invocation sites. Transitions are folded **per thread**:
//!    an interleaved multi-thread trace never manufactures cross-thread
//!    edges.
//! 2. **On-disk policy** ([`Policy::save`] / [`Policy::load`]): the
//!    versioned `LPSFIP1` format — a 64-byte header, the 32 KiB
//!    bitmatrix, and varint-encoded origin sets reusing the trace
//!    codec. All load failures are a typed [`PolicyError`].
//! 3. **Enforcement** ([`SfipHandler`]): a
//!    [`SyscallHandler`](interpose::SyscallHandler) wrapper whose fast
//!    path is one per-thread last-sysno load plus one bitmatrix bit
//!    test. Violations follow the [`Action`] ladder: `kill` (raw
//!    `SIGKILL` + `exit_group(137)`, mirroring the hardened engine's
//!    bypass policy), `quarantine` (disable enforcement, keep passing
//!    through — like hook panic quarantine), or `count` (audit mode:
//!    record and continue enforcing — the mode to run first in
//!    production).
//!
//! The `lp-mechanism` registry wires this up as `"<base>+sfip"` with
//! `LP_SFIP_POLICY=<path>` and `LP_SFIP_POLICY_ACTION=kill|quarantine|count`;
//! `lp-trace learn` / `lp-trace policy-dump` are the command-line front
//! end.

#![deny(missing_docs)]

mod handler;
mod policy;

pub use handler::{checks, mode_name, violations, SfipHandler, ViolationAction, NO_PREV};
pub use policy::{
    fold_transitions, Policy, PolicyError, TransitionStats, HEADER_SIZE, MAGIC, MATRIX_BYTES,
    MATRIX_WORDS, ROW_WORDS, VERSION,
};

/// Environment variable naming the `LPSFIP1` policy file an
/// `"<base>+sfip"` install enforces.
pub const POLICY_ENV: &str = "LP_SFIP_POLICY";

/// Environment variable selecting the violation action
/// (`kill` | `quarantine` | `count`; default `kill`).
pub const ACTION_ENV: &str = "LP_SFIP_POLICY_ACTION";

/// Environment variable enabling per-site origin enforcement
/// (`LP_SFIP_ORIGINS=1`): a syscall must also be issued from an
/// invocation site the trace recorded for that sysno. Off by default —
/// site addresses are only stable for workloads without ASLR-sensitive
/// re-runs.
pub const ORIGINS_ENV: &str = "LP_SFIP_ORIGINS";

//! The transition automaton: learning pass, `LPSFIP1` on-disk format,
//! and the shared transition-fold behind both the learner and
//! `lp-trace dump --stats`.
//!
//! # `LPSFIP1` layout
//!
//! A policy file is a 64-byte header, the fixed 32 KiB transition
//! bitmatrix, then the (optional) varint-encoded origin sets:
//!
//! | offset | size | field |
//! |-------:|-----:|-------|
//! | 0  | 8  | magic `"LPSFIP1\0"` |
//! | 8  | 4  | format version (LE u32; 1) |
//! | 12 | 4  | flags (bit 0: origin sets present) |
//! | 16 | 4  | matrix size in u64 words ([`MATRIX_WORDS`], checked on read) |
//! | 20 | 4  | origin-set entry count |
//! | 24 | 8  | events folded into the policy |
//! | 32 | 4  | distinct sysnos observed |
//! | 36 | 4  | allowed transition count |
//! | 40 | 24 | source mechanism name, NUL-padded (mirrors the trace header) |
//!
//! The bitmatrix is row-major little-endian: row = previous sysno
//! (8 words = 512 bits per row, one cache line), bit = next sysno.
//! Each origin entry is `varint sysno, varint site-count, varint
//! sites...` reusing the `LPTRACE2` codec. Everything little-endian.

use std::collections::BTreeMap;
use std::fmt;
use std::io::{self, Read, Write};
use std::path::Path;

use replay::codec::{get_varint, put_varint};
use replay::EventRecord;
use syscalls::MAX_SYSCALL_NR;

/// Policy file magic.
pub const MAGIC: [u8; 8] = *b"LPSFIP1\0";

/// Policy format version this crate writes and reads.
pub const VERSION: u32 = 1;

/// Header size in bytes.
pub const HEADER_SIZE: usize = 64;

/// Words per bitmatrix row (512 bits = one cache line).
pub const ROW_WORDS: usize = (MAX_SYSCALL_NR as usize).div_ceil(64);

/// Total bitmatrix size in u64 words.
pub const MATRIX_WORDS: usize = MAX_SYSCALL_NR as usize * ROW_WORDS;

/// Total bitmatrix size in bytes (32 KiB).
pub const MATRIX_BYTES: usize = MATRIX_WORDS * 8;

/// Maximum stored length of the source-mechanism name (mirrors the
/// trace header field).
const MECHANISM_FIELD: usize = 24;

/// Cap on total origin sites stored across all sysnos, bounding the
/// file size against adversarial or JIT-heavy traces. Beyond the cap
/// a sysno's origin set is dropped (treated as "any site"), never
/// truncated to a half-set that would fail legitimate sites.
const ORIGIN_SITE_CAP: usize = 1 << 16;

/// Header flag bit: origin sets follow the matrix.
const FLAG_ORIGINS: u32 = 1;

/// Everything that can go wrong producing or loading a policy.
#[derive(Debug)]
pub enum PolicyError {
    /// Underlying I/O failure (with the offending path when known).
    Io(io::Error),
    /// The file does not start with [`MAGIC`].
    BadMagic([u8; 8]),
    /// The file is a future or unknown format generation.
    BadVersion(u32),
    /// The stored matrix geometry does not match [`MATRIX_WORDS`] —
    /// the file was produced for a different `MAX_SYSCALL_NR`.
    BadMatrixSize(u32),
    /// The file ends mid-structure.
    Truncated,
    /// A learning pass over zero events: there is no behaviour to
    /// learn, and an empty policy would kill the first syscall.
    EmptyTrace,
    /// `LP_SFIP_POLICY_ACTION` names an unknown action.
    BadAction(String),
    /// `LP_SFIP_POLICY` is not set but an `+sfip` install needs it.
    NoPolicyPath,
}

impl fmt::Display for PolicyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PolicyError::Io(e) => write!(f, "policy I/O error: {e}"),
            PolicyError::BadMagic(m) => write!(f, "not an LPSFIP policy (magic {m:02x?})"),
            PolicyError::BadVersion(v) => write!(f, "unsupported policy format version {v}"),
            PolicyError::BadMatrixSize(w) => write!(
                f,
                "policy matrix is {w} words, this build expects {MATRIX_WORDS}"
            ),
            PolicyError::Truncated => write!(f, "policy file truncated"),
            PolicyError::EmptyTrace => write!(f, "cannot learn a policy from an empty trace"),
            PolicyError::BadAction(a) => write!(
                f,
                "unknown LP_SFIP_POLICY_ACTION {a:?} (expected kill|quarantine|count)"
            ),
            PolicyError::NoPolicyPath => {
                write!(f, "LP_SFIP_POLICY must name an LPSFIP1 policy file")
            }
        }
    }
}

impl std::error::Error for PolicyError {}

impl From<io::Error> for PolicyError {
    fn from(e: io::Error) -> PolicyError {
        PolicyError::Io(e)
    }
}

/// A learned (or hand-built) syscall-transition policy.
///
/// `allows(from, to)` is the entire enforcement query: one shift, one
/// mask, one load. Out-of-range sysnos are never consulted — the
/// handler passes them through unchecked, matching the interest
/// filter's conservative treatment.
pub struct Policy {
    /// Row-major transition bitmatrix (row = previous sysno).
    matrix: Box<[u64; MATRIX_WORDS]>,
    /// Per-sysno allowed invocation sites; a sysno absent from the map
    /// is unconstrained. `None` once the learner overflowed
    /// [`ORIGIN_SITE_CAP`] — origins are then unusable wholesale.
    origins: Option<BTreeMap<u64, Vec<u64>>>,
    /// Events folded into this policy across all [`Policy::fold`] calls.
    events_folded: u64,
    /// Distinct in-range sysnos observed.
    distinct_sysnos: u32,
    /// Bitset of sysnos seen across folds (not serialized; the header
    /// carries the count).
    seen: [u64; ROW_WORDS],
    /// Mechanism name of the first trace folded in (informational).
    source_mechanism: String,
}

impl Policy {
    /// The empty policy (allows nothing). Fold traces or insert
    /// transitions to populate it.
    pub fn empty(source_mechanism: &str) -> Policy {
        Policy {
            matrix: vec![0u64; MATRIX_WORDS].into_boxed_slice().try_into().unwrap(),
            origins: Some(BTreeMap::new()),
            events_folded: 0,
            distinct_sysnos: 0,
            seen: [0; ROW_WORDS],
            source_mechanism: source_mechanism.to_string(),
        }
    }

    /// A policy allowing every transition (and any site). Useful as a
    /// base to carve forbidden edges out of — escape tests forbid a
    /// single column and assert the action fires exactly there.
    pub fn allow_all(source_mechanism: &str) -> Policy {
        let mut p = Policy::empty(source_mechanism);
        p.matrix.fill(u64::MAX);
        p.origins = None;
        p.distinct_sysnos = MAX_SYSCALL_NR as u32;
        p
    }

    /// Learns a policy from one trace's records. [`PolicyError::EmptyTrace`]
    /// when there is nothing to fold.
    pub fn learn(records: &[EventRecord], source_mechanism: &str) -> Result<Policy, PolicyError> {
        if records.is_empty() {
            return Err(PolicyError::EmptyTrace);
        }
        let mut p = Policy::empty(source_mechanism);
        p.fold(records);
        Ok(p)
    }

    /// Folds another trace's records into the policy. Transitions are
    /// derived **per thread** — each tid's first event opens its chain,
    /// so interleaved threads never contribute cross-thread edges —
    /// and chains do *not* continue across `fold` calls: separate
    /// traces are separate executions.
    pub fn fold(&mut self, records: &[EventRecord]) {
        let stats = fold_transitions(records);
        for &(from, to) in stats.pairs.keys() {
            self.insert(from, to);
        }
        for (&sysno, sites) in &stats.origins {
            for &site in sites {
                self.insert_origin(sysno, site);
            }
        }
        // Count sysnos seen even when no transition involves them
        // (single-event traces) so distinct_sysnos stays honest.
        for r in records.iter().filter(|r| r.sysno < MAX_SYSCALL_NR) {
            self.seen[(r.sysno / 64) as usize] |= 1u64 << (r.sysno % 64);
        }
        let distinct: u32 = self.seen.iter().map(|w| w.count_ones()).sum();
        self.distinct_sysnos = self.distinct_sysnos.max(distinct);
        self.events_folded += records.len() as u64;
    }

    /// Allows the `from → to` transition. Out-of-range sysnos are
    /// ignored (they are never checked either).
    pub fn insert(&mut self, from: u64, to: u64) {
        if from < MAX_SYSCALL_NR && to < MAX_SYSCALL_NR {
            self.matrix[from as usize * ROW_WORDS + (to / 64) as usize] |= 1u64 << (to % 64);
        }
    }

    /// Forbids every transition *into* `to` — the surgical edit escape
    /// tests use on an [`Policy::allow_all`] base.
    pub fn forbid_into(&mut self, to: u64) {
        if to < MAX_SYSCALL_NR {
            let (word, bit) = ((to / 64) as usize, 1u64 << (to % 64));
            for row in 0..MAX_SYSCALL_NR as usize {
                self.matrix[row * ROW_WORDS + word] &= !bit;
            }
        }
    }

    /// Records `site` as a legitimate origin for `sysno`. Sites of 0
    /// (mechanism did not know the invocation site) are not stored.
    pub fn insert_origin(&mut self, sysno: u64, site: u64) {
        if sysno >= MAX_SYSCALL_NR || site == 0 {
            return;
        }
        let Some(origins) = self.origins.as_mut() else {
            return;
        };
        let total: usize = origins.values().map(Vec::len).sum();
        let sites = origins.entry(sysno).or_default();
        if let Err(at) = sites.binary_search(&site) {
            if total >= ORIGIN_SITE_CAP {
                // Overflow: origin data is no longer exhaustive, so it
                // can no longer be *enforced* — drop it wholesale.
                self.origins = None;
                return;
            }
            sites.insert(at, site);
        }
    }

    /// Is the `from → to` transition allowed? Out-of-range inputs are
    /// allowed by definition (they are not modelled).
    #[inline]
    pub fn allows(&self, from: u64, to: u64) -> bool {
        if from >= MAX_SYSCALL_NR || to >= MAX_SYSCALL_NR {
            return true;
        }
        self.matrix[from as usize * ROW_WORDS + (to / 64) as usize] & (1u64 << (to % 64)) != 0
    }

    /// Is `sysno` allowed from invocation site `site`? Unconstrained
    /// (`true`) when origin data is absent for the sysno, was dropped
    /// at the cap, or the mechanism did not attribute a site (0).
    #[inline]
    pub fn allows_origin(&self, sysno: u64, site: u64) -> bool {
        if site == 0 {
            return true;
        }
        match self.origins.as_ref().and_then(|o| o.get(&sysno)) {
            Some(sites) => sites.binary_search(&site).is_ok(),
            None => true,
        }
    }

    /// Number of allowed transitions (set bits in the matrix).
    pub fn transitions(&self) -> u64 {
        self.matrix.iter().map(|w| u64::from(w.count_ones())).sum()
    }

    /// Distinct in-range sysnos the folded traces contained.
    pub fn distinct_sysnos(&self) -> u32 {
        self.distinct_sysnos
    }

    /// Events folded into this policy.
    pub fn events_folded(&self) -> u64 {
        self.events_folded
    }

    /// Mechanism name of the first folded trace.
    pub fn source_mechanism(&self) -> &str {
        &self.source_mechanism
    }

    /// The per-sysno origin sets, when present and enforceable.
    pub fn origin_sets(&self) -> Option<&BTreeMap<u64, Vec<u64>>> {
        self.origins.as_ref()
    }

    /// Allowed successor sysnos of `from` (for `policy-dump`).
    pub fn successors(&self, from: u64) -> Vec<u64> {
        let mut out = Vec::new();
        if from >= MAX_SYSCALL_NR {
            return out;
        }
        let row = &self.matrix[from as usize * ROW_WORDS..(from as usize + 1) * ROW_WORDS];
        for (w, &word) in row.iter().enumerate() {
            let mut bits = word;
            while bits != 0 {
                out.push(w as u64 * 64 + u64::from(bits.trailing_zeros()));
                bits &= bits - 1;
            }
        }
        out
    }

    /// Encodes the policy into the `LPSFIP1` wire format.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(HEADER_SIZE + MATRIX_BYTES);
        let origin_entries = self.origins.as_ref().map_or(0, BTreeMap::len) as u32;
        let flags = if origin_entries > 0 { FLAG_ORIGINS } else { 0 };
        out.extend_from_slice(&MAGIC);
        out.extend_from_slice(&VERSION.to_le_bytes());
        out.extend_from_slice(&flags.to_le_bytes());
        out.extend_from_slice(&(MATRIX_WORDS as u32).to_le_bytes());
        out.extend_from_slice(&origin_entries.to_le_bytes());
        out.extend_from_slice(&self.events_folded.to_le_bytes());
        out.extend_from_slice(&self.distinct_sysnos.to_le_bytes());
        out.extend_from_slice(&(self.transitions() as u32).to_le_bytes());
        let mut name = [0u8; MECHANISM_FIELD];
        let bytes = self.source_mechanism.as_bytes();
        let n = bytes.len().min(MECHANISM_FIELD);
        name[..n].copy_from_slice(&bytes[..n]);
        out.extend_from_slice(&name);
        debug_assert_eq!(out.len(), HEADER_SIZE);
        for w in self.matrix.iter() {
            out.extend_from_slice(&w.to_le_bytes());
        }
        if let Some(origins) = self.origins.as_ref().filter(|o| !o.is_empty()) {
            for (&sysno, sites) in origins {
                put_varint(&mut out, sysno);
                put_varint(&mut out, sites.len() as u64);
                for &site in sites {
                    put_varint(&mut out, site);
                }
            }
        }
        out
    }

    /// Decodes a policy from the `LPSFIP1` wire format.
    pub fn decode(buf: &[u8]) -> Result<Policy, PolicyError> {
        if buf.len() < HEADER_SIZE {
            return Err(PolicyError::Truncated);
        }
        let magic: [u8; 8] = buf[0..8].try_into().unwrap();
        if magic != MAGIC {
            return Err(PolicyError::BadMagic(magic));
        }
        let u32_at = |o: usize| u32::from_le_bytes(buf[o..o + 4].try_into().unwrap());
        let version = u32_at(8);
        if version != VERSION {
            return Err(PolicyError::BadVersion(version));
        }
        let flags = u32_at(12);
        let matrix_words = u32_at(16);
        if matrix_words as usize != MATRIX_WORDS {
            return Err(PolicyError::BadMatrixSize(matrix_words));
        }
        let origin_entries = u32_at(20);
        let events_folded = u64::from_le_bytes(buf[24..32].try_into().unwrap());
        let distinct_sysnos = u32_at(32);
        let name_end = buf[40..HEADER_SIZE]
            .iter()
            .position(|&b| b == 0)
            .map_or(HEADER_SIZE, |p| 40 + p);
        let source_mechanism = String::from_utf8_lossy(&buf[40..name_end]).into_owned();

        let body = &buf[HEADER_SIZE..];
        if body.len() < MATRIX_BYTES {
            return Err(PolicyError::Truncated);
        }
        let mut matrix = vec![0u64; MATRIX_WORDS].into_boxed_slice();
        for (i, w) in matrix.iter_mut().enumerate() {
            *w = u64::from_le_bytes(body[i * 8..i * 8 + 8].try_into().unwrap());
        }

        let origins = if flags & FLAG_ORIGINS != 0 {
            let tail = &body[MATRIX_BYTES..];
            let mut pos = 0usize;
            let mut map = BTreeMap::new();
            for _ in 0..origin_entries {
                let sysno = get_varint(tail, &mut pos).ok_or(PolicyError::Truncated)?;
                let count = get_varint(tail, &mut pos).ok_or(PolicyError::Truncated)?;
                let mut sites = Vec::with_capacity(count.min(ORIGIN_SITE_CAP as u64) as usize);
                for _ in 0..count {
                    sites.push(get_varint(tail, &mut pos).ok_or(PolicyError::Truncated)?);
                }
                sites.sort_unstable();
                map.insert(sysno, sites);
            }
            Some(map)
        } else {
            None
        };

        // Reconstruct the seen-set approximation from the matrix (any
        // endpoint of an allowed edge); the header count still wins.
        let mut seen = [0u64; ROW_WORDS];
        for (row, words) in matrix.chunks_exact(ROW_WORDS).enumerate() {
            for (s, w) in seen.iter_mut().zip(words) {
                *s |= w;
            }
            if words.iter().any(|&w| w != 0) {
                seen[row / 64] |= 1u64 << (row % 64);
            }
        }
        Ok(Policy {
            matrix: matrix.try_into().unwrap(),
            origins,
            events_folded,
            distinct_sysnos,
            seen,
            source_mechanism,
        })
    }

    /// Writes the policy to `path`.
    pub fn save(&self, path: &Path) -> Result<(), PolicyError> {
        let mut f = std::fs::File::create(path)?;
        f.write_all(&self.encode())?;
        Ok(())
    }

    /// Loads a policy from `path`.
    pub fn load(path: &Path) -> Result<Policy, PolicyError> {
        let mut buf = Vec::new();
        std::fs::File::open(path)?.read_to_end(&mut buf)?;
        Policy::decode(&buf)
    }
}

/// Transition statistics of a trace — the fold shared by
/// [`Policy::learn`] and `lp-trace dump --stats`.
#[derive(Debug, Default)]
pub struct TransitionStats {
    /// Events per sysno (in-range sysnos only).
    pub per_sysno: BTreeMap<u64, u64>,
    /// Occurrences per `(from, to)` transition, folded per thread.
    pub pairs: BTreeMap<(u64, u64), u64>,
    /// Non-zero invocation sites per sysno.
    pub origins: BTreeMap<u64, Vec<u64>>,
    /// Total events inspected (including out-of-range sysnos).
    pub events: u64,
    /// Distinct recording threads.
    pub threads: u64,
}

/// Folds a trace into per-sysno counts, per-thread transition pairs,
/// and origin-site sets. Out-of-range sysnos are counted in `events`
/// but neither open nor continue a thread's transition chain — the
/// enforcement path skips them identically.
pub fn fold_transitions(records: &[EventRecord]) -> TransitionStats {
    let mut stats = TransitionStats::default();
    let mut last: BTreeMap<u32, u64> = BTreeMap::new();
    for r in records {
        stats.events += 1;
        if r.sysno >= MAX_SYSCALL_NR {
            continue;
        }
        *stats.per_sysno.entry(r.sysno).or_insert(0) += 1;
        if r.site != 0 {
            let sites = stats.origins.entry(r.sysno).or_default();
            if let Err(at) = sites.binary_search(&r.site) {
                sites.insert(at, r.site);
            }
        }
        match last.insert(r.tid, r.sysno) {
            Some(prev) => *stats.pairs.entry((prev, r.sysno)).or_insert(0) += 1,
            None => stats.threads += 1,
        }
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use syscalls::nr;

    fn rec(tid: u32, sysno: u64) -> EventRecord {
        EventRecord {
            sysno,
            tid,
            ..EventRecord::ZERO
        }
    }

    #[test]
    fn empty_trace_is_a_typed_error() {
        assert!(matches!(
            Policy::learn(&[], "sim:lazypoline"),
            Err(PolicyError::EmptyTrace)
        ));
    }

    #[test]
    fn single_syscall_trace_learns_no_transitions() {
        let p = Policy::learn(&[rec(1, nr::GETPID)], "t").unwrap();
        assert_eq!(p.transitions(), 0);
        assert_eq!(p.distinct_sysnos(), 1);
        assert_eq!(p.events_folded(), 1);
        // A repeat of the same syscall was never observed as a
        // transition, so the automaton (correctly) rejects it.
        assert!(!p.allows(nr::GETPID, nr::GETPID));
    }

    #[test]
    fn interleaved_threads_never_create_cross_thread_edges() {
        // Thread 1: read -> write. Thread 2: open -> close.
        // Interleaved in trace order so a naive global fold would
        // learn read->open, write->close, open->write.
        let records = [
            rec(1, nr::READ),
            rec(2, nr::OPEN),
            rec(1, nr::WRITE),
            rec(2, nr::CLOSE),
        ];
        let p = Policy::learn(&records, "t").unwrap();
        assert!(p.allows(nr::READ, nr::WRITE));
        assert!(p.allows(nr::OPEN, nr::CLOSE));
        assert_eq!(p.transitions(), 2, "exactly the per-thread edges");
        assert!(!p.allows(nr::READ, nr::OPEN));
        assert!(!p.allows(nr::OPEN, nr::WRITE));
        assert!(!p.allows(nr::WRITE, nr::CLOSE));
    }

    #[test]
    fn folds_do_not_chain_across_traces() {
        let mut p = Policy::learn(&[rec(1, nr::READ)], "t").unwrap();
        p.fold(&[rec(1, nr::WRITE)]);
        // Same tid in both traces, but separate executions: no edge.
        assert_eq!(p.transitions(), 0);
        assert_eq!(p.events_folded(), 2);
        assert_eq!(p.distinct_sysnos(), 2);
    }

    #[test]
    fn out_of_range_sysnos_are_counted_but_never_modelled() {
        let records = [rec(1, nr::READ), rec(1, 9999), rec(1, nr::WRITE)];
        let p = Policy::learn(&records, "t").unwrap();
        assert_eq!(p.events_folded(), 3);
        // The out-of-range event neither opens nor breaks the chain:
        // enforcement skips it identically, so read -> write is the
        // edge the enforcer will actually test.
        assert!(p.allows(nr::READ, nr::WRITE));
        assert!(p.allows(9999, nr::READ), "out of range: always allowed");
        assert!(p.allows(nr::READ, 9999));
    }

    #[test]
    fn save_load_roundtrip_preserves_everything() {
        let records = [
            rec(1, nr::READ),
            rec(1, nr::WRITE),
            rec(2, nr::OPEN),
            rec(2, nr::CLOSE),
        ];
        let mut p = Policy::learn(&records, "sim:lazypoline").unwrap();
        p.insert_origin(nr::READ, 0x401000);
        p.insert_origin(nr::READ, 0x402000);
        let dir = std::env::temp_dir().join(format!("sfip-rt-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("p.sfip");
        p.save(&path).unwrap();
        let q = Policy::load(&path).unwrap();
        std::fs::remove_dir_all(&dir).ok();
        assert_eq!(q.transitions(), p.transitions());
        assert_eq!(q.distinct_sysnos(), p.distinct_sysnos());
        assert_eq!(q.events_folded(), p.events_folded());
        assert_eq!(q.source_mechanism(), "sim:lazypoline");
        assert!(q.allows(nr::READ, nr::WRITE));
        assert!(!q.allows(nr::WRITE, nr::READ));
        assert!(q.allows_origin(nr::READ, 0x401000));
        assert!(!q.allows_origin(nr::READ, 0x999999));
        assert_eq!(q.origin_sets().unwrap()[&nr::READ].len(), 2);
    }

    #[test]
    fn load_failure_modes_are_typed() {
        assert!(matches!(
            Policy::decode(&[0u8; 10]),
            Err(PolicyError::Truncated)
        ));
        let mut bad = Policy::empty("t").encode();
        bad[0] = b'X';
        assert!(matches!(
            Policy::decode(&bad),
            Err(PolicyError::BadMagic(_))
        ));
        let mut future = Policy::empty("t").encode();
        future[8] = 99;
        assert!(matches!(
            Policy::decode(&future),
            Err(PolicyError::BadVersion(99))
        ));
        let mut geom = Policy::empty("t").encode();
        geom[16] = 7;
        assert!(matches!(
            Policy::decode(&geom),
            Err(PolicyError::BadMatrixSize(_))
        ));
        let whole = Policy::empty("t").encode();
        assert!(matches!(
            Policy::decode(&whole[..whole.len() - 8]),
            Err(PolicyError::Truncated)
        ));
    }

    #[test]
    fn allow_all_minus_forbidden_column() {
        let mut p = Policy::allow_all("t");
        assert!(p.allows(nr::READ, nr::EXECVE));
        p.forbid_into(nr::EXECVE);
        assert!(!p.allows(nr::READ, nr::EXECVE));
        assert!(!p.allows(nr::GETPID, nr::EXECVE));
        assert!(p.allows(nr::READ, nr::WRITE), "only the column is gone");
        assert!(p.allows(nr::EXECVE, nr::READ), "outgoing edges survive");
    }

    #[test]
    fn dump_stats_fold_matches_learner() {
        let records = [
            rec(1, nr::READ),
            rec(1, nr::READ),
            rec(1, nr::WRITE),
            rec(2, nr::READ),
        ];
        let s = fold_transitions(&records);
        assert_eq!(s.events, 4);
        assert_eq!(s.threads, 2);
        assert_eq!(s.per_sysno[&nr::READ], 3);
        assert_eq!(s.per_sysno[&nr::WRITE], 1);
        assert_eq!(s.pairs[&(nr::READ, nr::READ)], 1);
        assert_eq!(s.pairs[&(nr::READ, nr::WRITE)], 1);
        assert_eq!(s.pairs.len(), 2);
    }

    proptest! {
        /// The core soundness property: enforcing a policy over the
        /// very trace it was learned from yields zero violations —
        /// replayed per thread, exactly as the handler tracks state.
        #[test]
        fn learn_then_enforce_same_trace_is_clean(
            raw in proptest::collection::vec((any::<u8>(), any::<u16>()), 1..200)
        ) {
            let records: Vec<EventRecord> = raw
                .iter()
                .map(|&(tid, s)| rec(u32::from(tid % 4), u64::from(s) % 600))
                .collect();
            let p = Policy::learn(&records, "prop").unwrap();
            let mut last: std::collections::BTreeMap<u32, u64> =
                std::collections::BTreeMap::new();
            for r in &records {
                if r.sysno >= MAX_SYSCALL_NR {
                    continue;
                }
                if let Some(&prev) = last.get(&r.tid) {
                    prop_assert!(
                        p.allows(prev, r.sysno),
                        "learned trace replay violated {} -> {}",
                        prev,
                        r.sysno
                    );
                }
                last.insert(r.tid, r.sysno);
            }
        }
    }
}

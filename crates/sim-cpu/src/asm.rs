//! A small assembler with labels for the simulated ISA.
//!
//! ```rust
//! use lp_sim_cpu::asm::Asm;
//! use lp_sim_cpu::reg::Gpr;
//!
//! // for i in 0..3 { syscall(39) }
//! let code = Asm::new()
//!     .mov_ri(Gpr::R7, 3)
//!     .label("loop")
//!     .mov_ri(Gpr::R0, 39)
//!     .syscall()
//!     .sub_ri(Gpr::R7, 1)
//!     .cmp_ri(Gpr::R7, 0)
//!     .jnz("loop")
//!     .hlt()
//!     .assemble()?;
//! # Ok::<(), lp_sim_cpu::asm::AsmError>(())
//! ```

use std::collections::HashMap;

use crate::reg::{Gpr, Xmm};

/// Assembly errors (reported at [`Asm::assemble`] time).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum AsmError {
    /// A jump/call referenced a label that was never defined.
    UndefinedLabel(String),
    /// The same label was defined twice.
    DuplicateLabel(String),
    /// A relative displacement overflowed 32 bits.
    DisplacementOverflow(String),
}

impl std::fmt::Display for AsmError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AsmError::UndefinedLabel(l) => write!(f, "undefined label `{l}`"),
            AsmError::DuplicateLabel(l) => write!(f, "duplicate label `{l}`"),
            AsmError::DisplacementOverflow(l) => write!(f, "displacement to `{l}` overflows i32"),
        }
    }
}

impl std::error::Error for AsmError {}

enum Fixup {
    /// Patch 4 bytes at `at` with `label_addr - (at + 4)`.
    Rel32 { at: usize, label: String },
    /// Patch 8 bytes at `at` with `base + label_offset` (absolute).
    Abs64 { at: usize, label: String },
}

/// The assembler/builder. Methods append one instruction each and
/// return `self` for chaining.
#[derive(Default)]
pub struct Asm {
    bytes: Vec<u8>,
    labels: HashMap<String, usize>,
    fixups: Vec<Fixup>,
    error: Option<AsmError>,
}

impl std::fmt::Debug for Asm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Asm({} bytes, {} labels)", self.bytes.len(), self.labels.len())
    }
}

macro_rules! emit_r {
    ($(($fn:ident, $opc:expr, $doc:expr);)*) => {
        $(
            #[doc = $doc]
            pub fn $fn(mut self, r: Gpr) -> Asm {
                self.bytes.push($opc);
                self.bytes.push(r.index() as u8);
                self
            }
        )*
    };
}

macro_rules! emit_rr {
    ($(($fn:ident, $opc:expr, $doc:expr);)*) => {
        $(
            #[doc = $doc]
            pub fn $fn(mut self, a: Gpr, b: Gpr) -> Asm {
                self.bytes.push($opc);
                self.bytes.push(a.index() as u8);
                self.bytes.push(b.index() as u8);
                self
            }
        )*
    };
}

macro_rules! emit_ri32 {
    ($(($fn:ident, $opc:expr, $doc:expr);)*) => {
        $(
            #[doc = $doc]
            pub fn $fn(mut self, r: Gpr, imm: i32) -> Asm {
                self.bytes.push($opc);
                self.bytes.push(r.index() as u8);
                self.bytes.extend_from_slice(&imm.to_le_bytes());
                self
            }
        )*
    };
}

macro_rules! emit_jump {
    ($(($fn:ident, $opc:expr, $doc:expr);)*) => {
        $(
            #[doc = $doc]
            pub fn $fn(mut self, label: &str) -> Asm {
                self.bytes.push($opc);
                self.fixups.push(Fixup::Rel32 {
                    at: self.bytes.len(),
                    label: label.to_string(),
                });
                self.bytes.extend_from_slice(&[0; 4]);
                self
            }
        )*
    };
}

macro_rules! emit_mem {
    ($(($fn:ident, $opc:expr, $doc:expr);)*) => {
        $(
            #[doc = $doc]
            pub fn $fn(mut self, a: Gpr, b: Gpr, disp: i32) -> Asm {
                self.bytes.push($opc);
                self.bytes.push(a.index() as u8);
                self.bytes.push(b.index() as u8);
                self.bytes.extend_from_slice(&disp.to_le_bytes());
                self
            }
        )*
    };
}

impl Asm {
    /// Creates an empty program.
    pub fn new() -> Asm {
        Asm::default()
    }

    /// Defines a label at the current position.
    pub fn label(mut self, name: &str) -> Asm {
        if self
            .labels
            .insert(name.to_string(), self.bytes.len())
            .is_some()
            && self.error.is_none()
        {
            self.error = Some(AsmError::DuplicateLabel(name.to_string()));
        }
        self
    }

    /// Appends a `nop`.
    pub fn nop(mut self) -> Asm {
        self.bytes.push(0x90);
        self
    }

    /// Appends `syscall` (`0f 05`).
    pub fn syscall(mut self) -> Asm {
        self.bytes.extend_from_slice(&[0x0f, 0x05]);
        self
    }

    /// Appends `call r` (`ff d0+r`).
    pub fn call_reg(mut self, r: Gpr) -> Asm {
        self.bytes.push(0xff);
        self.bytes.push(0xd0 + r.index() as u8);
        self
    }

    /// Appends `mov r, imm64`.
    pub fn mov_ri(mut self, r: Gpr, imm: u64) -> Asm {
        self.bytes.push(0x01);
        self.bytes.push(r.index() as u8);
        self.bytes.extend_from_slice(&imm.to_le_bytes());
        self
    }

    /// Appends `mov r, &label` — the label's absolute address once the
    /// program is assembled at a base (see [`Asm::assemble_at`]).
    pub fn mov_ri_label(mut self, r: Gpr, label: &str) -> Asm {
        self.bytes.push(0x01);
        self.bytes.push(r.index() as u8);
        self.fixups.push(Fixup::Abs64 {
            at: self.bytes.len(),
            label: label.to_string(),
        });
        self.bytes.extend_from_slice(&[0; 8]);
        self
    }

    emit_rr! {
        (mov_rr, 0x02, "Appends `mov rd, rs`.");
        (add_rr, 0x06, "Appends `add rd, rs`.");
        (sub_rr, 0x08, "Appends `sub rd, rs`.");
        (cmp_rr, 0x0a, "Appends `cmp ra, rb`.");
        (mul_rr, 0x1e, "Appends `mul rd, rs`.");
    }

    emit_ri32! {
        (add_ri, 0x05, "Appends `add r, imm32`.");
        (sub_ri, 0x07, "Appends `sub r, imm32`.");
        (cmp_ri, 0x09, "Appends `cmp r, imm32`.");
        (and_ri, 0x1f, "Appends `and r, imm32`.");
    }

    emit_mem! {
        (load, 0x03, "Appends `load rd, [rs + disp]` (64-bit).");
        (store, 0x04, "Appends `store [rbase + disp], rs` (64-bit).");
        (load_b, 0x20, "Appends `loadb rd, [rs + disp]` (8-bit).");
        (store_b, 0x21, "Appends `storeb [rbase + disp], rs` (8-bit).");
    }

    emit_jump! {
        (jmp, 0x0b, "Appends `jmp label`.");
        (jz, 0x0c, "Appends `jz label`.");
        (jnz, 0x0d, "Appends `jnz label`.");
        (jl, 0x0e, "Appends `jl label`.");
        (call, 0x11, "Appends `call label`.");
    }

    emit_r! {
        (push, 0x13, "Appends `push r`.");
        (pop, 0x14, "Appends `pop r`.");
        (xsave, 0x1a, "Appends `xsave [r]` (all 16 vector regs, 256 bytes).");
        (xrstor, 0x1b, "Appends `xrstor [r]`.");
        (jmp_reg, 0x1d, "Appends `jmp r` (indirect).");
        (wrpkru, 0x22, "Appends `wrpkru r` (write-disable mask ← r).");
    }

    /// Appends `ret`.
    pub fn ret(mut self) -> Asm {
        self.bytes.push(0x12);
        self
    }

    /// Appends `hlt`.
    pub fn hlt(mut self) -> Asm {
        self.bytes.push(0x1c);
        self
    }

    /// Appends `movx x, r` (vector low lane ← GPR).
    pub fn mov_xr(mut self, x: Xmm, r: Gpr) -> Asm {
        self.bytes.extend_from_slice(&[0x15, x.0, r.index() as u8]);
        self
    }

    /// Appends `movx r, x` (GPR ← vector low lane).
    pub fn mov_rx(mut self, r: Gpr, x: Xmm) -> Asm {
        self.bytes.extend_from_slice(&[0x16, r.index() as u8, x.0]);
        self
    }

    /// Appends `movx x, imm64`.
    pub fn mov_xi(mut self, x: Xmm, imm: u64) -> Asm {
        self.bytes.push(0x17);
        self.bytes.push(x.0);
        self.bytes.extend_from_slice(&imm.to_le_bytes());
        self
    }

    /// Appends `loadx x, [r + disp]` (128-bit).
    pub fn load_x(mut self, x: Xmm, base: Gpr, disp: i32) -> Asm {
        self.bytes.push(0x18);
        self.bytes.push(x.0);
        self.bytes.push(base.index() as u8);
        self.bytes.extend_from_slice(&disp.to_le_bytes());
        self
    }

    /// Appends `storex [r + disp], x` (128-bit).
    pub fn store_x(mut self, base: Gpr, x: Xmm, disp: i32) -> Asm {
        self.bytes.push(0x19);
        self.bytes.push(base.index() as u8);
        self.bytes.push(x.0);
        self.bytes.extend_from_slice(&disp.to_le_bytes());
        self
    }

    /// Appends raw bytes (data, or hand-encoded instructions).
    pub fn raw(mut self, bytes: &[u8]) -> Asm {
        self.bytes.extend_from_slice(bytes);
        self
    }

    /// Current offset (for size assertions in tests).
    pub fn here(&self) -> usize {
        self.bytes.len()
    }

    /// Resolved offset of a label, if defined so far.
    pub fn label_offset(&self, name: &str) -> Option<usize> {
        self.labels.get(name).copied()
    }

    /// Assembles with absolute labels resolved against base address 0.
    ///
    /// # Errors
    ///
    /// See [`AsmError`].
    pub fn assemble(self) -> Result<Vec<u8>, AsmError> {
        self.assemble_at(0)
    }

    /// Assembles the program as if loaded at `base` (affects only
    /// [`Asm::mov_ri_label`] absolute fixups; jumps are relative).
    ///
    /// # Errors
    ///
    /// See [`AsmError`].
    pub fn assemble_at(mut self, base: u64) -> Result<Vec<u8>, AsmError> {
        if let Some(e) = self.error {
            return Err(e);
        }
        for fixup in &self.fixups {
            match fixup {
                Fixup::Rel32 { at, label } => {
                    let target = *self
                        .labels
                        .get(label)
                        .ok_or_else(|| AsmError::UndefinedLabel(label.clone()))?;
                    let rel = target as i64 - (*at as i64 + 4);
                    let rel32 = i32::try_from(rel)
                        .map_err(|_| AsmError::DisplacementOverflow(label.clone()))?;
                    self.bytes[*at..at + 4].copy_from_slice(&rel32.to_le_bytes());
                }
                Fixup::Abs64 { at, label } => {
                    let target = *self
                        .labels
                        .get(label)
                        .ok_or_else(|| AsmError::UndefinedLabel(label.clone()))?;
                    let abs = base + target as u64;
                    self.bytes[*at..at + 8].copy_from_slice(&abs.to_le_bytes());
                }
            }
        }
        Ok(self.bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::insn::{decode, Op};

    #[test]
    fn basic_encoding() {
        let code = Asm::new()
            .mov_ri(Gpr::R0, 39)
            .syscall()
            .hlt()
            .assemble()
            .unwrap();
        assert_eq!(code.len(), 13);
        assert_eq!(decode(&code).unwrap().op, Op::MovRI(Gpr::R0, 39));
        assert_eq!(decode(&code[10..]).unwrap().op, Op::Syscall);
        assert_eq!(decode(&code[12..]).unwrap().op, Op::Hlt);
    }

    #[test]
    fn backward_jump_resolves() {
        let code = Asm::new()
            .label("top")
            .nop()
            .jmp("top")
            .assemble()
            .unwrap();
        // jmp at offset 1, rel32 at 2..6, target 0 → rel = 0 - 6 = -6.
        assert_eq!(decode(&code[1..]).unwrap().op, Op::Jmp(-6));
    }

    #[test]
    fn forward_jump_resolves() {
        let code = Asm::new()
            .jz("end")
            .nop()
            .label("end")
            .hlt()
            .assemble()
            .unwrap();
        // jz at 0, next insn at 5, target 6 → rel 1.
        assert_eq!(decode(&code).unwrap().op, Op::Jz(1));
    }

    #[test]
    fn absolute_label_fixup_uses_base() {
        let code = Asm::new()
            .mov_ri_label(Gpr::R3, "data")
            .hlt()
            .label("data")
            .raw(&[1, 2, 3])
            .assemble_at(0x5000)
            .unwrap();
        assert_eq!(
            decode(&code).unwrap().op,
            Op::MovRI(Gpr::R3, 0x5000 + 11)
        );
    }

    #[test]
    fn errors_reported() {
        assert_eq!(
            Asm::new().jmp("nowhere").assemble(),
            Err(AsmError::UndefinedLabel("nowhere".into()))
        );
        assert_eq!(
            Asm::new().label("x").label("x").assemble(),
            Err(AsmError::DuplicateLabel("x".into()))
        );
    }

    #[test]
    fn every_emitter_produces_decodable_output() {
        let code = Asm::new()
            .nop()
            .syscall()
            .call_reg(Gpr::R0)
            .mov_ri(Gpr::R1, 7)
            .mov_rr(Gpr::R2, Gpr::R1)
            .load(Gpr::R3, Gpr::R15, 8)
            .store(Gpr::R15, Gpr::R3, 8)
            .load_b(Gpr::R4, Gpr::R15, 0)
            .store_b(Gpr::R15, Gpr::R4, 0)
            .add_ri(Gpr::R1, 1)
            .add_rr(Gpr::R1, Gpr::R2)
            .sub_ri(Gpr::R1, 1)
            .sub_rr(Gpr::R1, Gpr::R2)
            .mul_rr(Gpr::R1, Gpr::R2)
            .and_ri(Gpr::R1, -16)
            .cmp_ri(Gpr::R1, 0)
            .cmp_rr(Gpr::R1, Gpr::R2)
            .push(Gpr::R1)
            .pop(Gpr::R1)
            .mov_xr(Xmm(0), Gpr::R1)
            .mov_rx(Gpr::R1, Xmm(0))
            .mov_xi(Xmm(1), 42)
            .load_x(Xmm(2), Gpr::R15, 0)
            .store_x(Gpr::R15, Xmm(2), 0)
            .xsave(Gpr::R14)
            .xrstor(Gpr::R14)
            .jmp_reg(Gpr::R9)
            .ret()
            .hlt()
            .assemble()
            .unwrap();
        // The whole buffer must decode cleanly with no resync.
        let mut pos = 0;
        let mut count = 0;
        while pos < code.len() {
            let i = decode(&code[pos..]).unwrap_or_else(|e| panic!("at {pos}: {e}"));
            pos += i.len as usize;
            count += 1;
        }
        assert_eq!(count, 29);
    }
}

//! The cycle cost model.
//!
//! User-mode instruction costs live here; kernel-side costs (syscall
//! entry, SUD selector check, signal delivery, context switches) live
//! in the simulated kernel's own cost table — matching where the time
//! is spent on real hardware.
//!
//! Absolute values are loosely calibrated so the *ratios* of the
//! microbenchmark (Table II) land near the paper's: a bare kernel
//! round trip is a few hundred cycles, `xsave`/`xrstor` cost ~100
//! cycles each, and ALU work is single-cycle. EXPERIMENTS.md records
//! the calibration.

use crate::insn::Op;

/// Per-instruction-class cycle costs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CostModel {
    /// `nop` and register-to-register moves.
    pub nop: u64,
    /// ALU (add/sub/mul/and/cmp).
    pub alu: u64,
    /// 64-bit and 8-bit loads/stores, push/pop.
    pub mem: u64,
    /// Vector register moves.
    pub vec: u64,
    /// 128-bit vector loads/stores.
    pub vec_mem: u64,
    /// Full vector-state save (`xsave`).
    pub xsave: u64,
    /// Full vector-state restore (`xrstor`).
    pub xrstor: u64,
    /// Taken or not-taken branches and indirect jumps.
    pub branch: u64,
    /// Calls.
    pub call: u64,
    /// Returns.
    pub ret: u64,
    /// User-mode share of a `syscall` instruction (the kernel adds its
    /// own entry/exit cost).
    pub syscall_user: u64,
    /// Protection-key switch (`wrpkru`, ~20 cycles on real MPK
    /// hardware — the cheapness that makes per-dispatch selector
    /// protection viable, paper §VI).
    pub wrpkru: u64,
}

impl Default for CostModel {
    fn default() -> CostModel {
        CostModel {
            nop: 1,
            alu: 1,
            mem: 3,
            vec: 2,
            vec_mem: 4,
            xsave: 100,
            xrstor: 100,
            branch: 2,
            call: 4,
            ret: 4,
            syscall_user: 2,
            wrpkru: 20,
        }
    }
}

impl CostModel {
    /// Cycles for one executed operation (user-mode share).
    pub fn of(&self, op: &Op) -> u64 {
        use Op::*;
        match op {
            Nop | Hlt => self.nop,
            MovRI(..) | MovRR(..) => self.nop,
            AddRI(..) | AddRR(..) | SubRI(..) | SubRR(..) | MulRR(..) | AndRI(..)
            | CmpRI(..) | CmpRR(..) => self.alu,
            Load(..) | Store(..) | LoadB(..) | StoreB(..) | Push(..) | Pop(..) => self.mem,
            MovXR(..) | MovRX(..) | MovXI(..) => self.vec,
            LoadX(..) | StoreX(..) => self.vec_mem,
            Xsave(..) => self.xsave,
            Xrstor(..) => self.xrstor,
            Jmp(..) | Jz(..) | Jnz(..) | Jl(..) | JmpReg(..) => self.branch,
            Call(..) | CallReg(..) => self.call,
            Ret => self.ret,
            Syscall => self.syscall_user,
            Wrpkru(..) => self.wrpkru,
        }
    }
}

//! The simulated ISA: encoding, decoding, and linear-sweep scanning.
//!
//! The ISA is variable-length by design, and two encodings are copied
//! verbatim from x86-64 because the entire rewriting technique depends
//! on them (paper §II-B):
//!
//! * `SYSCALL` = `0f 05` (2 bytes),
//! * `CALL r`  = `ff d0+r` (2 bytes) — same length, so a syscall site
//!   can be patched in place.
//!
//! Immediate operands can contain arbitrary bytes — including `0f 05`
//! — which gives the linear-sweep scanner the same false-positive/
//! desynchronization hazards as real static disassembly.

use crate::reg::{Gpr, RegSet, Xmm};

/// One decoded operation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Op {
    /// No operation.
    Nop,
    /// Trap into the kernel (`0f 05`).
    Syscall,
    /// Indirect call through a GPR (`ff d0+r`) — pushes the return
    /// address and jumps to the register value.
    CallReg(Gpr),
    /// `r ← imm64`.
    MovRI(Gpr, u64),
    /// `rd ← rs`.
    MovRR(Gpr, Gpr),
    /// `rd ← mem64[rs + disp]`.
    Load(Gpr, Gpr, i32),
    /// `mem64[rbase + disp] ← rs`.
    Store(Gpr, Gpr, i32),
    /// `rd ← mem8[rs + disp]` (zero-extended).
    LoadB(Gpr, Gpr, i32),
    /// `mem8[rbase + disp] ← low byte of rs`.
    StoreB(Gpr, Gpr, i32),
    /// `r ← r + imm32` (sign-extended).
    AddRI(Gpr, i32),
    /// `rd ← rd + rs`.
    AddRR(Gpr, Gpr),
    /// `r ← r - imm32`.
    SubRI(Gpr, i32),
    /// `rd ← rd - rs`.
    SubRR(Gpr, Gpr),
    /// `rd ← rd * rs`.
    MulRR(Gpr, Gpr),
    /// `r ← r & imm32` (sign-extended mask).
    AndRI(Gpr, i32),
    /// Compare `r` with imm32: sets ZF/LF.
    CmpRI(Gpr, i32),
    /// Compare `ra` with `rb`: sets ZF/LF.
    CmpRR(Gpr, Gpr),
    /// Unconditional relative jump (offset from next insn).
    Jmp(i32),
    /// Jump if ZF.
    Jz(i32),
    /// Jump if !ZF.
    Jnz(i32),
    /// Jump if LF (last compare was less-than).
    Jl(i32),
    /// Relative call: push return address, jump.
    Call(i32),
    /// Pop return address and jump to it.
    Ret,
    /// Push a GPR.
    Push(Gpr),
    /// Pop into a GPR.
    Pop(Gpr),
    /// Vector: `x.low ← r` (high lane zeroed).
    MovXR(Xmm, Gpr),
    /// Vector: `r ← x.low`.
    MovRX(Gpr, Xmm),
    /// Vector: `x ← imm64` in low lane.
    MovXI(Xmm, u64),
    /// Vector load: `x ← mem128[r + disp]`.
    LoadX(Xmm, Gpr, i32),
    /// Vector store: `mem128[r + disp] ← x`.
    StoreX(Gpr, Xmm, i32),
    /// Save all 16 vector registers to `mem[r ..]` (256 bytes).
    Xsave(Gpr),
    /// Restore all 16 vector registers from `mem[r ..]`.
    Xrstor(Gpr),
    /// Indirect jump through a GPR.
    JmpReg(Gpr),
    /// Stop the machine.
    Hlt,
    /// Load the MPK write-disable mask from a GPR (`wrpkru`-style
    /// user-mode protection-key switch; see `mem::Memory::set_pkru_wd`).
    Wrpkru(Gpr),
}

/// A decoded instruction with its encoded length.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Insn {
    /// The operation.
    pub op: Op,
    /// Encoded length in bytes.
    pub len: u64,
}

/// Encoding errors.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DecodeError {
    /// First byte is not a known opcode.
    InvalidOpcode(u8),
    /// The buffer ends inside the instruction.
    Truncated,
    /// A register field exceeds 15.
    BadRegister(u8),
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::InvalidOpcode(b) => write!(f, "invalid opcode {b:#04x}"),
            DecodeError::Truncated => write!(f, "truncated instruction"),
            DecodeError::BadRegister(r) => write!(f, "bad register field {r}"),
        }
    }
}

impl std::error::Error for DecodeError {}

fn gpr(b: u8) -> Result<Gpr, DecodeError> {
    if b < 16 {
        Ok(Gpr::from_index(b as usize))
    } else {
        Err(DecodeError::BadRegister(b))
    }
}

fn xmm(b: u8) -> Result<Xmm, DecodeError> {
    if b < 16 {
        Ok(Xmm(b))
    } else {
        Err(DecodeError::BadRegister(b))
    }
}

fn imm32(bytes: &[u8], at: usize) -> Result<i32, DecodeError> {
    let s: [u8; 4] = bytes
        .get(at..at + 4)
        .ok_or(DecodeError::Truncated)?
        .try_into()
        .unwrap();
    Ok(i32::from_le_bytes(s))
}

fn imm64(bytes: &[u8], at: usize) -> Result<u64, DecodeError> {
    let s: [u8; 8] = bytes
        .get(at..at + 8)
        .ok_or(DecodeError::Truncated)?
        .try_into()
        .unwrap();
    Ok(u64::from_le_bytes(s))
}

/// Decodes the instruction at the start of `bytes`.
///
/// # Errors
///
/// See [`DecodeError`].
pub fn decode(bytes: &[u8]) -> Result<Insn, DecodeError> {
    let op0 = *bytes.first().ok_or(DecodeError::Truncated)?;
    let b = |i: usize| -> Result<u8, DecodeError> {
        bytes.get(i).copied().ok_or(DecodeError::Truncated)
    };
    let insn = match op0 {
        0x90 => Insn { op: Op::Nop, len: 1 },
        0x0f => {
            if b(1)? == 0x05 {
                Insn {
                    op: Op::Syscall,
                    len: 2,
                }
            } else {
                return Err(DecodeError::InvalidOpcode(0x0f));
            }
        }
        0xff => {
            let m = b(1)?;
            if (0xd0..0xe0).contains(&m) {
                Insn {
                    op: Op::CallReg(gpr(m - 0xd0)?),
                    len: 2,
                }
            } else {
                return Err(DecodeError::InvalidOpcode(0xff));
            }
        }
        0x01 => Insn {
            op: Op::MovRI(gpr(b(1)?)?, imm64(bytes, 2)?),
            len: 10,
        },
        0x02 => Insn {
            op: Op::MovRR(gpr(b(1)?)?, gpr(b(2)?)?),
            len: 3,
        },
        0x03 => Insn {
            op: Op::Load(gpr(b(1)?)?, gpr(b(2)?)?, imm32(bytes, 3)?),
            len: 7,
        },
        0x04 => Insn {
            op: Op::Store(gpr(b(1)?)?, gpr(b(2)?)?, imm32(bytes, 3)?),
            len: 7,
        },
        0x05 => Insn {
            op: Op::AddRI(gpr(b(1)?)?, imm32(bytes, 2)?),
            len: 6,
        },
        0x06 => Insn {
            op: Op::AddRR(gpr(b(1)?)?, gpr(b(2)?)?),
            len: 3,
        },
        0x07 => Insn {
            op: Op::SubRI(gpr(b(1)?)?, imm32(bytes, 2)?),
            len: 6,
        },
        0x08 => Insn {
            op: Op::SubRR(gpr(b(1)?)?, gpr(b(2)?)?),
            len: 3,
        },
        0x09 => Insn {
            op: Op::CmpRI(gpr(b(1)?)?, imm32(bytes, 2)?),
            len: 6,
        },
        0x0a => Insn {
            op: Op::CmpRR(gpr(b(1)?)?, gpr(b(2)?)?),
            len: 3,
        },
        0x0b => Insn {
            op: Op::Jmp(imm32(bytes, 1)?),
            len: 5,
        },
        0x0c => Insn {
            op: Op::Jz(imm32(bytes, 1)?),
            len: 5,
        },
        0x0d => Insn {
            op: Op::Jnz(imm32(bytes, 1)?),
            len: 5,
        },
        0x0e => Insn {
            op: Op::Jl(imm32(bytes, 1)?),
            len: 5,
        },
        0x11 => Insn {
            op: Op::Call(imm32(bytes, 1)?),
            len: 5,
        },
        0x12 => Insn { op: Op::Ret, len: 1 },
        0x13 => Insn {
            op: Op::Push(gpr(b(1)?)?),
            len: 2,
        },
        0x14 => Insn {
            op: Op::Pop(gpr(b(1)?)?),
            len: 2,
        },
        0x15 => Insn {
            op: Op::MovXR(xmm(b(1)?)?, gpr(b(2)?)?),
            len: 3,
        },
        0x16 => Insn {
            op: Op::MovRX(gpr(b(1)?)?, xmm(b(2)?)?),
            len: 3,
        },
        0x17 => Insn {
            op: Op::MovXI(xmm(b(1)?)?, imm64(bytes, 2)?),
            len: 10,
        },
        0x18 => Insn {
            op: Op::LoadX(xmm(b(1)?)?, gpr(b(2)?)?, imm32(bytes, 3)?),
            len: 7,
        },
        0x19 => Insn {
            op: Op::StoreX(gpr(b(1)?)?, xmm(b(2)?)?, imm32(bytes, 3)?),
            len: 7,
        },
        0x1a => Insn {
            op: Op::Xsave(gpr(b(1)?)?),
            len: 2,
        },
        0x1b => Insn {
            op: Op::Xrstor(gpr(b(1)?)?),
            len: 2,
        },
        0x1d => Insn {
            op: Op::JmpReg(gpr(b(1)?)?),
            len: 2,
        },
        0x1e => Insn {
            op: Op::MulRR(gpr(b(1)?)?, gpr(b(2)?)?),
            len: 3,
        },
        0x1f => Insn {
            op: Op::AndRI(gpr(b(1)?)?, imm32(bytes, 2)?),
            len: 6,
        },
        0x20 => Insn {
            op: Op::LoadB(gpr(b(1)?)?, gpr(b(2)?)?, imm32(bytes, 3)?),
            len: 7,
        },
        0x21 => Insn {
            op: Op::StoreB(gpr(b(1)?)?, gpr(b(2)?)?, imm32(bytes, 3)?),
            len: 7,
        },
        0x1c => Insn { op: Op::Hlt, len: 1 },
        0x22 => Insn {
            op: Op::Wrpkru(gpr(b(1)?)?),
            len: 2,
        },
        other => return Err(DecodeError::InvalidOpcode(other)),
    };
    Ok(insn)
}

impl Op {
    /// Registers this operation reads (architectural sources, including
    /// address bases), for the Pin-like analysis.
    pub fn reads(&self) -> RegSet {
        use Op::*;
        let s = RegSet::EMPTY;
        match *self {
            Nop | Hlt | Jmp(_) | Jz(_) | Jnz(_) | Jl(_) | Call(_) | MovRI(..) | MovXI(..) => s,
            Syscall => {
                // Kernel convention: number + six argument registers.
                s.with_gpr(Gpr::R0)
                    .with_gpr(Gpr::R1)
                    .with_gpr(Gpr::R2)
                    .with_gpr(Gpr::R3)
                    .with_gpr(Gpr::R4)
                    .with_gpr(Gpr::R5)
                    .with_gpr(Gpr::R6)
            }
            CallReg(r) | JmpReg(r) | Push(r) => s.with_gpr(r).with_gpr(Gpr::SP),
            Pop(_) | Ret => s.with_gpr(Gpr::SP),
            MovRR(_, src) => s.with_gpr(src),
            Load(_, base, _) | LoadB(_, base, _) => s.with_gpr(base),
            Store(base, src, _) | StoreB(base, src, _) => s.with_gpr(base).with_gpr(src),
            AddRI(r, _) | SubRI(r, _) | AndRI(r, _) | CmpRI(r, _) => s.with_gpr(r),
            AddRR(d, src) | SubRR(d, src) | MulRR(d, src) => s.with_gpr(d).with_gpr(src),
            CmpRR(a, b2) => s.with_gpr(a).with_gpr(b2),
            MovXR(_, r) => s.with_gpr(r),
            MovRX(_, x) => s.with_xmm(x),
            LoadX(_, base, _) => s.with_gpr(base),
            StoreX(base, x, _) => s.with_gpr(base).with_xmm(x),
            Xsave(base) => {
                let mut s = s.with_gpr(base);
                for i in 0..16 {
                    s = s.with_xmm(Xmm(i));
                }
                s
            }
            Xrstor(base) => s.with_gpr(base),
            Wrpkru(r) => s.with_gpr(r),
        }
    }

    /// Registers this operation writes.
    pub fn writes(&self) -> RegSet {
        use Op::*;
        let s = RegSet::EMPTY;
        match *self {
            Nop | Hlt | Jmp(_) | Jz(_) | Jnz(_) | Jl(_) | JmpReg(_) | CmpRI(..) | CmpRR(..)
            | Store(..) | StoreB(..) | StoreX(..) | Xsave(_) | Wrpkru(_) => s,
            // Kernel convention (mirrors x86-64): the return value lands
            // in r0; nothing else is architecturally clobbered.
            Syscall => s.with_gpr(Gpr::R0),
            CallReg(_) | Call(_) | Push(_) => s.with_gpr(Gpr::SP),
            Ret => s.with_gpr(Gpr::SP),
            Pop(r) => s.with_gpr(r).with_gpr(Gpr::SP),
            MovRI(r, _) | MovRR(r, _) | MovRX(r, _) | Load(r, ..) | LoadB(r, ..) => s.with_gpr(r),
            AddRI(r, _) | SubRI(r, _) | AndRI(r, _) => s.with_gpr(r),
            AddRR(d, _) | SubRR(d, _) | MulRR(d, _) => s.with_gpr(d),
            MovXR(x, _) | MovXI(x, _) | LoadX(x, ..) => s.with_xmm(x),
            Xrstor(_) => {
                let mut s = s;
                for i in 0..16 {
                    s = s.with_xmm(Xmm(i));
                }
                s
            }
        }
    }
}

/// Linear-sweep scan: yields `(offset, Result<Insn>)`; undecodable
/// bytes advance by one (resynchronization), mirroring how real static
/// rewriters degrade.
pub fn sweep(bytes: &[u8]) -> impl Iterator<Item = (usize, Result<Insn, DecodeError>)> + '_ {
    let mut pos = 0usize;
    std::iter::from_fn(move || {
        if pos >= bytes.len() {
            return None;
        }
        let at = pos;
        let r = decode(&bytes[pos..]);
        pos += match &r {
            Ok(i) => i.len as usize,
            Err(_) => 1,
        };
        Some((at, r))
    })
}

/// Finds the offsets of `SYSCALL` instructions at decoded boundaries —
/// the static identification step of a zpoline-style rewriter, with
/// its characteristic blindness to data bytes that happen to contain
/// `0f 05` inside immediates.
pub fn find_syscall_offsets(bytes: &[u8]) -> Vec<usize> {
    sweep(bytes)
        .filter_map(|(off, r)| match r {
            Ok(Insn {
                op: Op::Syscall, ..
            }) => Some(off),
            _ => None,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_encodings_match_x86() {
        assert_eq!(
            decode(&[0x0f, 0x05]).unwrap(),
            Insn {
                op: Op::Syscall,
                len: 2
            }
        );
        assert_eq!(
            decode(&[0xff, 0xd0]).unwrap(),
            Insn {
                op: Op::CallReg(Gpr::R0),
                len: 2
            }
        );
        assert_eq!(
            decode(&[0xff, 0xd5]).unwrap().op,
            Op::CallReg(Gpr::R5)
        );
        assert_eq!(decode(&[0x90]).unwrap().op, Op::Nop);
    }

    #[test]
    fn imm_decoding() {
        let mut b = vec![0x01, 3];
        b.extend_from_slice(&0xdead_beef_u64.to_le_bytes());
        assert_eq!(
            decode(&b).unwrap().op,
            Op::MovRI(Gpr::R3, 0xdead_beef)
        );
        let mut b = vec![0x05, 2];
        b.extend_from_slice(&(-7i32).to_le_bytes());
        assert_eq!(decode(&b).unwrap().op, Op::AddRI(Gpr::R2, -7));
    }

    #[test]
    fn errors() {
        assert_eq!(decode(&[]), Err(DecodeError::Truncated));
        assert_eq!(decode(&[0x01, 3]), Err(DecodeError::Truncated));
        assert_eq!(decode(&[0x42]), Err(DecodeError::InvalidOpcode(0x42)));
        assert_eq!(decode(&[0x02, 99, 0]), Err(DecodeError::BadRegister(99)));
        assert_eq!(decode(&[0x0f, 0x06]), Err(DecodeError::InvalidOpcode(0x0f)));
        assert_eq!(decode(&[0xff, 0xc0]), Err(DecodeError::InvalidOpcode(0xff)));
    }

    #[test]
    fn syscall_reads_args_writes_ret() {
        let r = Op::Syscall.reads();
        for i in 0..7 {
            assert!(r.has_gpr(Gpr::from_index(i)));
        }
        assert!(!r.has_gpr(Gpr::R7));
        assert!(Op::Syscall.writes().has_gpr(Gpr::R0));
    }

    #[test]
    fn vector_ops_touch_xmm() {
        assert!(Op::MovXI(Xmm(3), 1).writes().has_xmm(Xmm(3)));
        assert!(Op::StoreX(Gpr::R1, Xmm(4), 0).reads().has_xmm(Xmm(4)));
        assert!(Op::Xsave(Gpr::R1).reads().has_xmm(Xmm(15)));
        assert!(Op::Xrstor(Gpr::R1).writes().has_xmm(Xmm(0)));
    }

    #[test]
    fn sweep_finds_boundary_syscalls_only() {
        // MovRI r0, imm containing 0f 05 bytes, then a real syscall.
        let mut code = vec![0x01, 0];
        code.extend_from_slice(&u64::from_le_bytes([0x0f, 0x05, 0, 0, 0, 0, 0, 0]).to_le_bytes());
        code.extend_from_slice(&[0x0f, 0x05]); // real syscall at 10
        code.push(0x1c); // hlt
        assert_eq!(find_syscall_offsets(&code), vec![10]);
    }

    #[test]
    fn sweep_desynchronizes_on_data_in_text() {
        // A raw data byte (invalid opcode) followed by a syscall: the
        // sweep resyncs and still finds it; but data bytes that *look*
        // like instruction starts can swallow a following syscall —
        // demonstrate the hazard with 0x01 (MovRI) eating 9 bytes.
        let mut code = vec![0x01]; // looks like MovRI, consumes 9 more
        code.extend_from_slice(&[0x00; 7]);
        code.extend_from_slice(&[0x0f, 0x05]); // swallowed!
        let found = find_syscall_offsets(&code);
        assert!(found.is_empty(), "hazard did not manifest: {found:?}");
    }

    #[test]
    fn all_ops_roundtrip_reads_writes_without_panic() {
        // Smoke-test every decodable first byte for reads()/writes().
        for b0 in 0u8..=255 {
            let buf = [b0, 0x05, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0];
            if let Ok(i) = decode(&buf) {
                let _ = i.op.reads();
                let _ = i.op.writes();
                assert!(i.len >= 1);
            }
        }
    }
}

//! A deterministic simulated CPU for interposition experiments.
//!
//! Several of the paper's baselines cannot be measured faithfully on
//! the host (ptrace needs a second process and scheduler control;
//! Intel Pin is proprietary; seccomp filters cannot be uninstalled
//! between benchmark configurations). This crate provides the
//! substrate those experiments run on instead: a small machine with
//!
//! * sixteen 64-bit general-purpose registers and sixteen 128-bit
//!   vector registers ([`reg`]),
//! * paged memory with R/W/X permissions ([`mem`]),
//! * a **variable-length ISA** ([`insn`]) that deliberately shares the
//!   two encodings the rewriting trick depends on with x86-64: the
//!   2-byte `SYSCALL` (`0f 05`) and 2-byte `CALL r0` (`ff d0`) — so a
//!   zpoline-style rewriter works (and mis-disassembles!) exactly as
//!   on real hardware,
//! * an assembler with labels ([`asm`]),
//! * a linear-sweep disassembler with the same data-vs-code blindness
//!   real static rewriters suffer ([`insn::sweep`]),
//! * an execution engine with cycle accounting and per-instruction
//!   register read/write tracing for the Pin-like analysis
//!   ([`machine`], [`cost`]).
//!
//! The machine is single-ISA, little-endian, and completely
//! deterministic: identical programs produce identical cycle counts.
//!
//! # Example
//!
//! ```rust
//! use lp_sim_cpu::asm::Asm;
//! use lp_sim_cpu::machine::{Event, Machine};
//! use lp_sim_cpu::reg::Gpr;
//!
//! let code = Asm::new()
//!     .mov_ri(Gpr::R0, 39) // "getpid"
//!     .syscall()
//!     .hlt()
//!     .assemble()?;
//! let mut m = Machine::new();
//! m.load_code(0x1000, &code)?;
//! assert!(matches!(m.run()?, Event::Syscall));
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod asm;
pub mod cost;
pub mod insn;
pub mod machine;
pub mod mem;
pub mod reg;

pub use asm::Asm;
pub use cost::CostModel;
pub use insn::{decode, sweep, Insn, Op};
pub use machine::{Event, Fault, Machine};
pub use mem::{Memory, Perms, PAGE_SIZE};
pub use reg::{Gpr, RegSet, Xmm};

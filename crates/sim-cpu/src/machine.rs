//! The execution engine.

use crate::cost::CostModel;
use crate::insn::{decode, DecodeError, Op};
use crate::mem::{MemFault, Memory, Perms};
use crate::reg::{Gpr, RegSet, Xmm};

/// Why execution paused.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Event {
    /// A `SYSCALL` instruction executed; `rip` points *after* it and
    /// the kernel should service [`Machine::syscall_args`].
    Syscall,
    /// A `HLT` instruction executed.
    Halt,
}

/// Why execution failed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Fault {
    /// A memory access faulted.
    Mem(MemFault),
    /// Instruction decode failed at `addr`.
    Decode {
        /// Address of the undecodable instruction.
        addr: u64,
        /// The underlying decode error.
        err: DecodeError,
    },
    /// The fuel limit passed to [`Machine::run_fuel`] was exhausted.
    FuelExhausted,
}

impl std::fmt::Display for Fault {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Fault::Mem(m) => write!(f, "memory fault: {m}"),
            Fault::Decode { addr, err } => write!(f, "decode fault at {addr:#x}: {err}"),
            Fault::FuelExhausted => write!(f, "fuel exhausted"),
        }
    }
}

impl std::error::Error for Fault {}

impl From<MemFault> for Fault {
    fn from(m: MemFault) -> Fault {
        Fault::Mem(m)
    }
}

/// One executed instruction, as seen by a trace hook.
#[derive(Clone, Copy, Debug)]
pub struct TraceRecord {
    /// Address of the instruction.
    pub rip: u64,
    /// The operation.
    pub op: Op,
    /// Architectural register sources.
    pub reads: RegSet,
    /// Architectural register destinations.
    pub writes: RegSet,
}

/// Per-instruction observation hook (the Pin-like instrumentation
/// attachment point).
pub type TraceHook = Box<dyn FnMut(&TraceRecord)>;

/// The simulated CPU.
pub struct Machine {
    gpr: [u64; 16],
    xmm: [u128; 16],
    rip: u64,
    zf: bool,
    lf: bool,
    /// The machine's memory (public: the kernel manipulates it
    /// directly, e.g. to build signal frames).
    pub mem: Memory,
    cycles: u64,
    retired: u64,
    cost: CostModel,
    hook: Option<TraceHook>,
}

impl std::fmt::Debug for Machine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "Machine(rip={:#x}, cycles={}, retired={})",
            self.rip, self.cycles, self.retired
        )
    }
}

impl Default for Machine {
    fn default() -> Machine {
        Machine::new()
    }
}

impl Machine {
    /// A fresh machine: zeroed registers, empty memory.
    pub fn new() -> Machine {
        Machine {
            gpr: [0; 16],
            xmm: [0; 16],
            rip: 0,
            zf: false,
            lf: false,
            mem: Memory::new(),
            cycles: 0,
            retired: 0,
            cost: CostModel::default(),
            hook: None,
        }
    }

    /// Replaces the cost model.
    pub fn set_cost_model(&mut self, cost: CostModel) {
        self.cost = cost;
    }

    /// Attaches a per-instruction trace hook (replacing any previous).
    pub fn set_trace_hook(&mut self, hook: TraceHook) {
        self.hook = Some(hook);
    }

    /// Removes the trace hook.
    pub fn clear_trace_hook(&mut self) {
        self.hook = None;
    }

    /// Maps a code page at `addr` (page-aligned region sized for
    /// `code`), copies the program, marks it `r-x`, and points `rip`
    /// at it.
    ///
    /// # Errors
    ///
    /// Propagates mapping faults.
    pub fn load_code(&mut self, addr: u64, code: &[u8]) -> Result<(), Fault> {
        self.mem.map(addr, code.len().max(1) as u64, Perms::RW);
        self.mem.write(addr, code)?;
        self.mem
            .protect(addr, code.len().max(1) as u64, Perms::RX)?;
        self.rip = addr;
        Ok(())
    }

    /// Maps a stack of `len` bytes ending at `top` (exclusive) and
    /// points the stack pointer at `top`.
    pub fn setup_stack(&mut self, top: u64, len: u64) {
        self.mem.map(top - len, len, Perms::RW);
        self.gpr[Gpr::SP.index()] = top;
    }

    /// Reads a GPR.
    pub fn gpr(&self, r: Gpr) -> u64 {
        self.gpr[r.index()]
    }

    /// Writes a GPR.
    pub fn set_gpr(&mut self, r: Gpr, v: u64) {
        self.gpr[r.index()] = v;
    }

    /// Reads a vector register.
    pub fn xmm(&self, x: Xmm) -> u128 {
        self.xmm[x.index()]
    }

    /// Writes a vector register.
    pub fn set_xmm(&mut self, x: Xmm, v: u128) {
        self.xmm[x.index()] = v;
    }

    /// The instruction pointer.
    pub fn rip(&self) -> u64 {
        self.rip
    }

    /// Redirects execution (the kernel uses this to deliver signals
    /// and the SUD slow path uses it to re-execute rewritten sites).
    pub fn set_rip(&mut self, rip: u64) {
        self.rip = rip;
    }

    /// Cycles consumed so far (user + kernel charges).
    pub fn cycles(&self) -> u64 {
        self.cycles
    }

    /// Instructions retired so far.
    pub fn retired(&self) -> u64 {
        self.retired
    }

    /// Charges kernel-side cycles (syscall entry, signal delivery, …).
    pub fn add_cycles(&mut self, cycles: u64) {
        self.cycles += cycles;
    }

    /// The condition flags `(zero, less-than)` — saved/restored by the
    /// simulated kernel across signal delivery.
    pub fn flags(&self) -> (bool, bool) {
        (self.zf, self.lf)
    }

    /// Restores the condition flags.
    pub fn set_flags(&mut self, zf: bool, lf: bool) {
        self.zf = zf;
        self.lf = lf;
    }

    /// The pending syscall as `(number, args)` — valid when the last
    /// event was [`Event::Syscall`].
    pub fn syscall_args(&self) -> (u64, [u64; 6]) {
        (
            self.gpr[0],
            [
                self.gpr[1], self.gpr[2], self.gpr[3], self.gpr[4], self.gpr[5], self.gpr[6],
            ],
        )
    }

    /// Delivers a syscall return value (into `r0`).
    pub fn set_syscall_ret(&mut self, v: u64) {
        self.gpr[0] = v;
    }

    /// Executes one instruction.
    ///
    /// # Errors
    ///
    /// Returns a [`Fault`] on decode or memory errors; the machine
    /// state is left at the faulting instruction.
    pub fn step(&mut self) -> Result<Option<Event>, Fault> {
        // Fetch up to the longest encoding, tolerating shorter reads at
        // page boundaries.
        let mut buf = [0u8; 10];
        let mut have = 0;
        for i in 0..buf.len() as u64 {
            let mut b = [0u8; 1];
            match self.mem.fetch(self.rip + i, &mut b) {
                Ok(()) => {
                    buf[i as usize] = b[0];
                    have += 1;
                }
                Err(e) if i == 0 => return Err(e.into()),
                Err(_) => break,
            }
        }
        let insn = decode(&buf[..have]).map_err(|err| Fault::Decode {
            addr: self.rip,
            err,
        })?;

        if let Some(hook) = self.hook.as_mut() {
            hook(&TraceRecord {
                rip: self.rip,
                op: insn.op,
                reads: insn.op.reads(),
                writes: insn.op.writes(),
            });
        }

        self.cycles += self.cost.of(&insn.op);
        self.retired += 1;
        let next = self.rip + insn.len;

        use Op::*;
        match insn.op {
            Nop => self.rip = next,
            Hlt => {
                self.rip = next;
                return Ok(Some(Event::Halt));
            }
            Syscall => {
                self.rip = next;
                return Ok(Some(Event::Syscall));
            }
            MovRI(r, imm) => {
                self.gpr[r.index()] = imm;
                self.rip = next;
            }
            MovRR(d, s) => {
                self.gpr[d.index()] = self.gpr[s.index()];
                self.rip = next;
            }
            Load(d, base, disp) => {
                let addr = self.gpr[base.index()].wrapping_add_signed(disp as i64);
                self.gpr[d.index()] = self.mem.read_u64(addr)?;
                self.rip = next;
            }
            Store(base, s, disp) => {
                let addr = self.gpr[base.index()].wrapping_add_signed(disp as i64);
                self.mem.write_u64(addr, self.gpr[s.index()])?;
                self.rip = next;
            }
            LoadB(d, base, disp) => {
                let addr = self.gpr[base.index()].wrapping_add_signed(disp as i64);
                let mut b = [0u8; 1];
                self.mem.read(addr, &mut b)?;
                self.gpr[d.index()] = b[0] as u64;
                self.rip = next;
            }
            StoreB(base, s, disp) => {
                let addr = self.gpr[base.index()].wrapping_add_signed(disp as i64);
                self.mem.write(addr, &[self.gpr[s.index()] as u8])?;
                self.rip = next;
            }
            AddRI(r, imm) => {
                self.gpr[r.index()] = self.gpr[r.index()].wrapping_add_signed(imm as i64);
                self.rip = next;
            }
            AddRR(d, s) => {
                self.gpr[d.index()] = self.gpr[d.index()].wrapping_add(self.gpr[s.index()]);
                self.rip = next;
            }
            SubRI(r, imm) => {
                self.gpr[r.index()] = self.gpr[r.index()].wrapping_sub(imm as i64 as u64);
                self.rip = next;
            }
            SubRR(d, s) => {
                self.gpr[d.index()] = self.gpr[d.index()].wrapping_sub(self.gpr[s.index()]);
                self.rip = next;
            }
            MulRR(d, s) => {
                self.gpr[d.index()] = self.gpr[d.index()].wrapping_mul(self.gpr[s.index()]);
                self.rip = next;
            }
            AndRI(r, imm) => {
                self.gpr[r.index()] &= imm as i64 as u64;
                self.rip = next;
            }
            CmpRI(r, imm) => {
                let a = self.gpr[r.index()] as i64;
                let b = imm as i64;
                self.zf = a == b;
                self.lf = a < b;
                self.rip = next;
            }
            CmpRR(ra, rb) => {
                let a = self.gpr[ra.index()] as i64;
                let b = self.gpr[rb.index()] as i64;
                self.zf = a == b;
                self.lf = a < b;
                self.rip = next;
            }
            Jmp(rel) => self.rip = next.wrapping_add_signed(rel as i64),
            Jz(rel) => {
                self.rip = if self.zf {
                    next.wrapping_add_signed(rel as i64)
                } else {
                    next
                }
            }
            Jnz(rel) => {
                self.rip = if !self.zf {
                    next.wrapping_add_signed(rel as i64)
                } else {
                    next
                }
            }
            Jl(rel) => {
                self.rip = if self.lf {
                    next.wrapping_add_signed(rel as i64)
                } else {
                    next
                }
            }
            JmpReg(r) => self.rip = self.gpr[r.index()],
            Call(rel) => {
                self.push_u64(next)?;
                self.rip = next.wrapping_add_signed(rel as i64);
            }
            CallReg(r) => {
                self.push_u64(next)?;
                self.rip = self.gpr[r.index()];
            }
            Ret => {
                self.rip = self.pop_u64()?;
            }
            Push(r) => {
                self.push_u64(self.gpr[r.index()])?;
                self.rip = next;
            }
            Pop(r) => {
                let v = self.pop_u64()?;
                self.gpr[r.index()] = v;
                self.rip = next;
            }
            MovXR(x, r) => {
                self.xmm[x.index()] = self.gpr[r.index()] as u128;
                self.rip = next;
            }
            MovRX(r, x) => {
                self.gpr[r.index()] = self.xmm[x.index()] as u64;
                self.rip = next;
            }
            MovXI(x, imm) => {
                self.xmm[x.index()] = imm as u128;
                self.rip = next;
            }
            LoadX(x, base, disp) => {
                let addr = self.gpr[base.index()].wrapping_add_signed(disp as i64);
                let mut b = [0u8; 16];
                self.mem.read(addr, &mut b)?;
                self.xmm[x.index()] = u128::from_le_bytes(b);
                self.rip = next;
            }
            StoreX(base, x, disp) => {
                let addr = self.gpr[base.index()].wrapping_add_signed(disp as i64);
                self.mem.write(addr, &self.xmm[x.index()].to_le_bytes())?;
                self.rip = next;
            }
            Xsave(base) => {
                let addr = self.gpr[base.index()];
                for i in 0..16 {
                    self.mem
                        .write(addr + 16 * i as u64, &self.xmm[i].to_le_bytes())?;
                }
                self.rip = next;
            }
            Xrstor(base) => {
                let addr = self.gpr[base.index()];
                for i in 0..16 {
                    let mut b = [0u8; 16];
                    self.mem.read(addr + 16 * i as u64, &mut b)?;
                    self.xmm[i] = u128::from_le_bytes(b);
                }
                self.rip = next;
            }
            Wrpkru(r) => {
                self.mem.set_pkru_wd(self.gpr[r.index()] as u16);
                self.rip = next;
            }
        }
        Ok(None)
    }

    fn push_u64(&mut self, v: u64) -> Result<(), Fault> {
        let sp = self.gpr[Gpr::SP.index()] - 8;
        self.mem.write_u64(sp, v)?;
        self.gpr[Gpr::SP.index()] = sp;
        Ok(())
    }

    fn pop_u64(&mut self) -> Result<u64, Fault> {
        let sp = self.gpr[Gpr::SP.index()];
        let v = self.mem.read_u64(sp)?;
        self.gpr[Gpr::SP.index()] = sp + 8;
        Ok(v)
    }

    /// Runs until the next [`Event`].
    ///
    /// # Errors
    ///
    /// Propagates the first [`Fault`].
    pub fn run(&mut self) -> Result<Event, Fault> {
        loop {
            if let Some(ev) = self.step()? {
                return Ok(ev);
            }
        }
    }

    /// Runs until the next [`Event`] or until `fuel` instructions have
    /// retired (then [`Fault::FuelExhausted`] — the guard against
    /// runaway guest loops).
    ///
    /// # Errors
    ///
    /// Propagates faults; returns `FuelExhausted` at the limit.
    pub fn run_fuel(&mut self, mut fuel: u64) -> Result<Event, Fault> {
        while fuel > 0 {
            if let Some(ev) = self.step()? {
                return Ok(ev);
            }
            fuel -= 1;
        }
        Err(Fault::FuelExhausted)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::Asm;

    fn run_prog(asm: Asm) -> Machine {
        let code = asm.assemble().unwrap();
        let mut m = Machine::new();
        m.load_code(0x1000, &code).unwrap();
        m.setup_stack(0x20000, 0x4000);
        assert_eq!(m.run_fuel(100_000).unwrap(), Event::Halt);
        m
    }

    #[test]
    fn arithmetic_and_moves() {
        let m = run_prog(
            Asm::new()
                .mov_ri(Gpr::R1, 10)
                .mov_ri(Gpr::R2, 4)
                .mov_rr(Gpr::R3, Gpr::R1)
                .add_rr(Gpr::R3, Gpr::R2) // 14
                .sub_ri(Gpr::R3, 3) // 11
                .mul_rr(Gpr::R3, Gpr::R2) // 44
                .and_ri(Gpr::R3, 0x3c) // 44 & 0x3c = 44
                .hlt(),
        );
        assert_eq!(m.gpr(Gpr::R3), 44);
    }

    #[test]
    fn loop_with_counter() {
        // r1 = sum(1..=5)
        let m = run_prog(
            Asm::new()
                .mov_ri(Gpr::R1, 0)
                .mov_ri(Gpr::R2, 5)
                .label("loop")
                .add_rr(Gpr::R1, Gpr::R2)
                .sub_ri(Gpr::R2, 1)
                .cmp_ri(Gpr::R2, 0)
                .jnz("loop")
                .hlt(),
        );
        assert_eq!(m.gpr(Gpr::R1), 15);
    }

    #[test]
    fn memory_and_stack() {
        let m = run_prog(
            Asm::new()
                .mov_ri(Gpr::R1, 0xabcd)
                .push(Gpr::R1)
                .pop(Gpr::R2)
                .store(Gpr::R15, Gpr::R2, -64)
                .load(Gpr::R3, Gpr::R15, -64)
                .mov_ri(Gpr::R4, 0x7f)
                .store_b(Gpr::R15, Gpr::R4, -100)
                .load_b(Gpr::R5, Gpr::R15, -100)
                .hlt(),
        );
        assert_eq!(m.gpr(Gpr::R2), 0xabcd);
        assert_eq!(m.gpr(Gpr::R3), 0xabcd);
        assert_eq!(m.gpr(Gpr::R5), 0x7f);
    }

    #[test]
    fn call_and_ret() {
        let m = run_prog(
            Asm::new()
                .call("fn")
                .hlt()
                .label("fn")
                .mov_ri(Gpr::R9, 99)
                .ret(),
        );
        assert_eq!(m.gpr(Gpr::R9), 99);
    }

    #[test]
    fn call_reg_like_zpoline() {
        // call r0 with r0 pointing into a nop sled at 0 that slides
        // into code setting a marker and returning — the trampoline
        // shape.
        let sled = Asm::new()
            .nop()
            .nop()
            .nop()
            .nop()
            .mov_ri(Gpr::R9, 7)
            .ret()
            .assemble()
            .unwrap();
        let main = Asm::new()
            .mov_ri(Gpr::R0, 2) // land mid-sled
            .call_reg(Gpr::R0)
            .hlt()
            .assemble()
            .unwrap();
        let mut m = Machine::new();
        m.mem.map(0, 4096, Perms::RW);
        m.mem.write(0, &sled).unwrap();
        m.mem.protect(0, 4096, Perms::RX).unwrap();
        m.load_code(0x1000, &main).unwrap();
        m.setup_stack(0x20000, 0x4000);
        assert_eq!(m.run_fuel(1000).unwrap(), Event::Halt);
        assert_eq!(m.gpr(Gpr::R9), 7);
    }

    #[test]
    fn syscall_event_exposes_args() {
        let code = Asm::new()
            .mov_ri(Gpr::R0, 1)
            .mov_ri(Gpr::R1, 2)
            .mov_ri(Gpr::R2, 3)
            .syscall()
            .hlt()
            .assemble()
            .unwrap();
        let mut m = Machine::new();
        m.load_code(0x1000, &code).unwrap();
        assert_eq!(m.run().unwrap(), Event::Syscall);
        let (nr, args) = m.syscall_args();
        assert_eq!(nr, 1);
        assert_eq!(args[0], 2);
        assert_eq!(args[1], 3);
        // rip points after the syscall insn.
        assert_eq!(m.rip(), 0x1000 + 30 + 2);
        m.set_syscall_ret(42);
        assert_eq!(m.run().unwrap(), Event::Halt);
        assert_eq!(m.gpr(Gpr::R0), 42);
    }

    #[test]
    fn vector_registers_and_xsave() {
        let m = run_prog(
            Asm::new()
                .mov_ri(Gpr::R1, 0x1111)
                .mov_xr(Xmm(3), Gpr::R1)
                .mov_xi(Xmm(4), 0x2222)
                // Save all, clobber, restore.
                .mov_rr(Gpr::R14, Gpr::R15)
                .sub_ri(Gpr::R14, 1024)
                .xsave(Gpr::R14)
                .mov_xi(Xmm(3), 0)
                .mov_xi(Xmm(4), 0)
                .xrstor(Gpr::R14)
                .mov_rx(Gpr::R2, Xmm(3))
                .mov_rx(Gpr::R3, Xmm(4))
                .hlt(),
        );
        assert_eq!(m.gpr(Gpr::R2), 0x1111);
        assert_eq!(m.gpr(Gpr::R3), 0x2222);
    }

    #[test]
    fn faults_surface() {
        let mut m = Machine::new();
        // Unmapped rip.
        assert!(matches!(m.step(), Err(Fault::Mem(_))));
        // Invalid opcode.
        let mut m = Machine::new();
        m.load_code(0x1000, &[0x42]).unwrap();
        assert!(matches!(m.step(), Err(Fault::Decode { addr: 0x1000, .. })));
        // Fuel.
        let mut m = Machine::new();
        m.load_code(0x1000, &Asm::new().label("x").jmp("x").assemble().unwrap())
            .unwrap();
        assert_eq!(m.run_fuel(10), Err(Fault::FuelExhausted));
    }

    #[test]
    fn writes_to_code_pages_fault() {
        let mut m = Machine::new();
        m.load_code(0x1000, &Asm::new().hlt().assemble().unwrap())
            .unwrap();
        assert!(m.mem.write(0x1000, &[0x90]).is_err());
    }

    #[test]
    fn cycles_accumulate_deterministically() {
        let prog = || {
            Asm::new()
                .mov_ri(Gpr::R1, 5)
                .add_ri(Gpr::R1, 1)
                .push(Gpr::R1)
                .pop(Gpr::R2)
                .hlt()
        };
        let a = run_prog(prog());
        let b = run_prog(prog());
        assert_eq!(a.cycles(), b.cycles());
        assert_eq!(a.retired(), 5);
        // nop-class ×1 + alu ×1 + mem ×2 + hlt(nop) ×1
        assert_eq!(a.cycles(), 1 + 1 + 3 + 3 + 1);
    }

    #[test]
    fn trace_hook_sees_reads_writes() {
        use std::cell::RefCell;
        use std::rc::Rc;
        let log: Rc<RefCell<Vec<(u64, RegSet, RegSet)>>> = Rc::default();
        let log2 = Rc::clone(&log);
        let code = Asm::new()
            .mov_ri(Gpr::R1, 7)
            .mov_rr(Gpr::R2, Gpr::R1)
            .hlt()
            .assemble()
            .unwrap();
        let mut m = Machine::new();
        m.load_code(0x1000, &code).unwrap();
        m.set_trace_hook(Box::new(move |t| {
            log2.borrow_mut().push((t.rip, t.reads, t.writes));
        }));
        m.run().unwrap();
        let log = log.borrow();
        assert_eq!(log.len(), 3);
        assert!(log[0].2.has_gpr(Gpr::R1)); // mov_ri writes r1
        assert!(log[1].1.has_gpr(Gpr::R1)); // mov_rr reads r1
        assert!(log[1].2.has_gpr(Gpr::R2));
    }
}

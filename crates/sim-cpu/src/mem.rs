//! Sparse paged memory with R/W/X permissions and MPK-style
//! protection keys.
//!
//! Each page carries a 4-bit protection key (default 0); the memory
//! holds a per-hart `PKRU`-like write-disable mask (one bit per key)
//! toggled by the [`crate::insn::Op::Wrpkru`] instruction. A user
//! store to a page whose key is write-disabled faults with access
//! kind `'p'` — the simulated counterpart of an MPK `#PF` with
//! `PKRU`-induced `WD`. Reads and fetches are never key-checked
//! (write-disable-only model, matching the hardened selector slab).

use std::collections::BTreeMap;
use std::fmt;

/// Page size in bytes (mirrors x86-64).
pub const PAGE_SIZE: u64 = 4096;

/// Page protection bits.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Perms {
    /// Readable.
    pub r: bool,
    /// Writable.
    pub w: bool,
    /// Executable.
    pub x: bool,
}

impl Perms {
    /// `rw-` — ordinary data.
    pub const RW: Perms = Perms {
        r: true,
        w: true,
        x: false,
    };
    /// `r-x` — code.
    pub const RX: Perms = Perms {
        r: true,
        w: false,
        x: true,
    };
    /// `rwx` — JIT pages.
    pub const RWX: Perms = Perms {
        r: true,
        w: true,
        x: true,
    };
    /// `r--` — read-only data.
    pub const RO: Perms = Perms {
        r: true,
        w: false,
        x: false,
    };
}

impl fmt::Display for Perms {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}{}{}",
            if self.r { 'r' } else { '-' },
            if self.w { 'w' } else { '-' },
            if self.x { 'x' } else { '-' }
        )
    }
}

/// Memory access faults.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MemFault {
    /// No page mapped at this address.
    Unmapped {
        /// Faulting address.
        addr: u64,
    },
    /// Page mapped but the access kind is not permitted.
    Protection {
        /// Faulting address.
        addr: u64,
        /// What was attempted: 'r', 'w' or 'x'.
        access: char,
    },
}

impl fmt::Display for MemFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MemFault::Unmapped { addr } => write!(f, "unmapped address {addr:#x}"),
            MemFault::Protection { addr, access } => {
                write!(f, "permission fault ({access}) at {addr:#x}")
            }
        }
    }
}

impl std::error::Error for MemFault {}

struct Page {
    data: Box<[u8; PAGE_SIZE as usize]>,
    perms: Perms,
    /// MPK protection key (0 = unkeyed; real hardware has 16).
    pkey: u8,
}

/// Sparse paged memory.
#[derive(Default)]
pub struct Memory {
    pages: BTreeMap<u64, Page>,
    /// Per-key write-disable mask (bit `k` set ⇒ user stores to pages
    /// keyed `k` fault). The simulated analogue of PKRU's WD bits.
    pkru_wd: u16,
}

impl fmt::Debug for Memory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Memory({} pages)", self.pages.len())
    }
}

impl Memory {
    /// An empty address space.
    pub fn new() -> Memory {
        Memory::default()
    }

    /// Maps `len` bytes (page-rounded) at `addr` (page-aligned) with
    /// the given permissions, zero-filled. Remapping an existing page
    /// replaces it.
    ///
    /// # Panics
    ///
    /// Panics if `addr` is not page-aligned or `len` is 0.
    pub fn map(&mut self, addr: u64, len: u64, perms: Perms) {
        assert_eq!(addr % PAGE_SIZE, 0, "unaligned map address {addr:#x}");
        assert!(len > 0, "zero-length map");
        let pages = len.div_ceil(PAGE_SIZE);
        for i in 0..pages {
            self.pages.insert(
                addr + i * PAGE_SIZE,
                Page {
                    data: Box::new([0; PAGE_SIZE as usize]),
                    perms,
                    pkey: 0,
                },
            );
        }
    }

    /// Unmaps the page-rounded range.
    pub fn unmap(&mut self, addr: u64, len: u64) {
        let pages = len.div_ceil(PAGE_SIZE);
        for i in 0..pages {
            self.pages.remove(&(addr + i * PAGE_SIZE));
        }
    }

    /// Changes the protection of the page-rounded range.
    ///
    /// # Errors
    ///
    /// Fails if any page in the range is unmapped.
    pub fn protect(&mut self, addr: u64, len: u64, perms: Perms) -> Result<(), MemFault> {
        let pages = len.div_ceil(PAGE_SIZE);
        // Validate first so a failure leaves no partial change.
        for i in 0..pages {
            let pa = (addr & !(PAGE_SIZE - 1)) + i * PAGE_SIZE;
            if !self.pages.contains_key(&pa) {
                return Err(MemFault::Unmapped { addr: pa });
            }
        }
        for i in 0..pages {
            let pa = (addr & !(PAGE_SIZE - 1)) + i * PAGE_SIZE;
            self.pages.get_mut(&pa).unwrap().perms = perms;
        }
        Ok(())
    }

    /// Permissions of the page containing `addr`, if mapped.
    pub fn perms_at(&self, addr: u64) -> Option<Perms> {
        self.pages.get(&(addr & !(PAGE_SIZE - 1))).map(|p| p.perms)
    }

    /// Tags the page-rounded range with protection key `key`
    /// (`pkey_mprotect`). Keys above 15 are rejected like the real
    /// syscall would reject an unallocated pkey.
    ///
    /// # Errors
    ///
    /// Fails if any page in the range is unmapped.
    pub fn set_pkey(&mut self, addr: u64, len: u64, key: u8) -> Result<(), MemFault> {
        assert!(key < 16, "protection key {key} out of range");
        let pages = len.div_ceil(PAGE_SIZE);
        for i in 0..pages {
            let pa = (addr & !(PAGE_SIZE - 1)) + i * PAGE_SIZE;
            if !self.pages.contains_key(&pa) {
                return Err(MemFault::Unmapped { addr: pa });
            }
        }
        for i in 0..pages {
            let pa = (addr & !(PAGE_SIZE - 1)) + i * PAGE_SIZE;
            self.pages.get_mut(&pa).unwrap().pkey = key;
        }
        Ok(())
    }

    /// Protection key of the page containing `addr`, if mapped.
    pub fn pkey_at(&self, addr: u64) -> Option<u8> {
        self.pages.get(&(addr & !(PAGE_SIZE - 1))).map(|p| p.pkey)
    }

    /// Replaces the write-disable mask (the `wrpkru` effect).
    pub fn set_pkru_wd(&mut self, mask: u16) {
        self.pkru_wd = mask;
    }

    /// The current write-disable mask.
    pub fn pkru_wd(&self) -> u16 {
        self.pkru_wd
    }

    /// Whether `addr` is mapped.
    pub fn is_mapped(&self, addr: u64) -> bool {
        self.perms_at(addr).is_some()
    }

    fn page_of(&self, addr: u64) -> Result<&Page, MemFault> {
        self.pages
            .get(&(addr & !(PAGE_SIZE - 1)))
            .ok_or(MemFault::Unmapped { addr })
    }

    fn access(&self, addr: u64, len: usize, kind: char) -> Result<(), MemFault> {
        let mut a = addr;
        let end = addr + len as u64;
        while a < end {
            let page = self.page_of(a)?;
            let ok = match kind {
                'r' => page.perms.r,
                'w' => page.perms.w,
                'x' => page.perms.x,
                _ => false,
            };
            if !ok {
                return Err(MemFault::Protection {
                    addr: a,
                    access: kind,
                });
            }
            // MPK check: a writable page whose key is write-disabled
            // still faults on user stores ('p' distinguishes the pkey
            // fault from an ordinary permission fault).
            if kind == 'w' && self.pkru_wd >> page.pkey & 1 == 1 {
                return Err(MemFault::Protection { addr: a, access: 'p' });
            }
            a = (a & !(PAGE_SIZE - 1)) + PAGE_SIZE;
        }
        Ok(())
    }

    /// Reads bytes with permission checking.
    ///
    /// # Errors
    ///
    /// [`MemFault`] on unmapped or non-readable pages.
    pub fn read(&self, addr: u64, buf: &mut [u8]) -> Result<(), MemFault> {
        self.access(addr, buf.len(), 'r')?;
        self.copy_out(addr, buf);
        Ok(())
    }

    /// Fetches instruction bytes (requires X).
    ///
    /// # Errors
    ///
    /// [`MemFault`] on unmapped or non-executable pages.
    pub fn fetch(&self, addr: u64, buf: &mut [u8]) -> Result<(), MemFault> {
        self.access(addr, buf.len(), 'x')?;
        self.copy_out(addr, buf);
        Ok(())
    }

    /// Writes bytes with permission checking.
    ///
    /// # Errors
    ///
    /// [`MemFault`] on unmapped or non-writable pages.
    pub fn write(&mut self, addr: u64, bytes: &[u8]) -> Result<(), MemFault> {
        self.access(addr, bytes.len(), 'w')?;
        self.copy_in(addr, bytes);
        Ok(())
    }

    /// Writes bytes ignoring permissions (kernel-privileged store, e.g.
    /// building a signal frame or loading a program image).
    ///
    /// # Errors
    ///
    /// [`MemFault::Unmapped`] only.
    pub fn write_privileged(&mut self, addr: u64, bytes: &[u8]) -> Result<(), MemFault> {
        let mut a = addr;
        let end = addr + bytes.len() as u64;
        while a < end {
            self.page_of(a)?;
            a = (a & !(PAGE_SIZE - 1)) + PAGE_SIZE;
        }
        self.copy_in(addr, bytes);
        Ok(())
    }

    /// Reads ignoring permissions (kernel-privileged load).
    ///
    /// # Errors
    ///
    /// [`MemFault::Unmapped`] only.
    pub fn read_privileged(&self, addr: u64, buf: &mut [u8]) -> Result<(), MemFault> {
        let mut a = addr;
        let end = addr + buf.len() as u64;
        while a < end {
            self.page_of(a)?;
            a = (a & !(PAGE_SIZE - 1)) + PAGE_SIZE;
        }
        self.copy_out(addr, buf);
        Ok(())
    }

    fn copy_out(&self, addr: u64, buf: &mut [u8]) {
        for (i, b) in buf.iter_mut().enumerate() {
            let a = addr + i as u64;
            let page = &self.pages[&(a & !(PAGE_SIZE - 1))];
            *b = page.data[(a % PAGE_SIZE) as usize];
        }
    }

    fn copy_in(&mut self, addr: u64, bytes: &[u8]) {
        for (i, &b) in bytes.iter().enumerate() {
            let a = addr + i as u64;
            let page = self.pages.get_mut(&(a & !(PAGE_SIZE - 1))).unwrap();
            page.data[(a % PAGE_SIZE) as usize] = b;
        }
    }

    /// Convenience: read a little-endian u64.
    ///
    /// # Errors
    ///
    /// [`MemFault`] on unmapped or non-readable pages.
    pub fn read_u64(&self, addr: u64) -> Result<u64, MemFault> {
        let mut b = [0u8; 8];
        self.read(addr, &mut b)?;
        Ok(u64::from_le_bytes(b))
    }

    /// Convenience: write a little-endian u64.
    ///
    /// # Errors
    ///
    /// [`MemFault`] on unmapped or non-writable pages.
    pub fn write_u64(&mut self, addr: u64, v: u64) -> Result<(), MemFault> {
        self.write(addr, &v.to_le_bytes())
    }

    /// Number of mapped pages.
    pub fn page_count(&self) -> usize {
        self.pages.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_read_write_roundtrip() {
        let mut m = Memory::new();
        m.map(0x1000, 100, Perms::RW);
        // Rounds up to one page.
        assert_eq!(m.page_count(), 1);
        m.write_u64(0x1010, 0xdead_beef).unwrap();
        assert_eq!(m.read_u64(0x1010).unwrap(), 0xdead_beef);
    }

    #[test]
    fn cross_page_access() {
        let mut m = Memory::new();
        m.map(0x1000, 2 * PAGE_SIZE, Perms::RW);
        let addr = 0x2000 - 4;
        m.write_u64(addr, 0x0102_0304_0506_0708).unwrap();
        assert_eq!(m.read_u64(addr).unwrap(), 0x0102_0304_0506_0708);
    }

    #[test]
    fn faults() {
        let mut m = Memory::new();
        m.map(0x1000, PAGE_SIZE, Perms::RO);
        assert_eq!(
            m.write(0x1000, &[1]),
            Err(MemFault::Protection {
                addr: 0x1000,
                access: 'w'
            })
        );
        let mut b = [0u8; 1];
        assert_eq!(
            m.fetch(0x1000, &mut b),
            Err(MemFault::Protection {
                addr: 0x1000,
                access: 'x'
            })
        );
        assert!(matches!(
            m.read(0x9000, &mut b),
            Err(MemFault::Unmapped { .. })
        ));
    }

    #[test]
    fn protect_changes_perms_atomically() {
        let mut m = Memory::new();
        m.map(0x1000, PAGE_SIZE, Perms::RX);
        // Range straddling an unmapped page fails without changes.
        assert!(m.protect(0x1000, 2 * PAGE_SIZE, Perms::RW).is_err());
        assert_eq!(m.perms_at(0x1000), Some(Perms::RX));
        m.protect(0x1000, PAGE_SIZE, Perms::RW).unwrap();
        assert_eq!(m.perms_at(0x1000), Some(Perms::RW));
        m.write(0x1000, &[1, 2]).unwrap();
    }

    #[test]
    fn privileged_access_ignores_perms() {
        let mut m = Memory::new();
        m.map(0x1000, PAGE_SIZE, Perms::RO);
        m.write_privileged(0x1000, &[7]).unwrap();
        let mut b = [0u8; 1];
        m.read_privileged(0x1000, &mut b).unwrap();
        assert_eq!(b[0], 7);
        assert!(m.write_privileged(0x9000, &[1]).is_err());
    }

    #[test]
    fn unmap_removes_pages() {
        let mut m = Memory::new();
        m.map(0x1000, PAGE_SIZE, Perms::RW);
        assert!(m.is_mapped(0x1000));
        m.unmap(0x1000, PAGE_SIZE);
        assert!(!m.is_mapped(0x1000));
    }

    #[test]
    #[should_panic(expected = "unaligned")]
    fn map_requires_alignment() {
        Memory::new().map(0x1001, 8, Perms::RW);
    }

    #[test]
    fn pkey_write_disable_blocks_user_stores_only() {
        let mut m = Memory::new();
        m.map(0x1000, PAGE_SIZE, Perms::RW);
        m.set_pkey(0x1000, PAGE_SIZE, 1).unwrap();
        assert_eq!(m.pkey_at(0x1000), Some(1));

        // Open: everything works.
        m.write(0x1000, &[7]).unwrap();

        // Closed: user stores fault with 'p'; reads and privileged
        // stores are unaffected (write-disable-only model).
        m.set_pkru_wd(1 << 1);
        assert_eq!(
            m.write(0x1000, &[8]),
            Err(MemFault::Protection {
                addr: 0x1000,
                access: 'p'
            })
        );
        let mut b = [0u8; 1];
        m.read(0x1000, &mut b).unwrap();
        assert_eq!(b[0], 7);
        m.write_privileged(0x1000, &[9]).unwrap();

        // Unkeyed pages never consult the mask.
        m.map(0x3000, PAGE_SIZE, Perms::RW);
        m.write(0x3000, &[1]).unwrap();

        // Reopen restores writes.
        m.set_pkru_wd(0);
        m.write(0x1000, &[2]).unwrap();
    }

    #[test]
    fn set_pkey_requires_mapped_range() {
        let mut m = Memory::new();
        assert!(m.set_pkey(0x1000, PAGE_SIZE, 1).is_err());
    }
}

//! Register identifiers and register-set bitmaps.

use std::fmt;

/// General-purpose register id (16 registers, `r0..r15`).
///
/// Conventions (mirroring the x86-64 syscall ABI shape):
/// * `R0` — syscall number and return value ("rax"),
/// * `R1..=R6` — syscall arguments,
/// * `R15` — stack pointer,
/// * the `CALL reg` fast-path trick requires the syscall number
///   register to be the callable one, exactly like `call rax`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Gpr {
    /// r0 — syscall number / return value ("rax").
    R0,
    /// r1 — first syscall argument.
    R1,
    /// r2 — second syscall argument.
    R2,
    /// r3 — third syscall argument.
    R3,
    /// r4 — fourth syscall argument.
    R4,
    /// r5 — fifth syscall argument.
    R5,
    /// r6 — sixth syscall argument.
    R6,
    /// r7 — caller-saved scratch.
    R7,
    /// r8 — caller-saved scratch.
    R8,
    /// r9 — caller-saved scratch.
    R9,
    /// r10 — callee-saved.
    R10,
    /// r11 — callee-saved.
    R11,
    /// r12 — callee-saved.
    R12,
    /// r13 — callee-saved.
    R13,
    /// r14 — frame/scratch.
    R14,
    /// r15 — stack pointer.
    R15,
}

impl Gpr {
    /// All sixteen GPRs in index order.
    pub const ALL: [Gpr; 16] = [
        Gpr::R0,
        Gpr::R1,
        Gpr::R2,
        Gpr::R3,
        Gpr::R4,
        Gpr::R5,
        Gpr::R6,
        Gpr::R7,
        Gpr::R8,
        Gpr::R9,
        Gpr::R10,
        Gpr::R11,
        Gpr::R12,
        Gpr::R13,
        Gpr::R14,
        Gpr::R15,
    ];

    /// The stack pointer register.
    pub const SP: Gpr = Gpr::R15;

    /// Numeric index (0..16).
    pub fn index(self) -> usize {
        self as usize
    }

    /// From a numeric index.
    ///
    /// # Panics
    ///
    /// Panics if `i >= 16`.
    pub fn from_index(i: usize) -> Gpr {
        Self::ALL[i]
    }
}

impl fmt::Display for Gpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.index())
    }
}

/// Vector register id (16 registers, `x0..x15`, 128-bit) — the
/// simulated analogue of `xmm0..xmm15`, the extended state whose
/// preservation Table III studies.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Xmm(pub u8);

impl Xmm {
    /// Numeric index (0..16).
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for Xmm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "x{}", self.0)
    }
}

/// A compact bitmap over all registers: bits 0-15 = GPRs, 16-31 =
/// vector registers. Used by the execution tracer to report which
/// registers an instruction read and wrote.
#[derive(Clone, Copy, Default, PartialEq, Eq, Hash)]
pub struct RegSet(pub u32);

impl RegSet {
    /// The empty set.
    pub const EMPTY: RegSet = RegSet(0);

    /// Adds a GPR.
    pub fn with_gpr(mut self, r: Gpr) -> RegSet {
        self.0 |= 1 << r.index();
        self
    }

    /// Adds a vector register.
    pub fn with_xmm(mut self, x: Xmm) -> RegSet {
        self.0 |= 1 << (16 + x.index());
        self
    }

    /// Membership test for a GPR.
    pub fn has_gpr(self, r: Gpr) -> bool {
        self.0 & (1 << r.index()) != 0
    }

    /// Membership test for a vector register.
    pub fn has_xmm(self, x: Xmm) -> bool {
        self.0 & (1 << (16 + x.index())) != 0
    }

    /// Whether the set is empty.
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Iterates all members as (is_vector, index) pairs.
    pub fn iter(self) -> impl Iterator<Item = (bool, usize)> {
        (0..32).filter_map(move |bit| {
            if self.0 & (1 << bit) != 0 {
                Some((bit >= 16, bit % 16))
            } else {
                None
            }
        })
    }
}

impl fmt::Debug for RegSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        let mut first = true;
        for (vec, idx) in self.iter() {
            if !first {
                write!(f, ",")?;
            }
            first = false;
            if vec {
                write!(f, "x{idx}")?;
            } else {
                write!(f, "r{idx}")?;
            }
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gpr_indices_roundtrip() {
        for (i, r) in Gpr::ALL.iter().enumerate() {
            assert_eq!(r.index(), i);
            assert_eq!(Gpr::from_index(i), *r);
        }
        assert_eq!(Gpr::SP, Gpr::R15);
    }

    #[test]
    fn regset_membership() {
        let s = RegSet::EMPTY.with_gpr(Gpr::R3).with_xmm(Xmm(7));
        assert!(s.has_gpr(Gpr::R3));
        assert!(!s.has_gpr(Gpr::R4));
        assert!(s.has_xmm(Xmm(7)));
        assert!(!s.has_xmm(Xmm(8)));
        assert!(!s.is_empty());
        assert!(RegSet::EMPTY.is_empty());
    }

    #[test]
    fn regset_iter_and_debug() {
        let s = RegSet::EMPTY.with_gpr(Gpr::R0).with_xmm(Xmm(2));
        let members: Vec<_> = s.iter().collect();
        assert_eq!(members, vec![(false, 0), (true, 2)]);
        assert_eq!(format!("{s:?}"), "{r0,x2}");
    }

    #[test]
    fn display_names() {
        assert_eq!(Gpr::R11.to_string(), "r11");
        assert_eq!(Xmm(5).to_string(), "x5");
    }
}

//! Property tests for the simulated CPU: determinism, decode/assemble
//! agreement, and memory consistency.

use proptest::prelude::*;
use lp_sim_cpu::asm::Asm;
use lp_sim_cpu::insn::{decode, sweep};
use lp_sim_cpu::machine::{Event, Machine};
use lp_sim_cpu::mem::{Memory, Perms, PAGE_SIZE};
use lp_sim_cpu::reg::Gpr;

/// A small random straight-line ALU program description.
#[derive(Clone, Debug)]
enum AluOp {
    MovRI(u8, u64),
    AddRI(u8, i32),
    SubRI(u8, i32),
    AddRR(u8, u8),
    MovRR(u8, u8),
    MulRR(u8, u8),
    AndRI(u8, i32),
}

fn alu_op() -> impl Strategy<Value = AluOp> {
    // Registers 1..14 (avoid r0 = syscall and r15 = stack pointer).
    let reg = 1u8..14;
    prop_oneof![
        (reg.clone(), any::<u64>()).prop_map(|(r, i)| AluOp::MovRI(r, i)),
        (reg.clone(), any::<i32>()).prop_map(|(r, i)| AluOp::AddRI(r, i)),
        (reg.clone(), any::<i32>()).prop_map(|(r, i)| AluOp::SubRI(r, i)),
        (reg.clone(), reg.clone()).prop_map(|(a, b)| AluOp::AddRR(a, b)),
        (reg.clone(), reg.clone()).prop_map(|(a, b)| AluOp::MovRR(a, b)),
        (reg.clone(), reg.clone()).prop_map(|(a, b)| AluOp::MulRR(a, b)),
        (reg, any::<i32>()).prop_map(|(r, i)| AluOp::AndRI(r, i)),
    ]
}

fn emit(asm: Asm, op: &AluOp) -> Asm {
    let g = |i: u8| Gpr::from_index(i as usize);
    match *op {
        AluOp::MovRI(r, i) => asm.mov_ri(g(r), i),
        AluOp::AddRI(r, i) => asm.add_ri(g(r), i),
        AluOp::SubRI(r, i) => asm.sub_ri(g(r), i),
        AluOp::AddRR(a, b) => asm.add_rr(g(a), g(b)),
        AluOp::MovRR(a, b) => asm.mov_rr(g(a), g(b)),
        AluOp::MulRR(a, b) => asm.mul_rr(g(a), g(b)),
        AluOp::AndRI(r, i) => asm.and_ri(g(r), i),
    }
}

fn run(ops: &[AluOp]) -> (Vec<u64>, u64) {
    let mut asm = Asm::new();
    for op in ops {
        asm = emit(asm, op);
    }
    let code = asm.hlt().assemble().unwrap();
    let mut m = Machine::new();
    m.load_code(0x1000, &code).unwrap();
    assert_eq!(m.run_fuel(100_000).unwrap(), Event::Halt);
    (
        Gpr::ALL.iter().map(|&r| m.gpr(r)).collect(),
        m.cycles(),
    )
}

proptest! {
    /// The machine is deterministic: identical programs produce
    /// identical register files and cycle counts.
    #[test]
    fn execution_is_deterministic(ops in proptest::collection::vec(alu_op(), 1..64)) {
        let a = run(&ops);
        let b = run(&ops);
        prop_assert_eq!(a, b);
    }

    /// Everything the assembler emits decodes back at exact
    /// boundaries with no decode errors.
    #[test]
    fn assembler_output_decodes_cleanly(ops in proptest::collection::vec(alu_op(), 1..64)) {
        let mut asm = Asm::new();
        for op in &ops {
            asm = emit(asm, op);
        }
        let code = asm.hlt().assemble().unwrap();
        let mut count = 0;
        for (_, r) in sweep(&code) {
            prop_assert!(r.is_ok(), "{r:?}");
            count += 1;
        }
        prop_assert_eq!(count, ops.len() + 1);
    }

    /// Memory: bytes written are read back identically, across page
    /// boundaries, and never bleed into neighbours.
    #[test]
    fn memory_write_read_consistency(
        offset in 0u64..(2 * PAGE_SIZE - 64),
        data in proptest::collection::vec(any::<u8>(), 1..64),
    ) {
        let mut mem = Memory::new();
        mem.map(0x4000, 2 * PAGE_SIZE, Perms::RW);
        mem.write(0x4000 + offset, &data).unwrap();
        let mut back = vec![0u8; data.len()];
        mem.read(0x4000 + offset, &mut back).unwrap();
        prop_assert_eq!(&back, &data);
        // A guard byte before and after stays zero (if in range).
        if offset > 0 {
            let mut b = [0u8; 1];
            mem.read(0x4000 + offset - 1, &mut b).unwrap();
            prop_assert_eq!(b[0], 0);
        }
        let end = 0x4000 + offset + data.len() as u64;
        if end < 0x4000 + 2 * PAGE_SIZE {
            let mut b = [0u8; 1];
            mem.read(end, &mut b).unwrap();
            prop_assert_eq!(b[0], 0);
        }
    }

    /// decode() never panics and never claims a length beyond the
    /// longest encoding.
    #[test]
    fn decode_bounded(bytes in proptest::collection::vec(any::<u8>(), 0..32)) {
        if let Ok(insn) = decode(&bytes) {
            prop_assert!(insn.len >= 1 && insn.len <= 10);
            prop_assert!(insn.len as usize <= bytes.len());
        }
    }
}

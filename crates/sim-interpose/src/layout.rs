//! Guest memory layout shared by all mechanisms.

/// The trampoline page (virtual address 0, like zpoline).
pub const TRAMPOLINE_BASE: u64 = 0;
/// Nop-sled length = max syscall number covered (mirrors the native
/// implementation's 512).
pub const SLED_LEN: u64 = 512;
/// The entry stub starts right after the sled.
pub const STUB_BASE: u64 = TRAMPOLINE_BASE + SLED_LEN;

/// SIGSYS-handler code page.
pub const HANDLER_BASE: u64 = 0x8000;
/// Handler page length (also the SUD allowlist length in the classic
/// deployment).
pub const HANDLER_LEN: u64 = 0x1000;

/// Runtime data page.
pub const DATA_BASE: u64 = 0x9000;
/// The SUD selector byte lives at the start of the data page.
pub const SELECTOR_ADDR: u64 = DATA_BASE;
/// Trace-buffer index (u64 count of recorded entries).
pub const TRACE_IDX_ADDR: u64 = DATA_BASE + 8;
/// First trace entry (u64 syscall numbers).
pub const TRACE_ENTRIES_ADDR: u64 = DATA_BASE + 16;
/// Maximum recorded entries (buffer capacity guard).
pub const TRACE_CAP: u64 = 500;

/// Protection key guarding the data page (selector + trace buffer) in
/// the hardened mechanism. Key 0 is the unkeyed default, so the
/// hardened setup tags the page with key 1.
pub const SELECTOR_PKEY: u8 = 1;
/// The write-disable mask that closes the selector's key — the value
/// interposer stubs load with `wrpkru` on exit (and clear on entry).
pub const SELECTOR_WD_MASK: u64 = 1 << SELECTOR_PKEY;

/// Syscall-interest table: one byte per syscall number, nonzero when
/// the interposer wants that syscall delivered to its recording logic.
/// Byte-per-number (rather than a bitmap like the native
/// `InterestSet`) because the simulated ISA has no shift instructions;
/// the cost model is the same — one load and one compare on the hot
/// path.
pub const INTEREST_BASE: u64 = 0xA000;
/// Interest table length = number of covered syscall numbers.
pub const INTEREST_LEN: u64 = SLED_LEN;

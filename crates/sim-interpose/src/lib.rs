//! The paper's interposition mechanisms, implemented over the
//! simulator.
//!
//! Each [`Mechanism`] is realized as *guest code + kernel
//! configuration*, not as host-side shortcuts: the zpoline trampoline
//! is a real nop sled in guest page 0, SUD handlers are guest programs
//! that manipulate a guest selector byte, and the lazypoline slow path
//! patches guest code bytes through guest `mprotect` calls — so cycle
//! counts include everything the real mechanisms pay for.
//!
//! | Mechanism | Kernel config | Guest code installed |
//! |---|---|---|
//! | `Baseline` | — | — |
//! | `Ptrace` | tracer cost model on every syscall | — |
//! | `SeccompBpf` | allow-all cBPF filter | — |
//! | `SeccompUser` | TRAP-unless-ip-in-handler filter | SIGSYS handler |
//! | `Sud` | — (guest-equivalent prctl) | SIGSYS handler + selector |
//! | `Zpoline` | — | trampoline; app code statically rewritten |
//! | `Lazypoline` | — | trampoline + SUD + lazy-rewriting handler |
//!
//! [`Interposed::observed_trace`] returns the syscalls the mechanism's
//! interposer actually saw, which is what the exhaustiveness
//! experiment (paper §V-A) compares across mechanisms.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod layout;
pub mod mechanism;
pub mod security;
pub mod stubs;
pub mod traits;

pub use mechanism::{Interposed, Mechanism, SetupError};
pub use security::{run_attack, AttackOutcome, Protection};
pub use traits::{mechanism_traits, Efficiency, Expressiveness, Traits};

//! Mechanism setup and execution.

use sim_cpu::mem::Perms;
use sim_kernel::kernel::{SudConfig, System};
use sim_kernel::seccomp::BpfProgram;
use sim_kernel::{sysno, SimError};

use crate::layout::*;
use crate::stubs::{
    self, emulating_handler, lazypoline_handler, trampoline_page, HandlerConfig, StubConfig,
};

/// The interposition mechanisms of Table I (plus the uninterposed
/// baseline).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Mechanism {
    /// Native execution, no interposition.
    Baseline,
    /// Native execution with SUD enabled but the selector at ALLOW —
    /// Table II's "baseline with SUD enabled" row.
    BaselineSudEnabled,
    /// A ptrace tracer attached in syscall-tracing mode.
    Ptrace,
    /// In-kernel cBPF filter (allow-all: the most favourable case).
    SeccompBpf,
    /// seccomp TRAP deferral to a userspace SIGSYS handler.
    SeccompUser,
    /// Syscall User Dispatch with the classic allowlisted handler.
    Sud,
    /// Static binary rewriting only (no kernel involvement).
    Zpoline,
    /// The hybrid: SUD slow path + lazy rewriting fast path.
    Lazypoline {
        /// Preserve vector state in the fast path (paper §IV-B(b)).
        xstate: bool,
    },
    /// Lazypoline plus the §VI hardening pair: the selector page is
    /// MPK-keyed (stubs bracket their selector writes with `wrpkru`
    /// windows) and a seccomp backstop kills any syscall issued from
    /// outside the interposer's code while the selector is ALLOW.
    LazypolineHardened,
}

impl Mechanism {
    /// Display name matching the paper's tables.
    pub fn name(&self) -> &'static str {
        match self {
            Mechanism::Baseline => "baseline",
            Mechanism::BaselineSudEnabled => "baseline+SUD(ALLOW)",
            Mechanism::Ptrace => "ptrace",
            Mechanism::SeccompBpf => "seccomp-bpf",
            Mechanism::SeccompUser => "seccomp-user",
            Mechanism::Sud => "SUD",
            Mechanism::Zpoline => "zpoline",
            Mechanism::Lazypoline { xstate: true } => "lazypoline",
            Mechanism::Lazypoline { xstate: false } => "lazypoline (no xstate)",
            Mechanism::LazypolineHardened => "lazypoline (hardened)",
        }
    }

    /// All mechanisms, in Table-II-like order.
    pub fn all() -> [Mechanism; 10] {
        [
            Mechanism::Baseline,
            Mechanism::BaselineSudEnabled,
            Mechanism::Zpoline,
            Mechanism::Lazypoline { xstate: false },
            Mechanism::Lazypoline { xstate: true },
            Mechanism::LazypolineHardened,
            Mechanism::Sud,
            Mechanism::SeccompUser,
            Mechanism::SeccompBpf,
            Mechanism::Ptrace,
        ]
    }
}

/// Setup failures.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SetupError {
    /// Guest program failed to load.
    Sim(SimError),
    /// A stub failed to assemble (internal bug).
    Assembly(String),
}

impl std::fmt::Display for SetupError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SetupError::Sim(e) => write!(f, "simulation error: {e}"),
            SetupError::Assembly(e) => write!(f, "stub assembly: {e}"),
        }
    }
}

impl std::error::Error for SetupError {}

impl From<SimError> for SetupError {
    fn from(e: SimError) -> SetupError {
        SetupError::Sim(e)
    }
}

/// A guest program armed with one interposition mechanism.
#[derive(Debug)]
pub struct Interposed {
    /// The underlying system (public for workload-specific pre/post
    /// state, e.g. populating the filesystem).
    pub system: System,
    mechanism: Mechanism,
}

impl Interposed {
    /// Sets up `mechanism` around `program` (loaded at the standard
    /// address). `trace` arms the interposer's syscall recording
    /// (exhaustiveness experiments); benchmarks leave it off so the
    /// interposer matches the paper's "dummy" function.
    ///
    /// # Errors
    ///
    /// See [`SetupError`].
    pub fn setup(mechanism: Mechanism, program: &[u8], trace: bool) -> Result<Interposed, SetupError> {
        Interposed::setup_filtered(mechanism, program, trace, None)
    }

    /// Like [`Interposed::setup`], with an optional syscall-interest
    /// filter: when `interest` is `Some(nrs)`, the interposer's
    /// recording logic consults a per-number table in guest memory and
    /// skips numbers outside `nrs` — the simulated counterpart of the
    /// native `InterestSet` fast-path filter. Filtered syscalls still
    /// *execute* normally; only the interposer's observation work is
    /// skipped. `None` records everything, as before.
    ///
    /// The filter applies to the mechanisms with a userspace
    /// observation path (zpoline and lazypoline trampoline stubs, the
    /// SUD and seccomp-user handlers); ptrace's kernel-side log and
    /// seccomp-bpf are unaffected.
    ///
    /// # Errors
    ///
    /// See [`SetupError`].
    pub fn setup_filtered(
        mechanism: Mechanism,
        program: &[u8],
        trace: bool,
        interest: Option<&[u64]>,
    ) -> Result<Interposed, SetupError> {
        let mut system = System::new();
        let mut program = program.to_vec();
        let filtered = interest.is_some();

        // Shared data page: selector + trace buffer.
        system.machine.mem.map(DATA_BASE, 4096, Perms::RW);

        // Interest table: one byte per syscall number.
        if let Some(nrs) = interest {
            system.machine.mem.map(INTEREST_BASE, INTEREST_LEN, Perms::RW);
            for &nr in nrs {
                if nr < INTEREST_LEN {
                    system
                        .machine
                        .mem
                        .write(INTEREST_BASE + nr, &[1])
                        .expect("fresh mapping");
                }
            }
        }

        let asm_err = |e: sim_cpu::asm::AsmError| SetupError::Assembly(e.to_string());

        match mechanism {
            Mechanism::Baseline => {}
            Mechanism::BaselineSudEnabled => {
                system.kernel.set_sud(SudConfig {
                    enabled: true,
                    selector_addr: SELECTOR_ADDR,
                    allow_start: 0,
                    allow_len: 0,
                });
                // Selector stays ALLOW (zeroed page).
            }
            Mechanism::Ptrace => system.kernel.set_ptrace(true),
            Mechanism::SeccompBpf => system.kernel.install_seccomp(BpfProgram::allow_all()),
            Mechanism::SeccompUser => {
                let handler = emulating_handler(HandlerConfig {
                    trace,
                    manage_selector: false,
                    interest: filtered,
                })
                .assemble_at(HANDLER_BASE)
                .map_err(asm_err)?;
                install_code(&mut system, HANDLER_BASE, &handler);
                system.kernel.set_signal_handler(sysno::SIGSYS, HANDLER_BASE);
                system.kernel.install_seccomp(BpfProgram::trap_all_except_ip_range(
                    HANDLER_BASE,
                    HANDLER_BASE + HANDLER_LEN,
                ));
            }
            Mechanism::Sud => {
                let handler = emulating_handler(HandlerConfig {
                    trace,
                    manage_selector: true,
                    interest: filtered,
                })
                .assemble_at(HANDLER_BASE)
                .map_err(asm_err)?;
                install_code(&mut system, HANDLER_BASE, &handler);
                system.kernel.set_signal_handler(sysno::SIGSYS, HANDLER_BASE);
                // Classic deployment: handler range allowlisted.
                system.kernel.set_sud(SudConfig {
                    enabled: true,
                    selector_addr: SELECTOR_ADDR,
                    allow_start: HANDLER_BASE,
                    allow_len: HANDLER_LEN,
                });
                set_selector(&mut system, sysno::SELECTOR_BLOCK);
            }
            Mechanism::Zpoline => {
                // Static rewriting + trampoline; no kernel machinery.
                stubs::static_rewrite(&mut program);
                let page = trampoline_page(StubConfig {
                    trace,
                    xstate: false,
                    sud_aware: false,
                    interest: filtered,
                    pkey: false,
                });
                install_code(&mut system, TRAMPOLINE_BASE, &page);
            }
            Mechanism::Lazypoline { xstate } => {
                let page = trampoline_page(StubConfig {
                    trace,
                    xstate,
                    sud_aware: true,
                    interest: filtered,
                    pkey: false,
                });
                install_code(&mut system, TRAMPOLINE_BASE, &page);
                let handler = lazypoline_handler(false)
                    .assemble_at(HANDLER_BASE)
                    .map_err(asm_err)?;
                install_code(&mut system, HANDLER_BASE, &handler);
                system.kernel.set_signal_handler(sysno::SIGSYS, HANDLER_BASE);
                // Selector-only SUD: no allowlisted range (§IV-A).
                system.kernel.set_sud(SudConfig {
                    enabled: true,
                    selector_addr: SELECTOR_ADDR,
                    allow_start: 0,
                    allow_len: 0,
                });
                set_selector(&mut system, sysno::SELECTOR_BLOCK);
            }
            Mechanism::LazypolineHardened => {
                // Lazypoline (xstate on, like the paper's headline
                // configuration) with pkey-aware stubs…
                let page = trampoline_page(StubConfig {
                    trace,
                    xstate: true,
                    sud_aware: true,
                    interest: filtered,
                    pkey: true,
                });
                install_code(&mut system, TRAMPOLINE_BASE, &page);
                let handler = lazypoline_handler(true)
                    .assemble_at(HANDLER_BASE)
                    .map_err(asm_err)?;
                install_code(&mut system, HANDLER_BASE, &handler);
                system.kernel.set_signal_handler(sysno::SIGSYS, HANDLER_BASE);
                system.kernel.set_sud(SudConfig {
                    enabled: true,
                    selector_addr: SELECTOR_ADDR,
                    allow_start: 0,
                    allow_len: 0,
                });
                set_selector(&mut system, sysno::SELECTOR_BLOCK);
                // …the selector page keyed and the window closed (the
                // selector write above happens before the key arms)…
                system
                    .machine
                    .mem
                    .set_pkey(DATA_BASE, 4096, SELECTOR_PKEY)
                    .expect("data page mapped");
                system.machine.mem.set_pkru_wd(SELECTOR_WD_MASK as u16);
                // …and the seccomp backstop: SUD runs first, so only
                // syscalls issued while the selector is illegitimately
                // ALLOW ever reach the filter — killed unless they come
                // from the interposer's own pages.
                system.kernel.install_seccomp(BpfProgram::kill_all_except_ip_range(
                    TRAMPOLINE_BASE,
                    HANDLER_BASE + HANDLER_LEN,
                ));
            }
        }

        system.load_program(&program)?;
        Ok(Interposed { system, mechanism })
    }

    /// The configured mechanism.
    pub fn mechanism(&self) -> Mechanism {
        self.mechanism
    }

    /// Runs the guest to completion.
    ///
    /// # Errors
    ///
    /// Propagates [`SimError`].
    pub fn run(&mut self) -> Result<i64, SimError> {
        self.system.run()
    }

    /// The syscalls this mechanism's interposer observed, in order.
    ///
    /// For userspace interposers this reads the guest trace buffer;
    /// for ptrace it is the tracer's log; for seccomp-bpf it is empty
    /// (the filter cannot export what it saw — the expressiveness
    /// limitation itself).
    pub fn observed_trace(&self) -> Vec<u64> {
        if self.mechanism == Mechanism::Ptrace {
            return self.system.kernel.ptrace_log.clone();
        }
        let mem = &self.system.machine.mem;
        let Ok(count) = mem.read_u64(TRACE_IDX_ADDR) else {
            return Vec::new();
        };
        (0..count.min(TRACE_CAP))
            .filter_map(|i| mem.read_u64(TRACE_ENTRIES_ADDR + 8 * i).ok())
            .collect()
    }

    /// Total cycles consumed.
    pub fn cycles(&self) -> u64 {
        self.system.cycles()
    }
}

fn install_code(system: &mut System, base: u64, code: &[u8]) {
    system
        .machine
        .mem
        .map(base, code.len().max(1) as u64, Perms::RW);
    system.machine.mem.write(base, code).expect("fresh mapping");
    system
        .machine
        .mem
        .protect(base, code.len().max(1) as u64, Perms::RX)
        .expect("fresh mapping");
}

fn set_selector(system: &mut System, value: u8) {
    system
        .machine
        .mem
        .write(SELECTOR_ADDR, &[value])
        .expect("data page mapped");
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_cpu::asm::Asm;
    use sim_cpu::reg::Gpr;
    use sim_kernel::kernel::LOAD_ADDR;

    /// getpid ×3, store last result in r12, exit.
    fn getpid_x3() -> Vec<u8> {
        Asm::new()
            .mov_ri(Gpr::R0, sysno::GETPID)
            .syscall()
            .mov_ri(Gpr::R0, sysno::GETPID)
            .syscall()
            .mov_ri(Gpr::R0, sysno::GETPID)
            .syscall()
            .mov_rr(Gpr::R12, Gpr::R0)
            .mov_ri(Gpr::R0, sysno::EXIT_GROUP)
            .mov_ri(Gpr::R1, 0)
            .syscall()
            .assemble_at(LOAD_ADDR)
            .unwrap()
    }

    #[test]
    fn every_mechanism_runs_the_workload_correctly() {
        for mech in Mechanism::all() {
            let mut ip = Interposed::setup(mech, &getpid_x3(), true).unwrap();
            let exit = ip.run().unwrap_or_else(|e| panic!("{mech:?}: {e}"));
            assert_eq!(exit, 0, "{mech:?}");
            assert_eq!(ip.system.machine.gpr(Gpr::R12), 1000, "{mech:?}");
        }
    }

    #[test]
    fn interposers_observe_expected_traces() {
        // Exhaustive mechanisms see getpid ×3 (+ the exit_group for
        // those that catch it before termination).
        for mech in [
            Mechanism::Sud,
            Mechanism::SeccompUser,
            Mechanism::Lazypoline { xstate: true },
            Mechanism::Lazypoline { xstate: false },
            Mechanism::Zpoline,
            Mechanism::Ptrace,
        ] {
            let mut ip = Interposed::setup(mech, &getpid_x3(), true).unwrap();
            ip.run().unwrap();
            let trace = ip.observed_trace();
            let getpids = trace.iter().filter(|&&n| n == sysno::GETPID).count();
            assert_eq!(getpids, 3, "{mech:?}: {trace:?}");
        }
        // seccomp-bpf cannot report anything.
        let mut ip = Interposed::setup(Mechanism::SeccompBpf, &getpid_x3(), true).unwrap();
        ip.run().unwrap();
        assert!(ip.observed_trace().is_empty());
    }

    #[test]
    fn lazypoline_patches_lazily_and_reuses_fast_path() {
        let mut ip =
            Interposed::setup(Mechanism::Lazypoline { xstate: false }, &getpid_x3(), true)
                .unwrap();
        ip.run().unwrap();
        let st = ip.system.kernel.stats();
        // 4 distinct sites (3 getpid + exit_group); each SIGSYSes once.
        // After patching, re-execution goes through the trampoline:
        // only first executions hit the slow path.
        assert_eq!(st.sud_dispatches, 4, "{st:?}");
        // The patched bytes really are CALL r0 now.
        let mut b = [0u8; 2];
        ip.system.machine.mem.read_privileged(LOAD_ADDR + 10, &mut b).unwrap();
        assert_eq!(b, [0xff, 0xd0]);
    }

    #[test]
    fn lazypoline_fast_path_dominates_on_loops() {
        // A loop re-executing one site: exactly one slow-path trip.
        let loop_prog = Asm::new()
            .mov_ri(Gpr::R11, 50)
            .label("loop")
            .mov_ri(Gpr::R0, sysno::GETPID)
            .syscall()
            .sub_ri(Gpr::R11, 1)
            .cmp_ri(Gpr::R11, 0)
            .jnz("loop")
            .mov_ri(Gpr::R0, sysno::EXIT_GROUP)
            .mov_ri(Gpr::R1, 0)
            .syscall()
            .assemble_at(LOAD_ADDR)
            .unwrap();
        let mut ip =
            Interposed::setup(Mechanism::Lazypoline { xstate: false }, &loop_prog, true).unwrap();
        ip.run().unwrap();
        let st = ip.system.kernel.stats();
        assert_eq!(st.sud_dispatches, 2); // getpid site + exit site
        let trace = ip.observed_trace();
        assert_eq!(
            trace.iter().filter(|&&n| n == sysno::GETPID).count(),
            50
        );
    }

    #[test]
    fn zpoline_misses_nothing_static_but_sud_costs_nothing() {
        // zpoline on the same loop: no SIGSYS at all, everything
        // through the statically-patched site.
        let loop_prog = getpid_x3();
        let mut ip = Interposed::setup(Mechanism::Zpoline, &loop_prog, true).unwrap();
        ip.run().unwrap();
        assert_eq!(ip.system.kernel.stats().sud_dispatches, 0);
        assert_eq!(ip.system.kernel.stats().signals_delivered, 0);
    }

    #[test]
    fn interest_filter_skips_observation_but_not_execution() {
        for mech in [
            Mechanism::Lazypoline { xstate: false },
            Mechanism::Zpoline,
            Mechanism::Sud,
            Mechanism::SeccompUser,
        ] {
            // Interested only in exit_group: the getpids must run
            // correctly (r12 == 1000, exit 0) yet stay unobserved.
            let mut ip = Interposed::setup_filtered(
                mech,
                &getpid_x3(),
                true,
                Some(&[sysno::EXIT_GROUP]),
            )
            .unwrap();
            assert_eq!(ip.run().unwrap(), 0, "{mech:?}");
            assert_eq!(ip.system.machine.gpr(Gpr::R12), 1000, "{mech:?}");
            let trace = ip.observed_trace();
            assert_eq!(
                trace.iter().filter(|&&n| n == sysno::GETPID).count(),
                0,
                "{mech:?}: filtered getpid leaked into {trace:?}"
            );
        }
    }

    #[test]
    fn interest_filter_cuts_interposition_cycles() {
        // Same workload, all-interest vs none-interest: the filtered
        // run must be measurably cheaper (it skips the recording
        // fragment on every dispatch) and both must stay correct.
        let run = |interest: Option<&[u64]>| {
            let mut ip = Interposed::setup_filtered(
                Mechanism::Lazypoline { xstate: false },
                &getpid_x3(),
                true,
                interest,
            )
            .unwrap();
            ip.run().unwrap();
            ip.cycles()
        };
        let unfiltered = run(None);
        let filtered = run(Some(&[]));
        assert!(
            filtered < unfiltered,
            "filtered {filtered} !< unfiltered {unfiltered}"
        );
    }

    #[test]
    fn relative_costs_match_table_two_ordering() {
        // One hot site, many iterations: cycles should order
        // baseline < zpoline < lazypoline(no x) < lazypoline < SUD < ptrace.
        let prog = |iters: u64| {
            Asm::new()
                .mov_ri(Gpr::R11, iters)
                .label("loop")
                .mov_ri(Gpr::R0, sysno::NONEXISTENT)
                .syscall()
                .sub_ri(Gpr::R11, 1)
                .cmp_ri(Gpr::R11, 0)
                .jnz("loop")
                .mov_ri(Gpr::R0, sysno::EXIT_GROUP)
                .mov_ri(Gpr::R1, 0)
                .syscall()
                .assemble_at(LOAD_ADDR)
                .unwrap()
        };
        let cycles = |mech| {
            let mut ip = Interposed::setup(mech, &prog(200), false).unwrap();
            ip.run().unwrap();
            ip.cycles()
        };
        let base = cycles(Mechanism::Baseline);
        let zp = cycles(Mechanism::Zpoline);
        let lp_nox = cycles(Mechanism::Lazypoline { xstate: false });
        let lp = cycles(Mechanism::Lazypoline { xstate: true });
        let sud = cycles(Mechanism::Sud);
        let pt = cycles(Mechanism::Ptrace);
        assert!(base < zp, "base {base} zp {zp}");
        assert!(zp < lp_nox, "zp {zp} lp_nox {lp_nox}");
        assert!(lp_nox < lp, "lp_nox {lp_nox} lp {lp}");
        assert!(lp < sud, "lp {lp} sud {sud}");
        assert!(sud < pt, "sud {sud} ptrace {pt}");
    }
}
